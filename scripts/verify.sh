#!/usr/bin/env bash
# Tier-1 verification: plain build + tests, then the same suite
# under AddressSanitizer + UndefinedBehaviorSanitizer, then the
# measurement-pool and CSP sampling tests under ThreadSanitizer.
# Each non-tsan preset also smoke-tests the observability path: a
# tiny heron_tune run with --trace/--metrics whose outputs must
# parse as JSON. The plain preset additionally runs the CSP solver
# throughput bench, which writes BENCH_csp_solver.json and asserts
# SampleBatch worker-count determinism.
#
# Usage: scripts/verify.sh [--no-asan] [--no-tsan]
set -euo pipefail

cd "$(dirname "$0")/.."

run_asan=1
run_tsan=1
for arg in "$@"; do
    case "$arg" in
    --no-asan) run_asan=0 ;;
    --no-tsan) run_tsan=0 ;;
    *)
        echo "unknown argument: $arg" >&2
        exit 2
        ;;
    esac
done

# Run a tiny profiled tuning job out of $1 (a preset's build dir)
# and validate the trace/metrics/telemetry files it writes.
smoke_observability() {
    local build_dir="$1"
    echo "== observability smoke test ($build_dir) =="
    local out="$build_dir/observability-smoke"
    rm -rf "$out"
    mkdir -p "$out"
    "$build_dir/examples/heron_tune" \
        --dla v100 --op c2d --shape 1,16,14,14,16,3,3,1,1 \
        --trials 8 \
        --trace "$out/trace.json" \
        --metrics "$out/metrics.json" \
        --telemetry "$out/telemetry.jsonl" \
        > "$out/stdout.txt"
    grep -q "Observability summary" "$out/stdout.txt"
    python3 - "$out" <<'EOF'
import json, sys, os
out = sys.argv[1]
trace = json.load(open(os.path.join(out, "trace.json")))
assert trace["traceEvents"], "empty trace"
metrics = json.load(open(os.path.join(out, "metrics.json")))
assert metrics["counters"].get("csp.propagations", 0) > 0, metrics
rounds = [json.loads(line)
          for line in open(os.path.join(out, "telemetry.jsonl"))]
assert rounds and all("round" in r for r in rounds), rounds
print("observability smoke: OK "
      f"({len(trace['traceEvents'])} events, {len(rounds)} rounds)")
EOF
}

# CSP solver throughput smoke out of $1 (a preset's build dir):
# every workload must actually solve, the SampleBatch results must
# be worker-count invariant (the bench exits nonzero on a
# determinism violation), and the JSON artifact must parse.
smoke_csp_bench() {
    local build_dir="$1"
    echo "== csp solver bench smoke ($build_dir) =="
    "$build_dir/bench/micro_csp_solver" --out BENCH_csp_solver.json
    python3 - <<'EOF'
import json
bench = json.load(open("BENCH_csp_solver.json"))
assert bench["workloads"], bench
for w in bench["workloads"]:
    assert w["plain"]["solved"] > 0, w
    assert w["offspring"]["solved"] > 0, w
    assert w["batch_deterministic"], w
print("csp bench smoke: OK "
      f"({len(bench['workloads'])} workloads)")
EOF
}

echo "== tier-1: plain build =="
cmake --preset default
cmake --build --preset default -j
ctest --preset default -j
smoke_observability build
smoke_csp_bench build

if [[ "$run_asan" == 1 ]]; then
    echo "== tier-1: ASan+UBSan build =="
    cmake --preset asan
    cmake --build --preset asan -j
    UBSAN_OPTIONS=halt_on_error=1 \
        ASAN_OPTIONS=detect_leaks=0 \
        ctest --preset asan -j
    ASAN_OPTIONS=detect_leaks=0 smoke_observability build-asan
fi

if [[ "$run_tsan" == 1 ]]; then
    echo "== tier-1: ThreadSanitizer measurement-pool tests =="
    cmake --preset tsan
    cmake --build --preset tsan -j
    TSAN_OPTIONS=halt_on_error=1 \
        ctest --preset tsan \
        -R 'test_measure_pool|test_csp_property' \
        --no-tests=error
fi

echo "verify: OK"
