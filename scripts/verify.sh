#!/usr/bin/env bash
# Tier-1 verification: plain build + tests, then the same suite
# under AddressSanitizer + UndefinedBehaviorSanitizer, then the
# measurement-pool, CSP sampling, serving, and TCP front-end tests
# under ThreadSanitizer. Each non-tsan preset also smoke-tests the
# observability path (a tiny heron_tune run with --trace/--metrics
# whose outputs must parse as JSON), the serving loop (heron_serve
# --stdio driven over its NDJSON protocol, including the metrics
# command's windowed quantiles), and the TCP front-end (concurrent
# socket clients through a miss -> tune -> exact flow, a live
# Prometheus scrape validated for HELP/TYPE pairs and
# cumulative-monotone le buckets, then a SIGTERM graceful drain
# that must exit 0, persist the store, and flush a line-valid JSONL
# access log), plus the WAL-store crash harness (20 SIGKILLs at
# random points with zero acknowledged-record loss and corruption
# quarantine) and the ENOSPC degraded-mode smoke (fault-injected
# appends -> 503 /healthz -> auto-recovery). The plain preset
# additionally runs the CSP solver and serving benches, which write
# BENCH_csp_solver.json / BENCH_serve.json and assert SampleBatch
# determinism, the 100k-lookups/sec exact-hit floor, the <5%
# windowed-metrics overhead budget, the O(1) WAL persist
# (store-size-independent append latency), and — on machines with
# >= 4 cores only; reported as skipped elsewhere — the parallel
# scaling floors (effective_parallelism >= 0.7 at 4 solver-pool
# workers and 4 registry reader threads). Fresh bench artifacts are
# then diffed against the committed ones (scripts/bench_diff.py,
# advisory).
#
# Usage: scripts/verify.sh [--no-asan] [--no-tsan]
set -euo pipefail

cd "$(dirname "$0")/.."

run_asan=1
run_tsan=1
for arg in "$@"; do
    case "$arg" in
    --no-asan) run_asan=0 ;;
    --no-tsan) run_tsan=0 ;;
    *)
        echo "unknown argument: $arg" >&2
        exit 2
        ;;
    esac
done

# Run a tiny profiled tuning job out of $1 (a preset's build dir)
# and validate the trace/metrics/telemetry files it writes.
smoke_observability() {
    local build_dir="$1"
    echo "== observability smoke test ($build_dir) =="
    local out="$build_dir/observability-smoke"
    rm -rf "$out"
    mkdir -p "$out"
    "$build_dir/examples/heron_tune" \
        --dla v100 --op c2d --shape 1,16,14,14,16,3,3,1,1 \
        --trials 8 \
        --trace "$out/trace.json" \
        --metrics "$out/metrics.json" \
        --telemetry "$out/telemetry.jsonl" \
        > "$out/stdout.txt"
    grep -q "Observability summary" "$out/stdout.txt"
    python3 - "$out" <<'EOF'
import json, sys, os
out = sys.argv[1]
trace = json.load(open(os.path.join(out, "trace.json")))
assert trace["traceEvents"], "empty trace"
metrics = json.load(open(os.path.join(out, "metrics.json")))
assert metrics["counters"].get("csp.propagations", 0) > 0, metrics
rounds = [json.loads(line)
          for line in open(os.path.join(out, "telemetry.jsonl"))]
assert rounds and all("round" in r for r in rounds), rounds
print("observability smoke: OK "
      f"({len(trace['traceEvents'])} events, {len(rounds)} rounds)")
EOF
}

# CSP solver throughput smoke out of $1 (a preset's build dir):
# every workload must actually solve, the SampleBatch results must
# be worker-count invariant (the bench exits nonzero on a
# determinism violation), and the JSON artifact must parse. The
# persistent-pool scaling assertion (effective_parallelism >= 0.7
# at 4 workers) only runs on boxes with >= 4 cores; elsewhere it is
# reported as skipped, never as passed.
smoke_csp_bench() {
    local build_dir="$1"
    echo "== csp solver bench smoke ($build_dir) =="
    "$build_dir/bench/micro_csp_solver" --out BENCH_csp_solver.json
    python3 - <<'EOF'
import json
bench = json.load(open("BENCH_csp_solver.json"))
assert bench["workloads"], bench
cores = bench["hardware_concurrency"]
scaling = bench["batch_scaling"]
assert scaling["status"] in ("measured", "skipped"), scaling
assert (scaling["status"] == "measured") == (cores >= 4), scaling
for w in bench["workloads"]:
    assert w["plain"]["solved"] > 0, w
    assert w["offspring"]["solved"] > 0, w
    assert w["batch_deterministic"], w
    for point in w["batch"]:
        assert "speedup" in point, point
        assert "effective_parallelism" in point, point
    four = next(p for p in w["batch"] if p["workers"] == 4)
    if scaling["status"] == "measured":
        assert four["effective_parallelism"] >= 0.7, \
            f"{w['name']}: 4-worker pool scaled poorly on a " \
            f"{cores}-core box: {four}"
if scaling["status"] == "measured":
    note = "4-worker eff-par asserted >= 0.7"
else:
    note = f"scaling SKIPPED ({scaling['reason']})"
print("csp bench smoke: OK "
      f"({len(bench['workloads'])} workloads, {note})")
EOF
}

# Serving smoke out of $1 (a preset's build dir): drive heron_serve
# over the NDJSON protocol through a miss -> tune -> exact-hit ->
# nearest-fallback flow, assert the tier counters, then restart on
# the persisted store and confirm it answers exactly without
# retuning.
smoke_serve() {
    local build_dir="$1"
    echo "== serving smoke test ($build_dir) =="
    local out="$build_dir/serve-smoke"
    rm -rf "$out"
    mkdir -p "$out"
    printf '%s\n' \
        '{"id":1,"op":"gemm","shape":[512,512,512]}' \
        '{"id":2,"cmd":"drain"}' \
        '{"id":3,"op":"gemm","shape":[512,512,512]}' \
        '{"id":4,"op":"gemm","shape":[256,512,512]}' \
        '{"id":5,"cmd":"stats"}' \
        '{"id":6,"cmd":"quit"}' \
        | "$build_dir/examples/heron_serve" \
            --stdio --dla v100 --store "$out/store.jsonl" \
            --tune-on-miss --trials 24 --seed 3 \
            > "$out/pass1.txt" 2> "$out/pass1.err"
    printf '%s\n' \
        '{"id":1,"op":"gemm","shape":[512,512,512]}' \
        '{"id":2,"cmd":"stats"}' \
        '{"id":3,"cmd":"metrics"}' \
        | "$build_dir/examples/heron_serve" \
            --stdio --dla v100 --store "$out/store.jsonl" \
            > "$out/pass2.txt" 2> "$out/pass2.err"
    python3 - "$out" <<'EOF'
import json, sys, os
out = sys.argv[1]
p1 = [json.loads(line) for line in open(os.path.join(out, "pass1.txt"))]
by_id = {r["id"]: r for r in p1}
assert by_id[1]["tier"] == "miss" and by_id[1]["enqueued"], by_id[1]
assert by_id[3]["tier"] == "exact", by_id[3]
assert by_id[3]["assignment"], by_id[3]
assert by_id[4]["tier"] == "nearest", by_id[4]
assert by_id[4]["served_from"] == by_id[3]["key"], by_id[4]
tiers = by_id[5]["tiers"]
assert tiers["exact"] == 1 and tiers["nearest"] == 1, tiers
assert tiers["miss"] == 1, tiers
# The nearest hit re-enqueues its workload; depending on timing it
# may already have tuned by the time stats is answered.
assert by_id[5]["queue"]["completed"] >= 1, by_id[5]
p2 = [json.loads(line) for line in open(os.path.join(out, "pass2.txt"))]
by_id2 = {r["id"]: r for r in p2}
assert by_id2[1]["tier"] == "exact", by_id2[1]
assert by_id2[2]["tiers"]["miss"] == 0, by_id2[2]
stats2 = by_id2[2]
assert stats2["uptime_s"] >= 0 and stats2["pid"] > 0, stats2
assert stats2["build"]["compiler"], stats2
m = by_id2[3]
windows = m["windows"]
lookup = windows["serve.window.lookup_us"]
# The exact lookup from request 1 must land in the last-60s window.
assert lookup["count"] >= 1, lookup
assert lookup["p95"] > 0, lookup
assert windows["serve.window.tier.exact_us"]["count"] >= 1, windows
assert m["counters"], m
print("serving smoke: OK (miss->tune->exact, nearest fallback, "
      "store reload, metrics command)")
EOF
}

# TCP front-end smoke out of $1: start heron_serve on an ephemeral
# port, drive a miss -> tune -> exact flow plus concurrent socket
# clients (which must all answer exact and expose the queue
# counters in stats), then SIGTERM it — the drain must exit 0 and
# persist the store. A second server restarted on that store must
# answer exact over TCP without retuning.
smoke_serve_tcp() {
    local build_dir="$1"
    echo "== TCP serving smoke test ($build_dir) =="
    local out="$build_dir/serve-tcp-smoke"
    rm -rf "$out"
    mkdir -p "$out"

    wait_for_port() {
        local port_file="$1" pid="$2"
        for _ in $(seq 100); do
            [[ -s "$port_file" ]] && return 0
            kill -0 "$pid" 2> /dev/null || break
            sleep 0.1
        done
        echo "heron_serve never published its port" >&2
        return 1
    }

    "$build_dir/examples/heron_serve" \
        --dla v100 --store "$out/store.jsonl" \
        --tune-on-miss --trials 24 --seed 3 \
        --port 0 --port-file "$out/port.txt" \
        --metrics-port 0 \
        --metrics-port-file "$out/metrics-port.txt" \
        --access-log "$out/access.jsonl" \
        --slo-p95-us 60000000 \
        > /dev/null 2> "$out/server1.err" &
    local server_pid=$!
    wait_for_port "$out/port.txt" "$server_pid"
    wait_for_port "$out/metrics-port.txt" "$server_pid"

    python3 - "$out/port.txt" <<'EOF'
import json, socket, sys, threading

port = int(open(sys.argv[1]).read().strip())

def rpc(sock, reader, obj):
    sock.sendall((json.dumps(obj) + "\n").encode())
    line = reader.readline()
    assert line, "server closed the connection unexpectedly"
    return json.loads(line)

main = socket.create_connection(("127.0.0.1", port), 30)
main.settimeout(120)
reader = main.makefile("r")
first = rpc(main, reader, {"id": 1, "op": "gemm",
                           "shape": [512, 512, 512]})
assert first["tier"] == "miss" and first["enqueued"], first
drained = rpc(main, reader, {"id": 2, "cmd": "drain"})
assert drained["drained"] is True, drained
exact = rpc(main, reader, {"id": 3, "op": "gemm",
                           "shape": [512, 512, 512],
                           "deadline_ms": 60000})
assert exact["tier"] == "exact" and exact["assignment"], exact

# Concurrent clients over their own sockets: all must hit exact.
results = {}
def client(idx):
    s = socket.create_connection(("127.0.0.1", port), 30)
    s.settimeout(60)
    r = s.makefile("r")
    results[idx] = rpc(s, r, {"id": idx, "op": "gemm",
                              "shape": [512, 512, 512]})
    s.close()

threads = [threading.Thread(target=client, args=(i,))
           for i in range(10, 18)]
for t in threads:
    t.start()
for t in threads:
    t.join()
assert len(results) == 8, results
for r in results.values():
    assert r["tier"] == "exact", r

stats = rpc(main, reader, {"id": 4, "cmd": "stats"})
assert stats["tiers"]["exact"] >= 9, stats
queue = stats["queue"]
assert queue["completed"] >= 1, queue
for key in ("depth", "capacity", "in_flight", "rejected_full",
            "untunable"):
    assert key in queue, queue
main.close()
print("tcp smoke: miss->tune->exact over sockets, "
      f"{len(results)} concurrent exact hits")
EOF

    # Scrape the Prometheus endpoint while the server is live and
    # validate the exposition format: every family has HELP/TYPE,
    # histogram le buckets are cumulative-monotone and end at +Inf,
    # and the SLO gauges are present.
    curl -sf "http://127.0.0.1:$(cat "$out/metrics-port.txt")/metrics" \
        > "$out/prom.txt"
    python3 - "$out/prom.txt" <<'EOF'
import re, sys

lines = open(sys.argv[1]).read().splitlines()
helps, types, samples = set(), {}, {}
for line in lines:
    if line.startswith("# HELP "):
        helps.add(line.split()[2])
    elif line.startswith("# TYPE "):
        _, _, name, kind = line.split()
        types[name] = kind
    elif line and not line.startswith("#"):
        m = re.match(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'
                     r'(\{[^}]*\})? (\S+)$', line)
        assert m, f"malformed sample line: {line!r}"
        samples.setdefault(m.group(1), []).append(
            (m.group(2) or "", float(m.group(3))))

assert types, "no TYPE lines scraped"
for name in types:
    assert name in helps, f"{name} has TYPE but no HELP"

histograms = [n for n, k in types.items() if k == "histogram"]
assert histograms, "no histogram families scraped"
for name in histograms:
    buckets = samples.get(name + "_bucket", [])
    assert buckets, f"{name} has no buckets"
    les, counts = [], []
    for labels, value in buckets:
        m = re.search(r'le="([^"]+)"', labels)
        assert m, f"{name} bucket without le: {labels}"
        les.append(m.group(1))
        counts.append(value)
    assert les[-1] == "+Inf", f"{name} buckets do not end at +Inf"
    bounds = [float(le) for le in les[:-1]]
    assert bounds == sorted(bounds), f"{name} le bounds not sorted"
    assert counts == sorted(counts), \
        f"{name} cumulative counts not monotone: {counts}"
    assert counts[-1] == samples[name + "_count"][0][1], name

for gauge in ("heron_serve_slo_soft_watermark",
              "heron_serve_slo_burning"):
    assert gauge in samples, f"missing {gauge}"
windows = [n for n, k in types.items() if k == "summary"]
assert any("lookup" in n for n in windows), windows
print(f"tcp smoke: prometheus scrape OK ({len(types)} families, "
      f"{len(histograms)} histograms, {len(windows)} windows)")
EOF

    kill -TERM "$server_pid"
    local rc=0
    wait "$server_pid" || rc=$?
    if [[ "$rc" != 0 ]]; then
        echo "heron_serve exited $rc after SIGTERM (want 0)" >&2
        cat "$out/server1.err" >&2
        return 1
    fi
    if [[ ! -s "$out/store.jsonl" ]]; then
        echo "drain did not persist the store" >&2
        return 1
    fi

    # The drain must have flushed the access log; every line is one
    # strict JSON object (python3 -m json.tool rejects anything
    # torn) and the request ids we sent appear in it.
    if [[ ! -s "$out/access.jsonl" ]]; then
        echo "drain did not flush the access log" >&2
        return 1
    fi
    while IFS= read -r line; do
        printf '%s' "$line" | python3 -m json.tool > /dev/null || {
            echo "access log line is not valid JSON: $line" >&2
            return 1
        }
    done < "$out/access.jsonl"
    python3 - "$out/access.jsonl" <<'EOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1])]
assert lines, "access log empty"
requests = [l for l in lines if "endpoint" in l]
assert requests, lines
for r in requests:
    assert "total_us" in r and "ok" in r, r
print(f"tcp smoke: access log OK ({len(lines)} lines, "
      f"{len(requests)} requests)")
EOF

    # Pass 2: a fresh server on the persisted store answers exact
    # over TCP without any tuning.
    "$build_dir/examples/heron_serve" \
        --dla v100 --store "$out/store.jsonl" \
        --port 0 --port-file "$out/port2.txt" \
        > /dev/null 2> "$out/server2.err" &
    server_pid=$!
    wait_for_port "$out/port2.txt" "$server_pid"
    python3 - "$out/port2.txt" <<'EOF'
import json, socket, sys

port = int(open(sys.argv[1]).read().strip())
s = socket.create_connection(("127.0.0.1", port), 30)
s.settimeout(60)
reader = s.makefile("r")
s.sendall(b'{"id":1,"op":"gemm","shape":[512,512,512]}\n')
r = json.loads(reader.readline())
assert r["tier"] == "exact", r
s.close()
print("tcp smoke: store reload serves exact")
EOF
    kill -TERM "$server_pid"
    rc=0
    wait "$server_pid" || rc=$?
    if [[ "$rc" != 0 ]]; then
        echo "restarted heron_serve exited $rc after SIGTERM" >&2
        cat "$out/server2.err" >&2
        return 1
    fi
    echo "tcp smoke: OK (clean SIGTERM drains, store persisted)"
}

# Whole-network graph serving smoke out of $1: submit ResNet-50
# (batch 16) as one {"cmd":"graph"} request over TCP against a cold
# registry — the dedupe must collapse repeated layers, every
# distinct layer must be scheduled for tuning (payoff order), and
# after the tune queue drains a graph_status poll must report
# convergence. A follow-up graph request must emit a dispatch
# header covering every layer that compiles standalone.
smoke_graph() {
    local build_dir="$1"
    echo "== graph serving smoke test ($build_dir) =="
    local out="$build_dir/graph-smoke"
    rm -rf "$out"
    mkdir -p "$out/libs"

    wait_for_port() {
        local port_file="$1" pid="$2"
        for _ in $(seq 100); do
            [[ -s "$port_file" ]] && return 0
            kill -0 "$pid" 2> /dev/null || break
            sleep 0.1
        done
        echo "heron_serve never published its port" >&2
        return 1
    }

    "$build_dir/examples/heron_serve" \
        --dla v100 --graph-dir "$out/libs" \
        --tune-on-miss --trials 6 --seed 5 \
        --queue-capacity 64 \
        --port 0 --port-file "$out/port.txt" \
        > /dev/null 2> "$out/server.err" &
    local server_pid=$!
    wait_for_port "$out/port.txt" "$server_pid" || {
        cat "$out/server.err" >&2
        return 1
    }

    python3 - "$out/port.txt" "$out/header.txt" <<'EOF'
import json, socket, sys

port = int(open(sys.argv[1]).read().strip())
s = socket.create_connection(("127.0.0.1", port), 30)
s.settimeout(600)
reader = s.makefile("r")

def rpc(obj):
    s.sendall((json.dumps(obj) + "\n").encode())
    line = reader.readline()
    assert line, "server closed the connection unexpectedly"
    return json.loads(line)

# Cold graph: one batched pass, everything misses, the whole
# model lands on the tune queue in payoff order.
first = rpc({"id": 1, "cmd": "graph", "network": "resnet50",
             "batch": 16})
assert first["deduped"] > 0, first
assert first["tiers"]["miss"] == first["layers"], first
assert first["scheduled"] == first["layers"], first
assert not first["converged"], first
payoffs = [l["payoff"] for l in first["layer_status"]]
assert any(payoffs[i] < payoffs[i + 1]
           for i in range(len(payoffs) - 1)), \
    "layer payoffs monotone in network order: schedule would be " \
    "indistinguishable from FIFO"

# Drain the background tuner, then poll: miss -> scheduled ->
# exact convergence (the poll itself re-dispatches stragglers).
for _ in range(32):
    drained = rpc({"id": 2, "cmd": "drain"})
    assert drained["drained"] is True, drained
    status = rpc({"id": 3, "cmd": "graph_status",
                  "graph": first["graph"]})
    if status["converged"]:
        break
else:
    raise AssertionError(f"graph never converged: {status}")
assert status["tiers"]["exact"] == status["layers"], status
assert status["coverage"] == 1.0, status

# A converged model compiles into one library: every layer
# dispatches, shared kernels are emitted once.
second = rpc({"id": 4, "cmd": "graph", "network": "resnet50",
              "batch": 16, "emit": "inline"})
assert second["converged"], second
assert second["emitted"] == second["layers"], second
assert second["library"], second
open(sys.argv[2], "w").write(second["header"])

stats = rpc({"id": 5, "cmd": "stats"})
assert stats["graph"]["requests"] >= 2, stats
assert stats["graph"]["deduped"] > 0, stats
assert stats["graph"]["scheduled"] >= first["scheduled"], stats
print(f"graph smoke: {first['layers']} layers "
      f"({first['deduped']} deduped), {first['scheduled']} "
      f"scheduled, converged, {second['emitted']} kernels emitted")
s.close()
EOF

    # The emitted dispatch header is self-contained C++: the header
    # written server-side and the inline copy must both compile.
    local emitted
    emitted=$(ls "$out/libs"/graph_*.h 2> /dev/null | tail -1)
    if [[ -z "$emitted" ]]; then
        echo "no dispatch header written to --graph-dir" >&2
        return 1
    fi
    c++ -std=c++17 -fsyntax-only -x c++ "$emitted" || {
        echo "emitted dispatch header does not compile" >&2
        return 1
    }
    c++ -std=c++17 -fsyntax-only -x c++ "$out/header.txt" || {
        echo "inline dispatch header does not compile" >&2
        return 1
    }

    kill -TERM "$server_pid"
    local rc=0
    wait "$server_pid" || rc=$?
    if [[ "$rc" != 0 ]]; then
        echo "heron_serve exited $rc after SIGTERM (want 0)" >&2
        cat "$out/server.err" >&2
        return 1
    fi
    echo "graph smoke: OK (batched resolve, payoff schedule," \
        "converged, emitted library compiles)"
}

# Crash-recovery chaos harness out of $1: run heron_serve on a WAL
# store dir, tune shapes to exact-tier acknowledgment, SIGKILL the
# server at random points (mid-tune, mid-append, mid-compaction),
# restart on the same dir, and assert that every acknowledged
# record is still served exact — 20 iterations, zero startup
# failures. One iteration also corrupts the newest segment's tail,
# which the next startup must quarantine (renamed aside + counted)
# without losing acknowledged records.
smoke_store_crash() {
    local build_dir="$1"
    echo "== store crash-recovery smoke ($build_dir) =="
    local out="$build_dir/store-crash-smoke"
    rm -rf "$out"
    mkdir -p "$out"
    python3 - "$build_dir/examples/heron_serve" "$out" <<'EOF'
import json, os, random, signal, socket, subprocess, sys, time

binary, out = sys.argv[1], sys.argv[2]
store_dir = os.path.join(out, "store")
random.seed(7)

def start():
    port_file = os.path.join(out, "port.txt")
    try:
        os.remove(port_file)
    except FileNotFoundError:
        pass
    proc = subprocess.Popen(
        [binary, "--dla", "v100", "--store-dir", store_dir,
         "--segment-bytes", "2048", "--compact-segments", "2",
         "--tune-on-miss", "--trials", "16", "--seed", "5",
         "--no-fallback",
         "--port", "0", "--port-file", port_file],
        stdout=subprocess.DEVNULL,
        stderr=open(os.path.join(out, "server.err"), "ab"))
    for _ in range(600):
        if os.path.exists(port_file) and os.path.getsize(port_file):
            break
        assert proc.poll() is None, \
            f"server failed to start: rc={proc.returncode}"
        time.sleep(0.05)
    else:
        raise AssertionError("server never published its port")
    port = int(open(port_file).read().strip())
    sock = socket.create_connection(("127.0.0.1", port), 30)
    sock.settimeout(120)
    return proc, sock, sock.makefile("r")

def rpc(sock, reader, obj):
    sock.sendall((json.dumps(obj) + "\n").encode())
    line = reader.readline()
    assert line, "connection closed"
    return json.loads(line)

acked = []
quarantined_seen = False
shape_id = 0
for iteration in range(20):
    proc, sock, reader = start()
    health = rpc(sock, reader, {"id": 1, "cmd": "health"})
    assert health["status"] == "ok", health
    if iteration == 10:
        # Startup right after the corruption injection: the damaged
        # segment must be quarantined, not fatal.
        assert health["store"]["quarantined"] >= 1, health
        assert any(f.endswith(".quarantined")
                   for f in os.listdir(store_dir)), \
            os.listdir(store_dir)
        quarantined_seen = True
    # Zero acknowledged-record loss across every prior kill.
    for i, m in enumerate(acked):
        r = rpc(sock, reader, {"id": 100 + i, "op": "gemm",
                               "shape": [m, 64, 64]})
        assert r["tier"] == "exact", \
            f"iteration {iteration}: acked m={m} lost: {r}"
    # Tune one new shape to exact-tier acknowledgment (an exact
    # answer implies the record hit the WAL before publish).
    m = 64 + 8 * shape_id
    shape_id += 1
    r = rpc(sock, reader,
            {"id": 2, "op": "gemm", "shape": [m, 64, 64]})
    assert r["tier"] == "miss" and r["enqueued"], r
    rpc(sock, reader, {"id": 3, "cmd": "drain"})
    r = rpc(sock, reader,
            {"id": 4, "op": "gemm", "shape": [m, 64, 64]})
    assert r["tier"] == "exact", r
    acked.append(m)
    # Enqueue one more tune and SIGKILL at a random point inside
    # it, so kills land at varied WAL positions. That tune was
    # never acknowledged, so it is allowed to vanish.
    m2 = 64 + 8 * shape_id
    shape_id += 1
    rpc(sock, reader,
        {"id": 5, "op": "gemm", "shape": [m2, 64, 64]})
    time.sleep(random.uniform(0.0, 0.2))
    proc.send_signal(signal.SIGKILL)
    proc.wait()
    sock.close()
    if iteration == 9:
        segs = sorted(f for f in os.listdir(store_dir)
                      if f.startswith("seg-") and
                      f.endswith(".wal"))
        assert segs, os.listdir(store_dir)
        with open(os.path.join(store_dir, segs[-1]), "ab") as f:
            f.write(b"garbage line, not a framed record\n")

assert len(acked) == 20 and quarantined_seen
print(f"store crash smoke: OK (20 SIGKILL iterations, "
      f"{len(acked)} acknowledged records all recovered, "
      f"corruption quarantined)")
EOF
}

# Degraded-mode smoke out of $1: inject ENOSPC into the WAL append
# path via HERON_FS_FAULT. The server must keep serving lookups,
# reject tune intake with explicit degraded responses, answer 503
# on /healthz, log store_degraded/store_recovered access-log
# events, auto-recover once the fault budget is exhausted, and
# serve every tuned record after a restart.
smoke_store_degraded() {
    local build_dir="$1"
    echo "== store degraded-mode smoke ($build_dir) =="
    local out="$build_dir/store-degraded-smoke"
    rm -rf "$out"
    mkdir -p "$out"
    python3 - "$build_dir/examples/heron_serve" "$out" <<'EOF'
import json, os, signal, socket, subprocess, sys, time
import urllib.error, urllib.request

binary, out = sys.argv[1], sys.argv[2]
store_dir = os.path.join(out, "store")

def start(env_fault=None):
    env = dict(os.environ)
    env.pop("HERON_FS_FAULT", None)
    if env_fault:
        env["HERON_FS_FAULT"] = env_fault
    for f in ("port.txt", "metrics-port.txt"):
        try:
            os.remove(os.path.join(out, f))
        except FileNotFoundError:
            pass
    proc = subprocess.Popen(
        [binary, "--dla", "v100", "--store-dir", store_dir,
         "--tune-on-miss", "--trials", "16", "--seed", "5",
         "--no-fallback", "--store-retry-ms", "200",
         "--port", "0",
         "--port-file", os.path.join(out, "port.txt"),
         "--metrics-port", "0",
         "--metrics-port-file", os.path.join(out,
                                             "metrics-port.txt"),
         "--access-log", os.path.join(out, "access.jsonl")],
        env=env, stdout=subprocess.DEVNULL,
        stderr=open(os.path.join(out, "server.err"), "ab"))
    for _ in range(600):
        ready = all(
            os.path.exists(os.path.join(out, f)) and
            os.path.getsize(os.path.join(out, f))
            for f in ("port.txt", "metrics-port.txt"))
        if ready:
            break
        assert proc.poll() is None, \
            f"server failed to start: rc={proc.returncode}"
        time.sleep(0.05)
    else:
        raise AssertionError("server never published its ports")
    port = int(open(os.path.join(out, "port.txt")).read())
    mport = int(open(os.path.join(out,
                                  "metrics-port.txt")).read())
    sock = socket.create_connection(("127.0.0.1", port), 30)
    sock.settimeout(120)
    return proc, sock, sock.makefile("r"), mport

def rpc(sock, reader, obj):
    sock.sendall((json.dumps(obj) + "\n").encode())
    line = reader.readline()
    assert line, "connection closed"
    return json.loads(line)

def healthz(mport):
    url = f"http://127.0.0.1:{mport}/healthz"
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as err:
        return err.code, err.read().decode()

# The first WAL append and the next three probe retries fail with
# ENOSPC, then the path heals: a real out-of-space episode in
# miniature.
proc, sock, reader, mport = start("store.append:fail=4")

r = rpc(sock, reader,
        {"id": 1, "op": "gemm", "shape": [64, 64, 64]})
assert r["tier"] == "miss" and r["enqueued"], r
rpc(sock, reader, {"id": 2, "cmd": "drain"})
# The tuned record is served from memory even though its persist
# failed — degraded is read-mostly, not down.
r = rpc(sock, reader,
        {"id": 3, "op": "gemm", "shape": [64, 64, 64]})
assert r["tier"] == "exact", r

health = rpc(sock, reader, {"id": 4, "cmd": "health"})
assert health["status"] == "degraded", health
assert health["store"]["append_failures"] >= 1, health
assert health["store"]["unflushed"] >= 1, health
code, body = healthz(mport)
assert code == 503 and "degraded" in body, (code, body)

# Tune intake is paused with an explicit rejection while degraded.
r = rpc(sock, reader,
        {"id": 5, "op": "gemm", "shape": [96, 64, 64]})
assert r["tier"] == "miss", r
assert not r["enqueued"], r
assert r.get("degraded") == 1, r
stats = rpc(sock, reader, {"id": 6, "cmd": "stats"})
assert stats["queue"]["rejected_degraded"] >= 1, stats
assert stats["store"]["state"] == "degraded", stats

# Backoff probes burn through the fault budget: auto-recovery.
deadline = time.time() + 30
while time.time() < deadline:
    health = rpc(sock, reader, {"id": 7, "cmd": "health"})
    if health["status"] == "ok":
        break
    time.sleep(0.2)
assert health["status"] == "ok", health
assert health["store"]["recoveries"] >= 1, health
assert health["store"]["unflushed"] == 0, health
code, body = healthz(mport)
assert code == 200 and '"status":"ok"' in body, (code, body)

# Intake resumes after recovery.
r = rpc(sock, reader,
        {"id": 8, "op": "gemm", "shape": [96, 64, 64]})
assert r["tier"] == "miss" and r["enqueued"], r
rpc(sock, reader, {"id": 9, "cmd": "drain"})
r = rpc(sock, reader,
        {"id": 10, "op": "gemm", "shape": [96, 64, 64]})
assert r["tier"] == "exact", r
sock.close()

proc.send_signal(signal.SIGTERM)
assert proc.wait(120) == 0, proc.returncode

# The outage and the recovery are both visible to operators.
events = [json.loads(l)
          for l in open(os.path.join(out, "access.jsonl"))]
kinds = {e.get("event") for e in events}
assert "store_degraded" in kinds, kinds
assert "store_recovered" in kinds, kinds

# Everything tuned before, during, and after the outage survives
# a restart (the degraded-spell record via the recovery flush).
proc, sock, reader, mport = start()
for rid, m in ((11, 64), (12, 96)):
    r = rpc(sock, reader,
            {"id": rid, "op": "gemm", "shape": [m, 64, 64]})
    assert r["tier"] == "exact", (m, r)
proc.send_signal(signal.SIGTERM)
assert proc.wait(120) == 0, proc.returncode
print("store degraded smoke: OK (ENOSPC -> degraded read-only, "
      "503 /healthz, intake rejected, auto-recovery, durable)")
EOF
}

# Serving throughput smoke out of $1: the exact-hit path must
# sustain at least 100k lookups/sec single-threaded and never
# misserve (the bench exits nonzero when an exact-hit query is
# answered from another tier). Multi-thread scaling is only
# asserted on multi-core boxes — on one core "2 threads" measures
# timeslicing, not parallelism, and the JSON records that honestly
# via hardware_concurrency / effective_parallelism.
smoke_serve_bench() {
    local build_dir="$1"
    echo "== serve bench smoke ($build_dir) =="
    "$build_dir/bench/micro_serve" --quick --out BENCH_serve.json
    python3 - <<'EOF'
import json
bench = json.load(open("BENCH_serve.json"))
rate = bench["exact_single"]["lookups_per_sec"]
assert rate >= 100000, f"exact-hit rate {rate} below 100k/sec"
assert not bench["misserved"], bench
over = bench["exact_instrumented"]["overhead_pct"]
assert over < 5.0, \
    f"windowed-metrics overhead {over:.2f}% exceeds the 5% budget"
assert bench["mixed"]["tiers"]["nearest"] > 0, bench["mixed"]
cores = bench["hardware_concurrency"]
marker = bench["parallel_scaling"]
assert marker["status"] in ("measured", "skipped"), marker
assert (marker["status"] == "measured") == (cores >= 4), marker
two = next(s for s in bench["exact_parallel"] if s["threads"] == 2)
assert abs(two["effective_parallelism"] - two["speedup"] / 2) \
    < 1e-3, two
four = next(s for s in bench["exact_parallel"] if s["threads"] == 4)
if cores >= 2:
    assert two["speedup"] >= 0.8, \
        f"2-thread aggregate collapsed on a {cores}-core box: {two}"
    scaling = f"2-thread speedup {two['speedup']:.2f}x"
else:
    scaling = "single core: scaling SKIPPED (not passed)"
if marker["status"] == "measured":
    # Lock-free read path: 4 reader threads on >= 4 cores must keep
    # at least 70% of perfectly linear scaling.
    assert four["effective_parallelism"] >= 0.7, \
        f"4-thread lock-free reads scaled poorly on a " \
        f"{cores}-core box: {four}"
    scaling += f", 4-thread eff-par {four['effective_parallelism']:.2f}"
wal = bench["wal"]
assert wal["records"] == wal["appends"], wal
assert wal["o1_persist"], wal
assert wal["growth_ratio"] < 3.0, \
    f"WAL append cost grew with store size: {wal}"
assert wal["replay_ms"] > 0, wal
graph = bench["graph"]
assert graph["deduped"] > 0, graph
assert graph["converged"], graph
# Batched resolution must never lose to the sequential loop it
# replaces; 0.95 leaves room for scheduler noise, not for a real
# regression.
assert graph["batched_speedup"] >= 0.95, \
    f"batched graph lookup slower than sequential: {graph}"
print(f"serve bench smoke: OK ({rate:.0f} exact lookups/sec, "
      f"metrics overhead {over:.2f}%, {scaling}, "
      f"WAL {wal['appends_per_sec']:.0f} appends/sec "
      f"ratio {wal['growth_ratio']:.2f}, graph batched "
      f"{graph['batched_speedup']:.2f}x over "
      f"{graph['keys']} keys)")
EOF
}

echo "== tier-1: plain build =="
cmake --preset default
cmake --build --preset default -j
ctest --preset default -j
smoke_observability build
smoke_csp_bench build
smoke_serve build
smoke_serve_tcp build
smoke_graph build
smoke_store_crash build
smoke_store_degraded build
smoke_serve_bench build

# Compare the freshly written BENCH_*.json against the committed
# versions; prints per-metric deltas and flags regressions (advisory
# here — thresholds are machine-sensitive; pass --fail in CI that
# pins hardware).
python3 scripts/bench_diff.py BENCH_csp_solver.json BENCH_serve.json || true

if [[ "$run_asan" == 1 ]]; then
    echo "== tier-1: ASan+UBSan build =="
    cmake --preset asan
    cmake --build --preset asan -j
    UBSAN_OPTIONS=halt_on_error=1 \
        ASAN_OPTIONS=detect_leaks=0 \
        ctest --preset asan -j
    ASAN_OPTIONS=detect_leaks=0 smoke_observability build-asan
    ASAN_OPTIONS=detect_leaks=0 smoke_serve build-asan
    ASAN_OPTIONS=detect_leaks=0 smoke_serve_tcp build-asan
    ASAN_OPTIONS=detect_leaks=0 smoke_graph build-asan
    ASAN_OPTIONS=detect_leaks=0 smoke_store_crash build-asan
    ASAN_OPTIONS=detect_leaks=0 smoke_store_degraded build-asan
fi

if [[ "$run_tsan" == 1 ]]; then
    echo "== tier-1: ThreadSanitizer concurrency tests =="
    cmake --preset tsan
    cmake --build --preset tsan -j
    TSAN_OPTIONS=halt_on_error=1 \
        ctest --preset tsan \
        -R 'test_measure_pool|test_csp_property|test_parallel_scale|test_serve|test_server|test_store_wal|test_graph' \
        --no-tests=error
fi

echo "verify: OK"
