#!/usr/bin/env bash
# Tier-1 verification: plain build + tests, then the same suite
# under AddressSanitizer + UndefinedBehaviorSanitizer.
#
# Usage: scripts/verify.sh [--no-asan]
set -euo pipefail

cd "$(dirname "$0")/.."

run_asan=1
if [[ "${1:-}" == "--no-asan" ]]; then
    run_asan=0
fi

echo "== tier-1: plain build =="
cmake --preset default
cmake --build --preset default -j
ctest --preset default -j

if [[ "$run_asan" == 1 ]]; then
    echo "== tier-1: ASan+UBSan build =="
    cmake --preset asan
    cmake --build --preset asan -j
    UBSAN_OPTIONS=halt_on_error=1 \
        ASAN_OPTIONS=detect_leaks=0 \
        ctest --preset asan -j
fi

echo "verify: OK"
