#!/usr/bin/env bash
# Tier-1 verification: plain build + tests, then the same suite
# under AddressSanitizer + UndefinedBehaviorSanitizer, then the
# measurement-pool, CSP sampling, and serving tests under
# ThreadSanitizer. Each non-tsan preset also smoke-tests the
# observability path (a tiny heron_tune run with --trace/--metrics
# whose outputs must parse as JSON) and the serving loop (heron_serve
# driven over its NDJSON protocol). The plain preset additionally
# runs the CSP solver and serving benches, which write
# BENCH_csp_solver.json / BENCH_serve.json and assert SampleBatch
# determinism and the 100k-lookups/sec exact-hit floor.
#
# Usage: scripts/verify.sh [--no-asan] [--no-tsan]
set -euo pipefail

cd "$(dirname "$0")/.."

run_asan=1
run_tsan=1
for arg in "$@"; do
    case "$arg" in
    --no-asan) run_asan=0 ;;
    --no-tsan) run_tsan=0 ;;
    *)
        echo "unknown argument: $arg" >&2
        exit 2
        ;;
    esac
done

# Run a tiny profiled tuning job out of $1 (a preset's build dir)
# and validate the trace/metrics/telemetry files it writes.
smoke_observability() {
    local build_dir="$1"
    echo "== observability smoke test ($build_dir) =="
    local out="$build_dir/observability-smoke"
    rm -rf "$out"
    mkdir -p "$out"
    "$build_dir/examples/heron_tune" \
        --dla v100 --op c2d --shape 1,16,14,14,16,3,3,1,1 \
        --trials 8 \
        --trace "$out/trace.json" \
        --metrics "$out/metrics.json" \
        --telemetry "$out/telemetry.jsonl" \
        > "$out/stdout.txt"
    grep -q "Observability summary" "$out/stdout.txt"
    python3 - "$out" <<'EOF'
import json, sys, os
out = sys.argv[1]
trace = json.load(open(os.path.join(out, "trace.json")))
assert trace["traceEvents"], "empty trace"
metrics = json.load(open(os.path.join(out, "metrics.json")))
assert metrics["counters"].get("csp.propagations", 0) > 0, metrics
rounds = [json.loads(line)
          for line in open(os.path.join(out, "telemetry.jsonl"))]
assert rounds and all("round" in r for r in rounds), rounds
print("observability smoke: OK "
      f"({len(trace['traceEvents'])} events, {len(rounds)} rounds)")
EOF
}

# CSP solver throughput smoke out of $1 (a preset's build dir):
# every workload must actually solve, the SampleBatch results must
# be worker-count invariant (the bench exits nonzero on a
# determinism violation), and the JSON artifact must parse.
smoke_csp_bench() {
    local build_dir="$1"
    echo "== csp solver bench smoke ($build_dir) =="
    "$build_dir/bench/micro_csp_solver" --out BENCH_csp_solver.json
    python3 - <<'EOF'
import json
bench = json.load(open("BENCH_csp_solver.json"))
assert bench["workloads"], bench
for w in bench["workloads"]:
    assert w["plain"]["solved"] > 0, w
    assert w["offspring"]["solved"] > 0, w
    assert w["batch_deterministic"], w
print("csp bench smoke: OK "
      f"({len(bench['workloads'])} workloads)")
EOF
}

# Serving smoke out of $1 (a preset's build dir): drive heron_serve
# over the NDJSON protocol through a miss -> tune -> exact-hit ->
# nearest-fallback flow, assert the tier counters, then restart on
# the persisted store and confirm it answers exactly without
# retuning.
smoke_serve() {
    local build_dir="$1"
    echo "== serving smoke test ($build_dir) =="
    local out="$build_dir/serve-smoke"
    rm -rf "$out"
    mkdir -p "$out"
    printf '%s\n' \
        '{"id":1,"op":"gemm","shape":[512,512,512]}' \
        '{"id":2,"cmd":"drain"}' \
        '{"id":3,"op":"gemm","shape":[512,512,512]}' \
        '{"id":4,"op":"gemm","shape":[256,512,512]}' \
        '{"id":5,"cmd":"stats"}' \
        '{"id":6,"cmd":"quit"}' \
        | "$build_dir/examples/heron_serve" \
            --dla v100 --store "$out/store.jsonl" \
            --tune-on-miss --trials 24 --seed 3 \
            > "$out/pass1.txt" 2> "$out/pass1.err"
    printf '%s\n' \
        '{"id":1,"op":"gemm","shape":[512,512,512]}' \
        '{"id":2,"cmd":"stats"}' \
        | "$build_dir/examples/heron_serve" \
            --dla v100 --store "$out/store.jsonl" \
            > "$out/pass2.txt" 2> "$out/pass2.err"
    python3 - "$out" <<'EOF'
import json, sys, os
out = sys.argv[1]
p1 = [json.loads(line) for line in open(os.path.join(out, "pass1.txt"))]
by_id = {r["id"]: r for r in p1}
assert by_id[1]["tier"] == "miss" and by_id[1]["enqueued"], by_id[1]
assert by_id[3]["tier"] == "exact", by_id[3]
assert by_id[3]["assignment"], by_id[3]
assert by_id[4]["tier"] == "nearest", by_id[4]
assert by_id[4]["served_from"] == by_id[3]["key"], by_id[4]
tiers = by_id[5]["tiers"]
assert tiers["exact"] == 1 and tiers["nearest"] == 1, tiers
assert tiers["miss"] == 1, tiers
# The nearest hit re-enqueues its workload; depending on timing it
# may already have tuned by the time stats is answered.
assert by_id[5]["queue"]["completed"] >= 1, by_id[5]
p2 = [json.loads(line) for line in open(os.path.join(out, "pass2.txt"))]
by_id2 = {r["id"]: r for r in p2}
assert by_id2[1]["tier"] == "exact", by_id2[1]
assert by_id2[2]["tiers"]["miss"] == 0, by_id2[2]
print("serving smoke: OK (miss->tune->exact, nearest fallback, "
      "store reload)")
EOF
}

# Serving throughput smoke out of $1: the exact-hit path must
# sustain at least 100k lookups/sec single-threaded and never
# misserve (the bench exits nonzero when an exact-hit query is
# answered from another tier).
smoke_serve_bench() {
    local build_dir="$1"
    echo "== serve bench smoke ($build_dir) =="
    "$build_dir/bench/micro_serve" --quick --out BENCH_serve.json
    python3 - <<'EOF'
import json
bench = json.load(open("BENCH_serve.json"))
rate = bench["exact_single"]["lookups_per_sec"]
assert rate >= 100000, f"exact-hit rate {rate} below 100k/sec"
assert not bench["misserved"], bench
assert bench["mixed"]["tiers"]["nearest"] > 0, bench["mixed"]
print(f"serve bench smoke: OK ({rate:.0f} exact lookups/sec)")
EOF
}

echo "== tier-1: plain build =="
cmake --preset default
cmake --build --preset default -j
ctest --preset default -j
smoke_observability build
smoke_csp_bench build
smoke_serve build
smoke_serve_bench build

if [[ "$run_asan" == 1 ]]; then
    echo "== tier-1: ASan+UBSan build =="
    cmake --preset asan
    cmake --build --preset asan -j
    UBSAN_OPTIONS=halt_on_error=1 \
        ASAN_OPTIONS=detect_leaks=0 \
        ctest --preset asan -j
    ASAN_OPTIONS=detect_leaks=0 smoke_observability build-asan
    ASAN_OPTIONS=detect_leaks=0 smoke_serve build-asan
fi

if [[ "$run_tsan" == 1 ]]; then
    echo "== tier-1: ThreadSanitizer measurement-pool tests =="
    cmake --preset tsan
    cmake --build --preset tsan -j
    TSAN_OPTIONS=halt_on_error=1 \
        ctest --preset tsan \
        -R 'test_measure_pool|test_csp_property|test_serve' \
        --no-tests=error
fi

echo "verify: OK"
