#!/usr/bin/env python3
"""Compare fresh BENCH_*.json artifacts against the committed ones.

Walks both JSON trees in parallel, collects every numeric leaf, and
classifies each metric as higher-better (throughput, speedup,
effective_parallelism) or lower-better (latency percentiles,
growth ratios). A metric that moved in the bad direction by more
than --threshold (default 20%) is reported as a regression.

Usage:
    scripts/bench_diff.py [--ref REV] [--threshold PCT] [--fail]
                          BENCH_a.json [BENCH_b.json ...]

The committed baseline is read via `git show REV:FILE` (default
HEAD), so run this after regenerating the artifacts but before
committing them. Exit code: 0 normally; 1 with --fail when any
regression was found; 2 on usage/IO errors.

Bench numbers are machine- and load-sensitive: treat the output as
advisory on shared machines and reserve --fail for pinned hardware.
Counters and config echoes (trials, seeds, solved counts, worker
counts) are ignored; only rate/latency-shaped keys are compared.
"""

import argparse
import json
import subprocess
import sys

# Key substrings that mark a metric and its good direction.
HIGHER_BETTER = (
    "per_sec",
    "speedup",
    "effective_parallelism",
)
LOWER_BETTER = (
    "p50",
    "p95",
    "_ms",
    "_us",
    "growth_ratio",
    "overhead_pct",
)


def direction(key):
    """'up', 'down', or None when the key is not a tracked metric."""
    leaf = key.rsplit(".", 1)[-1]
    for mark in HIGHER_BETTER:
        if mark in leaf:
            return "up"
    for mark in LOWER_BETTER:
        if mark in leaf:
            return "down"
    return None


def numeric_leaves(node, prefix=""):
    """Flatten a JSON tree to {dotted.path: number}."""
    out = {}
    if isinstance(node, dict):
        for key, value in node.items():
            out.update(numeric_leaves(value, f"{prefix}{key}."))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            # Prefer a stable identity over the list index when the
            # element carries one (workload name, worker count, ...).
            tag = i
            if isinstance(value, dict):
                for id_key in ("name", "workers", "threads"):
                    if id_key in value:
                        tag = f"{id_key}={value[id_key]}"
                        break
            out.update(numeric_leaves(value, f"{prefix}{tag}."))
    elif isinstance(node, bool):
        pass
    elif isinstance(node, (int, float)):
        out[prefix[:-1]] = float(node)
    return out


def committed_text(ref, path):
    try:
        return subprocess.run(
            ["git", "show", f"{ref}:{path}"],
            capture_output=True, text=True, check=True,
        ).stdout
    except subprocess.CalledProcessError:
        return None


def compare(path, ref, threshold):
    """Return (regressions, improvements, compared) for one file."""
    baseline_text = committed_text(ref, path)
    if baseline_text is None:
        print(f"{path}: no committed baseline at {ref}; skipping")
        return [], [], 0
    try:
        fresh = json.load(open(path))
    except (OSError, json.JSONDecodeError) as err:
        print(f"{path}: cannot read fresh artifact: {err}",
              file=sys.stderr)
        sys.exit(2)
    old = numeric_leaves(json.loads(baseline_text))
    new = numeric_leaves(fresh)

    regressions, improvements, compared = [], [], 0
    for key in sorted(old.keys() & new.keys()):
        sense = direction(key)
        if sense is None or old[key] == 0:
            continue
        compared += 1
        change = (new[key] - old[key]) / abs(old[key])
        bad = -change if sense == "up" else change
        line = (f"{path}:{key}  {old[key]:.3f} -> {new[key]:.3f} "
                f"({change:+.1%})")
        if bad > threshold:
            regressions.append(line)
        elif bad < -threshold:
            improvements.append(line)
    return regressions, improvements, compared


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="+",
                        help="fresh bench artifacts to compare")
    parser.add_argument("--ref", default="HEAD",
                        help="git revision holding the baseline "
                             "(default HEAD)")
    parser.add_argument("--threshold", type=float, default=20.0,
                        help="regression threshold in percent "
                             "(default 20)")
    parser.add_argument("--fail", action="store_true",
                        help="exit 1 when any regression is found")
    args = parser.parse_args()
    threshold = args.threshold / 100.0

    all_regressions = []
    for path in args.files:
        regressions, improvements, compared = compare(
            path, args.ref, threshold)
        status = (f"{path}: {compared} metrics vs {args.ref}, "
                  f"{len(regressions)} regression(s), "
                  f"{len(improvements)} improvement(s)")
        print(status)
        for line in improvements:
            print(f"  improved   {line}")
        for line in regressions:
            print(f"  REGRESSED  {line}")
        all_regressions.extend(regressions)

    if all_regressions:
        print(f"bench_diff: {len(all_regressions)} metric(s) "
              f"regressed more than {args.threshold:.0f}%"
              + ("" if args.fail else " (advisory)"))
        if args.fail:
            return 1
    else:
        print("bench_diff: no regressions beyond "
              f"{args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
