/**
 * @file
 * Tests for the TPU archetype extension: spec, generation, the
 * unified-buffer constraint from paper Table 3, simulator validity,
 * and end-to-end tuning.
 */
#include <gtest/gtest.h>

#include "autotune/tuner.h"
#include "csp/solver.h"
#include "hw/measurer.h"
#include "rules/space_generator.h"

namespace heron {
namespace {

ops::Workload
tpu_gemm(int64_t m = 1024, int64_t n = 1024, int64_t k = 1024)
{
    return ops::gemm(m, n, k, ir::DataType::kInt8);
}

TEST(Tpu, SpecMatchesTable3)
{
    auto spec = hw::DlaSpec::tpu();
    EXPECT_EQ(spec.kind, hw::DlaKind::kTpu);
    EXPECT_EQ(spec.fixed_m, 1);
    EXPECT_EQ(spec.fixed_n, 256);
    EXPECT_EQ(spec.fixed_k, 256);
    EXPECT_EQ(spec.input_buffer_capacity, 4 * 1024 * 1024);
}

TEST(Tpu, TensorizabilityRequires256Carving)
{
    auto spec = hw::DlaSpec::tpu();
    EXPECT_TRUE(rules::workload_tensorizable(spec, tpu_gemm()));
    // n = 100 cannot carve out 256.
    EXPECT_FALSE(rules::workload_tensorizable(
        spec, tpu_gemm(1024, 100, 1024)));
}

TEST(Tpu, GenerateSolveBindMeasure)
{
    auto spec = hw::DlaSpec::tpu();
    rules::SpaceGenerator gen(spec, rules::Options::heron());
    auto space = gen.generate(tpu_gemm());
    EXPECT_GT(space.csp.num_constraints(), 20u);

    csp::RandSatSolver solver(space.csp);
    hw::Measurer measurer(spec);
    Rng rng(3);
    for (int i = 0; i < 10; ++i) {
        auto a = solver.solve_one(rng);
        ASSERT_TRUE(a.has_value());
        auto program = space.bind(*a);
        auto r = measurer.measure(program);
        EXPECT_TRUE(r.valid) << r.error;
        // The Table 3 capacity constraint holds by construction.
        EXPECT_LE(
            program.scope_bytes(schedule::MemScope::kInputBuffer),
            spec.input_buffer_capacity);
    }
}

TEST(Tpu, SimulatorRejectsWrongIntrinsic)
{
    auto spec = hw::DlaSpec::tpu();
    rules::SpaceGenerator gen(spec, rules::Options::heron());
    auto space = gen.generate(tpu_gemm());
    csp::RandSatSolver solver(space.csp);
    Rng rng(5);
    auto a = solver.solve_one(rng);
    ASSERT_TRUE(a.has_value());
    auto program = space.bind(*a);
    auto sim = hw::make_simulator(spec);
    ASSERT_EQ(sim->check(program), "");
    program.stages[0].intrinsic_n = 16;
    EXPECT_NE(sim->check(program).find("matrix unit"),
              std::string::npos);
}

TEST(Tpu, HeronTunesEndToEnd)
{
    autotune::TuneConfig config;
    config.trials = 40;
    auto tuner = autotune::make_heron_tuner(hw::DlaSpec::tpu(),
                                            config);
    ASSERT_TRUE(tuner->supports(tpu_gemm()));
    EXPECT_FALSE(tuner->supports(tpu_gemm(1024, 100, 1024)));
    auto outcome = tuner->tune(tpu_gemm());
    EXPECT_TRUE(outcome.result.found());
    EXPECT_EQ(outcome.result.valid_count,
              outcome.result.total_measured);
    EXPECT_GT(outcome.result.best_gflops, 0.0);
}

TEST(Tpu, DeeperBufferTilesAmortizePipeline)
{
    // The systolic model rewards batch depth: compare two bound
    // programs differing in buffer-level m depth.
    auto spec = hw::DlaSpec::tpu();
    rules::SpaceGenerator gen(spec, rules::Options::heron());
    auto space = gen.generate(tpu_gemm());
    csp::RandSatSolver solver(space.csp);
    auto sim = hw::make_simulator(spec);
    Rng rng(7);
    double shallow_best = 1e18, deep_best = 1e18;
    for (int i = 0; i < 60; ++i) {
        auto a = solver.solve_one(rng);
        ASSERT_TRUE(a.has_value());
        auto program = space.bind(*a);
        if (!sim->check(program).empty())
            continue;
        const auto &main = program.main_stage();
        int64_t depth = 1;
        for (size_t ax = 0; ax < main.tile.size(); ++ax)
            if (!main.axis_reduce[ax])
                for (size_t l = 0; l < main.tile[ax].size(); ++l)
                    if (main.roles[ax][l] ==
                        schedule::LoopRole::kBuffer)
                        depth *= main.tile[ax][l];
        double ms = sim->latency_ms(program);
        if (depth >= 64)
            deep_best = std::min(deep_best, ms);
        if (depth <= 2)
            shallow_best = std::min(shallow_best, ms);
    }
    if (shallow_best < 1e18 && deep_best < 1e18) {
        EXPECT_LT(deep_best, shallow_best);
    }
}

} // namespace
} // namespace heron
