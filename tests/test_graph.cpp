/**
 * @file
 * Graph-serving tests: the whole-network request path (parse →
 * dedupe → batched resolution → payoff-ordered tune scheduling →
 * one-library emission). Covers the protocol round-trip, the
 * dedupe arithmetic, the payoff-ordering property (the tune plan is
 * NOT FIFO), batch-vs-sequential lookup equivalence — including
 * under concurrent put() hot-swaps (run under tsan via
 * scripts/verify.sh) — and the library dedup/alias/dispatch
 * contracts of emit_network.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "autotune/library.h"
#include "csp/solver.h"
#include "serve/graph.h"
#include "serve/graph_schedule.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/tune_queue.h"
#include "serve/workload_key.h"

namespace heron::serve {
namespace {

/** A valid (solver-produced, unmeasured) record for @p workload. */
autotune::TuningRecord
solved_record(const hw::DlaSpec &spec, const ops::Workload &workload,
              double gflops, uint64_t seed = 7)
{
    rules::SpaceGenerator generator(spec, rules::Options::heron());
    auto space = generator.generate(workload);
    csp::RandSatSolver solver(space.csp);
    Rng rng(seed);
    auto assignment = solver.solve_one(rng);
    EXPECT_TRUE(assignment.has_value());
    autotune::TuningRecord record;
    record.workload = workload.name;
    record.dla = spec.name;
    record.tuner = "test";
    record.latency_ms = 1.0;
    record.gflops = gflops;
    record.assignment = assignment ? *assignment : csp::Assignment{};
    return record;
}

// ---------------------------------------------------------------
// Protocol: graph request parsing and response formatting
// ---------------------------------------------------------------

TEST(GraphProtocol, ParsesNamedNetwork)
{
    auto spec = hw::DlaSpec::v100();
    std::string error;
    auto request = parse_request(
        R"({"id":7,"cmd":"graph","network":"resnet50","batch":8})",
        spec, &error);
    ASSERT_TRUE(request.has_value()) << error;
    EXPECT_EQ(request->kind, Request::Kind::kGraph);
    EXPECT_EQ(request->id, 7);
    EXPECT_EQ(request->network.layers.size(),
              ops::resnet50(8).layers.size());
    EXPECT_FALSE(request->graph_inline);
}

TEST(GraphProtocol, ParsesExplicitLayersWithCounts)
{
    auto spec = hw::DlaSpec::v100();
    std::string error;
    auto request = parse_request(
        R"({"id":1,"cmd":"graph","name":"tiny","layers":[)"
        R"({"op":"c2d","shape":[16,64,56,56,64,3,3,1,1],"count":3},)"
        R"({"op":"gemm","shape":[16,1000,2048]}],"emit":"inline"})",
        spec, &error);
    ASSERT_TRUE(request.has_value()) << error;
    EXPECT_EQ(request->kind, Request::Kind::kGraph);
    EXPECT_EQ(request->network.name, "tiny");
    ASSERT_EQ(request->network.layers.size(), 2u);
    EXPECT_EQ(request->network.layers[0].count, 3);
    EXPECT_EQ(request->network.layers[1].count, 1);
    EXPECT_TRUE(request->graph_inline);
}

TEST(GraphProtocol, RejectsMalformedGraphRequests)
{
    auto spec = hw::DlaSpec::v100();
    std::string error;
    // Unknown named network.
    EXPECT_FALSE(parse_request(
        R"({"id":1,"cmd":"graph","network":"nonesuch"})", spec,
        &error));
    // Empty layer list.
    EXPECT_FALSE(parse_request(
        R"({"id":1,"cmd":"graph","layers":[]})", spec, &error));
    // graph_status without a graph id.
    EXPECT_FALSE(parse_request(R"({"id":1,"cmd":"graph_status"})",
                               spec, &error));
}

TEST(GraphProtocol, StatusRoundTripAndResponseShape)
{
    auto spec = hw::DlaSpec::v100();
    std::string error;
    auto status = parse_request(
        R"({"id":2,"cmd":"graph_status","graph":41})", spec,
        &error);
    ASSERT_TRUE(status.has_value()) << error;
    EXPECT_EQ(status->kind, Request::Kind::kGraphStatus);
    EXPECT_EQ(status->graph_id, 41);

    GraphResult result;
    result.id = 41;
    result.name = "tiny";
    result.layers = 2;
    result.instances = 4;
    result.deduped = 2;
    result.miss = 2;
    result.coverage = 0.5;
    std::string line = format_graph_response(2, result);
    EXPECT_NE(line.find("\"graph\":41"), std::string::npos);
    EXPECT_NE(line.find("\"deduped\":2"), std::string::npos);
    EXPECT_NE(line.find("\"converged\":false"), std::string::npos);
    EXPECT_NE(line.find("\"library\":null"), std::string::npos);
    // One NDJSON line, whatever rides in it.
    EXPECT_EQ(line.find('\n'), std::string::npos);
}

// ---------------------------------------------------------------
// Payoff-ordered scheduling (the plan is NOT FIFO)
// ---------------------------------------------------------------

GraphLayer
miss_layer(const hw::DlaSpec &spec, ops::Workload workload,
           int64_t count)
{
    GraphLayer layer;
    layer.key = make_key(workload, spec);
    layer.workload = std::move(workload);
    layer.count = count;
    layer.tier = LookupTier::kMiss;
    return layer;
}

TEST(GraphSchedule, PlanOrdersByPayoffNotArrival)
{
    auto spec = hw::DlaSpec::v100();
    // Arrival order: cold small, cold large, hot medium. FIFO would
    // tune the small layer first; payoff order must not.
    std::vector<GraphLayer> layers;
    layers.push_back(miss_layer(spec, ops::gemm(128, 128, 128), 1));
    layers.push_back(
        miss_layer(spec, ops::gemm(1024, 1024, 1024), 1));
    layers.push_back(miss_layer(spec, ops::gemm(512, 512, 512), 9));

    auto plan = GraphTuneScheduler::plan(layers, 16);
    ASSERT_EQ(plan.size(), 3u);
    // count x FLOPs: 9x512^3 > 1x1024^3 (= 8x512^3) > 1x128^3.
    EXPECT_EQ(plan[0].layer, 2u);
    EXPECT_EQ(plan[1].layer, 1u);
    EXPECT_EQ(plan[2].layer, 0u);
    EXPECT_GT(plan[0].payoff, plan[1].payoff);
    EXPECT_GT(plan[1].payoff, plan[2].payoff);
}

TEST(GraphSchedule, ExactLayersNeverScheduleAndBudgetCaps)
{
    auto spec = hw::DlaSpec::v100();
    std::vector<GraphLayer> layers;
    layers.push_back(miss_layer(spec, ops::gemm(512, 512, 512), 4));
    layers.push_back(miss_layer(spec, ops::gemm(256, 256, 256), 2));
    layers.push_back(miss_layer(spec, ops::gemm(128, 128, 128), 1));
    layers[0].tier = LookupTier::kExact; // already answered
    auto plan = GraphTuneScheduler::plan(layers, 1);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].layer, 1u);
}

TEST(GraphSchedule, NearestTierPayoffSitsBetweenExactAndMiss)
{
    EXPECT_DOUBLE_EQ(tier_gap(LookupTier::kExact, 0.0), 0.0);
    double near = tier_gap(LookupTier::kNearest, 2.0);
    EXPECT_GT(near, 0.0);
    EXPECT_LT(near, 1.0);
    EXPECT_DOUBLE_EQ(tier_gap(LookupTier::kMiss, 0.0), 1.0);
    // Farther donors leave a larger gap (more payoff to tune).
    EXPECT_GT(tier_gap(LookupTier::kNearest, 4.0), near);
}

TEST(GraphSchedule, BudgetSplitsAcrossActiveGraphs)
{
    GraphTuneScheduler scheduler;
    EXPECT_EQ(scheduler.budget_for(64), 64u);
    scheduler.graph_opened();
    scheduler.graph_opened();
    EXPECT_EQ(scheduler.budget_for(64), 32u);
    scheduler.graph_closed();
    EXPECT_EQ(scheduler.budget_for(64), 64u);
    scheduler.graph_closed();
}

// ---------------------------------------------------------------
// Batched lookup: one hazard pass, sequential-equivalent answers
// ---------------------------------------------------------------

TEST(LookupBatch, MatchesSequentialTiers)
{
    auto spec = hw::DlaSpec::v100();
    RegistryConfig config;
    config.enable_fallback = false; // exact/miss only: no solver
    std::vector<ops::Workload> queries = {
        ops::gemm(512, 512, 512),  ops::gemm(256, 256, 256),
        ops::gemm(1024, 512, 256), ops::gemm(512, 512, 512),
        ops::gemm(128, 128, 128),
    };
    // Two identical registries so tier counters and the negative
    // cache of one run cannot leak into the other.
    KernelRegistry sequential(spec, config);
    KernelRegistry batched(spec, config);
    for (auto *registry : {&sequential, &batched}) {
        auto hit = ops::gemm(512, 512, 512);
        ASSERT_TRUE(
            registry->put(hit, solved_record(spec, hit, 80.0)));
        auto other = ops::gemm(128, 128, 128);
        ASSERT_TRUE(
            registry->put(other, solved_record(spec, other, 40.0)));
    }

    std::vector<LookupResult> expected;
    for (const auto &query : queries)
        expected.push_back(sequential.lookup(query));
    auto actual = batched.lookup_batch(queries);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < queries.size(); ++i) {
        EXPECT_EQ(actual[i].tier, expected[i].tier) << i;
        EXPECT_EQ(actual[i].record.has_value(),
                  expected[i].record.has_value())
            << i;
        EXPECT_EQ(actual[i].key.canonical(),
                  expected[i].key.canonical())
            << i;
    }
}

TEST(LookupBatch, ServesNearestTier)
{
    auto spec = hw::DlaSpec::v100();
    KernelRegistry registry(spec, {});
    auto donor = ops::gemm(512, 512, 512);
    ASSERT_TRUE(registry.put(donor, solved_record(spec, donor,
                                                  100.0)));
    auto results =
        registry.lookup_batch({ops::gemm(512, 512, 256)});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].tier, LookupTier::kNearest);
    EXPECT_TRUE(results[0].record.has_value());
    EXPECT_GT(results[0].distance, 0.0);
}

TEST(LookupBatch, HonorsDispatchMissOption)
{
    auto spec = hw::DlaSpec::v100();
    KernelRegistry registry(spec, {});
    std::atomic<int> dispatched{0};
    registry.set_miss_handler(
        [&](const ops::Workload &, const WorkloadKey &) {
            dispatched.fetch_add(1);
            return true;
        });

    LookupOptions quiet;
    quiet.dispatch_miss = false;
    auto results =
        registry.lookup_batch({ops::gemm(96, 96, 96)}, quiet);
    EXPECT_EQ(results[0].tier, LookupTier::kMiss);
    EXPECT_FALSE(results[0].enqueued);
    EXPECT_EQ(dispatched.load(), 0);

    results = registry.lookup_batch({ops::gemm(96, 96, 96)});
    EXPECT_TRUE(results[0].enqueued);
    EXPECT_EQ(dispatched.load(), 1);
}

/** Run under tsan: batched readers racing put() hot-swaps. */
TEST(GraphServeConcurrency, BatchLookupDuringHotSwaps)
{
    auto spec = hw::DlaSpec::v100();
    RegistryConfig config;
    config.enable_fallback = false;
    config.shards = 4;
    KernelRegistry registry(spec, config);

    std::vector<ops::Workload> queries;
    for (int m = 128; m <= 1024; m *= 2)
        queries.push_back(ops::gemm(m, 512, 512));
    auto seeded = solved_record(spec, queries[0], 10.0);
    ASSERT_TRUE(registry.put(queries[0], seeded));

    std::atomic<bool> writer_done{false};
    std::thread writer([&] {
        // Re-put ascending-gflops records: every accepted put
        // republishes a shard snapshot under the readers. Fixed
        // round count so every key is published however fast the
        // reader spins.
        for (int round = 0; round < 3; ++round) {
            for (const auto &query : queries) {
                auto record = solved_record(
                    spec, query, 10.0 + round,
                    static_cast<uint64_t>(round) + 1);
                registry.put(query, record);
            }
        }
        writer_done.store(true);
    });

    LookupOptions quiet;
    quiet.dispatch_miss = false;
    for (int i = 0; i < 200 || !writer_done.load(); ++i) {
        auto results = registry.lookup_batch(queries, quiet);
        ASSERT_EQ(results.size(), queries.size());
        for (const auto &result : results) {
            if (result.tier == LookupTier::kExact) {
                // A protected snapshot never yields a torn record.
                ASSERT_TRUE(result.record.has_value());
                EXPECT_FALSE(result.record->assignment.empty());
            }
        }
    }
    writer.join();
    // Everything the writer published is eventually visible.
    auto final = registry.lookup_batch(queries, quiet);
    for (size_t i = 0; i < final.size(); ++i)
        EXPECT_EQ(final[i].tier, LookupTier::kExact)
            << "query " << i << " size=" << registry.size()
            << " peek=" << registry.peek(final[i].key).has_value()
            << " single="
            << static_cast<int>(registry.lookup(queries[i]).tier);
}

// ---------------------------------------------------------------
// GraphService: dedupe, convergence, eviction
// ---------------------------------------------------------------

ops::Network
tiny_network()
{
    ops::Network net;
    net.name = "tiny";
    // Two aliases of one workload (display names differ) plus a
    // distinct one: 2 distinct keys, 5 instances, 3 deduped.
    auto a = ops::gemm(512, 512, 512);
    auto alias = ops::gemm(512, 512, 512);
    alias.name = "gemm_alias";
    net.layers.push_back({a, 2});
    net.layers.push_back({alias, 2});
    net.layers.push_back({ops::gemm(256, 256, 256), 1});
    return net;
}

TEST(GraphService, DedupesByCanonicalKey)
{
    auto spec = hw::DlaSpec::v100();
    KernelRegistry registry(spec, {});
    GraphTuneScheduler scheduler;
    GraphService service(registry, scheduler);

    auto result = service.handle_graph(tiny_network());
    EXPECT_EQ(result.layers, 2);
    EXPECT_EQ(result.instances, 5);
    EXPECT_EQ(result.deduped, 3);
    EXPECT_EQ(result.miss, 2);
    EXPECT_FALSE(result.converged);
    ASSERT_EQ(result.layer_status.size(), 2u);
    EXPECT_EQ(result.layer_status[0].count, 4);
    EXPECT_EQ(result.layer_status[1].count, 1);

    auto stats = service.stats();
    EXPECT_EQ(stats.requests, 1);
    EXPECT_EQ(stats.deduped, 3);
    EXPECT_EQ(stats.active, 1);
}

TEST(GraphService, StatusConvergesAsRecordsLand)
{
    auto spec = hw::DlaSpec::v100();
    RegistryConfig config;
    config.enable_fallback = false;
    KernelRegistry registry(spec, config);
    GraphTuneScheduler scheduler;
    GraphService service(registry, scheduler);

    auto net = tiny_network();
    auto first = service.handle_graph(net);
    EXPECT_EQ(first.exact, 0);
    EXPECT_DOUBLE_EQ(first.coverage, 0.0);

    // Background "tunes" land: the hot layer first.
    auto hot = ops::gemm(512, 512, 512);
    ASSERT_TRUE(registry.put(hot, solved_record(spec, hot, 90.0)));
    auto status = service.handle_status(first.id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->exact, 1);
    EXPECT_FALSE(status->converged);
    EXPECT_NEAR(status->coverage, 4.0 / 5.0, 1e-9);

    auto cold = ops::gemm(256, 256, 256);
    ASSERT_TRUE(registry.put(cold, solved_record(spec, cold, 30.0)));
    status = service.handle_status(first.id);
    ASSERT_TRUE(status.has_value());
    EXPECT_TRUE(status->converged);
    EXPECT_DOUBLE_EQ(status->coverage, 1.0);
    EXPECT_EQ(service.stats().active, 0); // closed on convergence

    EXPECT_FALSE(service.handle_status(first.id + 999).has_value());
}

TEST(GraphService, SchedulesThroughTuneQueueInPayoffOrder)
{
    auto spec = hw::DlaSpec::v100();
    RegistryConfig config;
    config.enable_fallback = false;
    KernelRegistry registry(spec, config);
    TuneQueueConfig queue_config;
    queue_config.capacity = 8;
    TuneQueue queue(registry, queue_config);
    queue.start();
    GraphTuneScheduler scheduler(&queue);
    GraphService service(registry, scheduler);

    auto result = service.handle_graph(tiny_network());
    EXPECT_EQ(result.scheduled, 2);
    EXPECT_EQ(service.stats().scheduled, 2);
    for (const auto &layer : result.layer_status)
        EXPECT_TRUE(layer.scheduled);
    queue.stop();
}

TEST(GraphService, EvictsOldestGraphAtCapacity)
{
    auto spec = hw::DlaSpec::v100();
    KernelRegistry registry(spec, {});
    GraphTuneScheduler scheduler;
    GraphServiceConfig config;
    config.max_graphs = 2;
    GraphService service(registry, scheduler, config);

    auto first = service.handle_graph(tiny_network());
    auto second = service.handle_graph(tiny_network());
    auto third = service.handle_graph(tiny_network());
    EXPECT_FALSE(service.handle_status(first.id).has_value());
    EXPECT_TRUE(service.handle_status(second.id).has_value());
    EXPECT_TRUE(service.handle_status(third.id).has_value());
    // Evicted-but-unconverged graphs release their scheduler slot.
    EXPECT_EQ(service.stats().active, 2);
}

// ---------------------------------------------------------------
// emit_network: dedup aliasing, collisions, dispatch coverage
// ---------------------------------------------------------------

TEST(NetworkLibrary, AddReturnsCanonicalNameForDuplicates)
{
    auto spec = hw::DlaSpec::v100();
    autotune::LibraryBuilder builder(spec, {});
    auto workload = ops::gemm(512, 512, 512);
    std::string first = builder.add(workload);
    ops::Workload alias = workload;
    alias.name = "renamed_gemm";
    // Same canonical signature: the duplicate aliases the original
    // entry's dispatch name instead of minting its own.
    EXPECT_EQ(builder.add(alias), first);
    EXPECT_EQ(builder.size(), 1u);

    // Distinct workloads whose names sanitize identically get
    // suffixed, collision-free symbols.
    auto other = ops::gemm(256, 256, 256);
    other.name = workload.name;
    std::string suffixed = builder.add(other);
    EXPECT_NE(suffixed, first);
    EXPECT_EQ(builder.size(), 2u);
}

TEST(NetworkLibrary, EmitNetworkDedupsAndDispatchesEveryLayer)
{
    auto spec = hw::DlaSpec::v100();
    auto hot = ops::gemm(512, 512, 512);
    auto cold = ops::gemm(256, 256, 256);

    std::vector<autotune::NetworkLayerSpec> layers(3);
    layers[0].workload = hot;
    layers[0].count = 2;
    layers[0].record = solved_record(spec, hot, 90.0);
    layers[1].workload = hot;
    layers[1].workload.name = "hot_alias";
    layers[1].count = 3;
    layers[1].record = layers[0].record;
    layers[2].workload = cold;
    layers[2].count = 1; // unresolved: no record

    autotune::LibraryBuilder builder(spec, {});
    auto library = builder.emit_network("tiny", layers);
    EXPECT_EQ(library.entries.size(), 2u);
    EXPECT_EQ(library.instances, 6);
    EXPECT_EQ(library.deduped, 1);
    EXPECT_EQ(library.emitted, 1);
    ASSERT_EQ(library.layer_entry.size(), 3u);
    // The alias dispatches to the same entry as the original.
    EXPECT_EQ(library.layer_entry[0], library.layer_entry[1]);
    EXPECT_NE(library.layer_entry[0], library.layer_entry[2]);

    std::string header = library.emit_header("tiny_lib");
    // Every layer index has a dispatch case; the unresolved layer
    // dispatches to nullptr instead of vanishing.
    EXPECT_NE(header.find("case 0:"), std::string::npos);
    EXPECT_NE(header.find("case 1:"), std::string::npos);
    EXPECT_NE(header.find("case 2:"), std::string::npos);
    EXPECT_NE(header.find("nullptr"), std::string::npos);
    // The shared kernel's source is emitted exactly once.
    const std::string &name = library.entries[0].kernel_name;
    size_t count = 0;
    for (size_t at = header.find("void " + name);
         at != std::string::npos;
         at = header.find("void " + name, at + 1))
        ++count;
    EXPECT_EQ(count, 1u);
}

TEST(NetworkLibrary, RejectsRecordsThatNoLongerBind)
{
    auto spec = hw::DlaSpec::v100();
    auto workload = ops::gemm(512, 512, 512);
    std::vector<autotune::NetworkLayerSpec> layers(1);
    layers[0].workload = workload;
    layers[0].record = solved_record(spec, workload, 50.0);
    // Corrupt the assignment: emit_network must re-validate via
    // try_bind and leave the layer unresolved, not emit garbage.
    layers[0].record->assignment.clear();

    autotune::LibraryBuilder builder(spec, {});
    auto library = builder.emit_network("broken", layers);
    EXPECT_EQ(library.emitted, 0);
    std::string header = library.emit_header("broken_lib");
    EXPECT_NE(header.find("nullptr"), std::string::npos);
}

} // namespace
} // namespace heron::serve
