/**
 * @file
 * Tests for the tensor-expression IR and the operator library:
 * tensors, affine expressions and footprints, contraction-role
 * analysis, DAG queries, operator builders, and network configs.
 */
#include <gtest/gtest.h>

#include "ir/dag.h"
#include "ops/networks.h"
#include "ops/op_library.h"

namespace heron::ir {
namespace {

TEST(Tensor, SizeAndBytes)
{
    Tensor t{"A", {128, 64}, DataType::kFloat16};
    EXPECT_EQ(t.num_elements(), 128 * 64);
    EXPECT_EQ(t.bytes(), 128 * 64 * 2);
    EXPECT_EQ(t.ndim(), 2);
}

TEST(Tensor, DtypeBytes)
{
    EXPECT_EQ(dtype_bytes(DataType::kFloat16), 2);
    EXPECT_EQ(dtype_bytes(DataType::kFloat32), 4);
    EXPECT_EQ(dtype_bytes(DataType::kInt8), 1);
    EXPECT_EQ(dtype_bytes(DataType::kInt32), 4);
}

TEST(LinearExpr, EvalAffine)
{
    // 2*a1 + a2 - 3
    LinearExpr e = LinearExpr::scaled(1, 2, -3);
    e.add_term(2, 1);
    EXPECT_EQ(e.eval({0, 5, 7}), 2 * 5 + 7 - 3);
}

TEST(LinearExpr, FootprintSingleAxis)
{
    LinearExpr e = LinearExpr::axis(0);
    EXPECT_EQ(e.footprint({8}), 8);
    EXPECT_EQ(e.footprint({1}), 1);
}

TEST(LinearExpr, FootprintConvWindow)
{
    // stride-2 output index plus dilation-1 window: 2*ho + rh
    LinearExpr e = LinearExpr::scaled(0, 2);
    e.add_term(1, 1);
    // ho tile 4, rh tile 3 => span 2*3 + 1*2 + 1 = 9
    EXPECT_EQ(e.footprint({4, 3}), 9);
}

TEST(LinearExpr, UsesAxis)
{
    LinearExpr e = LinearExpr::scaled(2, 4);
    EXPECT_TRUE(e.uses_axis(2));
    EXPECT_FALSE(e.uses_axis(0));
}

TEST(ContractionAnalysis, GemmRoles)
{
    auto dag = ops::make_gemm(64, 32, 16, DataType::kFloat16);
    auto roles = analyze_contraction(dag.stage(0));
    ASSERT_TRUE(roles.has_value());
    EXPECT_EQ(roles->m_axes, std::vector<int>{0});
    EXPECT_EQ(roles->n_axes, std::vector<int>{1});
    EXPECT_EQ(roles->k_axes, std::vector<int>{2});
    EXPECT_TRUE(roles->batch_axes.empty());
}

TEST(ContractionAnalysis, BmmBatchAxis)
{
    auto dag = ops::make_bmm(4, 64, 32, 16, DataType::kFloat16);
    auto roles = analyze_contraction(dag.stage(0));
    ASSERT_TRUE(roles.has_value());
    EXPECT_EQ(roles->batch_axes, std::vector<int>{0});
    EXPECT_EQ(roles->m_axes, std::vector<int>{1});
    EXPECT_EQ(roles->n_axes, std::vector<int>{2});
}

TEST(ContractionAnalysis, ConvImColView)
{
    auto dag =
        ops::make_conv2d(2, 16, 14, 14, 32, 3, 3, 1, 1, 1,
                         DataType::kFloat16);
    auto roles = analyze_contraction(dag.stage(0));
    ASSERT_TRUE(roles.has_value());
    // m = {n, ho, wo}, n = {co}, k = {rc, rh, rw}
    EXPECT_EQ(roles->m_axes, (std::vector<int>{0, 2, 3}));
    EXPECT_EQ(roles->n_axes, std::vector<int>{1});
    EXPECT_EQ(roles->k_axes, (std::vector<int>{4, 5, 6}));
}

TEST(ContractionAnalysis, ScanIsNotContraction)
{
    auto dag = ops::make_scan(4, 128, DataType::kFloat32);
    EXPECT_FALSE(analyze_contraction(dag.stage(0)).has_value());
}

TEST(ContractionAnalysis, GemvHasEmptyNRole)
{
    auto dag = ops::make_gemv(64, 32, DataType::kFloat16);
    auto roles = analyze_contraction(dag.stage(0));
    ASSERT_TRUE(roles.has_value());
    EXPECT_TRUE(roles->n_axes.empty());
    EXPECT_EQ(roles->m_axes, std::vector<int>{0});
}

TEST(Dag, ProducerConsumerQueries)
{
    auto dag = ops::make_gemm(8, 8, 8, DataType::kFloat16);
    EXPECT_TRUE(dag.is_input("A"));
    EXPECT_TRUE(dag.is_input("B"));
    EXPECT_FALSE(dag.is_input("C"));
    EXPECT_EQ(dag.producer_of("C"), 0);
    EXPECT_EQ(dag.producer_of("A"), -1);
    EXPECT_EQ(dag.tensor("A").shape, (std::vector<int64_t>{8, 8}));
}

TEST(Dag, OpCounts)
{
    auto dag = ops::make_gemm(4, 5, 6, DataType::kFloat16);
    // 2 * M*N*K multiply-accumulate ops.
    EXPECT_EQ(dag.total_ops(), 2 * 4 * 5 * 6);
}

TEST(Ops, Conv2dOutputShape)
{
    auto dag =
        ops::make_conv2d(1, 3, 224, 224, 64, 7, 7, 2, 3, 1,
                         DataType::kFloat16);
    const auto &out = dag.stage(0).output;
    // (224 + 6 - 7)/2 + 1 = 112
    EXPECT_EQ(out.shape, (std::vector<int64_t>{1, 64, 112, 112}));
}

TEST(Ops, Conv2dStridedDilated)
{
    auto dag = ops::make_conv2d(1, 8, 28, 28, 8, 3, 3, 1, 2, 2,
                                DataType::kFloat16);
    const auto &out = dag.stage(0).output;
    // pad 2: 32; effective kernel 5 => 28 outputs
    EXPECT_EQ(out.shape[2], 28);
}

TEST(Ops, T2dPreservesMacCount)
{
    // Transposed conv op count equals N*CO*HO*WO*CI*R*S * 2.
    auto w = ops::t2d(2, 16, 7, 7, 8, 4, 4, 2, 1);
    auto dag = w.build();
    const auto &out = dag.stage(0).output;
    EXPECT_EQ(out.shape[0], 2);
    EXPECT_EQ(out.shape[1], 8);
    // h_out = (7-1)*2+1 + 2*(4-1-1) - 4 + 1 = 14
    EXPECT_EQ(out.shape[2], 14);
    EXPECT_GT(w.flops(), 0);
}

TEST(Ops, WorkloadLabelsAndBuilders)
{
    for (const auto &w : ops::tensorcore_op_suite()) {
        auto dag = w.build();
        EXPECT_GE(dag.num_stages(), 1u) << w.name;
        EXPECT_GT(w.flops(), 0) << w.name;
        EXPECT_FALSE(w.label().empty());
    }
}

TEST(Ops, DlboostSuiteIsInt8)
{
    for (const auto &w : ops::dlboost_op_suite()) {
        if (w.kind == ops::OpKind::kScan)
            continue;
        EXPECT_EQ(static_cast<int>(w.dtype),
                  static_cast<int>(DataType::kInt8))
            << w.name;
    }
}

TEST(Ops, Table9MatchesPaperShapes)
{
    auto gemms = ops::table9_gemm();
    ASSERT_EQ(gemms.size(), 5u);
    EXPECT_EQ(gemms[0].params, (std::vector<int64_t>{1024, 1024,
                                                     1024}));
    EXPECT_EQ(gemms[4].params, (std::vector<int64_t>{32, 1000,
                                                     4096}));
    auto convs = ops::table9_conv();
    ASSERT_EQ(convs.size(), 5u);
    EXPECT_EQ(convs[0].name, "C1");
    // C3: stride 2, 14x14 -> 7x7.
    auto dag = convs[2].build();
    EXPECT_EQ(dag.stage(0).output.shape[2], 7);
}

TEST(Networks, AllNetworksNonEmpty)
{
    for (const auto &net : ops::all_networks(16)) {
        EXPECT_FALSE(net.layers.empty()) << net.name;
        EXPECT_GT(net.total_flops(), int64_t{1} << 30) << net.name;
        for (const auto &layer : net.layers)
            EXPECT_GE(layer.count, 1);
    }
}

TEST(Networks, Vgg16IsConvHeavy)
{
    auto net = ops::vgg16(16);
    int convs = 0;
    for (const auto &layer : net.layers)
        convs += layer.workload.kind == ops::OpKind::kC2d;
    EXPECT_GE(convs, 9);
}

TEST(Networks, BertIsGemmAndBmm)
{
    auto net = ops::bert(16, 128);
    for (const auto &layer : net.layers) {
        EXPECT_TRUE(layer.workload.kind == ops::OpKind::kGemm ||
                    layer.workload.kind == ops::OpKind::kBmm);
    }
}

} // namespace
} // namespace heron::ir
