/**
 * @file
 * Tests for constrained space generation: template structure,
 * constraint counts, solver round trips, binding, and validity of
 * bound programs on the simulators.
 */
#include <gtest/gtest.h>

#include "csp/solver.h"
#include "hw/measurer.h"
#include "ops/op_library.h"
#include "rules/space_generator.h"
#include "support/rng.h"

namespace heron::rules {
namespace {

using csp::RandSatSolver;

TEST(CanPartition, Basics)
{
    EXPECT_TRUE(can_partition(16, {32}));
    EXPECT_TRUE(can_partition(16, {4, 8}));
    EXPECT_TRUE(can_partition(8, {2, 2, 16}));
    EXPECT_FALSE(can_partition(16, {5, 5}));
    EXPECT_TRUE(can_partition(1, {}));
    EXPECT_FALSE(can_partition(3, {8}));
}

TEST(SpaceGenerator, GemmTensorCoreTemplateShape)
{
    SpaceGenerator gen(hw::DlaSpec::v100(), Options::heron());
    auto space = gen.generate(ops::gemm(512, 512, 512));

    // Main stage + acc + store + (shared+frag) x 2 inputs = 7.
    EXPECT_EQ(space.tmpl.stages.size(), 7u);
    const auto &main = space.tmpl.stage("C");
    EXPECT_TRUE(main.tensorized);
    EXPECT_EQ(main.axes.size(), 3u);
    EXPECT_EQ(main.axes[0].num_levels(), 5);
    EXPECT_EQ(main.axes[2].num_levels(), 3); // reduce
    EXPECT_GT(space.csp.num_constraints(), 50u);
    EXPECT_GT(space.csp.tunable_vars().size(), 10u);
}

TEST(SpaceGenerator, StatsInPaperBallpark)
{
    // Paper Table 4/5: GEMM on TensorCore has ~173 vars and ~372
    // constraints. Our encoding differs in detail; require the same
    // order of magnitude.
    SpaceGenerator gen(hw::DlaSpec::v100(), Options::heron());
    auto space = gen.generate(ops::gemm(512, 1024, 1024));
    EXPECT_GT(space.stats.total_vars(), 80);
    EXPECT_LT(space.stats.total_vars(), 600);
    EXPECT_GT(space.stats.constraints, 60);
    EXPECT_GT(space.stats.tunable_vars, 10);
    EXPECT_GT(space.stats.loop_vars, space.stats.tunable_vars);
}

TEST(SpaceGenerator, SolveBindMeasureRoundTrip)
{
    SpaceGenerator gen(hw::DlaSpec::v100(), Options::heron());
    auto space = gen.generate(ops::gemm(512, 512, 512));

    RandSatSolver solver(space.csp);
    Rng rng(7);
    hw::Measurer measurer(space.spec);
    int measured = 0;
    for (int i = 0; i < 20; ++i) {
        auto a = solver.solve_one(rng);
        ASSERT_TRUE(a.has_value()) << "solver failed at " << i;
        auto program = space.bind(*a);
        auto result = measurer.measure(program);
        EXPECT_TRUE(result.valid) << result.error;
        if (result.valid) {
            EXPECT_GT(result.latency_ms, 0.0);
            EXPECT_GT(result.gflops, 0.0);
            ++measured;
        }
    }
    EXPECT_EQ(measured, 20);
}

TEST(SpaceGenerator, ConvTensorCoreRoundTrip)
{
    SpaceGenerator gen(hw::DlaSpec::v100(), Options::heron());
    auto space =
        gen.generate(ops::c2d(16, 64, 28, 28, 64, 3, 3, 1, 1));

    RandSatSolver solver(space.csp);
    Rng rng(11);
    hw::Measurer measurer(space.spec);
    for (int i = 0; i < 10; ++i) {
        auto a = solver.solve_one(rng);
        ASSERT_TRUE(a.has_value());
        auto program = space.bind(*a);
        auto result = measurer.measure(program);
        EXPECT_TRUE(result.valid) << result.error;
    }
}

TEST(SpaceGenerator, BmmBatchAxisStaysOutOfIntrinsic)
{
    SpaceGenerator gen(hw::DlaSpec::v100(), Options::heron());
    auto space = gen.generate(ops::bmm(16, 128, 128, 64));
    const auto &main = space.tmpl.stage("C");
    ASSERT_TRUE(main.tensorized);
    // Batch axis (index 0) lost its intrinsic level.
    EXPECT_EQ(main.axes[0].num_levels(), 4);
    EXPECT_EQ(main.axes[1].num_levels(), 5);

    RandSatSolver solver(space.csp);
    Rng rng(13);
    hw::Measurer measurer(space.spec);
    auto a = solver.solve_one(rng);
    ASSERT_TRUE(a.has_value());
    auto result = measurer.measure(space.bind(*a));
    EXPECT_TRUE(result.valid) << result.error;
}

TEST(SpaceGenerator, GemvFallsBackToScalarPath)
{
    SpaceGenerator gen(hw::DlaSpec::v100(), Options::heron());
    auto space = gen.generate(ops::gemv(4096, 4096));
    const auto &main = space.tmpl.stage("y");
    EXPECT_FALSE(main.tensorized);

    RandSatSolver solver(space.csp);
    Rng rng(17);
    hw::Measurer measurer(space.spec);
    auto a = solver.solve_one(rng);
    ASSERT_TRUE(a.has_value());
    auto result = measurer.measure(space.bind(*a));
    EXPECT_TRUE(result.valid) << result.error;
}

TEST(SpaceGenerator, ScanUsesStreamingTemplate)
{
    SpaceGenerator gen(hw::DlaSpec::v100(), Options::heron());
    auto space =
        gen.generate(ops::scan(512, 4096, ir::DataType::kFloat32));
    const auto &main = space.tmpl.stage("S");
    EXPECT_FALSE(main.tensorized);
    // Sequential scan axis keeps a single serial level.
    EXPECT_EQ(main.axes[1].num_levels(), 1);

    RandSatSolver solver(space.csp);
    Rng rng(19);
    hw::Measurer measurer(space.spec);
    auto a = solver.solve_one(rng);
    ASSERT_TRUE(a.has_value());
    auto result = measurer.measure(space.bind(*a));
    EXPECT_TRUE(result.valid) << result.error;
}

TEST(SpaceGenerator, DlBoostRoundTrip)
{
    SpaceGenerator gen(hw::DlaSpec::dlboost(), Options::heron());
    auto space = gen.generate(
        ops::gemm(512, 1024, 1024, ir::DataType::kInt8));
    const auto &main = space.tmpl.stage("C");
    EXPECT_TRUE(main.tensorized);

    RandSatSolver solver(space.csp);
    Rng rng(23);
    hw::Measurer measurer(space.spec);
    for (int i = 0; i < 10; ++i) {
        auto a = solver.solve_one(rng);
        ASSERT_TRUE(a.has_value());
        auto result = measurer.measure(space.bind(*a));
        EXPECT_TRUE(result.valid) << result.error;
    }
}

TEST(SpaceGenerator, VtaRoundTrip)
{
    SpaceGenerator gen(hw::DlaSpec::vta(), Options::heron());
    auto space = gen.generate(
        ops::gemm(256, 256, 256, ir::DataType::kInt8));

    RandSatSolver solver(space.csp);
    Rng rng(29);
    hw::Measurer measurer(space.spec);
    for (int i = 0; i < 10; ++i) {
        auto a = solver.solve_one(rng);
        ASSERT_TRUE(a.has_value());
        auto result = measurer.measure(space.bind(*a));
        EXPECT_TRUE(result.valid) << result.error;
    }
}

TEST(SpaceGenerator, SharedMemoryConstraintHolds)
{
    SpaceGenerator gen(hw::DlaSpec::v100(), Options::heron());
    auto space = gen.generate(ops::gemm(1024, 1024, 1024));

    RandSatSolver solver(space.csp);
    Rng rng(31);
    for (int i = 0; i < 15; ++i) {
        auto a = solver.solve_one(rng);
        ASSERT_TRUE(a.has_value());
        auto program = space.bind(*a);
        EXPECT_LE(program.scope_bytes(schedule::MemScope::kShared),
                  space.spec.shared_capacity);
    }
}

TEST(SpaceGenerator, AutoTvmFlavorHasNoMemoryConstraints)
{
    SpaceGenerator heron_gen(hw::DlaSpec::v100(), Options::heron());
    SpaceGenerator autotvm_gen(hw::DlaSpec::v100(),
                               Options::autotvm());
    auto heron_space = heron_gen.generate(ops::gemm(512, 512, 512));
    auto autotvm_space =
        autotvm_gen.generate(ops::gemm(512, 512, 512));
    EXPECT_LT(autotvm_space.csp.num_constraints(),
              heron_space.csp.num_constraints());
    EXPECT_LT(autotvm_space.tmpl.stage("C").axes[0].num_levels(),
              heron_space.tmpl.stage("C").axes[0].num_levels());
}

TEST(SpaceGenerator, AnsorFlavorNotTensorized)
{
    SpaceGenerator gen(hw::DlaSpec::v100(), Options::ansor());
    auto space = gen.generate(ops::gemm(512, 512, 512));
    EXPECT_FALSE(space.tmpl.stage("C").tensorized);

    RandSatSolver solver(space.csp);
    Rng rng(37);
    hw::Measurer measurer(space.spec);
    auto a = solver.solve_one(rng);
    ASSERT_TRUE(a.has_value());
    auto result = measurer.measure(space.bind(*a));
    EXPECT_TRUE(result.valid) << result.error;
}

TEST(SpaceGenerator, Table5OperatorsAllGenerate)
{
    // Paper Table 5 lists GEMM, BMM, C1D, C2D, C3D.
    SpaceGenerator gen(hw::DlaSpec::v100(), Options::heron());
    std::vector<ops::Workload> workloads = {
        ops::gemm(512, 512, 512),
        ops::bmm(16, 128, 128, 64),
        ops::c1d(16, 64, 256, 128, 3, 1, 1),
        ops::c2d(16, 64, 28, 28, 64, 3, 3, 1, 1),
        ops::c3d(4, 16, 16, 28, 28, 32, 3, 3, 3, 1, 1),
    };
    int prev_vars = 0;
    for (const auto &w : workloads) {
        auto space = gen.generate(w);
        EXPECT_GT(space.stats.total_vars(), 50) << w.name;
        EXPECT_GT(space.stats.constraints, 40) << w.name;
        prev_vars = space.stats.total_vars();
    }
    (void)prev_vars;
}

} // namespace
} // namespace heron::rules
