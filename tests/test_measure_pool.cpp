/**
 * @file
 * Tests for the supervised parallel measurement pool: the
 * bit-identical determinism contract across worker counts, watchdog
 * cancellation of cooperative hangs, abandonment and replacement of
 * wedged workers, degradation to serial execution under attrition,
 * and the end-to-end acceptance path (fault-injected parallel run
 * killed mid-journal, resumed serially to the uninterrupted serial
 * baseline).
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "autotune/checkpoint.h"
#include "autotune/tuner.h"
#include "csp/solver.h"
#include "hw/fault_injection.h"
#include "hw/measure_pool.h"
#include "ops/op_library.h"
#include "rules/space_generator.h"
#include "support/rng.h"

namespace heron {
namespace {

using hw::MeasurePool;
using hw::MeasureResult;
using hw::MeasureStats;
using hw::MeasureTask;
using hw::PoolConfig;

/** A generated space plus a batch of bound candidate programs. */
struct Candidates {
    rules::GeneratedSpace space;
    std::vector<schedule::ConcreteProgram> programs;
};

Candidates
make_candidates(size_t count, uint64_t seed = 9)
{
    rules::SpaceGenerator gen(hw::DlaSpec::v100(),
                              rules::Options::heron());
    Candidates c{gen.generate(ops::gemm(256, 256, 256)), {}};
    csp::RandSatSolver solver(c.space.csp);
    Rng rng(seed);
    c.programs.reserve(count);
    while (c.programs.size() < count) {
        auto a = solver.solve_one(rng);
        HERON_CHECK(a.has_value());
        c.programs.push_back(c.space.bind(*a));
    }
    return c;
}

/** Everything one pool run produced, for cross-run comparison. */
struct PoolRun {
    std::vector<MeasureResult> results;
    MeasureStats stats;
    double simulated_seconds = 0.0;
    int64_t watchdog_fires = 0;
    int64_t abandoned = 0;
    bool degraded = false;
};

/**
 * Run every candidate through a fresh pool, split across @p batches
 * round-style submissions (the tuner submits one batch per round).
 */
PoolRun
run_pool(const Candidates &c, const hw::MeasureConfig &mc,
         const hw::FaultConfig &fc, const PoolConfig &pc,
         size_t batches = 1)
{
    MeasurePool pool(c.space.spec, mc, fc, pc);
    PoolRun run;
    size_t per_batch = (c.programs.size() + batches - 1) / batches;
    size_t done = 0;
    while (done < c.programs.size()) {
        std::vector<MeasureTask> tasks;
        for (size_t i = done;
             i < std::min(done + per_batch, c.programs.size()); ++i)
            tasks.push_back(
                {&c.programs[i], pool.reserve_index()});
        auto results = pool.measure_batch(tasks);
        run.results.insert(run.results.end(), results.begin(),
                           results.end());
        done += tasks.size();
    }
    run.stats = pool.stats();
    run.simulated_seconds = pool.simulated_seconds();
    run.watchdog_fires = pool.watchdog_fires();
    run.abandoned = pool.abandoned_workers();
    run.degraded = pool.degraded();
    return run;
}

void
expect_stats_eq(const MeasureStats &a, const MeasureStats &b)
{
    EXPECT_EQ(a.measurements, b.measurements);
    EXPECT_EQ(a.invalid, b.invalid);
    EXPECT_EQ(a.transient_faults, b.transient_faults);
    EXPECT_EQ(a.timeouts, b.timeouts);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.exhausted_retries, b.exhausted_retries);
    EXPECT_EQ(a.outliers_rejected, b.outliers_rejected);
    EXPECT_EQ(a.replayed, b.replayed);
    EXPECT_EQ(a.hung, b.hung);
}

void
expect_results_eq(const std::vector<MeasureResult> &a,
                  const std::vector<MeasureResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].valid, b[i].valid) << "result " << i;
        EXPECT_EQ(a[i].failure, b[i].failure) << "result " << i;
        EXPECT_EQ(a[i].attempts, b[i].attempts) << "result " << i;
        EXPECT_EQ(a[i].error, b[i].error) << "result " << i;
        EXPECT_DOUBLE_EQ(a[i].latency_ms, b[i].latency_ms)
            << "result " << i;
        EXPECT_DOUBLE_EQ(a[i].gflops, b[i].gflops)
            << "result " << i;
    }
}

TEST(MeasurePool, SerialAndParallelAreBitIdentical)
{
    auto c = make_candidates(12);
    hw::MeasureConfig mc;
    hw::FaultConfig fc;
    fc.transient_rate = 0.2;
    fc.timeout_rate = 0.1;
    fc.spurious_invalid_rate = 0.05;
    fc.hung_rate = 0.3;
    fc.seed = 77;
    PoolConfig pc;
    pc.deadline_ms = 50.0;
    pc.grace_ms = 500.0; // cooperative hangs must never be abandoned
    pc.max_abandoned = 100;

    pc.workers = 1;
    auto serial = run_pool(c, mc, fc, pc, /*batches=*/2);
    pc.workers = 4;
    auto parallel = run_pool(c, mc, fc, pc, /*batches=*/2);

    // The faults actually exercised the hang path.
    EXPECT_GT(serial.stats.hung, 0);
    EXPECT_GT(serial.watchdog_fires, 0);

    // The determinism contract: results, per-category stats,
    // simulated seconds, and watchdog fires are all bit-identical
    // across worker counts. Only abandoned/degraded (wall-clock
    // domain) are exempt, and cooperative hangs abandon nobody.
    expect_results_eq(serial.results, parallel.results);
    expect_stats_eq(serial.stats, parallel.stats);
    EXPECT_DOUBLE_EQ(serial.simulated_seconds,
                     parallel.simulated_seconds);
    EXPECT_EQ(serial.watchdog_fires, parallel.watchdog_fires);
    EXPECT_EQ(serial.abandoned, 0);
    EXPECT_EQ(parallel.abandoned, 0);
    EXPECT_FALSE(parallel.degraded);
}

TEST(MeasurePool, WatchdogCancelsCooperativeHangs)
{
    auto c = make_candidates(4);
    hw::MeasureConfig mc;
    hw::FaultConfig fc;
    fc.hung_rate = 1.0;
    PoolConfig pc;
    pc.workers = 2;
    pc.deadline_ms = 40.0;
    pc.grace_ms = 500.0;
    pc.max_abandoned = 0;

    auto run = run_pool(c, mc, fc, pc);
    ASSERT_EQ(run.results.size(), 4u);
    auto canonical = hw::hung_result();
    for (const auto &r : run.results) {
        EXPECT_FALSE(r.valid);
        EXPECT_EQ(r.failure, hw::MeasureFailure::kHung);
        EXPECT_EQ(r.attempts, canonical.attempts);
        EXPECT_EQ(r.error, canonical.error);
    }
    EXPECT_EQ(run.stats.hung, 4);
    EXPECT_EQ(run.watchdog_fires, 4);
    // Cooperative wedges release at the token deadline; nobody is
    // abandoned, so attrition (max_abandoned = 0) never triggers.
    EXPECT_EQ(run.abandoned, 0);
    EXPECT_FALSE(run.degraded);
    EXPECT_DOUBLE_EQ(run.simulated_seconds,
                     4 * hw::hung_charge_s(mc, fc));
}

TEST(MeasurePool, AbandonsWedgedWorkersAndReplacesThem)
{
    auto c = make_candidates(4);
    hw::MeasureConfig mc;
    hw::FaultConfig fc;
    fc.hung_rate = 1.0;
    fc.hung_ignores_cancel = true;
    fc.hung_stall_ms = 250.0;
    PoolConfig pc;
    pc.workers = 2;
    pc.deadline_ms = 30.0;
    pc.grace_ms = 30.0;
    pc.max_abandoned = 100;

    auto run = run_pool(c, mc, fc, pc);
    // Every slot resolves despite every worker wedging, and the
    // fabricated result is the canonical hung outcome, so journals
    // cannot tell an abandonment from a cooperative cancel.
    ASSERT_EQ(run.results.size(), 4u);
    auto canonical = hw::hung_result();
    for (const auto &r : run.results) {
        EXPECT_FALSE(r.valid);
        EXPECT_EQ(r.failure, hw::MeasureFailure::kHung);
        EXPECT_EQ(r.error, canonical.error);
    }
    EXPECT_EQ(run.stats.hung, 4);
    EXPECT_EQ(run.watchdog_fires, 4);
    // The stall (250 ms) far exceeds deadline + grace (60 ms), so
    // the watchdog abandons workers rather than waiting them out.
    EXPECT_GE(run.abandoned, 1);
    EXPECT_FALSE(run.degraded);
    EXPECT_DOUBLE_EQ(run.simulated_seconds,
                     4 * hw::hung_charge_s(mc, fc));
}

TEST(MeasurePool, AttritionDegradesToSerialNotAbort)
{
    auto c = make_candidates(8);
    hw::MeasureConfig mc;
    hw::FaultConfig fc;
    fc.hung_rate = 1.0;
    fc.hung_ignores_cancel = true;
    fc.hung_stall_ms = 150.0;
    PoolConfig pc;
    pc.workers = 4;
    pc.deadline_ms = 25.0;
    pc.grace_ms = 25.0;
    pc.max_abandoned = 0;

    MeasurePool pool(c.space.spec, mc, fc, pc);
    std::vector<MeasureTask> first;
    for (size_t i = 0; i < 6; ++i)
        first.push_back({&c.programs[i], pool.reserve_index()});
    auto results = pool.measure_batch(first);

    // One abandonment exhausts the budget; the pool degrades and
    // still resolves every slot instead of aborting the round.
    ASSERT_EQ(results.size(), 6u);
    for (const auto &r : results)
        EXPECT_EQ(r.failure, hw::MeasureFailure::kHung);
    EXPECT_TRUE(pool.degraded());
    EXPECT_GE(pool.abandoned_workers(), 1);

    // A degraded pool keeps serving batches (supervised serial).
    std::vector<MeasureTask> second;
    for (size_t i = 6; i < 8; ++i)
        second.push_back({&c.programs[i], pool.reserve_index()});
    auto more = pool.measure_batch(second);
    ASSERT_EQ(more.size(), 2u);
    for (const auto &r : more)
        EXPECT_EQ(r.failure, hw::MeasureFailure::kHung);
    EXPECT_EQ(pool.watchdog_fires(), 8);
    EXPECT_EQ(pool.stats().hung, 8);
}

/**
 * Acceptance: a 4-worker fault-injected run (cooperative hangs on)
 * whose journal is torn mid-write after 15 records resumes serially
 * to the bit-identical outcome of an uninterrupted serial run.
 */
TEST(MeasurePoolE2E, CrashedParallelRunResumesToSerialBaseline)
{
    ops::Workload workload = ops::gemm(256, 256, 256);
    autotune::TuneConfig config;
    config.trials = 40;
    config.seed = 33;
    config.faults.transient_rate = 0.1;
    config.faults.hung_rate = 0.08;
    config.watchdog_deadline_ms = 50.0;

    // Baseline: uninterrupted serial run, no journal.
    auto baseline =
        autotune::make_heron_tuner(hw::DlaSpec::v100(), config)
            ->tune(workload);
    ASSERT_TRUE(baseline.result.found());

    // Fault-injected 4-worker run; the journal is killed mid-append
    // after 15 records (a torn, CRC-less tail reaches the file).
    std::string journal =
        ::testing::TempDir() + "heron_pool_crash.jsonl";
    std::remove(journal.c_str());
    config.journal_path = journal;
    config.measure_workers = 4;
    config.journal_crash_after = 15;
    config.journal_crash_bytes = 20;
    auto crashed =
        autotune::make_heron_tuner(hw::DlaSpec::v100(), config)
            ->tune(workload);
    // Worker count must not perturb the search either.
    EXPECT_EQ(crashed.result.best, baseline.result.best);
    EXPECT_GT(crashed.measure_stats.hung, 0);

    // The torn journal loads as 15 clean records plus one recovered
    // truncation — recoverable, not corruption.
    autotune::RecordReadStats jstats;
    auto loaded = autotune::TuningJournal::load(journal, &jstats);
    EXPECT_EQ(loaded.size(), 15u);
    EXPECT_EQ(jstats.recovered_truncations, 1);
    EXPECT_FALSE(jstats.corrupt());

    // Resume serially from the torn journal.
    config.measure_workers = 1;
    config.journal_crash_after = -1;
    auto resumed =
        autotune::make_heron_tuner(hw::DlaSpec::v100(), config)
            ->tune(workload);
    EXPECT_EQ(resumed.replayed, 15);
    EXPECT_EQ(resumed.result.total_measured, 40);

    // Bit-identical convergence with the uninterrupted baseline.
    EXPECT_EQ(resumed.result.best, baseline.result.best);
    EXPECT_DOUBLE_EQ(resumed.result.best_latency_ms,
                     baseline.result.best_latency_ms);
    EXPECT_DOUBLE_EQ(resumed.result.best_gflops,
                     baseline.result.best_gflops);
    EXPECT_EQ(resumed.result.history, baseline.result.history);
    std::remove(journal.c_str());
    std::remove((journal + ".snapshot").c_str());
}

} // namespace
} // namespace heron
