/**
 * @file
 * Unit tests for the support library: RNG determinism and sampling,
 * math helpers, statistics, and table rendering.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/math_util.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"

namespace heron {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next_u64() == b.next_u64();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        int64_t v = rng.uniform_int(-3, 9);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 9);
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(7);
    std::set<int64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.uniform_int(0, 7));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    RunningStat s;
    for (int i = 0; i < 20000; ++i)
        s.push(rng.normal(5.0, 2.0));
    EXPECT_NEAR(s.mean(), 5.0, 0.1);
    EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, ShufflePermutes)
{
    Rng rng(17);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    rng.shuffle(v);
    auto sorted = v;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, orig);
}

TEST(Rng, WeightedIndexFollowsWeights)
{
    Rng rng(19);
    std::vector<double> w{1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 8000; ++i)
        counts[rng.weighted_index(w)]++;
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(counts[2] / 8000.0, 0.75, 0.05);
}

TEST(Rng, WeightedIndexAllZeroFallsBackToUniform)
{
    Rng rng(23);
    std::vector<double> w{0.0, 0.0};
    std::set<size_t> seen;
    for (int i = 0; i < 100; ++i)
        seen.insert(rng.weighted_index(w));
    EXPECT_EQ(seen.size(), 2u);
}

TEST(MathUtil, CeilDiv)
{
    EXPECT_EQ(ceil_div(10, 3), 4);
    EXPECT_EQ(ceil_div(9, 3), 3);
    EXPECT_EQ(ceil_div(1, 5), 1);
}

TEST(MathUtil, RoundUp)
{
    EXPECT_EQ(round_up(10, 4), 12);
    EXPECT_EQ(round_up(8, 4), 8);
}

TEST(MathUtil, IsPow2)
{
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(64));
    EXPECT_FALSE(is_pow2(0));
    EXPECT_FALSE(is_pow2(12));
}

TEST(MathUtil, Ilog2)
{
    EXPECT_EQ(ilog2(1), 0);
    EXPECT_EQ(ilog2(2), 1);
    EXPECT_EQ(ilog2(1023), 9);
    EXPECT_EQ(ilog2(1024), 10);
}

TEST(MathUtil, Gcd)
{
    EXPECT_EQ(gcd64(12, 18), 6);
    EXPECT_EQ(gcd64(7, 13), 1);
    EXPECT_EQ(gcd64(0, 5), 5);
}

TEST(MathUtil, DivisorsOfTwelve)
{
    std::vector<int64_t> expected{1, 2, 3, 4, 6, 12};
    EXPECT_EQ(divisors(12), expected);
}

TEST(MathUtil, DivisorsOfPrime)
{
    std::vector<int64_t> expected{1, 13};
    EXPECT_EQ(divisors(13), expected);
}

TEST(MathUtil, DivisorsOfOne)
{
    std::vector<int64_t> expected{1};
    EXPECT_EQ(divisors(1), expected);
}

TEST(MathUtil, CheckedProductSaturates)
{
    std::vector<int64_t> big{int64_t{1} << 40, int64_t{1} << 40};
    EXPECT_EQ(checked_product(big),
              std::numeric_limits<int64_t>::max());
    std::vector<int64_t> small{3, 4, 5};
    EXPECT_EQ(checked_product(small), 60);
}

TEST(Stats, RunningStatBasics)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.push(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, GeomeanOfPowers)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Stats, PercentileInterpolates)
{
    std::vector<double> xs{1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
}

TEST(Table, RendersAlignedColumns)
{
    TextTable t({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"b", "22"});
    std::string s = t.to_string();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(Table, CsvEscapesCommas)
{
    TextTable t({"a", "b"});
    t.add_row({"x,y", "plain"});
    std::string csv = t.to_csv();
    EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
}

TEST(Table, FmtHelpers)
{
    EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::fmt(int64_t{42}), "42");
}

} // namespace
} // namespace heron
