/**
 * @file
 * Unit and property tests for the CSP module: domains, constraint
 * evaluation, propagation, and the RandSAT solver.
 */
#include <gtest/gtest.h>

#include <set>

#include "csp/csp.h"
#include "csp/propagate.h"
#include "csp/solver.h"
#include "support/math_util.h"
#include "support/rng.h"

namespace heron::csp {
namespace {

TEST(Domain, SingletonBasics)
{
    Domain d = Domain::singleton(5);
    EXPECT_TRUE(d.is_singleton());
    EXPECT_EQ(d.value(), 5);
    EXPECT_TRUE(d.contains(5));
    EXPECT_FALSE(d.contains(4));
}

TEST(Domain, ExplicitSetSortsAndDedups)
{
    Domain d = Domain::of({4, 1, 4, 2});
    EXPECT_EQ(d.size(), 3);
    EXPECT_EQ(d.min(), 1);
    EXPECT_EQ(d.max(), 4);
    std::vector<int64_t> expected{1, 2, 4};
    EXPECT_EQ(d.values(), expected);
}

TEST(Domain, IntervalBounds)
{
    Domain d = Domain::interval(3, 10);
    EXPECT_EQ(d.size(), 8);
    EXPECT_TRUE(d.contains(3));
    EXPECT_TRUE(d.contains(10));
    EXPECT_FALSE(d.contains(11));
}

TEST(Domain, RestrictBoundsOnExplicit)
{
    Domain d = Domain::of({1, 2, 4, 8, 16});
    EXPECT_TRUE(d.restrict_bounds(2, 8));
    std::vector<int64_t> expected{2, 4, 8};
    EXPECT_EQ(d.values(), expected);
    EXPECT_FALSE(d.restrict_bounds(1, 100)); // no change
}

TEST(Domain, AssignOutsideWipesOut)
{
    Domain d = Domain::of({1, 2, 3});
    d.assign(9);
    EXPECT_TRUE(d.empty());
}

TEST(Domain, RemoveFromInterval)
{
    Domain d = Domain::interval(1, 5);
    EXPECT_TRUE(d.remove(1));
    EXPECT_EQ(d.min(), 2);
    EXPECT_TRUE(d.remove(5));
    EXPECT_EQ(d.max(), 4);
    EXPECT_TRUE(d.remove(3)); // interior: materializes
    std::vector<int64_t> expected{2, 4};
    EXPECT_EQ(d.values(), expected);
}

TEST(Domain, IntersectValuesConvertsInterval)
{
    Domain d = Domain::interval(0, 100);
    d.intersect_values({8, 16, 32, 256});
    std::vector<int64_t> expected{8, 16, 32};
    EXPECT_EQ(d.values(), expected);
}

TEST(Domain, FilterPredicate)
{
    Domain d = Domain::of({1, 2, 3, 4, 5, 6});
    d.filter([](int64_t v) { return v % 2 == 0; });
    std::vector<int64_t> expected{2, 4, 6};
    EXPECT_EQ(d.values(), expected);
}

TEST(Csp, NamesResolve)
{
    Csp csp;
    VarId x = csp.add_var("x", Domain::of({1, 2}), true);
    EXPECT_EQ(csp.var_id("x"), x);
    EXPECT_EQ(csp.find_var("nope"), -1);
    EXPECT_EQ(csp.tunable_vars().size(), 1u);
}

TEST(Csp, ConstCacheReuses)
{
    Csp csp;
    VarId a = csp.add_const(48 * 1024);
    VarId b = csp.add_const(48 * 1024);
    EXPECT_EQ(a, b);
}

TEST(Csp, SatisfiesEachKind)
{
    Csp csp;
    VarId x = csp.add_var("x", Domain::interval(0, 100), true);
    VarId y = csp.add_var("y", Domain::interval(0, 100), true);
    VarId z = csp.add_var("z", Domain::interval(0, 10000));
    VarId u = csp.add_var("u", Domain::interval(0, 1), true);
    csp.add_prod(z, {x, y});
    csp.add_sum(z, {x, y}); // deliberately inconsistent with prod
    csp.add_eq(x, y);
    csp.add_le(x, y);
    csp.add_in(x, {3, 5});
    csp.add_select(z, u, {x, y});

    Assignment a(4);
    a[static_cast<size_t>(x)] = 3;
    a[static_cast<size_t>(y)] = 3;
    a[static_cast<size_t>(z)] = 9;
    a[static_cast<size_t>(u)] = 0;

    const auto &cs = csp.constraints();
    EXPECT_TRUE(csp.satisfies(cs[0], a));  // 9 == 3*3
    EXPECT_FALSE(csp.satisfies(cs[1], a)); // 9 != 3+3
    EXPECT_TRUE(csp.satisfies(cs[2], a));  // 3 == 3
    EXPECT_TRUE(csp.satisfies(cs[3], a));  // 3 <= 3
    EXPECT_TRUE(csp.satisfies(cs[4], a));  // 3 in {3,5}
    EXPECT_FALSE(csp.satisfies(cs[5], a)); // z != x
    EXPECT_EQ(csp.count_violations(a), 2);
}

TEST(Propagate, ProdForwardAndBackward)
{
    Csp csp;
    VarId a = csp.add_var("a", Domain::of({2, 4}), true);
    VarId b = csp.add_var("b", Domain::of({3, 5}), true);
    VarId p = csp.add_var("p", Domain::interval(0, 1000));
    csp.add_prod(p, {a, b});

    PropagationEngine engine(csp);
    ASSERT_TRUE(engine.propagate());
    EXPECT_EQ(engine.domain(p).min(), 6);
    EXPECT_EQ(engine.domain(p).max(), 20);

    ASSERT_TRUE(engine.assign_and_propagate(a, 4));
    ASSERT_TRUE(engine.assign_and_propagate(b, 5));
    EXPECT_TRUE(engine.domain(p).is_singleton());
    EXPECT_EQ(engine.domain(p).value(), 20);
}

TEST(Propagate, ProdBackSolvesLastOperand)
{
    Csp csp;
    VarId a = csp.add_var("a", Domain::of({2, 4, 8}), true);
    VarId b = csp.add_var("b", Domain::of({2, 4, 8}), true);
    VarId p = csp.add_var("p", Domain::interval(1, 64));
    csp.add_prod(p, {a, b});

    PropagationEngine engine(csp);
    ASSERT_TRUE(engine.assign_and_propagate(p, 16));
    ASSERT_TRUE(engine.assign_and_propagate(a, 8));
    EXPECT_TRUE(engine.domain(b).is_singleton());
    EXPECT_EQ(engine.domain(b).value(), 2);
}

TEST(Propagate, ProdConflictWhenIndivisible)
{
    Csp csp;
    VarId a = csp.add_var("a", Domain::of({3}), true);
    VarId b = csp.add_var("b", Domain::of({2, 4}), true);
    VarId p = csp.add_var("p", Domain::interval(1, 64));
    csp.add_prod(p, {a, b});

    PropagationEngine engine(csp);
    EXPECT_FALSE(engine.assign_and_propagate(p, 7));
}

TEST(Propagate, SumBounds)
{
    Csp csp;
    VarId a = csp.add_var("a", Domain::interval(1, 10), true);
    VarId b = csp.add_var("b", Domain::interval(2, 20), true);
    VarId s = csp.add_var("s", Domain::interval(0, 12));
    csp.add_sum(s, {a, b});

    PropagationEngine engine(csp);
    ASSERT_TRUE(engine.propagate());
    // s <= 12 so a <= 12 - b.min = 10, b <= 12 - a.min = 11.
    EXPECT_LE(engine.domain(b).max(), 11);
    EXPECT_GE(engine.domain(s).min(), 3);
}

TEST(Propagate, LeTightensBothSides)
{
    Csp csp;
    VarId a = csp.add_var("a", Domain::interval(5, 100), true);
    VarId b = csp.add_var("b", Domain::interval(0, 50), true);
    csp.add_le(a, b);

    PropagationEngine engine(csp);
    ASSERT_TRUE(engine.propagate());
    EXPECT_LE(engine.domain(a).max(), 50);
    EXPECT_GE(engine.domain(b).min(), 5);
}

TEST(Propagate, EqMerges)
{
    Csp csp;
    VarId a = csp.add_var("a", Domain::of({1, 2, 3, 4}), true);
    VarId b = csp.add_var("b", Domain::of({3, 4, 5}), true);
    csp.add_eq(a, b);

    PropagationEngine engine(csp);
    ASSERT_TRUE(engine.propagate());
    std::vector<int64_t> expected{3, 4};
    EXPECT_EQ(engine.domain(a).values(), expected);
    EXPECT_EQ(engine.domain(b).values(), expected);
}

TEST(Propagate, InIntersects)
{
    Csp csp;
    VarId a = csp.add_var("a", Domain::interval(0, 100), true);
    csp.add_in(a, {1, 2, 4, 8, 256});

    PropagationEngine engine(csp);
    ASSERT_TRUE(engine.propagate());
    std::vector<int64_t> expected{1, 2, 4, 8};
    EXPECT_EQ(engine.domain(a).values(), expected);
}

TEST(Propagate, SelectFixedSelectorActsAsEq)
{
    Csp csp;
    VarId v = csp.add_var("v", Domain::interval(0, 100));
    VarId u = csp.add_var("u", Domain::singleton(1), true);
    VarId x = csp.add_var("x", Domain::of({7}), true);
    VarId y = csp.add_var("y", Domain::of({9}), true);
    csp.add_select(v, u, {x, y});

    PropagationEngine engine(csp);
    ASSERT_TRUE(engine.propagate());
    EXPECT_TRUE(engine.domain(v).is_singleton());
    EXPECT_EQ(engine.domain(v).value(), 9);
}

TEST(Propagate, SelectPrunesSelector)
{
    Csp csp;
    VarId v = csp.add_var("v", Domain::of({7}));
    VarId u = csp.add_var("u", Domain::interval(0, 1), true);
    VarId x = csp.add_var("x", Domain::of({7}), true);
    VarId y = csp.add_var("y", Domain::of({9}), true);
    csp.add_select(v, u, {x, y});

    PropagationEngine engine(csp);
    ASSERT_TRUE(engine.propagate());
    EXPECT_TRUE(engine.domain(u).is_singleton());
    EXPECT_EQ(engine.domain(u).value(), 0);
}

TEST(Solver, SolvesTilingChain)
{
    // Classic Heron shape: extent = t0*t1*t2 with divisor domains.
    Csp csp;
    auto divs = divisors(64);
    VarId t0 = csp.add_var("t0", Domain::of(divs), true);
    VarId t1 = csp.add_var("t1", Domain::of(divs), true);
    VarId t2 = csp.add_var("t2", Domain::of(divs), true);
    VarId e = csp.add_var("e", Domain::singleton(64));
    csp.add_prod(e, {t0, t1, t2});

    RandSatSolver solver(csp);
    Rng rng(1);
    for (int i = 0; i < 50; ++i) {
        auto a = solver.solve_one(rng);
        ASSERT_TRUE(a.has_value());
        EXPECT_EQ((*a)[static_cast<size_t>(t0)] *
                      (*a)[static_cast<size_t>(t1)] *
                      (*a)[static_cast<size_t>(t2)],
                  64);
    }
}

TEST(Solver, SolutionsAreDiverse)
{
    Csp csp;
    auto divs = divisors(256);
    VarId t0 = csp.add_var("t0", Domain::of(divs), true);
    VarId t1 = csp.add_var("t1", Domain::of(divs), true);
    VarId e = csp.add_var("e", Domain::singleton(256));
    csp.add_prod(e, {t0, t1});

    RandSatSolver solver(csp);
    Rng rng(2);
    std::set<int64_t> seen;
    for (int i = 0; i < 60; ++i) {
        auto a = solver.solve_one(rng);
        ASSERT_TRUE(a.has_value());
        seen.insert((*a)[static_cast<size_t>(t0)]);
    }
    // 9 divisors of 256; random sampling should hit most of them.
    EXPECT_GE(seen.size(), 6u);
}

TEST(Solver, RespectsMemoryStyleConstraint)
{
    // mem = a*b*4 <= 48, a,b in divisors(16)
    Csp csp;
    auto divs = divisors(16);
    VarId a = csp.add_var("a", Domain::of(divs), true);
    VarId b = csp.add_var("b", Domain::of(divs), true);
    VarId four = csp.add_const(4);
    VarId mem = csp.add_var("mem", Domain::interval(0, 1 << 20));
    VarId cap = csp.add_const(48);
    csp.add_prod(mem, {a, b, four});
    csp.add_le(mem, cap);

    RandSatSolver solver(csp);
    Rng rng(3);
    for (int i = 0; i < 40; ++i) {
        auto sol = solver.solve_one(rng);
        ASSERT_TRUE(sol.has_value());
        int64_t m = (*sol)[static_cast<size_t>(mem)];
        EXPECT_LE(m, 48);
        EXPECT_EQ(m, (*sol)[static_cast<size_t>(a)] *
                         (*sol)[static_cast<size_t>(b)] * 4);
    }
}

TEST(Solver, DetectsUnsat)
{
    Csp csp;
    VarId a = csp.add_var("a", Domain::of({2, 4}), true);
    csp.add_in(a, {3, 5});
    RandSatSolver solver(csp);
    Rng rng(4);
    EXPECT_FALSE(solver.solve_one(rng).has_value());
}

TEST(Solver, ExtraConstraintsNarrowSolutions)
{
    Csp csp;
    auto divs = divisors(64);
    VarId t0 = csp.add_var("t0", Domain::of(divs), true);
    VarId t1 = csp.add_var("t1", Domain::of(divs), true);
    VarId e = csp.add_var("e", Domain::singleton(64));
    csp.add_prod(e, {t0, t1});

    Constraint pin;
    pin.kind = ConstraintKind::kIn;
    pin.result = t0;
    pin.constants = {8};

    RandSatSolver solver(csp);
    Rng rng(5);
    for (int i = 0; i < 20; ++i) {
        auto a = solver.solve_one(rng, {pin});
        ASSERT_TRUE(a.has_value());
        EXPECT_EQ((*a)[static_cast<size_t>(t0)], 8);
        EXPECT_EQ((*a)[static_cast<size_t>(t1)], 8);
    }
}

TEST(Solver, SolveNDedups)
{
    Csp csp;
    csp.add_var("a", Domain::of({1, 2}), true);
    RandSatSolver solver(csp);
    Rng rng(6);
    auto sols = solver.solve_n(rng, 10);
    EXPECT_LE(sols.size(), 2u);
    EXPECT_GE(sols.size(), 1u);
}

TEST(Solver, TensorCoreStyleIntrinsicConstraint)
{
    // m*n*k == 4096, m,n,k in {8,16,32}: the TensorCore wmma rule.
    Csp csp;
    Domain shapes = Domain::of({8, 16, 32});
    VarId m = csp.add_var("m", shapes, true);
    VarId n = csp.add_var("n", shapes, true);
    VarId k = csp.add_var("k", shapes, true);
    VarId mnk = csp.add_const(4096);
    csp.add_prod(mnk, {m, n, k});

    RandSatSolver solver(csp);
    Rng rng(7);
    std::set<std::vector<int64_t>> seen;
    for (int i = 0; i < 100; ++i) {
        auto a = solver.solve_one(rng);
        ASSERT_TRUE(a.has_value());
        int64_t vm = (*a)[static_cast<size_t>(m)];
        int64_t vn = (*a)[static_cast<size_t>(n)];
        int64_t vk = (*a)[static_cast<size_t>(k)];
        EXPECT_EQ(vm * vn * vk, 4096);
        seen.insert({vm, vn, vk});
    }
    // {8,16,32} triples multiplying to 4096: permutations of
    // (8,16,32) plus (16,16,16) = 7 total; expect good coverage.
    EXPECT_GE(seen.size(), 5u);
}

/** Property sweep: PROD chains of varying extent solve correctly. */
class SolverExtentSweep : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(SolverExtentSweep, ProductDecompositionHolds)
{
    int64_t extent = GetParam();
    Csp csp;
    auto divs = divisors(extent);
    VarId t0 = csp.add_var("t0", Domain::of(divs), true);
    VarId t1 = csp.add_var("t1", Domain::of(divs), true);
    VarId t2 = csp.add_var("t2", Domain::of(divs), true);
    VarId t3 = csp.add_var("t3", Domain::of(divs), true);
    VarId e = csp.add_var("e", Domain::singleton(extent));
    csp.add_prod(e, {t0, t1, t2, t3});

    RandSatSolver solver(csp);
    Rng rng(static_cast<uint64_t>(extent));
    for (int i = 0; i < 10; ++i) {
        auto a = solver.solve_one(rng);
        ASSERT_TRUE(a.has_value());
        int64_t prod = 1;
        for (VarId t : {t0, t1, t2, t3})
            prod *= (*a)[static_cast<size_t>(t)];
        EXPECT_EQ(prod, extent);
    }
}

INSTANTIATE_TEST_SUITE_P(Extents, SolverExtentSweep,
                         ::testing::Values(1, 2, 12, 64, 100, 128, 504,
                                           1000, 1024, 4096));

TEST(SolverStats, AccumulatesFieldWise)
{
    SolverStats a;
    a.solve_calls = 3;
    a.solutions = 2;
    a.backtracks = 10;
    a.restarts = 1;
    a.failures = 1;
    a.unsat = 1;
    a.propagations = 40;
    a.revisions = 200;
    SolverStats b;
    b.solve_calls = 4;
    b.solutions = 4;
    b.budget_exhausted = 2;
    b.deadline_aborts = 1;
    b.propagations = 60;
    b.revisions = 300;
    b.unsat_memo_hits = 5;
    a += b;
    EXPECT_EQ(a.solve_calls, 7);
    EXPECT_EQ(a.solutions, 6);
    EXPECT_EQ(a.backtracks, 10);
    EXPECT_EQ(a.restarts, 1);
    EXPECT_EQ(a.failures, 1);
    EXPECT_EQ(a.unsat, 1);
    EXPECT_EQ(a.budget_exhausted, 2);
    EXPECT_EQ(a.deadline_aborts, 1);
    EXPECT_EQ(a.propagations, 100);
    EXPECT_EQ(a.revisions, 500);
    EXPECT_EQ(a.unsat_memo_hits, 5);
}

TEST(Solver, UnsatMemoShortCircuitsRepeatedProofs)
{
    Csp csp;
    VarId t = csp.add_var("t", Domain::of({1, 2, 3, 4}), true);
    RandSatSolver solver(csp);
    Rng rng(1);

    // An extra set disproved by root propagation: t pinned to a
    // value outside its domain.
    Constraint pin;
    pin.kind = ConstraintKind::kIn;
    pin.result = t;
    pin.constants = {9};
    std::vector<Constraint> extra = {pin};

    EXPECT_FALSE(solver.solve_one(rng, extra).has_value());
    EXPECT_EQ(solver.last_failure(), SolveFailure::kUnsat);
    EXPECT_EQ(solver.stats().unsat_memo_hits, 0);

    // The same (proven-UNSAT) set again: answered from the memo.
    EXPECT_FALSE(solver.solve_one(rng, extra).has_value());
    EXPECT_EQ(solver.last_failure(), SolveFailure::kUnsat);
    EXPECT_EQ(solver.stats().unsat_memo_hits, 1);
    EXPECT_EQ(solver.stats().unsat, 2);

    // A satisfiable set is unaffected, and the base problem still
    // solves — the engine popped cleanly back to the root fixpoint.
    pin.constants = {2, 3};
    EXPECT_TRUE(solver.solve_one(rng, {pin}).has_value());
    auto base = solver.solve_one(rng);
    ASSERT_TRUE(base.has_value());
    EXPECT_TRUE(csp.valid(*base));
    EXPECT_EQ(solver.stats().unsat_memo_hits, 1);
}

TEST(Solver, UnsatMemoCanBeDisabled)
{
    Csp csp;
    VarId t = csp.add_var("t", Domain::of({1, 2}), true);
    SolverConfig config;
    config.unsat_memo = false;
    RandSatSolver solver(csp, config);
    Rng rng(1);
    Constraint pin;
    pin.kind = ConstraintKind::kIn;
    pin.result = t;
    pin.constants = {7};
    EXPECT_FALSE(solver.solve_one(rng, {pin}).has_value());
    EXPECT_FALSE(solver.solve_one(rng, {pin}).has_value());
    EXPECT_EQ(solver.stats().unsat_memo_hits, 0);
    EXPECT_EQ(solver.stats().unsat, 2);
}

} // namespace
} // namespace heron::csp
