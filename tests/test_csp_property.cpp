/**
 * @file
 * Property/fuzz tests for the CSP solver: random small problems are
 * brute-forced for ground truth and compared against RandSAT
 * (soundness always; completeness on satisfiable instances), and
 * propagation is validated never to prune a brute-force solution.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <limits>

#include "csp/propagate.h"
#include "csp/sample_batch.h"
#include "csp/solver.h"
#include "ops/op_library.h"
#include "rules/space_generator.h"
#include "support/math_util.h"
#include "support/rng.h"

namespace heron::csp {
namespace {

/** A randomly generated small CSP plus its brute-force solutions. */
struct FuzzProblem {
    Csp csp;
    std::vector<Assignment> solutions; // over all vars
};

/**
 * Build a random problem: 3-5 tunable vars with small explicit
 * domains, 1-2 derived vars, and random constraints among them.
 */
FuzzProblem
make_problem(uint64_t seed)
{
    Rng rng(seed);
    FuzzProblem problem;
    Csp &csp = problem.csp;

    int num_tunables = static_cast<int>(rng.uniform_int(3, 5));
    std::vector<VarId> tunables;
    for (int i = 0; i < num_tunables; ++i) {
        std::vector<int64_t> values;
        int size = static_cast<int>(rng.uniform_int(2, 4));
        for (int v = 0; v < size; ++v)
            values.push_back(rng.uniform_int(1, 6));
        tunables.push_back(csp.add_var("t" + std::to_string(i),
                                       Domain::of(values), true));
    }

    // One PROD and one SUM derived variable over random operands.
    auto random_operands = [&]() {
        std::vector<VarId> ops;
        int count = static_cast<int>(rng.uniform_int(2, 3));
        for (int i = 0; i < count; ++i)
            ops.push_back(rng.pick(tunables));
        return ops;
    };
    VarId prod = csp.add_var("prod", Domain::interval(1, 1000));
    csp.add_prod(prod, random_operands());
    VarId sum = csp.add_var("sum", Domain::interval(0, 100));
    csp.add_sum(sum, random_operands());

    // Random relational constraints.
    if (rng.bernoulli(0.5))
        csp.add_le(rng.pick(tunables), rng.pick(tunables));
    if (rng.bernoulli(0.5))
        csp.add_in(rng.pick(tunables),
                   {rng.uniform_int(1, 6), rng.uniform_int(1, 6)});
    if (rng.bernoulli(0.4))
        csp.add_le(prod, csp.add_const(rng.uniform_int(4, 60)));
    if (rng.bernoulli(0.3))
        csp.add_eq(rng.pick(tunables), rng.pick(tunables));

    // Brute force over tunables; derived vars are functionally
    // determined (prod/sum of tunables).
    std::vector<int64_t> values(csp.num_vars(), 0);
    std::function<void(size_t)> enumerate = [&](size_t index) {
        if (index == tunables.size()) {
            Assignment a = values;
            // Constants and other fixed vars take their domain
            // value; derived vars are overwritten below.
            for (size_t v = 0; v < csp.num_vars(); ++v) {
                const auto &info = csp.var(static_cast<VarId>(v));
                if (!info.tunable && !info.initial.empty())
                    a[v] = info.initial.min();
            }
            for (VarId t : tunables)
                a[static_cast<size_t>(t)] =
                    values[static_cast<size_t>(t)];
            // Fill derived vars by evaluating their constraints.
            for (const auto &c : csp.constraints()) {
                if (c.kind == ConstraintKind::kProd) {
                    int64_t p = 1;
                    for (VarId op : c.operands)
                        p *= a[static_cast<size_t>(op)];
                    if (static_cast<size_t>(c.result) >=
                        tunables.size())
                        a[static_cast<size_t>(c.result)] = p;
                }
                if (c.kind == ConstraintKind::kSum) {
                    int64_t s = 0;
                    for (VarId op : c.operands)
                        s += a[static_cast<size_t>(op)];
                    if (static_cast<size_t>(c.result) >=
                        tunables.size())
                        a[static_cast<size_t>(c.result)] = s;
                }
            }
            if (csp.valid(a))
                problem.solutions.push_back(std::move(a));
            return;
        }
        for (int64_t v :
             csp.var(tunables[index]).initial.values()) {
            values[static_cast<size_t>(tunables[index])] = v;
            enumerate(index + 1);
        }
    };
    enumerate(0);
    return problem;
}

class SolverFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SolverFuzz, AgreesWithBruteForce)
{
    auto problem = make_problem(GetParam());
    RandSatSolver solver(problem.csp);
    Rng rng(GetParam() * 31 + 7);
    auto result = solver.solve_one(rng);

    if (problem.solutions.empty()) {
        // Unsat: the solver must not fabricate a solution
        // (solve_one internally asserts validity, so returning
        // nullopt is the only sound outcome).
        EXPECT_FALSE(result.has_value());
    } else {
        ASSERT_TRUE(result.has_value());
        EXPECT_TRUE(problem.csp.valid(*result));
        // The returned solution must be among the brute-forced set
        // when projected onto the tunables.
        bool found = false;
        for (const auto &sol : problem.solutions) {
            bool same = true;
            for (VarId t : problem.csp.tunable_vars())
                same &= sol[static_cast<size_t>(t)] ==
                        (*result)[static_cast<size_t>(t)];
            found |= same;
        }
        EXPECT_TRUE(found);
    }
}

TEST_P(SolverFuzz, PropagationNeverPrunesSolutions)
{
    auto problem = make_problem(GetParam() + 5000);
    PropagationEngine engine(problem.csp);
    bool consistent = engine.propagate();
    if (!consistent) {
        EXPECT_TRUE(problem.solutions.empty());
        return;
    }
    for (const auto &sol : problem.solutions) {
        for (size_t v = 0; v < problem.csp.num_vars(); ++v) {
            EXPECT_TRUE(engine.domain(static_cast<VarId>(v))
                            .contains(sol[v]))
                << "propagation pruned value " << sol[v]
                << " of var "
                << problem.csp.var(static_cast<VarId>(v)).name;
        }
    }
}

TEST_P(SolverFuzz, SolveNReturnsDistinctValidSolutions)
{
    auto problem = make_problem(GetParam() + 9000);
    if (problem.solutions.empty())
        GTEST_SKIP() << "unsat instance";
    RandSatSolver solver(problem.csp);
    Rng rng(GetParam());
    auto sols = solver.solve_n(rng, 4);
    EXPECT_GE(sols.size(), 1u);
    for (size_t i = 0; i < sols.size(); ++i) {
        EXPECT_TRUE(problem.csp.valid(sols[i]));
        for (size_t j = i + 1; j < sols.size(); ++j)
            EXPECT_NE(sols[i], sols[j]);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverFuzz,
                         ::testing::Range<uint64_t>(1, 41));

/**
 * Reference solver: snapshot-per-decision backtracking, the way the
 * solver worked before the undo trail was introduced. It replicates
 * RandSatSolver's branching heuristics and RNG consumption exactly
 * but undoes every decision by restoring a full copy of all
 * domains, so agreement with RandSatSolver on the same seed proves
 * the trail rewrite is search-order preserving.
 */
class SnapshotReferenceSolver
{
  public:
    explicit SnapshotReferenceSolver(const Csp &csp,
                                     SolverConfig config = {})
        : csp_(csp), config_(config), engine_(csp)
    {
        root_ok_ = engine_.propagate();
    }

    std::optional<Assignment>
    solve_one(Rng &rng)
    {
        if (!root_ok_)
            return std::nullopt;
        rng_ = &rng;
        const std::vector<Domain> root = engine_.domains();
        for (int restart = 0; restart < config_.max_restarts;
             ++restart) {
            backtracks_left_ = config_.max_backtracks_per_restart;
            if (recurse()) {
                Assignment a = engine_.extract();
                engine_.restore(root);
                return a;
            }
            engine_.restore(root);
        }
        return std::nullopt;
    }

  private:
    const Csp &csp_;
    SolverConfig config_;
    PropagationEngine engine_;
    bool root_ok_ = false;
    Rng *rng_ = nullptr;
    int backtracks_left_ = 0;

    VarId
    pick_branch_var()
    {
        std::vector<VarId> open;
        if (config_.branch_tunables_first) {
            int64_t best = std::numeric_limits<int64_t>::max();
            for (VarId v : csp_.tunable_vars()) {
                const Domain &d = engine_.domain(v);
                if (d.is_singleton())
                    continue;
                if (d.size() < best) {
                    best = d.size();
                    open.clear();
                }
                if (d.size() == best)
                    open.push_back(v);
            }
            if (!open.empty())
                return open[rng_->index(open.size())];
        }
        VarId best = -1;
        int64_t best_size = 0;
        for (size_t i = 0; i < csp_.num_vars(); ++i) {
            const Domain &d = engine_.domain(static_cast<VarId>(i));
            if (d.is_singleton())
                continue;
            if (best < 0 || d.size() < best_size) {
                best = static_cast<VarId>(i);
                best_size = d.size();
            }
        }
        return best;
    }

    std::vector<int64_t>
    candidate_values(const Domain &d)
    {
        std::vector<int64_t> vals;
        if (d.is_explicit() || d.size() <= 256) {
            vals = d.values();
            rng_->shuffle(vals);
        } else {
            vals.push_back(d.min());
            vals.push_back(d.max());
            for (int i = 0; i < 6; ++i)
                vals.push_back(rng_->uniform_int(d.min(), d.max()));
            std::sort(vals.begin(), vals.end());
            vals.erase(std::unique(vals.begin(), vals.end()),
                       vals.end());
            rng_->shuffle(vals);
        }
        return vals;
    }

    bool
    recurse()
    {
        VarId var = pick_branch_var();
        if (var < 0)
            return engine_.all_assigned();
        for (int64_t value : candidate_values(engine_.domain(var))) {
            std::vector<Domain> snapshot = engine_.domains();
            if (engine_.assign_and_propagate(var, value)) {
                if (recurse())
                    return true;
            }
            engine_.restore(std::move(snapshot));
            if (--backtracks_left_ <= 0)
                return false;
        }
        return false;
    }
};

/** Solve the same problem with both solvers on the same seed. */
void
expect_trail_matches_snapshot(const Csp &csp, uint64_t seed)
{
    SolverConfig config;
    config.unsat_memo = false;
    RandSatSolver trail_solver(csp, config);
    SnapshotReferenceSolver snapshot_solver(csp, config);
    Rng trail_rng(seed);
    Rng snapshot_rng(seed);
    auto trail = trail_solver.solve_one(trail_rng);
    auto snapshot = snapshot_solver.solve_one(snapshot_rng);
    ASSERT_EQ(trail.has_value(), snapshot.has_value());
    if (trail)
        EXPECT_EQ(*trail, *snapshot);
    // Both searches consumed identical RNG streams.
    EXPECT_EQ(trail_rng.next_u64(), snapshot_rng.next_u64());
}

TEST_P(SolverFuzz, TrailSolverMatchesSnapshotReference)
{
    auto problem = make_problem(GetParam() + 13000);
    for (uint64_t round = 0; round < 3; ++round)
        expect_trail_matches_snapshot(problem.csp,
                                      GetParam() * 97 + round);
}

TEST(TrailEquivalence, MatchesSnapshotReferenceOnRealSpaces)
{
    rules::SpaceGenerator gen(hw::DlaSpec::v100(),
                              rules::Options::heron());
    auto gemm = gen.generate(ops::gemm(512, 512, 512));
    auto c2d =
        gen.generate(ops::c2d(16, 64, 28, 28, 64, 3, 3, 1, 1,
                              ir::DataType::kFloat16));
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        expect_trail_matches_snapshot(gemm.csp, seed);
        expect_trail_matches_snapshot(c2d.csp, seed);
    }
}

TEST_P(SolverFuzz, TrailUndoRestoresExactRootDomains)
{
    auto problem = make_problem(GetParam() + 17000);
    PropagationEngine engine(problem.csp);
    if (!engine.propagate())
        return;
    const std::vector<Domain> root = engine.domains();
    Rng rng(GetParam());
    for (int round = 0; round < 8; ++round) {
        VarId var = static_cast<VarId>(
            rng.index(problem.csp.num_vars()));
        const Domain &d = engine.domain(var);
        if (d.empty())
            continue;
        int64_t value = rng.bernoulli(0.5) ? d.min() : d.max();
        engine.push_level();
        engine.assign_and_propagate(var, value);
        engine.pop_level();
        for (size_t v = 0; v < problem.csp.num_vars(); ++v)
            EXPECT_EQ(engine.domain(static_cast<VarId>(v)).values(),
                      root[v].values())
                << "trail undo corrupted var "
                << problem.csp.var(static_cast<VarId>(v)).name;
    }
}

/** Field-wise SolverStats equality (no operator== on purpose). */
void
expect_stats_equal(const SolverStats &a, const SolverStats &b)
{
    EXPECT_EQ(a.solve_calls, b.solve_calls);
    EXPECT_EQ(a.solutions, b.solutions);
    EXPECT_EQ(a.backtracks, b.backtracks);
    EXPECT_EQ(a.restarts, b.restarts);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.unsat, b.unsat);
    EXPECT_EQ(a.budget_exhausted, b.budget_exhausted);
    EXPECT_EQ(a.deadline_aborts, b.deadline_aborts);
    EXPECT_EQ(a.propagations, b.propagations);
    EXPECT_EQ(a.revisions, b.revisions);
    EXPECT_EQ(a.unsat_memo_hits, b.unsat_memo_hits);
}

TEST(SampleBatchDeterminism, WorkerCountInvariantOnRealSpace)
{
    rules::SpaceGenerator gen(hw::DlaSpec::v100(),
                              rules::Options::heron());
    auto space = gen.generate(ops::gemm(512, 512, 512));
    SampleBatch serial(space.csp, {}, 1);
    SampleBatch two(space.csp, {}, 2);
    SampleBatch four(space.csp, {}, 4);
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        auto a = serial.sample(seed, 12);
        auto b = two.sample(seed, 12);
        auto c = four.sample(seed, 12);
        EXPECT_GE(a.size(), 1u);
        EXPECT_EQ(a, b);
        EXPECT_EQ(a, c);
        for (const auto &sol : a)
            EXPECT_TRUE(space.csp.valid(sol));
    }
    expect_stats_equal(serial.stats(), two.stats());
    expect_stats_equal(serial.stats(), four.stats());
}

TEST(SampleBatchDeterminism, RepeatCallsArePureFunctionsOfSeed)
{
    rules::SpaceGenerator gen(hw::DlaSpec::v100(),
                              rules::Options::heron());
    auto space = gen.generate(ops::gemm(512, 512, 512));
    SampleBatch batch(space.csp, {}, 3);
    auto first = batch.sample(7, 8);
    auto second = batch.sample(7, 8);
    EXPECT_EQ(first, second);
    EXPECT_NE(batch.sample(8, 8), first);
}

TEST(SampleBatchDeterminism, ExtraConstraintsWorkerInvariant)
{
    rules::SpaceGenerator gen(hw::DlaSpec::v100(),
                              rules::Options::heron());
    auto space = gen.generate(ops::gemm(512, 512, 512));
    // Pin a tunable to two of its values, CGA-crossover style.
    VarId key = space.csp.tunable_vars().front();
    const Domain &d = space.csp.var(key).initial;
    Constraint pin;
    pin.kind = ConstraintKind::kIn;
    pin.result = key;
    pin.constants = {d.min(), d.max()};
    std::vector<Constraint> extra = {pin};
    SampleBatch serial(space.csp, {}, 1);
    SampleBatch four(space.csp, {}, 4);
    auto a = serial.sample(11, 6, extra);
    auto b = four.sample(11, 6, extra);
    EXPECT_EQ(a, b);
    EXPECT_EQ(serial.last_failure(), four.last_failure());
    for (const auto &sol : a)
        EXPECT_TRUE(space.csp.satisfies(pin, sol));
}

TEST_P(SolverFuzz, SampleBatchWorkerInvariantOnFuzzProblems)
{
    auto problem = make_problem(GetParam() + 21000);
    SampleBatch serial(problem.csp, {}, 1);
    SampleBatch four(problem.csp, {}, 4);
    auto a = serial.sample(GetParam(), 6);
    auto b = four.sample(GetParam(), 6);
    EXPECT_EQ(a, b);
    EXPECT_EQ(serial.last_failure(), four.last_failure());
    expect_stats_equal(serial.stats(), four.stats());
}

} // namespace
} // namespace heron::csp
