/**
 * @file
 * Property/fuzz tests for the CSP solver: random small problems are
 * brute-forced for ground truth and compared against RandSAT
 * (soundness always; completeness on satisfiable instances), and
 * propagation is validated never to prune a brute-force solution.
 */
#include <gtest/gtest.h>

#include <functional>

#include "csp/propagate.h"
#include "csp/solver.h"
#include "support/math_util.h"
#include "support/rng.h"

namespace heron::csp {
namespace {

/** A randomly generated small CSP plus its brute-force solutions. */
struct FuzzProblem {
    Csp csp;
    std::vector<Assignment> solutions; // over all vars
};

/**
 * Build a random problem: 3-5 tunable vars with small explicit
 * domains, 1-2 derived vars, and random constraints among them.
 */
FuzzProblem
make_problem(uint64_t seed)
{
    Rng rng(seed);
    FuzzProblem problem;
    Csp &csp = problem.csp;

    int num_tunables = static_cast<int>(rng.uniform_int(3, 5));
    std::vector<VarId> tunables;
    for (int i = 0; i < num_tunables; ++i) {
        std::vector<int64_t> values;
        int size = static_cast<int>(rng.uniform_int(2, 4));
        for (int v = 0; v < size; ++v)
            values.push_back(rng.uniform_int(1, 6));
        tunables.push_back(csp.add_var("t" + std::to_string(i),
                                       Domain::of(values), true));
    }

    // One PROD and one SUM derived variable over random operands.
    auto random_operands = [&]() {
        std::vector<VarId> ops;
        int count = static_cast<int>(rng.uniform_int(2, 3));
        for (int i = 0; i < count; ++i)
            ops.push_back(rng.pick(tunables));
        return ops;
    };
    VarId prod = csp.add_var("prod", Domain::interval(1, 1000));
    csp.add_prod(prod, random_operands());
    VarId sum = csp.add_var("sum", Domain::interval(0, 100));
    csp.add_sum(sum, random_operands());

    // Random relational constraints.
    if (rng.bernoulli(0.5))
        csp.add_le(rng.pick(tunables), rng.pick(tunables));
    if (rng.bernoulli(0.5))
        csp.add_in(rng.pick(tunables),
                   {rng.uniform_int(1, 6), rng.uniform_int(1, 6)});
    if (rng.bernoulli(0.4))
        csp.add_le(prod, csp.add_const(rng.uniform_int(4, 60)));
    if (rng.bernoulli(0.3))
        csp.add_eq(rng.pick(tunables), rng.pick(tunables));

    // Brute force over tunables; derived vars are functionally
    // determined (prod/sum of tunables).
    std::vector<int64_t> values(csp.num_vars(), 0);
    std::function<void(size_t)> enumerate = [&](size_t index) {
        if (index == tunables.size()) {
            Assignment a = values;
            // Constants and other fixed vars take their domain
            // value; derived vars are overwritten below.
            for (size_t v = 0; v < csp.num_vars(); ++v) {
                const auto &info = csp.var(static_cast<VarId>(v));
                if (!info.tunable && !info.initial.empty())
                    a[v] = info.initial.min();
            }
            for (VarId t : tunables)
                a[static_cast<size_t>(t)] =
                    values[static_cast<size_t>(t)];
            // Fill derived vars by evaluating their constraints.
            for (const auto &c : csp.constraints()) {
                if (c.kind == ConstraintKind::kProd) {
                    int64_t p = 1;
                    for (VarId op : c.operands)
                        p *= a[static_cast<size_t>(op)];
                    if (static_cast<size_t>(c.result) >=
                        tunables.size())
                        a[static_cast<size_t>(c.result)] = p;
                }
                if (c.kind == ConstraintKind::kSum) {
                    int64_t s = 0;
                    for (VarId op : c.operands)
                        s += a[static_cast<size_t>(op)];
                    if (static_cast<size_t>(c.result) >=
                        tunables.size())
                        a[static_cast<size_t>(c.result)] = s;
                }
            }
            if (csp.valid(a))
                problem.solutions.push_back(std::move(a));
            return;
        }
        for (int64_t v :
             csp.var(tunables[index]).initial.values()) {
            values[static_cast<size_t>(tunables[index])] = v;
            enumerate(index + 1);
        }
    };
    enumerate(0);
    return problem;
}

class SolverFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SolverFuzz, AgreesWithBruteForce)
{
    auto problem = make_problem(GetParam());
    RandSatSolver solver(problem.csp);
    Rng rng(GetParam() * 31 + 7);
    auto result = solver.solve_one(rng);

    if (problem.solutions.empty()) {
        // Unsat: the solver must not fabricate a solution
        // (solve_one internally asserts validity, so returning
        // nullopt is the only sound outcome).
        EXPECT_FALSE(result.has_value());
    } else {
        ASSERT_TRUE(result.has_value());
        EXPECT_TRUE(problem.csp.valid(*result));
        // The returned solution must be among the brute-forced set
        // when projected onto the tunables.
        bool found = false;
        for (const auto &sol : problem.solutions) {
            bool same = true;
            for (VarId t : problem.csp.tunable_vars())
                same &= sol[static_cast<size_t>(t)] ==
                        (*result)[static_cast<size_t>(t)];
            found |= same;
        }
        EXPECT_TRUE(found);
    }
}

TEST_P(SolverFuzz, PropagationNeverPrunesSolutions)
{
    auto problem = make_problem(GetParam() + 5000);
    PropagationEngine engine(problem.csp);
    bool consistent = engine.propagate();
    if (!consistent) {
        EXPECT_TRUE(problem.solutions.empty());
        return;
    }
    for (const auto &sol : problem.solutions) {
        for (size_t v = 0; v < problem.csp.num_vars(); ++v) {
            EXPECT_TRUE(engine.domain(static_cast<VarId>(v))
                            .contains(sol[v]))
                << "propagation pruned value " << sol[v]
                << " of var "
                << problem.csp.var(static_cast<VarId>(v)).name;
        }
    }
}

TEST_P(SolverFuzz, SolveNReturnsDistinctValidSolutions)
{
    auto problem = make_problem(GetParam() + 9000);
    if (problem.solutions.empty())
        GTEST_SKIP() << "unsat instance";
    RandSatSolver solver(problem.csp);
    Rng rng(GetParam());
    auto sols = solver.solve_n(rng, 4);
    EXPECT_GE(sols.size(), 1u);
    for (size_t i = 0; i < sols.size(); ++i) {
        EXPECT_TRUE(problem.csp.valid(sols[i]));
        for (size_t j = i + 1; j < sols.size(); ++j)
            EXPECT_NE(sols[i], sols[j]);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverFuzz,
                         ::testing::Range<uint64_t>(1, 41));

} // namespace
} // namespace heron::csp
