/**
 * @file
 * Tests for the kernel emitters, the library builder, and the
 * tuning-record persistence/replay round trip.
 */
#include <gtest/gtest.h>

#include "autotune/library.h"
#include "autotune/record.h"
#include "codegen/emitter.h"
#include "csp/solver.h"
#include "hw/measurer.h"
#include "support/rng.h"

namespace heron::codegen {
namespace {

rules::GeneratedSpace
make_space(hw::DlaSpec spec, ops::Workload workload)
{
    rules::SpaceGenerator gen(std::move(spec),
                              rules::Options::heron());
    return gen.generate(workload);
}

csp::Assignment
sample(const rules::GeneratedSpace &space, uint64_t seed)
{
    csp::RandSatSolver solver(space.csp);
    Rng rng(seed);
    auto a = solver.solve_one(rng);
    EXPECT_TRUE(a.has_value());
    return *a;
}

TEST(SanitizeIdentifier, Basics)
{
    EXPECT_EQ(sanitize_identifier("GEMM-512x512"), "GEMM_512x512");
    EXPECT_EQ(sanitize_identifier("3conv"), "k_3conv");
    EXPECT_EQ(sanitize_identifier("a.b c"), "a_b_c");
}

TEST(CudaEmitter, TensorizedGemmContainsWmma)
{
    auto space =
        make_space(hw::DlaSpec::v100(), ops::gemm(256, 256, 256));
    auto program = space.bind(sample(space, 1));
    std::string src = emit_cuda(space, program);
    EXPECT_NE(src.find("__global__"), std::string::npos);
    EXPECT_NE(src.find("mma_sync"), std::string::npos);
    EXPECT_NE(src.find("__shared__"), std::string::npos);
    EXPECT_NE(src.find("launch: <<<"), std::string::npos);
}

TEST(CudaEmitter, ScalarPathHasNoWmma)
{
    rules::SpaceGenerator gen(hw::DlaSpec::v100(),
                              rules::Options::ansor());
    auto space = gen.generate(ops::gemm(256, 256, 256));
    auto program = space.bind(sample(space, 2));
    std::string src = emit_cuda(space, program);
    EXPECT_EQ(src.find("mma_sync"), std::string::npos);
    EXPECT_NE(src.find("CUDA-core path"), std::string::npos);
}

TEST(CpuEmitter, VnniIntrinsicPresent)
{
    auto space = make_space(
        hw::DlaSpec::dlboost(),
        ops::gemm(256, 256, 256, ir::DataType::kInt8));
    auto program = space.bind(sample(space, 3));
    std::string src = emit_cpu(space, program);
    EXPECT_NE(src.find("_mm512_dpbusd_epi32"), std::string::npos);
    EXPECT_NE(src.find("#pragma omp parallel"), std::string::npos);
}

TEST(VtaEmitter, CommandStream)
{
    auto space = make_space(
        hw::DlaSpec::vta(),
        ops::gemm(256, 256, 256, ir::DataType::kInt8));
    auto program = space.bind(sample(space, 4));
    std::string src = emit_vta(space, program);
    EXPECT_NE(src.find("vta_load"), std::string::npos);
    EXPECT_NE(src.find("vta_gemm"), std::string::npos);
    EXPECT_NE(src.find("vta_store"), std::string::npos);
    EXPECT_NE(src.find("vta_sync"), std::string::npos);
}

TEST(Emitter, DispatchesBySpecKind)
{
    auto space =
        make_space(hw::DlaSpec::v100(), ops::gemm(256, 256, 256));
    auto program = space.bind(sample(space, 5));
    EXPECT_NE(emit_source(space, program).find("__global__"),
              std::string::npos);
}

} // namespace
} // namespace heron::codegen

namespace heron::autotune {
namespace {

TEST(Library, BuildTunesAndEmits)
{
    TuneConfig config;
    config.trials = 25;
    LibraryBuilder builder(hw::DlaSpec::v100(), config);
    builder.add(ops::gemm(256, 256, 256));
    builder.add(ops::scan(64, 512));
    auto library = builder.build();
    ASSERT_EQ(library.entries.size(), 2u);
    EXPECT_TRUE(library.entries[0].tuned);
    EXPECT_FALSE(library.entries[0].source.empty());
    EXPECT_GT(library.entries[0].gflops, 0.0);

    std::string header = library.emit_header("mylib");
    EXPECT_NE(header.find("#ifndef MYLIB_H"), std::string::npos);
    EXPECT_NE(header.find("dispatch"), std::string::npos);
    EXPECT_NE(header.find(library.entries[0].kernel_name),
              std::string::npos);
    EXPECT_FALSE(library.summary().empty());
}

TEST(Record, JsonRoundTrip)
{
    TuningRecord record;
    record.workload = "GEMM-256x256x256";
    record.dla = "V100";
    record.tuner = "Heron";
    record.latency_ms = 0.125;
    record.gflops = 1234.5;
    record.assignment = {1, 2, 32, 4096};

    auto parsed = TuningRecord::from_json(record.to_json());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->workload, record.workload);
    EXPECT_EQ(parsed->dla, record.dla);
    EXPECT_NEAR(parsed->latency_ms, record.latency_ms, 1e-9);
    EXPECT_EQ(parsed->assignment, record.assignment);
}

TEST(Record, EscapedStringsSurvive)
{
    TuningRecord record;
    record.workload = "weird\"name\\x";
    record.dla = "V100";
    record.tuner = "Heron";
    auto parsed = TuningRecord::from_json(record.to_json());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->workload, record.workload);
}

TEST(Record, MalformedLinesSkipped)
{
    auto records = read_records(
        "not json\n{\"workload\":\"w\",\"dla\":\"d\",\"tuner\":"
        "\"t\",\"latency_ms\":1,\"gflops\":2,\"assignment\":[1]}\n");
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].workload, "w");
}

TEST(Record, WriteReadManyRoundTrip)
{
    std::vector<TuningRecord> records;
    for (int i = 0; i < 5; ++i) {
        TuningRecord r;
        r.workload = "w" + std::to_string(i);
        r.dla = "V100";
        r.tuner = "Heron";
        r.latency_ms = 0.1 * i;
        r.assignment = {i, i + 1};
        records.push_back(r);
    }
    auto parsed = read_records(write_records(records));
    ASSERT_EQ(parsed.size(), records.size());
    for (size_t i = 0; i < parsed.size(); ++i)
        EXPECT_EQ(parsed[i].workload, records[i].workload);
}

TEST(Record, ReplayReproducesPerformance)
{
    auto spec = hw::DlaSpec::v100();
    rules::SpaceGenerator gen(spec, rules::Options::heron());
    auto space = gen.generate(ops::gemm(256, 256, 256));
    csp::RandSatSolver solver(space.csp);
    Rng rng(9);
    auto a = solver.solve_one(rng);
    ASSERT_TRUE(a.has_value());
    hw::Measurer m1(spec);
    auto direct = m1.measure(space.bind(*a));

    TuningRecord record;
    record.workload = "GEMM-256x256x256";
    record.dla = "V100";
    record.tuner = "Heron";
    record.assignment = *a;
    auto restored =
        TuningRecord::from_json(record.to_json());
    ASSERT_TRUE(restored.has_value());

    hw::Measurer m2(spec);
    auto replayed = replay(*restored, space, m2);
    ASSERT_TRUE(replayed.has_value());
    EXPECT_TRUE(replayed->valid);
    EXPECT_NEAR(replayed->latency_ms, direct.latency_ms,
                0.05 * direct.latency_ms);
}

TEST(Record, ReplayRejectsForeignAssignment)
{
    auto spec = hw::DlaSpec::v100();
    rules::SpaceGenerator gen(spec, rules::Options::heron());
    auto space = gen.generate(ops::gemm(256, 256, 256));
    TuningRecord record;
    record.assignment = {1, 2, 3}; // wrong arity
    hw::Measurer m(spec);
    EXPECT_FALSE(replay(record, space, m).has_value());
}

} // namespace
} // namespace heron::autotune
