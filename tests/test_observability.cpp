/**
 * @file
 * Tests for the observability layer: trace spans and Chrome export,
 * the metrics registry under concurrency, GenerationStats telemetry,
 * log-level plumbing, and journal sequence stamping.
 */
#include <atomic>
#include <cmath>
#include <fstream>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "autotune/checkpoint.h"
#include "autotune/tuner.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/profiler.h"
#include "support/trace.h"

namespace heron {
namespace {

using trace::TraceScope;
using trace::Tracer;

/** Arm a clean tracer for one test, restore the old state after. */
class ScopedTracing
{
  public:
    ScopedTracing() : was_enabled_(Tracer::global().enabled())
    {
        Tracer::global().clear();
        Tracer::global().set_enabled(true);
    }

    ~ScopedTracing()
    {
        Tracer::global().set_enabled(was_enabled_);
    }

  private:
    bool was_enabled_;
};

TEST(Trace, SpansNestAndAggregate)
{
    ScopedTracing tracing;
    for (int i = 0; i < 3; ++i) {
        HERON_TRACE_SCOPE("test/outer");
        {
            HERON_TRACE_SCOPE("test/inner");
        }
        {
            HERON_TRACE_SCOPE("test/inner");
        }
    }
    auto totals = Tracer::global().totals();
    ASSERT_EQ(totals.count("test/outer"), 1u);
    ASSERT_EQ(totals.count("test/inner"), 1u);
    EXPECT_EQ(totals["test/outer"].count, 3);
    EXPECT_EQ(totals["test/inner"].count, 6);
    // Inclusive time: the outer span contains both inner spans.
    EXPECT_GE(totals["test/outer"].total_seconds,
              totals["test/inner"].total_seconds);
    EXPECT_EQ(Tracer::global().event_count(), 9);
}

TEST(Trace, ChromeTraceJsonIsWellFormed)
{
    ScopedTracing tracing;
    {
        HERON_TRACE_SCOPE("test/a");
        HERON_TRACE_SCOPE("test/\"quoted\"");
    }
    std::string json = Tracer::global().chrome_trace_json();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("test/a"), std::string::npos);
    // The quote inside a label must be escaped.
    EXPECT_NE(json.find("test/\\\"quoted\\\""), std::string::npos);
    EXPECT_EQ(json.find("test/\"quoted\""), std::string::npos);
    // Balanced braces/brackets — cheap structural sanity check.
    int braces = 0, brackets = 0;
    bool in_string = false;
    for (size_t i = 0; i < json.size(); ++i) {
        char c = json[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{')
            ++braces;
        else if (c == '}')
            --braces;
        else if (c == '[')
            ++brackets;
        else if (c == ']')
            --brackets;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
    EXPECT_FALSE(in_string);
}

TEST(Trace, WriteChromeTraceCreatesFile)
{
    ScopedTracing tracing;
    {
        HERON_TRACE_SCOPE("test/file");
    }
    std::string path = ::testing::TempDir() + "trace_test.json";
    ASSERT_TRUE(Tracer::global().write_chrome_trace(path));
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::ostringstream text;
    text << in.rdbuf();
    EXPECT_NE(text.str().find("test/file"), std::string::npos);
}

TEST(Trace, DisabledTracerRecordsNothing)
{
    Tracer &tracer = Tracer::global();
    bool was_enabled = tracer.enabled();
    tracer.clear();
    tracer.set_enabled(false);
    {
        HERON_TRACE_SCOPE("test/disabled");
    }
    EXPECT_EQ(tracer.event_count(), 0);
    EXPECT_TRUE(tracer.totals().empty());
    tracer.set_enabled(was_enabled);
}

TEST(Trace, EventBufferCapCountsDrops)
{
    ScopedTracing tracing;
    Tracer &tracer = Tracer::global();
    tracer.set_max_events(4);
    for (int i = 0; i < 10; ++i) {
        HERON_TRACE_SCOPE("test/capped");
    }
    EXPECT_EQ(tracer.event_count(), 4);
    EXPECT_EQ(tracer.dropped_events(), 6);
    // Aggregation keeps counting past the cap.
    EXPECT_EQ(tracer.totals()["test/capped"].count, 10);
    // The export reports the drop.
    EXPECT_NE(tracer.chrome_trace_json().find("dropped"),
              std::string::npos);
    tracer.set_max_events(262144);
}

TEST(Metrics, ConcurrentCounterAndHistogramUpdates)
{
    auto &registry = metrics::Registry::global();
    auto &counter = registry.counter("test.concurrent");
    auto &histo = registry.histogram("test.concurrent_histo");
    counter.reset();
    histo.reset();

    constexpr int kThreads = 4;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                counter.add(1);
                histo.observe(static_cast<double>(t));
            }
        });
    for (auto &w : workers)
        w.join();

    EXPECT_EQ(counter.value(), kThreads * kPerThread);
    auto snap = histo.snapshot();
    EXPECT_EQ(snap.count, kThreads * kPerThread);
    int64_t bucket_sum = 0;
    for (int64_t c : snap.counts)
        bucket_sum += c;
    EXPECT_EQ(bucket_sum, snap.count);
    // sum = 10000 * (0 + 1 + 2 + 3).
    EXPECT_DOUBLE_EQ(snap.sum, 60000.0);
}

TEST(Metrics, GaugeAccumulatesDoubles)
{
    auto &gauge = metrics::Registry::global().gauge("test.gauge");
    gauge.reset();
    gauge.add(1.5);
    gauge.add(2.25);
    EXPECT_DOUBLE_EQ(gauge.value(), 3.75);
    gauge.set(-1.0);
    EXPECT_DOUBLE_EQ(gauge.value(), -1.0);
    gauge.reset();
}

TEST(Metrics, SnapshotJsonContainsRegisteredMetrics)
{
    auto &registry = metrics::Registry::global();
    registry.counter("test.json_counter").reset();
    registry.counter("test.json_counter").add(7);
    registry.gauge("test.json_gauge").set(1.5);
    registry.histogram("test.json_histo").observe(3.0);
    std::string json = registry.snapshot().to_json();
    EXPECT_NE(json.find("\"test.json_counter\":7"),
              std::string::npos);
    EXPECT_NE(json.find("test.json_gauge"), std::string::npos);
    EXPECT_NE(json.find("test.json_histo"), std::string::npos);
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(Metrics, MacrosUpdateGlobalRegistry)
{
    auto &registry = metrics::Registry::global();
    registry.counter("test.macro_counter").reset();
    for (int i = 0; i < 5; ++i)
        HERON_COUNTER_INC("test.macro_counter");
    HERON_COUNTER_ADD("test.macro_counter", 10);
    EXPECT_EQ(registry.counter("test.macro_counter").value(), 15);
}

TEST(Profiler, GenerationStatsJsonRoundTrip)
{
    prof::GenerationStats gs;
    gs.round = 12;
    gs.workload = "gemm_512x512x512";
    gs.tuner = "Heron";
    gs.measured = 144;
    gs.best_latency_ms = 0.3125;
    gs.best_gflops = 8123.456789012345;
    gs.round_mean_gflops = 4000.25;
    gs.best_predicted = 0.875;
    gs.mean_predicted = 0.5;
    gs.round_measured = 12;
    gs.round_valid = 11;
    gs.solver_unsat = 2;
    gs.solver_budget = 1;
    gs.solver_deadline = 0;
    gs.relaxations = 5;
    gs.elapsed_seconds = 1.5;

    auto parsed = prof::GenerationStats::from_json(gs.to_json());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->round, gs.round);
    EXPECT_EQ(parsed->workload, gs.workload);
    EXPECT_EQ(parsed->tuner, gs.tuner);
    EXPECT_EQ(parsed->measured, gs.measured);
    EXPECT_DOUBLE_EQ(parsed->best_latency_ms, gs.best_latency_ms);
    EXPECT_DOUBLE_EQ(parsed->best_gflops, gs.best_gflops);
    EXPECT_DOUBLE_EQ(parsed->round_mean_gflops,
                     gs.round_mean_gflops);
    EXPECT_DOUBLE_EQ(parsed->best_predicted, gs.best_predicted);
    EXPECT_DOUBLE_EQ(parsed->mean_predicted, gs.mean_predicted);
    EXPECT_EQ(parsed->round_measured, gs.round_measured);
    EXPECT_EQ(parsed->round_valid, gs.round_valid);
    EXPECT_EQ(parsed->solver_unsat, gs.solver_unsat);
    EXPECT_EQ(parsed->solver_budget, gs.solver_budget);
    EXPECT_EQ(parsed->solver_deadline, gs.solver_deadline);
    EXPECT_EQ(parsed->relaxations, gs.relaxations);
    EXPECT_DOUBLE_EQ(parsed->elapsed_seconds, gs.elapsed_seconds);

    EXPECT_FALSE(
        prof::GenerationStats::from_json("not json").has_value());
}

TEST(Profiler, TelemetryStreamAppendsJsonl)
{
    std::string path = ::testing::TempDir() + "telemetry_test.jsonl";
    std::remove(path.c_str());
    {
        prof::TelemetryStream stream;
        ASSERT_TRUE(stream.open(path));
        for (int r = 0; r < 3; ++r) {
            prof::GenerationStats gs;
            gs.round = r;
            gs.workload = "w";
            gs.tuner = "Heron";
            stream.append(gs);
        }
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    int64_t expected_round = 0;
    while (std::getline(in, line)) {
        auto parsed = prof::GenerationStats::from_json(line);
        ASSERT_TRUE(parsed.has_value()) << line;
        EXPECT_EQ(parsed->round, expected_round++);
    }
    EXPECT_EQ(expected_round, 3);
}

TEST(Profiler, SummaryTableListsSpansAndCounters)
{
    ScopedTracing tracing;
    metrics::Registry::global().counter("test.summary").reset();
    HERON_COUNTER_ADD("test.summary", 3);
    {
        HERON_TRACE_SCOPE("test/summary_span");
    }
    std::string table =
        prof::Profiler::global().summary_table().to_string();
    EXPECT_NE(table.find("test/summary_span"), std::string::npos);
    EXPECT_NE(table.find("test.summary"), std::string::npos);
}

TEST(Logging, ParseLogLevel)
{
    EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
    EXPECT_EQ(parse_log_level("TRACE"), LogLevel::kTrace);
    EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
    EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
    EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
    EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
    EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
    EXPECT_EQ(parse_log_level("-1"), LogLevel::kTrace);
    EXPECT_EQ(parse_log_level("2"), LogLevel::kWarn);
    EXPECT_FALSE(parse_log_level("loud").has_value());
    EXPECT_FALSE(parse_log_level("").has_value());
}

TEST(Logging, SinkCapturesAndTraceLevelFilters)
{
    std::ostringstream captured;
    set_log_sink(&captured);
    LogLevel old_level = log_level();

    set_log_level(LogLevel::kInfo);
    HERON_TRACE_MSG << "invisible trace detail";
    HERON_INFO << "visible info line";
    EXPECT_EQ(captured.str().find("invisible trace detail"),
              std::string::npos);
    EXPECT_NE(captured.str().find("visible info line"),
              std::string::npos);

    set_log_level(LogLevel::kTrace);
    HERON_TRACE_MSG << "now visible trace detail";
    EXPECT_NE(captured.str().find("now visible trace detail"),
              std::string::npos);

    set_log_level(old_level);
    set_log_sink(nullptr);
}

TEST(Journal, RecordSeqAndCategoryRoundTrip)
{
    autotune::TuningRecord record;
    record.workload = "w";
    record.dla = "v100";
    record.tuner = "Heron";
    record.seq = 42;
    record.category = "replay";
    record.valid = true;
    record.latency_ms = 0.5;
    record.gflops = 100.0;
    record.assignment = {1, 2, 3};

    auto parsed =
        autotune::TuningRecord::from_json(record.to_json());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->seq, 42);
    EXPECT_EQ(parsed->category, "replay");

    // Pre-seq records parse with the compatibility defaults.
    auto legacy = autotune::TuningRecord::from_json(
        "{\"workload\":\"w\",\"dla\":\"v100\",\"tuner\":\"Heron\","
        "\"valid\":1,\"latency_ms\":0.5,\"gflops\":100,"
        "\"assignment\":[1,2]}");
    ASSERT_TRUE(legacy.has_value());
    EXPECT_EQ(legacy->seq, 0);
    EXPECT_EQ(legacy->category, "measure");
}

TEST(Journal, AppendStampsMonotonicSequence)
{
    std::string path = ::testing::TempDir() + "journal_seq.jsonl";
    std::remove(path.c_str());

    autotune::TuningRecord record;
    record.workload = "w";
    record.dla = "v100";
    record.tuner = "Heron";
    record.gflops = 1.0;
    record.assignment = {1};

    {
        autotune::TuningJournal journal;
        ASSERT_TRUE(journal.open(path));
        journal.append(record);
        journal.append(record);
        EXPECT_EQ(journal.next_seq(), 3);
    }
    auto loaded = autotune::TuningJournal::load(path);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded[0].seq, 1);
    EXPECT_EQ(loaded[1].seq, 2);
    EXPECT_EQ(loaded[0].category, "measure");

    // Resume: numbering continues past the loaded maximum.
    {
        int64_t next_seq = 1;
        for (const auto &r : loaded)
            next_seq = std::max(next_seq, r.seq + 1);
        autotune::TuningJournal journal;
        ASSERT_TRUE(journal.open(path, next_seq));
        journal.append(record);
    }
    loaded = autotune::TuningJournal::load(path);
    ASSERT_EQ(loaded.size(), 3u);
    EXPECT_EQ(loaded[2].seq, 3);
}

TEST(Profiler, ProfiledTuneReconcilesAndEmitsTelemetry)
{
    ScopedTracing tracing;
    std::string telemetry_path =
        ::testing::TempDir() + "tune_telemetry.jsonl";
    std::remove(telemetry_path.c_str());

    autotune::TuneConfig config;
    config.trials = 24;
    config.population = 8;
    config.measure_per_round = 8;
    config.generations = 2;
    config.telemetry_path = telemetry_path;
    auto tuner =
        autotune::make_heron_tuner(hw::DlaSpec::v100(), config);
    auto outcome = tuner->tune(ops::gemm(256, 256, 256));
    ASSERT_TRUE(outcome.result.found());

    // The dual-accounted phase spans must reconcile with the
    // TuneOutcome decomposition (satellite: compile_seconds drift).
    EXPECT_TRUE(outcome.profiled);
    double wall = outcome.search_seconds + outcome.model_seconds;
    EXPECT_LE(std::abs(outcome.profile_delta_seconds),
              0.05 * wall + 0.02);

    auto &tracer = Tracer::global();
    EXPECT_GT(tracer.total_seconds("tuner/tune"), 0.0);
    EXPECT_GT(tracer.total_seconds("phase/search"), 0.0);
    EXPECT_GT(tracer.total_seconds("csp/solve"), 0.0);
    EXPECT_GT(tracer.total_seconds("hw/measure"), 0.0);
    EXPECT_GT(tracer.total_seconds("space/generate"), 0.0);

    auto snapshot = metrics::Registry::global().snapshot();
    EXPECT_GT(snapshot.counters["csp.propagations"], 0);
    EXPECT_GT(snapshot.counters["csp.solve_calls"], 0);
    EXPECT_GT(snapshot.counters["measure.measurements"], 0);
    EXPECT_GT(snapshot.counters["tuner.rounds"], 0);
    EXPECT_GT(snapshot.counters["model.predict_calls"], 0);

    // One telemetry record per measurement round, rounds monotonic.
    std::ifstream in(telemetry_path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    int64_t records = 0;
    int64_t last_round = -1;
    int64_t last_measured = 0;
    while (std::getline(in, line)) {
        auto gs = prof::GenerationStats::from_json(line);
        ASSERT_TRUE(gs.has_value()) << line;
        EXPECT_GT(gs->round, last_round);
        last_round = gs->round;
        EXPECT_GE(gs->measured, last_measured);
        last_measured = gs->measured;
        EXPECT_EQ(gs->tuner, "Heron");
        ++records;
    }
    EXPECT_GT(records, 0);
    EXPECT_EQ(last_measured, outcome.result.total_measured);
}

} // namespace
} // namespace heron
