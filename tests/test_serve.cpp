/**
 * @file
 * Serving-layer tests: canonical workload keys, the three lookup
 * tiers of KernelRegistry (including solver-based schedule transfer
 * on the nearest tier), store persistence, the background tune
 * queue, the NDJSON protocol, and the record-format satellites
 * (versioning, unknown-key tolerance, library dedup/dispatch
 * determinism). The Serve*Concurrency tests are also run under the
 * tsan preset (see scripts/verify.sh).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>

#include <sys/stat.h>
#include <unistd.h>

#include "autotune/library.h"
#include "autotune/record.h"
#include "csp/solver.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/tune_queue.h"
#include "serve/workload_key.h"

namespace heron::serve {
namespace {

/**
 * A valid (solver-produced, unmeasured) tuning record for @p
 * workload: registry tests need real assignments that bind, not
 * measured throughput.
 */
autotune::TuningRecord
solved_record(const hw::DlaSpec &spec, const ops::Workload &workload,
              double gflops, uint64_t seed = 7)
{
    rules::SpaceGenerator generator(spec, rules::Options::heron());
    auto space = generator.generate(workload);
    csp::RandSatSolver solver(space.csp);
    Rng rng(seed);
    auto assignment = solver.solve_one(rng);
    EXPECT_TRUE(assignment.has_value());
    autotune::TuningRecord record;
    record.workload = workload.name;
    record.dla = spec.name;
    record.tuner = "test";
    record.latency_ms = 1.0;
    record.gflops = gflops;
    record.assignment = assignment ? *assignment : csp::Assignment{};
    return record;
}

// ---------------------------------------------------------------
// Canonical workload keys
// ---------------------------------------------------------------

TEST(WorkloadKey, CanonicalRoundTrips)
{
    auto spec = hw::DlaSpec::v100();
    auto key = make_key(ops::gemm(512, 256, 128), spec);
    auto parsed = parse_canonical(key.canonical());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, key);
    EXPECT_EQ(parsed->canonical(), key.canonical());
}

TEST(WorkloadKey, SignatureIgnoresDisplayName)
{
    auto spec = hw::DlaSpec::v100();
    auto a = ops::gemm(512, 512, 512);
    auto b = ops::gemm(512, 512, 512);
    b.name = "some_other_name";
    EXPECT_EQ(canonical_signature(a, spec),
              canonical_signature(b, spec));
}

TEST(WorkloadKey, DilatedConvFoldsToC2d)
{
    // kDil builds the identical DAG and parameter layout as kC2d,
    // so both normalize to one C2D signature and share tuned
    // records.
    auto spec = hw::DlaSpec::v100();
    auto dil = ops::dil(1, 16, 14, 14, 16, 3, 3, 1, 1, 2);
    ops::Workload c2d = dil;
    c2d.kind = ops::OpKind::kC2d;
    EXPECT_EQ(canonical_signature(dil, spec),
              canonical_signature(c2d, spec));
}

TEST(WorkloadKey, DlaConfigChangesKey)
{
    auto workload = ops::gemm(512, 512, 512);
    auto v100 = make_key(workload, hw::DlaSpec::v100());
    auto t4 = make_key(workload, hw::DlaSpec::t4());
    EXPECT_NE(v100, t4);
    EXPECT_NE(v100.canonical(), t4.canonical());
    // Same spec twice hashes identically (config_hash is pure).
    EXPECT_EQ(hw::DlaSpec::v100().config_hash(),
              hw::DlaSpec::v100().config_hash());
}

TEST(WorkloadKey, ShapeDistance)
{
    auto spec = hw::DlaSpec::v100();
    auto base = make_key(ops::gemm(512, 512, 512), spec);
    EXPECT_DOUBLE_EQ(shape_distance(base, base), 0.0);
    // One halved dimension is one octave away.
    auto half = make_key(ops::gemm(256, 512, 512), spec);
    EXPECT_DOUBLE_EQ(shape_distance(base, half), 1.0);
    // Different op kinds never compare.
    auto gemv = make_key(ops::gemv(512, 512), spec);
    EXPECT_FALSE(std::isfinite(shape_distance(base, gemv)));
}

// ---------------------------------------------------------------
// Record-format satellites: versioning, unknown keys, reordering
// ---------------------------------------------------------------

TEST(RecordFormat, VersionRoundTripsAndNewerIsSkipped)
{
    autotune::TuningRecord record;
    record.workload = "w";
    record.dla = "d";
    record.tuner = "t";
    record.gflops = 1.0;
    record.assignment = {1, 2, 3};

    auto same = autotune::TuningRecord::from_json(record.to_json());
    ASSERT_TRUE(same.has_value());
    EXPECT_EQ(same->version, autotune::kTuningRecordVersion);

    record.version = autotune::kTuningRecordVersion + 1;
    autotune::RecordReadStats stats;
    auto records = autotune::read_records(
        autotune::crc_frame(record.to_json()) + "\n", &stats);
    EXPECT_TRUE(records.empty());
    EXPECT_EQ(stats.version_skipped, 1);
    // A newer store is not corruption: the reader keeps going.
    EXPECT_FALSE(stats.corrupt());
}

TEST(RecordFormat, PreVersioningRecordsStayReadable)
{
    // Hand-written line without a "v" key, the pre-versioning
    // format.
    std::string payload =
        "{\"workload\":\"w\",\"dla\":\"d\",\"tuner\":\"t\","
        "\"latency_ms\":1,\"gflops\":2,\"assignment\":[4,5]}";
    autotune::RecordReadStats stats;
    auto records = autotune::read_records(
        autotune::crc_frame(payload) + "\n", &stats);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].version, 0);
    EXPECT_FALSE(stats.corrupt());
}

TEST(RecordFormat, UnknownKeysAreTolerated)
{
    autotune::TuningRecord record;
    record.workload = "w";
    record.dla = "d";
    record.tuner = "t";
    record.gflops = 2.0;
    record.assignment = {9};
    // A future writer added a field this reader has never heard of.
    std::string json = record.to_json();
    std::string payload =
        "{\"from_the_future\":\"x\"," + json.substr(1);
    auto parsed = autotune::TuningRecord::from_json(payload);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->workload, "w");
    EXPECT_EQ(parsed->assignment, record.assignment);
}

TEST(RecordFormat, FieldOrderDoesNotMatter)
{
    // Same key/value pairs, scrambled order: extraction is by key,
    // so the parse (and any signature derived from it) is stable.
    std::string forward =
        "{\"v\":1,\"workload\":\"GEMM/512x512x512/fp16@"
        "0123456789abcdef\",\"dla\":\"V100\",\"tuner\":\"Heron\","
        "\"latency_ms\":1.5,\"gflops\":100,\"assignment\":[1,2]}";
    std::string shuffled =
        "{\"gflops\":100,\"assignment\":[1,2],\"tuner\":\"Heron\","
        "\"dla\":\"V100\",\"latency_ms\":1.5,\"workload\":"
        "\"GEMM/512x512x512/fp16@0123456789abcdef\",\"v\":1}";
    auto a = autotune::TuningRecord::from_json(forward);
    auto b = autotune::TuningRecord::from_json(shuffled);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a->workload, b->workload);
    EXPECT_EQ(a->dla, b->dla);
    EXPECT_EQ(a->version, b->version);
    EXPECT_EQ(a->latency_ms, b->latency_ms);
    EXPECT_EQ(a->assignment, b->assignment);
    auto ka = parse_canonical(a->workload);
    auto kb = parse_canonical(b->workload);
    ASSERT_TRUE(ka && kb);
    EXPECT_EQ(ka->canonical(), kb->canonical());
}

// ---------------------------------------------------------------
// Library satellites: builder dedup, dispatch determinism
// ---------------------------------------------------------------

TEST(Library, BuilderDropsDuplicateSignatures)
{
    autotune::LibraryBuilder builder(hw::DlaSpec::v100(), {});
    auto a = ops::gemm(512, 512, 512);
    auto b = ops::gemm(512, 512, 512);
    b.name = "renamed_but_same_shape";
    builder.add(a);
    builder.add(b);
    builder.add(ops::gemm(256, 256, 256));
    EXPECT_EQ(builder.size(), 2u);
}

TEST(Library, DispatchCollisionIsFirstEntryWins)
{
    // Hand-assembled library with two tuned entries for the same
    // dispatch shape: emit_header keeps both kernels but dispatch()
    // must deterministically prefer the first.
    autotune::Library library;
    library.spec = hw::DlaSpec::v100();
    autotune::LibraryEntry first;
    first.workload = ops::gemm(512, 512, 512);
    first.kernel_name = "gemm_first";
    first.tuned = true;
    autotune::LibraryEntry second = first;
    second.kernel_name = "gemm_second";
    library.entries = {first, second};

    std::string header = library.emit_header("lib");
    size_t pos_first = header.find("return &gemm_first");
    size_t pos_second = header.find("return &gemm_second");
    ASSERT_NE(pos_first, std::string::npos);
    ASSERT_NE(pos_second, std::string::npos);
    // The first entry's dispatch block precedes the second's, and
    // the linear scan returns on the first match.
    EXPECT_LT(pos_first, pos_second);
    // Emission is deterministic: same input, same header.
    EXPECT_EQ(header, library.emit_header("lib"));
}

// ---------------------------------------------------------------
// KernelRegistry tiers
// ---------------------------------------------------------------

TEST(Registry, ExactHitAfterPut)
{
    auto spec = hw::DlaSpec::v100();
    KernelRegistry registry(spec);
    auto workload = ops::gemm(512, 512, 512);
    EXPECT_TRUE(registry.put(workload, solved_record(spec, workload,
                                                     100.0)));

    auto result = registry.lookup(workload);
    EXPECT_EQ(result.tier, LookupTier::kExact);
    ASSERT_TRUE(result.record.has_value());
    // put() canonicalizes the stored record's identity.
    EXPECT_EQ(result.record->workload, result.key.canonical());
    EXPECT_EQ(result.record->category, "serve");
    EXPECT_EQ(registry.stats().exact_hits, 1);
}

TEST(Registry, PutRejectsInvalidRecords)
{
    auto spec = hw::DlaSpec::v100();
    KernelRegistry registry(spec);
    auto workload = ops::gemm(512, 512, 512);
    autotune::TuningRecord invalid;
    invalid.valid = false;
    EXPECT_FALSE(registry.put(workload, invalid));
    autotune::TuningRecord empty;
    empty.gflops = 5.0;
    EXPECT_FALSE(registry.put(workload, empty));
    EXPECT_EQ(registry.size(), 0u);
}

TEST(Registry, HotSwapKeepsFasterRecord)
{
    auto spec = hw::DlaSpec::v100();
    KernelRegistry registry(spec);
    auto workload = ops::gemm(512, 512, 512);
    EXPECT_TRUE(
        registry.put(workload, solved_record(spec, workload, 50.0)));
    // Slower record arrives later (a worse re-tune): not served.
    EXPECT_FALSE(
        registry.put(workload, solved_record(spec, workload, 10.0)));
    // Faster record hot-swaps in.
    EXPECT_TRUE(
        registry.put(workload, solved_record(spec, workload, 90.0)));

    auto result = registry.lookup(workload);
    ASSERT_TRUE(result.record.has_value());
    EXPECT_DOUBLE_EQ(result.record->gflops, 90.0);
    auto stats = registry.stats();
    EXPECT_EQ(stats.hot_swaps, 1);
    EXPECT_EQ(stats.stale_inserts, 1);
    EXPECT_EQ(registry.size(), 1u);
}

TEST(Registry, NearestTierTransfersAndRevalidates)
{
    auto spec = hw::DlaSpec::v100();
    KernelRegistry registry(spec);
    auto donor = ops::gemm(512, 512, 512);
    EXPECT_TRUE(
        registry.put(donor, solved_record(spec, donor, 100.0)));

    // A shape one octave away: the donor's raw assignment cannot
    // bind (different extents), so this exercises gene transfer.
    auto query = ops::gemm(256, 512, 512);
    auto result = registry.lookup(query);
    ASSERT_EQ(result.tier, LookupTier::kNearest);
    ASSERT_TRUE(result.record.has_value());
    EXPECT_EQ(result.served_from,
              make_key(donor, spec).canonical());
    EXPECT_DOUBLE_EQ(result.distance, 1.0);

    // The acceptance bar: a served fallback assignment always
    // passes try_bind against the query's freshly generated space.
    rules::SpaceGenerator generator(spec, rules::Options::heron());
    auto space = generator.generate(query);
    std::string error;
    EXPECT_TRUE(space.try_bind(result.record->assignment, &error))
        << error;

    // Deterministic: the same query serves the same assignment.
    auto again = registry.lookup(query);
    ASSERT_EQ(again.tier, LookupTier::kNearest);
    EXPECT_EQ(again.record->assignment, result.record->assignment);
    EXPECT_GE(registry.stats().fallback_transferred, 1);
}

TEST(Registry, ExpiredDeadlineCutsFallbackNotExactTier)
{
    auto spec = hw::DlaSpec::v100();
    KernelRegistry registry(spec);
    auto donor = ops::gemm(512, 512, 512);
    EXPECT_TRUE(
        registry.put(donor, solved_record(spec, donor, 100.0)));

    LookupOptions expired;
    expired.deadline = std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(5);

    // The exact tier is a hash probe: it answers even with no
    // budget left.
    auto exact = registry.lookup(donor, expired);
    EXPECT_EQ(exact.tier, LookupTier::kExact);

    // The nearest tier runs the transfer solver, which an expired
    // budget must skip...
    auto query = ops::gemm(256, 512, 512);
    auto cut = registry.lookup(query, expired);
    EXPECT_EQ(cut.tier, LookupTier::kMiss);
    EXPECT_TRUE(cut.deadline_expired);

    // ...without poisoning the negative cache: an unlimited retry
    // still transfers.
    auto retry = registry.lookup(query);
    EXPECT_EQ(retry.tier, LookupTier::kNearest);
    EXPECT_FALSE(retry.deadline_expired);

    // A generous budget behaves like no budget at all.
    LookupOptions generous;
    generous.deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(60);
    auto relaxed = registry.lookup(query, generous);
    EXPECT_EQ(relaxed.tier, LookupTier::kNearest);
}

TEST(Registry, DistanceCapMakesFarShapesMiss)
{
    auto spec = hw::DlaSpec::v100();
    RegistryConfig config;
    config.max_fallback_distance = 0.5;
    KernelRegistry registry(spec, config);
    auto donor = ops::gemm(512, 512, 512);
    EXPECT_TRUE(
        registry.put(donor, solved_record(spec, donor, 100.0)));

    auto result = registry.lookup(ops::gemm(256, 512, 512));
    EXPECT_EQ(result.tier, LookupTier::kMiss);
}

TEST(Registry, NegativeCacheSaturatesAndClearsOnPut)
{
    auto spec = hw::DlaSpec::v100();
    RegistryConfig config;
    config.negative_threshold = 2;
    config.enable_fallback = false;
    KernelRegistry registry(spec, config);
    auto workload = ops::gemm(512, 512, 512);

    EXPECT_EQ(registry.lookup(workload).tier, LookupTier::kMiss);
    EXPECT_EQ(registry.lookup(workload).tier, LookupTier::kMiss);
    // Saturated: answered from the negative cache now.
    EXPECT_EQ(registry.lookup(workload).tier,
              LookupTier::kNegative);

    // A record arriving clears the negative entry.
    EXPECT_TRUE(
        registry.put(workload, solved_record(spec, workload, 1.0)));
    EXPECT_EQ(registry.lookup(workload).tier, LookupTier::kExact);
}

TEST(Registry, MarkUntunableShortCircuits)
{
    auto spec = hw::DlaSpec::v100();
    KernelRegistry registry(spec);
    auto workload = ops::gemm(512, 512, 512);
    registry.mark_untunable(make_key(workload, spec));
    EXPECT_EQ(registry.lookup(workload).tier,
              LookupTier::kNegative);
}

TEST(Registry, MissHandlerSeesMissesAndNearestHits)
{
    auto spec = hw::DlaSpec::v100();
    KernelRegistry registry(spec);
    std::vector<std::string> handled;
    registry.set_miss_handler(
        [&](const ops::Workload &, const WorkloadKey &key) {
            handled.push_back(key.canonical());
            return true;
        });

    auto donor = ops::gemm(512, 512, 512);
    auto miss = registry.lookup(donor);
    EXPECT_EQ(miss.tier, LookupTier::kMiss);
    EXPECT_TRUE(miss.enqueued);

    EXPECT_TRUE(
        registry.put(donor, solved_record(spec, donor, 100.0)));
    // A nearest hit still notifies the handler so the background
    // tuner converges the query to an exact record.
    auto near = registry.lookup(ops::gemm(256, 512, 512));
    ASSERT_EQ(near.tier, LookupTier::kNearest);
    EXPECT_TRUE(near.enqueued);
    ASSERT_EQ(handled.size(), 2u);
    EXPECT_NE(handled[0], handled[1]);
}

// ---------------------------------------------------------------
// Store persistence
// ---------------------------------------------------------------

TEST(RegistryStore, RoundTripsThroughFile)
{
    auto spec = hw::DlaSpec::v100();
    std::string path =
        ::testing::TempDir() + "heron_serve_store.jsonl";
    auto a = ops::gemm(512, 512, 512);
    auto b = ops::gemm(256, 256, 256);
    {
        KernelRegistry registry(spec);
        EXPECT_TRUE(
            registry.put(a, solved_record(spec, a, 100.0)));
        EXPECT_TRUE(registry.put(b, solved_record(spec, b, 50.0)));
        EXPECT_TRUE(registry.save_store_file(path));
    }

    KernelRegistry reloaded(spec);
    StoreLoadStats stats;
    EXPECT_EQ(reloaded.load_store_file(path, &stats), 2);
    EXPECT_EQ(stats.loaded, 2);
    EXPECT_FALSE(stats.read.corrupt());
    EXPECT_EQ(reloaded.lookup(a).tier, LookupTier::kExact);
    EXPECT_EQ(reloaded.lookup(b).tier, LookupTier::kExact);
    std::remove(path.c_str());
}

TEST(RegistryStore, SkipsForeignDlaRecords)
{
    std::string path =
        ::testing::TempDir() + "heron_serve_foreign.jsonl";
    auto spec = hw::DlaSpec::v100();
    auto workload = ops::gemm(512, 512, 512);
    {
        KernelRegistry registry(spec);
        EXPECT_TRUE(registry.put(
            workload, solved_record(spec, workload, 100.0)));
        EXPECT_TRUE(registry.save_store_file(path));
    }

    // A T4 server must not serve V100 schedules.
    KernelRegistry other(hw::DlaSpec::t4());
    StoreLoadStats stats;
    EXPECT_EQ(other.load_store_file(path, &stats), 0);
    EXPECT_EQ(stats.foreign_dla, 1);
    std::remove(path.c_str());
}

TEST(RegistryStore, MissingFileIsEmpty)
{
    KernelRegistry registry(hw::DlaSpec::v100());
    StoreLoadStats stats;
    EXPECT_EQ(registry.load_store_file(
                  ::testing::TempDir() + "heron_no_such_store.jsonl",
                  &stats),
              0);
    EXPECT_EQ(registry.size(), 0u);
}

// ---------------------------------------------------------------
// Concurrency (also run under the tsan preset)
// ---------------------------------------------------------------

TEST(ServeConcurrency, ParallelLookupsAndInserts)
{
    auto spec = hw::DlaSpec::v100();
    RegistryConfig config;
    config.shards = 2; // maximize shard contention
    config.enable_fallback = false;
    config.negative_threshold = 2;
    KernelRegistry registry(spec, config);

    // A pool of workloads the threads race over; solved once up
    // front so the loop body is pure registry traffic.
    std::vector<ops::Workload> workloads;
    std::vector<autotune::TuningRecord> records;
    for (int64_t m = 128; m <= 1024; m *= 2) {
        workloads.push_back(ops::gemm(m, 256, 256));
        records.push_back(
            solved_record(spec, workloads.back(), 10.0));
    }

    constexpr int kIters = 300;
    std::atomic<int64_t> hits{0};
    auto reader = [&] {
        for (int i = 0; i < kIters; ++i) {
            auto result =
                registry.lookup(workloads[static_cast<size_t>(i) %
                                          workloads.size()]);
            if (result.hit())
                hits.fetch_add(1, std::memory_order_relaxed);
        }
    };
    auto writer = [&] {
        for (int i = 0; i < kIters; ++i) {
            size_t w = static_cast<size_t>(i) % workloads.size();
            auto record = records[w];
            // Rising gflops keeps hot-swap paths exercised.
            record.gflops = 10.0 + i;
            registry.put(workloads[w], record);
        }
    };

    std::vector<std::thread> threads;
    threads.emplace_back(writer);
    threads.emplace_back(writer);
    threads.emplace_back(reader);
    threads.emplace_back(reader);
    for (auto &t : threads)
        t.join();

    // Every workload was inserted, so late lookups all hit.
    for (const auto &workload : workloads)
        EXPECT_EQ(registry.lookup(workload).tier,
                  LookupTier::kExact);
    auto stats = registry.stats();
    EXPECT_EQ(stats.inserts, 2 * kIters);
    EXPECT_GT(hits.load(), 0);
}

// ---------------------------------------------------------------
// TuneQueue
// ---------------------------------------------------------------

autotune::TuneConfig
tiny_tune_config()
{
    autotune::TuneConfig config;
    config.trials = 24;
    config.population = 8;
    config.measure_per_round = 8;
    config.seed = 11;
    return config;
}

TEST(TuneQueueTest, MissTunesToExactHit)
{
    auto spec = hw::DlaSpec::v100();
    KernelRegistry registry(spec);
    TuneQueueConfig config;
    config.tune = tiny_tune_config();
    TuneQueue queue(registry, config);
    registry.set_miss_handler(
        [&](const ops::Workload &workload, const WorkloadKey &) {
            return queue.enqueue(workload) ==
                   EnqueueOutcome::kAccepted;
        });
    queue.start();

    auto workload = ops::gemm(256, 256, 256);
    auto miss = registry.lookup(workload);
    EXPECT_EQ(miss.tier, LookupTier::kMiss);
    EXPECT_TRUE(miss.enqueued);

    queue.drain();
    auto hit = registry.lookup(workload);
    EXPECT_EQ(hit.tier, LookupTier::kExact);
    ASSERT_TRUE(hit.record.has_value());
    EXPECT_GT(hit.record->gflops, 0.0);
    auto stats = queue.stats();
    EXPECT_EQ(stats.accepted, 1);
    EXPECT_EQ(stats.completed, 1);
}

TEST(TuneQueueTest, DeduplicatesAndRejectsWhenFullOrStopped)
{
    auto spec = hw::DlaSpec::v100();
    KernelRegistry registry(spec);
    TuneQueueConfig config;
    config.capacity = 1;
    config.tune = tiny_tune_config();
    TuneQueue queue(registry, config);

    // Not yet started: nothing is accepted.
    EXPECT_EQ(queue.enqueue(ops::gemm(256, 256, 256)),
              EnqueueOutcome::kStopped);

    queue.start();
    EXPECT_EQ(queue.enqueue(ops::gemm(256, 256, 256)),
              EnqueueOutcome::kAccepted);
    // Same canonical shape (name differs): deduplicated whether
    // queued or already in flight.
    auto renamed = ops::gemm(256, 256, 256);
    renamed.name = "alias";
    EXPECT_EQ(queue.enqueue(renamed), EnqueueOutcome::kDuplicate);

    // Wait until the first workload is in flight so the waiting
    // queue is empty, then fill it and overflow it.
    while (queue.depth() > 0)
        std::this_thread::yield();
    EXPECT_EQ(queue.enqueue(ops::gemm(512, 256, 256)),
              EnqueueOutcome::kAccepted);
    EXPECT_EQ(queue.enqueue(ops::gemm(256, 512, 256)),
              EnqueueOutcome::kFull);

    // stop() drops the queued-but-unstarted workload and joins.
    queue.stop();
    EXPECT_EQ(queue.enqueue(ops::gemm(1024, 256, 256)),
              EnqueueOutcome::kStopped);
    auto stats = queue.stats();
    EXPECT_EQ(stats.deduplicated, 1);
    EXPECT_EQ(stats.rejected_full, 1);
}

TEST(TuneQueueTest, PersistFailureIsCountedAndRetried)
{
    // Legacy single-file store path: a failed save must be counted
    // (not silently dropped) and retried on the next completion.
    auto spec = hw::DlaSpec::v100();
    KernelRegistry registry(spec);
    std::string dir = ::testing::TempDir() + "heron_persist_retry";
    std::string store = dir + "/store.jsonl";
    ::remove(store.c_str());
    ::rmdir(dir.c_str());

    TuneQueueConfig config;
    config.tune = tiny_tune_config();
    config.store_path = store; // parent dir missing: save fails
    TuneQueue queue(registry, config);
    queue.start();
    ASSERT_EQ(queue.enqueue(ops::gemm(256, 256, 256)),
              EnqueueOutcome::kAccepted);
    queue.drain();
    auto stats = queue.stats();
    EXPECT_EQ(stats.completed, 1);
    EXPECT_EQ(stats.persist_failures, 1);
    EXPECT_EQ(stats.persist_retries, 0);

    // The path becomes writable: the next completion persists the
    // whole registry, recovering the earlier record too.
    ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
    ASSERT_EQ(queue.enqueue(ops::gemm(512, 256, 256)),
              EnqueueOutcome::kAccepted);
    queue.drain();
    stats = queue.stats();
    EXPECT_EQ(stats.completed, 2);
    EXPECT_EQ(stats.persist_failures, 1);
    EXPECT_EQ(stats.persist_retries, 1);
    queue.stop();

    KernelRegistry restored(spec);
    StoreLoadStats load_stats;
    EXPECT_TRUE(restored.load_store_file(store, &load_stats));
    EXPECT_EQ(load_stats.loaded, 2);
    ::remove(store.c_str());
    ::rmdir(dir.c_str());
}

TEST(ServeConcurrency, HotSwapPutRacesDrainWithoutLoss)
{
    // A client thread hot-swaps records for the same workload the
    // background tuner is completing: neither side may deadlock,
    // and the hot-swap invariant (fastest record wins) must hold
    // whichever insert lands last.
    auto spec = hw::DlaSpec::v100();
    KernelRegistry registry(spec);
    TuneQueueConfig config;
    config.tune = tiny_tune_config();
    TuneQueue queue(registry, config);
    queue.start();

    auto workload = ops::gemm(256, 256, 256);
    ASSERT_EQ(queue.enqueue(workload), EnqueueOutcome::kAccepted);

    std::thread putter([&] {
        // Implausibly fast records, so the tuner's measured insert
        // can never legitimately replace them.
        for (int i = 0; i < 50; ++i)
            registry.put(workload, solved_record(spec, workload,
                                                 1e9 + i, 13 + i));
    });
    queue.drain();
    putter.join();

    auto result = registry.lookup(workload);
    EXPECT_EQ(result.tier, LookupTier::kExact);
    ASSERT_TRUE(result.record.has_value());
    EXPECT_GE(result.record->gflops, 1e9);
    EXPECT_EQ(queue.stats().completed, 1);
}

// ---------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------

TEST(Protocol, ParsesLookupAndControlRequests)
{
    auto spec = hw::DlaSpec::v100();
    std::string error;
    auto lookup = parse_request(
        R"({"id":7,"op":"gemm","shape":[512,256,128]})", spec,
        &error);
    ASSERT_TRUE(lookup.has_value()) << error;
    EXPECT_EQ(lookup->kind, Request::Kind::kLookup);
    EXPECT_EQ(lookup->id, 7);
    EXPECT_EQ(lookup->workload.kind, ops::OpKind::kGemm);
    EXPECT_EQ(lookup->workload.params,
              (std::vector<int64_t>{512, 256, 128}));
    // TensorCore default dtype.
    EXPECT_EQ(lookup->workload.dtype, ir::DataType::kFloat16);

    auto stats =
        parse_request(R"({"id":9,"cmd":"stats"})", spec, &error);
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->kind, Request::Kind::kStats);

    auto shutdown = parse_request(R"({"id":2,"cmd":"shutdown"})",
                                  spec, &error);
    ASSERT_TRUE(shutdown.has_value());
    EXPECT_EQ(shutdown->kind, Request::Kind::kShutdown);
}

TEST(Protocol, ParsesAndValidatesDeadline)
{
    auto spec = hw::DlaSpec::v100();
    std::string error;
    auto request = parse_request(
        R"({"id":1,"op":"gemm","shape":[64,64,64],)"
        R"("deadline_ms":12.5})",
        spec, &error);
    ASSERT_TRUE(request.has_value()) << error;
    EXPECT_DOUBLE_EQ(request->deadline_ms, 12.5);

    // Absent = unlimited.
    auto unlimited = parse_request(
        R"({"id":1,"op":"gemm","shape":[64,64,64]})", spec,
        &error);
    ASSERT_TRUE(unlimited.has_value());
    EXPECT_EQ(unlimited->deadline_ms, 0.0);

    EXPECT_FALSE(parse_request(
        R"({"id":1,"op":"gemm","shape":[64,64,64],)"
        R"("deadline_ms":-3})",
        spec, &error));
    EXPECT_NE(error.find("deadline_ms"), std::string::npos);
}

TEST(Protocol, RejectsMalformedRequests)
{
    auto spec = hw::DlaSpec::v100();
    std::string error;
    EXPECT_FALSE(parse_request("not json", spec, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parse_request(
        R"({"id":1,"op":"frobnicate","shape":[1]})", spec, &error));
    // GEMM takes exactly M, N, K.
    EXPECT_FALSE(parse_request(
        R"({"id":1,"op":"gemm","shape":[512,512]})", spec, &error));
}

TEST(Protocol, FormatsResponses)
{
    auto spec = hw::DlaSpec::v100();
    KernelRegistry registry(spec);
    LookupResult miss;
    miss.tier = LookupTier::kMiss;
    miss.key = make_key(ops::gemm(512, 512, 512), spec);
    std::string line = format_lookup_response(3, miss);
    EXPECT_NE(line.find("\"id\":3"), std::string::npos);
    EXPECT_NE(line.find("\"tier\":\"miss\""), std::string::npos);
    EXPECT_NE(line.find(miss.key.canonical()), std::string::npos);

    std::string stats = format_stats_response(4, registry, nullptr);
    EXPECT_NE(stats.find("\"tiers\""), std::string::npos);
    EXPECT_NE(stats.find("\"fallback_transferred\""),
              std::string::npos);

    std::string error = format_error_response(5, "bad \"quote\"");
    EXPECT_NE(error.find("\"error\""), std::string::npos);
}

} // namespace
} // namespace heron::serve
