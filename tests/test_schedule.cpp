/**
 * @file
 * Tests for the schedule layer: primitives, templates, loop
 * flattening, attach analysis, concrete-program helpers, and the
 * pseudo-code printer.
 */
#include <gtest/gtest.h>

#include "csp/solver.h"
#include "ops/op_library.h"
#include "rules/attach.h"
#include "rules/space_generator.h"
#include "schedule/concrete.h"
#include "schedule/primitive.h"
#include "support/rng.h"

namespace heron::schedule {
namespace {

TEST(Primitive, ToStringSplit)
{
    Primitive p;
    p.kind = PrimitiveKind::kSplit;
    p.stage = "C";
    p.loops = {"i"};
    p.results = {"C.i.0", "C.i.1"};
    p.param = "tile.C.i.1";
    std::string s = p.to_string();
    EXPECT_NE(s.find("split"), std::string::npos);
    EXPECT_NE(s.find("tile.C.i.1"), std::string::npos);
}

TEST(Template, LevelNames)
{
    TiledAxis axis;
    axis.name = "i";
    axis.extent = 64;
    axis.roles = {LoopRole::kGrid, LoopRole::kSerial};
    EXPECT_EQ(axis.level_name("C", 1), "C.i.1");
    EXPECT_EQ(axis.num_levels(), 2);
}

TEST(Template, DefaultFlattenOrder)
{
    StagePlan plan;
    plan.name = "C";
    TiledAxis i{"i", 8, false, {LoopRole::kGrid, LoopRole::kSerial}};
    TiledAxis r{"r", 4, true, {LoopRole::kSerial}};
    plan.axes = {i, r};
    auto order = flatten_loop_order(plan);
    ASSERT_EQ(order.size(), 3u);
    // Level 0: spatial i, then reduce r; level 1: i.
    EXPECT_EQ(order[0].axis, 0);
    EXPECT_EQ(order[0].level, 0);
    EXPECT_EQ(order[1].axis, 1);
    EXPECT_EQ(order[2].axis, 0);
    EXPECT_EQ(order[2].level, 1);
}

TEST(Template, ExplicitOrderWins)
{
    StagePlan plan;
    plan.name = "C";
    TiledAxis i{"i", 8, false, {LoopRole::kGrid}};
    plan.axes = {i};
    plan.loop_order = {LoopRef{0, 0}};
    auto order = flatten_loop_order(plan);
    EXPECT_EQ(order.size(), 1u);
}

TEST(Attach, CooperativeSharedRegionIncludesThreadLevels)
{
    // Two-level spatial + one reduce axis consumer.
    StagePlan consumer;
    consumer.name = "C";
    TiledAxis i{"i",
                64,
                false,
                {LoopRole::kGrid, LoopRole::kThread,
                 LoopRole::kSerial}};
    TiledAxis r{"r", 16, true,
                {LoopRole::kSerial, LoopRole::kSerial}};
    consumer.axes = {i, r};
    consumer.loop_order = {LoopRef{0, 0}, LoopRef{0, 1},
                           LoopRef{1, 0}, LoopRef{1, 1},
                           LoopRef{0, 2}};
    // Attach after r.0 (position 2).
    auto info = rules::analyze_attach(consumer, MemScope::kShared,
                                      StageRole::kCacheRead, 2);
    // Region along i: thread level (cooperative) + serial level.
    EXPECT_EQ(info.region_levels[0], (std::vector<int>{1, 2}));
    // Region along r: inner reduce level only.
    EXPECT_EQ(info.region_levels[1], std::vector<int>{1});
    // Trips: grid level and r.0 (thread excluded: cooperative).
    ASSERT_EQ(info.trip_loops.size(), 2u);
    EXPECT_EQ(info.trip_loops[0].axis, 0);
    EXPECT_EQ(info.trip_loops[0].level, 0);
    EXPECT_EQ(info.trip_loops[1].axis, 1);
    EXPECT_EQ(info.trip_loops[1].level, 0);
}

TEST(Attach, PrivateFragmentCountsThreadTrips)
{
    StagePlan consumer;
    consumer.name = "C";
    TiledAxis i{"i",
                64,
                false,
                {LoopRole::kGrid, LoopRole::kThread,
                 LoopRole::kSerial}};
    consumer.axes = {i};
    consumer.loop_order = {LoopRef{0, 0}, LoopRef{0, 1},
                           LoopRef{0, 2}};
    auto info = rules::analyze_attach(consumer, MemScope::kFragment,
                                      StageRole::kCacheRead, 1);
    // Region: only the serial level inside the attach point.
    EXPECT_EQ(info.region_levels[0], std::vector<int>{2});
    // Trips: grid and thread levels.
    EXPECT_EQ(info.trip_loops.size(), 2u);
}

TEST(Attach, WriteStageSkipsReduceTrips)
{
    StagePlan consumer;
    consumer.name = "C";
    TiledAxis i{"i", 64, false,
                {LoopRole::kGrid, LoopRole::kSerial}};
    TiledAxis r{"r", 16, true, {LoopRole::kSerial}};
    consumer.axes = {i, r};
    consumer.loop_order = {LoopRef{0, 0}, LoopRef{1, 0},
                           LoopRef{0, 1}};
    auto info = rules::analyze_attach(consumer, MemScope::kGlobal,
                                      StageRole::kCacheWrite, 1);
    // Only the grid loop multiplies stores; the reduce loop does
    // not re-store.
    ASSERT_EQ(info.trip_loops.size(), 1u);
    EXPECT_EQ(info.trip_loops[0].axis, 0);
}

TEST(Concrete, RoleProductAndExtent)
{
    ConcreteStage s;
    s.axis_names = {"i", "j"};
    s.axis_reduce = {false, false};
    s.tile = {{4, 8}, {2, 16}};
    s.roles = {{LoopRole::kGrid, LoopRole::kSerial},
               {LoopRole::kGrid, LoopRole::kSerial}};
    EXPECT_EQ(s.role_product(LoopRole::kGrid), 8);
    EXPECT_EQ(s.role_product(LoopRole::kSerial), 128);
    EXPECT_EQ(s.axis_extent(0), 32);
    EXPECT_EQ(s.level_length(1, 1), 16);
}

TEST(Concrete, TileBytesWithPadding)
{
    ConcreteStage s;
    s.tile_elements = 64 * 8; // 8 rows of 64
    s.row_elements = 64;
    s.bytes_per_element = 2;
    s.storage_align_pad = 0;
    EXPECT_EQ(s.tile_bytes(), 64 * 8 * 2);
    s.storage_align_pad = 8;
    EXPECT_EQ(s.tile_bytes(), (64 + 8) * 8 * 2);
}

TEST(Concrete, ScopeBytesSums)
{
    ConcreteProgram p;
    ConcreteStage main;
    main.name = "C";
    main.role = StageRole::kMain;
    p.stages.push_back(main);
    ConcreteStage a;
    a.name = "A.shared";
    a.role = StageRole::kCacheRead;
    a.scope = MemScope::kShared;
    a.tile_elements = 100;
    a.row_elements = 100;
    a.bytes_per_element = 2;
    p.stages.push_back(a);
    ConcreteStage b = a;
    b.name = "B.shared";
    b.tile_elements = 50;
    b.row_elements = 50;
    p.stages.push_back(b);
    EXPECT_EQ(p.scope_bytes(MemScope::kShared), 300);
    EXPECT_EQ(p.scope_bytes(MemScope::kFragment), 0);
    EXPECT_EQ(&p.main_stage(), &p.stages[0]);
}

TEST(Printer, EmitsLoopsAndIntrinsic)
{
    rules::SpaceGenerator gen(hw::DlaSpec::v100(),
                              rules::Options::heron());
    auto space = gen.generate(ops::gemm(256, 256, 256));
    csp::RandSatSolver solver(space.csp);
    Rng rng(3);
    auto a = solver.solve_one(rng);
    ASSERT_TRUE(a.has_value());
    auto program = space.bind(*a);
    std::string code = print_pseudo_code(program);
    EXPECT_NE(code.find("grid("), std::string::npos);
    EXPECT_NE(code.find("mma_sync"), std::string::npos);
    EXPECT_NE(code.find("shared"), std::string::npos);
    // Structural dump also works.
    EXPECT_NE(program.to_string().find("tensorize"),
              std::string::npos);
}

} // namespace
} // namespace heron::schedule
