/**
 * @file
 * Tests for the search algorithms: each finds valid programs,
 * respects the trial budget, improves monotonically, and CGA
 * explores the constrained space more effectively than the
 * unconstrained baselines.
 */
#include <gtest/gtest.h>

#include "hw/measurer.h"
#include "ops/op_library.h"
#include "rules/space_generator.h"
#include "search/algorithms.h"
#include "search/cga.h"

namespace heron::search {
namespace {

rules::GeneratedSpace
gemm_space()
{
    rules::SpaceGenerator gen(hw::DlaSpec::v100(),
                              rules::Options::heron());
    return gen.generate(ops::gemm(512, 512, 512));
}

SearchConfig
small_config(uint64_t seed)
{
    SearchConfig config;
    config.trials = 60;
    config.population = 10;
    config.seed = seed;
    return config;
}

void
check_result(const SearchResult &result, int trials)
{
    EXPECT_EQ(result.total_measured, trials);
    EXPECT_EQ(result.history.size(), static_cast<size_t>(trials));
    // History is the best-so-far curve: non-decreasing.
    for (size_t i = 1; i < result.history.size(); ++i)
        EXPECT_GE(result.history[i], result.history[i - 1]);
}

TEST(Search, RandomSearchFindsValidPrograms)
{
    auto space = gemm_space();
    hw::Measurer measurer(space.spec);
    auto result = random_search(space, measurer, small_config(1));
    check_result(result, 60);
    EXPECT_TRUE(result.found());
    EXPECT_GT(result.best_gflops, 0.0);
    // RAND samples only valid programs.
    EXPECT_EQ(result.valid_count, result.total_measured);
}

TEST(Search, SimulatedAnnealingRuns)
{
    auto space = gemm_space();
    hw::Measurer measurer(space.spec);
    auto result =
        simulated_annealing(space, measurer, small_config(2));
    check_result(result, 60);
    EXPECT_TRUE(result.found());
}

TEST(Search, GeneticAlgorithmRuns)
{
    auto space = gemm_space();
    hw::Measurer measurer(space.spec);
    auto result =
        genetic_algorithm(space, measurer, small_config(3));
    check_result(result, 60);
    EXPECT_TRUE(result.found());
}

TEST(Search, UnconstrainedNeighborsOftenInvalid)
{
    // The key observation behind CGA: random gene changes in a
    // heavily constrained space usually break constraints.
    auto space = gemm_space();
    hw::Measurer measurer(space.spec);
    auto result =
        simulated_annealing(space, measurer, small_config(4));
    EXPECT_LT(result.valid_count, result.total_measured);
}

TEST(Search, CgaAllOffspringValid)
{
    auto space = gemm_space();
    hw::Measurer measurer(space.spec);
    auto result = cga_search(space, measurer, small_config(5));
    check_result(result, 60);
    EXPECT_TRUE(result.found());
    // Constraint-based crossover/mutation preserves validity.
    EXPECT_EQ(result.valid_count, result.total_measured);
}

TEST(Search, Cga1RunsWithRandomKeys)
{
    auto space = gemm_space();
    hw::Measurer measurer(space.spec);
    auto result = cga_search(space, measurer, small_config(6), true);
    check_result(result, 60);
    EXPECT_TRUE(result.found());
    EXPECT_EQ(result.valid_count, result.total_measured);
}

TEST(Search, StochasticRankingGaRuns)
{
    auto space = gemm_space();
    hw::Measurer measurer(space.spec);
    auto result =
        stochastic_ranking_ga(space, measurer, small_config(7));
    check_result(result, 60);
    EXPECT_TRUE(result.found());
}

TEST(Search, SatDecoderGaAlwaysValid)
{
    auto space = gemm_space();
    hw::Measurer measurer(space.spec);
    auto result = sat_decoder_ga(space, measurer, small_config(8));
    check_result(result, 60);
    EXPECT_TRUE(result.found());
    // The decoder repairs every genotype into a feasible phenotype.
    EXPECT_EQ(result.valid_count, result.total_measured);
}

TEST(Search, MultiObjectiveGaRuns)
{
    auto space = gemm_space();
    hw::Measurer measurer(space.spec);
    auto result =
        multi_objective_ga(space, measurer, small_config(9));
    check_result(result, 60);
    EXPECT_TRUE(result.found());
}

TEST(Search, CgaBeatsUnconstrainedBaselinesOnAverage)
{
    auto space = gemm_space();
    SearchConfig config;
    config.trials = 150;
    config.population = 16;

    double cga_sum = 0, ga_sum = 0, sa_sum = 0;
    const int repeats = 3;
    for (int r = 0; r < repeats; ++r) {
        config.seed = 100 + static_cast<uint64_t>(r);
        hw::Measurer m1(space.spec), m2(space.spec), m3(space.spec);
        cga_sum += cga_search(space, m1, config).best_gflops;
        ga_sum += genetic_algorithm(space, m2, config).best_gflops;
        sa_sum += simulated_annealing(space, m3, config).best_gflops;
    }
    EXPECT_GT(cga_sum, ga_sum);
    EXPECT_GT(cga_sum, sa_sum);
}

TEST(Search, RouletteSelectRespectsFitness)
{
    Rng rng(11);
    std::vector<csp::Assignment> pop = {{1}, {2}, {3}};
    std::vector<double> fitness = {0.0, 10.0, 0.0};
    auto selected = roulette_select(pop, fitness, 50, rng);
    ASSERT_EQ(selected.size(), 50u);
    for (const auto &s : selected)
        EXPECT_EQ(s[0], 2);
}

TEST(Search, CompleteAssignmentRejectsInconsistentGenes)
{
    auto space = gemm_space();
    TunableView view(space.csp);
    // All-max genes violate the extent products almost surely.
    Chromosome genes;
    for (size_t i = 0; i < view.size(); ++i)
        genes.push_back(view.domain(i).back());
    auto completed = complete_assignment(space.csp, view, genes);
    EXPECT_FALSE(completed.has_value());
}

TEST(Search, CompleteAssignmentRoundTripsValidGenes)
{
    auto space = gemm_space();
    TunableView view(space.csp);
    csp::RandSatSolver solver(space.csp);
    Rng rng(13);
    auto a = solver.solve_one(rng);
    ASSERT_TRUE(a.has_value());
    auto genes = view.from_assignment(*a);
    auto completed = complete_assignment(space.csp, view, genes);
    ASSERT_TRUE(completed.has_value());
    EXPECT_TRUE(space.csp.valid(*completed));
    // Tunable genes survive the round trip.
    for (size_t i = 0; i < view.size(); ++i)
        EXPECT_EQ((*completed)[static_cast<size_t>(view.var(i))],
                  genes[i]);
}

TEST(Search, SolveWithPreferencesHitsFeasibleTargets)
{
    auto space = gemm_space();
    csp::RandSatSolver solver(space.csp);
    Rng rng(17);
    auto a = solver.solve_one(rng);
    ASSERT_TRUE(a.has_value());
    // Prefer exactly a known-feasible solution: decode must
    // reproduce it.
    std::unordered_map<csp::VarId, int64_t> prefs;
    for (csp::VarId v : space.csp.tunable_vars())
        prefs[v] = (*a)[static_cast<size_t>(v)];
    auto decoded = solve_with_preferences(space.csp, prefs, rng);
    ASSERT_TRUE(decoded.has_value());
    for (csp::VarId v : space.csp.tunable_vars())
        EXPECT_EQ((*decoded)[static_cast<size_t>(v)],
                  (*a)[static_cast<size_t>(v)]);
}

} // namespace
} // namespace heron::search
