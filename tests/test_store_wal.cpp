/**
 * @file
 * Crash-safety tests for the WAL-backed durable store: append/replay
 * round trips, segment rotation + compaction, torn-tail truncation,
 * corruption quarantine with salvage, an exhaustive bit-flip /
 * truncation fuzz over every byte offset, ENOSPC fault injection
 * driving the degraded-mode circuit breaker, degraded tune-queue
 * admission, and a fork+SIGKILL recovery harness asserting that an
 * acknowledged append is never lost. StoreWalConcurrency also runs
 * under the tsan preset; the SIGKILL test is skipped there (fork
 * from an instrumented multi-threaded binary is not supported).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/store_wal.h"
#include "serve/tune_queue.h"
#include "serve/workload_key.h"
#include "support/fs_util.h"

namespace heron::serve {
namespace {

using Clock = std::chrono::steady_clock;

/** Fresh private directory under the gtest temp root. */
std::string
fresh_dir(const char *tag)
{
    std::string tmpl =
        ::testing::TempDir() + "heron_wal_" + tag + "_XXXXXX";
    EXPECT_NE(::mkdtemp(tmpl.data()), nullptr) << tmpl;
    return tmpl;
}

std::vector<std::string>
list_dir(const std::string &dir)
{
    std::vector<std::string> names;
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return names;
    while (dirent *ent = ::readdir(d)) {
        if (std::strcmp(ent->d_name, ".") &&
            std::strcmp(ent->d_name, ".."))
            names.emplace_back(ent->d_name);
    }
    ::closedir(d);
    return names;
}

void
remove_tree(const std::string &dir)
{
    for (const auto &name : list_dir(dir))
        ::unlink((dir + "/" + name).c_str());
    ::rmdir(dir.c_str());
}

std::string
read_file(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void
write_file(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
}

/** Store-only record: no solver assignment needed to persist. */
autotune::TuningRecord
wal_record(const std::string &workload, double gflops)
{
    autotune::TuningRecord record;
    record.workload = workload;
    record.dla = "test-dla";
    record.tuner = "test";
    record.category = "serve";
    record.latency_ms = 1.0;
    record.gflops = gflops;
    return record;
}

/** workload -> gflops view of DurableStore::records(). */
std::map<std::string, double>
held(const DurableStore &store)
{
    std::map<std::string, double> out;
    for (const auto &rec : store.records())
        out[rec.workload] = rec.gflops;
    return out;
}

/** Disarms fault injection on scope exit (test isolation). */
struct FaultGuard {
    ~FaultGuard() { fsfault::disarm(); }
};

// ---------------------------------------------------------------
// Append / replay round trips
// ---------------------------------------------------------------

TEST(StoreWal, AppendReopenRoundTrips)
{
    std::string dir = fresh_dir("roundtrip");
    DurableStoreConfig config;
    config.dir = dir;
    {
        DurableStore store(config);
        ASSERT_TRUE(store.open());
        for (int i = 0; i < 20; ++i)
            ASSERT_TRUE(store.append(
                wal_record("wl" + std::to_string(i), 10.0 + i)));
        auto stats = store.stats();
        EXPECT_EQ(stats.appends, 20);
        EXPECT_EQ(stats.records, 20);
        EXPECT_EQ(stats.state, StoreState::kHealthy);
        store.close();
    }
    DurableStore reopened(config);
    ASSERT_TRUE(reopened.open());
    auto view = held(reopened);
    ASSERT_EQ(view.size(), 20u);
    for (int i = 0; i < 20; ++i)
        EXPECT_DOUBLE_EQ(view.at("wl" + std::to_string(i)),
                         10.0 + i);
    auto stats = reopened.stats();
    EXPECT_EQ(stats.replayed, 20);
    EXPECT_EQ(stats.quarantined, 0);
    EXPECT_EQ(stats.torn_tails, 0);
    remove_tree(dir);
}

TEST(StoreWal, KeepsHigherGflopsPerWorkload)
{
    std::string dir = fresh_dir("dedup");
    DurableStoreConfig config;
    config.dir = dir;
    {
        DurableStore store(config);
        ASSERT_TRUE(store.open());
        ASSERT_TRUE(store.append(wal_record("a", 5.0)));
        ASSERT_TRUE(store.append(wal_record("a", 9.0)));
        ASSERT_TRUE(store.append(wal_record("b", 9.0)));
        ASSERT_TRUE(store.append(wal_record("b", 5.0)));
        auto view = held(store);
        EXPECT_DOUBLE_EQ(view.at("a"), 9.0);
        EXPECT_DOUBLE_EQ(view.at("b"), 9.0);
        store.close();
    }
    // The lower-gflops duplicates are still in the log; replay must
    // fold them the same way.
    DurableStore reopened(config);
    ASSERT_TRUE(reopened.open());
    auto view = held(reopened);
    ASSERT_EQ(view.size(), 2u);
    EXPECT_DOUBLE_EQ(view.at("a"), 9.0);
    EXPECT_DOUBLE_EQ(view.at("b"), 9.0);
    remove_tree(dir);
}

TEST(StoreWal, RotationAndCompactionFoldSegments)
{
    std::string dir = fresh_dir("compact");
    DurableStoreConfig config;
    config.dir = dir;
    config.segment_max_bytes = 256; // force frequent rotation
    config.compact_min_segments = 0; // manual compaction only
    DurableStore store(config);
    ASSERT_TRUE(store.open());
    for (int i = 0; i < 30; ++i)
        ASSERT_TRUE(store.append(
            wal_record("wl" + std::to_string(i), 1.0 + i)));
    auto before = store.stats();
    EXPECT_GT(before.rotations, 0);
    EXPECT_GT(before.live_segments, 0);

    ASSERT_TRUE(store.compact_now());
    auto after = store.stats();
    EXPECT_EQ(after.compactions, before.compactions + 1);
    EXPECT_EQ(after.live_segments, 0);

    // Sealed segments are deleted; one snapshot + manifest + the
    // active segment remain.
    int snapshots = 0, segments = 0, manifests = 0;
    for (const auto &name : list_dir(dir)) {
        snapshots += name.rfind("snapshot-", 0) == 0;
        segments += name.rfind("seg-", 0) == 0;
        manifests += name == "MANIFEST";
    }
    EXPECT_EQ(manifests, 1);
    EXPECT_EQ(snapshots, 1);
    EXPECT_EQ(segments, 1);
    store.close();

    DurableStore reopened(config);
    ASSERT_TRUE(reopened.open());
    EXPECT_EQ(held(reopened).size(), 30u);
    remove_tree(dir);
}

// ---------------------------------------------------------------
// Torn tails and corruption quarantine
// ---------------------------------------------------------------

/** Newest seg-*.wal in @p dir (the crashed process's active one). */
std::string
newest_segment(const std::string &dir)
{
    // Zero-padded ids make lexicographic max the newest segment.
    std::string best;
    for (const auto &name : list_dir(dir))
        if (name.rfind("seg-", 0) == 0 && name > best)
            best = name;
    return best.empty() ? best : dir + "/" + best;
}

TEST(StoreWal, TornTailTruncatedOnReplay)
{
    std::string dir = fresh_dir("torn");
    DurableStoreConfig config;
    config.dir = dir;
    {
        DurableStore store(config);
        ASSERT_TRUE(store.open());
        for (int i = 0; i < 3; ++i)
            ASSERT_TRUE(store.append(
                wal_record("wl" + std::to_string(i), 1.0 + i)));
        store.close();
    }
    // Simulate a crash mid-append: an unterminated half record at
    // the segment tail.
    std::string seg = newest_segment(dir);
    ASSERT_FALSE(seg.empty());
    std::string bytes = read_file(seg);
    ASSERT_FALSE(bytes.empty());
    write_file(seg, bytes + "{\"crc\":\"deadbeef\",\"r\":{\"work");

    DurableStore reopened(config);
    ASSERT_TRUE(reopened.open());
    auto stats = reopened.stats();
    EXPECT_EQ(held(reopened).size(), 3u);
    EXPECT_GE(stats.torn_tails, 1);
    // A clean truncation is not corruption: nothing is quarantined.
    EXPECT_EQ(stats.quarantined, 0);
    remove_tree(dir);
}

TEST(StoreWal, CorruptSegmentQuarantinedWithSalvage)
{
    std::string dir = fresh_dir("quarantine");
    DurableStoreConfig config;
    config.dir = dir;
    {
        DurableStore store(config);
        ASSERT_TRUE(store.open());
        for (int i = 0; i < 5; ++i)
            ASSERT_TRUE(store.append(
                wal_record("wl" + std::to_string(i), 1.0 + i)));
        store.close();
    }
    std::string seg = newest_segment(dir);
    std::string bytes = read_file(seg);
    // Flip one byte in the middle of the file: at least one framed
    // line fails its CRC, the rest salvage.
    bytes[bytes.size() / 2] ^= 0x20;
    write_file(seg, bytes);

    DurableStore reopened(config);
    ASSERT_TRUE(reopened.open());
    auto stats = reopened.stats();
    EXPECT_EQ(stats.quarantined, 1);
    EXPECT_GE(stats.salvaged, 1);
    auto view = held(reopened);
    EXPECT_GE(view.size(), 3u);
    EXPECT_LE(view.size(), 5u);
    for (const auto &[workload, gflops] : view) {
        int i = std::stoi(workload.substr(2));
        EXPECT_DOUBLE_EQ(gflops, 1.0 + i);
    }
    // The damaged file is renamed aside for post-mortem, and the
    // salvage is re-persisted so a second crash cannot lose it.
    bool quarantined_file = false;
    for (const auto &name : list_dir(dir))
        quarantined_file |=
            name.find(".quarantined") != std::string::npos;
    EXPECT_TRUE(quarantined_file);
    reopened.close();

    DurableStore third(config);
    ASSERT_TRUE(third.open());
    EXPECT_EQ(held(third), view);
    EXPECT_EQ(third.stats().quarantined, 0);
    remove_tree(dir);
}

TEST(StoreWal, CorruptManifestIsNotFatal)
{
    std::string dir = fresh_dir("manifest");
    DurableStoreConfig config;
    config.dir = dir;
    {
        DurableStore store(config);
        ASSERT_TRUE(store.open());
        for (int i = 0; i < 4; ++i)
            ASSERT_TRUE(store.append(
                wal_record("wl" + std::to_string(i), 1.0 + i)));
        ASSERT_TRUE(store.compact_now());
        store.close();
    }
    write_file(dir + "/MANIFEST", "not json at all\n");
    DurableStore reopened(config);
    ASSERT_TRUE(reopened.open());
    // Full-scan fallback still finds the snapshot and segments.
    EXPECT_EQ(held(reopened).size(), 4u);
    remove_tree(dir);
}

// ---------------------------------------------------------------
// Exhaustive corruption fuzz (satellite: load must never crash)
// ---------------------------------------------------------------

TEST(StoreWalFuzz, BitFlipsAndTruncationsAtEveryOffset)
{
    // Build one pristine segment, then replay a damaged copy for a
    // bit flip at every byte offset and a truncation at every
    // length. Whatever the damage: open() must succeed, every
    // surviving record must be byte-exact (CRC admits no mutants),
    // and flagged corruption must quarantine the file.
    std::string pristine_dir = fresh_dir("fuzz_pristine");
    DurableStoreConfig config;
    config.dir = pristine_dir;
    std::map<std::string, double> pristine;
    {
        DurableStore store(config);
        ASSERT_TRUE(store.open());
        for (int i = 0; i < 4; ++i) {
            auto rec = wal_record("wl" + std::to_string(i),
                                  1.0 + i);
            ASSERT_TRUE(store.append(rec));
            pristine[rec.workload] = rec.gflops;
        }
        store.close();
    }
    std::string seg_path = newest_segment(pristine_dir);
    std::string seg_name =
        seg_path.substr(seg_path.rfind('/') + 1);
    std::string pristine_bytes = read_file(seg_path);
    ASSERT_GT(pristine_bytes.size(), 0u);

    auto check_damaged = [&](const std::string &damaged,
                             const std::string &tag) {
        std::string dir = fresh_dir("fuzz_case");
        write_file(dir + "/" + seg_name, damaged);
        DurableStoreConfig c;
        c.dir = dir;
        c.compact_min_segments = 0;
        DurableStore store(c);
        ASSERT_TRUE(store.open()) << tag;
        auto view = held(store);
        EXPECT_LE(view.size(), pristine.size()) << tag;
        for (const auto &[workload, gflops] : view) {
            auto it = pristine.find(workload);
            ASSERT_NE(it, pristine.end()) << tag;
            EXPECT_DOUBLE_EQ(gflops, it->second) << tag;
        }
        store.close();
        remove_tree(dir);
    };

    for (size_t off = 0; off < pristine_bytes.size(); ++off) {
        std::string flipped = pristine_bytes;
        flipped[off] ^= 0x08;
        check_damaged(flipped,
                      "bitflip@" + std::to_string(off));
    }
    for (size_t len = 0; len < pristine_bytes.size(); ++len)
        check_damaged(pristine_bytes.substr(0, len),
                      "truncate@" + std::to_string(len));
    remove_tree(pristine_dir);
}

// ---------------------------------------------------------------
// Fault injection: degraded circuit breaker + auto-recovery
// ---------------------------------------------------------------

TEST(StoreWal, FaultedAppendDegradesAndProbeRecovers)
{
    FaultGuard guard;
    std::string dir = fresh_dir("degraded");
    DurableStoreConfig config;
    config.dir = dir;
    config.retry_backoff_ms = 0.0; // probe on every tick
    DurableStore store(config);
    ASSERT_TRUE(store.open());
    ASSERT_TRUE(store.append(wal_record("ok", 1.0)));

    fsfault::arm("store.append", {0, -1});
    EXPECT_FALSE(store.append(wal_record("stash_a", 2.0)));
    EXPECT_FALSE(store.append(wal_record("stash_b", 3.0)));
    auto stats = store.stats();
    EXPECT_EQ(stats.state, StoreState::kDegraded);
    EXPECT_FALSE(store.healthy());
    EXPECT_GE(stats.append_failures, 2);
    EXPECT_EQ(stats.degraded_entries, 1);
    EXPECT_EQ(stats.unflushed, 2);
    // Stashed records are still served from memory meanwhile.
    EXPECT_EQ(held(store).size(), 3u);

    // Persist path still failing: the probe must not lie.
    store.tick(Clock::now());
    EXPECT_FALSE(store.healthy());

    fsfault::disarm();
    store.tick(Clock::now());
    stats = store.stats();
    EXPECT_EQ(stats.state, StoreState::kHealthy);
    EXPECT_EQ(stats.recoveries, 1);
    EXPECT_EQ(stats.unflushed, 0);
    store.close();

    // The stash was flushed durably: a restart still has it.
    DurableStore reopened(config);
    ASSERT_TRUE(reopened.open());
    auto view = held(reopened);
    ASSERT_EQ(view.size(), 3u);
    EXPECT_DOUBLE_EQ(view.at("stash_a"), 2.0);
    EXPECT_DOUBLE_EQ(view.at("stash_b"), 3.0);
    remove_tree(dir);
}

TEST(StoreWal, CompactionWhileDegradedRecoversImmediately)
{
    FaultGuard guard;
    std::string dir = fresh_dir("compact_recover");
    DurableStoreConfig config;
    config.dir = dir;
    config.retry_backoff_ms = 1e9; // probes never fire on their own
    DurableStore store(config);
    ASSERT_TRUE(store.open());
    fsfault::arm("store.append", {0, -1});
    EXPECT_FALSE(store.append(wal_record("stash", 2.0)));
    EXPECT_FALSE(store.healthy());

    // Appends still fail, but compaction goes through the atomic
    // snapshot path — which persists the stash and ends the outage.
    ASSERT_TRUE(store.compact_now());
    EXPECT_TRUE(store.healthy());
    EXPECT_EQ(store.stats().unflushed, 0);
    store.close();

    fsfault::disarm();
    DurableStore reopened(config);
    ASSERT_TRUE(reopened.open());
    EXPECT_DOUBLE_EQ(held(reopened).at("stash"), 2.0);
    remove_tree(dir);
}

TEST(StoreWal, OpenFailureReportsError)
{
    FaultGuard guard;
    std::string dir = fresh_dir("openfail");
    fsfault::arm("store.open", {0, 1});
    DurableStoreConfig config;
    config.dir = dir;
    DurableStore store(config);
    std::string error;
    EXPECT_FALSE(store.open(&error));
    EXPECT_FALSE(error.empty());
    remove_tree(dir);
}

TEST(FsFault, EnvParsingAndPlanSemantics)
{
    FaultGuard guard;
    ASSERT_EQ(::setenv("HERON_FS_FAULT",
                       "store.append:skip=1,fail=2", 1),
              0);
    EXPECT_EQ(fsfault::arm_from_env(), 1);
    ::unsetenv("HERON_FS_FAULT");

    errno = 0;
    EXPECT_FALSE(fsfault::injected("store.append")); // skipped
    EXPECT_TRUE(fsfault::injected("store.append"));
    EXPECT_EQ(errno, ENOSPC);
    EXPECT_TRUE(fsfault::injected("store.append"));
    // Plan exhausted: the site works again (auto-recovery relies
    // on this).
    EXPECT_FALSE(fsfault::injected("store.append"));
    EXPECT_EQ(fsfault::injection_count(), 2);
    // Unrelated sites are never touched.
    EXPECT_FALSE(fsfault::injected("atomic.write"));
}

TEST(FsFault, CapabilitiesReportPosixBackend)
{
    const auto &caps = fs_capabilities();
    EXPECT_STREQ(caps.backend, "posix");
    EXPECT_TRUE(caps.atomic_rename);
    EXPECT_TRUE(caps.directory_fsync);
}

// ---------------------------------------------------------------
// Degraded-mode serving integration
// ---------------------------------------------------------------

TEST(StoreWal, DegradedStoreRejectsTuneIntake)
{
    FaultGuard guard;
    std::string dir = fresh_dir("queue");
    DurableStoreConfig store_config;
    store_config.dir = dir;
    store_config.retry_backoff_ms = 0.0;
    DurableStore store(store_config);
    ASSERT_TRUE(store.open());

    auto spec = hw::DlaSpec::v100();
    KernelRegistry registry(spec);
    TuneQueueConfig config;
    config.store = &store;
    TuneQueue queue(registry, config);
    queue.start();

    fsfault::arm("store.append", {0, -1});
    EXPECT_FALSE(store.append(wal_record("trip", 1.0)));
    ASSERT_FALSE(store.healthy());
    EXPECT_EQ(queue.enqueue(ops::gemm(256, 256, 256)),
              EnqueueOutcome::kDegraded);
    EXPECT_EQ(queue.stats().rejected_degraded, 1);

    // Admission itself probes the store; once IO heals, the same
    // enqueue is accepted without waiting for a server tick.
    fsfault::disarm();
    EXPECT_EQ(queue.enqueue(ops::gemm(256, 256, 256)),
              EnqueueOutcome::kAccepted);
    EXPECT_TRUE(store.healthy());
    queue.stop();
    store.close();
    remove_tree(dir);
}

TEST(StoreWal, HealthResponseReflectsState)
{
    FaultGuard guard;
    EXPECT_NE(format_health_response(7, nullptr)
                  .find("\"status\":\"ok\",\"store\":null"),
              std::string::npos);

    std::string dir = fresh_dir("health");
    DurableStoreConfig config;
    config.dir = dir;
    config.retry_backoff_ms = 1e9;
    DurableStore store(config);
    ASSERT_TRUE(store.open());
    std::string healthy = format_health_response(8, &store);
    EXPECT_NE(healthy.find("\"status\":\"ok\""),
              std::string::npos);
    EXPECT_NE(healthy.find("\"state\":\"healthy\""),
              std::string::npos);

    fsfault::arm("store.append", {0, -1});
    store.append(wal_record("x", 1.0));
    std::string degraded = format_health_response(9, &store);
    EXPECT_NE(degraded.find("\"status\":\"degraded\""),
              std::string::npos);
    EXPECT_NE(degraded.find("\"unflushed\":1"),
              std::string::npos);
    store.close();
    remove_tree(dir);
}

// ---------------------------------------------------------------
// Concurrency (runs under the tsan preset)
// ---------------------------------------------------------------

TEST(StoreWalConcurrency, ParallelAppendsRaceCompaction)
{
    std::string dir = fresh_dir("conc");
    DurableStoreConfig config;
    config.dir = dir;
    config.segment_max_bytes = 512;
    config.compact_min_segments = 2; // background compactor active
    config.fsync_data = false;       // IO latency isn't the subject
    DurableStore store(config);
    ASSERT_TRUE(store.open());

    constexpr int kThreads = 4, kPerThread = 50;
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t)
        writers.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i)
                EXPECT_TRUE(store.append(wal_record(
                    "t" + std::to_string(t) + "_" +
                        std::to_string(i),
                    1.0 + i)));
        });
    for (int i = 0; i < 5; ++i)
        store.compact_now();
    for (auto &w : writers)
        w.join();
    ASSERT_TRUE(store.compact_now());
    EXPECT_EQ(store.stats().appends, kThreads * kPerThread);
    EXPECT_EQ(held(store).size(),
              static_cast<size_t>(kThreads * kPerThread));
    store.close();

    DurableStore reopened(config);
    ASSERT_TRUE(reopened.open());
    EXPECT_EQ(held(reopened).size(),
              static_cast<size_t>(kThreads * kPerThread));
    remove_tree(dir);
}

// ---------------------------------------------------------------
// kill -9 recovery harness
// ---------------------------------------------------------------

#if defined(__SANITIZE_THREAD__)
#define HERON_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HERON_TSAN 1
#endif
#endif

TEST(StoreWalCrash, SigkillNeverLosesAcknowledgedRecords)
{
#ifdef HERON_TSAN
    GTEST_SKIP() << "fork-based harness is not tsan-safe";
#else
    // A child process appends records and acknowledges each one
    // over a pipe only AFTER append() returned true. The parent
    // SIGKILLs it at an arbitrary point, reopens the same store
    // directory, and asserts every acknowledged record survived —
    // the WAL's core contract. Several iterations reuse the dir so
    // recovery also runs against rotated/compacted state.
    std::string dir = fresh_dir("sigkill");
    DurableStoreConfig config;
    config.dir = dir;
    config.segment_max_bytes = 512; // rotate often mid-run
    config.compact_min_segments = 2;

    std::set<std::string> acked;
    for (int iter = 0; iter < 6; ++iter) {
        int fds[2];
        ASSERT_EQ(::pipe(fds), 0);
        pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            // Child: append + ack until killed.
            ::close(fds[0]);
            DurableStore store(config);
            if (!store.open())
                ::_exit(3);
            for (int i = 0;; ++i) {
                std::string name = "it" + std::to_string(iter) +
                                   "_" + std::to_string(i);
                if (!store.append(wal_record(name, 1.0 + i)))
                    ::_exit(4);
                std::string line = name + "\n";
                if (::write(fds[1], line.data(), line.size()) !=
                    static_cast<ssize_t>(line.size()))
                    ::_exit(0); // parent went away
            }
        }
        ::close(fds[1]);
        // Collect acks until the child has done enough work, with
        // jitter so the kill lands at varying WAL positions.
        std::string buf;
        char chunk[256];
        size_t want = 10 + static_cast<size_t>(iter) * 7;
        while (true) {
            ssize_t n = ::read(fds[0], chunk, sizeof(chunk));
            if (n <= 0)
                break;
            buf.append(chunk, static_cast<size_t>(n));
            if (static_cast<size_t>(std::count(buf.begin(),
                                               buf.end(), '\n')) >=
                want)
                break;
        }
        ::kill(pid, SIGKILL);
        int status = 0;
        ::waitpid(pid, &status, 0);
        ASSERT_TRUE(WIFSIGNALED(status))
            << "child exited " << WEXITSTATUS(status)
            << " instead of being killed";
        // Drain acks that were in flight when the kill landed.
        while (true) {
            ssize_t n = ::read(fds[0], chunk, sizeof(chunk));
            if (n <= 0)
                break;
            buf.append(chunk, static_cast<size_t>(n));
        }
        ::close(fds[0]);
        std::istringstream lines(buf);
        std::string name;
        while (std::getline(lines, name))
            if (!name.empty())
                acked.insert(name);
        ASSERT_GE(acked.size(), want);

        // Recovery: every acknowledged record must be present.
        DurableStore store(config);
        ASSERT_TRUE(store.open()) << "iteration " << iter;
        auto view = held(store);
        for (const auto &a : acked)
            EXPECT_TRUE(view.count(a))
                << "acked record " << a
                << " lost after SIGKILL (iteration " << iter
                << ")";
        EXPECT_EQ(store.stats().quarantined, 0);
        store.close();
    }
    remove_tree(dir);
#endif
}

} // namespace
} // namespace heron::serve
