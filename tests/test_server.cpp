/**
 * @file
 * TCP front-end tests: bounded line framing (LineScanner), the
 * per-connection output budget (Conn), and a chaos harness against
 * serve::Server — pipelining, torn frames, garbage bytes, oversized
 * lines, slow-loris idle timeouts, mid-request disconnects,
 * overload shedding, deadline expiry, connection caps, graceful
 * drain (with store persistence), the hard-kill fallback, and a
 * 64-client mixed-abuse run. The whole binary also runs under the
 * tsan and asan presets (see scripts/verify.sh).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "csp/solver.h"
#include "serve/conn.h"
#include "serve/server.h"

namespace heron::serve {
namespace {

using Clock = std::chrono::steady_clock;

/** Same solver-produced record helper as test_serve.cpp. */
autotune::TuningRecord
solved_record(const hw::DlaSpec &spec, const ops::Workload &workload,
              double gflops, uint64_t seed = 7)
{
    rules::SpaceGenerator generator(spec, rules::Options::heron());
    auto space = generator.generate(workload);
    csp::RandSatSolver solver(space.csp);
    Rng rng(seed);
    auto assignment = solver.solve_one(rng);
    EXPECT_TRUE(assignment.has_value());
    autotune::TuningRecord record;
    record.workload = workload.name;
    record.dla = spec.name;
    record.tuner = "test";
    record.latency_ms = 1.0;
    record.gflops = gflops;
    record.assignment = assignment ? *assignment : csp::Assignment{};
    return record;
}

// ---------------------------------------------------------------
// LineScanner: bounded NDJSON framing
// ---------------------------------------------------------------

/** Feed @p bytes in @p chunk-sized pieces, collecting lines. */
std::vector<std::pair<std::string, bool>>
scan(LineScanner &scanner, const std::string &bytes, size_t chunk)
{
    std::vector<std::pair<std::string, bool>> lines;
    for (size_t pos = 0; pos < bytes.size(); pos += chunk)
        scanner.feed(bytes.data() + pos,
                     std::min(chunk, bytes.size() - pos),
                     [&](const std::string &line, bool overflow) {
                         lines.emplace_back(line, overflow);
                     });
    return lines;
}

TEST(LineScanner, ReassemblesTornFrames)
{
    LineScanner scanner(1024);
    // Every chunk size must produce the same framing.
    for (size_t chunk : {size_t(1), size_t(2), size_t(3),
                         size_t(7), size_t(1024)}) {
        LineScanner fresh(1024);
        auto lines =
            scan(fresh, "alpha\nbeta\n\ngamma\n", chunk);
        ASSERT_EQ(lines.size(), 4u) << "chunk=" << chunk;
        EXPECT_EQ(lines[0].first, "alpha");
        EXPECT_EQ(lines[1].first, "beta");
        EXPECT_EQ(lines[2].first, "");
        EXPECT_EQ(lines[3].first, "gamma");
        for (auto &line : lines)
            EXPECT_FALSE(line.second);
    }
    // Incomplete trailing line stays buffered.
    auto lines = scan(scanner, "partial", 3);
    EXPECT_TRUE(lines.empty());
    EXPECT_EQ(scanner.buffered(), 7u);
}

TEST(LineScanner, OversizedLineStreamsToBitBucket)
{
    LineScanner scanner(64);
    // 1 MiB of newline-free garbage must never accumulate.
    std::string flood(1 << 20, 'x');
    size_t max_buffered = 0;
    for (size_t pos = 0; pos < flood.size(); pos += 4096) {
        scanner.feed(flood.data() + pos, 4096,
                     [](const std::string &, bool) { FAIL(); });
        max_buffered = std::max(max_buffered, scanner.buffered());
    }
    EXPECT_TRUE(scanner.discarding());
    EXPECT_LE(max_buffered, 64u);

    // The newline finally lands: one overflow report, then normal
    // framing resumes.
    auto lines = scan(scanner, "\nnext\n", 3);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_TRUE(lines[0].second);
    EXPECT_FALSE(lines[1].second);
    EXPECT_EQ(lines[1].first, "next");
}

TEST(LineScanner, CapBoundaryIsExact)
{
    LineScanner scanner(4);
    auto lines = scan(scanner, "abcd\nabcde\nok\n", 100);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0].first, "abcd"); // exactly at the cap: fine
    EXPECT_FALSE(lines[0].second);
    EXPECT_TRUE(lines[1].second); // one byte over: overflow
    EXPECT_EQ(lines[2].first, "ok");
}

// ---------------------------------------------------------------
// Conn: bounded output queue
// ---------------------------------------------------------------

TEST(ConnTest, OutputBudgetBoundsQueuedBytes)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    Conn conn(fds[0], 1, "test", 1024, 16);
    EXPECT_TRUE(conn.queue_line("12345678"));  // 9 bytes on the wire
    EXPECT_FALSE(conn.queue_line("12345678")); // would pass 16
    EXPECT_TRUE(conn.queue_line("123456"));    // 7 bytes fits
    EXPECT_EQ(conn.output_bytes(), 16u);
    EXPECT_TRUE(conn.flush());
    EXPECT_FALSE(conn.has_output());
    EXPECT_TRUE(conn.queue_line("12345678")); // budget freed
    char buf[64];
    ASSERT_EQ(::read(fds[1], buf, sizeof(buf)), 16);
    EXPECT_EQ(std::string(buf, 16), "12345678\n123456\n");
    ::close(fds[0]);
    ::close(fds[1]);
}

// ---------------------------------------------------------------
// Server: a blocking test client
// ---------------------------------------------------------------

class TestClient
{
  public:
    explicit TestClient(uint16_t port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    ~TestClient() { close(); }

    bool ok() const { return fd_ >= 0; }

    bool send_all(const std::string &bytes)
    {
        size_t sent = 0;
        while (sent < bytes.size()) {
            ssize_t n = ::send(fd_, bytes.data() + sent,
                               bytes.size() - sent, MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            sent += static_cast<size_t>(n);
        }
        return true;
    }

    /** Next '\n'-terminated line, or nullopt on EOF/timeout. */
    std::optional<std::string> read_line(int timeout_ms = 10000)
    {
        auto deadline =
            Clock::now() + std::chrono::milliseconds(timeout_ms);
        for (;;) {
            size_t pos = buffer_.find('\n');
            if (pos != std::string::npos) {
                std::string line = buffer_.substr(0, pos);
                buffer_.erase(0, pos + 1);
                return line;
            }
            int remaining = static_cast<int>(
                std::chrono::duration_cast<
                    std::chrono::milliseconds>(deadline -
                                               Clock::now())
                    .count());
            if (remaining <= 0)
                return std::nullopt;
            pollfd pfd{fd_, POLLIN, 0};
            int ready = ::poll(&pfd, 1, remaining);
            if (ready <= 0)
                return std::nullopt;
            char buf[4096];
            ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
            if (n <= 0)
                return std::nullopt;
            buffer_.append(buf, static_cast<size_t>(n));
        }
    }

    /** True when the server closes the connection in time. */
    bool wait_eof(int timeout_ms = 10000)
    {
        auto deadline =
            Clock::now() + std::chrono::milliseconds(timeout_ms);
        for (;;) {
            int remaining = static_cast<int>(
                std::chrono::duration_cast<
                    std::chrono::milliseconds>(deadline -
                                               Clock::now())
                    .count());
            if (remaining <= 0)
                return false;
            pollfd pfd{fd_, POLLIN, 0};
            if (::poll(&pfd, 1, remaining) <= 0)
                return false;
            char buf[4096];
            ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
            if (n == 0)
                return true;
            if (n < 0 && errno != EINTR)
                return true; // RST counts as closed
        }
    }

    void close()
    {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = -1;
    }

  private:
    int fd_ = -1;
    std::string buffer_;
};

constexpr const char *kLookup64 =
    R"({"id":%d,"op":"gemm","shape":[64,64,64]})"
    "\n";

std::string
lookup_line(int id)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), kLookup64, id);
    return buf;
}

/** Registry pre-seeded so kLookup64 answers on the exact tier. */
struct ServedRegistry {
    hw::DlaSpec spec = hw::DlaSpec::v100();
    KernelRegistry registry{spec};

    ServedRegistry()
    {
        auto workload = ops::gemm(64, 64, 64);
        EXPECT_TRUE(registry.put(
            workload, solved_record(spec, workload, 100.0)));
    }

    std::unique_ptr<Server> start(ServerConfig config = {},
                                  TuneQueue *queue = nullptr)
    {
        // Fast housekeeping so timeout tests stay quick.
        config.tick_ms = std::min(config.tick_ms, 10.0);
        auto server = std::make_unique<Server>(registry, queue,
                                               std::move(config));
        std::string error;
        EXPECT_TRUE(server->start(&error)) << error;
        return server;
    }
};

TEST(ServerTest, PipelinedRequestsAnswerInOrder)
{
    ServedRegistry served;
    auto server = served.start();
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.send_all(lookup_line(1) + lookup_line(2) +
                                lookup_line(3)));
    for (int id = 1; id <= 3; ++id) {
        auto line = client.read_line();
        ASSERT_TRUE(line.has_value()) << "response " << id;
        EXPECT_NE(line->find("\"id\":" + std::to_string(id)),
                  std::string::npos)
            << *line;
        EXPECT_NE(line->find("\"tier\":\"exact\""),
                  std::string::npos)
            << *line;
    }
    EXPECT_EQ(server->stop(), 0);
}

TEST(ServerTest, TornFramesReassembleAcrossWrites)
{
    ServedRegistry served;
    auto server = served.start();
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());
    std::string request = lookup_line(7);
    for (size_t pos = 0; pos < request.size(); pos += 5) {
        ASSERT_TRUE(client.send_all(
            request.substr(pos, std::min<size_t>(
                                    5, request.size() - pos))));
        std::this_thread::sleep_for(
            std::chrono::milliseconds(2));
    }
    auto line = client.read_line();
    ASSERT_TRUE(line.has_value());
    EXPECT_NE(line->find("\"id\":7"), std::string::npos);
    EXPECT_EQ(server->stop(), 0);
}

TEST(ServerTest, GarbageBytesAnswerErrorAndConnSurvives)
{
    ServedRegistry served;
    auto server = served.start();
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(
        client.send_all("\x01\x02 not json at all\n"));
    auto error = client.read_line();
    ASSERT_TRUE(error.has_value());
    EXPECT_NE(error->find("\"error\""), std::string::npos);

    ASSERT_TRUE(client.send_all(lookup_line(2)));
    auto ok = client.read_line();
    ASSERT_TRUE(ok.has_value());
    EXPECT_NE(ok->find("\"tier\":\"exact\""), std::string::npos);
    EXPECT_EQ(server->stats().parse_errors, 1);
    EXPECT_EQ(server->stop(), 0);
}

TEST(ServerTest, OversizedLineRejectedConnSurvives)
{
    ServedRegistry served;
    ServerConfig config;
    config.max_line_bytes = 256;
    auto server = served.start(config);
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(
        client.send_all(std::string(8192, 'z') + "\n"));
    auto error = client.read_line();
    ASSERT_TRUE(error.has_value());
    EXPECT_NE(error->find("exceeds"), std::string::npos) << *error;

    ASSERT_TRUE(client.send_all(lookup_line(3)));
    auto ok = client.read_line();
    ASSERT_TRUE(ok.has_value());
    EXPECT_NE(ok->find("\"tier\":\"exact\""), std::string::npos);
    EXPECT_EQ(server->stats().oversized_lines, 1);
    EXPECT_EQ(server->stop(), 0);
}

TEST(ServerTest, ExpiredDeadlineAnswersDeadlineExceeded)
{
    ServedRegistry served;
    ServerConfig config;
    // Stall the worker past the request's budget, so the deadline
    // has always expired by execution time.
    config.debug_stall_ms = 40.0;
    config.workers = 1;
    auto server = served.start(config);
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.send_all(
        R"({"id":1,"op":"gemm","shape":[64,64,64],"deadline_ms":1})"
        "\n"));
    auto line = client.read_line();
    ASSERT_TRUE(line.has_value());
    EXPECT_NE(line->find("deadline_exceeded"), std::string::npos)
        << *line;
    EXPECT_EQ(server->stats().deadline_exceeded, 1);
    EXPECT_EQ(server->stop(), 0);
}

TEST(ServerTest, OverloadBurstShedsExplicitly)
{
    ServedRegistry served;
    ServerConfig config;
    config.workers = 1;
    config.debug_stall_ms = 30.0;
    config.max_pending_requests = 2;
    auto server = served.start(config);
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());
    std::string burst;
    for (int id = 1; id <= 12; ++id)
        burst += lookup_line(id);
    ASSERT_TRUE(client.send_all(burst));

    int answered = 0, shed = 0;
    for (int i = 0; i < 12; ++i) {
        auto line = client.read_line();
        ASSERT_TRUE(line.has_value()) << "response " << i;
        if (line->find("\"error\":\"overloaded\"") !=
            std::string::npos)
            ++shed;
        else
            ++answered;
    }
    // Every request gets exactly one response; past the watermark
    // they are shed, not queued without bound.
    EXPECT_GT(shed, 0);
    EXPECT_GT(answered, 0);
    EXPECT_EQ(server->stats().shed_overloaded, shed);

    // The server recovers once the burst passes.
    ASSERT_TRUE(client.send_all(lookup_line(99)));
    auto line = client.read_line();
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(server->stop(), 0);
}

TEST(ServerTest, ConnectionCapRejectsWithOverloaded)
{
    ServedRegistry served;
    ServerConfig config;
    config.max_connections = 1;
    auto server = served.start(config);
    TestClient first(server->port());
    ASSERT_TRUE(first.ok());
    // Round-trip a request so the first accept has been processed.
    ASSERT_TRUE(first.send_all(lookup_line(1)));
    ASSERT_TRUE(first.read_line().has_value());

    TestClient second(server->port());
    ASSERT_TRUE(second.ok());
    auto line = second.read_line();
    if (line) { // best-effort courtesy line before the close
        EXPECT_NE(line->find("overloaded"), std::string::npos);
    }
    EXPECT_TRUE(second.wait_eof());
    EXPECT_EQ(server->stats().rejected_conn_limit, 1);
    EXPECT_EQ(server->stop(), 0);
}

TEST(ServerTest, PerIpCapRejects)
{
    ServedRegistry served;
    ServerConfig config;
    config.max_connections_per_ip = 1;
    auto server = served.start(config);
    TestClient first(server->port());
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(first.send_all(lookup_line(1)));
    ASSERT_TRUE(first.read_line().has_value());

    TestClient second(server->port());
    ASSERT_TRUE(second.ok());
    EXPECT_TRUE(second.wait_eof());
    EXPECT_EQ(server->stats().rejected_ip_limit, 1);

    // Freeing the seat re-admits the IP.
    first.close();
    auto deadline = Clock::now() + std::chrono::seconds(5);
    bool admitted = false;
    while (!admitted && Clock::now() < deadline) {
        TestClient retry(server->port());
        if (retry.ok() && retry.send_all(lookup_line(5)) &&
            retry.read_line(1000).has_value())
            admitted = true;
        else
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
    }
    EXPECT_TRUE(admitted);
    EXPECT_EQ(server->stop(), 0);
}

TEST(ServerTest, SlowLorisIdleClientDisconnected)
{
    ServedRegistry served;
    ServerConfig config;
    config.idle_timeout_ms = 80.0;
    auto server = served.start(config);
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());
    // A few bytes of a never-finished request, then silence: the
    // held seat must be reclaimed.
    ASSERT_TRUE(client.send_all(R"({"id":1,"op")"));
    EXPECT_TRUE(client.wait_eof(5000));
    EXPECT_EQ(server->stats().idle_disconnects, 1);
    EXPECT_EQ(server->stop(), 0);
}

TEST(ServerTest, MidRequestDisconnectSurvives)
{
    ServedRegistry served;
    ServerConfig config;
    config.debug_stall_ms = 50.0;
    auto server = served.start(config);
    {
        TestClient client(server->port());
        ASSERT_TRUE(client.ok());
        ASSERT_TRUE(client.send_all(lookup_line(1)));
        // Vanish while the request is in flight.
    }
    // The orphaned completion is dropped; new clients are served.
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.send_all(lookup_line(2)));
    auto line = client.read_line();
    ASSERT_TRUE(line.has_value());
    EXPECT_NE(line->find("\"tier\":\"exact\""), std::string::npos);
    EXPECT_EQ(server->stop(), 0);
}

TEST(ServerTest, OutputOverflowDisconnects)
{
    ServedRegistry served;
    ServerConfig config;
    // No single response fits, so the first answer overflows the
    // output budget and the client is dropped.
    config.max_output_bytes = 8;
    auto server = served.start(config);
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.send_all("{\"id\":1,\"cmd\":\"stats\"}\n"));
    EXPECT_TRUE(client.wait_eof());
    EXPECT_EQ(server->stats().overflow_disconnects, 1);
    EXPECT_EQ(server->stop(), 0);
}

TEST(ServerTest, ShutdownCommandDrainsGracefully)
{
    ServedRegistry served;
    auto server = served.start();
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(
        client.send_all("{\"id\":5,\"cmd\":\"shutdown\"}\n"));
    auto ack = client.read_line();
    ASSERT_TRUE(ack.has_value());
    EXPECT_NE(ack->find("shutting_down"), std::string::npos);
    EXPECT_TRUE(client.wait_eof());
    EXPECT_EQ(server->wait(), 0);
    EXPECT_EQ(server->stats().drains, 1);
    EXPECT_EQ(server->stats().hard_kills, 0);
}

TEST(ServerTest, DrainFinishesInFlightAndPersistsStore)
{
    std::string store =
        ::testing::TempDir() + "server_drain_store.jsonl";
    std::remove(store.c_str());
    ServedRegistry served;
    ServerConfig config;
    config.debug_stall_ms = 80.0;
    config.store_path = store;
    auto server = served.start(config);
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.send_all(lookup_line(1)));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    server->request_drain(); // SIGTERM path (signal-safe entry)

    // The accepted request must still be answered before the close.
    auto line = client.read_line();
    ASSERT_TRUE(line.has_value());
    EXPECT_NE(line->find("\"tier\":\"exact\""), std::string::npos);
    EXPECT_TRUE(client.wait_eof());
    EXPECT_EQ(server->wait(), 0);

    std::ifstream persisted(store, std::ios::binary);
    ASSERT_TRUE(persisted.good());
    persisted.seekg(0, std::ios::end);
    EXPECT_GT(persisted.tellg(), 0);
    std::remove(store.c_str());
}

TEST(ServerTest, HardKillFiresWhenDrainStalls)
{
    ServedRegistry served;
    ServerConfig config;
    config.debug_stall_ms = 500.0;
    config.drain_grace_ms = 50.0;
    auto server = served.start(config);
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.send_all(lookup_line(1)));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    server->request_drain();
    EXPECT_EQ(server->wait(), 1);
    EXPECT_EQ(server->stats().hard_kills, 1);
}

TEST(ServerTest, ChaosSixtyFourMixedClients)
{
    ServedRegistry served;
    ServerConfig config;
    config.max_connections = 128;
    config.max_connections_per_ip = 128;
    config.workers = 4;
    config.max_line_bytes = 512;
    auto server = served.start(config);
    uint16_t port = server->port();

    constexpr int kClients = 64;
    std::atomic<int> happy_path_failures{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int tid = 0; tid < kClients; ++tid) {
        clients.emplace_back([port, tid, &happy_path_failures] {
            TestClient client(port);
            if (!client.ok())
                return; // transient connect failure: not the SUT
            switch (tid % 4) {
              case 0: { // well-behaved pipelining client
                std::string burst;
                for (int id = 0; id < 5; ++id)
                    burst += lookup_line(tid * 100 + id);
                if (!client.send_all(burst)) {
                    ++happy_path_failures;
                    return;
                }
                for (int id = 0; id < 5; ++id)
                    if (!client.read_line().has_value())
                        ++happy_path_failures;
                break;
              }
              case 1: // garbage + oversized + one real request
                client.send_all("\x7f\x00garbage\n");
                client.send_all(std::string(2048, 'y') + "\n");
                client.send_all(lookup_line(tid));
                if (!client.read_line().has_value())
                    ++happy_path_failures;
                break;
              case 2: { // torn frames, byte by byte
                std::string request = lookup_line(tid);
                for (char byte : request)
                    if (!client.send_all(std::string(1, byte)))
                        return;
                if (!client.read_line().has_value())
                    ++happy_path_failures;
                break;
              }
              case 3: // rude: request, then vanish mid-flight
                client.send_all(lookup_line(tid));
                client.close();
                break;
            }
        });
    }
    for (auto &thread : clients)
        thread.join();
    EXPECT_EQ(happy_path_failures.load(), 0);

    // After the abuse, the server still serves and drains clean.
    TestClient survivor(port);
    ASSERT_TRUE(survivor.ok());
    ASSERT_TRUE(survivor.send_all(lookup_line(424242)));
    auto line = survivor.read_line();
    ASSERT_TRUE(line.has_value());
    EXPECT_NE(line->find("\"tier\":\"exact\""), std::string::npos);
    EXPECT_EQ(server->stop(), 0);
    EXPECT_EQ(server->stats().hard_kills, 0);
}

TEST(ServerTest, SloChaosShrinksWatermarkAndRecovers)
{
    std::string log_path =
        ::testing::TempDir() + "server_slo_chaos.jsonl";
    std::remove(log_path.c_str());

    ServedRegistry served;
    ServerConfig config;
    config.workers = 1;
    // Every served lookup takes ~25 ms: against a 1 ms p95
    // objective the window is burning whenever traffic flows.
    config.debug_stall_ms = 25.0;
    config.max_pending_requests = 8; // base soft watermark 4
    config.slo.lookup_p95_us = 1000.0;
    config.slo.eval_interval_s = 0.05;
    config.slo.burn_evals_to_shrink = 2;
    config.slo.ok_evals_to_restore = 2;
    config.slo.shrink_factor = 0.5;
    config.slo.min_soft_fraction = 0.25; // floor 1
    // A short window so recovery starts soon after the burst ends.
    config.request_metrics.slots = 3;
    config.request_metrics.slot_seconds = 0.2;
    config.access_log.path = log_path;
    auto server = served.start(config);

    EXPECT_EQ(server->stats().soft_watermark, 4u);

    // Phase 1: sustained overload until the controller shrinks.
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());
    auto burn_deadline = Clock::now() + std::chrono::seconds(10);
    int next_id = 1;
    bool saw_shrink = false;
    int64_t sheds = 0;
    // Keep bursting until the controller has shrunk AND the shrunk
    // watermark has actually shed traffic (sheds only start on the
    // burst after the shrink takes effect).
    while ((!saw_shrink || sheds == 0) &&
           Clock::now() < burn_deadline) {
        std::string burst;
        for (int i = 0; i < 6; ++i)
            burst += lookup_line(next_id++);
        ASSERT_TRUE(client.send_all(burst));
        for (int i = 0; i < 6; ++i)
            ASSERT_TRUE(client.read_line().has_value());
        ServerStats stats = server->stats();
        saw_shrink = stats.slo_shrinks > 0;
        sheds = stats.shed_overloaded;
    }
    ASSERT_TRUE(saw_shrink) << "controller never shrank";
    EXPECT_GT(sheds, 0);
    EXPECT_LT(server->stats().soft_watermark, 4u);

    // Phase 2: the burst stops; once the window drains the
    // controller must walk the watermark back to base.
    auto recover_deadline =
        Clock::now() + std::chrono::seconds(10);
    while (Clock::now() < recover_deadline) {
        ServerStats stats = server->stats();
        if (stats.slo_restores > 0 && stats.soft_watermark == 4u)
            break;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(20));
    }
    ServerStats recovered = server->stats();
    EXPECT_GT(recovered.slo_restores, 0);
    EXPECT_EQ(recovered.soft_watermark, 4u);

    // The adjustments are queryable over the protocol too.
    ASSERT_TRUE(
        client.send_all("{\"id\":77,\"cmd\":\"stats\"}\n"));
    auto stats_line = client.read_line();
    ASSERT_TRUE(stats_line.has_value());
    EXPECT_NE(stats_line->find("\"slo\""), std::string::npos)
        << *stats_line;
    EXPECT_NE(stats_line->find("\"shrinks\""), std::string::npos);

    EXPECT_EQ(server->stop(), 0);

    // The access log captured the controller's moves (flushed by
    // the drain): both directions, as parseable JSON lines.
    std::ifstream log(log_path);
    ASSERT_TRUE(log.good());
    bool logged_shrink = false, logged_restore = false;
    std::string line;
    while (std::getline(log, line)) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{') << line;
        EXPECT_EQ(line.back(), '}') << line;
        if (line.find("\"event\":\"slo_adjustment\"") ==
            std::string::npos)
            continue;
        if (line.find("\"direction\":\"shrink\"") !=
            std::string::npos)
            logged_shrink = true;
        if (line.find("\"direction\":\"restore\"") !=
            std::string::npos)
            logged_restore = true;
    }
    EXPECT_TRUE(logged_shrink);
    EXPECT_TRUE(logged_restore);
    std::remove(log_path.c_str());
}

TEST(ServerTest, MetricsCommandReportsWindowsOverProtocol)
{
    ServedRegistry served;
    auto server = served.start();
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.send_all(lookup_line(1)));
    ASSERT_TRUE(client.read_line().has_value());
    ASSERT_TRUE(
        client.send_all("{\"id\":2,\"cmd\":\"metrics\"}\n"));
    auto line = client.read_line();
    ASSERT_TRUE(line.has_value());
    EXPECT_NE(line->find("\"id\":2"), std::string::npos);
    EXPECT_NE(line->find("\"windows\""), std::string::npos);
    EXPECT_NE(line->find("\"serve.window.lookup_us\""),
              std::string::npos)
        << *line;
    EXPECT_EQ(server->stop(), 0);
}

} // namespace
} // namespace heron::serve
