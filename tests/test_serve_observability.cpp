/**
 * @file
 * Observability-layer tests: bucket percentile interpolation, the
 * sliding-window histogram (rotation boundaries, expiry, empty
 * windows, reset), per-server request windows, SLO burn-rate
 * hysteresis (including that an oscillating signal never flaps the
 * watermark), the bounded async access log, Prometheus exposition
 * well-formedness, and the build/runtime identity surfaces.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/access_log.h"
#include "serve/observe.h"
#include "serve/prometheus.h"
#include "serve/protocol.h"
#include "serve/slo.h"
#include "support/build_info.h"
#include "support/metrics.h"

namespace heron::serve {
namespace {

using Clock = std::chrono::steady_clock;
using std::chrono::milliseconds;
using std::chrono::seconds;

// ---------------------------------------------------------------
// bucket_percentile
// ---------------------------------------------------------------

TEST(BucketPercentile, EmptyReturnsZero)
{
    EXPECT_EQ(metrics::bucket_percentile({}, {}, 50.0), 0.0);
    EXPECT_EQ(metrics::bucket_percentile({10.0}, {0, 0}, 95.0),
              0.0);
}

TEST(BucketPercentile, InterpolatesWithinBucket)
{
    std::vector<double> bounds = {10.0, 20.0};
    std::vector<int64_t> counts = {4, 4, 0};
    // Rank p/100*total: p25 -> rank 2 of 8, halfway through the
    // first bucket (interpolated up from 0).
    EXPECT_DOUBLE_EQ(
        metrics::bucket_percentile(bounds, counts, 25.0), 5.0);
    EXPECT_DOUBLE_EQ(
        metrics::bucket_percentile(bounds, counts, 50.0), 10.0);
    EXPECT_DOUBLE_EQ(
        metrics::bucket_percentile(bounds, counts, 75.0), 15.0);
    EXPECT_DOUBLE_EQ(
        metrics::bucket_percentile(bounds, counts, 100.0), 20.0);
}

TEST(BucketPercentile, OverflowClampsToLastBound)
{
    // Every observation is past the last finite bound; the honest
    // answer from bucket counts alone is that bound.
    EXPECT_DOUBLE_EQ(
        metrics::bucket_percentile({10.0}, {0, 5}, 99.0), 10.0);
}

// ---------------------------------------------------------------
// WindowedHistogram
// ---------------------------------------------------------------

TEST(WindowedHistogram, EmptyWindowIsZero)
{
    metrics::WindowedHistogram w({}, 3, 10.0);
    auto snap = w.snapshot(Clock::now());
    EXPECT_EQ(snap.count, 0);
    EXPECT_EQ(snap.live_slots, 0);
    EXPECT_EQ(snap.percentile(95), 0.0);
    EXPECT_DOUBLE_EQ(snap.window_seconds, 30.0);
}

TEST(WindowedHistogram, CountsSumAndQuantiles)
{
    metrics::WindowedHistogram w({}, 3, 10.0);
    auto t0 = Clock::now();
    for (int i = 1; i <= 100; ++i)
        w.observe(static_cast<double>(i), t0);
    auto snap = w.snapshot(t0);
    EXPECT_EQ(snap.count, 100);
    // scaled_sum truncates at 1/1024 granularity per observation.
    EXPECT_NEAR(snap.sum, 5050.0, 100 * (1.0 / 1024.0) + 1e-9);
    double p50 = snap.percentile(50);
    double p95 = snap.percentile(95);
    EXPECT_GT(p50, 32.0);
    EXPECT_LE(p50, 64.0);
    EXPECT_GT(p95, 64.0);
    EXPECT_LE(p95, 128.0);
    EXPECT_GT(p95, p50);
}

TEST(WindowedHistogram, RotationExpiresOldSlots)
{
    metrics::WindowedHistogram w({}, 3, 10.0);
    auto t0 = Clock::now();
    w.observe(5.0, t0);
    w.observe(5.0, t0 + seconds(11));
    w.observe(5.0, t0 + seconds(21));
    // All three slots are inside the 30 s window.
    EXPECT_EQ(w.snapshot(t0 + seconds(21)).count, 3);
    EXPECT_EQ(w.snapshot(t0 + seconds(21)).live_slots, 3);
    // 10 s later the first slot has aged out — without any new
    // observation needing to rotate it.
    EXPECT_EQ(w.snapshot(t0 + seconds(31)).count, 2);
    // A new observation reclaims the expired slot's ring position.
    w.observe(7.0, t0 + seconds(31));
    EXPECT_EQ(w.snapshot(t0 + seconds(31)).count, 3);
    // Far enough ahead, only the newest slot remains.
    EXPECT_EQ(w.snapshot(t0 + seconds(41)).count, 2);
    EXPECT_EQ(w.snapshot(t0 + seconds(51)).count, 1);
    EXPECT_EQ(w.snapshot(t0 + seconds(62)).count, 0);
}

TEST(WindowedHistogram, ResetClearsButStaysUsable)
{
    metrics::WindowedHistogram w({}, 3, 10.0);
    auto t0 = Clock::now();
    w.observe(1.0, t0);
    w.observe(2.0, t0);
    EXPECT_EQ(w.snapshot(t0).count, 2);
    w.reset();
    EXPECT_EQ(w.snapshot(t0).count, 0);
    EXPECT_EQ(w.snapshot(t0).live_slots, 0);
    w.observe(3.0, t0);
    EXPECT_EQ(w.snapshot(t0).count, 1);
}

// ---------------------------------------------------------------
// RequestMetrics
// ---------------------------------------------------------------

TEST(RequestMetrics, TierWindowsMergeIntoLookupWindow)
{
    RequestMetricsConfig config;
    config.slots = 3;
    config.slot_seconds = 10.0;
    RequestMetrics rm(config);
    auto t0 = Clock::now();
    rm.observe_lookup(10.0, LookupTier::kExact, t0);
    rm.observe_lookup(100.0, LookupTier::kNearest, t0);
    rm.observe_lookup(1.0, LookupTier::kNegative, t0);

    auto merged = rm.lookup_window(t0);
    EXPECT_EQ(merged.count, 3);
    EXPECT_NEAR(merged.sum, 111.0, 0.1);

    bool saw_lookup = false, saw_exact = false, saw_stats = false;
    rm.observe_endpoint("stats", 5.0, t0);
    for (const auto &named : rm.snapshot_all(t0)) {
        if (named.name == "serve.window.lookup_us") {
            saw_lookup = true;
            EXPECT_EQ(named.window.count, 3);
        }
        if (named.name == "serve.window.tier.exact_us") {
            saw_exact = true;
            EXPECT_EQ(named.window.count, 1);
        }
        if (named.name == "serve.window.stats_us") {
            saw_stats = true;
            EXPECT_EQ(named.window.count, 1);
        }
    }
    EXPECT_TRUE(saw_lookup);
    EXPECT_TRUE(saw_exact);
    EXPECT_TRUE(saw_stats);
}

TEST(RequestMetrics, ObserveRequestLandsInWindows)
{
    RequestMetrics rm;
    ObserveConfig config;
    auto t0 = Clock::now();

    RequestObservation obs;
    obs.endpoint = "lookup";
    obs.tier = "exact";
    obs.total_us = 50.0;
    obs.arrival = t0;
    observe_request(obs, &rm, nullptr, config, t0);
    EXPECT_EQ(rm.lookup_window(t0).count, 1);

    // A shed request never reached the handler; its latency would
    // poison the window the SLO engine watches.
    RequestObservation shed;
    shed.endpoint = "lookup";
    shed.ok = false;
    shed.shed_reason = "hard_watermark";
    shed.total_us = 2.0;
    shed.arrival = t0;
    observe_request(shed, &rm, nullptr, config, t0);
    EXPECT_EQ(rm.lookup_window(t0).count, 1);
}

TEST(RequestObservation, ToJsonOmitsInapplicablePhases)
{
    RequestObservation obs;
    obs.id = 9;
    obs.endpoint = "lookup";
    obs.tier = "exact";
    obs.parse_us = 3.5;
    obs.total_us = 50.0;
    std::string json = obs.to_json();
    EXPECT_NE(json.find("\"id\":9"), std::string::npos);
    EXPECT_NE(json.find("\"endpoint\":\"lookup\""),
              std::string::npos);
    EXPECT_NE(json.find("\"tier\":\"exact\""), std::string::npos);
    EXPECT_NE(json.find("\"parse_us\""), std::string::npos);
    // queue/write never happened (stdio pipeline): stay out of the
    // line instead of reporting a misleading 0.
    EXPECT_EQ(json.find("\"queue_us\""), std::string::npos);
    EXPECT_EQ(json.find("\"write_us\""), std::string::npos);
    EXPECT_EQ(json.find("\"shed_reason\""), std::string::npos);

    obs.shed_reason = "queue_saturated";
    obs.queue_us = 12.0;
    json = obs.to_json();
    EXPECT_NE(json.find("\"shed_reason\":\"queue_saturated\""),
              std::string::npos);
    EXPECT_NE(json.find("\"queue_us\""), std::string::npos);
}

// ---------------------------------------------------------------
// SloController
// ---------------------------------------------------------------

SloConfig
test_slo_config()
{
    SloConfig config;
    config.lookup_p95_us = 1000.0;
    config.eval_interval_s = 1.0;
    config.burn_evals_to_shrink = 2;
    config.ok_evals_to_restore = 2;
    config.shrink_factor = 0.5;
    config.min_soft_fraction = 0.25;
    return config;
}

SloController::Signals
burning_signals(int64_t lookups = 10)
{
    SloController::Signals s;
    s.lookup_p95_us = 5000.0;
    s.window_lookups = lookups;
    s.total_lookups = lookups;
    return s;
}

SloController::Signals
healthy_signals()
{
    SloController::Signals s;
    s.lookup_p95_us = 10.0;
    s.window_lookups = 5;
    return s;
}

TEST(SloController, ShrinksAfterBurnStreakAndRestoresAfterOk)
{
    SloController slo(test_slo_config(), 8);
    EXPECT_EQ(slo.soft_watermark(), 8u);
    auto t = Clock::now();
    auto step = [&] { return t += seconds(2); };

    using Adj = SloController::Adjustment;
    // One burning eval is noise, not a trend.
    EXPECT_EQ(slo.evaluate(burning_signals(), step()), Adj::kNone);
    EXPECT_EQ(slo.soft_watermark(), 8u);
    // The second consecutive burn shrinks 8 -> 4.
    EXPECT_EQ(slo.evaluate(burning_signals(), step()),
              Adj::kShrink);
    EXPECT_EQ(slo.soft_watermark(), 4u);
    EXPECT_TRUE(slo.shrunk());
    // Streak restarts after a shrink; two more burns: 4 -> 2.
    EXPECT_EQ(slo.evaluate(burning_signals(), step()), Adj::kNone);
    EXPECT_EQ(slo.evaluate(burning_signals(), step()),
              Adj::kShrink);
    EXPECT_EQ(slo.soft_watermark(), 2u);
    // Floor = ceil(8 * 0.25) = 2: burning forever can't go lower.
    EXPECT_EQ(slo.evaluate(burning_signals(), step()), Adj::kNone);
    EXPECT_EQ(slo.evaluate(burning_signals(), step()), Adj::kNone);
    EXPECT_EQ(slo.soft_watermark(), 2u);

    // Recovery: one shrink-step back per full ok streak.
    EXPECT_EQ(slo.evaluate(healthy_signals(), step()), Adj::kNone);
    EXPECT_EQ(slo.evaluate(healthy_signals(), step()),
              Adj::kRestore);
    EXPECT_EQ(slo.soft_watermark(), 4u);
    EXPECT_EQ(slo.evaluate(healthy_signals(), step()), Adj::kNone);
    EXPECT_EQ(slo.evaluate(healthy_signals(), step()),
              Adj::kRestore);
    EXPECT_EQ(slo.soft_watermark(), 8u);
    EXPECT_FALSE(slo.shrunk());
    // Fully restored: further ok evals are no-ops.
    EXPECT_EQ(slo.evaluate(healthy_signals(), step()), Adj::kNone);
    EXPECT_EQ(slo.evaluate(healthy_signals(), step()), Adj::kNone);
    EXPECT_EQ(slo.soft_watermark(), 8u);

    SloStatus status = slo.status();
    EXPECT_TRUE(status.enabled);
    EXPECT_EQ(status.shrinks, 2);
    EXPECT_EQ(status.restores, 2);
    EXPECT_FALSE(status.shrunk);
}

TEST(SloController, OscillatingSignalNeverFlaps)
{
    SloController slo(test_slo_config(), 8);
    auto t = Clock::now();
    // burn, ok, burn, ok, ... — each flip resets the other streak,
    // so with thresholds of 2 the watermark must never move.
    for (int i = 0; i < 20; ++i) {
        auto signals =
            i % 2 ? healthy_signals() : burning_signals();
        EXPECT_EQ(slo.evaluate(signals, t += seconds(2)),
                  SloController::Adjustment::kNone);
        EXPECT_EQ(slo.soft_watermark(), 8u);
    }
    SloStatus status = slo.status();
    EXPECT_EQ(status.shrinks, 0);
    EXPECT_EQ(status.restores, 0);
}

TEST(SloController, IdleWindowNeverBurns)
{
    SloController slo(test_slo_config(), 8);
    auto t = Clock::now();
    SloController::Signals idle;
    idle.lookup_p95_us = 50000.0; // stale number, zero traffic
    idle.window_lookups = 0;
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(slo.evaluate(idle, t += seconds(2)),
                  SloController::Adjustment::kNone);
    EXPECT_EQ(slo.soft_watermark(), 8u);
    EXPECT_FALSE(slo.status().burning);
}

TEST(SloController, ErrorRateObjectiveBurnsOnDeltas)
{
    SloConfig config;
    config.max_error_rate = 0.1;
    config.eval_interval_s = 1.0;
    config.burn_evals_to_shrink = 2;
    SloController slo(config, 8);
    auto t = Clock::now();

    SloController::Signals s;
    s.window_lookups = 10;
    s.total_lookups = 10;
    s.total_errors = 5; // 50% of this interval's lookups
    EXPECT_EQ(slo.evaluate(s, t += seconds(2)),
              SloController::Adjustment::kNone);
    EXPECT_TRUE(slo.status().burning);
    s.total_lookups = 20;
    s.total_errors = 10;
    EXPECT_EQ(slo.evaluate(s, t += seconds(2)),
              SloController::Adjustment::kShrink);
    EXPECT_EQ(slo.soft_watermark(), 4u);
    EXPECT_NEAR(slo.status().last_error_rate, 0.5, 1e-9);

    // Same cumulative counters: no new errors -> healthy interval.
    EXPECT_EQ(slo.evaluate(s, t += seconds(2)),
              SloController::Adjustment::kNone);
    EXPECT_FALSE(slo.status().burning);
}

TEST(SloController, DueRespectsEvalInterval)
{
    SloController slo(test_slo_config(), 8);
    auto t = Clock::now();
    EXPECT_TRUE(slo.due(t)); // never evaluated yet
    slo.evaluate(healthy_signals(), t);
    EXPECT_FALSE(slo.due(t + milliseconds(500)));
    EXPECT_TRUE(slo.due(t + milliseconds(1100)));
}

// ---------------------------------------------------------------
// AccessLog
// ---------------------------------------------------------------

std::string
temp_log_path(const char *tag)
{
    return std::string(::testing::TempDir()) + "heron_access_" +
           tag + ".jsonl";
}

std::vector<std::string>
read_lines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

TEST(AccessLog, WritesQueuedLinesInOrder)
{
    std::string path = temp_log_path("order");
    std::remove(path.c_str());
    AccessLogConfig config;
    config.path = path;
    AccessLog log(config);
    std::string error;
    ASSERT_TRUE(log.open(&error)) << error;
    EXPECT_TRUE(log.enabled());
    log.append("{\"id\":1}");
    log.append("{\"id\":2}");
    log.flush();
    auto lines = read_lines(path);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], "{\"id\":1}");
    EXPECT_EQ(lines[1], "{\"id\":2}");
    EXPECT_EQ(log.stats().written, 2);
    EXPECT_EQ(log.stats().dropped, 0);
    std::remove(path.c_str());
}

TEST(AccessLog, SamplesHealthyLinesButKeepsAlways)
{
    std::string path = temp_log_path("sample");
    std::remove(path.c_str());
    AccessLogConfig config;
    config.path = path;
    config.sample_every = 3;
    AccessLog log(config);
    std::string error;
    ASSERT_TRUE(log.open(&error)) << error;
    for (int i = 0; i < 9; ++i)
        log.append("{\"sampled\":" + std::to_string(i) + "}");
    // Errors/sheds/slow requests bypass the sampler.
    log.append("{\"error\":true}", /*always=*/true);
    log.flush();
    AccessLogStats stats = log.stats();
    EXPECT_EQ(stats.written, 4);     // 3 of 9 + the always line
    EXPECT_EQ(stats.sampled_out, 6);
    EXPECT_EQ(read_lines(path).size(), 4u);
    std::remove(path.c_str());
}

TEST(AccessLog, FullQueueDropsInsteadOfBlocking)
{
    std::string path = temp_log_path("drop");
    std::remove(path.c_str());
    AccessLogConfig config;
    config.path = path;
    config.max_queue = 4;
    AccessLog log(config);
    std::string error;
    ASSERT_TRUE(log.open(&error)) << error;
    log.set_paused(true); // wedge the writer: queue can only grow
    for (int i = 0; i < 10; ++i)
        log.append("{\"n\":" + std::to_string(i) + "}",
                   /*always=*/true);
    log.set_paused(false);
    log.flush();
    AccessLogStats stats = log.stats();
    EXPECT_EQ(stats.written, 4);
    EXPECT_EQ(stats.dropped, 6);
    EXPECT_EQ(read_lines(path).size(), 4u);
    std::remove(path.c_str());
}

TEST(AccessLog, UnopenedLogIsANoop)
{
    AccessLog log;
    EXPECT_FALSE(log.enabled());
    log.append("{\"ignored\":1}");
    log.flush();
    EXPECT_EQ(log.stats().written, 0);
    EXPECT_EQ(log.stats().dropped, 0);
}

// ---------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------

TEST(Prometheus, RendersWellFormedExposition)
{
    metrics::MetricsSnapshot snap;
    snap.counters["serve.request.total"] = 5;
    snap.counters["serve.request.shed"] = 1;
    snap.gauges["serve.uptime_s"] = 12.5;
    metrics::HistogramSnapshot hist;
    hist.bounds = {1.0, 2.0};
    hist.counts = {1, 2, 3};
    hist.count = 6;
    hist.sum = 10.0;
    snap.histograms["serve.phase.handle_us"] = hist;

    RequestMetrics rm;
    auto t0 = Clock::now();
    rm.observe_lookup(10.0, LookupTier::kExact, t0);

    SloConfig config;
    config.lookup_p95_us = 1000.0;
    SloController slo(config, 8);
    SloStatus status = slo.status();

    std::string page = render_prometheus(
        snap, rm.snapshot_all(t0), &status);

    EXPECT_NE(page.find("# HELP heron_serve_request_total"),
              std::string::npos);
    EXPECT_NE(page.find("# TYPE heron_serve_request_total counter"),
              std::string::npos);
    EXPECT_NE(page.find("heron_serve_request_total 5"),
              std::string::npos);
    EXPECT_NE(page.find("heron_serve_uptime_s 12.5"),
              std::string::npos);

    // Histogram: cumulative buckets ending in +Inf == count.
    EXPECT_NE(
        page.find(
            "heron_serve_phase_handle_us_bucket{le=\"1\"} 1"),
        std::string::npos);
    EXPECT_NE(
        page.find(
            "heron_serve_phase_handle_us_bucket{le=\"2\"} 3"),
        std::string::npos);
    EXPECT_NE(
        page.find(
            "heron_serve_phase_handle_us_bucket{le=\"+Inf\"} 6"),
        std::string::npos);
    EXPECT_NE(page.find("heron_serve_phase_handle_us_count 6"),
              std::string::npos);

    // Windows export as summaries with quantile labels.
    EXPECT_NE(page.find("heron_serve_window_lookup_us{quantile="
                        "\"0.95\"}"),
              std::string::npos);
    EXPECT_NE(page.find("heron_serve_window_lookup_us_count 1"),
              std::string::npos);
    EXPECT_NE(
        page.find("heron_serve_window_lookup_us_window_seconds"),
        std::string::npos);

    // SLO block.
    EXPECT_NE(page.find("heron_serve_slo_soft_watermark 8"),
              std::string::npos);
    EXPECT_NE(page.find("heron_serve_slo_burning 0"),
              std::string::npos);
    EXPECT_NE(page.find("heron_serve_slo_shrinks_total 0"),
              std::string::npos);
}

TEST(Prometheus, ExporterServesScrapes)
{
    metrics::MetricsSnapshot snap;
    snap.counters["scrape.test"] = 42;
    PromExporter exporter(
        "127.0.0.1", 0,
        [snap] { return render_prometheus(snap, {}, nullptr); });
    std::string error;
    ASSERT_TRUE(exporter.start(&error)) << error;
    ASSERT_NE(exporter.port(), 0);

    // Minimal HTTP client: connect, GET, read everything.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(exporter.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const char *request = "GET /metrics HTTP/1.0\r\n\r\n";
    ASSERT_GT(::send(fd, request, std::strlen(request), 0), 0);
    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        response.append(buf, static_cast<size_t>(n));
    ::close(fd);

    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(response.find("text/plain; version=0.0.4"),
              std::string::npos);
    EXPECT_NE(response.find("heron_scrape_test 42"),
              std::string::npos);
    exporter.stop();
}

// ---------------------------------------------------------------
// Build/runtime identity + protocol surfaces
// ---------------------------------------------------------------

TEST(BuildInfo, IsPopulated)
{
    const BuildInfo &info = build_info();
    EXPECT_FALSE(info.compiler.empty());
    EXPECT_FALSE(info.sanitizer.empty());
    EXPECT_FALSE(info.git_describe.empty());
    std::string json = info.to_json();
    EXPECT_NE(json.find("\"compiler\""), std::string::npos);
    EXPECT_NE(json.find("\"sanitizer\""), std::string::npos);
    EXPECT_NE(json.find("\"git\""), std::string::npos);
}

TEST(ServeRuntime, ReportsUptimeAndPid)
{
    ServeRuntime runtime = ServeRuntime::current();
    EXPECT_GT(runtime.pid, 0);
    EXPECT_GE(runtime.uptime_s(Clock::now()), 0.0);
    EXPECT_LT(runtime.uptime_s(Clock::now()), 60.0);
}

TEST(Protocol, MetricsCommandParses)
{
    auto spec = hw::DlaSpec::v100();
    std::string error;
    auto request = parse_request("{\"id\":3,\"cmd\":\"metrics\"}",
                                 spec, &error);
    ASSERT_TRUE(request.has_value()) << error;
    EXPECT_EQ(request->kind, Request::Kind::kMetrics);
    EXPECT_EQ(request->id, 3);
    EXPECT_STREQ(request_kind_name(request->kind), "metrics");
}

TEST(Protocol, MetricsResponseCarriesWindowsAndSlo)
{
    RequestMetrics rm;
    rm.observe_lookup(25.0, LookupTier::kExact, Clock::now());
    SloConfig config;
    config.lookup_p95_us = 500.0;
    SloController slo(config, 4);
    SloStatus status = slo.status();

    std::string body = format_metrics_response(7, &rm, &status);
    EXPECT_EQ(body.find("{\"id\":7,"), 0u);
    EXPECT_NE(body.find("\"counters\""), std::string::npos);
    EXPECT_NE(body.find("\"windows\""), std::string::npos);
    EXPECT_NE(body.find("\"serve.window.lookup_us\""),
              std::string::npos);
    EXPECT_NE(body.find("\"slo\""), std::string::npos);
    EXPECT_NE(body.find("\"enabled\":true"), std::string::npos);
}

} // namespace
} // namespace heron::serve
