/**
 * @file
 * Tests for the GBDT regressor and the cost model wrapper.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "csp/csp.h"
#include "model/cost_model.h"
#include "model/gbdt.h"
#include "support/rng.h"

namespace heron::model {
namespace {

Dataset
make_linear_dataset(int n, uint64_t seed)
{
    Rng rng(seed);
    Dataset data;
    for (int i = 0; i < n; ++i) {
        float a = static_cast<float>(rng.uniform(0, 10));
        float b = static_cast<float>(rng.uniform(0, 10));
        float noise = static_cast<float>(rng.normal(0, 0.1));
        data.x.push_back({a, b});
        data.y.push_back(3.0f * a + noise);
    }
    return data;
}

TEST(Gbdt, FitsLinearFunction)
{
    auto train = make_linear_dataset(400, 1);
    auto test = make_linear_dataset(100, 2);
    GbdtRegressor model;
    model.fit(train);
    EXPECT_TRUE(model.trained());
    // Target range is [0, 30]; a fitted model should do far better
    // than predicting the mean (~7.5 MAE).
    EXPECT_LT(model.mae(test), 2.5);
}

TEST(Gbdt, ImportanceIdentifiesPredictiveFeature)
{
    auto train = make_linear_dataset(400, 3);
    GbdtRegressor model;
    model.fit(train);
    auto importance = model.feature_importance();
    ASSERT_EQ(importance.size(), 2u);
    // y depends only on feature 0.
    EXPECT_GT(importance[0], 0.8);
    EXPECT_LT(importance[1], 0.2);
    EXPECT_NEAR(importance[0] + importance[1], 1.0, 1e-9);
}

TEST(Gbdt, UntrainedPredictsZero)
{
    GbdtRegressor model;
    EXPECT_FALSE(model.trained());
    EXPECT_DOUBLE_EQ(model.predict({1.0f, 2.0f}), 0.0);
}

TEST(Gbdt, ConstantTargetYieldsConstantPrediction)
{
    Dataset data;
    for (int i = 0; i < 50; ++i) {
        data.x.push_back({static_cast<float>(i)});
        data.y.push_back(5.0f);
    }
    GbdtRegressor model;
    model.fit(data);
    EXPECT_NEAR(model.predict({7.0f}), 5.0, 1e-3);
    EXPECT_NEAR(model.predict({100.0f}), 5.0, 1e-3);
}

TEST(Gbdt, NonlinearInteraction)
{
    Rng rng(5);
    Dataset train;
    for (int i = 0; i < 600; ++i) {
        float a = static_cast<float>(rng.uniform(0, 1));
        float b = static_cast<float>(rng.uniform(0, 1));
        train.x.push_back({a, b});
        train.y.push_back(a > 0.5f && b > 0.5f ? 10.0f : 0.0f);
    }
    GbdtParams params;
    params.num_trees = 50;
    GbdtRegressor model(params);
    model.fit(train);
    EXPECT_GT(model.predict({0.9f, 0.9f}), 6.0);
    EXPECT_LT(model.predict({0.1f, 0.1f}), 3.0);
}

TEST(ThroughputScore, Basics)
{
    EXPECT_DOUBLE_EQ(throughput_score(false, 1.0, 1000), 0.0);
    EXPECT_DOUBLE_EQ(throughput_score(true, 0.0, 1000), 0.0);
    double s1 = throughput_score(true, 1.0, 1'000'000'000);
    double s2 = throughput_score(true, 0.5, 1'000'000'000);
    EXPECT_GT(s2, s1); // faster is better
    EXPECT_GT(s1, 0.0);
}

TEST(CostModel, KeyVariablesFallBackToTunables)
{
    csp::Csp problem;
    problem.add_var("a", csp::Domain::of({1, 2}), true);
    problem.add_var("b", csp::Domain::of({1, 2}), false);
    problem.add_var("c", csp::Domain::of({1, 2}), true);
    CostModel model(problem);
    auto keys = model.key_variables(2);
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], problem.var_id("a"));
    EXPECT_EQ(keys[1], problem.var_id("c"));
}

TEST(CostModel, LearnsFromSamples)
{
    csp::Csp problem;
    auto x = problem.add_var(
        "x", csp::Domain::of({1, 2, 4, 8, 16, 32, 64}), true);
    auto y = problem.add_var(
        "y", csp::Domain::of({1, 2, 4, 8, 16, 32, 64}), true);
    CostModel model(problem);

    // Performance depends on x only.
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        csp::Assignment a(2);
        a[static_cast<size_t>(x)] = int64_t{1}
                                    << rng.uniform_int(0, 6);
        a[static_cast<size_t>(y)] = int64_t{1}
                                    << rng.uniform_int(0, 6);
        double score =
            std::log2(1.0 + static_cast<double>(
                                a[static_cast<size_t>(x)]));
        model.add_scored_sample(a, score);
    }
    model.fit();
    ASSERT_TRUE(model.trained());

    csp::Assignment hi(2), lo(2);
    hi[static_cast<size_t>(x)] = 64;
    hi[static_cast<size_t>(y)] = 1;
    lo[static_cast<size_t>(x)] = 1;
    lo[static_cast<size_t>(y)] = 64;
    EXPECT_GT(model.predict(hi), model.predict(lo));

    auto keys = model.key_variables(1);
    ASSERT_EQ(keys.size(), 1u);
    EXPECT_EQ(keys[0], x);
}

} // namespace
} // namespace heron::model
