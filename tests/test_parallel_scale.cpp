/**
 * @file
 * Parallel hot-path tests: the Arena allocator (alignment, reuse
 * after reset, oversize chunks, container adapter), hazard-pointer
 * protection, SampleBatch worker-count invariance on its persistent
 * pool, the registry's lock-free (RCU-style) read path raced against
 * put() hot swaps, the sharded negative cache, and SpaceCache
 * memoization under contention. The concurrency tests here are also
 * run under the tsan preset (see scripts/verify.sh).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_set>
#include <vector>

#include "csp/sample_batch.h"
#include "csp/solver.h"
#include "ops/op_library.h"
#include "rules/space_generator.h"
#include "serve/registry.h"
#include "serve/workload_key.h"
#include "support/arena.h"
#include "support/hazard.h"

namespace heron {
namespace {

// ---------------------------------------------------------------
// Arena
// ---------------------------------------------------------------

TEST(Arena, RespectsAlignment)
{
    support::Arena arena(256);
    for (size_t align : {1u, 2u, 8u, 16u, 64u}) {
        void *p = arena.allocate(3, align);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u);
    }
}

TEST(Arena, ReuseAfterResetRetainsChunks)
{
    support::Arena arena(1024);
    // Warm up: force several chunks.
    for (int i = 0; i < 64; ++i)
        arena.alloc_array<int64_t>(16);
    auto warmed = arena.stats();
    EXPECT_GT(warmed.chunks, 0u);
    EXPECT_GT(warmed.bytes_live, 0u);

    // Reset + identical workload: no new chunks, same footprint.
    for (int round = 0; round < 5; ++round) {
        arena.reset();
        EXPECT_EQ(arena.stats().bytes_live, 0u);
        for (int i = 0; i < 64; ++i)
            arena.alloc_array<int64_t>(16);
        auto again = arena.stats();
        EXPECT_EQ(again.chunks, warmed.chunks);
        EXPECT_EQ(again.bytes_reserved, warmed.bytes_reserved);
        EXPECT_EQ(again.bytes_live, warmed.bytes_live);
    }
    EXPECT_EQ(arena.stats().resets, 5u);
}

TEST(Arena, ResetMakesMemoryReusable)
{
    support::Arena arena(256);
    int *first = arena.alloc_array<int>(8);
    for (int i = 0; i < 8; ++i)
        first[i] = i;
    arena.reset();
    // Same size and alignment right after reset: the bump pointer
    // rewound, so the first chunk is carved from its start again.
    int *second = arena.alloc_array<int>(8);
    EXPECT_EQ(first, second);
}

TEST(Arena, OversizeRequestGetsDedicatedChunk)
{
    support::Arena arena(128);
    void *small = arena.allocate(16, 8);
    ASSERT_NE(small, nullptr);
    void *big = arena.allocate(4096, 8);
    ASSERT_NE(big, nullptr);
    auto stats = arena.stats();
    EXPECT_GE(stats.chunks, 2u);
    EXPECT_GE(stats.bytes_reserved, 4096u);
    // The oversize chunk survives reset and is reusable.
    arena.reset();
    EXPECT_EQ(arena.stats().bytes_reserved, stats.bytes_reserved);
}

TEST(Arena, AllocatorAdapterBacksContainers)
{
    support::Arena arena;
    {
        support::ArenaAllocator<int> int_alloc(&arena);
        std::vector<int, support::ArenaAllocator<int>> v(int_alloc);
        for (int i = 0; i < 1000; ++i)
            v.push_back(i);
        EXPECT_EQ(v.size(), 1000u);
        EXPECT_EQ(v[999], 999);

        std::unordered_set<uint64_t, std::hash<uint64_t>,
                           std::equal_to<uint64_t>,
                           support::ArenaAllocator<uint64_t>>
            set(16, std::hash<uint64_t>(), std::equal_to<uint64_t>(),
                support::ArenaAllocator<uint64_t>(&arena));
        for (uint64_t i = 0; i < 500; ++i)
            set.insert(i * 7919);
        EXPECT_EQ(set.size(), 500u);
        EXPECT_TRUE(set.count(7919));
    } // containers destroyed before reset (ownership rule)
    EXPECT_GT(arena.stats().bytes_live, 0u);
    arena.reset();
    EXPECT_EQ(arena.stats().bytes_live, 0u);
}

// ---------------------------------------------------------------
// Hazard pointers
// ---------------------------------------------------------------

TEST(Hazard, ProtectPinsUntilCleared)
{
    auto *value = new int(42);
    std::atomic<const int *> source{value};
    {
        support::HazardDomain::Guard guard;
        const int *seen = guard.protect(source);
        EXPECT_EQ(seen, value);
        EXPECT_TRUE(support::HazardDomain::is_protected(value));
        guard.clear();
        EXPECT_FALSE(support::HazardDomain::is_protected(value));
    }
    delete value;
}

TEST(Hazard, GuardsNest)
{
    auto *a = new int(1);
    auto *b = new int(2);
    std::atomic<const int *> sa{a}, sb{b};
    {
        support::HazardDomain::Guard ga;
        EXPECT_EQ(ga.protect(sa), a);
        {
            support::HazardDomain::Guard gb;
            EXPECT_EQ(gb.protect(sb), b);
            EXPECT_TRUE(support::HazardDomain::is_protected(a));
            EXPECT_TRUE(support::HazardDomain::is_protected(b));
        }
        EXPECT_FALSE(support::HazardDomain::is_protected(b));
        EXPECT_TRUE(support::HazardDomain::is_protected(a));
    }
    EXPECT_FALSE(support::HazardDomain::is_protected(a));
    delete a;
    delete b;
}

// ---------------------------------------------------------------
// SampleBatch worker invariance (persistent pool)
// ---------------------------------------------------------------

/** A small real space to sample from. */
const rules::GeneratedSpace &
small_space()
{
    static const rules::GeneratedSpace space = [] {
        rules::SpaceGenerator gen(hw::DlaSpec::v100(),
                                  rules::Options::heron());
        return gen.generate(ops::gemm(128, 128, 128));
    }();
    return space;
}

TEST(SampleBatchPool, PopulationsInvariantAcrossWorkerCounts)
{
    const auto &space = small_space();
    const uint64_t seed = 17;
    const int population = 20;
    const int generations = 3;

    // Reference: serial. Repeated warm batches from one object, the
    // way CGA uses it across generations.
    std::vector<std::vector<csp::Assignment>> reference;
    csp::SolverStats ref_stats;
    {
        csp::SampleBatch batch(space.csp, {}, 1);
        for (int g = 0; g < generations; ++g)
            reference.push_back(
                batch.sample(seed + static_cast<uint64_t>(g),
                             population));
        ref_stats = batch.stats();
        EXPECT_FALSE(batch.pool_started());
    }
    ASSERT_FALSE(reference.empty());
    ASSERT_FALSE(reference[0].empty());

    for (int workers : {2, 4, 8}) {
        csp::SampleBatch batch(space.csp, {}, workers);
        std::vector<std::vector<csp::Assignment>> got;
        for (int g = 0; g < generations; ++g)
            got.push_back(
                batch.sample(seed + static_cast<uint64_t>(g),
                             population));
        EXPECT_EQ(got, reference)
            << workers << "-worker populations differ from serial";
        // Aggregate solver stats must be invariant too: the same
        // slots are solved with the same RNG streams regardless of
        // which worker served them.
        auto stats = batch.stats();
        EXPECT_EQ(stats.solve_calls, ref_stats.solve_calls);
        EXPECT_EQ(stats.solutions, ref_stats.solutions);
        EXPECT_EQ(stats.backtracks, ref_stats.backtracks);
        EXPECT_EQ(stats.restarts, ref_stats.restarts);
        EXPECT_EQ(stats.propagations, ref_stats.propagations);
        EXPECT_EQ(stats.revisions, ref_stats.revisions);
        EXPECT_EQ(batch.last_failure(), csp::SolveFailure::kNone);
        EXPECT_TRUE(batch.pool_started());
    }
}

TEST(SampleBatchPool, WarmRepeatEqualsFreshBatch)
{
    const auto &space = small_space();
    csp::SampleBatch warm(space.csp, {}, 4);
    auto first = warm.sample(99, 12);
    // Interleave a different seed, then repeat the first call: the
    // warm pool and reused scratch must not leak state between
    // calls.
    warm.sample(123, 12);
    auto repeat = warm.sample(99, 12);
    EXPECT_EQ(first, repeat);

    csp::SampleBatch fresh(space.csp, {}, 4);
    EXPECT_EQ(fresh.sample(99, 12), first);
}

TEST(SampleBatchPool, UnsatExtraInvariantAcrossWorkerCounts)
{
    const auto &space = small_space();
    // Pin the first tunable to a value outside its domain: every
    // slot fails, and the failure reason must be worker-invariant.
    ASSERT_FALSE(space.csp.tunable_vars().empty());
    csp::VarId v = space.csp.tunable_vars().front();
    csp::Constraint pin;
    pin.kind = csp::ConstraintKind::kIn;
    pin.result = v;
    pin.constants = {-12345};
    std::vector<csp::Constraint> extra{pin};

    csp::SampleBatch serial(space.csp, {}, 1);
    auto ref = serial.sample(5, 8, extra);
    auto ref_failure = serial.last_failure();
    EXPECT_TRUE(ref.empty());

    for (int workers : {2, 4}) {
        csp::SampleBatch batch(space.csp, {}, workers);
        EXPECT_EQ(batch.sample(5, 8, extra), ref);
        EXPECT_EQ(batch.last_failure(), ref_failure);
    }
}

// ---------------------------------------------------------------
// Registry RCU read path vs put() (also run under tsan)
// ---------------------------------------------------------------

autotune::TuningRecord
solved_record(const hw::DlaSpec &spec, const ops::Workload &workload,
              double gflops)
{
    rules::SpaceGenerator generator(spec, rules::Options::heron());
    auto space = generator.generate(workload);
    csp::RandSatSolver solver(space.csp);
    Rng rng(7);
    auto assignment = solver.solve_one(rng);
    EXPECT_TRUE(assignment.has_value());
    autotune::TuningRecord record;
    record.workload = workload.name;
    record.dla = spec.name;
    record.tuner = "test";
    record.valid = true;
    record.latency_ms = 1.0;
    record.gflops = gflops;
    record.assignment = assignment ? *assignment : csp::Assignment{};
    return record;
}

TEST(RegistryRcuConcurrency, ReadersNeverObserveTornState)
{
    auto spec = hw::DlaSpec::v100();
    serve::RegistryConfig config;
    config.enable_fallback = false; // isolate the exact read path
    serve::KernelRegistry registry(spec, config);

    std::vector<ops::Workload> workloads;
    for (int m : {64, 128, 256, 512})
        workloads.push_back(ops::gemm(m, 128, 128));
    std::vector<autotune::TuningRecord> seeds;
    for (const auto &w : workloads) {
        seeds.push_back(solved_record(spec, w, 10.0));
        ASSERT_TRUE(registry.put(w, seeds.back()));
    }

    // Writer hot-swaps ever-faster records while readers hammer
    // exact lookups. Every lookup must hit and serve a complete
    // record whose gflops is one of the published values.
    std::atomic<bool> stop{false};
    std::atomic<int> torn{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&, t] {
            size_t i = static_cast<size_t>(t);
            while (!stop.load(std::memory_order_relaxed)) {
                const auto &w = workloads[i++ % workloads.size()];
                auto result = registry.lookup(w);
                if (!result.hit() || !result.record ||
                    result.record->assignment.empty() ||
                    result.record->gflops < 10.0)
                    torn.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (int round = 1; round <= 50; ++round) {
        for (size_t i = 0; i < workloads.size(); ++i) {
            auto faster = seeds[i];
            faster.gflops = 10.0 + round;
            registry.put(workloads[i], std::move(faster));
        }
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto &thread : readers)
        thread.join();

    EXPECT_EQ(torn.load(), 0);
    EXPECT_EQ(registry.size(), workloads.size());
    EXPECT_EQ(registry.stats().hot_swaps, 50 * 4);
    // After the dust settles every key serves the fastest record.
    for (const auto &w : workloads) {
        auto result = registry.lookup(w);
        ASSERT_TRUE(result.hit());
        EXPECT_DOUBLE_EQ(result.record->gflops, 60.0);
    }
}

TEST(RegistryRcuConcurrency, ShardedNegativeCache)
{
    auto spec = hw::DlaSpec::v100();
    serve::RegistryConfig config;
    config.enable_fallback = false;
    config.negative_threshold = 3;
    serve::KernelRegistry registry(spec, config);

    // Distinct absent workloads hammered from several threads: the
    // per-shard counters must saturate exactly like a global one.
    std::vector<ops::Workload> absent;
    for (int m : {32, 64, 96, 160, 224, 288, 352, 416})
        absent.push_back(ops::gemm(m, 64, 64));

    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 3; ++i)
                for (const auto &w : absent)
                    registry.lookup(w);
        });
    }
    for (auto &thread : threads)
        thread.join();

    // 12 total misses per key >= threshold: all negative now.
    for (const auto &w : absent) {
        auto result = registry.lookup(w);
        EXPECT_EQ(result.tier, serve::LookupTier::kNegative);
    }

    // mark_untunable saturates immediately; put() clears.
    auto fresh = ops::gemm(480, 64, 64);
    registry.mark_untunable(serve::make_key(fresh, spec));
    EXPECT_EQ(registry.lookup(fresh).tier,
              serve::LookupTier::kNegative);
    ASSERT_TRUE(registry.put(fresh,
                             solved_record(spec, fresh, 5.0)));
    EXPECT_EQ(registry.lookup(fresh).tier,
              serve::LookupTier::kExact);
}

// ---------------------------------------------------------------
// SpaceCache
// ---------------------------------------------------------------

TEST(SpaceCacheTest, MemoizesAndSharesOneCanonicalSpace)
{
    rules::SpaceCache cache;
    rules::SpaceGenerator gen(hw::DlaSpec::v100(),
                              rules::Options::heron());
    auto workload = ops::gemm(128, 128, 128);

    std::atomic<int> generated{0};
    auto make = [&] {
        generated.fetch_add(1, std::memory_order_relaxed);
        return gen.generate(workload);
    };

    auto first = cache.get_or_generate(42, make);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(cache.get_or_generate(42, make).get(), first.get());
    EXPECT_EQ(generated.load(), 1);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.lookup(42).get(), first.get());
    EXPECT_EQ(cache.lookup(43), nullptr);
}

TEST(SpaceCacheTest, ConcurrentGetOrGenerateConverges)
{
    rules::SpaceCache cache;
    rules::SpaceGenerator gen(hw::DlaSpec::v100(),
                              rules::Options::heron());
    auto workload = ops::gemm(64, 64, 64);

    constexpr int kThreads = 8;
    std::vector<std::shared_ptr<const rules::GeneratedSpace>> got(
        kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            // Two keys, interleaved: stripes must not cross-talk.
            uint64_t key = static_cast<uint64_t>(t % 2);
            got[static_cast<size_t>(t)] = cache.get_or_generate(
                key, [&] { return gen.generate(workload); });
        });
    }
    for (auto &thread : threads)
        thread.join();

    // First insert wins: every thread asking for a key got the same
    // canonical space.
    EXPECT_EQ(cache.size(), 2u);
    for (int t = 2; t < kThreads; ++t)
        EXPECT_EQ(got[static_cast<size_t>(t)].get(),
                  got[static_cast<size_t>(t % 2)].get());
}

} // namespace
} // namespace heron
