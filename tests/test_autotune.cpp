/**
 * @file
 * Integration tests for the end-to-end tuners: every tuner finds
 * valid programs on the platforms it supports, the expected
 * orderings hold at small budgets, network tuning aggregates
 * correctly, and compile-time accounting is populated.
 */
#include <gtest/gtest.h>

#include "autotune/network.h"
#include "autotune/tuner.h"

namespace heron::autotune {
namespace {

TuneConfig
small_config(uint64_t seed = 1)
{
    TuneConfig config;
    config.trials = 60;
    config.population = 12;
    config.measure_per_round = 10;
    config.seed = seed;
    return config;
}

TEST(Tuners, AllFindValidProgramsOnTensorCore)
{
    auto spec = hw::DlaSpec::v100();
    auto config = small_config();
    auto workload = ops::gemm(512, 512, 512);

    std::vector<std::unique_ptr<Tuner>> tuners;
    tuners.push_back(make_heron_tuner(spec, config));
    tuners.push_back(make_autotvm_tuner(spec, config));
    tuners.push_back(make_ansor_tuner(spec, config));
    tuners.push_back(make_amos_tuner(spec, config));
    tuners.push_back(make_akg_tuner(spec, config));
    tuners.push_back(make_vendor_library(spec, config));

    for (auto &tuner : tuners) {
        ASSERT_TRUE(tuner->supports(workload)) << tuner->name();
        auto outcome = tuner->tune(workload);
        EXPECT_TRUE(outcome.result.found()) << tuner->name();
        EXPECT_GT(outcome.result.best_gflops, 0.0) << tuner->name();
        EXPECT_GT(outcome.compile_seconds(), 0.0) << tuner->name();
    }
}

TEST(Tuners, HeronRespectsTrialBudget)
{
    auto tuner =
        make_heron_tuner(hw::DlaSpec::v100(), small_config());
    auto outcome = tuner->tune(ops::gemm(256, 256, 256));
    EXPECT_LE(outcome.result.total_measured, 60);
    EXPECT_GE(outcome.result.total_measured, 30);
}

TEST(Tuners, HeronAllMeasurementsValid)
{
    auto tuner =
        make_heron_tuner(hw::DlaSpec::v100(), small_config());
    auto outcome = tuner->tune(ops::c2d(16, 64, 28, 28, 64, 3, 3,
                                        1, 1));
    EXPECT_EQ(outcome.result.valid_count,
              outcome.result.total_measured);
}

TEST(Tuners, HeronBeatsAnsorOnTensorCore)
{
    auto spec = hw::DlaSpec::v100();
    auto config = small_config(3);
    config.trials = 100;
    auto heron = make_heron_tuner(spec, config);
    auto ansor = make_ansor_tuner(spec, config);
    auto workload = ops::gemm(512, 1024, 1024);
    double h = heron->tune(workload).result.best_gflops;
    double a = ansor->tune(workload).result.best_gflops;
    EXPECT_GT(h, 1.5 * a);
}

TEST(Tuners, AkgOnlySupportsGemmAndConv)
{
    auto akg = make_akg_tuner(hw::DlaSpec::v100(), small_config());
    EXPECT_TRUE(akg->supports(ops::gemm(64, 64, 64)));
    EXPECT_TRUE(akg->supports(ops::c2d(1, 8, 8, 8, 8, 3, 3, 1, 1)));
    EXPECT_FALSE(akg->supports(ops::bmm(2, 64, 64, 64)));
    EXPECT_FALSE(akg->supports(ops::scan(4, 64)));
}

TEST(Tuners, AnsorUnsupportedOnVta)
{
    auto ansor = make_ansor_tuner(hw::DlaSpec::vta(), small_config());
    EXPECT_FALSE(ansor->supports(
        ops::gemm(256, 256, 256, ir::DataType::kInt8)));
}

TEST(Tuners, VtaSupportRequiresTensorizableShapes)
{
    auto heron = make_heron_tuner(hw::DlaSpec::vta(), small_config());
    EXPECT_TRUE(heron->supports(
        ops::gemm(256, 256, 256, ir::DataType::kInt8)));
    // n = 9 cannot carve out the fixed n=16 intrinsic.
    EXPECT_FALSE(heron->supports(
        ops::gemm(256, 9, 256, ir::DataType::kInt8)));
}

TEST(Tuners, VendorLibraryMeasuresOncePerRecipe)
{
    auto vendor =
        make_vendor_library(hw::DlaSpec::v100(), small_config());
    auto outcome = vendor->tune(ops::gemm(512, 512, 512));
    // 4 kernel variants.
    EXPECT_EQ(outcome.result.total_measured, 4);
}

TEST(Tuners, CompileTimeBreakdownPopulated)
{
    auto tuner =
        make_heron_tuner(hw::DlaSpec::v100(), small_config());
    auto outcome = tuner->tune(ops::gemm(256, 256, 256));
    EXPECT_GT(outcome.measure_seconds, 0.0);
    EXPECT_GT(outcome.search_seconds, 0.0);
    // Simulated measurement dominates (paper Fig. 14).
    EXPECT_GT(outcome.measure_seconds,
              outcome.search_seconds + outcome.model_seconds);
}

TEST(Tuners, AblationVariantsRun)
{
    auto spec = hw::DlaSpec::v100();
    HeronAblation cga1;
    cga1.label = "CGA-1";
    cga1.random_key_vars = true;
    auto t1 = make_heron_tuner_ablated(spec, small_config(), cga1);
    EXPECT_TRUE(
        t1->tune(ops::gemm(256, 256, 256)).result.found());

    HeronAblation no_mem;
    no_mem.label = "no-mem";
    no_mem.options.enable_mem_constraints = false;
    auto t2 = make_heron_tuner_ablated(spec, small_config(), no_mem);
    auto outcome = t2->tune(ops::gemm(1024, 1024, 1024));
    // Without C5 the space contains capacity violations, so some
    // measurements fail.
    EXPECT_LT(outcome.result.valid_count,
              outcome.result.total_measured);
}

TEST(Network, TuneAggregatesLayers)
{
    auto spec = hw::DlaSpec::v100();
    auto config = small_config();
    config.trials = 20;
    auto tuner = make_heron_tuner(spec, config);

    ops::Network tiny;
    tiny.name = "tiny";
    tiny.layers.push_back({ops::gemm(256, 256, 256), 3});
    tiny.layers.push_back({ops::gemm(512, 256, 256), 1});

    auto outcome = tune_network(*tuner, tiny);
    ASSERT_EQ(outcome.layers.size(), 2u);
    EXPECT_TRUE(outcome.layers[0].tuned);
    EXPECT_NEAR(outcome.total_latency_ms,
                3 * outcome.layers[0].latency_ms +
                    outcome.layers[1].latency_ms,
                1e-9);
    EXPECT_EQ(outcome.unsupported_layers, 0);
}

TEST(Network, UnsupportedLayerUsesFallback)
{
    auto spec = hw::DlaSpec::vta();
    auto config = small_config();
    config.trials = 15;
    auto tuner = make_heron_tuner(spec, config);

    ops::Network net;
    net.name = "mixed";
    net.layers.push_back(
        {ops::gemm(256, 256, 256, ir::DataType::kInt8), 1});
    net.layers.push_back(
        {ops::gemm(256, 9, 256, ir::DataType::kInt8), 1});

    auto outcome = tune_network(*tuner, net);
    EXPECT_EQ(outcome.unsupported_layers, 1);
    EXPECT_FALSE(outcome.layers[1].tuned);
    EXPECT_GT(outcome.layers[1].latency_ms, 0.0);
}

TEST(Network, HeronBeatsVendorOnVgg)
{
    // The paper highlights VGG-16 (3x3 convs) as the case where
    // search beats fixed library kernels.
    auto spec = hw::DlaSpec::v100();
    auto config = small_config(7);
    config.trials = 40;
    auto heron = make_heron_tuner(spec, config);
    auto vendor = make_vendor_library(spec, config);

    auto net = ops::vgg16(16);
    net.layers.resize(4); // keep the test fast
    auto h = tune_network(*heron, net);
    auto v = tune_network(*vendor, net);
    EXPECT_LT(h.total_latency_ms, v.total_latency_ms);
}

} // namespace
} // namespace heron::autotune
