/**
 * @file
 * Tests for the DLA simulators and the measurer: spec presets,
 * validity checking (the ground truth the constraints approximate),
 * monotonicity properties of the latency models, determinism, and
 * measurement accounting.
 */
#include <gtest/gtest.h>

#include "csp/solver.h"
#include "hw/measurer.h"
#include "hw/simulator.h"
#include "ops/op_library.h"
#include "rules/space_generator.h"
#include "support/rng.h"
#include "support/stats.h"

namespace heron::hw {
namespace {

using schedule::ConcreteProgram;
using schedule::ConcreteStage;
using schedule::LoopRole;
using schedule::MemScope;
using schedule::StageRole;

/** Hand-built minimal tensorized GEMM program for TensorCore. */
ConcreteProgram
make_tc_program(int64_t grid_i, int64_t warps_j, int64_t shared_kb)
{
    ConcreteProgram p;
    p.workload = "test-gemm";
    p.dtype = ir::DataType::kFloat16;
    p.total_ops = 2LL * 512 * 512 * 512;

    ConcreteStage main;
    main.name = "C";
    main.role = StageRole::kMain;
    main.axis_names = {"i", "j", "r"};
    main.axis_reduce = {false, false, true};
    main.tile = {{grid_i, 1, 2, 16}, {4, warps_j, 4, 16},
                 {32, 16}};
    main.roles = {{LoopRole::kGrid, LoopRole::kVThread,
                   LoopRole::kThread, LoopRole::kIntrinsic},
                  {LoopRole::kGrid, LoopRole::kThread,
                   LoopRole::kSerial, LoopRole::kIntrinsic},
                  {LoopRole::kSerial, LoopRole::kIntrinsic}};
    main.intrinsic_m = 16;
    main.intrinsic_n = 16;
    main.intrinsic_k = 16;
    p.stages.push_back(main);

    ConcreteStage a;
    a.name = "A.shared";
    a.role = StageRole::kCacheRead;
    a.scope = MemScope::kShared;
    a.tensor = "A";
    a.compute_at = "C";
    a.attach_depth = 2;
    a.tile_elements = shared_kb * 1024 / 2;
    a.row_elements = 64;
    a.fill_trips = 1024;
    a.bytes_per_element = 2;
    a.vector_len = 8;
    p.stages.push_back(a);
    return p;
}

TEST(DlaSpec, Presets)
{
    auto v100 = DlaSpec::v100();
    EXPECT_EQ(v100.kind, DlaKind::kTensorCore);
    EXPECT_EQ(v100.intrinsic_volume, 4096);
    EXPECT_EQ(v100.shared_capacity, 48 * 1024);
    // 112 TFLOPS = 56 TMAC/s.
    EXPECT_NEAR(v100.peak_gmacs(), 56000, 1000);

    auto dlb = DlaSpec::dlboost();
    EXPECT_EQ(dlb.fixed_n, 16);
    EXPECT_EQ(dlb.fixed_k, 4);

    auto vta = DlaSpec::vta();
    EXPECT_EQ(vta.input_buffer_capacity, 32 * 1024);
    EXPECT_EQ(vta.weight_buffer_capacity, 256 * 1024);
    EXPECT_EQ(vta.acc_buffer_capacity, 128 * 1024);
}

TEST(TensorCoreSim, ValidProgramPasses)
{
    auto sim = make_simulator(DlaSpec::v100());
    auto p = make_tc_program(8, 2, 16);
    EXPECT_EQ(sim->check(p), "");
    EXPECT_GT(sim->latency_ms(p), 0.0);
}

TEST(TensorCoreSim, RejectsBadIntrinsicShape)
{
    auto sim = make_simulator(DlaSpec::v100());
    auto p = make_tc_program(8, 2, 16);
    p.stages[0].intrinsic_m = 64; // not in {8,16,32}
    EXPECT_NE(sim->check(p).find("wmma"), std::string::npos);
    p.stages[0].intrinsic_m = 32; // 32*16*16 != 4096
    EXPECT_NE(sim->check(p), "");
}

TEST(TensorCoreSim, RejectsSharedOverflow)
{
    auto sim = make_simulator(DlaSpec::v100());
    auto p = make_tc_program(8, 2, 64); // 64KB > 48KB
    EXPECT_NE(sim->check(p).find("shared"), std::string::npos);
}

TEST(TensorCoreSim, RejectsTooManyThreads)
{
    auto sim = make_simulator(DlaSpec::v100());
    auto p = make_tc_program(8, 64, 16); // 2*64=128 warps
    EXPECT_NE(sim->check(p).find("threads"), std::string::npos);
}

TEST(TensorCoreSim, RejectsBadVector)
{
    auto sim = make_simulator(DlaSpec::v100());
    auto p = make_tc_program(8, 2, 16);
    p.stages[1].vector_len = 16; // 32B > 16B transaction
    EXPECT_NE(sim->check(p), "");
    p.stages[1].vector_len = 3; // not in {1,2,4,8}
    EXPECT_NE(sim->check(p), "");
    p.stages[1].vector_len = 8;
    p.stages[1].row_elements = 12; // 12 % 8 != 0
    EXPECT_NE(sim->check(p).find("unaligned"), std::string::npos);
}

TEST(TensorCoreSim, Deterministic)
{
    auto sim = make_simulator(DlaSpec::v100());
    auto p = make_tc_program(8, 2, 16);
    EXPECT_DOUBLE_EQ(sim->latency_ms(p), sim->latency_ms(p));
}

TEST(TensorCoreSim, MoreParallelismIsFaster)
{
    auto sim = make_simulator(DlaSpec::v100());
    auto few_blocks = make_tc_program(2, 2, 16);
    auto many_blocks = make_tc_program(16, 2, 16);
    EXPECT_LT(sim->latency_ms(many_blocks) * 1.5,
              sim->latency_ms(few_blocks));
}

TEST(TensorCoreSim, A100FasterThanT4)
{
    auto p = make_tc_program(16, 2, 16);
    auto t4 = make_simulator(DlaSpec::t4());
    auto a100 = make_simulator(DlaSpec::a100());
    EXPECT_LT(a100->latency_ms(p), t4->latency_ms(p));
}

TEST(TensorCoreSim, StorageAlignReducesConflictPenalty)
{
    // 64-element fp16 rows conflict badly; padding helps.
    auto spec = DlaSpec::v100();
    int unpadded = detail::bank_conflict_ways(spec, 64, 0, 2);
    int padded = detail::bank_conflict_ways(spec, 64, 4, 2);
    EXPECT_GT(unpadded, padded);
}

TEST(TensorCoreSim, ExplainMentionsTerms)
{
    auto sim = make_simulator(DlaSpec::v100());
    auto p = make_tc_program(8, 2, 16);
    std::string e = sim->explain(p);
    EXPECT_NE(e.find("compute_cycles"), std::string::npos);
    EXPECT_NE(e.find("dram_cycles"), std::string::npos);
}

TEST(Measurer, AccountsSimulatedTime)
{
    rules::SpaceGenerator gen(DlaSpec::v100(),
                              rules::Options::heron());
    auto space = gen.generate(ops::gemm(256, 256, 256));
    csp::RandSatSolver solver(space.csp);
    Rng rng(5);

    MeasureConfig mc;
    mc.repeats = 3;
    mc.harness_overhead_s = 0.1;
    Measurer measurer(space.spec, mc);
    auto a = solver.solve_one(rng);
    ASSERT_TRUE(a.has_value());
    auto r = measurer.measure(space.bind(*a));
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(measurer.count(), 1);
    // harness overhead + 3 runs of the measured latency.
    EXPECT_GT(measurer.simulated_seconds(), 0.1);
    EXPECT_NEAR(measurer.simulated_seconds(),
                0.1 + 3 * r.latency_ms / 1e3, 0.01);
}

TEST(Measurer, NoiseIsSmallAndCentred)
{
    rules::SpaceGenerator gen(DlaSpec::v100(),
                              rules::Options::heron());
    auto space = gen.generate(ops::gemm(256, 256, 256));
    csp::RandSatSolver solver(space.csp);
    Rng rng(6);
    auto a = solver.solve_one(rng);
    ASSERT_TRUE(a.has_value());
    auto program = space.bind(*a);

    auto sim = make_simulator(space.spec);
    double model_ms = sim->latency_ms(program);
    Measurer measurer(space.spec);
    heron::RunningStat s;
    for (int i = 0; i < 20; ++i)
        s.push(measurer.measure(program).latency_ms);
    EXPECT_NEAR(s.mean(), model_ms, 0.05 * model_ms);
}

TEST(VtaSim, RejectsWriteHazard)
{
    rules::SpaceGenerator gen(DlaSpec::vta(),
                              rules::Options::heron());
    auto space =
        gen.generate(ops::gemm(256, 256, 256, ir::DataType::kInt8));
    csp::RandSatSolver solver(space.csp);
    Rng rng(7);
    auto a = solver.solve_one(rng);
    ASSERT_TRUE(a.has_value());
    auto program = space.bind(*a);
    auto sim = make_simulator(space.spec);
    ASSERT_EQ(sim->check(program), "");

    // Force the innermost non-intrinsic reduce level to 1: hazard.
    auto &main = program.stages[0];
    for (int ax = static_cast<int>(main.tile.size()) - 1; ax >= 0;
         --ax) {
        if (!main.axis_reduce[static_cast<size_t>(ax)])
            continue;
        auto &levels = main.tile[static_cast<size_t>(ax)];
        // roles: [Serial, Buffer, Intrinsic]; rebalance so the
        // buffer level becomes 1.
        levels[0] *= levels[1];
        levels[1] = 1;
        break;
    }
    EXPECT_NE(sim->check(program).find("access cycle"),
              std::string::npos);
}

TEST(DlBoostSim, RejectsWrongIntrinsic)
{
    rules::SpaceGenerator gen(DlaSpec::dlboost(),
                              rules::Options::heron());
    auto space =
        gen.generate(ops::gemm(256, 256, 256, ir::DataType::kInt8));
    csp::RandSatSolver solver(space.csp);
    Rng rng(8);
    auto a = solver.solve_one(rng);
    ASSERT_TRUE(a.has_value());
    auto program = space.bind(*a);
    auto sim = make_simulator(space.spec);
    ASSERT_EQ(sim->check(program), "");
    program.stages[0].intrinsic_k = 8; // VNNI requires k=4
    EXPECT_NE(sim->check(program).find("VNNI"), std::string::npos);
}

TEST(DlBoostSim, PackedLayoutHelps)
{
    rules::SpaceGenerator gen(DlaSpec::dlboost(),
                              rules::Options::heron());
    auto space = gen.generate(
        ops::gemm(512, 1024, 1024, ir::DataType::kInt8));
    csp::RandSatSolver solver(space.csp);
    Rng rng(9);
    auto a = solver.solve_one(rng);
    ASSERT_TRUE(a.has_value());
    auto program = space.bind(*a);
    auto sim = make_simulator(space.spec);
    double with_packed = sim->latency_ms(program);
    for (auto &s : program.stages)
        s.packed_layout = false;
    double without = sim->latency_ms(program);
    EXPECT_LE(with_packed, without);
}

/** Property: every solver sample of every DLA binds to a program
 * the matching simulator accepts (constraints == ground truth). */
class ConstraintSoundness
    : public ::testing::TestWithParam<int>
{
};

TEST_P(ConstraintSoundness, GeneratedConstraintsMatchSimulator)
{
    int which = GetParam();
    DlaSpec spec = which == 0   ? DlaSpec::v100()
                   : which == 1 ? DlaSpec::dlboost()
                                : DlaSpec::vta();
    ir::DataType dt = which == 0 ? ir::DataType::kFloat16
                                 : ir::DataType::kInt8;
    rules::SpaceGenerator gen(spec, rules::Options::heron());
    auto space = gen.generate(ops::gemm(256, 512, 512, dt));
    csp::RandSatSolver solver(space.csp);
    auto sim = make_simulator(spec);
    Rng rng(static_cast<uint64_t>(which) + 100);
    for (int i = 0; i < 25; ++i) {
        auto a = solver.solve_one(rng);
        ASSERT_TRUE(a.has_value());
        auto program = space.bind(*a);
        EXPECT_EQ(sim->check(program), "") << "sample " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(AllDlas, ConstraintSoundness,
                         ::testing::Values(0, 1, 2));

} // namespace
} // namespace heron::hw
