/**
 * @file
 * Tests for the fault-tolerant tuning runtime: deterministic fault
 * injection, measurement retry/timeout/outlier handling, typed
 * solver failures with wall-clock deadlines, the CGA relaxation
 * ladder, checkpoint/resume equivalence, and the recoverable-error
 * paths for untrusted tuning-log input.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "autotune/checkpoint.h"
#include "autotune/record.h"
#include "autotune/tuner.h"
#include "csp/solver.h"
#include "hw/fault_injection.h"
#include "model/cost_model.h"
#include "ops/op_library.h"
#include "rules/space_generator.h"
#include "search/cga.h"
#include "support/rng.h"

namespace heron {
namespace {

using autotune::ReplayCursor;
using autotune::TuningJournal;
using autotune::TuningRecord;
using csp::Assignment;
using csp::Csp;
using csp::Domain;
using csp::RandSatSolver;
using csp::SolveFailure;
using csp::SolverConfig;
using csp::VarId;

/** A bound, valid GEMM program plus its space for measurer tests. */
struct Bound {
    rules::GeneratedSpace space;
    schedule::ConcreteProgram program;
};

Bound
make_bound(uint64_t seed = 5)
{
    rules::SpaceGenerator gen(hw::DlaSpec::v100(),
                              rules::Options::heron());
    Bound b{gen.generate(ops::gemm(256, 256, 256)), {}};
    RandSatSolver solver(b.space.csp);
    Rng rng(seed);
    auto a = solver.solve_one(rng);
    HERON_CHECK(a.has_value());
    b.program = b.space.bind(*a);
    return b;
}

TEST(FaultInjection, DeterministicUnderFixedSeed)
{
    auto b = make_bound();
    hw::MeasureConfig mc;
    mc.timeout_ms = 50.0;
    hw::FaultConfig fc;
    fc.transient_rate = 0.25;
    fc.timeout_rate = 0.1;
    fc.outlier_rate = 0.1;
    fc.spurious_invalid_rate = 0.05;
    fc.seed = 42;

    hw::FaultyMeasurer m1(b.space.spec, mc, fc);
    hw::FaultyMeasurer m2(b.space.spec, mc, fc);
    for (int i = 0; i < 30; ++i) {
        auto r1 = m1.measure(b.program);
        auto r2 = m2.measure(b.program);
        EXPECT_EQ(r1.valid, r2.valid) << "measurement " << i;
        EXPECT_EQ(r1.failure, r2.failure) << "measurement " << i;
        EXPECT_EQ(r1.attempts, r2.attempts) << "measurement " << i;
        EXPECT_DOUBLE_EQ(r1.latency_ms, r2.latency_ms);
        EXPECT_DOUBLE_EQ(r1.gflops, r2.gflops);
    }
    EXPECT_DOUBLE_EQ(m1.simulated_seconds(),
                     m2.simulated_seconds());
    EXPECT_EQ(m1.injected_count(), m2.injected_count());
    EXPECT_GT(m1.injected_count(), 0);
}

TEST(FaultInjection, RetriesRecoverTransients)
{
    auto b = make_bound();
    hw::MeasureConfig mc;
    mc.max_retries = 3;
    hw::FaultConfig fc;
    fc.transient_rate = 0.3;
    hw::FaultyMeasurer measurer(b.space.spec, mc, fc);

    int valid = 0;
    bool saw_retry = false;
    for (int i = 0; i < 40; ++i) {
        auto r = measurer.measure(b.program);
        valid += r.valid ? 1 : 0;
        saw_retry |= r.valid && r.attempts > 1;
    }
    // P(4 consecutive transients) = 0.81%: nearly everything
    // recovers within the retry budget.
    EXPECT_GT(measurer.stats().transient_faults, 0);
    EXPECT_GT(measurer.stats().retries, 0);
    EXPECT_TRUE(saw_retry);
    EXPECT_GE(valid, 36);
}

TEST(FaultInjection, TimeoutsAreClassifiedAndCharged)
{
    auto b = make_bound();
    hw::MeasureConfig mc;
    mc.harness_overhead_s = 0.1;
    mc.timeout_ms = 40.0;
    mc.max_retries = 0;
    mc.retry_backoff_s = 0.0;
    hw::FaultConfig fc;
    fc.timeout_rate = 1.0;
    hw::FaultyMeasurer measurer(b.space.spec, mc, fc);

    auto r = measurer.measure(b.program);
    EXPECT_FALSE(r.valid);
    EXPECT_EQ(r.failure, hw::MeasureFailure::kTimeout);
    EXPECT_EQ(measurer.stats().timeouts, 1);
    EXPECT_EQ(measurer.stats().exhausted_retries, 1);
    // One attempt: harness overhead + the watchdog's 40 ms.
    EXPECT_NEAR(measurer.simulated_seconds(), 0.1 + 0.04, 1e-9);
}

TEST(FaultInjection, OutliersAreRejectedBeforeAveraging)
{
    auto b = make_bound();
    hw::MeasureConfig mc;
    mc.repeats = 5;
    hw::Measurer clean(b.space.spec, mc);
    double clean_ms = clean.measure(b.program).latency_ms;

    // Median-based rejection assumes outliers are a minority of
    // the repeats; a rate this low keeps that true for every
    // 5-repeat measurement in the run.
    hw::FaultConfig fc;
    fc.outlier_rate = 0.1;
    fc.outlier_scale = 20.0;
    hw::FaultyMeasurer measurer(b.space.spec, mc, fc);
    int64_t rejected = 0;
    for (int i = 0; i < 20; ++i) {
        auto r = measurer.measure(b.program);
        ASSERT_TRUE(r.valid);
        // A kept 20x outlier would drag the 5-repeat mean up by
        // ~4x; rejection keeps every mean near the clean latency.
        EXPECT_LT(r.latency_ms, 1.2 * clean_ms);
    }
    rejected = measurer.stats().outliers_rejected;
    EXPECT_GT(rejected, 0);
}

/**
 * SUM CSP that is unsatisfiable by parity (@p n odd-valued vars
 * cannot sum to an odd @p target when n is even) but looks fine to
 * bounds propagation, so the solver must search the whole tree.
 */
Csp
parity_trap(int n, int64_t target)
{
    Csp csp;
    std::vector<VarId> vars;
    for (int i = 0; i < n; ++i)
        vars.push_back(csp.add_var("x" + std::to_string(i),
                                   Domain::of({1, 3}), true));
    VarId s = csp.add_var("s", Domain::singleton(target));
    csp.add_sum(s, vars);
    return csp;
}

TEST(SolverFailure, RootWipeoutIsProvenUnsat)
{
    Csp csp;
    VarId x = csp.add_var("x", Domain::singleton(1), true);
    VarId y = csp.add_var("y", Domain::singleton(2), true);
    csp.add_eq(x, y);

    RandSatSolver solver(csp);
    Rng rng(1);
    EXPECT_FALSE(solver.solve_one(rng).has_value());
    EXPECT_EQ(solver.last_failure(), SolveFailure::kUnsat);
    // UNSAT is proven at the root: no restarts were attempted.
    EXPECT_EQ(solver.stats().restarts, 0);
}

TEST(SolverFailure, ExhaustedBudgetIsReported)
{
    Csp csp = parity_trap(8, 17);
    SolverConfig config;
    config.max_restarts = 2;
    RandSatSolver solver(csp, config);
    Rng rng(2);
    EXPECT_FALSE(solver.solve_one(rng).has_value());
    EXPECT_EQ(solver.last_failure(), SolveFailure::kBudget);

    // A success resets the failure reason.
    Csp easy;
    easy.add_var("x", Domain::of({1, 2}), true);
    RandSatSolver ok(easy);
    EXPECT_TRUE(ok.solve_one(rng).has_value());
    EXPECT_EQ(ok.last_failure(), SolveFailure::kNone);
}

TEST(SolverFailure, DeadlineBoundsWallClock)
{
    Csp csp = parity_trap(16, 33);
    SolverConfig config;
    config.max_backtracks_per_restart = 1000000000;
    config.max_restarts = 1000000000;
    config.deadline_ms = 50.0;
    RandSatSolver solver(csp, config);
    Rng rng(3);

    auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(solver.solve_one(rng).has_value());
    double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_EQ(solver.last_failure(), SolveFailure::kDeadline);
    EXPECT_EQ(solver.stats().deadline_aborts, 1);
    // The deadline is checked before every propagation step; even
    // with generous slack for a loaded machine the abort must come
    // orders of magnitude before the budget would ever run out.
    EXPECT_LT(elapsed_ms, 5000.0);
}

TEST(CgaLadder, RecoversOffspringFromUnsatCrossover)
{
    // EQ-chain space: only (1,1,1) and (2,2,2) are valid. Seeding
    // the population with the *invalid* (1,2,1) makes crossover add
    // contradictory singleton IN constraints, so subproblems are
    // UNSAT until the relaxation ladder drops enough of them.
    Csp csp;
    VarId x = csp.add_var("x", Domain::of({1, 2}), true);
    VarId y = csp.add_var("y", Domain::of({1, 2}), true);
    VarId z = csp.add_var("z", Domain::of({1, 2}), true);
    csp.add_eq(x, y);
    csp.add_eq(y, z);

    RandSatSolver solver(csp);
    model::CostModel model(csp);
    std::vector<Assignment> population = {{1, 2, 1}};
    Rng rng(4);
    auto offspring = search::constraint_crossover_mutation(
        csp, solver, model, population, /*count=*/8, /*key_vars=*/3,
        /*random_keys=*/true, rng);

    // The ladder was exercised (at least one UNSAT subproblem) and
    // no offspring was lost to it.
    EXPECT_GE(solver.stats().failures, 1);
    ASSERT_EQ(offspring.size(), 8u);
    for (const auto &child : offspring)
        EXPECT_TRUE(csp.valid(child));
}

TEST(FaultTolerantTuning, CompletesBudgetUnderFaults)
{
    ops::Workload workload = ops::gemm(256, 256, 256);
    autotune::TuneConfig config;
    config.trials = 60;
    config.seed = 11;
    config.measure.timeout_ms = 50.0;

    auto clean =
        autotune::make_heron_tuner(hw::DlaSpec::v100(), config);
    auto clean_outcome = clean->tune(workload);
    ASSERT_TRUE(clean_outcome.result.found());
    EXPECT_EQ(clean_outcome.result.total_measured, 60);

    config.faults.transient_rate = 0.2;
    config.faults.timeout_rate = 0.05;
    auto faulty =
        autotune::make_heron_tuner(hw::DlaSpec::v100(), config);
    auto outcome = faulty->tune(workload);

    // The full trial budget is spent despite the faults, a valid
    // program is found, per-category failures are accounted, and
    // the result stays within 10% of the fault-free run.
    EXPECT_EQ(outcome.result.total_measured, 60);
    ASSERT_TRUE(outcome.result.found());
    EXPECT_GT(outcome.measure_stats.transient_faults, 0);
    EXPECT_GT(outcome.measure_stats.timeouts, 0);
    EXPECT_GT(outcome.measure_stats.retries, 0);
    EXPECT_GE(outcome.result.best_gflops,
              0.9 * clean_outcome.result.best_gflops);
}

/** Keep only the first @p keep lines of @p path (simulated kill). */
void
truncate_lines(const std::string &path, size_t keep)
{
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    in.close();
    ASSERT_GT(lines.size(), keep);
    std::ofstream out(path, std::ios::trunc);
    for (size_t i = 0; i < keep; ++i)
        out << lines[i] << "\n";
}

TEST(Checkpoint, ResumeIsBitIdenticalToUninterruptedRun)
{
    ops::Workload workload = ops::gemm(256, 256, 256);
    autotune::TuneConfig config;
    config.trials = 40;
    config.seed = 21;
    // Faults on: resume must also replay the fault schedule.
    config.faults.transient_rate = 0.1;

    // Baseline: no journal.
    auto baseline =
        autotune::make_heron_tuner(hw::DlaSpec::v100(), config)
            ->tune(workload);
    ASSERT_TRUE(baseline.result.found());

    // Journaled run: journaling alone must not perturb the search.
    std::string journal =
        ::testing::TempDir() + "heron_ckpt_test.jsonl";
    std::remove(journal.c_str());
    config.journal_path = journal;
    auto journaled =
        autotune::make_heron_tuner(hw::DlaSpec::v100(), config)
            ->tune(workload);
    EXPECT_EQ(journaled.replayed, 0);
    EXPECT_EQ(journaled.result.best, baseline.result.best);
    EXPECT_DOUBLE_EQ(journaled.result.best_latency_ms,
                     baseline.result.best_latency_ms);

    // Kill the run after 15 measurements and resume it.
    truncate_lines(journal, 15);
    auto resumed =
        autotune::make_heron_tuner(hw::DlaSpec::v100(), config)
            ->tune(workload);
    EXPECT_EQ(resumed.replayed, 15);
    EXPECT_EQ(resumed.result.total_measured, 40);

    // Bit-identical convergence: same best assignment, same
    // latencies, same best-so-far trajectory.
    EXPECT_EQ(resumed.result.best, baseline.result.best);
    EXPECT_DOUBLE_EQ(resumed.result.best_latency_ms,
                     baseline.result.best_latency_ms);
    EXPECT_DOUBLE_EQ(resumed.result.best_gflops,
                     baseline.result.best_gflops);
    EXPECT_EQ(resumed.result.history, baseline.result.history);
    std::remove(journal.c_str());
}

TEST(Checkpoint, DivergentJournalDropsTail)
{
    TuningRecord r;
    r.workload = "w";
    r.dla = "d";
    r.tuner = "t";
    r.assignment = {1, 2, 3};
    ReplayCursor cursor({r, r}, "w", "d", "t");
    EXPECT_EQ(cursor.remaining(), 2u);
    // First record matches; the second diverges and is dropped.
    EXPECT_NE(cursor.match({1, 2, 3}), nullptr);
    EXPECT_EQ(cursor.match({9, 9, 9}), nullptr);
    EXPECT_EQ(cursor.remaining(), 0u);
    EXPECT_EQ(cursor.replayed(), 1);
}

TEST(Records, MalformedLinesAreCountedNotFatal)
{
    TuningRecord r;
    r.workload = "w";
    r.dla = "d";
    r.tuner = "t";
    r.latency_ms = 1.25;
    r.gflops = 3.5;
    r.assignment = {4, 8};
    std::string text = r.to_json() + "\n" + "{not json\n" +
                       r.to_json() + "\n" + "\n" + "also bad\n";

    autotune::RecordReadStats stats;
    auto records = autotune::read_records(text, &stats);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(stats.malformed, 2);
    EXPECT_EQ(stats.first_bad_line, 2);
    EXPECT_EQ(records[0].assignment, r.assignment);
    EXPECT_DOUBLE_EQ(records[0].latency_ms, 1.25);
}

/** Four distinct, seq-stamped records for durability tests. */
std::vector<TuningRecord>
stamped_records()
{
    std::vector<TuningRecord> records(4);
    for (size_t i = 0; i < records.size(); ++i) {
        auto &r = records[i];
        r.workload = "w";
        r.dla = "d";
        r.tuner = "t";
        r.seq = static_cast<int64_t>(i) + 1;
        r.latency_ms = 1.5 + static_cast<double>(i);
        r.gflops = 10.0 * static_cast<double>(i + 1);
        r.assignment = {static_cast<int64_t>(i), 7};
    }
    return records;
}

TEST(Records, TornTailRecoveredAtEveryByteOffset)
{
    auto records = stamped_records();
    std::string text = autotune::write_records(records);
    ASSERT_EQ(text.back(), '\n');
    // Start of the final record's line.
    size_t start = text.rfind('\n', text.size() - 2) + 1;

    // Truncate at every byte offset within the final record (and at
    // its trailing newline): the three preceding records always load
    // intact, and a partially-present final line is exactly one
    // recovered truncation — never malformed, never a CRC error.
    for (size_t cut = start; cut <= text.size(); ++cut) {
        autotune::RecordReadStats stats;
        auto loaded =
            autotune::read_records(text.substr(0, cut), &stats);
        if (cut == text.size()) {
            ASSERT_EQ(loaded.size(), 4u) << "cut " << cut;
            EXPECT_EQ(stats.recovered_truncations, 0);
        } else if (cut == start) {
            ASSERT_EQ(loaded.size(), 3u) << "cut " << cut;
            EXPECT_EQ(stats.recovered_truncations, 0);
        } else {
            ASSERT_EQ(loaded.size(), 3u) << "cut " << cut;
            EXPECT_EQ(stats.recovered_truncations, 1)
                << "cut " << cut;
        }
        EXPECT_EQ(stats.malformed, 0) << "cut " << cut;
        EXPECT_EQ(stats.crc_mismatches, 0) << "cut " << cut;
        EXPECT_FALSE(stats.corrupt()) << "cut " << cut;
        for (size_t i = 0; i < 3; ++i) {
            EXPECT_EQ(loaded[i].seq, records[i].seq);
            EXPECT_EQ(loaded[i].assignment, records[i].assignment);
            EXPECT_DOUBLE_EQ(loaded[i].latency_ms,
                             records[i].latency_ms);
        }
    }
}

TEST(Records, CrcDetectsMidJournalByteFlip)
{
    auto records = stamped_records();
    std::string text = autotune::write_records(records);
    // Flip one payload byte inside the *second* line: the torn-tail
    // rule cannot excuse it, so it must surface as real corruption.
    size_t line2 = text.find('\n') + 1;
    size_t victim = text.find("\"w\"", line2);
    ASSERT_NE(victim, std::string::npos);
    text[victim + 1] = 'W';

    autotune::RecordReadStats stats;
    auto loaded = autotune::read_records(text, &stats);
    EXPECT_EQ(loaded.size(), 3u);
    EXPECT_EQ(stats.crc_mismatches, 1);
    EXPECT_EQ(stats.first_bad_line, 2);
    EXPECT_EQ(stats.malformed, 0);
    EXPECT_TRUE(stats.corrupt());
}

TEST(Records, SeqRegressionFlagsSplicedJournal)
{
    std::string text =
        autotune::write_records(stamped_records());
    // A journal concatenated with itself: every line is valid and
    // CRC-clean, but the restarting sequence betrays the splice.
    autotune::RecordReadStats stats;
    auto loaded = autotune::read_records(text + text, &stats);
    EXPECT_EQ(loaded.size(), 8u);
    EXPECT_EQ(stats.seq_regressions, 1);
    EXPECT_EQ(stats.malformed, 0);
    EXPECT_EQ(stats.crc_mismatches, 0);
    EXPECT_TRUE(stats.corrupt());
}

TEST(Checkpoint, JournalOpenRepairsTornTail)
{
    auto records = stamped_records();
    std::string path =
        ::testing::TempDir() + "heron_torn_tail.jsonl";
    std::remove(path.c_str());
    {
        // Two complete lines plus a torn fragment (crashed append).
        std::string text = autotune::write_records(
            {records[0], records[1]});
        std::ofstream out(path, std::ios::binary);
        out << text << records[2].to_json().substr(0, 11);
    }

    // open() truncates the fragment before appending, so the next
    // record never concatenates onto torn bytes.
    TuningJournal journal;
    ASSERT_TRUE(journal.open(path, /*next_seq=*/3));
    TuningRecord next = records[2];
    next.seq = 0; // stamped by the journal
    journal.append(next);

    autotune::RecordReadStats stats;
    auto loaded = TuningJournal::load(path, &stats);
    ASSERT_EQ(loaded.size(), 3u);
    EXPECT_FALSE(stats.corrupt());
    EXPECT_EQ(stats.recovered_truncations, 0);
    EXPECT_EQ(loaded[2].seq, 3);
    EXPECT_EQ(loaded[2].assignment, records[2].assignment);
    std::remove(path.c_str());
}

TEST(Checkpoint, InjectedCrashTearsExactlyOneLine)
{
    auto records = stamped_records();
    std::string path =
        ::testing::TempDir() + "heron_crash_plan.jsonl";
    std::remove(path.c_str());
    TuningJournal journal;
    ASSERT_TRUE(journal.open(path));
    journal.set_crash_plan({/*after_records=*/2,
                            /*partial_bytes=*/9});
    for (auto &r : records) {
        TuningRecord unstamped = r;
        unstamped.seq = 0;
        journal.append(unstamped);
    }
    // The third append crashed the journal; the fourth was dropped.
    EXPECT_TRUE(journal.crashed());

    autotune::RecordReadStats stats;
    auto loaded = TuningJournal::load(path, &stats);
    EXPECT_EQ(loaded.size(), 2u);
    EXPECT_EQ(stats.recovered_truncations, 1);
    EXPECT_FALSE(stats.corrupt());
    std::remove(path.c_str());
}

TEST(FaultInjection, HungFaultIsFinalAndChargedDeterministically)
{
    auto b = make_bound();
    hw::MeasureConfig mc;
    mc.max_retries = 3;
    hw::FaultConfig fc;
    fc.hung_rate = 1.0;

    // No cancel token attached: the cooperative wedge returns
    // immediately (nothing to wait on) but still resolves as kHung
    // with the canonical error and charge — and is never retried,
    // because a wedge reproduces.
    hw::FaultyMeasurer m1(b.space.spec, mc, fc);
    hw::FaultyMeasurer m2(b.space.spec, mc, fc);
    auto r1 = m1.measure(b.program);
    auto r2 = m2.measure(b.program);
    auto canonical = hw::hung_result();
    EXPECT_FALSE(r1.valid);
    EXPECT_EQ(r1.failure, hw::MeasureFailure::kHung);
    EXPECT_EQ(r1.error, canonical.error);
    EXPECT_EQ(r1.attempts, 1);
    EXPECT_EQ(m1.stats().hung, 1);
    EXPECT_EQ(m1.stats().retries, 0);
    EXPECT_DOUBLE_EQ(m1.simulated_seconds(),
                     hw::hung_charge_s(mc, fc));
    EXPECT_EQ(r1.failure, r2.failure);
    EXPECT_DOUBLE_EQ(m1.simulated_seconds(),
                     m2.simulated_seconds());
}

TEST(Records, RoundTripPreservesDoublesExactly)
{
    TuningRecord r;
    r.workload = "w";
    r.dla = "d";
    r.tuner = "t";
    r.valid = true;
    r.latency_ms = 0.123456789012345678; // not representable
    r.gflops = 1e6 / 3.0;
    r.assignment = {1};
    auto parsed = TuningRecord::from_json(r.to_json());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->valid, r.valid);
    // Bit-identical round trip, not merely approximate.
    EXPECT_EQ(parsed->latency_ms, r.latency_ms);
    EXPECT_EQ(parsed->gflops, r.gflops);
}

TEST(Records, ReplayRejectsDlaMismatch)
{
    auto b = make_bound();
    hw::Measurer measurer(b.space.spec);

    RandSatSolver solver(b.space.csp);
    Rng rng(6);
    auto a = solver.solve_one(rng);
    ASSERT_TRUE(a.has_value());

    TuningRecord record;
    record.workload = b.space.workload.name;
    record.dla = "some-other-dla";
    record.tuner = "Heron";
    record.assignment = *a;
    EXPECT_FALSE(
        autotune::replay(record, b.space, measurer).has_value());

    record.dla = b.space.spec.name;
    auto result = autotune::replay(record, b.space, measurer);
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(result->valid);
}

TEST(Binder, TryBindRecoversFromGarbageInput)
{
    auto b = make_bound();

    std::string error;
    Assignment short_a(3, 1);
    EXPECT_FALSE(b.space.try_bind(short_a, &error).has_value());
    EXPECT_NE(error.find("values"), std::string::npos);

    RandSatSolver solver(b.space.csp);
    Rng rng(7);
    auto a = solver.solve_one(rng);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.space.try_bind(*a).has_value());

    // Corrupt one value far outside its domain (a negative tile
    // size would previously abort inside checked arithmetic).
    Assignment bad = *a;
    bad[0] = -999;
    error.clear();
    EXPECT_FALSE(b.space.try_bind(bad, &error).has_value());
    EXPECT_NE(error.find("domain"), std::string::npos);
}

} // namespace
} // namespace heron
