/**
 * @file
 * Compile-time kill switch: with HERON_DISABLE_TRACING defined
 * before the headers, the instrumentation macros must compile to
 * no-ops — no Tracer or Registry traffic at all. This TU is the
 * "macro off" build the headers promise; it defines the macro
 * itself so the rest of the build stays instrumented.
 */
#define HERON_DISABLE_TRACING 1

#include <gtest/gtest.h>

#include "support/metrics.h"
#include "support/trace.h"

namespace heron {
namespace {

TEST(TracingDisabled, ScopeMacroIsNoOp)
{
    auto &tracer = trace::Tracer::global();
    tracer.clear();
    tracer.set_enabled(true);
    {
        HERON_TRACE_SCOPE("disabled/scope");
        HERON_TRACE_SCOPE("disabled/scope");
    }
    EXPECT_EQ(tracer.event_count(), 0);
    EXPECT_TRUE(tracer.totals().empty());
    tracer.set_enabled(false);
}

TEST(TracingDisabled, MetricMacrosAreNoOps)
{
    auto &registry = metrics::Registry::global();
    registry.counter("disabled.counter").reset();
    registry.gauge("disabled.gauge").reset();
    registry.histogram("disabled.histo").reset();

    HERON_COUNTER_INC("disabled.counter");
    HERON_COUNTER_ADD("disabled.counter", 100);
    HERON_GAUGE_ADD("disabled.gauge", 2.5);
    HERON_HISTOGRAM_OBSERVE("disabled.histo", 42.0);

    EXPECT_EQ(registry.counter("disabled.counter").value(), 0);
    EXPECT_DOUBLE_EQ(registry.gauge("disabled.gauge").value(), 0.0);
    EXPECT_EQ(registry.histogram("disabled.histo").snapshot().count,
              0);
}

// The macros must also not evaluate their arguments (a disabled
// build must not pay for label construction or value computation).
TEST(TracingDisabled, MacroArgumentsNotEvaluated)
{
    int evaluations = 0;
    auto expensive = [&]() {
        ++evaluations;
        return 1.0;
    };
    HERON_COUNTER_ADD("disabled.arg", static_cast<int64_t>(
                                          expensive()));
    HERON_GAUGE_ADD("disabled.arg", expensive());
    HERON_HISTOGRAM_OBSERVE("disabled.arg", expensive());
    EXPECT_EQ(evaluations, 0);
}

} // namespace
} // namespace heron
