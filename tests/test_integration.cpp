/**
 * @file
 * Cross-module integration and property tests: the full
 * generate -> solve -> bind -> measure pipeline across every
 * operator suite and every DLA archetype, determinism guarantees,
 * and consistency between the CSP's symbolic footprints and the
 * binder's numeric ones.
 */
#include <gtest/gtest.h>

#include "autotune/tuner.h"
#include "csp/solver.h"
#include "hw/measurer.h"
#include "ops/op_library.h"
#include "rules/space_generator.h"
#include "search/cga.h"

namespace heron {
namespace {

struct PipelineCase {
    const char *dla;
    ops::Workload workload;
};

std::vector<PipelineCase>
pipeline_cases()
{
    std::vector<PipelineCase> cases;
    for (auto &w : ops::tensorcore_op_suite())
        cases.push_back({"v100", w});
    for (auto &w : ops::dlboost_op_suite())
        cases.push_back({"dlboost", w});
    for (auto &w : ops::vta_op_suite())
        cases.push_back({"vta", w});
    return cases;
}

hw::DlaSpec
spec_by_name(const std::string &name)
{
    if (name == "v100")
        return hw::DlaSpec::v100();
    if (name == "dlboost")
        return hw::DlaSpec::dlboost();
    return hw::DlaSpec::vta();
}

class PipelineSweep
    : public ::testing::TestWithParam<PipelineCase>
{
};

TEST_P(PipelineSweep, GenerateSolveBindMeasure)
{
    const auto &param = GetParam();
    auto spec = spec_by_name(param.dla);
    if (spec.kind == hw::DlaKind::kVta &&
        !rules::workload_tensorizable(spec, param.workload))
        GTEST_SKIP() << "not tensorizable on VTA";

    rules::SpaceGenerator gen(spec, rules::Options::heron());
    auto space = gen.generate(param.workload);
    EXPECT_GT(space.csp.num_constraints(), 10u);

    csp::RandSatSolver solver(space.csp);
    hw::Measurer measurer(spec);
    Rng rng(11);
    for (int i = 0; i < 3; ++i) {
        auto a = solver.solve_one(rng);
        ASSERT_TRUE(a.has_value()) << param.workload.name;
        EXPECT_TRUE(space.csp.valid(*a));
        auto program = space.bind(*a);
        auto r = measurer.measure(program);
        EXPECT_TRUE(r.valid)
            << param.workload.name << ": " << r.error;
        EXPECT_GT(r.gflops, 0.0);
        // Throughput can never exceed peak.
        EXPECT_LE(r.gflops, spec.peak_gmacs() * 2.0 * 1.01);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSuites, PipelineSweep, ::testing::ValuesIn(pipeline_cases()),
    [](const ::testing::TestParamInfo<PipelineCase> &info) {
        std::string name = std::string(info.param.dla) + "_" +
                           info.param.workload.name;
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(Determinism, SameSeedSameTuningResult)
{
    auto spec = hw::DlaSpec::v100();
    autotune::TuneConfig config;
    config.trials = 40;
    config.seed = 99;
    auto w = ops::gemm(256, 512, 512);

    auto t1 = autotune::make_heron_tuner(spec, config);
    auto t2 = autotune::make_heron_tuner(spec, config);
    auto o1 = t1->tune(w);
    auto o2 = t2->tune(w);
    EXPECT_DOUBLE_EQ(o1.result.best_gflops, o2.result.best_gflops);
    EXPECT_EQ(o1.result.best, o2.result.best);
}

TEST(Determinism, DifferentSeedsExploreDifferently)
{
    auto spec = hw::DlaSpec::v100();
    rules::SpaceGenerator gen(spec, rules::Options::heron());
    auto space = gen.generate(ops::gemm(512, 512, 512));
    search::SearchConfig sc;
    sc.trials = 30;
    sc.seed = 1;
    hw::Measurer m1(spec);
    auto r1 = search::cga_search(space, m1, sc);
    sc.seed = 2;
    hw::Measurer m2(spec);
    auto r2 = search::cga_search(space, m2, sc);
    EXPECT_NE(r1.history, r2.history);
}

TEST(FootprintConsistency, CspMemEqualsBoundTileBytes)
{
    // The symbolic memory variables (C5) must equal the binder's
    // numeric tile bytes for the same assignment.
    auto spec = hw::DlaSpec::v100();
    rules::SpaceGenerator gen(spec, rules::Options::heron());
    auto space =
        gen.generate(ops::c2d(16, 64, 28, 28, 64, 3, 3, 1, 1));
    csp::RandSatSolver solver(space.csp);
    Rng rng(13);
    for (int i = 0; i < 10; ++i) {
        auto a = solver.solve_one(rng);
        ASSERT_TRUE(a.has_value());
        auto program = space.bind(*a);
        for (const auto &stage : program.stages) {
            csp::VarId mem =
                space.csp.find_var("mem." + stage.name);
            if (mem < 0)
                continue;
            EXPECT_EQ((*a)[static_cast<size_t>(mem)],
                      stage.tile_bytes())
                << stage.name;
        }
    }
}

TEST(FootprintConsistency, SharedSumRespectsCapacity)
{
    auto spec = hw::DlaSpec::v100();
    rules::SpaceGenerator gen(spec, rules::Options::heron());
    auto space = gen.generate(ops::gemm(2048, 2048, 2048));
    csp::RandSatSolver solver(space.csp);
    Rng rng(17);
    for (int i = 0; i < 10; ++i) {
        auto a = solver.solve_one(rng);
        ASSERT_TRUE(a.has_value());
        auto program = space.bind(*a);
        EXPECT_LE(program.scope_bytes(schedule::MemScope::kShared),
                  spec.shared_capacity);
        EXPECT_LE(
            program.scope_bytes(schedule::MemScope::kFragment),
            spec.fragment_capacity);
    }
}

TEST(Generators, AllFlavorsProduceMeasurablePrograms)
{
    auto spec = hw::DlaSpec::v100();
    auto workload = ops::gemm(512, 512, 512);
    for (auto options :
         {rules::Options::heron(), rules::Options::autotvm(),
          rules::Options::amos(), rules::Options::ansor()}) {
        rules::SpaceGenerator gen(spec, options);
        auto space = gen.generate(workload);
        csp::RandSatSolver solver(space.csp);
        hw::Measurer measurer(spec);
        Rng rng(19);
        int valid = 0;
        for (int i = 0; i < 15; ++i) {
            auto a = solver.solve_one(rng);
            if (!a)
                continue;
            auto r = measurer.measure(space.bind(*a));
            valid += r.valid;
        }
        EXPECT_GT(valid, 0) << rules::template_flavor_name(
            options.flavor);
    }
}

} // namespace
} // namespace heron
