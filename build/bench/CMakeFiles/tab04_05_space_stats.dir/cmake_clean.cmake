file(REMOVE_RECURSE
  "CMakeFiles/tab04_05_space_stats.dir/tab04_05_space_stats.cpp.o"
  "CMakeFiles/tab04_05_space_stats.dir/tab04_05_space_stats.cpp.o.d"
  "tab04_05_space_stats"
  "tab04_05_space_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_05_space_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
