# Empty dependencies file for tab04_05_space_stats.
# This may be replaced when dependencies are built.
