file(REMOVE_RECURSE
  "CMakeFiles/fig08_dlboost_ops.dir/fig08_dlboost_ops.cpp.o"
  "CMakeFiles/fig08_dlboost_ops.dir/fig08_dlboost_ops.cpp.o.d"
  "fig08_dlboost_ops"
  "fig08_dlboost_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_dlboost_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
