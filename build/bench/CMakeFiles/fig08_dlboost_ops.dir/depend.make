# Empty dependencies file for fig08_dlboost_ops.
# This may be replaced when dependencies are built.
