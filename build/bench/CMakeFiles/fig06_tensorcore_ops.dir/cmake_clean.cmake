file(REMOVE_RECURSE
  "CMakeFiles/fig06_tensorcore_ops.dir/fig06_tensorcore_ops.cpp.o"
  "CMakeFiles/fig06_tensorcore_ops.dir/fig06_tensorcore_ops.cpp.o.d"
  "fig06_tensorcore_ops"
  "fig06_tensorcore_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_tensorcore_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
