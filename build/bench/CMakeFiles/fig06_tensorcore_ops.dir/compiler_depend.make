# Empty compiler generated dependencies file for fig06_tensorcore_ops.
# This may be replaced when dependencies are built.
