# Empty compiler generated dependencies file for fig09_vta_ops.
# This may be replaced when dependencies are built.
