file(REMOVE_RECURSE
  "CMakeFiles/fig09_vta_ops.dir/fig09_vta_ops.cpp.o"
  "CMakeFiles/fig09_vta_ops.dir/fig09_vta_ops.cpp.o.d"
  "fig09_vta_ops"
  "fig09_vta_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_vta_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
