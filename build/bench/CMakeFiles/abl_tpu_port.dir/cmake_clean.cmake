file(REMOVE_RECURSE
  "CMakeFiles/abl_tpu_port.dir/abl_tpu_port.cpp.o"
  "CMakeFiles/abl_tpu_port.dir/abl_tpu_port.cpp.o.d"
  "abl_tpu_port"
  "abl_tpu_port.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tpu_port.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
