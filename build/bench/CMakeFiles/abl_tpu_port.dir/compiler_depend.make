# Empty compiler generated dependencies file for abl_tpu_port.
# This may be replaced when dependencies are built.
