# Empty dependencies file for abl_model_guidance.
# This may be replaced when dependencies are built.
