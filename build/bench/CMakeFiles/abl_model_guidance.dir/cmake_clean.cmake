file(REMOVE_RECURSE
  "CMakeFiles/abl_model_guidance.dir/abl_model_guidance.cpp.o"
  "CMakeFiles/abl_model_guidance.dir/abl_model_guidance.cpp.o.d"
  "abl_model_guidance"
  "abl_model_guidance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_model_guidance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
