# Empty compiler generated dependencies file for abl_rule_ablation.
# This may be replaced when dependencies are built.
