file(REMOVE_RECURSE
  "CMakeFiles/abl_rule_ablation.dir/abl_rule_ablation.cpp.o"
  "CMakeFiles/abl_rule_ablation.dir/abl_rule_ablation.cpp.o.d"
  "abl_rule_ablation"
  "abl_rule_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rule_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
