file(REMOVE_RECURSE
  "CMakeFiles/fig02_search_scatter.dir/fig02_search_scatter.cpp.o"
  "CMakeFiles/fig02_search_scatter.dir/fig02_search_scatter.cpp.o.d"
  "fig02_search_scatter"
  "fig02_search_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_search_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
