# Empty compiler generated dependencies file for fig02_search_scatter.
# This may be replaced when dependencies are built.
