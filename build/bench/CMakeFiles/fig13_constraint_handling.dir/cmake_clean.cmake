file(REMOVE_RECURSE
  "CMakeFiles/fig13_constraint_handling.dir/fig13_constraint_handling.cpp.o"
  "CMakeFiles/fig13_constraint_handling.dir/fig13_constraint_handling.cpp.o.d"
  "fig13_constraint_handling"
  "fig13_constraint_handling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_constraint_handling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
