# Empty dependencies file for fig13_constraint_handling.
# This may be replaced when dependencies are built.
