file(REMOVE_RECURSE
  "CMakeFiles/tab10_fig14_compile_time.dir/tab10_fig14_compile_time.cpp.o"
  "CMakeFiles/tab10_fig14_compile_time.dir/tab10_fig14_compile_time.cpp.o.d"
  "tab10_fig14_compile_time"
  "tab10_fig14_compile_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab10_fig14_compile_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
