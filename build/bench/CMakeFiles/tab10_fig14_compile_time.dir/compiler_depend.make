# Empty compiler generated dependencies file for tab10_fig14_compile_time.
# This may be replaced when dependencies are built.
