file(REMOVE_RECURSE
  "CMakeFiles/fig11_space_quality.dir/fig11_space_quality.cpp.o"
  "CMakeFiles/fig11_space_quality.dir/fig11_space_quality.cpp.o.d"
  "fig11_space_quality"
  "fig11_space_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_space_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
