# Empty dependencies file for fig11_space_quality.
# This may be replaced when dependencies are built.
