file(REMOVE_RECURSE
  "CMakeFiles/fig07_gpu_generality.dir/fig07_gpu_generality.cpp.o"
  "CMakeFiles/fig07_gpu_generality.dir/fig07_gpu_generality.cpp.o.d"
  "fig07_gpu_generality"
  "fig07_gpu_generality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_gpu_generality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
