# Empty dependencies file for fig07_gpu_generality.
# This may be replaced when dependencies are built.
