# Empty compiler generated dependencies file for fig12_cga_curves.
# This may be replaced when dependencies are built.
