file(REMOVE_RECURSE
  "CMakeFiles/fig12_cga_curves.dir/fig12_cga_curves.cpp.o"
  "CMakeFiles/fig12_cga_curves.dir/fig12_cga_curves.cpp.o.d"
  "fig12_cga_curves"
  "fig12_cga_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cga_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
