file(REMOVE_RECURSE
  "CMakeFiles/fig10_networks.dir/fig10_networks.cpp.o"
  "CMakeFiles/fig10_networks.dir/fig10_networks.cpp.o.d"
  "fig10_networks"
  "fig10_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
