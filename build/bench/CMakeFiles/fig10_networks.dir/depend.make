# Empty dependencies file for fig10_networks.
# This may be replaced when dependencies are built.
