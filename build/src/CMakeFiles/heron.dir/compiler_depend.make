# Empty compiler generated dependencies file for heron.
# This may be replaced when dependencies are built.
