
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autotune/library.cpp" "src/CMakeFiles/heron.dir/autotune/library.cpp.o" "gcc" "src/CMakeFiles/heron.dir/autotune/library.cpp.o.d"
  "/root/repo/src/autotune/network.cpp" "src/CMakeFiles/heron.dir/autotune/network.cpp.o" "gcc" "src/CMakeFiles/heron.dir/autotune/network.cpp.o.d"
  "/root/repo/src/autotune/record.cpp" "src/CMakeFiles/heron.dir/autotune/record.cpp.o" "gcc" "src/CMakeFiles/heron.dir/autotune/record.cpp.o.d"
  "/root/repo/src/autotune/tuner.cpp" "src/CMakeFiles/heron.dir/autotune/tuner.cpp.o" "gcc" "src/CMakeFiles/heron.dir/autotune/tuner.cpp.o.d"
  "/root/repo/src/codegen/emitter.cpp" "src/CMakeFiles/heron.dir/codegen/emitter.cpp.o" "gcc" "src/CMakeFiles/heron.dir/codegen/emitter.cpp.o.d"
  "/root/repo/src/csp/csp.cpp" "src/CMakeFiles/heron.dir/csp/csp.cpp.o" "gcc" "src/CMakeFiles/heron.dir/csp/csp.cpp.o.d"
  "/root/repo/src/csp/domain.cpp" "src/CMakeFiles/heron.dir/csp/domain.cpp.o" "gcc" "src/CMakeFiles/heron.dir/csp/domain.cpp.o.d"
  "/root/repo/src/csp/propagate.cpp" "src/CMakeFiles/heron.dir/csp/propagate.cpp.o" "gcc" "src/CMakeFiles/heron.dir/csp/propagate.cpp.o.d"
  "/root/repo/src/csp/solver.cpp" "src/CMakeFiles/heron.dir/csp/solver.cpp.o" "gcc" "src/CMakeFiles/heron.dir/csp/solver.cpp.o.d"
  "/root/repo/src/hw/dla_spec.cpp" "src/CMakeFiles/heron.dir/hw/dla_spec.cpp.o" "gcc" "src/CMakeFiles/heron.dir/hw/dla_spec.cpp.o.d"
  "/root/repo/src/hw/dlboost_sim.cpp" "src/CMakeFiles/heron.dir/hw/dlboost_sim.cpp.o" "gcc" "src/CMakeFiles/heron.dir/hw/dlboost_sim.cpp.o.d"
  "/root/repo/src/hw/measurer.cpp" "src/CMakeFiles/heron.dir/hw/measurer.cpp.o" "gcc" "src/CMakeFiles/heron.dir/hw/measurer.cpp.o.d"
  "/root/repo/src/hw/simulator.cpp" "src/CMakeFiles/heron.dir/hw/simulator.cpp.o" "gcc" "src/CMakeFiles/heron.dir/hw/simulator.cpp.o.d"
  "/root/repo/src/hw/tensorcore_sim.cpp" "src/CMakeFiles/heron.dir/hw/tensorcore_sim.cpp.o" "gcc" "src/CMakeFiles/heron.dir/hw/tensorcore_sim.cpp.o.d"
  "/root/repo/src/hw/tpu_sim.cpp" "src/CMakeFiles/heron.dir/hw/tpu_sim.cpp.o" "gcc" "src/CMakeFiles/heron.dir/hw/tpu_sim.cpp.o.d"
  "/root/repo/src/hw/vta_sim.cpp" "src/CMakeFiles/heron.dir/hw/vta_sim.cpp.o" "gcc" "src/CMakeFiles/heron.dir/hw/vta_sim.cpp.o.d"
  "/root/repo/src/ir/dag.cpp" "src/CMakeFiles/heron.dir/ir/dag.cpp.o" "gcc" "src/CMakeFiles/heron.dir/ir/dag.cpp.o.d"
  "/root/repo/src/ir/expr.cpp" "src/CMakeFiles/heron.dir/ir/expr.cpp.o" "gcc" "src/CMakeFiles/heron.dir/ir/expr.cpp.o.d"
  "/root/repo/src/ir/stage.cpp" "src/CMakeFiles/heron.dir/ir/stage.cpp.o" "gcc" "src/CMakeFiles/heron.dir/ir/stage.cpp.o.d"
  "/root/repo/src/ir/tensor.cpp" "src/CMakeFiles/heron.dir/ir/tensor.cpp.o" "gcc" "src/CMakeFiles/heron.dir/ir/tensor.cpp.o.d"
  "/root/repo/src/model/cost_model.cpp" "src/CMakeFiles/heron.dir/model/cost_model.cpp.o" "gcc" "src/CMakeFiles/heron.dir/model/cost_model.cpp.o.d"
  "/root/repo/src/model/gbdt.cpp" "src/CMakeFiles/heron.dir/model/gbdt.cpp.o" "gcc" "src/CMakeFiles/heron.dir/model/gbdt.cpp.o.d"
  "/root/repo/src/ops/networks.cpp" "src/CMakeFiles/heron.dir/ops/networks.cpp.o" "gcc" "src/CMakeFiles/heron.dir/ops/networks.cpp.o.d"
  "/root/repo/src/ops/op_library.cpp" "src/CMakeFiles/heron.dir/ops/op_library.cpp.o" "gcc" "src/CMakeFiles/heron.dir/ops/op_library.cpp.o.d"
  "/root/repo/src/rules/attach.cpp" "src/CMakeFiles/heron.dir/rules/attach.cpp.o" "gcc" "src/CMakeFiles/heron.dir/rules/attach.cpp.o.d"
  "/root/repo/src/rules/binder.cpp" "src/CMakeFiles/heron.dir/rules/binder.cpp.o" "gcc" "src/CMakeFiles/heron.dir/rules/binder.cpp.o.d"
  "/root/repo/src/rules/space_generator.cpp" "src/CMakeFiles/heron.dir/rules/space_generator.cpp.o" "gcc" "src/CMakeFiles/heron.dir/rules/space_generator.cpp.o.d"
  "/root/repo/src/schedule/concrete.cpp" "src/CMakeFiles/heron.dir/schedule/concrete.cpp.o" "gcc" "src/CMakeFiles/heron.dir/schedule/concrete.cpp.o.d"
  "/root/repo/src/schedule/primitive.cpp" "src/CMakeFiles/heron.dir/schedule/primitive.cpp.o" "gcc" "src/CMakeFiles/heron.dir/schedule/primitive.cpp.o.d"
  "/root/repo/src/schedule/template.cpp" "src/CMakeFiles/heron.dir/schedule/template.cpp.o" "gcc" "src/CMakeFiles/heron.dir/schedule/template.cpp.o.d"
  "/root/repo/src/search/algorithms.cpp" "src/CMakeFiles/heron.dir/search/algorithms.cpp.o" "gcc" "src/CMakeFiles/heron.dir/search/algorithms.cpp.o.d"
  "/root/repo/src/search/cga.cpp" "src/CMakeFiles/heron.dir/search/cga.cpp.o" "gcc" "src/CMakeFiles/heron.dir/search/cga.cpp.o.d"
  "/root/repo/src/search/common.cpp" "src/CMakeFiles/heron.dir/search/common.cpp.o" "gcc" "src/CMakeFiles/heron.dir/search/common.cpp.o.d"
  "/root/repo/src/support/logging.cpp" "src/CMakeFiles/heron.dir/support/logging.cpp.o" "gcc" "src/CMakeFiles/heron.dir/support/logging.cpp.o.d"
  "/root/repo/src/support/math_util.cpp" "src/CMakeFiles/heron.dir/support/math_util.cpp.o" "gcc" "src/CMakeFiles/heron.dir/support/math_util.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/CMakeFiles/heron.dir/support/rng.cpp.o" "gcc" "src/CMakeFiles/heron.dir/support/rng.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/CMakeFiles/heron.dir/support/stats.cpp.o" "gcc" "src/CMakeFiles/heron.dir/support/stats.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/heron.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/heron.dir/support/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
