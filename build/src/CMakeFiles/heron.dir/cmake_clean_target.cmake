file(REMOVE_RECURSE
  "libheron.a"
)
