file(REMOVE_RECURSE
  "CMakeFiles/test_csp.dir/test_csp.cpp.o"
  "CMakeFiles/test_csp.dir/test_csp.cpp.o.d"
  "test_csp"
  "test_csp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
