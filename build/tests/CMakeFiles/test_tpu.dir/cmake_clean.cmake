file(REMOVE_RECURSE
  "CMakeFiles/test_tpu.dir/test_tpu.cpp.o"
  "CMakeFiles/test_tpu.dir/test_tpu.cpp.o.d"
  "test_tpu"
  "test_tpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
