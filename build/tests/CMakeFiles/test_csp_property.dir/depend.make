# Empty dependencies file for test_csp_property.
# This may be replaced when dependencies are built.
