file(REMOVE_RECURSE
  "CMakeFiles/test_csp_property.dir/test_csp_property.cpp.o"
  "CMakeFiles/test_csp_property.dir/test_csp_property.cpp.o.d"
  "test_csp_property"
  "test_csp_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csp_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
