# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_autotune "/root/repo/build/tests/test_autotune")
set_tests_properties(test_autotune PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_codegen "/root/repo/build/tests/test_codegen")
set_tests_properties(test_codegen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_csp "/root/repo/build/tests/test_csp")
set_tests_properties(test_csp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_csp_property "/root/repo/build/tests/test_csp_property")
set_tests_properties(test_csp_property PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_hw "/root/repo/build/tests/test_hw")
set_tests_properties(test_hw PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_ir "/root/repo/build/tests/test_ir")
set_tests_properties(test_ir PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_model "/root/repo/build/tests/test_model")
set_tests_properties(test_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_rules "/root/repo/build/tests/test_rules")
set_tests_properties(test_rules PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_schedule "/root/repo/build/tests/test_schedule")
set_tests_properties(test_schedule PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_search "/root/repo/build/tests/test_search")
set_tests_properties(test_search PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_support "/root/repo/build/tests/test_support")
set_tests_properties(test_support PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_tpu "/root/repo/build/tests/test_tpu")
set_tests_properties(test_tpu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;0;")
