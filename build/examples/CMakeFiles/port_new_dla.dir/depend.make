# Empty dependencies file for port_new_dla.
# This may be replaced when dependencies are built.
