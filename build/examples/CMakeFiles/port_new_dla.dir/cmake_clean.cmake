file(REMOVE_RECURSE
  "CMakeFiles/port_new_dla.dir/port_new_dla.cpp.o"
  "CMakeFiles/port_new_dla.dir/port_new_dla.cpp.o.d"
  "port_new_dla"
  "port_new_dla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/port_new_dla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
