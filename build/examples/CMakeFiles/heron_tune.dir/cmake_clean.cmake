file(REMOVE_RECURSE
  "CMakeFiles/heron_tune.dir/heron_tune.cpp.o"
  "CMakeFiles/heron_tune.dir/heron_tune.cpp.o.d"
  "heron_tune"
  "heron_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heron_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
