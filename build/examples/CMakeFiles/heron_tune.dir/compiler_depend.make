# Empty compiler generated dependencies file for heron_tune.
# This may be replaced when dependencies are built.
