file(REMOVE_RECURSE
  "CMakeFiles/compare_search.dir/compare_search.cpp.o"
  "CMakeFiles/compare_search.dir/compare_search.cpp.o.d"
  "compare_search"
  "compare_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
