# Empty compiler generated dependencies file for compare_search.
# This may be replaced when dependencies are built.
