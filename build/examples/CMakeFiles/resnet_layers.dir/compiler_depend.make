# Empty compiler generated dependencies file for resnet_layers.
# This may be replaced when dependencies are built.
