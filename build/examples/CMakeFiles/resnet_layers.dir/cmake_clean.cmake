file(REMOVE_RECURSE
  "CMakeFiles/resnet_layers.dir/resnet_layers.cpp.o"
  "CMakeFiles/resnet_layers.dir/resnet_layers.cpp.o.d"
  "resnet_layers"
  "resnet_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resnet_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
