# Empty compiler generated dependencies file for build_library.
# This may be replaced when dependencies are built.
