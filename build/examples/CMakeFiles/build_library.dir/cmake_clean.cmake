file(REMOVE_RECURSE
  "CMakeFiles/build_library.dir/build_library.cpp.o"
  "CMakeFiles/build_library.dir/build_library.cpp.o.d"
  "build_library"
  "build_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/build_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
