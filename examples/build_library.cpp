/**
 * @file
 * Library generation example — the paper's headline use case:
 * generate a tuned high-performance kernel library for one DLA,
 * emit the kernel sources and the dispatch header, and persist the
 * tuning records for later replays.
 *
 * Run: ./build/examples/build_library [out_dir] [trials]
 * (default out_dir: ./generated_lib)
 */
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "autotune/library.h"
#include "autotune/record.h"

using namespace heron;

int
main(int argc, char **argv)
{
    std::filesystem::path out_dir =
        argc > 1 ? argv[1] : "generated_lib";
    int trials = argc > 2 ? std::atoi(argv[2]) : 80;

    hw::DlaSpec spec = hw::DlaSpec::v100();
    autotune::TuneConfig config;
    config.trials = trials;

    autotune::LibraryBuilder builder(spec, config);
    builder.add(ops::gemm(512, 1024, 1024));
    builder.add(ops::c2d(16, 64, 56, 56, 64, 3, 3, 1, 1));
    builder.add(ops::bmm(192, 128, 128, 64));
    builder.add(ops::gemv(4096, 4096));

    std::printf("Building a %zu-kernel library for %s (%d trials "
                "per kernel)...\n\n",
                builder.size(), spec.name.c_str(), trials);
    autotune::Library library = builder.build();
    std::printf("%s\n", library.summary().c_str());

    std::filesystem::create_directories(out_dir);
    {
        std::ofstream header(out_dir / "heron_lib.h");
        header << library.emit_header("heron_lib");
    }
    std::vector<autotune::TuningRecord> records;
    for (const auto &entry : library.entries) {
        if (!entry.tuned)
            continue;
        std::ofstream kernel(out_dir /
                             (entry.kernel_name + ".cu"));
        kernel << entry.source;
        autotune::TuningRecord record;
        record.workload = entry.workload.name;
        record.dla = spec.name;
        record.tuner = "Heron";
        record.latency_ms = entry.latency_ms;
        record.gflops = entry.gflops;
        record.assignment = entry.best;
        records.push_back(std::move(record));
    }
    {
        std::ofstream log(out_dir / "tuning_records.jsonl");
        log << autotune::write_records(records);
    }

    std::printf("Wrote %s/heron_lib.h, %zu kernel sources, and "
                "tuning_records.jsonl\n",
                out_dir.string().c_str(), records.size());

    // Show a snippet of the first generated kernel.
    for (const auto &entry : library.entries) {
        if (!entry.tuned)
            continue;
        std::printf("\n--- %s.cu (first lines) ---\n",
                    entry.kernel_name.c_str());
        std::istringstream lines(entry.source);
        std::string line;
        for (int i = 0; i < 14 && std::getline(lines, line); ++i)
            std::printf("%s\n", line.c_str());
        break;
    }
    return 0;
}
