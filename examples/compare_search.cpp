/**
 * @file
 * Search-algorithm comparison example: run CGA against classic
 * constraint-handling techniques on one constrained space and print
 * the best-so-far trajectories side by side — a minimal version of
 * the paper's Fig. 12/13 experiments using the public search API.
 *
 * Run: ./build/examples/compare_search [trials]
 */
#include <cstdio>
#include <cstdlib>

#include "hw/measurer.h"
#include "search/algorithms.h"
#include "search/cga.h"

using namespace heron;

int
main(int argc, char **argv)
{
    int trials = argc > 1 ? std::atoi(argv[1]) : 200;

    rules::SpaceGenerator gen(hw::DlaSpec::v100(),
                              rules::Options::heron());
    auto space = gen.generate(ops::c2d(16, 128, 28, 28, 128, 3, 3,
                                       1, 1));
    std::printf("Space: %zu vars, %zu constraints, %zu tunables; "
                "%d trials per algorithm\n\n",
                space.csp.num_vars(), space.csp.num_constraints(),
                space.csp.tunable_vars().size(), trials);

    search::SearchConfig config;
    config.trials = trials;

    struct Entry {
        const char *name;
        search::SearchResult result;
    };
    std::vector<Entry> entries;
    {
        hw::Measurer m(space.spec);
        entries.push_back(
            {"CGA", search::cga_search(space, m, config)});
    }
    {
        hw::Measurer m(space.spec);
        entries.push_back(
            {"SAT-decoder GA",
             search::sat_decoder_ga(space, m, config)});
    }
    {
        hw::Measurer m(space.spec);
        entries.push_back(
            {"stochastic-ranking GA",
             search::stochastic_ranking_ga(space, m, config)});
    }
    {
        hw::Measurer m(space.spec);
        entries.push_back(
            {"random (RandSAT)",
             search::random_search(space, m, config)});
    }

    std::printf("%-22s %8s %12s  trajectory (best GFLOP/s at 20%% "
                "steps)\n",
                "algorithm", "valid%", "best");
    for (const auto &e : entries) {
        std::printf("%-22s %7.1f%% %12.0f  ", e.name,
                    100.0 * (double)e.result.valid_count /
                        (double)e.result.total_measured,
                    e.result.best_gflops);
        const auto &h = e.result.history;
        for (int pct = 20; pct <= 100; pct += 20) {
            size_t i = std::min(
                h.size() - 1,
                static_cast<size_t>(h.size() * pct / 100));
            std::printf("%8.0f", h[i]);
        }
        std::printf("\n");
    }
    return 0;
}
