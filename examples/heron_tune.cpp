/**
 * @file
 * heron_tune: command-line tuning driver.
 *
 * Tune one operator for one DLA from the shell, print the winning
 * schedule and generated kernel source, and optionally append the
 * result to a JSON-lines tuning log.
 *
 * Usage:
 *   heron_tune --dla v100|t4|a100|dlboost|vta
 *              --op gemm|gemv|bmm|c1d|c2d|c3d|t2d|dil|scan
 *              --shape M,N,K (operator-specific parameter list)
 *              [--trials N] [--seed S] [--tuner heron|autotvm|
 *               ansor|amos|akg|vendor] [--log FILE] [--emit]
 *              [--journal FILE] [--fault-transient RATE]
 *              [--fault-timeout RATE] [--trace FILE]
 *              [--metrics FILE] [--telemetry FILE]
 *
 * --journal keeps a flushed JSONL record of every measurement;
 * re-running the same command after a crash resumes from it
 * bit-identically. The --fault-* flags inject seeded measurement
 * faults to exercise the retry/timeout machinery.
 *
 * Observability: --trace writes a Chrome trace-event JSON (load in
 * chrome://tracing or Perfetto), --metrics writes the process
 * metrics snapshot as JSON, --telemetry streams one JSONL record
 * per measurement round. Any of the three also arms the profiler
 * and prints an end-of-run summary table.
 *
 * Examples:
 *   heron_tune --dla v100 --op gemm --shape 512,1024,1024
 *   heron_tune --dla dlboost --op c2d \
 *              --shape 16,64,56,56,64,3,3,1,1,1 --trials 400
 *   heron_tune --dla vta --op gemm --shape 256,256,256 --emit
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "autotune/checkpoint.h"
#include "autotune/record.h"
#include "autotune/tuner.h"
#include "codegen/emitter.h"
#include "schedule/concrete.h"
#include "support/profiler.h"

using namespace heron;

namespace {

struct CliArgs {
    std::string dla = "v100";
    std::string op = "gemm";
    std::string tuner = "heron";
    std::vector<int64_t> shape;
    int trials = 200;
    uint64_t seed = 1;
    std::string log_path;
    std::string journal_path;
    std::string trace_path;
    std::string metrics_path;
    std::string telemetry_path;
    double fault_transient = 0.0;
    double fault_timeout = 0.0;
    double fault_hung = 0.0;
    int measure_workers = 1;
    int sample_workers = 1;
    int quarantine_threshold = 3;
    double watchdog_ms = 2000.0;
    bool emit = false;

    bool
    profiled() const
    {
        return !trace_path.empty() || !metrics_path.empty() ||
               !telemetry_path.empty();
    }
};

/** Exit codes (also printed by --help). */
enum ExitCode {
    kExitSuccess = 0,
    /** No valid program found / workload unsupported. */
    kExitNoProgram = 1,
    /** Bad command line. */
    kExitUsage = 2,
    /** Tuning stopped with every candidate quarantined. */
    kExitAllQuarantined = 3,
    /** Journal corrupt beyond the recoverable torn tail. */
    kExitJournalCorrupt = 4,
    /** Search deadline exhausted before a program was found. */
    kExitDeadlineExhausted = 5,
};

void
print_usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: heron_tune --dla <v100|t4|a100|dlboost|vta>"
        " --op <gemm|gemv|bmm|c1d|c2d|c3d|t2d|dil|scan>"
        " --shape <comma-separated>"
        " [--trials N] [--seed S]"
        " [--tuner heron|autotvm|ansor|amos|akg|vendor]"
        " [--log FILE] [--journal FILE]"
        " [--measure-workers N] [--sample-workers N]"
        " [--watchdog-ms MS]"
        " [--quarantine-threshold N]"
        " [--fault-transient RATE] [--fault-timeout RATE]"
        " [--fault-hung RATE]"
        " [--trace FILE] [--metrics FILE]"
        " [--telemetry FILE] [--emit] [--help]\n"
        "\n"
        "robustness:\n"
        "  --measure-workers N       parallel measurement workers "
        "(default 1;\n"
        "                            results are bit-identical for "
        "any N)\n"
        "  --sample-workers N        parallel CSP sampling workers "
        "(default 1;\n"
        "                            populations are bit-identical "
        "for any N)\n"
        "  --watchdog-ms MS          per-candidate measurement "
        "deadline (2000)\n"
        "  --quarantine-threshold N  invalid/hung strikes before a "
        "schedule\n"
        "                            signature is quarantined (3; 0 "
        "disables)\n"
        "  --fault-hung RATE         inject wedged-kernel faults at "
        "RATE\n"
        "\n"
        "exit codes:\n"
        "  0  success\n"
        "  1  no valid program found / workload unsupported\n"
        "  2  bad command line\n"
        "  3  tuning stopped with every candidate quarantined\n"
        "  4  journal corrupt beyond recovery (a torn tail is\n"
        "     recoverable; CRC mismatches, malformed lines, or\n"
        "     sequence regressions are not)\n"
        "  5  search deadline exhausted before a valid program\n");
}

[[noreturn]] void
usage(const char *msg)
{
    std::fprintf(stderr, "heron_tune: %s\n", msg);
    print_usage(stderr);
    std::exit(kExitUsage);
}

CliArgs
parse(int argc, char **argv)
{
    CliArgs args;
    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char *flag) {
            if (i + 1 >= argc)
                usage((std::string(flag) + " needs a value").c_str());
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--dla")) {
            args.dla = need("--dla");
        } else if (!std::strcmp(argv[i], "--op")) {
            args.op = need("--op");
        } else if (!std::strcmp(argv[i], "--tuner")) {
            args.tuner = need("--tuner");
        } else if (!std::strcmp(argv[i], "--shape")) {
            std::istringstream in(need("--shape"));
            std::string token;
            while (std::getline(in, token, ','))
                args.shape.push_back(std::atoll(token.c_str()));
        } else if (!std::strcmp(argv[i], "--trials")) {
            args.trials = std::atoi(need("--trials"));
        } else if (!std::strcmp(argv[i], "--seed")) {
            args.seed = static_cast<uint64_t>(
                std::atoll(need("--seed")));
        } else if (!std::strcmp(argv[i], "--log")) {
            args.log_path = need("--log");
        } else if (!std::strcmp(argv[i], "--journal")) {
            args.journal_path = need("--journal");
        } else if (!std::strcmp(argv[i], "--trace")) {
            args.trace_path = need("--trace");
        } else if (!std::strcmp(argv[i], "--metrics")) {
            args.metrics_path = need("--metrics");
        } else if (!std::strcmp(argv[i], "--telemetry")) {
            args.telemetry_path = need("--telemetry");
        } else if (!std::strcmp(argv[i], "--fault-transient")) {
            args.fault_transient =
                std::atof(need("--fault-transient"));
        } else if (!std::strcmp(argv[i], "--fault-timeout")) {
            args.fault_timeout = std::atof(need("--fault-timeout"));
        } else if (!std::strcmp(argv[i], "--fault-hung")) {
            args.fault_hung = std::atof(need("--fault-hung"));
        } else if (!std::strcmp(argv[i], "--measure-workers")) {
            args.measure_workers =
                std::atoi(need("--measure-workers"));
        } else if (!std::strcmp(argv[i], "--sample-workers")) {
            args.sample_workers =
                std::atoi(need("--sample-workers"));
        } else if (!std::strcmp(argv[i],
                                "--quarantine-threshold")) {
            args.quarantine_threshold =
                std::atoi(need("--quarantine-threshold"));
        } else if (!std::strcmp(argv[i], "--watchdog-ms")) {
            args.watchdog_ms = std::atof(need("--watchdog-ms"));
        } else if (!std::strcmp(argv[i], "--help") ||
                   !std::strcmp(argv[i], "-h")) {
            print_usage(stdout);
            std::exit(kExitSuccess);
        } else if (!std::strcmp(argv[i], "--emit")) {
            args.emit = true;
        } else {
            usage((std::string("unknown flag ") + argv[i]).c_str());
        }
    }
    return args;
}

hw::DlaSpec
spec_for(const std::string &name)
{
    if (name == "v100")
        return hw::DlaSpec::v100();
    if (name == "t4")
        return hw::DlaSpec::t4();
    if (name == "a100")
        return hw::DlaSpec::a100();
    if (name == "dlboost")
        return hw::DlaSpec::dlboost();
    if (name == "vta")
        return hw::DlaSpec::vta();
    usage("unknown --dla");
}

ops::Workload
workload_for(const CliArgs &args, const hw::DlaSpec &spec)
{
    ir::DataType dt = spec.kind == hw::DlaKind::kTensorCore
                          ? ir::DataType::kFloat16
                          : ir::DataType::kInt8;
    const auto &s = args.shape;
    auto want = [&](size_t n, const char *fmt) {
        if (s.size() != n)
            usage((std::string("--shape for this op must be ") +
                   fmt)
                      .c_str());
    };
    if (args.op == "gemm") {
        want(3, "M,N,K");
        return ops::gemm(s[0], s[1], s[2], dt);
    }
    if (args.op == "gemv") {
        want(2, "M,K");
        return ops::gemv(s[0], s[1], dt);
    }
    if (args.op == "bmm") {
        want(4, "B,M,N,K");
        return ops::bmm(s[0], s[1], s[2], s[3], dt);
    }
    if (args.op == "c1d") {
        want(7, "N,CI,L,CO,KW,stride,pad");
        return ops::c1d(s[0], s[1], s[2], s[3], s[4], s[5], s[6],
                        dt);
    }
    if (args.op == "c2d") {
        want(9, "N,CI,H,W,CO,R,S,stride,pad");
        return ops::c2d(s[0], s[1], s[2], s[3], s[4], s[5], s[6],
                        s[7], s[8], dt);
    }
    if (args.op == "c3d") {
        want(11, "N,CI,D,H,W,CO,KD,R,S,stride,pad");
        return ops::c3d(s[0], s[1], s[2], s[3], s[4], s[5], s[6],
                        s[7], s[8], s[9], s[10], dt);
    }
    if (args.op == "t2d") {
        want(9, "N,CI,H,W,CO,R,S,stride,pad");
        return ops::t2d(s[0], s[1], s[2], s[3], s[4], s[5], s[6],
                        s[7], s[8], dt);
    }
    if (args.op == "dil") {
        want(10, "N,CI,H,W,CO,R,S,stride,pad,dilation");
        return ops::dil(s[0], s[1], s[2], s[3], s[4], s[5], s[6],
                        s[7], s[8], s[9], dt);
    }
    if (args.op == "scan") {
        want(2, "N,L");
        return ops::scan(s[0], s[1]);
    }
    usage("unknown --op");
}

std::unique_ptr<autotune::Tuner>
tuner_for(const CliArgs &args, const hw::DlaSpec &spec)
{
    autotune::TuneConfig config;
    config.trials = args.trials;
    config.seed = args.seed;
    config.journal_path = args.journal_path;
    config.telemetry_path = args.telemetry_path;
    config.faults.transient_rate = args.fault_transient;
    config.faults.timeout_rate = args.fault_timeout;
    config.faults.hung_rate = args.fault_hung;
    config.measure_workers = args.measure_workers;
    config.sample_workers = args.sample_workers;
    config.quarantine_threshold = args.quarantine_threshold;
    config.watchdog_deadline_ms = args.watchdog_ms;
    if (args.tuner == "heron")
        return autotune::make_heron_tuner(spec, config);
    if (args.tuner == "autotvm")
        return autotune::make_autotvm_tuner(spec, config);
    if (args.tuner == "ansor")
        return autotune::make_ansor_tuner(spec, config);
    if (args.tuner == "amos")
        return autotune::make_amos_tuner(spec, config);
    if (args.tuner == "akg")
        return autotune::make_akg_tuner(spec, config);
    if (args.tuner == "vendor")
        return autotune::make_vendor_library(spec, config);
    usage("unknown --tuner");
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args = parse(argc, argv);
    if (args.shape.empty())
        usage("--shape is required");

    hw::DlaSpec spec = spec_for(args.dla);
    ops::Workload workload = workload_for(args, spec);
    auto tuner = tuner_for(args, spec);
    if (!tuner->supports(workload)) {
        std::fprintf(stderr, "%s does not support %s on %s\n",
                     tuner->name().c_str(), workload.name.c_str(),
                     spec.name.c_str());
        return kExitNoProgram;
    }

    // Refuse to resume from a journal showing real corruption. A
    // torn tail (crash mid-append) is recoverable and fine; CRC
    // mismatches, malformed lines, or sequence regressions mean the
    // journal was damaged or spliced and silently resuming from it
    // could replay wrong measurements.
    if (!args.journal_path.empty()) {
        autotune::RecordReadStats jstats;
        autotune::TuningJournal::load(args.journal_path, &jstats);
        if (jstats.corrupt()) {
            std::fprintf(
                stderr,
                "heron_tune: journal %s is corrupt beyond recovery "
                "(%lld malformed, %lld CRC mismatch(es), %lld "
                "sequence regression(s)); move it aside to start "
                "fresh\n",
                args.journal_path.c_str(),
                static_cast<long long>(jstats.malformed),
                static_cast<long long>(jstats.crc_mismatches),
                static_cast<long long>(jstats.seq_regressions));
            return kExitJournalCorrupt;
        }
        if (jstats.recovered_truncations > 0)
            std::printf("Recovered a torn journal tail in %s "
                        "(crash mid-append); resuming.\n",
                        args.journal_path.c_str());
    }

    prof::Profiler &profiler = prof::Profiler::global();
    if (args.profiled())
        profiler.enable();

    std::printf("Tuning %s on %s with %s (%d trials)...\n",
                workload.label().c_str(), spec.name.c_str(),
                tuner->name().c_str(), args.trials);
    auto outcome = tuner->tune(workload);

    if (args.profiled()) {
        if (!args.trace_path.empty()) {
            if (profiler.write_chrome_trace(args.trace_path))
                std::printf("Wrote Chrome trace to %s\n",
                            args.trace_path.c_str());
            else
                std::fprintf(stderr,
                             "heron_tune: cannot write trace %s\n",
                             args.trace_path.c_str());
        }
        if (!args.metrics_path.empty()) {
            if (profiler.write_metrics(args.metrics_path))
                std::printf("Wrote metrics snapshot to %s\n",
                            args.metrics_path.c_str());
            else
                std::fprintf(stderr,
                             "heron_tune: cannot write metrics %s\n",
                             args.metrics_path.c_str());
        }
        std::printf("%s",
                    profiler.summary_table().to_string().c_str());
        if (outcome.profiled)
            std::printf("Phase decomposition drift: %.4f s "
                        "(search+model wall minus profiler spans)\n",
                        outcome.profile_delta_seconds);
    }

    if (!outcome.result.found()) {
        std::printf("No valid program found (%s).\n",
                    autotune::stop_reason_name(
                        outcome.stop_reason));
        switch (outcome.stop_reason) {
          case autotune::StopReason::kAllQuarantined:
            return kExitAllQuarantined;
          case autotune::StopReason::kDeadline:
            return kExitDeadlineExhausted;
          default:
            return kExitNoProgram;
        }
    }
    std::printf("Best: %.4f ms, %.0f GFLOP/s (peak %.0f); %lld/%lld "
                "measurements valid; compile %.1f s (%.1f s "
                "measuring)\n",
                outcome.result.best_latency_ms,
                outcome.result.best_gflops, spec.peak_gmacs() * 2.0,
                static_cast<long long>(outcome.result.valid_count),
                static_cast<long long>(
                    outcome.result.total_measured),
                outcome.compile_seconds(), outcome.measure_seconds);
    const hw::MeasureStats &ms = outcome.measure_stats;
    if (ms.transient_faults || ms.timeouts || ms.invalid ||
        ms.retries || outcome.replayed)
        std::printf("Failures: %lld transient, %lld timeout, %lld "
                    "invalid; %lld retries (%lld exhausted), %lld "
                    "outliers rejected; %lld replayed from "
                    "journal\n",
                    static_cast<long long>(ms.transient_faults),
                    static_cast<long long>(ms.timeouts),
                    static_cast<long long>(ms.invalid),
                    static_cast<long long>(ms.retries),
                    static_cast<long long>(ms.exhausted_retries),
                    static_cast<long long>(ms.outliers_rejected),
                    static_cast<long long>(outcome.replayed));
    if (ms.hung || outcome.watchdog_fires ||
        outcome.abandoned_workers || outcome.pool_degraded ||
        outcome.quarantined_signatures || outcome.quarantine_skips)
        std::printf("Pool: %lld hung, %lld watchdog fire(s), %lld "
                    "worker(s) abandoned%s; %lld signature(s) "
                    "quarantined, %lld candidate(s) skipped\n",
                    static_cast<long long>(ms.hung),
                    static_cast<long long>(outcome.watchdog_fires),
                    static_cast<long long>(
                        outcome.abandoned_workers),
                    outcome.pool_degraded
                        ? " (degraded to serial)"
                        : "",
                    static_cast<long long>(
                        outcome.quarantined_signatures),
                    static_cast<long long>(
                        outcome.quarantine_skips));
    const csp::SolverStats &ss = outcome.solver_stats;
    if (ss.solve_calls > 0)
        std::printf("Solver: %lld solve(s), %lld solution(s), %lld "
                    "propagation(s) (%.1f/solve), %lld backtrack(s), "
                    "%lld unsat (%lld from memo), %lld budget, %lld "
                    "deadline\n",
                    static_cast<long long>(ss.solve_calls),
                    static_cast<long long>(ss.solutions),
                    static_cast<long long>(ss.propagations),
                    static_cast<double>(ss.propagations) /
                        static_cast<double>(ss.solve_calls),
                    static_cast<long long>(ss.backtracks),
                    static_cast<long long>(ss.unsat),
                    static_cast<long long>(ss.unsat_memo_hits),
                    static_cast<long long>(ss.budget_exhausted),
                    static_cast<long long>(ss.deadline_aborts));

    rules::SpaceGenerator generator(spec, rules::Options::heron());
    auto space = generator.generate(workload);
    if (space.csp.num_vars() == outcome.result.best.size()) {
        auto program = space.bind(outcome.result.best);
        std::printf("\n%s", program.to_string().c_str());
        if (args.emit)
            std::printf("\n%s",
                        codegen::emit_source(space, program).c_str());
    }

    if (!args.log_path.empty() &&
        space.csp.num_vars() == outcome.result.best.size()) {
        autotune::TuningRecord record;
        record.workload = workload.name;
        record.dla = spec.name;
        record.tuner = tuner->name();
        record.latency_ms = outcome.result.best_latency_ms;
        record.gflops = outcome.result.best_gflops;
        record.assignment = outcome.result.best;
        std::ofstream log(args.log_path, std::ios::app);
        log << record.to_json() << "\n";
        std::printf("\nAppended record to %s\n",
                    args.log_path.c_str());
    }
    return 0;
}
