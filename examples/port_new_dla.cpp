/**
 * @file
 * Customization example (paper §4, "Customization"): porting Heron
 * to a new DLA by describing its architectural constraints in a
 * DlaSpec — intrinsic shapes, SPM capacities, vector widths — and
 * letting the generation rules do the rest.
 *
 * We define a fictional "MiniTensor" accelerator (a small
 * TensorCore-like device with one fixed 8x8x8 intrinsic and a 16KB
 * scratchpad), generate its constrained space for a GEMM, and show
 * the constraints Heron derived plus a tuned result.
 *
 * Run: ./build/examples/port_new_dla
 */
#include <cstdio>

#include "autotune/tuner.h"
#include "csp/solver.h"

using namespace heron;

namespace {

hw::DlaSpec
mini_tensor_spec()
{
    hw::DlaSpec spec;
    spec.kind = hw::DlaKind::kTensorCore; // same archetype family
    spec.name = "MiniTensor";
    spec.clock_ghz = 0.8;
    spec.num_units = 8;
    // One fixed 8x8x8 matrix intrinsic.
    spec.intrinsic_mnk_candidates = {8};
    spec.intrinsic_volume = 512;
    spec.tensor_macs_per_cycle = 64;
    spec.scalar_macs_per_cycle = 8;
    spec.dram_bytes_per_cycle = 32;
    spec.staging_bytes_per_cycle = 32;
    spec.shared_capacity = 16 * 1024; // 16KB scratchpad
    spec.shared_per_unit = 32 * 1024;
    spec.fragment_capacity = 8 * 1024;
    spec.vector_lengths = {1, 2, 4};
    spec.max_vector_bytes = 8;
    spec.max_threads_per_block = 256;
    spec.max_warps_per_unit = 16;
    return spec;
}

} // namespace

int
main()
{
    hw::DlaSpec spec = mini_tensor_spec();
    ops::Workload workload = ops::gemm(256, 256, 256);

    // Generate the constrained space for the new DLA.
    rules::SpaceGenerator generator(spec, rules::Options::heron());
    auto space = generator.generate(workload);
    std::printf("MiniTensor space for %s:\n", workload.name.c_str());
    std::printf("  %zu variables, %zu constraints, %zu tunables\n",
                space.csp.num_vars(), space.csp.num_constraints(),
                space.csp.tunable_vars().size());

    // Show the DLA-specific constraints the rules derived.
    std::printf("\nDLA-specific constraints (C5/C6):\n");
    int shown = 0;
    for (const auto &c : space.csp.constraints()) {
        if (c.note.rfind("C5", 0) == 0 || c.note.rfind("C6", 0) == 0) {
            std::printf("  %s\n", c.to_string(space.csp).c_str());
            if (++shown >= 12) {
                std::printf("  ... (%zu more)\n",
                            space.csp.num_constraints());
                break;
            }
        }
    }

    // Sample a couple of valid programs directly from the space.
    csp::RandSatSolver solver(space.csp);
    Rng rng(7);
    auto sample = solver.solve_one(rng);
    if (sample) {
        auto program = space.bind(*sample);
        std::printf("\nA random valid program uses %lld B of "
                    "scratchpad (cap %lld B)\n",
                    static_cast<long long>(program.scope_bytes(
                        schedule::MemScope::kShared)),
                    static_cast<long long>(spec.shared_capacity));
    }

    // And tune end to end.
    autotune::TuneConfig config;
    config.trials = 120;
    auto tuner = autotune::make_heron_tuner(spec, config);
    auto outcome = tuner->tune(workload);
    std::printf("\nTuned %s on MiniTensor: %.0f GFLOP/s (peak "
                "%.0f), %lld/%lld valid measurements\n",
                workload.name.c_str(), outcome.result.best_gflops,
                spec.peak_gmacs() * 2.0,
                static_cast<long long>(outcome.result.valid_count),
                static_cast<long long>(
                    outcome.result.total_measured));
    return 0;
}
