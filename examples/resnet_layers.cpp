/**
 * @file
 * Network tuning example: tune the distinct convolution layers of
 * ResNet-50 (batch 16) for a TensorCore GPU and compare the
 * end-to-end latency against the vendor library stand-in — the
 * scenario the paper's introduction motivates (generating a
 * high-performance library for a whole model).
 *
 * Run: ./build/examples/resnet_layers [per-layer-trials]
 */
#include <cstdio>
#include <cstdlib>

#include "autotune/network.h"

using namespace heron;

int
main(int argc, char **argv)
{
    int trials = argc > 1 ? std::atoi(argv[1]) : 40;

    hw::DlaSpec spec = hw::DlaSpec::v100();
    autotune::TuneConfig config;
    config.trials = trials;

    ops::Network net = ops::resnet50(16);
    std::printf("ResNet-50 (batch 16): %zu distinct layers, %.1f "
                "GFLOPs total\n\n",
                net.layers.size(),
                static_cast<double>(net.total_flops()) / 1e9);

    auto heron_tuner = autotune::make_heron_tuner(spec, config);
    auto vendor = autotune::make_vendor_library(spec, config);

    auto heron_result = autotune::tune_network(*heron_tuner, net);
    auto vendor_result = autotune::tune_network(*vendor, net);

    std::printf("%-44s %10s %10s\n", "layer (xcount)", "Heron ms",
                "vendor ms");
    for (size_t i = 0; i < net.layers.size(); ++i) {
        std::printf("%-38s x%-4d %10.4f %10.4f\n",
                    net.layers[i].workload.name.c_str(),
                    net.layers[i].count,
                    heron_result.layers[i].latency_ms,
                    vendor_result.layers[i].latency_ms);
    }
    std::printf("\nEnd-to-end: Heron %.3f ms vs vendor %.3f ms "
                "(%.2fx)\n",
                heron_result.total_latency_ms,
                vendor_result.total_latency_ms,
                vendor_result.total_latency_ms /
                    heron_result.total_latency_ms);
    std::printf("Tuning cost (simulated measure + search): %.1f s\n",
                heron_result.compile_seconds);
    return 0;
}
