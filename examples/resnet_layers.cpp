/**
 * @file
 * Whole-network serving example: submit ResNet-50 (batch 16) as ONE
 * graph request against a cold kernel registry and watch it
 * converge — the scenario the paper's introduction motivates
 * (generating a high-performance library for a whole model), run
 * through the serving path instead of an offline tuning sweep.
 *
 * The round-trip exercised here is exactly what heron_serve --graph
 * does over TCP:
 *
 *   1. the graph's layers are deduped by canonical workload key,
 *   2. every distinct key resolves in one batched registry pass,
 *   3. misses enter the tune queue in payoff order
 *      (count x FLOPs x tier gap — hottest layers tune first),
 *   4. after the background tuner drains, a status poll reports
 *      convergence and the model compiles into a single dispatch
 *      library (shared kernels emitted once).
 *
 * Run: ./build/examples/resnet_layers [per-layer-trials] [batch]
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "autotune/library.h"
#include "ops/networks.h"
#include "serve/graph.h"
#include "serve/graph_schedule.h"
#include "serve/registry.h"
#include "serve/tune_queue.h"

using namespace heron;

namespace {

const char *
tier_label(serve::LookupTier tier)
{
    switch (tier) {
      case serve::LookupTier::kExact:
        return "exact";
      case serve::LookupTier::kNearest:
        return "nearest";
      default:
        return "miss";
    }
}

void
print_result(const char *title, const serve::GraphResult &result)
{
    std::printf("%s: %lld distinct layer(s), %lld instance(s), "
                "%lld deduped; tiers exact=%lld nearest=%lld "
                "miss=%lld; scheduled=%lld coverage=%.0f%%%s\n",
                title, static_cast<long long>(result.layers),
                static_cast<long long>(result.instances),
                static_cast<long long>(result.deduped),
                static_cast<long long>(result.exact),
                static_cast<long long>(result.nearest),
                static_cast<long long>(result.miss),
                static_cast<long long>(result.scheduled),
                100.0 * result.coverage,
                result.converged ? " (converged)" : "");
}

} // namespace

int
main(int argc, char **argv)
{
    int trials = argc > 1 ? std::atoi(argv[1]) : 20;
    int batch = argc > 2 ? std::atoi(argv[2]) : 16;

    hw::DlaSpec spec = hw::DlaSpec::v100();
    ops::Network net = ops::resnet50(batch);
    std::printf("ResNet-50 (batch %d): %zu distinct layers, %.1f "
                "GFLOPs total\n\n",
                batch, net.layers.size(),
                static_cast<double>(net.total_flops()) / 1e9);

    // A cold registry with the on-miss tuner behind it: the same
    // wiring heron_serve --graph --tune-on-miss uses.
    serve::KernelRegistry registry(spec, {});
    serve::TuneQueueConfig queue_config;
    queue_config.capacity = net.layers.size() + 8;
    queue_config.tune.trials = trials;
    serve::TuneQueue queue(registry, queue_config);
    queue.start();

    serve::GraphTuneScheduler scheduler(&queue);
    serve::GraphService graphs(registry, scheduler);

    // First pass: everything misses, and the tune schedule comes
    // back ordered by payoff, not by network layer order.
    serve::GraphResult first = graphs.handle_graph(net);
    print_result("cold graph", first);
    std::printf("\npayoff-ordered tune schedule (hottest first):\n");
    std::vector<const serve::GraphLayerStatus *> scheduled;
    for (const auto &layer : first.layer_status)
        if (layer.scheduled)
            scheduled.push_back(&layer);
    std::sort(scheduled.begin(), scheduled.end(),
              [](const serve::GraphLayerStatus *a,
                 const serve::GraphLayerStatus *b) {
                  return a->payoff > b->payoff;
              });
    for (size_t i = 0; i < scheduled.size() && i < 5; ++i)
        std::printf("  %-40s x%-4lld payoff %.3g\n",
                    scheduled[i]->workload.name.c_str(),
                    static_cast<long long>(scheduled[i]->count),
                    scheduled[i]->payoff);

    // Let the background tuner drain, then poll — the same
    // graph_status loop a client runs over TCP.
    queue.drain();
    auto status = graphs.handle_status(first.id);
    if (!status) {
        std::fprintf(stderr, "graph %lld evicted?\n",
                     static_cast<long long>(first.id));
        return 1;
    }
    if (!status->converged) {
        // Budget splitting can leave layers for a later poll; one
        // more dispatch + drain finishes a single-graph run.
        queue.drain();
        status = graphs.handle_status(first.id);
    }
    std::printf("\n");
    print_result("after tuning", *status);

    // Converged: compile the whole model into one library. Every
    // record now answers exact, so the emitted header dispatches
    // all layers and shared kernels appear once.
    std::vector<autotune::NetworkLayerSpec> specs;
    double total_ms = 0.0;
    std::printf("\n%-40s %6s %8s %10s\n", "layer", "count", "tier",
                "ms/call");
    for (const auto &layer : status->layer_status) {
        autotune::NetworkLayerSpec layer_spec;
        layer_spec.workload = layer.workload;
        layer_spec.count = layer.count;
        auto record =
            registry.lookup(layer.workload).record;
        double ms = 0.0;
        if (record.has_value()) {
            layer_spec.record = record;
            ms = record->latency_ms;
        }
        total_ms += ms * static_cast<double>(layer.count);
        std::printf("%-40s %6lld %8s %10.4f\n",
                    layer.workload.name.c_str(),
                    static_cast<long long>(layer.count),
                    tier_label(layer.tier), ms);
        specs.push_back(std::move(layer_spec));
    }

    autotune::LibraryBuilder builder(spec, {});
    autotune::NetworkLibrary library =
        builder.emit_network(net.name, specs);
    std::string header = library.emit_header("heron_resnet50");
    std::printf("\nEnd-to-end (sum of count x latency): %.3f ms\n",
                total_ms);
    std::printf("Library: %lld kernel(s) emitted for %lld "
                "instance(s) (%lld deduped), dispatch header %zu "
                "bytes\n",
                static_cast<long long>(library.emitted),
                static_cast<long long>(library.instances),
                static_cast<long long>(library.deduped),
                header.size());

    queue.stop();
    return status->converged ? 0 : 1;
}
