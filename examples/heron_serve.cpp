/**
 * @file
 * heron_serve: the kernel-library server.
 *
 * Loads a tuned-schedule store for one DLA and answers workload
 * lookups over a newline-delimited JSON protocol on stdin/stdout
 * (see serve/protocol.h), so it can be scripted from a shell
 * pipeline or driven by a test harness:
 *
 *   printf '%s\n' \
 *     '{"id":1,"op":"gemm","shape":[512,512,512]}' \
 *     '{"id":2,"cmd":"stats"}' \
 *   | heron_serve --dla v100 --store tuned.jsonl
 *
 * Lookups answer in three tiers: exact (the shape is in the store),
 * nearest (a close shape whose schedule still binds against the
 * query's constraint space), and miss. With --tune-on-miss, missed
 * workloads are tuned by a background worker and hot-swapped into
 * the registry, so repeated traffic converges to exact hits; the
 * store is re-persisted (atomically) after every completed tune.
 *
 * Usage:
 *   heron_serve --dla <v100|t4|a100|dlboost|vta>
 *               [--store FILE] [--tune-on-miss] [--trials N]
 *               [--seed S] [--queue-capacity N] [--shards N]
 *               [--no-fallback] [--max-distance D]
 *               [--negative-threshold N] [--measure-workers N]
 *               [--metrics FILE] [--trace FILE]
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "serve/protocol.h"
#include "support/json_util.h"
#include "support/metrics.h"
#include "support/trace.h"

using namespace heron;

namespace {

struct CliArgs {
    std::string dla = "v100";
    std::string store_path;
    std::string metrics_path;
    std::string trace_path;
    bool tune_on_miss = false;
    bool fallback = true;
    int trials = 60;
    uint64_t seed = 1;
    int queue_capacity = 64;
    int shards = 8;
    int measure_workers = 1;
    int negative_threshold = 3;
    double max_distance = 6.0;
};

enum ExitCode {
    kExitSuccess = 0,
    /** Bad command line. */
    kExitUsage = 2,
};

void
print_usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: heron_serve --dla <v100|t4|a100|dlboost|vta>\n"
        "                   [--store FILE] [--tune-on-miss]\n"
        "                   [--trials N] [--seed S]\n"
        "                   [--queue-capacity N] [--shards N]\n"
        "                   [--no-fallback] [--max-distance D]\n"
        "                   [--negative-threshold N]\n"
        "                   [--measure-workers N]\n"
        "                   [--metrics FILE] [--trace FILE]\n"
        "\n"
        "Reads one JSON request per stdin line, writes one JSON\n"
        "response per stdout line; EOF or {\"cmd\":\"quit\"} stops\n"
        "the server (persisting the store when --store is set).\n"
        "Requests:\n"
        "  {\"id\":1,\"op\":\"gemm\",\"shape\":[512,512,512]}\n"
        "  {\"id\":2,\"cmd\":\"stats\"|\"drain\"|\"save\"|"
        "\"quit\"}\n");
}

[[noreturn]] void
usage(const char *msg)
{
    std::fprintf(stderr, "heron_serve: %s\n", msg);
    print_usage(stderr);
    std::exit(kExitUsage);
}

CliArgs
parse(int argc, char **argv)
{
    CliArgs args;
    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char *flag) {
            if (i + 1 >= argc)
                usage(
                    (std::string(flag) + " needs a value").c_str());
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--dla")) {
            args.dla = need("--dla");
        } else if (!std::strcmp(argv[i], "--store")) {
            args.store_path = need("--store");
        } else if (!std::strcmp(argv[i], "--metrics")) {
            args.metrics_path = need("--metrics");
        } else if (!std::strcmp(argv[i], "--trace")) {
            args.trace_path = need("--trace");
        } else if (!std::strcmp(argv[i], "--tune-on-miss")) {
            args.tune_on_miss = true;
        } else if (!std::strcmp(argv[i], "--no-fallback")) {
            args.fallback = false;
        } else if (!std::strcmp(argv[i], "--trials")) {
            args.trials = std::atoi(need("--trials"));
        } else if (!std::strcmp(argv[i], "--seed")) {
            args.seed =
                static_cast<uint64_t>(std::atoll(need("--seed")));
        } else if (!std::strcmp(argv[i], "--queue-capacity")) {
            args.queue_capacity =
                std::atoi(need("--queue-capacity"));
        } else if (!std::strcmp(argv[i], "--shards")) {
            args.shards = std::atoi(need("--shards"));
        } else if (!std::strcmp(argv[i], "--measure-workers")) {
            args.measure_workers =
                std::atoi(need("--measure-workers"));
        } else if (!std::strcmp(argv[i], "--negative-threshold")) {
            args.negative_threshold =
                std::atoi(need("--negative-threshold"));
        } else if (!std::strcmp(argv[i], "--max-distance")) {
            args.max_distance = std::atof(need("--max-distance"));
        } else if (!std::strcmp(argv[i], "--help") ||
                   !std::strcmp(argv[i], "-h")) {
            print_usage(stdout);
            std::exit(kExitSuccess);
        } else {
            usage(
                (std::string("unknown flag ") + argv[i]).c_str());
        }
    }
    return args;
}

hw::DlaSpec
spec_for(const std::string &name)
{
    if (name == "v100")
        return hw::DlaSpec::v100();
    if (name == "t4")
        return hw::DlaSpec::t4();
    if (name == "a100")
        return hw::DlaSpec::a100();
    if (name == "dlboost")
        return hw::DlaSpec::dlboost();
    if (name == "vta")
        return hw::DlaSpec::vta();
    usage("unknown --dla");
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args = parse(argc, argv);
    hw::DlaSpec spec = spec_for(args.dla);
    if (!args.trace_path.empty())
        trace::Tracer::global().set_enabled(true);

    serve::RegistryConfig registry_config;
    registry_config.shards = args.shards;
    registry_config.enable_fallback = args.fallback;
    registry_config.max_fallback_distance = args.max_distance;
    registry_config.negative_threshold = args.negative_threshold;
    serve::KernelRegistry registry(spec, registry_config);

    if (!args.store_path.empty()) {
        serve::StoreLoadStats load_stats;
        registry.load_store_file(args.store_path, &load_stats);
        std::fprintf(stderr,
                     "heron_serve: %s on %s: loaded %lld record(s) "
                     "from %s (%lld skipped)\n",
                     args.tune_on_miss ? "serving+tuning"
                                       : "serving",
                     spec.name.c_str(),
                     static_cast<long long>(load_stats.loaded),
                     args.store_path.c_str(),
                     static_cast<long long>(
                         load_stats.unparsable +
                         load_stats.foreign_dla +
                         load_stats.invalid +
                         load_stats.read.malformed +
                         load_stats.read.crc_mismatches +
                         load_stats.read.version_skipped));
    }

    serve::TuneQueueConfig queue_config;
    queue_config.capacity =
        static_cast<size_t>(std::max(1, args.queue_capacity));
    queue_config.tune.trials = args.trials;
    queue_config.tune.seed = args.seed;
    queue_config.tune.measure_workers = args.measure_workers;
    queue_config.store_path = args.store_path;
    serve::TuneQueue queue(registry, queue_config);
    if (args.tune_on_miss) {
        queue.start();
        registry.set_miss_handler(
            [&queue](const ops::Workload &workload,
                     const serve::WorkloadKey &) {
                return queue.enqueue(workload) ==
                       serve::EnqueueOutcome::kAccepted;
            });
    }

    std::string line;
    bool quit = false;
    while (!quit && std::getline(std::cin, line)) {
        if (line.empty())
            continue;
        std::string error;
        auto request = serve::parse_request(line, spec, &error);
        if (!request) {
            int64_t id = 0;
            if (auto token = json_extract(line, "id"))
                id = std::atoll(token->c_str());
            std::printf(
                "%s\n",
                serve::format_error_response(id, error).c_str());
            std::fflush(stdout);
            continue;
        }
        std::string response;
        switch (request->kind) {
          case serve::Request::Kind::kLookup:
            response = serve::format_lookup_response(
                request->id, registry.lookup(request->workload));
            break;
          case serve::Request::Kind::kStats:
            response = serve::format_stats_response(
                request->id, registry,
                args.tune_on_miss ? &queue : nullptr);
            break;
          case serve::Request::Kind::kDrain:
            queue.drain();
            response = serve::format_ack_response(request->id,
                                                  "drained", true);
            break;
          case serve::Request::Kind::kSave:
            response = serve::format_ack_response(
                request->id, "saved",
                !args.store_path.empty() &&
                    registry.save_store_file(args.store_path));
            break;
          case serve::Request::Kind::kQuit:
            response = serve::format_ack_response(request->id,
                                                  "quitting", true);
            quit = true;
            break;
        }
        std::printf("%s\n", response.c_str());
        std::fflush(stdout);
    }

    queue.stop();
    if (!args.store_path.empty() &&
        !registry.save_store_file(args.store_path))
        std::fprintf(stderr,
                     "heron_serve: cannot persist store to %s\n",
                     args.store_path.c_str());
    if (!args.metrics_path.empty() &&
        !metrics::Registry::global().write_json(args.metrics_path))
        std::fprintf(stderr,
                     "heron_serve: cannot write metrics to %s\n",
                     args.metrics_path.c_str());
    if (!args.trace_path.empty() &&
        !trace::Tracer::global().write_chrome_trace(
            args.trace_path))
        std::fprintf(stderr,
                     "heron_serve: cannot write trace to %s\n",
                     args.trace_path.c_str());

    serve::RegistryStats stats = registry.stats();
    std::fprintf(stderr,
                 "heron_serve: served %lld exact, %lld nearest, "
                 "%lld negative, %lld miss; %zu record(s) indexed\n",
                 static_cast<long long>(stats.exact_hits),
                 static_cast<long long>(stats.nearest_hits),
                 static_cast<long long>(stats.negative_hits),
                 static_cast<long long>(stats.misses),
                 registry.size());
    return kExitSuccess;
}
