/**
 * @file
 * heron_serve: the kernel-library server.
 *
 * Loads a tuned-schedule store for one DLA and answers workload
 * lookups over a newline-delimited JSON protocol (see
 * serve/protocol.h). By default it fronts a TCP server
 * (serve/server.h) with admission control, per-request deadlines,
 * slow-client defenses, and SIGTERM-triggered graceful drain:
 *
 *   heron_serve --dla v100 --store tuned.jsonl --port 7717 &
 *   printf '%s\n' \
 *     '{"id":1,"op":"gemm","shape":[512,512,512]}' \
 *     '{"id":2,"cmd":"stats"}' \
 *   | nc 127.0.0.1 7717
 *
 * With --stdio it reads requests from stdin and answers on stdout,
 * one process per pipeline, same protocol and the same bounded
 * line framing (a request line over --max-line-bytes is answered
 * with an error instead of buffered without limit):
 *
 *   printf '%s\n' '{"id":1,"op":"gemm","shape":[512,512,512]}' \
 *   | heron_serve --stdio --dla v100 --store tuned.jsonl
 *
 * Lookups answer in three tiers: exact (the shape is in the store),
 * nearest (a close shape whose schedule still binds against the
 * query's constraint space), and miss. With --tune-on-miss, missed
 * workloads are tuned by a background worker and hot-swapped into
 * the registry, so repeated traffic converges to exact hits; the
 * store is re-persisted (atomically) after every completed tune.
 *
 * Usage:
 *   heron_serve --dla <v100|t4|a100|dlboost|vta>
 *               [--stdio | --host H --port P [--port-file FILE]]
 *               [--store FILE] [--tune-on-miss] [--trials N]
 *               [--seed S] [--queue-capacity N] [--shards N]
 *               [--no-fallback] [--max-distance D]
 *               [--negative-threshold N] [--measure-workers N]
 *               [--max-connections N] [--max-conns-per-ip N]
 *               [--server-workers N] [--max-pending N]
 *               [--max-line-bytes N] [--max-output-bytes N]
 *               [--idle-timeout-ms D] [--drain-grace-ms D]
 *               [--metrics FILE] [--trace FILE]
 *               [--metrics-port P [--metrics-port-file FILE]]
 *               [--access-log FILE] [--access-log-sample N]
 *               [--slow-request-ms D]
 *               [--slo-p95-us D] [--slo-error-rate R]
 *               [--slo-eval-s D] [--slo-burn-evals N]
 *               [--slo-ok-evals N]
 *               [--window-slot-s D] [--window-slots N]
 */
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include <unistd.h>

#include "serve/access_log.h"
#include "serve/conn.h"
#include "serve/graph.h"
#include "serve/observe.h"
#include "serve/prometheus.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/slo.h"
#include "serve/store_wal.h"
#include "support/fs_util.h"
#include "support/json_util.h"
#include "support/metrics.h"
#include "support/trace.h"

using namespace heron;

namespace {

struct CliArgs {
    std::string dla = "v100";
    std::string store_path;
    /** WAL-backed store directory (preferred over --store). */
    std::string store_dir;
    size_t segment_bytes = 1u << 20;
    int compact_segments = 4;
    double store_retry_ms = 1000.0;
    std::string metrics_path;
    std::string trace_path;
    bool tune_on_miss = false;
    bool fallback = true;
    /** Whole-network graph serving ({"cmd":"graph"}). */
    bool graph = false;
    /** Emit directory for graph dispatch headers ("" = inline). */
    std::string graph_dir;
    int max_graphs = 64;
    int trials = 60;
    uint64_t seed = 1;
    int queue_capacity = 64;
    int shards = 8;
    int measure_workers = 1;
    int negative_threshold = 3;
    double max_distance = 6.0;

    /** Transport: TCP server by default, --stdio for pipelines. */
    bool stdio = false;
    std::string port_file;
    serve::ServerConfig server;

    /** Prometheus endpoint (--metrics-port; off unless given). */
    bool metrics_port_set = false;
    uint16_t metrics_port = 0;
    std::string metrics_port_file;
};

enum ExitCode {
    kExitSuccess = 0,
    /** The drain hard-kill fallback fired (TCP mode). */
    kExitHardKill = 1,
    /** Bad command line. */
    kExitUsage = 2,
    /** The listen socket could not be bound. */
    kExitBind = 3,
    /** The durable store directory could not be opened. */
    kExitStore = 4,
};

void
print_usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: heron_serve --dla <v100|t4|a100|dlboost|vta>\n"
        "                   [--stdio | --host H --port P\n"
        "                    [--port-file FILE]]\n"
        "                   [--store FILE | --store-dir DIR\n"
        "                    [--segment-bytes N]\n"
        "                    [--compact-segments N]\n"
        "                    [--store-retry-ms D]]\n"
        "                   [--tune-on-miss]\n"
        "                   [--graph | --graph-dir DIR]\n"
        "                   [--max-graphs N]\n"
        "                   [--trials N] [--seed S]\n"
        "                   [--queue-capacity N] [--shards N]\n"
        "                   [--no-fallback] [--max-distance D]\n"
        "                   [--negative-threshold N]\n"
        "                   [--measure-workers N]\n"
        "                   [--max-connections N]\n"
        "                   [--max-conns-per-ip N]\n"
        "                   [--server-workers N] [--max-pending N]\n"
        "                   [--max-line-bytes N]\n"
        "                   [--max-output-bytes N]\n"
        "                   [--idle-timeout-ms D]\n"
        "                   [--drain-grace-ms D]\n"
        "                   [--metrics FILE] [--trace FILE]\n"
        "                   [--metrics-port P\n"
        "                    [--metrics-port-file FILE]]\n"
        "                   [--access-log FILE]\n"
        "                   [--access-log-sample N]\n"
        "                   [--slow-request-ms D]\n"
        "                   [--slo-p95-us X] [--slo-error-rate F]\n"
        "                   [--slo-eval-s D] [--slo-burn-evals N]\n"
        "                   [--slo-ok-evals N]\n"
        "                   [--window-slot-s D] [--window-slots N]\n"
        "\n"
        "Observability: --metrics-port exposes Prometheus text\n"
        "exposition on http://host:P/metrics (0 = ephemeral,\n"
        "written to --metrics-port-file); {\"cmd\":\"metrics\"}\n"
        "answers the same data as NDJSON. --access-log appends one\n"
        "JSON line per request (errors/sheds/slow always; healthy\n"
        "requests sampled every Nth with --access-log-sample).\n"
        "--slo-p95-us / --slo-error-rate declare serving\n"
        "objectives over the last-window quantiles: when they burn\n"
        "for --slo-burn-evals consecutive evaluations the soft\n"
        "pending-request watermark shrinks (shedding lookups\n"
        "earlier), and it restores after --slo-ok-evals healthy\n"
        "evaluations.\n"
        "\n"
        "Graph serving: --graph enables whole-network requests\n"
        "({\"cmd\":\"graph\",\"network\":\"resnet50\",\"batch\":16}\n"
        "or an explicit \"layers\" array). Layers sharing a\n"
        "canonical key are deduped, all distinct keys resolve in\n"
        "one batched registry pass, misses are queued for tuning\n"
        "in payoff order (count x FLOPs x tier gap), and the model\n"
        "compiles into one dispatch header written to --graph-dir\n"
        "(or returned inline with \"emit\":\"inline\"). Poll\n"
        "{\"cmd\":\"graph_status\",\"graph\":ID} until\n"
        "\"converged\":true.\n"
        "\n"
        "Durability: --store-dir serves from a write-ahead-logged\n"
        "store (crash-safe O(1) appends, background compaction,\n"
        "corrupted files quarantined at startup). On persist\n"
        "failure the server degrades to read-only — lookups keep\n"
        "answering, tunes are rejected \"degraded\" — and probes\n"
        "the log every --store-retry-ms until writes succeed\n"
        "again. {\"cmd\":\"health\"} and GET /healthz on the\n"
        "metrics port report ok/degraded. --store keeps the legacy\n"
        "single-file rewrite path.\n"
        "\n"
        "TCP mode (default): serves the NDJSON protocol on\n"
        "--host:--port (port 0 picks an ephemeral port, written to\n"
        "--port-file when set). SIGTERM/SIGINT drain gracefully:\n"
        "in-flight requests finish, the store is persisted, and\n"
        "the process exits 0.\n"
        "\n"
        "--stdio: one JSON request per stdin line, one JSON\n"
        "response per stdout line; EOF or {\"cmd\":\"quit\"} stops\n"
        "the server (persisting the store when --store is set).\n"
        "Requests:\n"
        "  {\"id\":1,\"op\":\"gemm\",\"shape\":[512,512,512],\n"
        "   \"deadline_ms\":50}\n"
        "  {\"id\":2,\"cmd\":\"stats\"|\"drain\"|\"save\"|\"quit\"|"
        "\"shutdown\"}\n");
}

[[noreturn]] void
usage(const char *msg)
{
    std::fprintf(stderr, "heron_serve: %s\n", msg);
    print_usage(stderr);
    std::exit(kExitUsage);
}

CliArgs
parse(int argc, char **argv)
{
    CliArgs args;
    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char *flag) {
            if (i + 1 >= argc)
                usage(
                    (std::string(flag) + " needs a value").c_str());
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--dla")) {
            args.dla = need("--dla");
        } else if (!std::strcmp(argv[i], "--store")) {
            args.store_path = need("--store");
        } else if (!std::strcmp(argv[i], "--store-dir")) {
            args.store_dir = need("--store-dir");
        } else if (!std::strcmp(argv[i], "--segment-bytes")) {
            args.segment_bytes = static_cast<size_t>(std::max(
                1, std::atoi(need("--segment-bytes"))));
        } else if (!std::strcmp(argv[i], "--compact-segments")) {
            args.compact_segments =
                std::atoi(need("--compact-segments"));
        } else if (!std::strcmp(argv[i], "--store-retry-ms")) {
            args.store_retry_ms =
                std::atof(need("--store-retry-ms"));
        } else if (!std::strcmp(argv[i], "--metrics")) {
            args.metrics_path = need("--metrics");
        } else if (!std::strcmp(argv[i], "--trace")) {
            args.trace_path = need("--trace");
        } else if (!std::strcmp(argv[i], "--tune-on-miss")) {
            args.tune_on_miss = true;
        } else if (!std::strcmp(argv[i], "--graph")) {
            args.graph = true;
        } else if (!std::strcmp(argv[i], "--graph-dir")) {
            args.graph = true;
            args.graph_dir = need("--graph-dir");
        } else if (!std::strcmp(argv[i], "--max-graphs")) {
            args.max_graphs = std::atoi(need("--max-graphs"));
        } else if (!std::strcmp(argv[i], "--no-fallback")) {
            args.fallback = false;
        } else if (!std::strcmp(argv[i], "--trials")) {
            args.trials = std::atoi(need("--trials"));
        } else if (!std::strcmp(argv[i], "--seed")) {
            args.seed =
                static_cast<uint64_t>(std::atoll(need("--seed")));
        } else if (!std::strcmp(argv[i], "--queue-capacity")) {
            args.queue_capacity =
                std::atoi(need("--queue-capacity"));
        } else if (!std::strcmp(argv[i], "--shards")) {
            args.shards = std::atoi(need("--shards"));
        } else if (!std::strcmp(argv[i], "--measure-workers")) {
            args.measure_workers =
                std::atoi(need("--measure-workers"));
        } else if (!std::strcmp(argv[i], "--negative-threshold")) {
            args.negative_threshold =
                std::atoi(need("--negative-threshold"));
        } else if (!std::strcmp(argv[i], "--max-distance")) {
            args.max_distance = std::atof(need("--max-distance"));
        } else if (!std::strcmp(argv[i], "--stdio")) {
            args.stdio = true;
        } else if (!std::strcmp(argv[i], "--host")) {
            args.server.host = need("--host");
        } else if (!std::strcmp(argv[i], "--port")) {
            args.server.port = static_cast<uint16_t>(
                std::atoi(need("--port")));
        } else if (!std::strcmp(argv[i], "--port-file")) {
            args.port_file = need("--port-file");
        } else if (!std::strcmp(argv[i], "--max-connections")) {
            args.server.max_connections =
                std::atoi(need("--max-connections"));
        } else if (!std::strcmp(argv[i], "--max-conns-per-ip")) {
            args.server.max_connections_per_ip =
                std::atoi(need("--max-conns-per-ip"));
        } else if (!std::strcmp(argv[i], "--server-workers")) {
            args.server.workers =
                std::atoi(need("--server-workers"));
        } else if (!std::strcmp(argv[i], "--max-pending")) {
            args.server.max_pending_requests = static_cast<size_t>(
                std::max(1, std::atoi(need("--max-pending"))));
        } else if (!std::strcmp(argv[i], "--max-line-bytes")) {
            args.server.max_line_bytes = static_cast<size_t>(
                std::max(1, std::atoi(need("--max-line-bytes"))));
        } else if (!std::strcmp(argv[i], "--max-output-bytes")) {
            args.server.max_output_bytes = static_cast<size_t>(
                std::max(1,
                         std::atoi(need("--max-output-bytes"))));
        } else if (!std::strcmp(argv[i], "--idle-timeout-ms")) {
            args.server.idle_timeout_ms =
                std::atof(need("--idle-timeout-ms"));
        } else if (!std::strcmp(argv[i], "--drain-grace-ms")) {
            args.server.drain_grace_ms =
                std::atof(need("--drain-grace-ms"));
        } else if (!std::strcmp(argv[i], "--metrics-port")) {
            args.metrics_port_set = true;
            args.metrics_port = static_cast<uint16_t>(
                std::atoi(need("--metrics-port")));
        } else if (!std::strcmp(argv[i], "--metrics-port-file")) {
            args.metrics_port_file = need("--metrics-port-file");
        } else if (!std::strcmp(argv[i], "--access-log")) {
            args.server.access_log.path = need("--access-log");
        } else if (!std::strcmp(argv[i], "--access-log-sample")) {
            args.server.access_log.sample_every = std::max(
                1, std::atoi(need("--access-log-sample")));
        } else if (!std::strcmp(argv[i], "--slow-request-ms")) {
            args.server.slow_request_ms =
                std::atof(need("--slow-request-ms"));
        } else if (!std::strcmp(argv[i], "--slo-p95-us")) {
            args.server.slo.lookup_p95_us =
                std::atof(need("--slo-p95-us"));
        } else if (!std::strcmp(argv[i], "--slo-error-rate")) {
            args.server.slo.max_error_rate =
                std::atof(need("--slo-error-rate"));
        } else if (!std::strcmp(argv[i], "--slo-eval-s")) {
            args.server.slo.eval_interval_s =
                std::atof(need("--slo-eval-s"));
        } else if (!std::strcmp(argv[i], "--slo-burn-evals")) {
            args.server.slo.burn_evals_to_shrink =
                std::atoi(need("--slo-burn-evals"));
        } else if (!std::strcmp(argv[i], "--slo-ok-evals")) {
            args.server.slo.ok_evals_to_restore =
                std::atoi(need("--slo-ok-evals"));
        } else if (!std::strcmp(argv[i], "--window-slot-s")) {
            args.server.request_metrics.slot_seconds =
                std::atof(need("--window-slot-s"));
        } else if (!std::strcmp(argv[i], "--window-slots")) {
            args.server.request_metrics.slots =
                std::max(1, std::atoi(need("--window-slots")));
        } else if (!std::strcmp(argv[i], "--help") ||
                   !std::strcmp(argv[i], "-h")) {
            print_usage(stdout);
            std::exit(kExitSuccess);
        } else {
            usage(
                (std::string("unknown flag ") + argv[i]).c_str());
        }
    }
    if (!args.store_path.empty() && !args.store_dir.empty())
        usage("--store and --store-dir are mutually exclusive");
    return args;
}

hw::DlaSpec
spec_for(const std::string &name)
{
    if (name == "v100")
        return hw::DlaSpec::v100();
    if (name == "t4")
        return hw::DlaSpec::t4();
    if (name == "a100")
        return hw::DlaSpec::a100();
    if (name == "dlboost")
        return hw::DlaSpec::dlboost();
    if (name == "vta")
        return hw::DlaSpec::vta();
    usage("unknown --dla");
}

void
write_port_file(const std::string &path, uint16_t port,
                const char *what)
{
    if (path.empty())
        return;
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f) {
        std::fprintf(f, "%u\n", port);
        std::fclose(f);
    } else {
        std::fprintf(stderr,
                     "heron_serve: cannot write %s file %s\n", what,
                     path.c_str());
    }
}

/** /healthz callback: 200 "ok" / 503 "degraded" + store stats. */
serve::PromExporter::HealthFn
health_probe(serve::DurableStore *store)
{
    return [store]() -> std::pair<bool, std::string> {
        if (store == nullptr)
            return {true, "{\"status\":\"ok\",\"store\":null}"};
        serve::DurableStoreStats stats = store->stats();
        bool healthy =
            stats.state == serve::StoreState::kHealthy;
        return {healthy,
                std::string("{\"status\":\"") +
                    (healthy ? "ok" : "degraded") +
                    "\",\"store\":" + stats.to_json() + "}"};
    };
}

serve::Server *g_server = nullptr;

/** SIGTERM/SIGINT: begin a graceful drain (async-signal-safe). */
void
on_terminate_signal(int)
{
    if (g_server)
        g_server->request_drain();
}

/**
 * --stdio: serve the protocol over stdin/stdout with the same
 * bounded line framing as TCP connections — a request line over
 * max_line_bytes is answered with an error once its newline
 * arrives, never accumulated.
 */
int
run_stdio(const CliArgs &args, serve::KernelRegistry &registry,
          serve::TuneQueue &queue, serve::DurableStore *store,
          serve::GraphService *graph)
{
    using Clock = std::chrono::steady_clock;
    serve::TuneQueue *stats_queue =
        args.tune_on_miss ? &queue : nullptr;

    // The same observability surfaces as TCP mode, minus the
    // queue/write phases a pipeline doesn't have.
    serve::RequestMetrics request_metrics(
        args.server.request_metrics);
    serve::AccessLog access_log(args.server.access_log);
    if (!args.server.access_log.path.empty()) {
        std::string log_error;
        if (!access_log.open(&log_error))
            std::fprintf(stderr, "heron_serve: %s\n",
                         log_error.c_str());
    }
    serve::ServeRuntime runtime = serve::ServeRuntime::current();
    serve::ObserveConfig observe_config;
    observe_config.slow_request_ms = args.server.slow_request_ms;

    serve::ServeContext ctx;
    ctx.registry = &registry;
    ctx.queue = stats_queue;
    ctx.store_path = args.store_path;
    ctx.store = store;
    ctx.request_metrics = &request_metrics;
    ctx.runtime = &runtime;
    ctx.graph = graph;

    std::unique_ptr<serve::PromExporter> exporter;
    if (args.metrics_port_set) {
        exporter = std::make_unique<serve::PromExporter>(
            "127.0.0.1", args.metrics_port, [&] {
                return serve::render_prometheus(
                    metrics::Registry::global().snapshot(),
                    request_metrics.snapshot_all(Clock::now()),
                    nullptr);
            });
        exporter->set_health(health_probe(store));
        std::string exporter_error;
        if (!exporter->start(&exporter_error)) {
            std::fprintf(stderr, "heron_serve: %s\n",
                         exporter_error.c_str());
            exporter.reset();
        } else {
            write_port_file(args.metrics_port_file,
                            exporter->port(), "metrics-port");
        }
    }

    serve::LineScanner scanner(args.server.max_line_bytes);
    bool quit = false;
    char buf[16384];
    while (!quit) {
        ssize_t n = ::read(STDIN_FILENO, buf, sizeof(buf));
        if (n == 0)
            break;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        scanner.feed(
            buf, static_cast<size_t>(n),
            [&](const std::string &line, bool overflow) {
                if (quit)
                    return;
                if (overflow) {
                    std::printf(
                        "%s\n",
                        serve::format_error_response(
                            0, "request line exceeds " +
                                   std::to_string(
                                       args.server.max_line_bytes) +
                                   " bytes")
                            .c_str());
                    std::fflush(stdout);
                    return;
                }
                if (line.find_first_not_of(" \t\r") ==
                    std::string::npos)
                    return;
                Clock::time_point parse_start = Clock::now();
                std::string error;
                auto request = serve::parse_request(
                    line, registry.spec(), &error);
                Clock::time_point arrival = Clock::now();
                double parse_us =
                    std::chrono::duration<double, std::micro>(
                        arrival - parse_start)
                        .count();
                if (!request) {
                    int64_t id = 0;
                    if (auto token = json_extract(line, "id"))
                        id = std::atoll(token->c_str());
                    serve::RequestObservation obs;
                    obs.id = id;
                    obs.endpoint = "invalid";
                    obs.ok = false;
                    obs.parse_us = parse_us;
                    obs.total_us = parse_us;
                    obs.arrival = parse_start;
                    serve::observe_request(
                        obs, &request_metrics,
                        access_log.enabled() ? &access_log
                                             : nullptr,
                        observe_config, arrival);
                    std::printf("%s\n",
                                serve::format_error_response(id,
                                                             error)
                                    .c_str());
                    std::fflush(stdout);
                    return;
                }
                serve::ExecutedRequest executed =
                    serve::execute_request(*request, arrival, ctx);
                Clock::time_point done = Clock::now();
                std::printf("%s\n", executed.response.c_str());
                std::fflush(stdout);
                serve::RequestObservation obs;
                obs.id = request->id;
                obs.endpoint =
                    serve::request_kind_name(request->kind);
                if (request->kind ==
                    serve::Request::Kind::kLookup)
                    obs.tier =
                        serve::lookup_tier_name(executed.tier);
                obs.ok = executed.ok;
                obs.deadline_exceeded = executed.deadline_exceeded;
                obs.parse_us = parse_us;
                obs.handle_us = executed.handle_us;
                obs.serialize_us = executed.serialize_us;
                obs.has_deadline = request->deadline_ms > 0.0;
                obs.deadline_ms = request->deadline_ms;
                obs.arrival = arrival;
                obs.total_us =
                    parse_us +
                    std::chrono::duration<double, std::micro>(
                        done - arrival)
                        .count();
                if (obs.has_deadline)
                    obs.deadline_slack_ms =
                        obs.deadline_ms - obs.total_us / 1e3;
                serve::observe_request(
                    obs, &request_metrics,
                    access_log.enabled() ? &access_log : nullptr,
                    observe_config, done);
                // quit and shutdown both end a stdio session.
                if (executed.action != serve::RequestAction::kNone)
                    quit = true;
            });
    }

    if (exporter)
        exporter->stop();
    access_log.flush();
    queue.stop();
    if (store != nullptr) {
        if (!store->compact_now())
            std::fprintf(stderr,
                         "heron_serve: exit compaction failed "
                         "(WAL segments remain authoritative)\n");
    } else if (!args.store_path.empty() &&
               !registry.save_store_file(args.store_path)) {
        std::fprintf(stderr,
                     "heron_serve: cannot persist store to %s\n",
                     args.store_path.c_str());
    }
    return kExitSuccess;
}

/** Default mode: front the epoll TCP server until it drains. */
int
run_tcp(const CliArgs &args, serve::KernelRegistry &registry,
        serve::TuneQueue &queue, serve::DurableStore *store,
        serve::GraphService *graph)
{
    serve::ServerConfig config = args.server;
    config.store_path = args.store_path;
    config.store = store;
    config.graph = graph;
    serve::Server server(registry, args.tune_on_miss ? &queue
                                                     : nullptr,
                         config);
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "heron_serve: %s\n", error.c_str());
        return kExitBind;
    }
    write_port_file(args.port_file, server.port(), "port");

    std::unique_ptr<serve::PromExporter> exporter;
    if (args.metrics_port_set) {
        exporter = std::make_unique<serve::PromExporter>(
            "127.0.0.1", args.metrics_port, [&server] {
                auto now = std::chrono::steady_clock::now();
                serve::SloStatus slo = server.slo_status();
                return serve::render_prometheus(
                    metrics::Registry::global().snapshot(),
                    server.request_metrics().snapshot_all(now),
                    slo.enabled ? &slo : nullptr);
            });
        exporter->set_health(health_probe(store));
        std::string exporter_error;
        if (!exporter->start(&exporter_error)) {
            std::fprintf(stderr, "heron_serve: %s\n",
                         exporter_error.c_str());
            exporter.reset();
        } else {
            write_port_file(args.metrics_port_file,
                            exporter->port(), "metrics-port");
        }
    }

    g_server = &server;
    struct sigaction action{};
    action.sa_handler = on_terminate_signal;
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);

    int rc = server.wait();
    g_server = nullptr;
    if (exporter)
        exporter->stop();
    queue.stop();

    serve::ServerStats server_stats = server.stats();
    serve::AccessLogStats log_stats = server.access_log_stats();
    std::fprintf(
        stderr,
        "heron_serve: %s; %lld conn(s), %lld request(s), "
        "%lld shed, %lld deadline-exceeded, slo %lld/%lld "
        "shrink/restore, access-log %lld written %lld dropped\n",
        rc == 0 ? "drained gracefully" : "drain hard-killed",
        static_cast<long long>(server_stats.accepted_conns),
        static_cast<long long>(server_stats.requests),
        static_cast<long long>(server_stats.shed_overloaded),
        static_cast<long long>(server_stats.deadline_exceeded),
        static_cast<long long>(server_stats.slo_shrinks),
        static_cast<long long>(server_stats.slo_restores),
        static_cast<long long>(log_stats.written),
        static_cast<long long>(log_stats.dropped));
    return rc == 0 ? kExitSuccess : kExitHardKill;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args = parse(argc, argv);
    hw::DlaSpec spec = spec_for(args.dla);
    if (!args.trace_path.empty())
        trace::Tracer::global().set_enabled(true);
    fsfault::arm_from_env();

    serve::RegistryConfig registry_config;
    registry_config.shards = args.shards;
    registry_config.enable_fallback = args.fallback;
    registry_config.max_fallback_distance = args.max_distance;
    registry_config.negative_threshold = args.negative_threshold;
    serve::KernelRegistry registry(spec, registry_config);

    std::unique_ptr<serve::DurableStore> store;
    if (!args.store_dir.empty()) {
        serve::DurableStoreConfig store_config;
        store_config.dir = args.store_dir;
        store_config.segment_max_bytes = args.segment_bytes;
        store_config.compact_min_segments = args.compact_segments;
        store_config.retry_backoff_ms = args.store_retry_ms;
        store =
            std::make_unique<serve::DurableStore>(store_config);
        std::string store_error;
        if (!store->open(&store_error)) {
            std::fprintf(stderr,
                         "heron_serve: cannot open store dir %s: "
                         "%s\n",
                         args.store_dir.c_str(),
                         store_error.c_str());
            return kExitStore;
        }
        serve::StoreLoadStats load_stats;
        registry.load_records(store->records(), &load_stats);
        serve::DurableStoreStats store_stats = store->stats();
        std::fprintf(stderr,
                     "heron_serve: %s on %s: loaded %lld record(s) "
                     "from %s (%lld skipped, %lld quarantined "
                     "file(s), replay %.1f ms)\n",
                     args.tune_on_miss ? "serving+tuning"
                                       : "serving",
                     spec.name.c_str(),
                     static_cast<long long>(load_stats.loaded),
                     args.store_dir.c_str(),
                     static_cast<long long>(load_stats.unparsable +
                                            load_stats.foreign_dla +
                                            load_stats.invalid),
                     static_cast<long long>(
                         store_stats.quarantined),
                     store_stats.last_replay_ms);
    } else if (!args.store_path.empty()) {
        serve::StoreLoadStats load_stats;
        registry.load_store_file(args.store_path, &load_stats);
        std::fprintf(stderr,
                     "heron_serve: %s on %s: loaded %lld record(s) "
                     "from %s (%lld skipped)\n",
                     args.tune_on_miss ? "serving+tuning"
                                       : "serving",
                     spec.name.c_str(),
                     static_cast<long long>(load_stats.loaded),
                     args.store_path.c_str(),
                     static_cast<long long>(
                         load_stats.unparsable +
                         load_stats.foreign_dla +
                         load_stats.invalid +
                         load_stats.read.malformed +
                         load_stats.read.crc_mismatches +
                         load_stats.read.version_skipped));
    }

    serve::TuneQueueConfig queue_config;
    queue_config.capacity =
        static_cast<size_t>(std::max(1, args.queue_capacity));
    queue_config.tune.trials = args.trials;
    queue_config.tune.seed = args.seed;
    queue_config.tune.measure_workers = args.measure_workers;
    queue_config.store_path = args.store_path;
    queue_config.store = store.get();
    serve::TuneQueue queue(registry, queue_config);
    if (args.tune_on_miss) {
        queue.start();
        registry.set_miss_handler(
            [&queue](const ops::Workload &workload,
                     const serve::WorkloadKey &) {
                return queue.enqueue(workload) ==
                       serve::EnqueueOutcome::kAccepted;
            });
    }

    // Whole-network graph serving: the scheduler splits the tune
    // queue's budget across concurrently converging graphs, so it
    // only sees the queue when background tuning is actually on.
    serve::GraphTuneScheduler graph_scheduler(
        args.tune_on_miss ? &queue : nullptr);
    std::unique_ptr<serve::GraphService> graph_service;
    if (args.graph) {
        serve::GraphServiceConfig graph_config;
        graph_config.emit_dir = args.graph_dir;
        graph_config.max_graphs = static_cast<size_t>(
            std::max(1, args.max_graphs));
        graph_service = std::make_unique<serve::GraphService>(
            registry, graph_scheduler, graph_config);
    }

    int rc =
        args.stdio
            ? run_stdio(args, registry, queue, store.get(),
                        graph_service.get())
            : run_tcp(args, registry, queue, store.get(),
                      graph_service.get());
    if (store)
        store->close();

    if (!args.metrics_path.empty() &&
        !metrics::Registry::global().write_json(args.metrics_path))
        std::fprintf(stderr,
                     "heron_serve: cannot write metrics to %s\n",
                     args.metrics_path.c_str());
    if (!args.trace_path.empty() &&
        !trace::Tracer::global().write_chrome_trace(
            args.trace_path))
        std::fprintf(stderr,
                     "heron_serve: cannot write trace to %s\n",
                     args.trace_path.c_str());

    serve::RegistryStats stats = registry.stats();
    std::fprintf(stderr,
                 "heron_serve: served %lld exact, %lld nearest, "
                 "%lld negative, %lld miss; %zu record(s) indexed\n",
                 static_cast<long long>(stats.exact_hits),
                 static_cast<long long>(stats.nearest_hits),
                 static_cast<long long>(stats.negative_hits),
                 static_cast<long long>(stats.misses),
                 registry.size());
    return rc;
}
