/**
 * @file
 * Quickstart: tune one GEMM for a TensorCore GPU with Heron and
 * print the resulting schedule.
 *
 * This walks the whole public pipeline:
 *   1. describe the computation (operator library),
 *   2. generate the constrained search space (Algorithm 1),
 *   3. explore it with the full Heron tuner (CGA, Algorithm 2),
 *   4. inspect the best program as pseudo-code.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <cstdio>

#include "autotune/tuner.h"
#include "hw/simulator.h"
#include "schedule/concrete.h"

using namespace heron;

int
main()
{
    // 1. The computation: C[512,1024] += A[512,1024] * B[1024,1024]
    //    in fp16 (TensorCore-friendly).
    ops::Workload workload = ops::gemm(512, 1024, 1024);
    std::printf("Workload: %s (%lld MFLOPs)\n\n",
                workload.label().c_str(),
                static_cast<long long>(workload.flops() / 1000000));

    // 2-3. Generate + explore. The tuner bundles the space
    //     generator, the RandSAT solver, the cost model, and the
    //     constraint-based genetic algorithm.
    hw::DlaSpec spec = hw::DlaSpec::v100();
    autotune::TuneConfig config;
    config.trials = 200; // paper uses up to 2000
    auto tuner = autotune::make_heron_tuner(spec, config);
    autotune::TuneOutcome outcome = tuner->tune(workload);

    std::printf("Measured %lld programs (%lld valid)\n",
                static_cast<long long>(
                    outcome.result.total_measured),
                static_cast<long long>(outcome.result.valid_count));
    std::printf("Best: %.3f ms = %.0f GFLOP/s (peak %.0f)\n\n",
                outcome.result.best_latency_ms,
                outcome.result.best_gflops,
                spec.peak_gmacs() * 2.0);

    // 4. Rebuild the space to bind and print the winning schedule.
    rules::SpaceGenerator generator(spec, rules::Options::heron());
    auto space = generator.generate(workload);
    auto program = space.bind(outcome.result.best);
    std::printf("--- best program (structure) ---\n%s\n",
                program.to_string().c_str());
    std::printf("--- best program (pseudo-code) ---\n%s\n",
                schedule::print_pseudo_code(program).c_str());

    auto sim = hw::make_simulator(spec);
    std::printf("--- performance model breakdown ---\n%s\n",
                sim->explain(program).c_str());
    return 0;
}
