/**
 * @file
 * Paper Table 10 + Fig. 14: compilation time.
 *
 * Table 10 compares total compilation (tuning) time of AutoTVM,
 * AMOS, and Heron on five operators at the same trial budget;
 * Fig. 14 breaks Heron's time into CGA (search), hardware
 * measurement, and other (cost model) components.
 *
 * Hardware measurement time is *simulated* (repeats x modeled
 * latency + per-measurement harness overhead), since that is what
 * dominates on real testbeds; search and model times are real
 * wall-clock of this process.
 *
 * Expected shape: Heron's total is comparable to or below the
 * baselines (paper: 87% of AutoTVM, 82% of AMOS) and measurement
 * dominates the breakdown (paper: ~76% measurement, ~23% CGA).
 */
#include "bench_common.h"

using namespace heron;

int
main(int argc, char **argv)
{
    auto options = bench::BenchOptions::parse(argc, argv, 150);
    auto spec = hw::DlaSpec::v100();
    auto config = options.tune_config();

    std::vector<ops::Workload> workloads = {
        ops::gemm(512, 1024, 1024),
        ops::bmm(192, 128, 128, 64),
        ops::c1d(16, 64, 256, 128, 3, 1, 1),
        ops::c2d(16, 64, 28, 28, 64, 3, 3, 1, 1),
        ops::c3d(4, 16, 16, 28, 28, 32, 3, 3, 3, 1, 1),
    };
    if (options.quick)
        workloads.resize(2);

    std::printf("Table 10 / Fig. 14 reproduction: %d trials per "
                "tuner\n\n",
                options.trials);

    TextTable t10({"operator", "AutoTVM (s)", "AMOS (s)",
                   "Heron (s)", "Heron/AutoTVM", "Heron/AMOS"});
    t10.set_title("Table 10: compilation time (simulated "
                  "measurement + real search)");
    TextTable t14({"operator", "measure%", "CGA%", "model%",
                   "total (s)"});
    t14.set_title("Fig. 14: breakdown of Heron's compilation time");

    for (const auto &w : workloads) {
        auto autotvm = autotune::make_autotvm_tuner(spec, config);
        auto amos = autotune::make_amos_tuner(spec, config);
        auto heron = autotune::make_heron_tuner(spec, config);

        auto o_autotvm = autotvm->tune(w);
        auto o_amos = amos->tune(w);
        auto o_heron = heron->tune(w);
        std::fprintf(stderr, "  %s done\n", w.name.c_str());

        double ta = o_autotvm.compile_seconds();
        double tm = o_amos.compile_seconds();
        double th = o_heron.compile_seconds();
        t10.add_row({w.name, TextTable::fmt(ta, 1),
                     TextTable::fmt(tm, 1), TextTable::fmt(th, 1),
                     TextTable::fmt(ta > 0 ? th / ta : 0, 2),
                     TextTable::fmt(tm > 0 ? th / tm : 0, 2)});

        double total = th > 0 ? th : 1.0;
        t14.add_row(
            {w.name,
             TextTable::fmt(100.0 * o_heron.measure_seconds / total,
                            1),
             TextTable::fmt(100.0 * o_heron.search_seconds / total,
                            1),
             TextTable::fmt(100.0 * o_heron.model_seconds / total,
                            1),
             TextTable::fmt(th, 1)});
    }
    std::printf("%s\n", t10.to_string().c_str());
    std::printf("%s\n", t14.to_string().c_str());
    std::printf("Note: our CSP solver is far cheaper than the "
                "paper's or-tools setup, so the CGA share is lower "
                "than the paper's ~23%%; measurement still "
                "dominates.\n");
    return 0;
}
