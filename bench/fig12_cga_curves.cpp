/**
 * @file
 * Paper Fig. 12: exploration efficiency of CGA vs SA, GA, and RAND
 * on (a) C2D and (b) GEMM, within the Heron constrained space.
 *
 * Expected shape: CGA reaches a given performance level in roughly
 * half the exploration steps of the baselines and ends highest
 * ("CGA finds better programs in 500 steps than baselines in
 * 1000").
 */
#include "bench_common.h"
#include "search/algorithms.h"
#include "search/cga.h"

using namespace heron;

namespace {

void
run_case(const char *title, const ops::Workload &workload,
         const bench::BenchOptions &options)
{
    rules::SpaceGenerator gen(hw::DlaSpec::v100(),
                              rules::Options::heron());
    auto space = gen.generate(workload);

    search::SearchConfig sc;
    sc.trials = options.trials;
    sc.seed = options.seed;

    struct Algo {
        const char *name;
        search::SearchResult result;
    };
    std::vector<Algo> algos;
    {
        hw::Measurer m(space.spec);
        algos.push_back({"CGA", search::cga_search(space, m, sc)});
    }
    {
        hw::Measurer m(space.spec);
        algos.push_back(
            {"SA", search::simulated_annealing(space, m, sc)});
    }
    {
        hw::Measurer m(space.spec);
        algos.push_back(
            {"GA", search::genetic_algorithm(space, m, sc)});
    }
    {
        hw::Measurer m(space.spec);
        algos.push_back(
            {"RAND", search::random_search(space, m, sc)});
    }

    TextTable t({"algorithm", "valid%", "best@10%", "best@25%",
                 "best@50%", "best@100%"});
    t.set_title(title);
    for (const auto &algo : algos) {
        const auto &h = algo.result.history;
        auto at = [&](double frac) {
            size_t i = std::min(
                h.size() - 1,
                static_cast<size_t>(frac * (double)h.size()));
            return h[i];
        };
        t.add_row(
            {algo.name,
             TextTable::fmt(100.0 * (double)algo.result.valid_count /
                                (double)algo.result.total_measured,
                            1),
             TextTable::fmt(at(0.10), 0), TextTable::fmt(at(0.25), 0),
             TextTable::fmt(at(0.50), 0),
             TextTable::fmt(h.back(), 0)});
    }
    std::printf("%s\n", t.to_string().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    auto options = bench::BenchOptions::parse(argc, argv, 500);
    std::printf("Fig. 12 reproduction: %d exploration steps\n\n",
                options.trials);
    run_case("Fig. 12(a): C2D on V100 TensorCore",
             ops::c2d(16, 64, 28, 28, 64, 3, 3, 1, 1), options);
    run_case("Fig. 12(b): GEMM on V100 TensorCore",
             ops::gemm(512, 1024, 1024), options);
    std::printf("Expected shape: CGA's best@50%% beats every "
                "baseline's best@100%%.\n");
    return 0;
}
