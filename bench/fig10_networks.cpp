/**
 * @file
 * Paper Fig. 10: whole-network performance on TensorCore (batch 16)
 * for ResNet-50, Inception-V3, VGG-16, and BERT, relative to Heron,
 * against AutoTVM, AMOS, and PyTorch-cuDNN.
 *
 * Expected shape (paper): Heron ~1.69x over AutoTVM, ~1.46x over
 * AMOS, ~1.44x over PyTorch-cuDNN, with the largest library gap on
 * the 3x3-convolution-only VGG-16.
 */
#include "autotune/network.h"
#include "bench_common.h"

using namespace heron;

int
main(int argc, char **argv)
{
    auto options = bench::BenchOptions::parse(argc, argv, 40);
    auto spec = hw::DlaSpec::v100();
    auto config = options.tune_config();

    auto networks = ops::all_networks(16);
    if (options.quick) {
        for (auto &net : networks)
            if (net.layers.size() > 6)
                net.layers.resize(6);
    }

    std::vector<std::unique_ptr<autotune::Tuner>> tuners;
    tuners.push_back(autotune::make_heron_tuner(spec, config));
    tuners.push_back(autotune::make_autotvm_tuner(spec, config));
    tuners.push_back(autotune::make_amos_tuner(spec, config));
    tuners.push_back(autotune::make_vendor_library(spec, config));

    std::printf("Fig. 10 reproduction: 4 networks on V100 "
                "TensorCore, %d trials per layer\n\n",
                options.trials);

    std::vector<std::string> headers{"tuner"};
    for (const auto &net : networks)
        headers.push_back(net.name);
    headers.push_back("geomean-rel");
    TextTable table(headers);
    table.set_title(
        "Fig. 10: network latency relative to Heron (lower ratio = "
        "slower than Heron)");

    std::vector<double> heron_latency;
    for (const auto &tuner : tuners) {
        std::vector<std::string> cells{tuner->name()};
        std::vector<double> rels;
        for (size_t n = 0; n < networks.size(); ++n) {
            auto outcome = autotune::tune_network(*tuner,
                                                  networks[n]);
            std::fprintf(stderr, "  [%s] %s: %.2f ms\n",
                         tuner->name().c_str(),
                         networks[n].name.c_str(),
                         outcome.total_latency_ms);
            if (tuner->name() == "Heron") {
                heron_latency.push_back(outcome.total_latency_ms);
                cells.push_back(TextTable::fmt(1.0, 3));
                rels.push_back(1.0);
            } else {
                double rel =
                    heron_latency[n] / outcome.total_latency_ms;
                rels.push_back(rel);
                cells.push_back(TextTable::fmt(rel, 3));
            }
        }
        cells.push_back(TextTable::fmt(geomean(rels), 3));
        table.add_row(std::move(cells));
    }
    std::printf("%s\n", table.to_string().c_str());
    return 0;
}
