/**
 * @file
 * Paper Fig. 7 + Table 9: GEMM (G1-G5) and C2D (C1-C5) on NVIDIA T4
 * and A100, including the AKG polyhedral baseline and absolute
 * throughput (hardware-utilization view).
 *
 * Expected shape: Heron consistently on top on both GPUs;
 * exploration-based approaches scale across platforms while the
 * fixed vendor/AKG schedules shift in relative quality.
 */
#include "bench_common.h"

using namespace heron;

namespace {

void
run_platform(const hw::DlaSpec &spec,
             const bench::BenchOptions &options)
{
    auto config = options.tune_config();
    auto workloads = ops::table9_gemm();
    auto convs = ops::table9_conv();
    workloads.insert(workloads.end(), convs.begin(), convs.end());
    if (options.quick)
        workloads.resize(4);

    std::vector<std::unique_ptr<autotune::Tuner>> tuners;
    tuners.push_back(autotune::make_heron_tuner(spec, config));
    tuners.push_back(autotune::make_autotvm_tuner(spec, config));
    tuners.push_back(autotune::make_ansor_tuner(spec, config));
    tuners.push_back(autotune::make_amos_tuner(spec, config));
    tuners.push_back(autotune::make_akg_tuner(spec, config));
    tuners.push_back(autotune::make_vendor_library(spec, config));

    std::printf("\n==== %s ====\n", spec.name.c_str());
    auto rows = bench::run_suite(tuners, workloads);
    bench::print_relative_table(
        "Fig. 7: performance relative to Heron (" + spec.name + ")",
        workloads, rows);
    bench::print_absolute_table(
        "Fig. 7 absolute GFLOP/s (" + spec.name + ", peak " +
            TextTable::fmt(spec.peak_gmacs() * 2.0, 0) + ")",
        workloads, rows);
}

} // namespace

int
main(int argc, char **argv)
{
    auto options = bench::BenchOptions::parse(argc, argv, 120);
    std::printf("Fig. 7 / Table 9 reproduction: %d trials per "
                "tuner per case\n",
                options.trials);
    run_platform(hw::DlaSpec::t4(), options);
    run_platform(hw::DlaSpec::a100(), options);
    return 0;
}
