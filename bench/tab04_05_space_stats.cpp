/**
 * @file
 * Paper Tables 4 and 5: variable/constraint counts of the generated
 * constrained spaces.
 *
 * Table 4 breaks down the variables used to describe GEMM's
 * constraints on TensorCore (architectural / loop length / tunable
 * parameter / others); Table 5 lists totals for GEMM, BMM, C1D,
 * C2D, and C3D. Encodings differ in detail from the paper's, so
 * expect the same growth pattern and order of magnitude rather than
 * identical numbers (paper: GEMM 173 vars / 372 constraints,
 * C3D 363 / 861).
 */
#include "bench_common.h"
#include "rules/space_generator.h"

using namespace heron;

int
main()
{
    rules::SpaceGenerator gen(hw::DlaSpec::v100(),
                              rules::Options::heron());

    struct Case {
        const char *name;
        ops::Workload workload;
        int paper_vars;
        int paper_cons;
    };
    std::vector<Case> cases = {
        {"GEMM", ops::gemm(512, 1024, 1024), 173, 372},
        {"BMM", ops::bmm(192, 128, 128, 64), 236, 529},
        {"C1D", ops::c1d(16, 64, 256, 128, 3, 1, 1), 236, 547},
        {"C2D", ops::c2d(16, 64, 56, 56, 64, 3, 3, 1, 1), 304, 702},
        {"C3D", ops::c3d(4, 16, 16, 28, 28, 32, 3, 3, 3, 1, 1), 363,
         861},
    };

    // Table 4: breakdown for GEMM.
    {
        auto space = gen.generate(cases[0].workload);
        TextTable t({"category", "this repo", "paper"});
        t.set_title("Table 4: GEMM variable breakdown (TensorCore)");
        t.add_row({"Architectural Constraint",
                   TextTable::fmt(int64_t{space.stats.arch_vars}),
                   "10"});
        t.add_row({"Loop Length",
                   TextTable::fmt(int64_t{space.stats.loop_vars}),
                   "82"});
        t.add_row({"Tunable Parameter",
                   TextTable::fmt(int64_t{space.stats.tunable_vars}),
                   "30"});
        t.add_row({"Others",
                   TextTable::fmt(int64_t{space.stats.other_vars}),
                   "51"});
        t.add_row({"Total",
                   TextTable::fmt(int64_t{space.stats.total_vars()}),
                   "173"});
        std::printf("%s\n", t.to_string().c_str());
    }

    // Table 5: totals per operator.
    TextTable t({"metric", "GEMM", "BMM", "C1D", "C2D", "C3D"});
    t.set_title("Table 5: variables and constraints per operator");
    std::vector<std::string> var_row{"Variables"};
    std::vector<std::string> con_row{"Constraints"};
    std::vector<std::string> pvar_row{"Variables (paper)"};
    std::vector<std::string> pcon_row{"Constraints (paper)"};
    for (const auto &c : cases) {
        auto space = gen.generate(c.workload);
        var_row.push_back(
            TextTable::fmt(int64_t{space.stats.total_vars()}));
        con_row.push_back(
            TextTable::fmt(int64_t{space.stats.constraints}));
        pvar_row.push_back(TextTable::fmt(int64_t{c.paper_vars}));
        pcon_row.push_back(TextTable::fmt(int64_t{c.paper_cons}));
    }
    t.add_row(var_row);
    t.add_row(con_row);
    t.add_row(pvar_row);
    t.add_row(pcon_row);
    std::printf("%s\n", t.to_string().c_str());
    std::printf("Expected shape: counts grow from GEMM to C3D, same "
                "order of magnitude as the paper.\n");
    return 0;
}
