/**
 * @file
 * Paper Fig. 13: CGA vs other constraint-handling GA techniques
 * across GEMM problem sizes (N, N, N):
 *
 *   CGA-1  CGA with randomly chosen key variables
 *   GA-1   stochastic ranking (Runarsson & Yao)
 *   GA-2   SAT-decoder (Lukasiewycz et al.)
 *   GA-3   infeasibility-driven multi-objective (Ray et al.)
 *
 * Expected shape: CGA on top; CGA-1 close behind with a gap that
 * shrinks at large N; GA-2 competitive at small N but degrading
 * with size; GA-1/GA-3 behind (they cannot guarantee valid
 * offspring).
 */
#include "bench_common.h"
#include "search/algorithms.h"
#include "search/cga.h"

using namespace heron;

int
main(int argc, char **argv)
{
    auto options = bench::BenchOptions::parse(argc, argv, 150);
    std::vector<int64_t> sizes{128, 256, 512, 1024, 2048};
    if (options.quick)
        sizes = {128, 512};

    rules::SpaceGenerator gen(hw::DlaSpec::v100(),
                              rules::Options::heron());

    search::SearchConfig sc;
    sc.trials = options.trials;
    sc.seed = options.seed;

    std::vector<std::string> headers{"algorithm"};
    for (int64_t n : sizes)
        headers.push_back("N=" + std::to_string(n));
    TextTable t(headers);
    t.set_title("Fig. 13: performance relative to CGA on GEMM "
                "(N, N, N), " +
                std::to_string(options.trials) + " trials");

    struct Algo {
        const char *name;
        std::function<search::SearchResult(
            const rules::GeneratedSpace &, hw::Measurer &)>
            run;
    };
    std::vector<Algo> algos = {
        {"CGA",
         [&](const rules::GeneratedSpace &s, hw::Measurer &m) {
             return search::cga_search(s, m, sc, false);
         }},
        {"CGA-1",
         [&](const rules::GeneratedSpace &s, hw::Measurer &m) {
             return search::cga_search(s, m, sc, true);
         }},
        {"GA-1",
         [&](const rules::GeneratedSpace &s, hw::Measurer &m) {
             return search::stochastic_ranking_ga(s, m, sc);
         }},
        {"GA-2",
         [&](const rules::GeneratedSpace &s, hw::Measurer &m) {
             return search::sat_decoder_ga(s, m, sc);
         }},
        {"GA-3",
         [&](const rules::GeneratedSpace &s, hw::Measurer &m) {
             return search::multi_objective_ga(s, m, sc);
         }},
    };

    // best gflops per (algo, size)
    std::vector<std::vector<double>> best(
        algos.size(), std::vector<double>(sizes.size(), 0.0));
    for (size_t si = 0; si < sizes.size(); ++si) {
        auto space = gen.generate(
            ops::gemm(sizes[si], sizes[si], sizes[si]));
        for (size_t ai = 0; ai < algos.size(); ++ai) {
            hw::Measurer m(space.spec);
            auto result = algos[ai].run(space, m);
            best[ai][si] = result.best_gflops;
            std::fprintf(stderr, "  [%s] N=%ld: %.1f GFLOP/s\n",
                         algos[ai].name, (long)sizes[si],
                         result.best_gflops);
        }
    }

    for (size_t ai = 0; ai < algos.size(); ++ai) {
        std::vector<std::string> cells{algos[ai].name};
        for (size_t si = 0; si < sizes.size(); ++si) {
            double rel = best[0][si] > 0
                             ? best[ai][si] / best[0][si]
                             : 0.0;
            cells.push_back(TextTable::fmt(rel, 3));
        }
        t.add_row(std::move(cells));
    }
    std::printf("%s\n", t.to_string().c_str());
    return 0;
}
