/**
 * @file
 * CSP solver throughput microbench (the tuning pipeline's hot
 * loop). Reproduces the fig12 CGA solve workload — plain population
 * draws plus crossover-constrained offspring solves on the C2D and
 * GEMM spaces — and reports solver throughput, per-solve latency
 * percentiles, propagation counts, and SampleBatch worker scaling
 * into a JSON artifact.
 *
 * Usage:
 *   micro_csp_solver [--trials N] [--seed S] [--quick]
 *                    [--out FILE]         (default BENCH_csp_solver.json)
 *
 * The embedded baseline constants are the pre-trail-rewrite solver's
 * throughput for the identical workload, recorded on the development
 * machine; the reported speedups are indicative, not a calibrated
 * cross-machine comparison. Exit code is nonzero when SampleBatch
 * results differ across worker counts (a determinism violation).
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "csp/sample_batch.h"
#include "csp/solver.h"
#include "model/cost_model.h"
#include "ops/op_library.h"
#include "rules/space_generator.h"
#include "support/stats.h"

using namespace heron;
using Clock = std::chrono::steady_clock;

namespace {

/**
 * Pre-rewrite solver throughput (solves/sec) for one workload,
 * measured with the snapshot-per-decision engine on the same
 * machine and trial counts this bench defaults to.
 */
struct Baseline {
    double plain = 0.0;
    double offspring = 0.0;
};

struct SolveSeries {
    int solved = 0;
    int attempts = 0;
    double solves_per_sec = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double propagations_per_solve = 0.0;
};

struct BatchPoint {
    int workers = 0;
    double solves_per_sec = 0.0;
    /** Throughput over the 1-worker point of the same series. */
    double speedup = 1.0;
    /** speedup / workers (1.0 = perfectly linear scaling). */
    double effective_parallelism = 1.0;
};

struct WorkloadReport {
    std::string name;
    SolveSeries plain;
    SolveSeries offspring;
    Baseline baseline;
    std::vector<BatchPoint> batch;
    bool batch_deterministic = true;
};

double
seconds_since(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

/** CGA-crossover-style extra set: pin key vars to parent values. */
std::vector<csp::Constraint>
crossover_extras(const std::vector<csp::VarId> &keys,
                 const std::vector<csp::Assignment> &parents,
                 Rng &rng)
{
    std::vector<csp::Constraint> extra;
    const auto &p1 = parents[rng.index(parents.size())];
    const auto &p2 = parents[rng.index(parents.size())];
    for (csp::VarId v : keys) {
        csp::Constraint c;
        c.kind = csp::ConstraintKind::kIn;
        c.result = v;
        c.constants = {p1[static_cast<size_t>(v)],
                       p2[static_cast<size_t>(v)]};
        extra.push_back(std::move(c));
    }
    return extra;
}

SolveSeries
run_plain(csp::RandSatSolver &solver, Rng &rng, int n)
{
    std::vector<double> latencies;
    latencies.reserve(static_cast<size_t>(n));
    csp::SolverStats before = solver.stats();
    auto start = Clock::now();
    int solved = 0;
    for (int i = 0; i < n; ++i) {
        auto t0 = Clock::now();
        solved += solver.solve_one(rng).has_value();
        latencies.push_back(seconds_since(t0) * 1e3);
    }
    double elapsed = seconds_since(start);
    csp::SolverStats after = solver.stats();

    SolveSeries series;
    series.solved = solved;
    series.attempts = n;
    series.solves_per_sec = elapsed > 0 ? n / elapsed : 0.0;
    series.p50_ms = percentile(latencies, 50.0);
    series.p95_ms = percentile(latencies, 95.0);
    if (n > 0)
        series.propagations_per_solve =
            static_cast<double>(after.propagations -
                                before.propagations) /
            n;
    return series;
}

SolveSeries
run_offspring(csp::RandSatSolver &solver,
              const std::vector<csp::VarId> &keys,
              const std::vector<csp::Assignment> &parents, Rng &rng,
              int n)
{
    std::vector<double> latencies;
    latencies.reserve(static_cast<size_t>(n));
    csp::SolverStats before = solver.stats();
    auto start = Clock::now();
    int solved = 0;
    for (int i = 0; i < n; ++i) {
        auto extra = crossover_extras(keys, parents, rng);
        auto t0 = Clock::now();
        solved += solver.solve_one(rng, extra).has_value();
        latencies.push_back(seconds_since(t0) * 1e3);
    }
    double elapsed = seconds_since(start);
    csp::SolverStats after = solver.stats();

    SolveSeries series;
    series.solved = solved;
    series.attempts = n;
    series.solves_per_sec = elapsed > 0 ? n / elapsed : 0.0;
    series.p50_ms = percentile(latencies, 50.0);
    series.p95_ms = percentile(latencies, 95.0);
    if (n > 0)
        series.propagations_per_solve =
            static_cast<double>(after.propagations -
                                before.propagations) /
            n;
    return series;
}

void
print_series(const char *label, const SolveSeries &s)
{
    std::printf("  %-10s %7.1f solves/sec  p50 %.3f ms  p95 %.3f "
                "ms  %.1f props/solve  (%d/%d ok)\n",
                label, s.solves_per_sec, s.p50_ms, s.p95_ms,
                s.propagations_per_solve, s.solved, s.attempts);
}

void
write_json(const std::string &path, int trials, uint64_t seed,
           const std::vector<WorkloadReport> &reports)
{
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "micro_csp_solver: cannot write %s\n",
                     path.c_str());
        return;
    }
    auto series = [&](const char *name, const SolveSeries &s,
                      const char *suffix) {
        std::fprintf(out,
                     "    \"%s\": {\"solves_per_sec\": %.2f, "
                     "\"p50_ms\": %.5f, \"p95_ms\": %.5f, "
                     "\"propagations_per_solve\": %.2f, "
                     "\"solved\": %d, \"attempts\": %d}%s\n",
                     name, s.solves_per_sec, s.p50_ms, s.p95_ms,
                     s.propagations_per_solve, s.solved, s.attempts,
                     suffix);
    };
    unsigned cores = std::thread::hardware_concurrency();
    std::fprintf(out,
                 "{\n  \"bench\": \"micro_csp_solver\",\n"
                 "  \"trials\": %d,\n  \"seed\": %llu,\n"
                 "  \"hardware_concurrency\": %u,\n"
                 // Skipped-not-passed: scaling numbers from a box
                 // without the cores to show parallelism are not
                 // evidence either way, and must not be asserted.
                 "  \"batch_scaling\": {\"status\": \"%s\", "
                 "\"reason\": \"%s\"},\n"
                 "  \"workloads\": [\n",
                 trials, static_cast<unsigned long long>(seed),
                 cores, cores >= 4 ? "measured" : "skipped",
                 cores >= 4
                     ? "hardware_concurrency >= 4"
                     : "fewer than 4 cores; speedup reflects "
                       "oversubscription, not scaling");
    for (size_t i = 0; i < reports.size(); ++i) {
        const WorkloadReport &r = reports[i];
        std::fprintf(out, "  {\n    \"name\": \"%s\",\n",
                     r.name.c_str());
        series("plain", r.plain, ",");
        series("offspring", r.offspring, ",");
        std::fprintf(out,
                     "    \"baseline_plain_solves_per_sec\": %.1f,\n"
                     "    \"baseline_offspring_solves_per_sec\": "
                     "%.1f,\n",
                     r.baseline.plain, r.baseline.offspring);
        if (r.baseline.plain > 0)
            std::fprintf(out, "    \"speedup_plain\": %.2f,\n",
                         r.plain.solves_per_sec / r.baseline.plain);
        if (r.baseline.offspring > 0)
            std::fprintf(out, "    \"speedup_offspring\": %.2f,\n",
                         r.offspring.solves_per_sec /
                             r.baseline.offspring);
        std::fprintf(out, "    \"batch\": [");
        for (size_t j = 0; j < r.batch.size(); ++j)
            std::fprintf(out,
                         "{\"workers\": %d, \"solves_per_sec\": "
                         "%.2f, \"speedup\": %.3f, "
                         "\"effective_parallelism\": %.3f}%s",
                         r.batch[j].workers,
                         r.batch[j].solves_per_sec,
                         r.batch[j].speedup,
                         r.batch[j].effective_parallelism,
                         j + 1 < r.batch.size() ? ", " : "");
        std::fprintf(out, "],\n");
        std::fprintf(out, "    \"batch_deterministic\": %s\n  }%s\n",
                     r.batch_deterministic ? "true" : "false",
                     i + 1 < reports.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("Wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    int trials = 200;
    uint64_t seed = 1;
    std::string out_path = "BENCH_csp_solver.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--trials") && i + 1 < argc)
            trials = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc)
            seed = static_cast<uint64_t>(std::atoll(argv[++i]));
        else if (!std::strcmp(argv[i], "--quick"))
            trials = 40;
        else if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
            out_path = argv[++i];
    }

    struct Case {
        ops::Workload workload;
        Baseline baseline;
    };
    // Baselines: pre-trail-rewrite solver, same workloads, 200
    // trials, -O2 -g -DNDEBUG (the RelWithDebInfo flags this bench
    // ships with), averaged over three alternating back-to-back
    // runs on the development machine (see file comment).
    std::vector<Case> cases;
    cases.push_back({ops::c2d(16, 64, 28, 28, 64, 3, 3, 1, 1),
                     {240.8, 980.0}});
    cases.push_back(
        {ops::gemm(512, 1024, 1024), {3218.2, 3775.5}});

    unsigned cores = std::thread::hardware_concurrency();
    std::printf("hardware concurrency: %u (batch scaling is "
                "bounded by available cores)\n",
                cores);
    if (cores < 4)
        std::printf("note: < 4 cores — batch scaling assertions "
                    "are SKIPPED (not passed) on this machine\n");
    rules::SpaceGenerator gen(hw::DlaSpec::v100(),
                              rules::Options::heron());
    std::vector<WorkloadReport> reports;
    bool deterministic = true;
    for (const Case &c : cases) {
        auto space = gen.generate(c.workload);
        std::printf("%s: %zu vars, %zu constraints\n",
                    c.workload.name.c_str(), space.csp.num_vars(),
                    space.csp.num_constraints());

        WorkloadReport report;
        report.name = c.workload.name;
        report.baseline = c.baseline;

        csp::RandSatSolver solver(space.csp);
        Rng rng(seed);
        report.plain = run_plain(solver, rng, trials);
        print_series("plain", report.plain);

        auto parents = solver.solve_n(rng, 16);
        if (parents.empty()) {
            std::fprintf(stderr, "no parents for %s\n",
                         c.workload.name.c_str());
            return 1;
        }
        model::CostModel model(space.csp);
        auto keys = model.key_variables(8);
        report.offspring =
            run_offspring(solver, keys, parents, rng, trials);
        print_series("offspring", report.offspring);

        // SampleBatch scaling: identical seed sequence per worker
        // count; results must be byte-equal and throughput should
        // approach linear in workers (on a machine with the cores
        // to show it — see the batch_scaling marker in the JSON).
        const int population = 24;
        const int batches = std::max(2, trials / population);
        std::vector<std::vector<csp::Assignment>> reference;
        for (int workers : {1, 2, 4, 8}) {
            csp::SampleBatch batch(space.csp, {}, workers);
            std::vector<std::vector<csp::Assignment>> results;
            auto start = Clock::now();
            for (int b = 0; b < batches; ++b)
                results.push_back(
                    batch.sample(seed + static_cast<uint64_t>(b),
                                 population));
            double elapsed = seconds_since(start);
            size_t total = 0;
            for (const auto &r : results)
                total += r.size();
            BatchPoint point;
            point.workers = workers;
            point.solves_per_sec =
                elapsed > 0 ? static_cast<double>(total) / elapsed
                            : 0.0;
            if (!report.batch.empty() &&
                report.batch.front().solves_per_sec > 0) {
                point.speedup = point.solves_per_sec /
                                report.batch.front().solves_per_sec;
                point.effective_parallelism =
                    point.speedup / workers;
            }
            report.batch.push_back(point);
            std::printf("  batch x%d   %7.1f solves/sec  "
                        "speedup %.2fx  eff-par %.2f "
                        "(%zu samples, %d batches)\n",
                        workers, point.solves_per_sec,
                        point.speedup, point.effective_parallelism,
                        total, batches);
            if (workers == 1) {
                reference = std::move(results);
            } else if (results != reference) {
                report.batch_deterministic = false;
                deterministic = false;
                std::fprintf(stderr,
                             "DETERMINISM VIOLATION: %d-worker "
                             "batch differs from serial\n",
                             workers);
            }
        }
        if (report.baseline.plain > 0)
            std::printf("  speedup    plain %.2fx, offspring %.2fx "
                        "vs pre-rewrite baseline\n",
                        report.plain.solves_per_sec /
                            report.baseline.plain,
                        report.offspring.solves_per_sec /
                            report.baseline.offspring);
        reports.push_back(std::move(report));
    }

    write_json(out_path, trials, seed, reports);
    return deterministic ? 0 : 2;
}
