/**
 * @file
 * Ablation (DESIGN.md): contribution of individual generation-rule
 * families to Heron's results. Disables one rule family at a time
 * and reports best performance and the valid-program rate of the
 * resulting space on a GEMM and a C2D workload.
 *
 * Expected shape: disabling memory constraints (C5) tanks validity;
 * disabling multi-level caches (S2) or tensorize (S1) tanks
 * performance; disabling storage_align or vthread costs a smaller
 * factor.
 */
#include "bench_common.h"

using namespace heron;

int
main(int argc, char **argv)
{
    auto options = bench::BenchOptions::parse(argc, argv, 150);
    auto spec = hw::DlaSpec::v100();
    auto config = options.tune_config();

    std::vector<ops::Workload> workloads = {
        ops::gemm(512, 1024, 1024),
        ops::c2d(16, 64, 28, 28, 64, 3, 3, 1, 1),
    };

    struct Variant {
        std::string label;
        autotune::HeronAblation ablation;
    };
    std::vector<Variant> variants;
    auto add = [&](std::string label,
                   void (*mutate)(rules::Options &)) {
        autotune::HeronAblation ablation;
        ablation.label = label;
        mutate(ablation.options);
        variants.push_back({std::move(label), std::move(ablation)});
    };
    add("full", [](rules::Options &) {});
    add("no-tensorize (S1)",
        [](rules::Options &o) { o.enable_tensorize = false; });
    add("no-multilevel-cache (S2)", [](rules::Options &o) {
        o.enable_multi_level_cache = false;
    });
    add("no-mem-constraints (C5)", [](rules::Options &o) {
        o.enable_mem_constraints = false;
    });
    add("no-storage-align",
        [](rules::Options &o) { o.enable_storage_align = false; });
    add("no-vthread",
        [](rules::Options &o) { o.enable_vthread = false; });
    add("fixed-attach (no C4 SELECT)",
        [](rules::Options &o) { o.tunable_attach = false; });

    std::printf("Rule ablation: Heron variants, %d trials\n\n",
                options.trials);
    TextTable t({"variant", "workload", "best GFLOP/s",
                 "rel. to full", "valid%"});
    t.set_title("Generation-rule ablation (V100 TensorCore)");
    for (const auto &w : workloads) {
        double full_best = 0;
        for (const auto &variant : variants) {
            auto tuner = autotune::make_heron_tuner_ablated(
                spec, config, variant.ablation);
            auto o = tuner->tune(w);
            if (variant.label == "full")
                full_best = o.result.best_gflops;
            double valid_pct =
                o.result.total_measured
                    ? 100.0 * (double)o.result.valid_count /
                          (double)o.result.total_measured
                    : 0.0;
            t.add_row({variant.label, w.name,
                       TextTable::fmt(o.result.best_gflops, 0),
                       TextTable::fmt(full_best > 0
                                          ? o.result.best_gflops /
                                                full_best
                                          : 0,
                                      3),
                       TextTable::fmt(valid_pct, 1)});
            std::fprintf(stderr, "  [%s] %s done\n",
                         variant.label.c_str(), w.name.c_str());
        }
    }
    std::printf("%s\n", t.to_string().c_str());
    return 0;
}
