/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench binary prints the rows/series of one paper artifact.
 * Budgets default to a laptop-scale fraction of the paper's 2000
 * trials; pass --trials N (or set HERON_BENCH_TRIALS) to raise
 * them, and --quick to shrink them for smoke runs.
 */
#ifndef HERON_BENCH_BENCH_COMMON_H
#define HERON_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "autotune/tuner.h"
#include "support/stats.h"
#include "support/table.h"

namespace heron::bench {

/** Command-line options common to all benches. */
struct BenchOptions {
    int trials = 150;
    uint64_t seed = 1;
    bool quick = false;

    static BenchOptions
    parse(int argc, char **argv, int default_trials = 150)
    {
        BenchOptions options;
        options.trials = default_trials;
        if (const char *env = std::getenv("HERON_BENCH_TRIALS"))
            options.trials = std::atoi(env);
        for (int i = 1; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--trials") && i + 1 < argc) {
                options.trials = std::atoi(argv[++i]);
            } else if (!std::strcmp(argv[i], "--seed") &&
                       i + 1 < argc) {
                options.seed =
                    static_cast<uint64_t>(std::atoll(argv[++i]));
            } else if (!std::strcmp(argv[i], "--quick")) {
                options.quick = true;
                options.trials = std::max(20, options.trials / 5);
            }
        }
        return options;
    }

    autotune::TuneConfig
    tune_config() const
    {
        autotune::TuneConfig config;
        config.trials = trials;
        config.seed = seed;
        return config;
    }
};

/** One tuner's best GFLOP/s per workload. */
struct SuiteRow {
    std::string tuner;
    std::vector<double> gflops; // parallel to the workload list
};

/**
 * Run a set of tuners over a workload suite; returns best GFLOP/s
 * per (tuner, workload), 0 when unsupported or nothing valid.
 */
inline std::vector<SuiteRow>
run_suite(const std::vector<std::unique_ptr<autotune::Tuner>> &tuners,
          const std::vector<ops::Workload> &workloads)
{
    std::vector<SuiteRow> rows;
    for (const auto &tuner : tuners) {
        SuiteRow row;
        row.tuner = tuner->name();
        for (const auto &w : workloads) {
            double gflops = 0.0;
            if (tuner->supports(w)) {
                auto outcome = tuner->tune(w);
                gflops = outcome.result.best_gflops;
            }
            row.gflops.push_back(gflops);
            std::fprintf(stderr, "  [%s] %s: %.1f GFLOP/s\n",
                         row.tuner.c_str(), w.name.c_str(), gflops);
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

/**
 * Print the paper's "performance relative to Heron" view: one row
 * per tuner, one column per workload, plus the geomean column
 * (computed over workloads where both sides produced a program).
 */
inline void
print_relative_table(const std::string &title,
                     const std::vector<ops::Workload> &workloads,
                     const std::vector<SuiteRow> &rows,
                     const std::string &reference = "Heron")
{
    const SuiteRow *ref = nullptr;
    for (const auto &row : rows)
        if (row.tuner == reference)
            ref = &row;
    if (!ref) {
        std::printf("reference tuner %s missing\n",
                    reference.c_str());
        return;
    }

    std::vector<std::string> headers{"tuner"};
    for (const auto &w : workloads)
        headers.push_back(w.name);
    headers.push_back("geomean-rel");
    TextTable table(headers);
    table.set_title(title);
    for (const auto &row : rows) {
        std::vector<std::string> cells{row.tuner};
        std::vector<double> rels;
        for (size_t i = 0; i < workloads.size(); ++i) {
            double mine = row.gflops[i];
            double base = ref->gflops[i];
            if (mine <= 0 || base <= 0) {
                cells.push_back("n/a");
                continue;
            }
            double rel = mine / base;
            rels.push_back(rel);
            cells.push_back(TextTable::fmt(rel, 3));
        }
        cells.push_back(rels.empty()
                            ? std::string("n/a")
                            : TextTable::fmt(geomean(rels), 3));
        table.add_row(std::move(cells));
    }
    std::printf("%s\n", table.to_string().c_str());
}

/** Print absolute GFLOP/s (paper Fig. 7 also reports absolutes). */
inline void
print_absolute_table(const std::string &title,
                     const std::vector<ops::Workload> &workloads,
                     const std::vector<SuiteRow> &rows)
{
    std::vector<std::string> headers{"tuner"};
    for (const auto &w : workloads)
        headers.push_back(w.name);
    TextTable table(headers);
    table.set_title(title);
    for (const auto &row : rows) {
        std::vector<std::string> cells{row.tuner};
        for (double g : row.gflops)
            cells.push_back(g > 0 ? TextTable::fmt(g, 0)
                                  : std::string("n/a"));
        table.add_row(std::move(cells));
    }
    std::printf("%s\n", table.to_string().c_str());
}

} // namespace heron::bench

#endif // HERON_BENCH_BENCH_COMMON_H
