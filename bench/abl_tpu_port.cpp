/**
 * @file
 * Extension study (DESIGN.md / paper §4 "Customization" + Table 3):
 * port Heron to a TPU-v1-like systolic accelerator purely by
 * writing its DlaSpec (fixed 1x256x256 matrix unit, 4MB unified
 * buffer), then compare Heron against the AutoTVM-style manual
 * template and the fixed vendor recipes on TPU-suitable workloads.
 *
 * Expected shape: the generation rules adapt without code changes —
 * 100% of Heron's measurements are valid — and search beats both
 * the shallow template and the fixed recipes.
 */
#include "bench_common.h"

using namespace heron;

int
main(int argc, char **argv)
{
    auto options = bench::BenchOptions::parse(argc, argv, 120);
    auto spec = hw::DlaSpec::tpu();
    auto config = options.tune_config();

    std::vector<ops::Workload> workloads = {
        ops::gemm(1024, 1024, 1024, ir::DataType::kInt8),
        ops::gemm(256, 4096, 4096, ir::DataType::kInt8),
        ops::bmm(4, 256, 256, 256, ir::DataType::kInt8),
        ops::c2d(16, 256, 14, 14, 256, 3, 3, 1, 1,
                 ir::DataType::kInt8),
    };

    std::vector<std::unique_ptr<autotune::Tuner>> tuners;
    tuners.push_back(autotune::make_heron_tuner(spec, config));
    tuners.push_back(autotune::make_autotvm_tuner(spec, config));
    tuners.push_back(autotune::make_vendor_library(spec, config));

    std::printf("TPU port study: %zu workloads, %d trials per "
                "tuner\n\n",
                workloads.size(), options.trials);
    auto rows = bench::run_suite(tuners, workloads);
    bench::print_relative_table(
        "TPU-v1-like accelerator: performance relative to Heron",
        workloads, rows);
    bench::print_absolute_table("Absolute GOP/s (peak " +
                                    TextTable::fmt(
                                        spec.peak_gmacs() * 2.0, 0) +
                                    ")",
                                workloads, rows);
    std::printf("Porting cost: one DlaSpec preset (~25 lines); the "
                "schedule and constraint rules adapted "
                "automatically.\n");
    return 0;
}
