/**
 * @file
 * Paper Fig. 2: RAND vs SA vs GA in an irregular constrained space.
 *
 * RAND samples valid configurations through the CSP solver; SA and
 * GA operate on tunable parameters directly (the paper's [26]
 * setup) and therefore produce many invalid candidates. The bench
 * prints per-algorithm validity rates, the best-so-far trajectory
 * at checkpoints, and a coarse scatter summary (measured
 * performance deciles), reproducing the figure's qualitative
 * claims: SA gets stuck early, GA behaves almost randomly.
 */
#include "bench_common.h"
#include "search/algorithms.h"

using namespace heron;

int
main(int argc, char **argv)
{
    auto options = bench::BenchOptions::parse(argc, argv, 400);

    rules::SpaceGenerator gen(hw::DlaSpec::v100(),
                              rules::Options::heron());
    auto space = gen.generate(ops::gemm(32, 1000, 4096));
    std::printf("Fig. 2 reproduction: GEMM 32x1000x4096 on V100 "
                "TensorCore, %d exploration steps\n\n",
                options.trials);

    search::SearchConfig sc;
    sc.trials = options.trials;
    sc.seed = options.seed;

    struct Algo {
        const char *name;
        search::SearchResult result;
    };
    std::vector<Algo> algos;
    {
        hw::Measurer m(space.spec);
        algos.push_back(
            {"RAND", search::random_search(space, m, sc)});
    }
    {
        hw::Measurer m(space.spec);
        algos.push_back(
            {"SA", search::simulated_annealing(space, m, sc)});
    }
    {
        hw::Measurer m(space.spec);
        algos.push_back(
            {"GA", search::genetic_algorithm(space, m, sc)});
    }

    TextTable table({"algorithm", "valid%", "best GFLOP/s",
                     "best@25%", "best@50%", "best@75%",
                     "best@100%"});
    table.set_title("Fig. 2: exploration in the irregular space");
    for (const auto &algo : algos) {
        const auto &h = algo.result.history;
        auto at = [&](double frac) {
            size_t i = std::min(
                h.size() - 1,
                static_cast<size_t>(frac * (double)h.size()));
            return h[i];
        };
        table.add_row(
            {algo.name,
             TextTable::fmt(100.0 * (double)algo.result.valid_count /
                                (double)algo.result.total_measured,
                            1),
             TextTable::fmt(algo.result.best_gflops, 0),
             TextTable::fmt(at(0.25), 0), TextTable::fmt(at(0.5), 0),
             TextTable::fmt(at(0.75), 0),
             TextTable::fmt(h.back(), 0)});
    }
    std::printf("%s\n", table.to_string().c_str());
    std::printf("Expected shape: RAND is 100%% valid; SA plateaus "
                "early; GA's validity collapses after crossover/"
                "mutation so its curve tracks RAND.\n");
    return 0;
}
