/**
 * @file
 * Paper Fig. 9: GEMM, C2D, and BMM on the TVM VTA accelerator,
 * Heron vs AutoTVM (the only baseline that targets VTA).
 *
 * Expected shape (paper): ~2.32x average; near parity on C2D
 * (simple flexible GEMM units make the space easy), larger wins on
 * GEMM/BMM through deeper multi-level tiling under the buffer and
 * accumulator write-gap constraints.
 */
#include "bench_common.h"

using namespace heron;

int
main(int argc, char **argv)
{
    auto options = bench::BenchOptions::parse(argc, argv, 150);
    auto spec = hw::DlaSpec::vta();
    auto config = options.tune_config();

    auto suite = ops::vta_op_suite();

    std::vector<std::unique_ptr<autotune::Tuner>> tuners;
    tuners.push_back(autotune::make_heron_tuner(spec, config));
    tuners.push_back(autotune::make_autotvm_tuner(spec, config));

    std::printf("Fig. 9 reproduction: %zu operators on VTA, %d "
                "trials per tuner\n\n",
                suite.size(), options.trials);
    auto rows = bench::run_suite(tuners, suite);
    bench::print_relative_table(
        "Fig. 9: performance relative to Heron (VTA)", suite, rows);
    bench::print_absolute_table("Absolute GOP/s", suite, rows);
    return 0;
}
