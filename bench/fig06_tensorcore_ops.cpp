/**
 * @file
 * Paper Fig. 6: operator performance on V100 TensorCore, relative
 * to Heron, against AutoTVM, Ansor, AMOS, and the hand-tuned
 * PyTorch/cuDNN/cuBLAS library.
 *
 * Expected shape (paper): Heron wins on average with ~1.55x over
 * AutoTVM, ~2.85x over Ansor (no TensorCore access), ~1.52x over
 * AMOS, and ~2.69x over the vendor library, with vendor/ AMOS
 * competitive on a few shapes.
 */
#include "bench_common.h"

using namespace heron;

int
main(int argc, char **argv)
{
    auto options = bench::BenchOptions::parse(argc, argv, 150);
    auto spec = hw::DlaSpec::v100();
    auto config = options.tune_config();

    auto suite = ops::tensorcore_op_suite();
    if (options.quick)
        suite.resize(6);

    std::vector<std::unique_ptr<autotune::Tuner>> tuners;
    tuners.push_back(autotune::make_heron_tuner(spec, config));
    tuners.push_back(autotune::make_autotvm_tuner(spec, config));
    tuners.push_back(autotune::make_ansor_tuner(spec, config));
    tuners.push_back(autotune::make_amos_tuner(spec, config));
    tuners.push_back(autotune::make_vendor_library(spec, config));

    std::printf("Fig. 6 reproduction: %zu operators on V100 "
                "TensorCore, %d trials per tuner\n\n",
                suite.size(), options.trials);
    auto rows = bench::run_suite(tuners, suite);
    bench::print_relative_table(
        "Fig. 6: performance relative to Heron (V100 TensorCore)",
        suite, rows);
    bench::print_absolute_table("Absolute GFLOP/s", suite, rows);
    return 0;
}
