/**
 * @file
 * Paper Fig. 11: quality of the generated search spaces on GEMM G1.
 *
 * The paper visualizes sampled programs bucketed by the shared
 * memory allocated to the C output staging (X axis) and to the A
 * input staging (Y axis), colored by the best sampled performance.
 * This bench prints that grid as text for both the AutoTVM space
 * and the Heron space, plus summary statistics for the two claims:
 * (1) Heron's space has better average and best programs, and
 * (2) Heron's space is more irregular (neighboring cells differ
 * sharply).
 */
#include <cmath>
#include <map>

#include "bench_common.h"
#include "csp/solver.h"
#include "hw/measurer.h"
#include "search/common.h"

using namespace heron;

namespace {

struct SpaceSummary {
    double valid_rate = 0;
    double mean_gflops = 0;
    double best_gflops = 0;
    double irregularity = 0; // mean |log-ratio| between adjacent cells
    std::map<std::pair<int, int>, double> grid;
};

int
bucket(int64_t bytes)
{
    // log2 buckets of KiB.
    if (bytes <= 0)
        return 0;
    int b = 0;
    int64_t kib = bytes / 1024;
    while (kib > 0 && b < 7) {
        kib >>= 1;
        ++b;
    }
    return b;
}

SpaceSummary
sample_space(const rules::GeneratedSpace &space, int samples,
             uint64_t seed)
{
    csp::RandSatSolver solver(space.csp);
    hw::Measurer measurer(space.spec);
    Rng rng(seed);
    search::TunableView view(space.csp);

    SpaceSummary summary;
    int valid = 0, total = 0;
    RunningStat perf;
    for (int i = 0; i < samples; ++i) {
        std::optional<csp::Assignment> a;
        if (space.options.enable_mem_constraints) {
            a = solver.solve_one(rng);
        } else {
            // Unconstrained manual space: sample knobs directly,
            // like AutoTVM enumerating template knobs.
            a = search::complete_assignment(space.csp, view,
                                            view.random(rng));
        }
        ++total;
        if (!a)
            continue;
        auto program = space.bind(*a);
        auto r = measurer.measure(program);
        if (!r.valid)
            continue;
        ++valid;
        perf.push(r.gflops);
        summary.best_gflops =
            std::max(summary.best_gflops, r.gflops);

        int64_t c_bytes = 0, a_bytes = 0;
        for (const auto &s : program.stages) {
            if (s.scope != schedule::MemScope::kShared)
                continue;
            if (s.role == schedule::StageRole::kCacheWrite)
                c_bytes += s.tile_bytes();
            else if (s.tensor == "A")
                a_bytes += s.tile_bytes();
        }
        auto key = std::make_pair(bucket(c_bytes), bucket(a_bytes));
        auto &cell = summary.grid[key];
        cell = std::max(cell, r.gflops);
    }
    summary.valid_rate = total ? (double)valid / total : 0;
    summary.mean_gflops = perf.mean();

    // Irregularity: mean absolute log2 ratio between horizontally
    // adjacent non-empty cells.
    RunningStat rough;
    for (const auto &[key, value] : summary.grid) {
        auto right = summary.grid.find(
            std::make_pair(key.first + 1, key.second));
        if (right != summary.grid.end() && value > 0 &&
            right->second > 0)
            rough.push(std::fabs(std::log2(value /
                                           right->second)));
    }
    summary.irregularity = rough.mean();
    return summary;
}

void
print_grid(const char *name, const SpaceSummary &s)
{
    TextTable t({"C-shared\\A-shared", "<2K", "2-4K", "4-8K", "8-16K",
                 "16-32K", "32-64K", "64-128K", ">=128K"});
    t.set_title(std::string("Fig. 11 grid (best GFLOP/s per cell): ") +
                name);
    for (int cb = 0; cb < 8; ++cb) {
        std::vector<std::string> row{std::to_string(cb)};
        for (int ab = 0; ab < 8; ++ab) {
            auto it = s.grid.find(std::make_pair(cb, ab));
            row.push_back(it == s.grid.end()
                              ? std::string(".")
                              : TextTable::fmt(it->second, 0));
        }
        t.add_row(row);
    }
    std::printf("%s\n", t.to_string().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    auto options = bench::BenchOptions::parse(argc, argv, 1500);
    auto workload = ops::gemm(1024, 1024, 1024); // Table 9 G1
    auto spec = hw::DlaSpec::v100();

    rules::SpaceGenerator heron_gen(spec, rules::Options::heron());
    rules::SpaceGenerator autotvm_gen(spec,
                                      rules::Options::autotvm());
    auto heron_space = heron_gen.generate(workload);
    auto autotvm_space = autotvm_gen.generate(workload);

    std::printf("Fig. 11 reproduction: GEMM G1 (1024^3), %d samples "
                "per space\n\n",
                options.trials);
    auto heron_summary =
        sample_space(heron_space, options.trials, options.seed);
    auto autotvm_summary =
        sample_space(autotvm_space, options.trials, options.seed);

    print_grid("AutoTVM space", autotvm_summary);
    print_grid("Heron space", heron_summary);

    TextTable t({"space", "valid%", "mean GFLOP/s", "best GFLOP/s",
                 "irregularity (mean |log2 ratio|)"});
    t.set_title("Fig. 11 summary");
    auto row = [&](const char *name, const SpaceSummary &s) {
        t.add_row({name, TextTable::fmt(100.0 * s.valid_rate, 1),
                   TextTable::fmt(s.mean_gflops, 0),
                   TextTable::fmt(s.best_gflops, 0),
                   TextTable::fmt(s.irregularity, 2)});
    };
    row("AutoTVM", autotvm_summary);
    row("Heron", heron_summary);
    std::printf("%s\n", t.to_string().c_str());
    std::printf("Expected shape: Heron's space has higher validity, "
                "higher mean/best performance, and at least "
                "comparable irregularity.\n");
    return 0;
}
