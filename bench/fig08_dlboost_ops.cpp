/**
 * @file
 * Paper Fig. 8: operator performance on Intel DL Boost (VNNI int8)
 * relative to Heron, against AutoTVM, Ansor, AMOS, and oneDNN.
 *
 * Expected shape (paper): ~2.93x over AutoTVM, ~12x over Ansor
 * (fp32 scalar path), ~2.71x over AMOS (shallow mapping templates,
 * no packed layouts), ~1.49x over oneDNN.
 */
#include "bench_common.h"

using namespace heron;

int
main(int argc, char **argv)
{
    auto options = bench::BenchOptions::parse(argc, argv, 150);
    auto spec = hw::DlaSpec::dlboost();
    auto config = options.tune_config();

    auto suite = ops::dlboost_op_suite();
    if (options.quick)
        suite.resize(5);

    std::vector<std::unique_ptr<autotune::Tuner>> tuners;
    tuners.push_back(autotune::make_heron_tuner(spec, config));
    tuners.push_back(autotune::make_autotvm_tuner(spec, config));
    tuners.push_back(autotune::make_ansor_tuner(spec, config));
    tuners.push_back(autotune::make_amos_tuner(spec, config));
    tuners.push_back(autotune::make_vendor_library(spec, config));

    std::printf("Fig. 8 reproduction: %zu operators on DL Boost, "
                "%d trials per tuner\n\n",
                suite.size(), options.trials);
    auto rows = bench::run_suite(tuners, suite);
    bench::print_relative_table(
        "Fig. 8: performance relative to Heron (Intel DL Boost)",
        suite, rows);
    bench::print_absolute_table("Absolute GOP/s", suite, rows);
    return 0;
}
