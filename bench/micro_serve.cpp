/**
 * @file
 * Serving-layer throughput microbench. Populates a KernelRegistry
 * with solver-produced records, then reports exact-hit lookup
 * throughput (single- and multi-threaded), per-lookup latency
 * percentiles, the overhead of windowed request metrics on the
 * exact-hit path, and the tier breakdown of a mixed exact/near/far
 * query stream, into a JSON artifact.
 *
 * Usage:
 *   micro_serve [--lookups N] [--seed S] [--quick] [--out FILE]
 *               (default BENCH_serve.json)
 *
 * Exit code is nonzero when the registry misserves (an exact-hit
 * query answered from any other tier).
 */
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <unistd.h>

#include "csp/solver.h"
#include "ops/op_library.h"
#include "rules/space_generator.h"
#include "serve/graph.h"
#include "serve/graph_schedule.h"
#include "serve/observe.h"
#include "serve/registry.h"
#include "serve/store_wal.h"
#include "support/stats.h"

using namespace heron;
using Clock = std::chrono::steady_clock;

namespace {

double
seconds_since(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

struct LookupSeries {
    int threads = 1;
    int64_t lookups = 0;
    double lookups_per_sec = 0.0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    /**
     * Throughput of the fastest ~1/16th chunk of the run: a
     * scheduler preemption poisons the chunks it lands in, not this
     * one, so chunk-best rates compare cleanly on timeshared boxes.
     */
    double best_chunk_lps = 0.0;
    /** Aggregate throughput over the single-thread baseline. */
    double speedup = 0.0;
    /**
     * speedup / threads: 1.0 is perfect scaling; well under 1.0
     * means the threads contended (or the box has fewer cores than
     * the series has threads — see hardware_concurrency in the
     * artifact before reading anything into these numbers).
     */
    double effective_parallelism = 0.0;
};

/** Chunk length for LookupSeries::best_chunk_lps. */
int64_t
chunk_len(int64_t n)
{
    return std::max<int64_t>(1, n / 16);
}

/** Timed exact-hit loop over @p workloads on one thread. */
LookupSeries
run_exact(serve::KernelRegistry &registry,
          const std::vector<ops::Workload> &workloads, int64_t n,
          std::atomic<bool> *misserved)
{
    std::vector<double> latencies;
    latencies.reserve(static_cast<size_t>(n));
    int64_t chunk = chunk_len(n);
    double best_chunk = 0.0;
    auto start = Clock::now();
    auto chunk_start = start;
    for (int64_t i = 0; i < n; ++i) {
        auto t0 = Clock::now();
        auto result = registry.lookup(
            workloads[static_cast<size_t>(i) % workloads.size()]);
        latencies.push_back(seconds_since(t0) * 1e6);
        if (result.tier != serve::LookupTier::kExact)
            misserved->store(true);
        if ((i + 1) % chunk == 0) {
            auto now = Clock::now();
            double secs =
                std::chrono::duration<double>(now - chunk_start)
                    .count();
            if (secs > 0)
                best_chunk = std::max(best_chunk, chunk / secs);
            chunk_start = now;
        }
    }
    double elapsed = seconds_since(start);

    LookupSeries series;
    series.lookups = n;
    series.lookups_per_sec = elapsed > 0 ? n / elapsed : 0.0;
    series.best_chunk_lps = best_chunk;
    series.p50_us = percentile(latencies, 50.0);
    series.p95_us = percentile(latencies, 95.0);
    return series;
}

/**
 * run_exact with the serving layer's per-lookup windowed metrics
 * enabled: identical loop and clock reads, plus one
 * RequestMetrics::observe_lookup per lookup (the cost the TCP
 * server pays with observability on). Comparing against run_exact
 * isolates the instrumentation overhead.
 */
LookupSeries
run_exact_instrumented(serve::KernelRegistry &registry,
                       const std::vector<ops::Workload> &workloads,
                       int64_t n, std::atomic<bool> *misserved,
                       serve::RequestMetrics &metrics)
{
    std::vector<double> latencies;
    latencies.reserve(static_cast<size_t>(n));
    int64_t chunk = chunk_len(n);
    double best_chunk = 0.0;
    auto start = Clock::now();
    auto chunk_start = start;
    for (int64_t i = 0; i < n; ++i) {
        auto t0 = Clock::now();
        auto result = registry.lookup(
            workloads[static_cast<size_t>(i) % workloads.size()]);
        auto t1 = Clock::now();
        double us =
            std::chrono::duration<double, std::micro>(t1 - t0)
                .count();
        latencies.push_back(us);
        metrics.observe_lookup(us, result.tier, t1);
        if (result.tier != serve::LookupTier::kExact)
            misserved->store(true);
        if ((i + 1) % chunk == 0) {
            auto now = Clock::now();
            double secs =
                std::chrono::duration<double>(now - chunk_start)
                    .count();
            if (secs > 0)
                best_chunk = std::max(best_chunk, chunk / secs);
            chunk_start = now;
        }
    }
    double elapsed = seconds_since(start);

    LookupSeries series;
    series.lookups = n;
    series.lookups_per_sec = elapsed > 0 ? n / elapsed : 0.0;
    series.best_chunk_lps = best_chunk;
    series.p50_us = percentile(latencies, 50.0);
    series.p95_us = percentile(latencies, 95.0);
    return series;
}

/** Aggregate exact-hit throughput across @p threads threads. */
LookupSeries
run_exact_parallel(serve::KernelRegistry &registry,
                   const std::vector<ops::Workload> &workloads,
                   int64_t n, int threads, std::atomic<bool> *misserved)
{
    int64_t per_thread = n / threads;
    std::vector<std::thread> pool;
    auto start = Clock::now();
    for (int t = 0; t < threads; ++t)
        pool.emplace_back([&, t] {
            for (int64_t i = 0; i < per_thread; ++i) {
                auto result = registry.lookup(
                    workloads[static_cast<size_t>(i + t) %
                              workloads.size()]);
                if (result.tier != serve::LookupTier::kExact)
                    misserved->store(true);
            }
        });
    for (auto &thread : pool)
        thread.join();
    double elapsed = seconds_since(start);

    LookupSeries series;
    series.threads = threads;
    series.lookups = per_thread * threads;
    series.lookups_per_sec =
        elapsed > 0 ? series.lookups / elapsed : 0.0;
    return series;
}

/**
 * Graph-serving series: the same key set resolved one-lookup-at-a-
 * time versus through one lookup_batch call (the whole-network
 * request path), plus end-to-end GraphService throughput with
 * library emission included.
 */
struct GraphSeries {
    int64_t keys = 0;
    int64_t rounds = 0;
    /** Mean per-round cost of N sequential lookup() calls. */
    double sequential_us = 0.0;
    /** Mean per-round cost of one lookup_batch over the same N. */
    double batched_us = 0.0;
    /** sequential_us / batched_us (> 1: batching wins). */
    double batched_speedup = 0.0;
    int64_t graphs = 0;
    double graphs_per_sec = 0.0;
    double layers_per_sec = 0.0;
    int64_t deduped = 0;
    bool converged = false;
};

GraphSeries
run_graph(serve::KernelRegistry &registry,
          const std::vector<ops::Workload> &present, int64_t rounds,
          std::atomic<bool> *misserved)
{
    GraphSeries series;
    series.keys = static_cast<int64_t>(present.size());
    series.rounds = rounds;

    // Alternate A/B per rep (same frequency/load state) and keep
    // each side's best rep, mirroring the metrics-overhead series.
    constexpr int kReps = 3;
    int64_t per_rep = std::max<int64_t>(1, rounds / kReps);
    double best_seq_us = 0.0, best_batch_us = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
        auto seq_start = Clock::now();
        for (int64_t round = 0; round < per_rep; ++round)
            for (const auto &workload : present)
                if (registry.lookup(workload).tier !=
                    serve::LookupTier::kExact)
                    misserved->store(true);
        double seq_us = seconds_since(seq_start) * 1e6 / per_rep;

        auto batch_start = Clock::now();
        for (int64_t round = 0; round < per_rep; ++round)
            for (const auto &result :
                 registry.lookup_batch(present))
                if (result.tier != serve::LookupTier::kExact)
                    misserved->store(true);
        double batch_us =
            seconds_since(batch_start) * 1e6 / per_rep;

        if (rep == 0 || seq_us < best_seq_us)
            best_seq_us = seq_us;
        if (rep == 0 || batch_us < best_batch_us)
            best_batch_us = batch_us;
    }
    series.sequential_us = best_seq_us;
    series.batched_us = best_batch_us;
    series.batched_speedup =
        best_batch_us > 0 ? best_seq_us / best_batch_us : 0.0;

    // End-to-end graph requests (dedupe + batch resolve + payoff
    // plan + one-library emission — the expensive part is codegen,
    // so this is a small-count series).
    ops::Network net;
    net.name = "bench_graph";
    for (const auto &workload : present)
        net.layers.push_back({workload, 2});
    for (size_t i = 0; i < present.size() && i < 5; ++i) {
        ops::Workload alias = present[i];
        alias.name += "_alias";
        net.layers.push_back({alias, 1});
    }
    serve::GraphTuneScheduler scheduler;
    serve::GraphService service(registry, scheduler);
    constexpr int64_t kGraphs = 8;
    auto graph_start = Clock::now();
    for (int64_t i = 0; i < kGraphs; ++i) {
        auto result = service.handle_graph(net);
        series.deduped = result.deduped;
        series.converged = result.converged;
        if (!result.converged)
            misserved->store(true);
    }
    double elapsed = seconds_since(graph_start);
    series.graphs = kGraphs;
    series.graphs_per_sec = elapsed > 0 ? kGraphs / elapsed : 0.0;
    series.layers_per_sec =
        elapsed > 0
            ? kGraphs * static_cast<double>(present.size()) / elapsed
            : 0.0;
    return series;
}

/** WAL persist series: per-append cost across a growing store. */
struct WalSeries {
    int64_t appends = 0;
    double appends_per_sec = 0.0;
    double first_half_p50_us = 0.0;
    double second_half_p50_us = 0.0;
    /**
     * second_half / first_half append medians. The legacy persist
     * path rewrote the whole store per record (cost ~ store size,
     * so this ratio would approach 3 as the store triples between
     * half-midpoints); a write-ahead log appends one framed record
     * regardless of store size, so the ratio must stay ~1.
     */
    double growth_ratio = 0.0;
    double p95_us = 0.0;
    double compact_ms = 0.0;
    double replay_ms = 0.0;
    int64_t records = 0;
};

void
remove_tree(const std::string &dir)
{
    if (DIR *d = ::opendir(dir.c_str())) {
        while (dirent *ent = ::readdir(d)) {
            if (std::strcmp(ent->d_name, ".") &&
                std::strcmp(ent->d_name, ".."))
                ::unlink((dir + "/" + ent->d_name).c_str());
        }
        ::closedir(d);
    }
    ::rmdir(dir.c_str());
}

/**
 * Sustained appends into a fresh store, then a timed compaction and
 * a timed reopen replay. fsync is disabled so the series measures
 * the algorithmic per-record cost (frame + write) rather than the
 * device's constant fsync latency, which would mask any
 * store-size-dependent term.
 */
bool
run_wal(int64_t appends, WalSeries *series)
{
    std::string dir = "/tmp/heron_bench_wal_XXXXXX";
    if (::mkdtemp(dir.data()) == nullptr) {
        std::fprintf(stderr, "micro_serve: mkdtemp failed\n");
        return false;
    }
    serve::DurableStoreConfig config;
    config.dir = dir;
    config.segment_max_bytes = 4u << 20;
    config.compact_min_segments = 0; // keep compaction out of the series
    config.fsync_data = false;
    bool ok = false;
    {
        serve::DurableStore store(config);
        if (!store.open()) {
            remove_tree(dir);
            return false;
        }
        std::vector<double> latencies;
        latencies.reserve(static_cast<size_t>(appends));
        auto start = Clock::now();
        for (int64_t i = 0; i < appends; ++i) {
            autotune::TuningRecord record;
            record.workload =
                "bench_wal_" + std::to_string(i);
            record.dla = "bench";
            record.tuner = "bench";
            record.category = "serve";
            record.latency_ms = 1.0;
            record.gflops = static_cast<double>(i);
            auto t0 = Clock::now();
            ok = store.append(record);
            latencies.push_back(seconds_since(t0) * 1e6);
            if (!ok) {
                std::fprintf(stderr,
                             "micro_serve: WAL append failed\n");
                remove_tree(dir);
                return false;
            }
        }
        double elapsed = seconds_since(start);
        std::vector<double> first(
            latencies.begin(),
            latencies.begin() + latencies.size() / 2);
        std::vector<double> second(
            latencies.begin() + latencies.size() / 2,
            latencies.end());
        series->appends = appends;
        series->appends_per_sec =
            elapsed > 0 ? appends / elapsed : 0.0;
        series->first_half_p50_us = percentile(first, 50.0);
        series->second_half_p50_us = percentile(second, 50.0);
        series->growth_ratio =
            series->first_half_p50_us > 0
                ? series->second_half_p50_us /
                      series->first_half_p50_us
                : 0.0;
        series->p95_us = percentile(latencies, 95.0);

        auto compact_start = Clock::now();
        if (!store.compact_now()) {
            std::fprintf(stderr,
                         "micro_serve: WAL compaction failed\n");
            remove_tree(dir);
            return false;
        }
        series->compact_ms =
            seconds_since(compact_start) * 1e3;
        store.close();
    }
    serve::DurableStore reopened(config);
    if (!reopened.open()) {
        remove_tree(dir);
        return false;
    }
    auto stats = reopened.stats();
    series->replay_ms = stats.last_replay_ms;
    series->records = stats.records;
    reopened.close();
    remove_tree(dir);
    return series->records == appends;
}

} // namespace

int
main(int argc, char **argv)
{
    int64_t lookups = 200000;
    uint64_t seed = 1;
    std::string out_path = "BENCH_serve.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--lookups") && i + 1 < argc)
            lookups = std::atoll(argv[++i]);
        else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc)
            seed = static_cast<uint64_t>(std::atoll(argv[++i]));
        else if (!std::strcmp(argv[i], "--quick"))
            lookups = 50000;
        else if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
            out_path = argv[++i];
    }

    auto spec = hw::DlaSpec::v100();
    serve::KernelRegistry registry(spec);

    // Populate with solver-produced records across a grid of GEMM
    // shapes (no measurements needed: lookup cost is independent of
    // how a record was obtained).
    std::vector<ops::Workload> present;
    rules::SpaceGenerator generator(spec, rules::Options::heron());
    auto setup_start = Clock::now();
    for (int64_t m = 128; m <= 1024; m *= 2)
        for (int64_t n = 128; n <= 1024; n *= 2) {
            auto workload = ops::gemm(m, n, 512);
            auto space = generator.generate(workload);
            csp::RandSatSolver solver(space.csp);
            Rng rng(seed + static_cast<uint64_t>(m * 31 + n));
            auto assignment = solver.solve_one(rng);
            if (!assignment) {
                std::fprintf(stderr, "micro_serve: no solution for "
                                     "%s\n",
                             workload.name.c_str());
                return 1;
            }
            autotune::TuningRecord record;
            record.tuner = "bench";
            record.latency_ms = 1.0;
            record.gflops = static_cast<double>(m + n);
            record.assignment = *assignment;
            registry.put(workload, std::move(record));
            present.push_back(std::move(workload));
        }
    std::printf("indexed %zu records in %.2f s\n", registry.size(),
                seconds_since(setup_start));

    std::atomic<bool> misserved{false};
    serve::RequestMetrics request_metrics;
    // A single back-to-back A/B pair is noisy on a timeshared box
    // (one scheduler preemption inside either loop swings the ratio
    // by double digits): alternate the series and compare the best
    // pass of each — the least-preempted run is the honest
    // throughput.
    constexpr int kOverheadReps = 5;
    LookupSeries single, instrumented;
    std::vector<double> rep_overheads;
    for (int rep = 0; rep < kOverheadReps; ++rep) {
        auto plain = run_exact(registry, present, lookups,
                               &misserved);
        if (rep == 0 ||
            plain.best_chunk_lps > single.best_chunk_lps)
            single = plain;
        auto inst = run_exact_instrumented(registry, present,
                                           lookups, &misserved,
                                           request_metrics);
        if (rep == 0 ||
            inst.best_chunk_lps > instrumented.best_chunk_lps)
            instrumented = inst;
        // Pair each rep's A/B runs (adjacent in time, so the same
        // frequency/load state) and aggregate by median: slow
        // drift across reps cancels per pair, and an outlier rep
        // cannot move the median.
        if (plain.best_chunk_lps > 0.0)
            rep_overheads.push_back(
                (plain.best_chunk_lps - inst.best_chunk_lps) /
                plain.best_chunk_lps * 100.0);
    }
    std::printf("exact x1    %9.0f lookups/sec  p50 %.2f us  "
                "p95 %.2f us\n",
                single.lookups_per_sec, single.p50_us,
                single.p95_us);
    double overhead_pct = percentile(rep_overheads, 50.0);
    std::printf("exact x1 +m %9.0f lookups/sec  p50 %.2f us  "
                "p95 %.2f us  (metrics overhead %.2f%%)\n",
                instrumented.lookups_per_sec, instrumented.p50_us,
                instrumented.p95_us, overhead_pct);

    unsigned cores = std::thread::hardware_concurrency();
    if (cores < 4)
        std::printf("note: < 4 cores — parallel scaling assertions "
                    "are SKIPPED (not passed) on this machine\n");
    std::vector<LookupSeries> parallel;
    for (int threads : {2, 4}) {
        auto series = run_exact_parallel(registry, present, lookups,
                                         threads, &misserved);
        if (single.lookups_per_sec > 0.0)
            series.speedup =
                series.lookups_per_sec / single.lookups_per_sec;
        series.effective_parallelism = series.speedup / threads;
        std::printf("exact x%-3d %9.0f lookups/sec  speedup "
                    "%.2fx  eff. parallelism %.2f%s\n",
                    threads, series.lookups_per_sec, series.speedup,
                    series.effective_parallelism,
                    cores < static_cast<unsigned>(threads)
                        ? "  (oversubscribed: fewer cores than "
                          "threads)"
                        : "");
        parallel.push_back(series);
    }

    // Mixed stream: exact hits, near shapes (one octave off, served
    // by gene transfer), and far/incompatible shapes (miss, then
    // negative once the cache saturates). Small count: the nearest
    // tier pays solver work per first-touch query shape.
    serve::RegistryStats before = registry.stats();
    auto mixed_start = Clock::now();
    int64_t mixed = 0;
    for (int round = 0; round < 8; ++round) {
        registry.lookup(present[static_cast<size_t>(round) %
                                present.size()]);
        registry.lookup(ops::gemm(192 + round, 256, 512));
        registry.lookup(ops::gemv(4096 + round % 2, 4096));
        mixed += 3;
    }
    double mixed_elapsed = seconds_since(mixed_start);
    serve::RegistryStats after = registry.stats();
    std::printf("mixed       %9.0f lookups/sec  (%lld exact, %lld "
                "nearest, %lld negative, %lld miss, %lld "
                "transferred)\n",
                mixed_elapsed > 0 ? mixed / mixed_elapsed : 0.0,
                static_cast<long long>(after.exact_hits -
                                       before.exact_hits),
                static_cast<long long>(after.nearest_hits -
                                       before.nearest_hits),
                static_cast<long long>(after.negative_hits -
                                       before.negative_hits),
                static_cast<long long>(after.misses -
                                       before.misses),
                static_cast<long long>(after.fallback_transferred -
                                       before.fallback_transferred));

    // Graph path: the same keys through one batched pass, and full
    // graph requests with emission. Batched resolution amortizes
    // hazard-guard acquisition per shard instead of per lookup, so
    // it must not lose to the sequential loop.
    GraphSeries graph = run_graph(
        registry, present,
        std::max<int64_t>(64, lookups / 1000), &misserved);
    std::printf("graph       %9.2f us/round sequential vs %.2f us "
                "batched (%.2fx) over %lld keys; %0.f graphs/sec "
                "(%.0f layers/sec, %lld deduped%s)\n",
                graph.sequential_us, graph.batched_us,
                graph.batched_speedup,
                static_cast<long long>(graph.keys),
                graph.graphs_per_sec, graph.layers_per_sec,
                static_cast<long long>(graph.deduped),
                graph.converged ? "" : ", NOT CONVERGED");

    // WAL persist path: per-append cost must not grow with store
    // size (the whole point of replacing the rewrite-the-world
    // path). 3x headroom on the half-over-half median ratio: a
    // size-dependent persist would blow far past it, while cache
    // and allocator noise stay well inside.
    WalSeries wal;
    int64_t wal_appends = std::max<int64_t>(2000, lookups / 10);
    bool wal_ok = run_wal(wal_appends, &wal);
    bool wal_o1 = wal_ok && wal.growth_ratio < 3.0;
    std::printf("wal append  %9.0f appends/sec  p50 %.2f -> %.2f "
                "us (ratio %.2f)  p95 %.2f us  compact %.1f ms  "
                "replay %.1f ms%s\n",
                wal.appends_per_sec, wal.first_half_p50_us,
                wal.second_half_p50_us, wal.growth_ratio,
                wal.p95_us, wal.compact_ms, wal.replay_ms,
                wal_o1 ? "" : "  (NOT O(1)!)");

    std::FILE *out = std::fopen(out_path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "micro_serve: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    unsigned json_cores = std::thread::hardware_concurrency();
    std::fprintf(out,
                 "{\n  \"bench\": \"micro_serve\",\n"
                 "  \"entries\": %zu,\n  \"lookups\": %lld,\n"
                 "  \"hardware_concurrency\": %u,\n"
                 // Skipped-not-passed: scaling assertions on a box
                 // with fewer cores than threads measure
                 // oversubscription, not the registry's read path.
                 "  \"parallel_scaling\": {\"status\": \"%s\", "
                 "\"reason\": \"%s\"},\n",
                 registry.size(),
                 static_cast<long long>(lookups), json_cores,
                 json_cores >= 4 ? "measured" : "skipped",
                 json_cores >= 4
                     ? "hardware_concurrency >= 4"
                     : "fewer than 4 cores; thread series "
                       "oversubscribed");
    std::fprintf(out,
                 "  \"exact_single\": {\"lookups_per_sec\": %.1f, "
                 "\"p50_us\": %.3f, \"p95_us\": %.3f},\n",
                 single.lookups_per_sec, single.p50_us,
                 single.p95_us);
    std::fprintf(
        out,
        "  \"exact_instrumented\": {\"lookups_per_sec\": %.1f, "
        "\"p50_us\": %.3f, \"p95_us\": %.3f, "
        "\"overhead_pct\": %.3f},\n",
        instrumented.lookups_per_sec, instrumented.p50_us,
        instrumented.p95_us, overhead_pct);
    std::fprintf(out, "  \"exact_parallel\": [");
    for (size_t i = 0; i < parallel.size(); ++i)
        std::fprintf(out,
                     "{\"threads\": %d, \"lookups_per_sec\": "
                     "%.1f, \"speedup\": %.3f, "
                     "\"effective_parallelism\": %.3f}%s",
                     parallel[i].threads,
                     parallel[i].lookups_per_sec,
                     parallel[i].speedup,
                     parallel[i].effective_parallelism,
                     i + 1 < parallel.size() ? ", " : "");
    std::fprintf(out, "],\n");
    std::fprintf(
        out,
        "  \"mixed\": {\"lookups\": %lld, \"tiers\": "
        "{\"exact\": %lld, \"nearest\": %lld, \"negative\": %lld, "
        "\"miss\": %lld}, \"transferred\": %lld},\n",
        static_cast<long long>(mixed),
        static_cast<long long>(after.exact_hits - before.exact_hits),
        static_cast<long long>(after.nearest_hits -
                               before.nearest_hits),
        static_cast<long long>(after.negative_hits -
                               before.negative_hits),
        static_cast<long long>(after.misses - before.misses),
        static_cast<long long>(after.fallback_transferred -
                               before.fallback_transferred));
    std::fprintf(
        out,
        "  \"wal\": {\"appends\": %lld, \"appends_per_sec\": %.1f, "
        "\"first_half_p50_us\": %.3f, \"second_half_p50_us\": "
        "%.3f, \"growth_ratio\": %.3f, \"p95_us\": %.3f, "
        "\"compact_ms\": %.3f, \"replay_ms\": %.3f, "
        "\"records\": %lld, \"o1_persist\": %s},\n",
        static_cast<long long>(wal.appends), wal.appends_per_sec,
        wal.first_half_p50_us, wal.second_half_p50_us,
        wal.growth_ratio, wal.p95_us, wal.compact_ms,
        wal.replay_ms, static_cast<long long>(wal.records),
        wal_o1 ? "true" : "false");
    std::fprintf(
        out,
        "  \"graph\": {\"keys\": %lld, \"rounds\": %lld, "
        "\"sequential_lookup_us\": %.3f, \"batched_lookup_us\": "
        "%.3f, \"batched_speedup\": %.3f, \"graphs\": %lld, "
        "\"graphs_per_sec\": %.1f, \"layers_per_sec\": %.1f, "
        "\"deduped\": %lld, \"converged\": %s},\n",
        static_cast<long long>(graph.keys),
        static_cast<long long>(graph.rounds),
        graph.sequential_us, graph.batched_us,
        graph.batched_speedup,
        static_cast<long long>(graph.graphs),
        graph.graphs_per_sec, graph.layers_per_sec,
        static_cast<long long>(graph.deduped),
        graph.converged ? "true" : "false");
    std::fprintf(out, "  \"misserved\": %s\n}\n",
                 misserved.load() ? "true" : "false");
    std::fclose(out);
    std::printf("Wrote %s\n", out_path.c_str());
    if (misserved.load())
        return 2;
    return wal_o1 ? 0 : 3;
}
