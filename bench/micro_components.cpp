/**
 * @file
 * google-benchmark microbenchmarks of Heron's building blocks:
 * space generation, RandSAT solving, program binding, simulator
 * evaluation, GBDT training/prediction, and CGA offspring
 * generation. These quantify the "compilation cost" components
 * behind Table 10 / Fig. 14 in isolation.
 */
#include <benchmark/benchmark.h>

#include "csp/solver.h"
#include "hw/measurer.h"
#include "model/cost_model.h"
#include "ops/op_library.h"
#include "rules/space_generator.h"
#include "search/cga.h"

using namespace heron;

namespace {

const rules::GeneratedSpace &
gemm_space()
{
    static rules::GeneratedSpace space = [] {
        rules::SpaceGenerator gen(hw::DlaSpec::v100(),
                                  rules::Options::heron());
        return gen.generate(ops::gemm(512, 1024, 1024));
    }();
    return space;
}

void
BM_SpaceGeneration(benchmark::State &state)
{
    rules::SpaceGenerator gen(hw::DlaSpec::v100(),
                              rules::Options::heron());
    auto workload = ops::c2d(16, 64, 28, 28, 64, 3, 3, 1, 1);
    for (auto _ : state) {
        auto space = gen.generate(workload);
        benchmark::DoNotOptimize(space.csp.num_constraints());
    }
}
BENCHMARK(BM_SpaceGeneration);

void
BM_RandSatSolve(benchmark::State &state)
{
    const auto &space = gemm_space();
    csp::RandSatSolver solver(space.csp);
    Rng rng(1);
    for (auto _ : state) {
        auto a = solver.solve_one(rng);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_RandSatSolve);

void
BM_BindProgram(benchmark::State &state)
{
    const auto &space = gemm_space();
    csp::RandSatSolver solver(space.csp);
    Rng rng(2);
    auto a = solver.solve_one(rng);
    for (auto _ : state) {
        auto program = space.bind(*a);
        benchmark::DoNotOptimize(program.stages.size());
    }
}
BENCHMARK(BM_BindProgram);

void
BM_SimulatorLatency(benchmark::State &state)
{
    const auto &space = gemm_space();
    csp::RandSatSolver solver(space.csp);
    Rng rng(3);
    auto a = solver.solve_one(rng);
    auto program = space.bind(*a);
    auto sim = hw::make_simulator(space.spec);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim->latency_ms(program));
    }
}
BENCHMARK(BM_SimulatorLatency);

void
BM_GbdtFit(benchmark::State &state)
{
    const auto &space = gemm_space();
    csp::RandSatSolver solver(space.csp);
    Rng rng(4);
    model::CostModel model(space.csp);
    hw::Measurer measurer(space.spec);
    for (int i = 0; i < 128; ++i) {
        auto a = solver.solve_one(rng);
        auto r = measurer.measure(space.bind(*a));
        model.add_sample(*a, r.valid, r.latency_ms,
                         space.dag.total_ops());
    }
    for (auto _ : state)
        model.fit();
}
BENCHMARK(BM_GbdtFit);

void
BM_CgaOffspring(benchmark::State &state)
{
    const auto &space = gemm_space();
    csp::RandSatSolver solver(space.csp);
    Rng rng(5);
    model::CostModel model(space.csp);
    auto pop = solver.solve_n(rng, 16);
    for (auto _ : state) {
        auto offspring = search::constraint_crossover_mutation(
            space.csp, solver, model, pop, 8, 8, false, rng);
        benchmark::DoNotOptimize(offspring.size());
    }
}
BENCHMARK(BM_CgaOffspring);

} // namespace

BENCHMARK_MAIN();
