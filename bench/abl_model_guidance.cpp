/**
 * @file
 * Ablation (DESIGN.md): the cost model's two roles in Heron —
 * key-variable extraction for CGA crossover (vs CGA-1's random key
 * variables) and epsilon-greedy measurement selection (vs uniform
 * random selection).
 *
 * Expected shape: full Heron on top; random measurement selection
 * costs more than random key variables at moderate budgets.
 */
#include "bench_common.h"

using namespace heron;

int
main(int argc, char **argv)
{
    auto options = bench::BenchOptions::parse(argc, argv, 150);
    auto spec = hw::DlaSpec::v100();
    auto config = options.tune_config();
    auto workload = ops::gemm(512, 1024, 1024);

    struct Variant {
        std::string label;
        autotune::HeronAblation ablation;
    };
    std::vector<Variant> variants;
    {
        autotune::HeronAblation a;
        a.label = "Heron (full)";
        variants.push_back({a.label, a});
    }
    {
        autotune::HeronAblation a;
        a.label = "random key vars (CGA-1)";
        a.random_key_vars = true;
        variants.push_back({a.label, a});
    }
    {
        autotune::HeronAblation a;
        a.label = "random measure selection";
        a.random_measure_selection = true;
        variants.push_back({a.label, a});
    }
    {
        autotune::HeronAblation a;
        a.label = "both random";
        a.random_key_vars = true;
        a.random_measure_selection = true;
        variants.push_back({a.label, a});
    }

    std::printf("Model-guidance ablation on %s, %d trials, 3 "
                "seeds\n\n",
                workload.name.c_str(), options.trials);
    TextTable t({"variant", "mean best GFLOP/s", "rel. to full"});
    t.set_title("Cost-model guidance ablation");
    double full_mean = 0;
    for (const auto &variant : variants) {
        RunningStat best;
        for (uint64_t s = 0; s < 3; ++s) {
            auto cfg = config;
            cfg.seed = options.seed + s;
            auto tuner = autotune::make_heron_tuner_ablated(
                spec, cfg, variant.ablation);
            best.push(tuner->tune(workload).result.best_gflops);
        }
        if (variant.label == "Heron (full)")
            full_mean = best.mean();
        t.add_row({variant.label, TextTable::fmt(best.mean(), 0),
                   TextTable::fmt(full_mean > 0
                                      ? best.mean() / full_mean
                                      : 0,
                                  3)});
        std::fprintf(stderr, "  [%s] done\n",
                     variant.label.c_str());
    }
    std::printf("%s\n", t.to_string().c_str());
    return 0;
}
