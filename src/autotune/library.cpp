#include "autotune/library.h"

#include <sstream>

#include "codegen/emitter.h"
#include "serve/workload_key.h"
#include "support/logging.h"
#include "support/table.h"

namespace heron::autotune {

LibraryBuilder::LibraryBuilder(hw::DlaSpec spec, TuneConfig config)
    : spec_(std::move(spec)), config_(config)
{
}

namespace {

/**
 * First free dispatch symbol derived from @p base: the base itself,
 * then base_2, base_3, ... Distinct workloads may sanitize to the
 * same identifier (names are user-facing, symbols are not), and a
 * library with two same-named kernels would not link.
 */
std::string
unique_kernel_name(const std::string &base,
                   std::unordered_set<std::string> &used)
{
    std::string name = base;
    for (int suffix = 2; !used.insert(name).second; ++suffix)
        name = base + "_" + std::to_string(suffix);
    return name;
}

} // namespace

std::string
LibraryBuilder::add(ops::Workload workload)
{
    std::string signature =
        serve::canonical_signature(workload, spec_);
    auto it = signatures_.find(signature);
    if (it != signatures_.end()) {
        HERON_WARN << "library builder: duplicate workload "
                   << workload.name << " (" << signature
                   << " already queued) aliases kernel "
                   << it->second;
        return it->second;
    }
    std::string name = unique_kernel_name(
        codegen::sanitize_identifier(workload.name), used_names_);
    signatures_.emplace(std::move(signature), name);
    kernel_names_.push_back(name);
    workloads_.push_back(std::move(workload));
    return name;
}

Library
LibraryBuilder::build()
{
    Library library;
    library.spec = spec_;
    auto tuner = make_heron_tuner(spec_, config_);
    rules::SpaceGenerator generator(spec_, rules::Options::heron());

    for (size_t w = 0; w < workloads_.size(); ++w) {
        const auto &workload = workloads_[w];
        LibraryEntry entry;
        entry.workload = workload;
        entry.kernel_name = kernel_names_[w];
        if (tuner->supports(workload)) {
            auto outcome = tuner->tune(workload);
            if (outcome.result.found()) {
                entry.tuned = true;
                entry.best = outcome.result.best;
                entry.latency_ms = outcome.result.best_latency_ms;
                entry.gflops = outcome.result.best_gflops;
                auto space = generator.generate(workload);
                auto program = space.bind(entry.best);
                entry.source =
                    codegen::emit_source(space, program);
            }
        }
        library.entries.push_back(std::move(entry));
    }
    return library;
}

NetworkLibrary
LibraryBuilder::emit_network(
    const std::string &network_name,
    const std::vector<NetworkLayerSpec> &layers) const
{
    NetworkLibrary library;
    library.network = network_name;
    library.spec = spec_;
    rules::SpaceGenerator generator(spec_, rules::Options::heron());
    std::unordered_map<std::string, int> by_signature;
    std::unordered_set<std::string> used_names;

    for (const auto &layer : layers) {
        library.instances += layer.count;
        library.layer_counts.push_back(layer.count);
        std::string signature =
            serve::canonical_signature(layer.workload, spec_);
        auto existing = by_signature.find(signature);
        if (existing != by_signature.end()) {
            // Shared workload: the layer aliases the kernel already
            // emitted for the first occurrence.
            library.layer_entry.push_back(existing->second);
            ++library.deduped;
            continue;
        }

        LibraryEntry entry;
        entry.workload = layer.workload;
        entry.kernel_name = unique_kernel_name(
            codegen::sanitize_identifier(layer.workload.name),
            used_names);
        if (layer.record && !layer.record->assignment.empty()) {
            // Records come from outside (registry, store, wire), so
            // re-validate instead of trusting: the assignment must
            // bind against a freshly generated space for this shape
            // before any source is emitted from it.
            auto space = generator.generate(layer.workload);
            std::string error;
            if (auto program = space.try_bind(
                    layer.record->assignment, &error)) {
                entry.tuned = true;
                entry.best = layer.record->assignment;
                entry.latency_ms = layer.record->latency_ms;
                entry.gflops = layer.record->gflops;
                entry.source =
                    codegen::emit_source(space, *program);
                ++library.emitted;
            } else {
                HERON_WARN << "emit_network: record for "
                           << layer.workload.name
                           << " does not bind (" << error
                           << "); layer left unresolved";
            }
        }
        int index = static_cast<int>(library.entries.size());
        by_signature.emplace(std::move(signature), index);
        library.entries.push_back(std::move(entry));
        library.layer_entry.push_back(index);
    }
    return library;
}

std::string
NetworkLibrary::emit_header(const std::string &library_name) const
{
    std::ostringstream out;
    std::string ns = codegen::sanitize_identifier(library_name);
    std::string guard = ns;
    for (auto &c : guard)
        c = static_cast<char>(
            std::toupper(static_cast<unsigned char>(c)));
    out << "// " << library_name << ": generated by Heron for "
        << spec.name << " (network " << network << ", "
        << layer_entry.size() << " layers, " << instances
        << " instances, " << entries.size()
        << " distinct kernels)\n";
    out << "#ifndef " << guard << "_H\n#define " << guard
        << "_H\n\n#include <cstdint>\n\n";
    out << "namespace " << ns << " {\n\n";

    // Deduped kernels are emitted exactly once: one prototype per
    // entry, however many layers alias it.
    for (const auto &entry : entries) {
        if (!entry.tuned)
            continue;
        out << "// " << entry.workload.label() << ": "
            << static_cast<int64_t>(entry.gflops) << " GFLOP/s ("
            << entry.latency_ms << " ms)\n";
        out << "void " << entry.kernel_name
            << "(const void *inputs[], void *output);\n\n";
    }

    out << "using KernelFn = void (*)(const void *[], void *);\n\n";
    out << "/** Instances of each layer in the network. */\n";
    out << "inline int64_t\nlayer_count(int layer)\n{\n"
           "    static const int64_t counts[] = {";
    // layer_entry and the per-layer counts are parallel by
    // construction; reconstruct counts from entries is impossible
    // (aliased layers share an entry), so the header carries them.
    for (size_t i = 0; i < layer_counts.size(); ++i)
        out << (i ? ", " : "") << layer_counts[i];
    out << "};\n    if (layer < 0 || layer >= "
        << layer_counts.size() << ") return 0;\n"
           "    return counts[layer];\n}\n\n";

    out << "/** Dispatch by layer index; every layer of the\n"
           " *  network has a case. Aliased (deduped) layers\n"
           " *  return the shared kernel; unresolved layers\n"
           " *  return nullptr until tuned. */\n";
    out << "inline KernelFn\ndispatch_layer(int layer)\n{\n"
           "    switch (layer) {\n";
    for (size_t i = 0; i < layer_entry.size(); ++i) {
        int e = layer_entry[i];
        out << "      case " << i << ": ";
        if (e >= 0 &&
            static_cast<size_t>(e) < entries.size() &&
            entries[static_cast<size_t>(e)].tuned) {
            out << "return &"
                << entries[static_cast<size_t>(e)].kernel_name
                << ";";
        } else {
            out << "return nullptr; // unresolved";
        }
        out << "\n";
    }
    out << "    }\n    return nullptr;\n}\n\n";
    out << "} // namespace " << ns << "\n\n#endif\n";
    return out.str();
}

std::string
NetworkLibrary::summary() const
{
    TextTable table({"layer", "kernel", "workload", "count",
                     "GFLOP/s", "status"});
    table.set_title("Network library " + network + " for " +
                    spec.name);
    for (size_t i = 0; i < layer_entry.size(); ++i) {
        int e = layer_entry[i];
        const LibraryEntry *entry =
            e >= 0 && static_cast<size_t>(e) < entries.size()
                ? &entries[static_cast<size_t>(e)]
                : nullptr;
        table.add_row(
            {std::to_string(i),
             entry ? entry->kernel_name : "-",
             entry ? entry->workload.label() : "?",
             i < layer_counts.size()
                 ? std::to_string(layer_counts[i])
                 : "1",
             entry && entry->tuned
                 ? TextTable::fmt(entry->gflops, 0)
                 : "-",
             entry && entry->tuned ? "tuned" : "unresolved"});
    }
    return table.to_string();
}

std::string
Library::emit_header(const std::string &library_name) const
{
    std::ostringstream out;
    std::string guard = codegen::sanitize_identifier(library_name);
    for (auto &c : guard)
        c = static_cast<char>(std::toupper(
            static_cast<unsigned char>(c)));
    out << "// " << library_name << ": generated by Heron for "
        << spec.name << "\n";
    out << "#ifndef " << guard << "_H\n#define " << guard
        << "_H\n\n#include <cstdint>\n\n";
    out << "namespace " << codegen::sanitize_identifier(library_name)
        << " {\n\n";

    for (const auto &entry : entries) {
        if (!entry.tuned)
            continue;
        out << "// " << entry.workload.label() << ": "
            << static_cast<int64_t>(entry.gflops) << " GFLOP/s ("
            << entry.latency_ms << " ms)\n";
        out << "void " << entry.kernel_name
            << "(const void *inputs[], void *output);\n\n";
    }

    // Shape dispatch helper.
    out << "/** Dispatch by operator kind and shape; returns the\n"
           " *  matching tuned kernel or nullptr. */\n";
    out << "using KernelFn = void (*)(const void *[], void *);\n";
    out << "inline KernelFn\ndispatch(const char *op, const "
           "int64_t *params, int n)\n{\n";
    for (const auto &entry : entries) {
        if (!entry.tuned)
            continue;
        out << "    { // " << entry.workload.name << "\n";
        out << "        static const int64_t shape[] = {";
        for (size_t i = 0; i < entry.workload.params.size(); ++i)
            out << (i ? ", " : "") << entry.workload.params[i];
        out << "};\n";
        out << "        if (__builtin_strcmp(op, \""
            << ops::op_kind_name(entry.workload.kind)
            << "\") == 0 && n == "
            << entry.workload.params.size() << ") {\n";
        out << "            bool match = true;\n";
        out << "            for (int i = 0; i < n; ++i) match &= "
               "params[i] == shape[i];\n";
        out << "            if (match) return &" << entry.kernel_name
            << ";\n        }\n    }\n";
    }
    out << "    return nullptr;\n}\n\n";
    out << "} // namespace "
        << codegen::sanitize_identifier(library_name) << "\n\n";
    out << "#endif\n";
    return out.str();
}

std::string
Library::summary() const
{
    TextTable table({"kernel", "workload", "latency (ms)",
                     "GFLOP/s", "status"});
    table.set_title("Generated library for " + spec.name);
    for (const auto &entry : entries) {
        table.add_row({entry.kernel_name, entry.workload.label(),
                       entry.tuned
                           ? TextTable::fmt(entry.latency_ms, 4)
                           : "-",
                       entry.tuned
                           ? TextTable::fmt(entry.gflops, 0)
                           : "-",
                       entry.tuned ? "tuned" : "unsupported"});
    }
    return table.to_string();
}

} // namespace heron::autotune
