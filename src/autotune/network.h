/**
 * @file
 * Whole-network tuning (paper §7.2): tune each distinct layer with
 * a per-layer budget, then sum occurrence-weighted best latencies.
 */
#ifndef HERON_AUTOTUNE_NETWORK_H
#define HERON_AUTOTUNE_NETWORK_H

#include <string>
#include <vector>

#include "autotune/tuner.h"
#include "ops/networks.h"

namespace heron::autotune {

/** Per-layer tuning record. */
struct LayerOutcome {
    std::string layer;
    int count = 1;
    double latency_ms = 0.0;
    bool tuned = false;
};

/** Whole-network result. */
struct NetworkOutcome {
    std::string tuner;
    std::string network;
    std::vector<LayerOutcome> layers;
    /** Sum of count * per-layer latency. */
    double total_latency_ms = 0.0;
    double compile_seconds = 0.0;
    /** Layers the tuner could not handle. */
    int unsupported_layers = 0;
};

/**
 * Tune every distinct layer of @p network with @p tuner.
 * Unsupported or failed layers are charged @p fallback_factor times
 * the best latency any tuner could plausibly reach (a pessimistic
 * eager-fallback runtime), keeping totals comparable.
 */
NetworkOutcome tune_network(Tuner &tuner,
                            const ops::Network &network,
                            double fallback_factor = 4.0);

} // namespace heron::autotune

#endif // HERON_AUTOTUNE_NETWORK_H
