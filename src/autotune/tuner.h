/**
 * @file
 * End-to-end tuners: the full Heron pipeline (paper Fig. 3 /
 * Algorithm 2) and the baseline systems it is compared against.
 *
 * Every tuner shares the same DLA measurement path; they differ in
 * which search space they generate (template flavor) and how they
 * explore it:
 *
 *   Heron    Heron space    + CGA evolved on cost-model fitness,
 *                             epsilon-greedy measurement selection
 *   AutoTVM  manual space   + simulated annealing
 *   Ansor    no-tensorize   + evolutionary search
 *   AMOS     mapping space  + model-ranked random sampling
 *   AKG      polyhedral-style deterministic schedule (GEMM/C2D)
 *   Vendor   fixed expert schedule (cuDNN/oneDNN stand-in)
 */
#ifndef HERON_AUTOTUNE_TUNER_H
#define HERON_AUTOTUNE_TUNER_H

#include <memory>
#include <string>

#include "hw/fault_injection.h"
#include "hw/measurer.h"
#include "ops/op_library.h"
#include "rules/space_generator.h"
#include "search/common.h"

namespace heron::autotune {

/** Tuning budget and hyperparameters. */
struct TuneConfig {
    /** Hardware measurement budget per workload. */
    int trials = 200;
    /** CGA population size. */
    int population = 24;
    /** Model-fitness CGA generations per measurement round. */
    int generations = 3;
    /** Candidates measured per round. */
    int measure_per_round = 12;
    /** Fraction of measured candidates chosen at random. */
    double epsilon = 0.15;
    /** Key variables per CGA crossover. */
    int key_vars = 8;
    uint64_t seed = 1;
    hw::MeasureConfig measure;
    /** Solver budgets and wall-clock deadline. */
    csp::SolverConfig solver;
    /** Fault injection on the measurement path (all-zero = off). */
    hw::FaultConfig faults;
    /**
     * JSONL measurement journal for checkpoint/resume ("" = off).
     * Every measurement is appended and flushed; an existing
     * journal is replayed on startup so a killed run resumes
     * bit-identically.
     */
    std::string journal_path;
    /**
     * Consecutive rounds the solver (or candidate generation) may
     * come up empty before the tuner stops early.
     */
    int max_barren_rounds = 3;
    /**
     * Per-generation telemetry stream ("" = off): the Heron tuner
     * appends one GenerationStats JSONL record per measurement
     * round, alongside the measurement journal (see
     * support/profiler.h).
     */
    std::string telemetry_path;

    /**
     * Measurement-pool worker threads for the Heron tuner (<= 1
     * measures serially on the tuning thread). Results, journals,
     * and accounting are bit-identical across worker counts.
     */
    int measure_workers = 1;
    /**
     * Worker threads for whole-population CSP sampling (<= 1
     * samples serially on the tuning thread). The sampled
     * populations are bit-identical across worker counts — see
     * csp::SampleBatch.
     */
    int sample_workers = 1;
    /** Per-candidate watchdog deadline, wall-clock milliseconds. */
    double watchdog_deadline_ms = 2000.0;
    /** Grace after cancellation before a worker is abandoned, ms. */
    double watchdog_grace_ms = 100.0;
    /** Abandoned workers tolerated before degrading to serial. */
    int max_abandoned_workers = 2;
    /**
     * Invalid/hung strikes against one schedule signature before it
     * is quarantined for the rest of the run (0 disables).
     */
    int quarantine_threshold = 3;
    /**
     * Crash injection for the journal (testing): after this many
     * successful appends the next append is torn mid-line and the
     * journal goes dead (< 0 disables). See autotune::CrashPlan.
     */
    int64_t journal_crash_after = -1;
    /** Bytes of the fatal record reaching the file when crashing. */
    size_t journal_crash_bytes = 8;
};

/** Why a tuning run ended. */
enum class StopReason : uint8_t {
    /** Ran the full measurement budget. */
    kBudgetComplete = 0,
    /** Solver/candidate generation came up empty too many rounds. */
    kBarren,
    /** Every remaining candidate was quarantined. */
    kAllQuarantined,
    /** The solver's wall-clock deadline expired. */
    kDeadline,
};

/** Name of a stop reason ("budget-complete", "barren", ...). */
const char *stop_reason_name(StopReason reason);

/** What a tuning run produced, plus its cost accounting. */
struct TuneOutcome {
    std::string tuner;
    std::string workload;
    search::SearchResult result;
    /** Simulated hardware measurement time (dominant in Tab. 10). */
    double measure_seconds = 0.0;
    /** Wall-clock spent in search (solver + genetic operators). */
    double search_seconds = 0.0;
    /** Wall-clock spent training/querying the cost model. */
    double model_seconds = 0.0;
    /** Per-category measurement failure/retry accounting. */
    hw::MeasureStats measure_stats;
    /** Measurements restored from the journal instead of re-run. */
    int64_t replayed = 0;
    /** Why the run ended. */
    StopReason stop_reason = StopReason::kBudgetComplete;
    /** Measurements resolved by the watchdog (cancel or abandon). */
    int64_t watchdog_fires = 0;
    /** Worker threads abandoned as wedged (wall-clock domain). */
    int64_t abandoned_workers = 0;
    /** True when worker attrition degraded the pool to serial. */
    bool pool_degraded = false;
    /** Schedule signatures quarantined during this run. */
    int64_t quarantined_signatures = 0;
    /** Candidates skipped because their signature was quarantined. */
    int64_t quarantine_skips = 0;
    /**
     * Aggregated CSP solver counters for the run: the tuner's own
     * relaxation solver plus every sampling worker's engine,
     * summed via csp::SolverStats::operator+=.
     */
    csp::SolverStats solver_stats;
    /** True when span recording was on during this run. */
    bool profiled = false;
    /**
     * Decomposition drift: (search_seconds + model_seconds) minus
     * the profiler's "phase/search" + "phase/model" span totals for
     * this run. Asserted near-zero in debug builds when profiling
     * is enabled; reported in the end-of-run summary. Only the
     * wall-clock components participate — measure_seconds is
     * simulated time and reconciles against the measurer directly.
     */
    double profile_delta_seconds = 0.0;

    /** Total "compilation" time (Table 10 / Fig. 14). */
    double
    compile_seconds() const
    {
        return measure_seconds + search_seconds + model_seconds;
    }
};

/** A complete tuning system (space generation + exploration). */
class Tuner
{
  public:
    virtual ~Tuner() = default;

    /** Display name ("Heron", "AutoTVM", ...). */
    virtual std::string name() const = 0;

    /** True when the tuner supports this operator kind. */
    virtual bool supports(const ops::Workload &workload) const;

    /** The DLA this tuner targets. */
    virtual const hw::DlaSpec &spec() const = 0;

    /** Tune one workload to the configured budget. */
    virtual TuneOutcome tune(const ops::Workload &workload) = 0;
};

/** Full Heron (constrained generation + CGA, Algorithm 2). */
std::unique_ptr<Tuner> make_heron_tuner(hw::DlaSpec spec,
                                        TuneConfig config = {});

/** AutoTVM-like: manual template + simulated annealing. */
std::unique_ptr<Tuner> make_autotvm_tuner(hw::DlaSpec spec,
                                          TuneConfig config = {});

/** Ansor-like: rule template without tensorize + evolution. */
std::unique_ptr<Tuner> make_ansor_tuner(hw::DlaSpec spec,
                                        TuneConfig config = {});

/** AMOS-like: intrinsic mapping space + model-ranked sampling. */
std::unique_ptr<Tuner> make_amos_tuner(hw::DlaSpec spec,
                                       TuneConfig config = {});

/** AKG-like: deterministic polyhedral-style schedule, no search. */
std::unique_ptr<Tuner> make_akg_tuner(hw::DlaSpec spec,
                                      TuneConfig config = {});

/** Vendor hand-tuned library (cuDNN/cuBLAS/oneDNN stand-in). */
std::unique_ptr<Tuner> make_vendor_library(hw::DlaSpec spec,
                                           TuneConfig config = {});

/**
 * Heron with rule/search ablation switches, for the ablation
 * benches (rule families off, CGA-1, model-free selection).
 */
struct HeronAblation {
    rules::Options options = rules::Options::heron();
    /** CGA-1: random key variables. */
    bool random_key_vars = false;
    /** Replace epsilon-greedy by uniform measurement selection. */
    bool random_measure_selection = false;
    std::string label = "Heron";
};

std::unique_ptr<Tuner> make_heron_tuner_ablated(
    hw::DlaSpec spec, TuneConfig config, HeronAblation ablation);

} // namespace heron::autotune

#endif // HERON_AUTOTUNE_TUNER_H
