#include "autotune/record.h"

#include <cstdlib>
#include <iomanip>
#include <limits>
#include <sstream>

#include "support/json_util.h"
#include "support/logging.h"

namespace heron::autotune {

// String escaping and key extraction live in support/json_util so
// every JSONL stream (records, journal, telemetry) shares one
// implementation; they resolve here via the enclosing heron
// namespace as json_escape / json_extract.

std::string
TuningRecord::to_json() const
{
    std::ostringstream out;
    // max_digits10 keeps the double round trip bit-exact, which
    // checkpoint/resume relies on.
    out << std::setprecision(std::numeric_limits<double>::max_digits10);
    out << "{\"workload\":\"" << json_escape(workload) << "\","
        << "\"dla\":\"" << json_escape(dla) << "\","
        << "\"tuner\":\"" << json_escape(tuner) << "\","
        << "\"seq\":" << seq << ","
        << "\"cat\":\"" << json_escape(category) << "\","
        << "\"valid\":" << (valid ? 1 : 0) << ","
        << "\"latency_ms\":" << latency_ms << ","
        << "\"gflops\":" << gflops << ",\"assignment\":[";
    for (size_t i = 0; i < assignment.size(); ++i)
        out << (i ? "," : "") << assignment[i];
    out << "]}";
    return out.str();
}

std::optional<TuningRecord>
TuningRecord::from_json(const std::string &line)
{
    TuningRecord record;
    auto workload = json_extract(line, "workload");
    auto dla = json_extract(line, "dla");
    auto tuner = json_extract(line, "tuner");
    auto latency = json_extract(line, "latency_ms");
    auto gflops = json_extract(line, "gflops");
    auto assignment = json_extract(line, "assignment");
    if (!workload || !dla || !tuner || !latency || !gflops ||
        !assignment)
        return std::nullopt;
    record.workload = *workload;
    record.dla = *dla;
    record.tuner = *tuner;
    record.latency_ms = std::atof(latency->c_str());
    record.gflops = std::atof(gflops->c_str());
    // "valid" was added for measurement journaling; records written
    // before it default to valid when a throughput was recorded.
    auto valid = json_extract(line, "valid");
    record.valid = valid ? std::atoll(valid->c_str()) != 0
                         : record.gflops > 0.0;
    // "seq"/"cat" were added for stream correlation; older records
    // keep seq 0 (unstamped) and the default category.
    if (auto seq = json_extract(line, "seq"))
        record.seq = std::atoll(seq->c_str());
    if (auto cat = json_extract(line, "cat"))
        record.category = *cat;

    std::istringstream values(*assignment);
    std::string token;
    while (std::getline(values, token, ',')) {
        if (token.empty())
            continue;
        record.assignment.push_back(std::atoll(token.c_str()));
    }
    return record;
}

std::string
write_records(const std::vector<TuningRecord> &records)
{
    std::ostringstream out;
    for (const auto &record : records)
        out << record.to_json() << "\n";
    return out.str();
}

std::vector<TuningRecord>
read_records(const std::string &text, RecordReadStats *stats)
{
    std::vector<TuningRecord> records;
    RecordReadStats local;
    std::istringstream lines(text);
    std::string line;
    int64_t line_number = 0;
    while (std::getline(lines, line)) {
        ++line_number;
        if (line.empty())
            continue;
        auto record = TuningRecord::from_json(line);
        if (record) {
            records.push_back(std::move(*record));
            continue;
        }
        if (local.malformed == 0)
            local.first_bad_line = line_number;
        ++local.malformed;
    }
    if (local.malformed > 0)
        HERON_WARN << "skipped " << local.malformed
                   << " malformed tuning record(s); first at line "
                   << local.first_bad_line;
    if (stats)
        *stats = local;
    return records;
}

std::optional<hw::MeasureResult>
replay(const TuningRecord &record,
       const rules::GeneratedSpace &space, hw::Measurer &measurer)
{
    if (record.dla != measurer.spec().name) {
        HERON_WARN << "refusing to replay a '" << record.dla
                   << "' record on '" << measurer.spec().name
                   << "'";
        return std::nullopt;
    }
    if (record.assignment.size() != space.csp.num_vars())
        return std::nullopt;
    if (!space.csp.valid(record.assignment))
        return std::nullopt;
    std::string error;
    auto program = space.try_bind(record.assignment, &error);
    if (!program) {
        HERON_WARN << "cannot bind tuning record for "
                   << record.workload << ": " << error;
        return std::nullopt;
    }
    return measurer.measure(*program);
}

} // namespace heron::autotune
