#include "autotune/record.h"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "support/json_util.h"
#include "support/logging.h"
#include "support/math_util.h"

namespace heron::autotune {

// String escaping and key extraction live in support/json_util so
// every JSONL stream (records, journal, telemetry) shares one
// implementation; they resolve here via the enclosing heron
// namespace as json_escape / json_extract.

std::string
TuningRecord::to_json() const
{
    std::ostringstream out;
    // max_digits10 keeps the double round trip bit-exact, which
    // checkpoint/resume relies on.
    out << std::setprecision(std::numeric_limits<double>::max_digits10);
    out << "{\"v\":" << version << ","
        << "\"workload\":\"" << json_escape(workload) << "\","
        << "\"dla\":\"" << json_escape(dla) << "\","
        << "\"tuner\":\"" << json_escape(tuner) << "\","
        << "\"seq\":" << seq << ","
        << "\"cat\":\"" << json_escape(category) << "\","
        << "\"valid\":" << (valid ? 1 : 0) << ",";
    if (!valid && !failure.empty())
        out << "\"fail\":\"" << json_escape(failure) << "\",";
    out << "\"latency_ms\":" << latency_ms << ","
        << "\"gflops\":" << gflops << ",\"assignment\":[";
    for (size_t i = 0; i < assignment.size(); ++i)
        out << (i ? "," : "") << assignment[i];
    out << "]}";
    return out.str();
}

std::optional<TuningRecord>
TuningRecord::from_json(const std::string &line)
{
    TuningRecord record;
    auto workload = json_extract(line, "workload");
    auto dla = json_extract(line, "dla");
    auto tuner = json_extract(line, "tuner");
    auto latency = json_extract(line, "latency_ms");
    auto gflops = json_extract(line, "gflops");
    auto assignment = json_extract(line, "assignment");
    if (!workload || !dla || !tuner || !latency || !gflops ||
        !assignment)
        return std::nullopt;
    record.workload = *workload;
    record.dla = *dla;
    record.tuner = *tuner;
    record.latency_ms = std::atof(latency->c_str());
    record.gflops = std::atof(gflops->c_str());
    // "valid" was added for measurement journaling; records written
    // before it default to valid when a throughput was recorded.
    auto valid = json_extract(line, "valid");
    record.valid = valid ? std::atoll(valid->c_str()) != 0
                         : record.gflops > 0.0;
    if (!record.valid) {
        // "fail" was added with the quarantine machinery; failed
        // records written before it carry the generic category.
        auto fail = json_extract(line, "fail");
        record.failure = fail ? *fail : "invalid";
    }
    // "v" was added with the serving store; records written before
    // versioning parse as version 0 (always readable).
    auto version = json_extract(line, "v");
    record.version = version ? std::atoll(version->c_str()) : 0;
    // "seq"/"cat" were added for stream correlation; older records
    // keep seq 0 (unstamped) and the default category.
    if (auto seq = json_extract(line, "seq"))
        record.seq = std::atoll(seq->c_str());
    if (auto cat = json_extract(line, "cat"))
        record.category = *cat;

    std::istringstream values(*assignment);
    std::string token;
    while (std::getline(values, token, ',')) {
        if (token.empty())
            continue;
        record.assignment.push_back(std::atoll(token.c_str()));
    }
    return record;
}

std::string
crc_frame(const std::string &payload)
{
    std::ostringstream out;
    out << payload << "#crc32=" << std::hex << std::setw(8)
        << std::setfill('0') << crc32_str(payload);
    return out.str();
}

std::string
write_records(const std::vector<TuningRecord> &records)
{
    std::ostringstream out;
    for (const auto &record : records)
        out << crc_frame(record.to_json()) << "\n";
    return out.str();
}

namespace {

/** CRC trailer marker appended by crc_frame. */
constexpr const char kCrcMarker[] = "#crc32=";
constexpr size_t kCrcMarkerLen = sizeof(kCrcMarker) - 1;
constexpr size_t kCrcHexLen = 8;

/**
 * Verify and strip a line's CRC trailer. Returns the payload, or
 * nullopt on a mismatched trailer. Lines without a trailer are
 * legacy records and pass through unchanged.
 */
std::optional<std::string>
strip_crc(const std::string &line)
{
    size_t marker = line.rfind(kCrcMarker);
    if (marker == std::string::npos)
        return line;
    std::string payload = line.substr(0, marker);
    std::string hex = line.substr(marker + kCrcMarkerLen);
    if (hex.size() != kCrcHexLen)
        return std::nullopt;
    uint32_t stored = 0;
    for (char c : hex) {
        uint32_t digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<uint32_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<uint32_t>(c - 'a') + 10;
        else
            return std::nullopt;
        stored = stored << 4 | digit;
    }
    if (crc32_str(payload) != stored)
        return std::nullopt;
    return payload;
}

} // namespace

std::vector<TuningRecord>
read_records(const std::string &text, RecordReadStats *stats)
{
    std::vector<TuningRecord> records;
    RecordReadStats local;

    // A stream that ends without a newline was torn mid-append (a
    // crash between write and flush). The fragment is dropped even
    // when it happens to parse: a truncated number would replay a
    // silently different measurement.
    std::vector<std::string> lines;
    size_t start = 0;
    while (start <= text.size()) {
        size_t nl = text.find('\n', start);
        if (nl == std::string::npos) {
            if (start < text.size()) {
                lines.push_back(text.substr(start));
                local.recovered_truncations = 1;
            }
            break;
        }
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    size_t parse_count =
        lines.size() - (local.recovered_truncations ? 1 : 0);

    int64_t prev_seq = 0;
    for (size_t i = 0; i < parse_count; ++i) {
        const std::string &line = lines[i];
        int64_t line_number = static_cast<int64_t>(i) + 1;
        if (line.empty())
            continue;
        auto payload = strip_crc(line);
        if (!payload) {
            ++local.crc_mismatches;
            if (local.first_bad_line == 0)
                local.first_bad_line = line_number;
            continue;
        }
        auto record = TuningRecord::from_json(*payload);
        if (!record) {
            if (local.malformed == 0 && local.first_bad_line == 0)
                local.first_bad_line = line_number;
            ++local.malformed;
            continue;
        }
        if (record->version > kTuningRecordVersion) {
            // A newer build may have changed field meanings; the
            // unknown-key tolerance above only covers additions.
            ++local.version_skipped;
            continue;
        }
        if (record->seq > 0) {
            if (prev_seq > 0 && record->seq <= prev_seq)
                ++local.seq_regressions;
            prev_seq = record->seq;
        }
        records.push_back(std::move(*record));
    }

    if (local.malformed > 0)
        HERON_WARN << "skipped " << local.malformed
                   << " malformed tuning record(s); first at line "
                   << local.first_bad_line;
    if (local.crc_mismatches > 0)
        HERON_WARN << "skipped " << local.crc_mismatches
                   << " tuning record(s) failing their CRC trailer";
    if (local.recovered_truncations > 0)
        HERON_WARN << "recovered a torn journal tail (dropped one "
                      "unterminated trailing record)";
    if (local.version_skipped > 0)
        HERON_WARN << "skipped " << local.version_skipped
                   << " tuning record(s) from a newer format "
                      "version (reader understands v"
                   << kTuningRecordVersion << ")";
    if (local.seq_regressions > 0)
        HERON_WARN << "journal sequence numbers regressed "
                   << local.seq_regressions
                   << " time(s): spliced or rewound journal";
    if (stats)
        *stats = local;
    return records;
}

std::vector<TuningRecord>
read_records_file(const std::string &path, RecordReadStats *stats,
                  bool *found)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (found)
            *found = false;
        if (stats)
            *stats = {};
        return {};
    }
    if (found)
        *found = true;
    std::ostringstream text;
    text << in.rdbuf();
    return read_records(text.str(), stats);
}

std::optional<hw::MeasureResult>
replay(const TuningRecord &record,
       const rules::GeneratedSpace &space, hw::Measurer &measurer)
{
    if (record.dla != measurer.spec().name) {
        HERON_WARN << "refusing to replay a '" << record.dla
                   << "' record on '" << measurer.spec().name
                   << "'";
        return std::nullopt;
    }
    if (record.assignment.size() != space.csp.num_vars())
        return std::nullopt;
    if (!space.csp.valid(record.assignment))
        return std::nullopt;
    std::string error;
    auto program = space.try_bind(record.assignment, &error);
    if (!program) {
        HERON_WARN << "cannot bind tuning record for "
                   << record.workload << ": " << error;
        return std::nullopt;
    }
    return measurer.measure(*program);
}

} // namespace heron::autotune
