#include "autotune/checkpoint.h"

#include <sstream>

#include "support/logging.h"

namespace heron::autotune {

bool
TuningJournal::open(const std::string &path, int64_t next_seq)
{
    out_.open(path, std::ios::app);
    if (!out_.is_open()) {
        HERON_WARN << "cannot open tuning journal " << path
                   << " for appending; continuing without "
                      "durability";
        return false;
    }
    path_ = path;
    next_seq_ = next_seq > 0 ? next_seq : 1;
    return true;
}

void
TuningJournal::append(const TuningRecord &record)
{
    if (!out_.is_open())
        return;
    TuningRecord stamped = record;
    if (stamped.seq == 0)
        stamped.seq = next_seq_;
    next_seq_ = stamped.seq + 1;
    if (stamped.category.empty())
        stamped.category = "measure";
    out_ << stamped.to_json() << "\n";
    // Flush per record: a killed run loses at most the measurement
    // in flight.
    out_.flush();
}

std::vector<TuningRecord>
TuningJournal::load(const std::string &path, RecordReadStats *stats)
{
    std::ifstream in(path);
    if (!in.is_open())
        return {};
    std::ostringstream text;
    text << in.rdbuf();
    return read_records(text.str(), stats);
}

ReplayCursor::ReplayCursor(std::vector<TuningRecord> journal,
                           const std::string &workload,
                           const std::string &dla,
                           const std::string &tuner)
{
    for (auto &record : journal) {
        if (record.workload != workload || record.dla != dla ||
            record.tuner != tuner)
            continue;
        records_.push_back(std::move(record));
    }
}

const TuningRecord *
ReplayCursor::match(const csp::Assignment &a)
{
    if (next_ >= records_.size())
        return nullptr;
    const TuningRecord &record = records_[next_];
    if (record.assignment != a) {
        HERON_WARN << "tuning journal diverged at record " << next_
                   << " (seed or configuration changed?); "
                      "dropping "
                   << records_.size() - next_
                   << " remaining record(s) and measuring live";
        records_.resize(next_);
        return nullptr;
    }
    ++next_;
    return &record;
}

} // namespace heron::autotune
