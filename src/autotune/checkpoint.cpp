#include "autotune/checkpoint.h"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "support/fs_util.h"
#include "support/logging.h"

namespace heron::autotune {

namespace {

/**
 * Truncate @p path back to its last complete line when it ends
 * mid-record (torn tail of a crashed append). Returns the number of
 * bytes dropped (0 when the file was clean or absent).
 */
size_t
repair_torn_tail(const std::string &path)
{
    std::error_code ec;
    auto size = std::filesystem::file_size(path, ec);
    if (ec || size == 0)
        return 0;
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
        return 0;
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    in.close();
    if (text.empty() || text.back() == '\n')
        return 0;
    size_t keep = text.rfind('\n');
    keep = keep == std::string::npos ? 0 : keep + 1;
    std::filesystem::resize_file(path, keep, ec);
    if (ec) {
        HERON_WARN << "cannot truncate torn journal tail of "
                   << path << ": " << ec.message();
        return 0;
    }
    return text.size() - keep;
}

} // namespace

bool
TuningJournal::open(const std::string &path, int64_t next_seq)
{
    size_t dropped = repair_torn_tail(path);
    if (dropped > 0)
        HERON_WARN << "tuning journal " << path
                   << " ended mid-record; dropped " << dropped
                   << " torn byte(s) before appending";
    out_.open(path, std::ios::app);
    if (!out_.is_open()) {
        HERON_WARN << "cannot open tuning journal " << path
                   << " for appending; continuing without "
                      "durability";
        return false;
    }
    path_ = path;
    next_seq_ = next_seq > 0 ? next_seq : 1;
    return true;
}

void
TuningJournal::append(const TuningRecord &record)
{
    if (!out_.is_open() || crashed_)
        return;
    TuningRecord stamped = record;
    if (stamped.seq == 0)
        stamped.seq = next_seq_;
    next_seq_ = stamped.seq + 1;
    if (stamped.category.empty())
        stamped.category = "measure";
    std::string line = crc_frame(stamped.to_json());
    if (crash_.after_records >= 0 &&
        appended_ >= crash_.after_records) {
        // Injected kill mid-write: part of the line reaches the
        // file, the newline and CRC tail do not, and the journal is
        // dead from here on.
        out_ << line.substr(0,
                            std::min(crash_.partial_bytes,
                                     line.size()));
        out_.flush();
        crashed_ = true;
        return;
    }
    out_ << line << "\n";
    // Flush per record: a killed run loses at most the measurement
    // in flight.
    out_.flush();
    ++appended_;
}

std::vector<TuningRecord>
TuningJournal::load(const std::string &path, RecordReadStats *stats)
{
    std::ifstream in(path);
    if (!in.is_open())
        return {};
    std::ostringstream text;
    text << in.rdbuf();
    return read_records(text.str(), stats);
}

bool
TuningJournal::write_snapshot(const std::string &path,
                              const std::vector<TuningRecord>
                                  &records)
{
    return atomic_write_file(path, write_records(records));
}

ReplayCursor::ReplayCursor(std::vector<TuningRecord> journal,
                           const std::string &workload,
                           const std::string &dla,
                           const std::string &tuner)
{
    for (auto &record : journal) {
        if (record.workload != workload || record.dla != dla ||
            record.tuner != tuner)
            continue;
        // Only measurements replay; event records (e.g. quarantine
        // decisions) are derived state the tuner rebuilds from the
        // measurements themselves.
        if (record.category != "measure")
            continue;
        records_.push_back(std::move(record));
    }
}

const TuningRecord *
ReplayCursor::match(const csp::Assignment &a)
{
    if (next_ >= records_.size())
        return nullptr;
    const TuningRecord &record = records_[next_];
    if (record.assignment != a) {
        HERON_WARN << "tuning journal diverged at record " << next_
                   << " (seed or configuration changed?); "
                      "dropping "
                   << records_.size() - next_
                   << " remaining record(s) and measuring live";
        records_.resize(next_);
        return nullptr;
    }
    ++next_;
    return &record;
}

} // namespace heron::autotune
