/**
 * @file
 * Checkpoint/resume for tuning runs.
 *
 * A tuning run journals every measurement as one JSONL TuningRecord
 * line, flushed incrementally, so a crashed or killed run loses at
 * most the measurement in flight. On resume the tuner replays the
 * journal: already-measured assignments are restored (best-so-far,
 * cost-model warm start, measurement counters) without touching the
 * hardware, and because every random stream is derived rather than
 * sequential, the resumed run continues bit-identically to an
 * uninterrupted one.
 */
#ifndef HERON_AUTOTUNE_CHECKPOINT_H
#define HERON_AUTOTUNE_CHECKPOINT_H

#include <fstream>
#include <string>
#include <vector>

#include "autotune/record.h"

namespace heron::autotune {

/**
 * Crash-injection plan for the journal (testing only): after
 * @p after_records successful appends, the next append writes only
 * the first @p partial_bytes of its line — no newline, no CRC tail —
 * and the journal goes dead, simulating a kill mid-write. The torn
 * tail must then be recovered on the next open/load.
 */
struct CrashPlan {
    /** Appends to complete before crashing (< 0 disables). */
    int64_t after_records = -1;
    /** Bytes of the fatal record actually reaching the file. */
    size_t partial_bytes = 8;
};

/** Append-only JSONL measurement journal with CRC-framed lines. */
class TuningJournal
{
  public:
    TuningJournal() = default;

    /**
     * Open @p path for appending (existing records are kept). When
     * the file ends mid-line — the torn tail of a crashed append —
     * it is truncated back to the last complete line first, so new
     * records never concatenate onto a fragment.
     * @param next_seq sequence number for the next appended record;
     *        pass max(seq)+1 of the already-loaded records when
     *        resuming so numbering stays monotonic across the crash.
     * @return false when the file cannot be opened for writing.
     */
    bool open(const std::string &path, int64_t next_seq = 1);

    bool is_open() const { return out_.is_open(); }

    /** Journaled path ("" when not open). */
    const std::string &path() const { return path_; }

    /**
     * Append one record — CRC-framed via crc_frame — and flush it
     * to disk immediately. Records with seq 0 are stamped with the
     * journal's monotonic sequence number; pre-stamped records
     * advance it.
     */
    void append(const TuningRecord &record);

    /** Sequence number the next appended record will receive. */
    int64_t next_seq() const { return next_seq_; }

    /** Arm crash injection (testing; see CrashPlan). */
    void set_crash_plan(const CrashPlan &plan) { crash_ = plan; }

    /** True once an injected crash killed the journal. */
    bool crashed() const { return crashed_; }

    /**
     * Load all records from @p path. A missing file yields an empty
     * journal (fresh run); malformed lines are skipped and counted
     * via read_records.
     */
    static std::vector<TuningRecord>
    load(const std::string &path,
         RecordReadStats *stats = nullptr);

    /**
     * Write a point-in-time snapshot of @p records to @p path via
     * atomic replace (temp file + fsync + rename): the snapshot is
     * either the previous complete one or the new complete one,
     * never a torn intermediate.
     */
    static bool write_snapshot(const std::string &path,
                               const std::vector<TuningRecord>
                                   &records);

  private:
    std::ofstream out_;
    std::string path_;
    int64_t next_seq_ = 1;
    CrashPlan crash_;
    int64_t appended_ = 0;
    bool crashed_ = false;
};

/**
 * Replay cursor over the journaled records of one tuning run
 * (filtered to a workload/DLA/tuner triple). The tuner asks it for
 * each assignment about to be measured: while the journal matches,
 * measurements are restored instead of re-run; at the first
 * divergence (changed seed or configuration) the remaining tail is
 * dropped with a warning and measurement goes live.
 */
class ReplayCursor
{
  public:
    ReplayCursor() = default;

    /** Filter @p journal down to records of this tuning run. */
    ReplayCursor(std::vector<TuningRecord> journal,
                 const std::string &workload,
                 const std::string &dla, const std::string &tuner);

    /**
     * The journaled record for the next measurement, or nullptr
     * when the journal is exhausted or @p a diverges from it (the
     * tail is dropped on divergence).
     */
    const TuningRecord *match(const csp::Assignment &a);

    /** Records replayed so far. */
    int64_t replayed() const { return static_cast<int64_t>(next_); }

    /** Records remaining to replay. */
    size_t remaining() const { return records_.size() - next_; }

  private:
    std::vector<TuningRecord> records_;
    size_t next_ = 0;
};

} // namespace heron::autotune

#endif // HERON_AUTOTUNE_CHECKPOINT_H
