/**
 * @file
 * Tuning records: persist best configurations as JSON-lines (the
 * AutoTVM-log workflow) so tuned libraries can be rebuilt, shipped,
 * or replayed without re-searching.
 */
#ifndef HERON_AUTOTUNE_RECORD_H
#define HERON_AUTOTUNE_RECORD_H

#include <optional>
#include <string>
#include <vector>

#include "csp/csp.h"
#include "hw/measurer.h"
#include "rules/space_generator.h"

namespace heron::autotune {

/** One persisted tuning result. */
struct TuningRecord {
    std::string workload;
    std::string dla;
    std::string tuner;
    double latency_ms = 0.0;
    double gflops = 0.0;
    csp::Assignment assignment;

    /** One-line JSON encoding. */
    std::string to_json() const;

    /** Parse a line produced by to_json(); nullopt on malformed
     * input. */
    static std::optional<TuningRecord>
    from_json(const std::string &line);
};

/** Serialize records as JSON lines. */
std::string write_records(const std::vector<TuningRecord> &records);

/** Parse JSON-lines text; malformed lines are skipped. */
std::vector<TuningRecord> read_records(const std::string &text);

/**
 * Replay a record against a freshly generated space: bind its
 * assignment and re-measure. Returns nullopt when the assignment
 * no longer fits the space (e.g. generator options changed).
 */
std::optional<hw::MeasureResult>
replay(const TuningRecord &record,
       const rules::GeneratedSpace &space, hw::Measurer &measurer);

} // namespace heron::autotune

#endif // HERON_AUTOTUNE_RECORD_H
