/**
 * @file
 * Tuning records: persist best configurations as JSON-lines (the
 * AutoTVM-log workflow) so tuned libraries can be rebuilt, shipped,
 * or replayed without re-searching.
 */
#ifndef HERON_AUTOTUNE_RECORD_H
#define HERON_AUTOTUNE_RECORD_H

#include <optional>
#include <string>
#include <vector>

#include "csp/csp.h"
#include "hw/measurer.h"
#include "rules/space_generator.h"

namespace heron::autotune {

/**
 * Newest record format this reader understands. Bump when a format
 * change is *incompatible* (a field is redefined or re-keyed), not
 * when fields are merely added: parsing extracts by key and ignores
 * unknown keys, so additive evolution needs no version bump and old
 * readers keep working. read_records skips records from a newer
 * version (counting them in RecordReadStats::version_skipped)
 * instead of misreading them.
 */
inline constexpr int64_t kTuningRecordVersion = 1;

/** One persisted tuning result. */
struct TuningRecord {
    /**
     * Format version stamped into the JSON ("v"). Records written
     * before versioning parse as version 0, which is readable.
     */
    int64_t version = kTuningRecordVersion;
    std::string workload;
    std::string dla;
    std::string tuner;
    /**
     * Monotonic sequence number within one journal (1-based;
     * stamped by TuningJournal::append when left at 0). Lets the
     * journal be correlated with trace/metrics/telemetry streams
     * after a crash-resume.
     */
    int64_t seq = 0;
    /** Record category tag ("measure" for journaled measurements). */
    std::string category = "measure";
    /** False for a journaled measurement that failed. */
    bool valid = true;
    /**
     * Failure category name ("invalid", "hung", ...) of a !valid
     * record; empty for valid records. Distinguishes quarantining
     * failures from ordinary invalid programs on resume.
     */
    std::string failure;
    double latency_ms = 0.0;
    double gflops = 0.0;
    csp::Assignment assignment;

    /**
     * One-line JSON encoding. Doubles are written with full
     * round-trip precision so a journal replay restores them
     * bit-identically.
     */
    std::string to_json() const;

    /** Parse a line produced by to_json(); nullopt on malformed
     * input. */
    static std::optional<TuningRecord>
    from_json(const std::string &line);
};

/** Serialize records as JSON lines (CRC-framed; see crc_frame). */
std::string write_records(const std::vector<TuningRecord> &records);

/**
 * Frame one journal payload with its integrity trailer:
 * `<payload>#crc32=xxxxxxxx` (8 lowercase hex digits over the
 * payload bytes). read_records verifies the trailer and treats a
 * mismatch as corruption; lines without a trailer parse as legacy
 * records.
 */
std::string crc_frame(const std::string &payload);

/** Accounting for read_records. */
struct RecordReadStats {
    /** Malformed lines skipped. */
    int64_t malformed = 0;
    /** 1-based line number of the first malformed line (0 = none). */
    int64_t first_bad_line = 0;
    /** Lines whose CRC trailer did not match their payload. */
    int64_t crc_mismatches = 0;
    /**
     * Torn tails recovered: 1 when the text ended mid-record (no
     * trailing newline) and the fragment was dropped, else 0. A torn
     * tail is the expected signature of a crash mid-append and is
     * recoverable; it is *not* counted as malformed.
     */
    int64_t recovered_truncations = 0;
    /**
     * Stamped sequence numbers that failed to increase over their
     * predecessor — the signature of a spliced or rewound journal.
     */
    int64_t seq_regressions = 0;
    /**
     * Well-formed records skipped because their version is newer
     * than kTuningRecordVersion (a store written by a newer build).
     * Not corruption: the rest of the stream stays loadable.
     */
    int64_t version_skipped = 0;

    /** True when the stream shows real corruption (not a torn tail). */
    bool corrupt() const
    {
        return malformed > 0 || crc_mismatches > 0 ||
               seq_regressions > 0;
    }
};

/**
 * Parse JSON-lines text. Malformed or CRC-mismatched lines are
 * skipped and counted (one warning summarizes them); an unterminated
 * final line is dropped as a recovered torn tail. Pass @p stats to
 * receive the accounting.
 */
std::vector<TuningRecord> read_records(const std::string &text,
                                       RecordReadStats *stats =
                                           nullptr);

/**
 * Read a CRC-framed JSONL file through read_records. @p found
 * (optional) reports whether the file could be opened at all —
 * distinguishing "missing store" from "empty store" — and @p stats
 * receives the read accounting. Shared by the serving registry and
 * the durable store's replay path so both agree on torn-tail and
 * corruption semantics.
 */
std::vector<TuningRecord> read_records_file(
    const std::string &path, RecordReadStats *stats = nullptr,
    bool *found = nullptr);

/**
 * Replay a record against a freshly generated space: bind its
 * assignment and re-measure. Returns nullopt (with a warning) when
 * the record's DLA does not match the measurer's, or when the
 * assignment no longer fits the space (e.g. generator options
 * changed).
 */
std::optional<hw::MeasureResult>
replay(const TuningRecord &record,
       const rules::GeneratedSpace &space, hw::Measurer &measurer);

} // namespace heron::autotune

#endif // HERON_AUTOTUNE_RECORD_H
