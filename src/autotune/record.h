/**
 * @file
 * Tuning records: persist best configurations as JSON-lines (the
 * AutoTVM-log workflow) so tuned libraries can be rebuilt, shipped,
 * or replayed without re-searching.
 */
#ifndef HERON_AUTOTUNE_RECORD_H
#define HERON_AUTOTUNE_RECORD_H

#include <optional>
#include <string>
#include <vector>

#include "csp/csp.h"
#include "hw/measurer.h"
#include "rules/space_generator.h"

namespace heron::autotune {

/** One persisted tuning result. */
struct TuningRecord {
    std::string workload;
    std::string dla;
    std::string tuner;
    /**
     * Monotonic sequence number within one journal (1-based;
     * stamped by TuningJournal::append when left at 0). Lets the
     * journal be correlated with trace/metrics/telemetry streams
     * after a crash-resume.
     */
    int64_t seq = 0;
    /** Record category tag ("measure" for journaled measurements). */
    std::string category = "measure";
    /** False for a journaled measurement that failed. */
    bool valid = true;
    double latency_ms = 0.0;
    double gflops = 0.0;
    csp::Assignment assignment;

    /**
     * One-line JSON encoding. Doubles are written with full
     * round-trip precision so a journal replay restores them
     * bit-identically.
     */
    std::string to_json() const;

    /** Parse a line produced by to_json(); nullopt on malformed
     * input. */
    static std::optional<TuningRecord>
    from_json(const std::string &line);
};

/** Serialize records as JSON lines. */
std::string write_records(const std::vector<TuningRecord> &records);

/** Accounting for read_records. */
struct RecordReadStats {
    /** Malformed lines skipped. */
    int64_t malformed = 0;
    /** 1-based line number of the first malformed line (0 = none). */
    int64_t first_bad_line = 0;
};

/**
 * Parse JSON-lines text. Malformed lines are skipped and counted
 * (one warning summarizes them); pass @p stats to receive the count.
 */
std::vector<TuningRecord> read_records(const std::string &text,
                                       RecordReadStats *stats =
                                           nullptr);

/**
 * Replay a record against a freshly generated space: bind its
 * assignment and re-measure. Returns nullopt (with a warning) when
 * the record's DLA does not match the measurer's, or when the
 * assignment no longer fits the space (e.g. generator options
 * changed).
 */
std::optional<hw::MeasureResult>
replay(const TuningRecord &record,
       const rules::GeneratedSpace &space, hw::Measurer &measurer);

} // namespace heron::autotune

#endif // HERON_AUTOTUNE_RECORD_H
