#include "autotune/tuner.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "autotune/checkpoint.h"
#include "model/cost_model.h"
#include "search/algorithms.h"
#include "search/cga.h"
#include "support/logging.h"
#include "support/math_util.h"

namespace heron::autotune {

using csp::Assignment;
using csp::RandSatSolver;
using csp::VarId;
using schedule::LoopRole;
using search::Evaluator;
using search::SearchConfig;

namespace {

using Clock = std::chrono::steady_clock;

double
seconds_since(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

uint64_t
hash_assignment(const Assignment &a)
{
    uint64_t h = 0x9e3779b9;
    for (int64_t v : a)
        h = hash_combine(h, static_cast<uint64_t>(v));
    return h;
}

/** Common base: holds the DLA spec and config. */
class TunerBase : public Tuner
{
  public:
    TunerBase(hw::DlaSpec spec, TuneConfig config)
        : spec_(std::move(spec)), config_(config)
    {
    }

    bool
    supports(const ops::Workload &workload) const override
    {
        if (spec_.kind == hw::DlaKind::kVta ||
            spec_.kind == hw::DlaKind::kTpu)
            return rules::workload_tensorizable(spec_, workload);
        return true;
    }

    const hw::DlaSpec &spec() const override { return spec_; }

  protected:
    hw::DlaSpec spec_;
    TuneConfig config_;

    hw::MeasureConfig
    measure_config() const
    {
        hw::MeasureConfig mc = config_.measure;
        mc.seed = config_.seed * 7919 + 13;
        return mc;
    }

    /** Measurer honoring the configured fault injection. */
    std::unique_ptr<hw::Measurer>
    make_tuner_measurer() const
    {
        return hw::make_measurer(spec_, measure_config(),
                                 config_.faults);
    }
};

/** The full Heron pipeline (Algorithm 2), with ablation knobs. */
class HeronTuner : public TunerBase
{
  public:
    HeronTuner(hw::DlaSpec spec, TuneConfig config,
               HeronAblation ablation)
        : TunerBase(std::move(spec), config),
          ablation_(std::move(ablation))
    {
    }

    std::string name() const override { return ablation_.label; }

    TuneOutcome
    tune(const ops::Workload &workload) override
    {
        TuneOutcome outcome;
        outcome.tuner = name();
        outcome.workload = workload.name;

        auto search_start = Clock::now();
        rules::SpaceGenerator generator(spec_, ablation_.options);
        auto space = generator.generate(workload);
        RandSatSolver solver(space.csp, config_.solver);
        auto measurer = make_tuner_measurer();
        Evaluator evaluator(space, *measurer);
        model::CostModel model(space.csp);
        Rng rng(config_.seed);

        // Checkpoint/resume: replay the journal's prefix instead of
        // re-measuring, then append every live measurement.
        TuningJournal journal;
        ReplayCursor replay;
        if (!config_.journal_path.empty()) {
            replay = ReplayCursor(
                TuningJournal::load(config_.journal_path),
                workload.name, spec_.name, name());
            if (replay.remaining() > 0) {
                HERON_INFO << "resuming " << workload.name
                           << " from journal ("
                           << replay.remaining()
                           << " measurement(s) to replay)";
            }
            journal.open(config_.journal_path);
        }
        outcome.search_seconds += seconds_since(search_start);

        std::unordered_set<uint64_t> measured;
        // (assignment, measured score) for survivor selection.
        std::vector<std::pair<Assignment, double>> archive;
        // Rounds in a row the solver/candidate pool came up empty;
        // a few barren rounds are survivable (randomized restarts),
        // a streak means the space is exhausted.
        int barren_rounds = 0;

        while (evaluator.count() < config_.trials) {
            auto round_start = Clock::now();
            // Step 1: first generation = survivors + random valid.
            std::vector<Assignment> pop;
            {
                std::vector<size_t> order(archive.size());
                for (size_t i = 0; i < order.size(); ++i)
                    order[i] = i;
                std::stable_sort(
                    order.begin(), order.end(),
                    [&](size_t a, size_t b) {
                        return archive[a].second > archive[b].second;
                    });
                size_t survivors = std::min<size_t>(
                    order.size(),
                    static_cast<size_t>(config_.population / 2));
                for (size_t i = 0; i < survivors; ++i)
                    pop.push_back(archive[order[i]].first);
            }
            int need = config_.population -
                       static_cast<int>(pop.size());
            for (auto &a : solver.solve_n(rng, std::max(need, 1)))
                pop.push_back(std::move(a));
            if (pop.empty()) {
                // Degrade gracefully: a randomized solver can fail
                // a whole round (budget/deadline) and still succeed
                // on the next attempt.
                if (++barren_rounds >= config_.max_barren_rounds) {
                    HERON_WARN
                        << "solver produced no candidates for "
                        << barren_rounds << " round(s) ("
                        << csp::solve_failure_name(
                               solver.last_failure())
                        << "); stopping " << workload.name
                        << " early";
                    break;
                }
                continue;
            }

            // Step 2: evolve for several generations on predicted
            // fitness.
            if (model.trained()) {
                for (int g = 0; g < config_.generations; ++g) {
                    auto model_start = Clock::now();
                    std::vector<double> fitness;
                    fitness.reserve(pop.size());
                    for (const auto &a : pop)
                        fitness.push_back(
                            std::max(0.0, model.predict(a)));
                    outcome.model_seconds +=
                        seconds_since(model_start);

                    auto parents = search::roulette_select(
                        pop, fitness, config_.population, rng);
                    auto offspring =
                        search::constraint_crossover_mutation(
                            space.csp, solver, model, parents,
                            config_.population, config_.key_vars,
                            ablation_.random_key_vars, rng);
                    pop = std::move(parents);
                    for (auto &child : offspring)
                        pop.push_back(std::move(child));
                }
            }

            // Step 3: epsilon-greedy measurement selection.
            std::vector<Assignment> candidates;
            for (auto &a : pop) {
                uint64_t h = hash_assignment(a);
                if (measured.count(h))
                    continue;
                candidates.push_back(std::move(a));
            }
            if (candidates.empty()) {
                auto extra = solver.solve_n(rng, 4);
                for (auto &a : extra)
                    candidates.push_back(std::move(a));
                if (candidates.empty()) {
                    if (++barren_rounds >=
                        config_.max_barren_rounds) {
                        HERON_WARN << "no unmeasured candidates "
                                      "for "
                                   << barren_rounds
                                   << " round(s); stopping "
                                   << workload.name << " early";
                        break;
                    }
                    continue;
                }
            }
            barren_rounds = 0;
            int budget_left =
                config_.trials - static_cast<int>(evaluator.count());
            int to_measure = std::min(
                {config_.measure_per_round, budget_left,
                 static_cast<int>(candidates.size())});

            std::vector<size_t> pick_order(candidates.size());
            for (size_t i = 0; i < pick_order.size(); ++i)
                pick_order[i] = i;
            if (model.trained() &&
                !ablation_.random_measure_selection) {
                auto model_start = Clock::now();
                std::vector<double> predicted(candidates.size());
                for (size_t i = 0; i < candidates.size(); ++i)
                    predicted[i] = model.predict(candidates[i]);
                std::stable_sort(pick_order.begin(),
                                 pick_order.end(),
                                 [&](size_t a, size_t b) {
                                     return predicted[a] >
                                            predicted[b];
                                 });
                outcome.model_seconds += seconds_since(model_start);
                // epsilon fraction replaced by random picks.
                int random_picks = static_cast<int>(
                    config_.epsilon * to_measure);
                for (int i = 0; i < random_picks; ++i) {
                    size_t j =
                        rng.index(pick_order.size() -
                                  static_cast<size_t>(i)) +
                        static_cast<size_t>(i);
                    std::swap(pick_order[static_cast<size_t>(i)],
                              pick_order[j]);
                }
            } else {
                rng.shuffle(pick_order);
            }
            outcome.search_seconds += seconds_since(round_start);

            // Step 4: measure (or replay from the journal) and
            // update the model. Failed measurements score 0 and the
            // round carries on — a tuning run survives rounds where
            // every measurement fails.
            for (int i = 0; i < to_measure; ++i) {
                const Assignment &a =
                    candidates[pick_order[static_cast<size_t>(i)]];
                double score;
                if (const TuningRecord *rec = replay.match(a)) {
                    score = evaluator.replay(a, rec->valid,
                                             rec->latency_ms,
                                             rec->gflops);
                } else {
                    score = evaluator.measure(a);
                    if (journal.is_open()) {
                        const hw::MeasureResult &mr =
                            evaluator.last_result();
                        TuningRecord rec;
                        rec.workload = workload.name;
                        rec.dla = spec_.name;
                        rec.tuner = name();
                        rec.valid = mr.valid;
                        rec.latency_ms = mr.latency_ms;
                        rec.gflops = mr.gflops;
                        rec.assignment = a;
                        journal.append(rec);
                    }
                }
                measured.insert(hash_assignment(a));
                model.add_scored_sample(a, score);
                archive.emplace_back(a, score);
            }
            auto fit_start = Clock::now();
            model.fit();
            outcome.model_seconds += seconds_since(fit_start);
        }

        outcome.result = evaluator.result();
        outcome.measure_seconds = measurer->simulated_seconds();
        outcome.measure_stats = measurer->stats();
        outcome.replayed = replay.replayed();
        return outcome;
    }

  private:
    HeronAblation ablation_;
};

/** Wraps one of the search-module algorithms over a fixed flavor. */
class SearchTuner : public TunerBase
{
  public:
    using Algorithm = search::SearchResult (*)(
        const rules::GeneratedSpace &, hw::Measurer &,
        const SearchConfig &);

    SearchTuner(hw::DlaSpec spec, TuneConfig config,
                std::string name, rules::Options options,
                Algorithm algorithm)
        : TunerBase(std::move(spec), config), name_(std::move(name)),
          options_(options), algorithm_(algorithm)
    {
    }

    std::string name() const override { return name_; }

    bool
    supports(const ops::Workload &workload) const override
    {
        if (spec_.kind == hw::DlaKind::kVta ||
            spec_.kind == hw::DlaKind::kTpu) {
            if (!options_.enable_tensorize)
                return false; // no scalar fallback
            return rules::workload_tensorizable(spec_, workload);
        }
        return true;
    }

    TuneOutcome
    tune(const ops::Workload &workload) override
    {
        TuneOutcome outcome;
        outcome.tuner = name_;
        outcome.workload = workload.name;

        auto start = Clock::now();
        rules::SpaceGenerator generator(spec_, options_);
        auto space = generator.generate(workload);
        auto measurer = make_tuner_measurer();

        SearchConfig sc;
        sc.trials = config_.trials;
        sc.population = config_.population;
        sc.seed = config_.seed;
        outcome.result = algorithm_(space, *measurer, sc);
        outcome.search_seconds = seconds_since(start);
        outcome.measure_seconds = measurer->simulated_seconds();
        outcome.measure_stats = measurer->stats();
        return outcome;
    }

  private:
    std::string name_;
    rules::Options options_;
    Algorithm algorithm_;
};

/** AMOS-like: model-ranked random sampling of valid mappings. */
class AmosTuner : public TunerBase
{
  public:
    AmosTuner(hw::DlaSpec spec, TuneConfig config)
        : TunerBase(std::move(spec), config)
    {
    }

    std::string name() const override { return "AMOS"; }

    TuneOutcome
    tune(const ops::Workload &workload) override
    {
        TuneOutcome outcome;
        outcome.tuner = name();
        outcome.workload = workload.name;

        auto start = Clock::now();
        rules::SpaceGenerator generator(spec_,
                                        rules::Options::amos());
        auto space = generator.generate(workload);
        RandSatSolver solver(space.csp, config_.solver);
        auto measurer = make_tuner_measurer();
        Evaluator evaluator(space, *measurer);
        model::CostModel model(space.csp);
        Rng rng(config_.seed);

        while (evaluator.count() < config_.trials) {
            auto pool =
                solver.solve_n(rng, 3 * config_.measure_per_round);
            if (pool.empty())
                break;
            std::vector<size_t> order(pool.size());
            for (size_t i = 0; i < order.size(); ++i)
                order[i] = i;
            if (model.trained()) {
                auto model_start = Clock::now();
                std::vector<double> predicted(pool.size());
                for (size_t i = 0; i < pool.size(); ++i)
                    predicted[i] = model.predict(pool[i]);
                std::stable_sort(order.begin(), order.end(),
                                 [&](size_t a, size_t b) {
                                     return predicted[a] >
                                            predicted[b];
                                 });
                outcome.model_seconds += seconds_since(model_start);
            } else {
                rng.shuffle(order);
            }
            int budget_left =
                config_.trials - static_cast<int>(evaluator.count());
            int to_measure =
                std::min({config_.measure_per_round, budget_left,
                          static_cast<int>(pool.size())});
            for (int i = 0; i < to_measure; ++i) {
                const Assignment &a =
                    pool[order[static_cast<size_t>(i)]];
                double score = evaluator.measure(a);
                model.add_scored_sample(a, score);
            }
            auto fit_start = Clock::now();
            model.fit();
            outcome.model_seconds += seconds_since(fit_start);
        }
        outcome.result = evaluator.result();
        outcome.search_seconds =
            seconds_since(start) - outcome.model_seconds;
        outcome.measure_seconds = measurer->simulated_seconds();
        outcome.measure_stats = measurer->stats();
        return outcome;
    }
};

/**
 * A fixed-recipe scheduler: preferences per loop role decoded to
 * the nearest feasible configuration. Used for both the vendor
 * library stand-in and the AKG-like polyhedral heuristic, with
 * different recipes.
 */
class RecipeTuner : public TunerBase
{
  public:
    struct Recipe {
        int64_t vthread = 1;
        int64_t thread = 2;
        int64_t spatial_serial = 4;
        int64_t reduce_serial = 4;
        int64_t buffer = 8;
        int64_t intrinsic_spatial = 16;
        int64_t vector_len = 8;
        int64_t pad = 8;
        int64_t unroll = 4;
    };

    RecipeTuner(hw::DlaSpec spec, TuneConfig config,
                std::string name, std::vector<Recipe> recipes,
                bool gemm_conv_only)
        : TunerBase(std::move(spec), config), name_(std::move(name)),
          recipes_(std::move(recipes)),
          gemm_conv_only_(gemm_conv_only)
    {
        HERON_CHECK(!recipes_.empty());
    }

    std::string name() const override { return name_; }

    bool
    supports(const ops::Workload &workload) const override
    {
        if (gemm_conv_only_ &&
            workload.kind != ops::OpKind::kGemm &&
            workload.kind != ops::OpKind::kC2d)
            return false;
        return TunerBase::supports(workload);
    }

    TuneOutcome
    tune(const ops::Workload &workload) override
    {
        TuneOutcome outcome;
        outcome.tuner = name_;
        outcome.workload = workload.name;

        auto start = Clock::now();
        rules::SpaceGenerator generator(spec_,
                                        rules::Options::heron());
        auto space = generator.generate(workload);
        auto measurer = make_tuner_measurer();
        Evaluator evaluator(space, *measurer);
        Rng rng(config_.seed);

        // A library ships several kernel variants and dispatches by
        // an internal heuristic; model that as trying each recipe.
        for (const Recipe &recipe : recipes_) {
            auto prefs = build_preferences(space, recipe);
            auto a = search::solve_with_preferences(space.csp, prefs,
                                                    rng);
            if (a)
                evaluator.measure(*a);
            else
                evaluator.measure_failure();
        }
        outcome.result = evaluator.result();
        outcome.search_seconds = seconds_since(start);
        outcome.measure_seconds = measurer->simulated_seconds();
        outcome.measure_stats = measurer->stats();
        return outcome;
    }

  private:
    std::string name_;
    std::vector<Recipe> recipes_;
    bool gemm_conv_only_;

    std::unordered_map<VarId, int64_t>
    build_preferences(const rules::GeneratedSpace &space,
                      const Recipe &recipe) const
    {
        std::unordered_map<VarId, int64_t> prefs;
        for (const auto &plan : space.tmpl.stages) {
            if (plan.role != schedule::StageRole::kMain) {
                VarId vec = space.csp.find_var("vec." + plan.name);
                if (vec >= 0)
                    prefs[vec] = recipe.vector_len;
                VarId pad = space.csp.find_var("pad." + plan.name);
                if (pad >= 0)
                    prefs[pad] = recipe.pad;
                VarId loc = space.csp.find_var("loc." + plan.name);
                if (loc >= 0)
                    prefs[loc] = 0; // outermost reduce attach
                continue;
            }
            VarId unroll =
                space.csp.find_var("unroll." + plan.name);
            if (unroll >= 0)
                prefs[unroll] = recipe.unroll;
            for (const auto &axis : plan.axes) {
                for (int l = 1; l < axis.num_levels(); ++l) {
                    VarId tile = space.csp.find_var(
                        "tile." + axis.level_name(plan.name, l));
                    if (tile < 0)
                        continue;
                    prefs[tile] = preference_for(
                        recipe, axis.roles[static_cast<size_t>(l)],
                        axis.reduce);
                }
            }
        }
        return prefs;
    }

    static int64_t
    preference_for(const Recipe &recipe, LoopRole role, bool reduce)
    {
        switch (role) {
          case LoopRole::kVThread: return recipe.vthread;
          case LoopRole::kThread: return recipe.thread;
          case LoopRole::kBuffer: return recipe.buffer;
          case LoopRole::kIntrinsic:
            return reduce ? 16 : recipe.intrinsic_spatial;
          case LoopRole::kSerial:
          default:
            return reduce ? recipe.reduce_serial
                          : recipe.spatial_serial;
        }
    }
};

} // namespace

bool
Tuner::supports(const ops::Workload &) const
{
    return true;
}

std::unique_ptr<Tuner>
make_heron_tuner(hw::DlaSpec spec, TuneConfig config)
{
    return std::make_unique<HeronTuner>(std::move(spec), config,
                                        HeronAblation{});
}

std::unique_ptr<Tuner>
make_heron_tuner_ablated(hw::DlaSpec spec, TuneConfig config,
                         HeronAblation ablation)
{
    return std::make_unique<HeronTuner>(std::move(spec), config,
                                        std::move(ablation));
}

std::unique_ptr<Tuner>
make_autotvm_tuner(hw::DlaSpec spec, TuneConfig config)
{
    return std::make_unique<SearchTuner>(
        std::move(spec), config, "AutoTVM",
        rules::Options::autotvm(),
        &search::template_consistent_sa);
}

std::unique_ptr<Tuner>
make_ansor_tuner(hw::DlaSpec spec, TuneConfig config)
{
    return std::make_unique<SearchTuner>(
        std::move(spec), config, "Ansor", rules::Options::ansor(),
        &search::genetic_algorithm);
}

std::unique_ptr<Tuner>
make_amos_tuner(hw::DlaSpec spec, TuneConfig config)
{
    return std::make_unique<AmosTuner>(std::move(spec), config);
}

std::unique_ptr<Tuner>
make_akg_tuner(hw::DlaSpec spec, TuneConfig config)
{
    // One balanced polyhedral-style tiling; no storage_align and no
    // variant dispatch.
    RecipeTuner::Recipe recipe;
    recipe.vthread = 1;
    recipe.thread = 4;
    recipe.spatial_serial = 4;
    recipe.reduce_serial = 4;
    recipe.intrinsic_spatial = 16;
    recipe.vector_len = 4;
    recipe.pad = 0;
    recipe.unroll = 1;
    return std::make_unique<RecipeTuner>(
        std::move(spec), config, "AKG",
        std::vector<RecipeTuner::Recipe>{recipe}, true);
}

std::unique_ptr<Tuner>
make_vendor_library(hw::DlaSpec spec, TuneConfig config)
{
    // A hand-tuned library ships several expert kernel variants
    // (conflict-free padding, wide vectors, different tile aspect
    // ratios) and dispatches among them — strong, but not
    // shape-specialized search.
    std::vector<RecipeTuner::Recipe> recipes;
    {
        RecipeTuner::Recipe r; // large-tile throughput kernel
        r.vthread = 2;
        r.thread = 2;
        r.spatial_serial = 4;
        r.reduce_serial = 4;
        r.buffer = 64;
        r.intrinsic_spatial = 16;
        r.vector_len = 8;
        r.pad = 8;
        r.unroll = 8;
        recipes.push_back(r);
    }
    {
        RecipeTuner::Recipe r; // wide-parallel kernel
        r.vthread = 1;
        r.thread = 4;
        r.spatial_serial = 2;
        r.reduce_serial = 8;
        r.intrinsic_spatial = 16;
        r.vector_len = 8;
        r.pad = 8;
        r.unroll = 4;
        recipes.push_back(r);
    }
    {
        RecipeTuner::Recipe r; // small-tile latency kernel
        r.vthread = 1;
        r.thread = 2;
        r.spatial_serial = 2;
        r.reduce_serial = 16;
        r.intrinsic_spatial = 16;
        r.vector_len = 4;
        r.pad = 8;
        r.unroll = 2;
        recipes.push_back(r);
    }
    {
        RecipeTuner::Recipe r; // deep-k split kernel
        r.vthread = 2;
        r.thread = 4;
        r.spatial_serial = 1;
        r.reduce_serial = 32;
        r.buffer = 32;
        r.intrinsic_spatial = 32;
        r.vector_len = 8;
        r.pad = 16;
        r.unroll = 8;
        recipes.push_back(r);
    }
    std::string name;
    switch (spec.kind) {
      case hw::DlaKind::kTensorCore: name = "cuDNN/cuBLAS"; break;
      case hw::DlaKind::kDlBoost: name = "oneDNN"; break;
      case hw::DlaKind::kVta: name = "VendorLib"; break;
      case hw::DlaKind::kTpu: name = "VendorLib"; break;
    }
    return std::make_unique<RecipeTuner>(std::move(spec), config,
                                         name, std::move(recipes),
                                         false);
}

} // namespace heron::autotune
