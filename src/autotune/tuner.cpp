#include "autotune/tuner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "autotune/checkpoint.h"
#include "csp/sample_batch.h"
#include "hw/measure_pool.h"
#include "model/cost_model.h"
#include "search/algorithms.h"
#include "search/cga.h"
#include "support/logging.h"
#include "support/math_util.h"
#include "support/metrics.h"
#include "support/profiler.h"
#include "support/trace.h"

namespace heron::autotune {

const char *
stop_reason_name(StopReason reason)
{
    switch (reason) {
      case StopReason::kBudgetComplete: return "budget-complete";
      case StopReason::kBarren: return "barren";
      case StopReason::kAllQuarantined: return "all-quarantined";
      case StopReason::kDeadline: return "deadline";
    }
    return "?";
}

using csp::Assignment;
using csp::RandSatSolver;
using csp::VarId;
using schedule::LoopRole;
using search::Evaluator;
using search::SearchConfig;

namespace {

using Clock = std::chrono::steady_clock;

double
seconds_since(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

uint64_t
hash_assignment(const Assignment &a)
{
    uint64_t h = 0x9e3779b9;
    for (int64_t v : a)
        h = hash_combine(h, static_cast<uint64_t>(v));
    return h;
}

/** Span labels for the wall-clock phase decomposition. */
constexpr const char *kSearchPhase = "phase/search";
constexpr const char *kModelPhase = "phase/model";

/**
 * Times one contiguous region into both accountings at once: the
 * TuneOutcome seconds accumulator and the profiler (same start/end
 * timestamps, so the two decompositions reconcile by construction
 * and the debug assert catches a region added to only one of them).
 */
class PhaseSpan
{
  public:
    PhaseSpan(const char *label, double &acc)
        : label_(label), acc_(&acc), start_(Clock::now())
    {
    }

    ~PhaseSpan() { stop(); }

    PhaseSpan(const PhaseSpan &) = delete;
    PhaseSpan &operator=(const PhaseSpan &) = delete;

    /** End the region early (idempotent). */
    void
    stop()
    {
        if (!acc_)
            return;
        auto end = Clock::now();
        *acc_ +=
            std::chrono::duration<double>(end - start_).count();
        trace::Tracer::global().record_span(label_, start_, end);
        acc_ = nullptr;
    }

  private:
    const char *label_;
    double *acc_;
    Clock::time_point start_;
};

/** Crossover relaxation-ladder steps taken so far, process-wide. */
int64_t
relaxation_count()
{
    return metrics::Registry::global()
        .counter("cga.relaxations")
        .value();
}

/** Common base: holds the DLA spec and config. */
class TunerBase : public Tuner
{
  public:
    TunerBase(hw::DlaSpec spec, TuneConfig config)
        : spec_(std::move(spec)), config_(config)
    {
    }

    bool
    supports(const ops::Workload &workload) const override
    {
        if (spec_.kind == hw::DlaKind::kVta ||
            spec_.kind == hw::DlaKind::kTpu)
            return rules::workload_tensorizable(spec_, workload);
        return true;
    }

    const hw::DlaSpec &spec() const override { return spec_; }

  protected:
    hw::DlaSpec spec_;
    TuneConfig config_;

    hw::MeasureConfig
    measure_config() const
    {
        hw::MeasureConfig mc = config_.measure;
        mc.seed = config_.seed * 7919 + 13;
        return mc;
    }

    /** Measurer honoring the configured fault injection. */
    std::unique_ptr<hw::Measurer>
    make_tuner_measurer() const
    {
        return hw::make_measurer(spec_, measure_config(),
                                 config_.faults);
    }
};

/** The full Heron pipeline (Algorithm 2), with ablation knobs. */
class HeronTuner : public TunerBase
{
  public:
    HeronTuner(hw::DlaSpec spec, TuneConfig config,
               HeronAblation ablation)
        : TunerBase(std::move(spec), config),
          ablation_(std::move(ablation))
    {
    }

    std::string name() const override { return ablation_.label; }

    TuneOutcome
    tune(const ops::Workload &workload) override
    {
        HERON_TRACE_SCOPE("tuner/tune");
        trace::Tracer &tracer = trace::Tracer::global();
        // Phase totals before this run, so the reconciliation below
        // works on this run's delta even after several tune calls.
        const double search_span0 =
            tracer.total_seconds(kSearchPhase);
        const double model_span0 = tracer.total_seconds(kModelPhase);
        auto tune_start = Clock::now();

        TuneOutcome outcome;
        outcome.tuner = name();
        outcome.workload = workload.name;

        if (!config_.telemetry_path.empty() &&
            !telemetry_.is_open())
            telemetry_.open(config_.telemetry_path);

        PhaseSpan setup_span(kSearchPhase, outcome.search_seconds);
        rules::SpaceGenerator generator(spec_, ablation_.options);
        auto space = [&] {
            HERON_TRACE_SCOPE("space/generate");
            HERON_COUNTER_INC("space.generated");
            return generator.generate(workload);
        }();
        RandSatSolver solver(space.csp, config_.solver);
        // Whole-population draws go through the deterministic
        // parallel sampler; the relaxation ladder inside CGA
        // crossover keeps its own serial solver. Populations and
        // aggregate stats are bit-identical across worker counts.
        csp::SampleBatch batch(space.csp, config_.solver,
                               config_.sample_workers);
        // Solver counters for the whole run: the relaxation solver
        // plus every sampling worker.
        auto solver_totals = [&] {
            csp::SolverStats s = solver.stats();
            s += batch.stats();
            return s;
        };
        // All measurement goes through the supervised pool: workers
        // <= 1 runs serially on this thread; either way results and
        // journals are bit-identical (indices are pre-assigned from
        // the pool's master counter).
        hw::PoolConfig pool_config;
        pool_config.workers = config_.measure_workers;
        pool_config.deadline_ms = config_.watchdog_deadline_ms;
        pool_config.grace_ms = config_.watchdog_grace_ms;
        pool_config.max_abandoned = config_.max_abandoned_workers;
        hw::MeasurePool pool(spec_, measure_config(),
                             config_.faults, pool_config);
        Evaluator evaluator(space);
        model::CostModel model(space.csp);
        Rng rng(config_.seed);

        // Checkpoint/resume: replay the journal's prefix instead of
        // re-measuring, then append every live measurement.
        TuningJournal journal;
        ReplayCursor replay;
        // Full journal contents (loaded + appended), mirrored for
        // the per-round atomic snapshot.
        std::vector<TuningRecord> all_records;
        if (!config_.journal_path.empty()) {
            auto loaded = TuningJournal::load(config_.journal_path);
            all_records = loaded;
            // Keep sequence numbers monotonic across the resume.
            int64_t next_seq = 1;
            for (const auto &rec : loaded)
                next_seq = std::max(next_seq, rec.seq + 1);
            replay = ReplayCursor(std::move(loaded), workload.name,
                                  spec_.name, name());
            if (replay.remaining() > 0) {
                HERON_INFO << "resuming " << workload.name
                           << " from journal ("
                           << replay.remaining()
                           << " measurement(s) to replay)";
            }
            journal.open(config_.journal_path, next_seq);
            if (config_.journal_crash_after >= 0)
                journal.set_crash_plan(
                    {config_.journal_crash_after,
                     config_.journal_crash_bytes});
        }
        setup_span.stop();

        // Quarantine: schedule signatures (structural program
        // hashes) striking out on invalid/hung measurements are
        // excluded for the rest of the run. State is rebuilt
        // deterministically on resume from the replayed outcomes.
        std::unordered_map<uint64_t, int> strikes;
        std::unordered_set<uint64_t> quarantined;
        auto quarantine_note = [&](const Assignment &a, uint64_t sig,
                                   bool valid,
                                   const std::string &failure) {
            if (config_.quarantine_threshold <= 0)
                return;
            if (valid) {
                // The signature demonstrably works; wipe its record.
                strikes.erase(sig);
                return;
            }
            // Only deterministic failure categories strike; a
            // transient or timed-out board is not the program's
            // fault.
            if (failure != "invalid" && failure != "hung")
                return;
            if (quarantined.count(sig))
                return;
            if (++strikes[sig] < config_.quarantine_threshold)
                return;
            quarantined.insert(sig);
            ++outcome.quarantined_signatures;
            HERON_COUNTER_INC("tuner.quarantined_signatures");
            HERON_WARN << "quarantining schedule signature "
                       << std::hex << sig << std::dec << " after "
                       << config_.quarantine_threshold << " "
                       << failure << " strike(s)";
            if (journal.is_open()) {
                TuningRecord event;
                event.workload = workload.name;
                event.dla = spec_.name;
                event.tuner = name();
                event.category = "quarantine";
                event.valid = false;
                event.failure = failure;
                event.assignment = a;
                event.seq = journal.next_seq();
                journal.append(event);
                all_records.push_back(std::move(event));
            }
        };

        std::unordered_set<uint64_t> measured;
        // (assignment, measured score) for survivor selection.
        std::vector<std::pair<Assignment, double>> archive;
        // Rounds in a row the solver/candidate pool came up empty;
        // a few barren rounds are survivable (randomized restarts),
        // a streak means the space is exhausted.
        int barren_rounds = 0;
        int64_t round_index = -1;

        while (evaluator.count() < config_.trials) {
            ++round_index;
            HERON_COUNTER_INC("tuner.rounds");
            const csp::SolverStats solver_before = solver_totals();
            const int64_t relax_before = relaxation_count();

            // Step 1: first generation = survivors + random valid.
            std::vector<Assignment> pop;
            {
                PhaseSpan search_span(kSearchPhase,
                                      outcome.search_seconds);
                std::vector<size_t> order(archive.size());
                for (size_t i = 0; i < order.size(); ++i)
                    order[i] = i;
                std::stable_sort(
                    order.begin(), order.end(),
                    [&](size_t a, size_t b) {
                        return archive[a].second > archive[b].second;
                    });
                size_t survivors = std::min<size_t>(
                    order.size(),
                    static_cast<size_t>(config_.population / 2));
                for (size_t i = 0; i < survivors; ++i)
                    pop.push_back(archive[order[i]].first);
                int need = config_.population -
                           static_cast<int>(pop.size());
                for (auto &a : batch.sample(rng.next_u64(),
                                            std::max(need, 1)))
                    pop.push_back(std::move(a));
            }
            if (pop.empty()) {
                // Degrade gracefully: a randomized solver can fail
                // a whole round (budget/deadline) and still succeed
                // on the next attempt.
                HERON_COUNTER_INC("tuner.barren_rounds");
                if (++barren_rounds >= config_.max_barren_rounds) {
                    HERON_WARN
                        << "solver produced no candidates for "
                        << barren_rounds << " round(s) ("
                        << csp::solve_failure_name(
                               batch.last_failure())
                        << "); stopping " << workload.name
                        << " early";
                    outcome.stop_reason =
                        batch.last_failure() ==
                                csp::SolveFailure::kDeadline
                            ? StopReason::kDeadline
                            : StopReason::kBarren;
                    break;
                }
                continue;
            }

            // Step 2: evolve for several generations on predicted
            // fitness. Model queries and genetic operators are
            // timed into disjoint phases — the predict loops must
            // not also count as search time (that double-counting
            // was the old compile_seconds decomposition drift).
            if (model.trained()) {
                for (int g = 0; g < config_.generations; ++g) {
                    HERON_COUNTER_INC("tuner.generations");
                    std::vector<double> fitness;
                    {
                        PhaseSpan model_span(kModelPhase,
                                             outcome.model_seconds);
                        fitness.reserve(pop.size());
                        for (const auto &a : pop)
                            fitness.push_back(
                                std::max(0.0, model.predict(a)));
                    }

                    PhaseSpan search_span(kSearchPhase,
                                          outcome.search_seconds);
                    auto parents = search::roulette_select(
                        pop, fitness, config_.population, rng);
                    auto offspring =
                        search::constraint_crossover_mutation(
                            space.csp, solver, model, parents,
                            config_.population, config_.key_vars,
                            ablation_.random_key_vars, rng);
                    pop = std::move(parents);
                    for (auto &child : offspring)
                        pop.push_back(std::move(child));
                }
            }

            // Step 3: epsilon-greedy measurement selection.
            std::vector<Assignment> candidates;
            {
                PhaseSpan search_span(kSearchPhase,
                                      outcome.search_seconds);
                for (auto &a : pop) {
                    uint64_t h = hash_assignment(a);
                    if (measured.count(h))
                        continue;
                    candidates.push_back(std::move(a));
                }
                if (candidates.empty())
                    for (auto &a : batch.sample(rng.next_u64(), 4))
                        candidates.push_back(std::move(a));
            }
            if (candidates.empty()) {
                HERON_COUNTER_INC("tuner.barren_rounds");
                if (++barren_rounds >= config_.max_barren_rounds) {
                    HERON_WARN << "no unmeasured candidates for "
                               << barren_rounds
                               << " round(s); stopping "
                               << workload.name << " early";
                    outcome.stop_reason =
                        batch.last_failure() ==
                                csp::SolveFailure::kDeadline
                            ? StopReason::kDeadline
                            : StopReason::kBarren;
                    break;
                }
                continue;
            }
            int budget_left =
                config_.trials - static_cast<int>(evaluator.count());
            int to_measure = std::min(
                {config_.measure_per_round, budget_left,
                 static_cast<int>(candidates.size())});

            std::vector<size_t> pick_order(candidates.size());
            for (size_t i = 0; i < pick_order.size(); ++i)
                pick_order[i] = i;
            std::vector<double> predicted;
            if (model.trained() &&
                !ablation_.random_measure_selection) {
                {
                    PhaseSpan model_span(kModelPhase,
                                         outcome.model_seconds);
                    predicted.resize(candidates.size());
                    for (size_t i = 0; i < candidates.size(); ++i)
                        predicted[i] = model.predict(candidates[i]);
                }
                PhaseSpan search_span(kSearchPhase,
                                      outcome.search_seconds);
                std::stable_sort(pick_order.begin(),
                                 pick_order.end(),
                                 [&](size_t a, size_t b) {
                                     return predicted[a] >
                                            predicted[b];
                                 });
                // epsilon fraction replaced by random picks.
                int random_picks = static_cast<int>(
                    config_.epsilon * to_measure);
                for (int i = 0; i < random_picks; ++i) {
                    size_t j =
                        rng.index(pick_order.size() -
                                  static_cast<size_t>(i)) +
                        static_cast<size_t>(i);
                    std::swap(pick_order[static_cast<size_t>(i)],
                              pick_order[j]);
                }
            } else {
                PhaseSpan search_span(kSearchPhase,
                                      outcome.search_seconds);
                rng.shuffle(pick_order);
            }

            // Step 4a: admission, in selection order. Quarantined
            // signatures are skipped (no budget consumed); the rest
            // either match the journal (replay) or reserve a
            // measurement index, so indices — and therefore every
            // derived noise/fault stream — are assigned exactly as
            // a serial uninterrupted run would assign them.
            struct RoundSlot {
                size_t cand = 0;
                const TuningRecord *rec = nullptr;
                int64_t index = -1;
                size_t task_pos = 0;
                uint64_t sig = 0;
            };
            std::vector<RoundSlot> slots;
            std::vector<schedule::ConcreteProgram> programs;
            int skipped_quarantined = 0;
            for (int i = 0; i < to_measure; ++i) {
                size_t cand = pick_order[static_cast<size_t>(i)];
                const Assignment &a = candidates[cand];
                auto program = space.bind(a);
                uint64_t sig = hw::detail::program_hash(program);
                if (quarantined.count(sig)) {
                    ++skipped_quarantined;
                    ++outcome.quarantine_skips;
                    HERON_COUNTER_INC("tuner.quarantine_skips");
                    continue;
                }
                RoundSlot slot;
                slot.cand = cand;
                slot.sig = sig;
                if (const TuningRecord *rec = replay.match(a)) {
                    slot.rec = rec;
                    pool.note_replayed();
                } else {
                    slot.index = pool.reserve_index();
                    slot.task_pos = programs.size();
                    programs.push_back(std::move(program));
                }
                slots.push_back(std::move(slot));
            }
            if (slots.empty()) {
                // The whole selection was quarantined: counts as a
                // barren round (no measurements happened).
                HERON_COUNTER_INC("tuner.barren_rounds");
                if (++barren_rounds >= config_.max_barren_rounds) {
                    HERON_WARN
                        << "every candidate quarantined for "
                        << barren_rounds << " round(s); stopping "
                        << workload.name << " early";
                    outcome.stop_reason =
                        skipped_quarantined > 0
                            ? StopReason::kAllQuarantined
                            : StopReason::kBarren;
                    break;
                }
                continue;
            }
            barren_rounds = 0;

            // Step 4b: fan the live measurements across the pool.
            // Program pointers stay valid: `programs` is fully built
            // before any task references it.
            std::vector<hw::MeasureTask> tasks;
            tasks.reserve(programs.size());
            for (const RoundSlot &slot : slots)
                if (slot.index >= 0)
                    tasks.push_back(
                        {&programs[slot.task_pos], slot.index});
            auto results = pool.measure_batch(tasks);

            // Step 4c: apply results in selection order — journal
            // appends, model samples, and quarantine strikes all
            // happen in the same order for every worker count.
            // Failed measurements score 0 and the round carries on.
            int round_valid = 0;
            double round_gflops_sum = 0.0;
            int to_measure_done = 0;
            for (const RoundSlot &slot : slots) {
                const Assignment &a = candidates[slot.cand];
                double score;
                if (slot.rec != nullptr) {
                    score = evaluator.replay(a, slot.rec->valid,
                                             slot.rec->latency_ms,
                                             slot.rec->gflops);
                    quarantine_note(a, slot.sig, slot.rec->valid,
                                    slot.rec->failure);
                } else {
                    const hw::MeasureResult &mr =
                        results[slot.task_pos];
                    score = evaluator.record(a, mr);
                    std::string failure =
                        mr.valid
                            ? ""
                            : hw::measure_failure_name(mr.failure);
                    if (journal.is_open()) {
                        TuningRecord rec;
                        rec.workload = workload.name;
                        rec.dla = spec_.name;
                        rec.tuner = name();
                        rec.valid = mr.valid;
                        rec.failure = failure;
                        rec.latency_ms = mr.latency_ms;
                        rec.gflops = mr.gflops;
                        rec.assignment = a;
                        rec.seq = journal.next_seq();
                        journal.append(rec);
                        all_records.push_back(std::move(rec));
                    }
                    quarantine_note(a, slot.sig, mr.valid, failure);
                }
                ++to_measure_done;
                if (evaluator.last_result().valid) {
                    ++round_valid;
                    round_gflops_sum +=
                        evaluator.last_result().gflops;
                }
                measured.insert(hash_assignment(a));
                model.add_scored_sample(a, score);
                archive.emplace_back(a, score);
            }
            to_measure = to_measure_done;

            // Durability: refresh the atomic journal snapshot each
            // round (either the previous or the new complete
            // snapshot exists on disk, never a torn one).
            if (journal.is_open())
                TuningJournal::write_snapshot(
                    config_.journal_path + ".snapshot",
                    all_records);
            {
                PhaseSpan model_span(kModelPhase,
                                     outcome.model_seconds);
                model.fit();
            }

            if (telemetry_.is_open()) {
                emit_generation_stats(
                    workload, outcome, evaluator, round_index,
                    to_measure, round_valid, round_gflops_sum,
                    predicted, pick_order, solver_before,
                    solver_totals(),
                    relaxation_count() - relax_before,
                    seconds_since(tune_start));
            }
        }

        outcome.result = evaluator.result();
        outcome.solver_stats = solver_totals();
        outcome.measure_seconds = pool.simulated_seconds();
        outcome.measure_stats = pool.stats();
        outcome.replayed = replay.replayed();
        outcome.watchdog_fires = pool.watchdog_fires();
        outcome.abandoned_workers = pool.abandoned_workers();
        outcome.pool_degraded = pool.degraded();

        // Decomposition reconciliation: the profiler timed exactly
        // the regions the TuneOutcome accounting timed, so the two
        // must agree; a drift means someone added a timed region to
        // one bookkeeper but not the other.
        outcome.profiled = tracer.enabled();
        if (outcome.profiled) {
            double tracked = (tracer.total_seconds(kSearchPhase) -
                              search_span0) +
                             (tracer.total_seconds(kModelPhase) -
                              model_span0);
            double wall =
                outcome.search_seconds + outcome.model_seconds;
            outcome.profile_delta_seconds = wall - tracked;
#ifndef NDEBUG
            HERON_CHECK_LE(std::abs(outcome.profile_delta_seconds),
                           0.05 * wall + 0.01)
                << "TuneOutcome phase decomposition drifted from "
                   "profiler span totals (tracked "
                << tracked << " s, accounted " << wall << " s)";
#endif
        }
        return outcome;
    }

  private:
    HeronAblation ablation_;
    prof::TelemetryStream telemetry_;

    /** Build and append one per-round telemetry record. */
    void
    emit_generation_stats(
        const ops::Workload &workload, const TuneOutcome &outcome,
        const Evaluator &evaluator, int64_t round_index,
        int to_measure, int round_valid, double round_gflops_sum,
        const std::vector<double> &predicted,
        const std::vector<size_t> &pick_order,
        const csp::SolverStats &solver_before,
        const csp::SolverStats &solver_after, int64_t relaxations,
        double elapsed_seconds)
    {
        prof::GenerationStats gs;
        gs.round = round_index;
        gs.workload = workload.name;
        gs.tuner = outcome.tuner;
        gs.measured = evaluator.count();
        gs.best_latency_ms = evaluator.result().best_latency_ms;
        gs.best_gflops = evaluator.result().best_gflops;
        gs.round_measured = to_measure;
        gs.round_valid = round_valid;
        if (round_valid > 0)
            gs.round_mean_gflops = round_gflops_sum / round_valid;
        if (!predicted.empty() && to_measure > 0) {
            double best = 0.0, sum = 0.0;
            for (int i = 0; i < to_measure; ++i) {
                double p =
                    predicted[pick_order[static_cast<size_t>(i)]];
                best = std::max(best, p);
                sum += p;
            }
            gs.best_predicted = best;
            gs.mean_predicted = sum / to_measure;
        }
        gs.solver_unsat =
            solver_after.unsat - solver_before.unsat;
        gs.solver_budget = solver_after.budget_exhausted -
                           solver_before.budget_exhausted;
        gs.solver_deadline = solver_after.deadline_aborts -
                             solver_before.deadline_aborts;
        gs.relaxations = relaxations;
        gs.elapsed_seconds = elapsed_seconds;
        telemetry_.append(gs);
    }
};

/** Wraps one of the search-module algorithms over a fixed flavor. */
class SearchTuner : public TunerBase
{
  public:
    using Algorithm = search::SearchResult (*)(
        const rules::GeneratedSpace &, hw::Measurer &,
        const SearchConfig &);

    SearchTuner(hw::DlaSpec spec, TuneConfig config,
                std::string name, rules::Options options,
                Algorithm algorithm)
        : TunerBase(std::move(spec), config), name_(std::move(name)),
          options_(options), algorithm_(algorithm)
    {
    }

    std::string name() const override { return name_; }

    bool
    supports(const ops::Workload &workload) const override
    {
        if (spec_.kind == hw::DlaKind::kVta ||
            spec_.kind == hw::DlaKind::kTpu) {
            if (!options_.enable_tensorize)
                return false; // no scalar fallback
            return rules::workload_tensorizable(spec_, workload);
        }
        return true;
    }

    TuneOutcome
    tune(const ops::Workload &workload) override
    {
        HERON_TRACE_SCOPE("tuner/tune");
        TuneOutcome outcome;
        outcome.tuner = name_;
        outcome.workload = workload.name;

        auto start = Clock::now();
        rules::SpaceGenerator generator(spec_, options_);
        auto space = generator.generate(workload);
        auto measurer = make_tuner_measurer();

        SearchConfig sc;
        sc.trials = config_.trials;
        sc.population = config_.population;
        sc.seed = config_.seed;
        sc.sample_workers = config_.sample_workers;
        outcome.result = algorithm_(space, *measurer, sc);
        outcome.search_seconds = seconds_since(start);
        outcome.measure_seconds = measurer->simulated_seconds();
        outcome.measure_stats = measurer->stats();
        return outcome;
    }

  private:
    std::string name_;
    rules::Options options_;
    Algorithm algorithm_;
};

/** AMOS-like: model-ranked random sampling of valid mappings. */
class AmosTuner : public TunerBase
{
  public:
    AmosTuner(hw::DlaSpec spec, TuneConfig config)
        : TunerBase(std::move(spec), config)
    {
    }

    std::string name() const override { return "AMOS"; }

    TuneOutcome
    tune(const ops::Workload &workload) override
    {
        HERON_TRACE_SCOPE("tuner/tune");
        TuneOutcome outcome;
        outcome.tuner = name();
        outcome.workload = workload.name;

        auto start = Clock::now();
        rules::SpaceGenerator generator(spec_,
                                        rules::Options::amos());
        auto space = generator.generate(workload);
        RandSatSolver solver(space.csp, config_.solver);
        auto measurer = make_tuner_measurer();
        Evaluator evaluator(space, *measurer);
        model::CostModel model(space.csp);
        Rng rng(config_.seed);

        while (evaluator.count() < config_.trials) {
            auto pool =
                solver.solve_n(rng, 3 * config_.measure_per_round);
            if (pool.empty())
                break;
            std::vector<size_t> order(pool.size());
            for (size_t i = 0; i < order.size(); ++i)
                order[i] = i;
            if (model.trained()) {
                auto model_start = Clock::now();
                std::vector<double> predicted(pool.size());
                for (size_t i = 0; i < pool.size(); ++i)
                    predicted[i] = model.predict(pool[i]);
                std::stable_sort(order.begin(), order.end(),
                                 [&](size_t a, size_t b) {
                                     return predicted[a] >
                                            predicted[b];
                                 });
                outcome.model_seconds += seconds_since(model_start);
            } else {
                rng.shuffle(order);
            }
            int budget_left =
                config_.trials - static_cast<int>(evaluator.count());
            int to_measure =
                std::min({config_.measure_per_round, budget_left,
                          static_cast<int>(pool.size())});
            for (int i = 0; i < to_measure; ++i) {
                const Assignment &a =
                    pool[order[static_cast<size_t>(i)]];
                double score = evaluator.measure(a);
                model.add_scored_sample(a, score);
            }
            auto fit_start = Clock::now();
            model.fit();
            outcome.model_seconds += seconds_since(fit_start);
        }
        outcome.result = evaluator.result();
        outcome.solver_stats = solver.stats();
        outcome.search_seconds =
            seconds_since(start) - outcome.model_seconds;
        outcome.measure_seconds = measurer->simulated_seconds();
        outcome.measure_stats = measurer->stats();
        return outcome;
    }
};

/**
 * A fixed-recipe scheduler: preferences per loop role decoded to
 * the nearest feasible configuration. Used for both the vendor
 * library stand-in and the AKG-like polyhedral heuristic, with
 * different recipes.
 */
class RecipeTuner : public TunerBase
{
  public:
    struct Recipe {
        int64_t vthread = 1;
        int64_t thread = 2;
        int64_t spatial_serial = 4;
        int64_t reduce_serial = 4;
        int64_t buffer = 8;
        int64_t intrinsic_spatial = 16;
        int64_t vector_len = 8;
        int64_t pad = 8;
        int64_t unroll = 4;
    };

    RecipeTuner(hw::DlaSpec spec, TuneConfig config,
                std::string name, std::vector<Recipe> recipes,
                bool gemm_conv_only)
        : TunerBase(std::move(spec), config), name_(std::move(name)),
          recipes_(std::move(recipes)),
          gemm_conv_only_(gemm_conv_only)
    {
        HERON_CHECK(!recipes_.empty());
    }

    std::string name() const override { return name_; }

    bool
    supports(const ops::Workload &workload) const override
    {
        if (gemm_conv_only_ &&
            workload.kind != ops::OpKind::kGemm &&
            workload.kind != ops::OpKind::kC2d)
            return false;
        return TunerBase::supports(workload);
    }

    TuneOutcome
    tune(const ops::Workload &workload) override
    {
        HERON_TRACE_SCOPE("tuner/tune");
        TuneOutcome outcome;
        outcome.tuner = name_;
        outcome.workload = workload.name;

        auto start = Clock::now();
        rules::SpaceGenerator generator(spec_,
                                        rules::Options::heron());
        auto space = generator.generate(workload);
        auto measurer = make_tuner_measurer();
        Evaluator evaluator(space, *measurer);
        Rng rng(config_.seed);

        // A library ships several kernel variants and dispatches by
        // an internal heuristic; model that as trying each recipe.
        for (const Recipe &recipe : recipes_) {
            auto prefs = build_preferences(space, recipe);
            auto a = search::solve_with_preferences(space.csp, prefs,
                                                    rng);
            if (a)
                evaluator.measure(*a);
            else
                evaluator.measure_failure();
        }
        outcome.result = evaluator.result();
        outcome.search_seconds = seconds_since(start);
        outcome.measure_seconds = measurer->simulated_seconds();
        outcome.measure_stats = measurer->stats();
        return outcome;
    }

  private:
    std::string name_;
    std::vector<Recipe> recipes_;
    bool gemm_conv_only_;

    std::unordered_map<VarId, int64_t>
    build_preferences(const rules::GeneratedSpace &space,
                      const Recipe &recipe) const
    {
        std::unordered_map<VarId, int64_t> prefs;
        for (const auto &plan : space.tmpl.stages) {
            if (plan.role != schedule::StageRole::kMain) {
                VarId vec = space.csp.find_var("vec." + plan.name);
                if (vec >= 0)
                    prefs[vec] = recipe.vector_len;
                VarId pad = space.csp.find_var("pad." + plan.name);
                if (pad >= 0)
                    prefs[pad] = recipe.pad;
                VarId loc = space.csp.find_var("loc." + plan.name);
                if (loc >= 0)
                    prefs[loc] = 0; // outermost reduce attach
                continue;
            }
            VarId unroll =
                space.csp.find_var("unroll." + plan.name);
            if (unroll >= 0)
                prefs[unroll] = recipe.unroll;
            for (const auto &axis : plan.axes) {
                for (int l = 1; l < axis.num_levels(); ++l) {
                    VarId tile = space.csp.find_var(
                        "tile." + axis.level_name(plan.name, l));
                    if (tile < 0)
                        continue;
                    prefs[tile] = preference_for(
                        recipe, axis.roles[static_cast<size_t>(l)],
                        axis.reduce);
                }
            }
        }
        return prefs;
    }

    static int64_t
    preference_for(const Recipe &recipe, LoopRole role, bool reduce)
    {
        switch (role) {
          case LoopRole::kVThread: return recipe.vthread;
          case LoopRole::kThread: return recipe.thread;
          case LoopRole::kBuffer: return recipe.buffer;
          case LoopRole::kIntrinsic:
            return reduce ? 16 : recipe.intrinsic_spatial;
          case LoopRole::kSerial:
          default:
            return reduce ? recipe.reduce_serial
                          : recipe.spatial_serial;
        }
    }
};

} // namespace

bool
Tuner::supports(const ops::Workload &) const
{
    return true;
}

std::unique_ptr<Tuner>
make_heron_tuner(hw::DlaSpec spec, TuneConfig config)
{
    return std::make_unique<HeronTuner>(std::move(spec), config,
                                        HeronAblation{});
}

std::unique_ptr<Tuner>
make_heron_tuner_ablated(hw::DlaSpec spec, TuneConfig config,
                         HeronAblation ablation)
{
    return std::make_unique<HeronTuner>(std::move(spec), config,
                                        std::move(ablation));
}

std::unique_ptr<Tuner>
make_autotvm_tuner(hw::DlaSpec spec, TuneConfig config)
{
    return std::make_unique<SearchTuner>(
        std::move(spec), config, "AutoTVM",
        rules::Options::autotvm(),
        &search::template_consistent_sa);
}

std::unique_ptr<Tuner>
make_ansor_tuner(hw::DlaSpec spec, TuneConfig config)
{
    return std::make_unique<SearchTuner>(
        std::move(spec), config, "Ansor", rules::Options::ansor(),
        &search::genetic_algorithm);
}

std::unique_ptr<Tuner>
make_amos_tuner(hw::DlaSpec spec, TuneConfig config)
{
    return std::make_unique<AmosTuner>(std::move(spec), config);
}

std::unique_ptr<Tuner>
make_akg_tuner(hw::DlaSpec spec, TuneConfig config)
{
    // One balanced polyhedral-style tiling; no storage_align and no
    // variant dispatch.
    RecipeTuner::Recipe recipe;
    recipe.vthread = 1;
    recipe.thread = 4;
    recipe.spatial_serial = 4;
    recipe.reduce_serial = 4;
    recipe.intrinsic_spatial = 16;
    recipe.vector_len = 4;
    recipe.pad = 0;
    recipe.unroll = 1;
    return std::make_unique<RecipeTuner>(
        std::move(spec), config, "AKG",
        std::vector<RecipeTuner::Recipe>{recipe}, true);
}

std::unique_ptr<Tuner>
make_vendor_library(hw::DlaSpec spec, TuneConfig config)
{
    // A hand-tuned library ships several expert kernel variants
    // (conflict-free padding, wide vectors, different tile aspect
    // ratios) and dispatches among them — strong, but not
    // shape-specialized search.
    std::vector<RecipeTuner::Recipe> recipes;
    {
        RecipeTuner::Recipe r; // large-tile throughput kernel
        r.vthread = 2;
        r.thread = 2;
        r.spatial_serial = 4;
        r.reduce_serial = 4;
        r.buffer = 64;
        r.intrinsic_spatial = 16;
        r.vector_len = 8;
        r.pad = 8;
        r.unroll = 8;
        recipes.push_back(r);
    }
    {
        RecipeTuner::Recipe r; // wide-parallel kernel
        r.vthread = 1;
        r.thread = 4;
        r.spatial_serial = 2;
        r.reduce_serial = 8;
        r.intrinsic_spatial = 16;
        r.vector_len = 8;
        r.pad = 8;
        r.unroll = 4;
        recipes.push_back(r);
    }
    {
        RecipeTuner::Recipe r; // small-tile latency kernel
        r.vthread = 1;
        r.thread = 2;
        r.spatial_serial = 2;
        r.reduce_serial = 16;
        r.intrinsic_spatial = 16;
        r.vector_len = 4;
        r.pad = 8;
        r.unroll = 2;
        recipes.push_back(r);
    }
    {
        RecipeTuner::Recipe r; // deep-k split kernel
        r.vthread = 2;
        r.thread = 4;
        r.spatial_serial = 1;
        r.reduce_serial = 32;
        r.buffer = 32;
        r.intrinsic_spatial = 32;
        r.vector_len = 8;
        r.pad = 16;
        r.unroll = 8;
        recipes.push_back(r);
    }
    std::string name;
    switch (spec.kind) {
      case hw::DlaKind::kTensorCore: name = "cuDNN/cuBLAS"; break;
      case hw::DlaKind::kDlBoost: name = "oneDNN"; break;
      case hw::DlaKind::kVta: name = "VendorLib"; break;
      case hw::DlaKind::kTpu: name = "VendorLib"; break;
    }
    return std::make_unique<RecipeTuner>(std::move(spec), config,
                                         name, std::move(recipes),
                                         false);
}

} // namespace heron::autotune
