/**
 * @file
 * Library building: the end-to-end "generate a high-performance
 * library" flow the paper's title promises. A LibraryBuilder tunes
 * a set of workloads for one DLA and packages the winners as
 * generated kernel sources plus a C++ dispatch header.
 */
#ifndef HERON_AUTOTUNE_LIBRARY_H
#define HERON_AUTOTUNE_LIBRARY_H

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "autotune/record.h"
#include "autotune/tuner.h"

namespace heron::autotune {

/** One tuned kernel of the generated library. */
struct LibraryEntry {
    ops::Workload workload;
    std::string kernel_name;
    csp::Assignment best;
    double latency_ms = 0.0;
    double gflops = 0.0;
    /** Target-idiom kernel source (see codegen::emit_source). */
    std::string source;
    bool tuned = false;
};

/** A generated library for one DLA. */
struct Library {
    hw::DlaSpec spec;
    std::vector<LibraryEntry> entries;

    /**
     * The public header of the generated library: one entry point
     * per kernel plus a by-shape dispatch helper, the artifact a
     * downstream user links against.
     *
     * When two tuned entries share a dispatch shape (same op kind
     * and parameters), dispatch() resolves the collision
     * deterministically: entries are emitted in their order in
     * `entries` and the *first* matching entry wins. LibraryBuilder
     * never produces such duplicates (add() dedupes by canonical
     * workload signature), but a hand-assembled Library keeps this
     * first-entry-wins guarantee.
     */
    std::string emit_header(const std::string &library_name) const;

    /** Human-readable build report. */
    std::string summary() const;
};

/**
 * One layer of a network handed to LibraryBuilder::emit_network:
 * the workload, how many times the network instantiates it, and
 * (when resolution succeeded) the tuned record whose assignment the
 * kernel is generated from. A layer without a record still gets a
 * dispatch-table slot — it dispatches to nullptr until tuned.
 */
struct NetworkLayerSpec {
    ops::Workload workload;
    int64_t count = 1;
    std::optional<TuningRecord> record;
};

/**
 * A whole model compiled as one dispatchable library: distinct
 * kernels emitted once, every layer index mapped onto them through
 * a single dispatch function (emit_header's dispatch_layer).
 */
struct NetworkLibrary {
    std::string network;
    hw::DlaSpec spec;
    /** Distinct kernels, in first-appearance layer order. */
    std::vector<LibraryEntry> entries;
    /** Layer index -> index into entries (deduped layers alias). */
    std::vector<int> layer_entry;
    /** Layer index -> instance count (parallel to layer_entry). */
    std::vector<int64_t> layer_counts;
    /** Total layer instances across the network (Σ count). */
    int64_t instances = 0;
    /** Layers that aliased an earlier layer's kernel. */
    int64_t deduped = 0;
    /** Entries with generated source (tuned && bound). */
    int64_t emitted = 0;

    /**
     * The model's public header: one prototype per emitted kernel
     * (deduped kernels appear exactly once) and a dispatch_layer(i)
     * function whose switch covers *every* layer index — aliased
     * layers return the shared kernel, unresolved layers return
     * nullptr. Self-contained C++ (compiles with -fsyntax-only).
     */
    std::string emit_header(const std::string &library_name) const;

    /** Human-readable per-layer report. */
    std::string summary() const;
};

/** Tunes a workload set and emits the library. */
class LibraryBuilder
{
  public:
    LibraryBuilder(hw::DlaSpec spec, TuneConfig config);

    /**
     * Queue a workload and return the kernel (dispatch) name its
     * tuned entry will carry. Workloads that duplicate an
     * already-queued canonical signature (same op kind, normalized
     * shape, dtype, and DLA — the display name does not matter) are
     * not tuned twice: the duplicate returns the *canonical
     * existing entry's* kernel name so callers can alias it.
     * Distinct workloads whose display names sanitize to the same
     * identifier get a numeric suffix (collision-free dispatch
     * symbols are part of the contract).
     */
    std::string add(ops::Workload workload);

    /** Number of queued workloads (after dedup). */
    size_t size() const { return workloads_.size(); }

    /** Tune everything and package the results. */
    Library build();

    /**
     * Compile an already-resolved network (e.g. records served by
     * the kernel registry) into a single dispatchable library. No
     * tuning happens here: each distinct layer's record assignment
     * is re-validated against a freshly generated space (try_bind)
     * and its kernel source emitted once; layers sharing a
     * canonical signature alias one entry. Uses the same
     * signature-dedup and name-collision rules as add().
     */
    NetworkLibrary
    emit_network(const std::string &network_name,
                 const std::vector<NetworkLayerSpec> &layers) const;

  private:
    hw::DlaSpec spec_;
    TuneConfig config_;
    std::vector<ops::Workload> workloads_;
    /** Queued kernel names, parallel to workloads_. */
    std::vector<std::string> kernel_names_;
    /** Canonical signature -> assigned kernel name (dedup map). */
    std::unordered_map<std::string, std::string> signatures_;
    /** Kernel names already handed out (collision avoidance). */
    std::unordered_set<std::string> used_names_;
};

} // namespace heron::autotune

#endif // HERON_AUTOTUNE_LIBRARY_H
