/**
 * @file
 * Library building: the end-to-end "generate a high-performance
 * library" flow the paper's title promises. A LibraryBuilder tunes
 * a set of workloads for one DLA and packages the winners as
 * generated kernel sources plus a C++ dispatch header.
 */
#ifndef HERON_AUTOTUNE_LIBRARY_H
#define HERON_AUTOTUNE_LIBRARY_H

#include <string>
#include <vector>

#include "autotune/tuner.h"

namespace heron::autotune {

/** One tuned kernel of the generated library. */
struct LibraryEntry {
    ops::Workload workload;
    std::string kernel_name;
    csp::Assignment best;
    double latency_ms = 0.0;
    double gflops = 0.0;
    /** Target-idiom kernel source (see codegen::emit_source). */
    std::string source;
    bool tuned = false;
};

/** A generated library for one DLA. */
struct Library {
    hw::DlaSpec spec;
    std::vector<LibraryEntry> entries;

    /**
     * The public header of the generated library: one entry point
     * per kernel plus a by-shape dispatch helper, the artifact a
     * downstream user links against.
     */
    std::string emit_header(const std::string &library_name) const;

    /** Human-readable build report. */
    std::string summary() const;
};

/** Tunes a workload set and emits the library. */
class LibraryBuilder
{
  public:
    LibraryBuilder(hw::DlaSpec spec, TuneConfig config);

    /** Queue a workload. */
    void add(ops::Workload workload);

    /** Number of queued workloads. */
    size_t size() const { return workloads_.size(); }

    /** Tune everything and package the results. */
    Library build();

  private:
    hw::DlaSpec spec_;
    TuneConfig config_;
    std::vector<ops::Workload> workloads_;
};

} // namespace heron::autotune

#endif // HERON_AUTOTUNE_LIBRARY_H
