/**
 * @file
 * Library building: the end-to-end "generate a high-performance
 * library" flow the paper's title promises. A LibraryBuilder tunes
 * a set of workloads for one DLA and packages the winners as
 * generated kernel sources plus a C++ dispatch header.
 */
#ifndef HERON_AUTOTUNE_LIBRARY_H
#define HERON_AUTOTUNE_LIBRARY_H

#include <string>
#include <unordered_set>
#include <vector>

#include "autotune/tuner.h"

namespace heron::autotune {

/** One tuned kernel of the generated library. */
struct LibraryEntry {
    ops::Workload workload;
    std::string kernel_name;
    csp::Assignment best;
    double latency_ms = 0.0;
    double gflops = 0.0;
    /** Target-idiom kernel source (see codegen::emit_source). */
    std::string source;
    bool tuned = false;
};

/** A generated library for one DLA. */
struct Library {
    hw::DlaSpec spec;
    std::vector<LibraryEntry> entries;

    /**
     * The public header of the generated library: one entry point
     * per kernel plus a by-shape dispatch helper, the artifact a
     * downstream user links against.
     *
     * When two tuned entries share a dispatch shape (same op kind
     * and parameters), dispatch() resolves the collision
     * deterministically: entries are emitted in their order in
     * `entries` and the *first* matching entry wins. LibraryBuilder
     * never produces such duplicates (add() dedupes by canonical
     * workload signature), but a hand-assembled Library keeps this
     * first-entry-wins guarantee.
     */
    std::string emit_header(const std::string &library_name) const;

    /** Human-readable build report. */
    std::string summary() const;
};

/** Tunes a workload set and emits the library. */
class LibraryBuilder
{
  public:
    LibraryBuilder(hw::DlaSpec spec, TuneConfig config);

    /**
     * Queue a workload. Workloads that duplicate an already-queued
     * canonical signature (same op kind, normalized shape, dtype,
     * and DLA — the display name does not matter) are dropped with
     * a warning instead of being tuned twice.
     */
    void add(ops::Workload workload);

    /** Number of queued workloads (after dedup). */
    size_t size() const { return workloads_.size(); }

    /** Tune everything and package the results. */
    Library build();

  private:
    hw::DlaSpec spec_;
    TuneConfig config_;
    std::vector<ops::Workload> workloads_;
    /** Canonical signatures of queued workloads (the dedup set). */
    std::unordered_set<std::string> signatures_;
};

} // namespace heron::autotune

#endif // HERON_AUTOTUNE_LIBRARY_H
