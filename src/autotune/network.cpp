#include "autotune/network.h"

#include "support/logging.h"

namespace heron::autotune {

NetworkOutcome
tune_network(Tuner &tuner, const ops::Network &network,
             double fallback_factor)
{
    NetworkOutcome outcome;
    outcome.tuner = tuner.name();
    outcome.network = network.name;

    const hw::DlaSpec &spec = tuner.spec();
    for (const auto &layer : network.layers) {
        LayerOutcome lo;
        lo.layer = layer.workload.name;
        lo.count = layer.count;

        double fallback_ms =
            static_cast<double>(layer.workload.flops()) /
            (2.0 * spec.peak_gmacs() * 1e9) * 1e3 * fallback_factor;
        // A memory-bound floor keeps tiny layers from rounding to
        // zero cost.
        fallback_ms = std::max(fallback_ms, 0.01);

        if (!tuner.supports(layer.workload)) {
            lo.latency_ms = fallback_ms;
            ++outcome.unsupported_layers;
        } else {
            auto result = tuner.tune(layer.workload);
            outcome.compile_seconds += result.compile_seconds();
            if (result.result.found()) {
                lo.latency_ms = result.result.best_latency_ms;
                lo.tuned = true;
            } else {
                lo.latency_ms = fallback_ms;
                ++outcome.unsupported_layers;
            }
        }
        outcome.total_latency_ms +=
            lo.latency_ms * static_cast<double>(lo.count);
        outcome.layers.push_back(std::move(lo));
    }
    return outcome;
}

} // namespace heron::autotune
