/**
 * @file
 * Constrained search space generation (paper §4, Algorithm 1).
 *
 * The SpaceGenerator walks the compute DAG in reverse topological
 * order applying schedule generation rules (Table 6: S1 Tensorize,
 * S2 Add Multi-Level SPM, S3 Add Multi-Scope SPM, plus the generic
 * multi-level tiling and annotation rules), producing a
 * ScheduleTemplate. It then scans the emitted schedule primitives
 * applying constraint generation rules (Table 8: C1 AddLoopSplit,
 * C2 AddLoopFuse, C3 AddCandidates, C4 AddStageFuse, C5 AddMemLimit,
 * C6 AddDLASpecific), producing CSP_initial.
 *
 * The same machinery parameterized by Options also builds the
 * baseline search spaces (AutoTVM-like manual template, Ansor-like
 * rule template without DLA constraints, AMOS-like mapping space),
 * so all generators share one measurement path.
 */
#ifndef HERON_RULES_SPACE_GENERATOR_H
#define HERON_RULES_SPACE_GENERATOR_H

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "csp/csp.h"
#include "hw/dla_spec.h"
#include "ir/dag.h"
#include "ops/op_library.h"
#include "schedule/concrete.h"
#include "schedule/template.h"

namespace heron::rules {

/** Which generator produced the space (drives template structure). */
enum class TemplateFlavor : uint8_t {
    kHeron,   ///< full rule set, all constraints
    kAutoTvm, ///< manual fixed template, fixed intrinsic, no memory
              ///< constraints in the space description
    kAmos,    ///< mapping exploration: intrinsic constraints +
              ///< memory, but fixed attach / no storage_align
    kAnsor,   ///< no tensorize (CUDA-core / scalar path)
};

/** Flavor name. */
const char *template_flavor_name(TemplateFlavor flavor);

/** Generation options (rule toggles; used for ablations too). */
struct Options {
    TemplateFlavor flavor = TemplateFlavor::kHeron;
    /** Rule-S1. */
    bool enable_tensorize = true;
    /** Rule-S2 (multi-level SPM caches). */
    bool enable_multi_level_cache = true;
    /** Rule-S3 (multi-scope SPM caches). */
    bool enable_multi_scope_cache = true;
    /** Rule-C5 (memory capacity constraints). */
    bool enable_mem_constraints = true;
    /** Rule-C6 (DLA-specific constraints). */
    bool enable_dla_specific = true;
    /** Tunable compute_at locations (SELECT constraints, C4). */
    bool tunable_attach = true;
    bool enable_vthread = true;
    bool enable_storage_align = true;
    bool enable_unroll = true;
    /**
     * Stage weights through a cache-friendly packed layout
     * (oneDNN-style OhwI16o4i blocking; paper §7.1 credits ~30% on
     * DL Boost). Baselines that cannot re-layout lack this.
     */
    bool enable_packed_layout = true;

    /** Canonical option presets for the four flavors. */
    static Options heron();
    static Options autotvm();
    static Options amos();
    static Options ansor();
};

/** Variable counts by category (paper Tables 4 and 5). */
struct SpaceStats {
    int arch_vars = 0;
    int loop_vars = 0;
    int tunable_vars = 0;
    int other_vars = 0;
    int constraints = 0;

    int total_vars() const
    {
        return arch_vars + loop_vars + tunable_vars + other_vars;
    }
};

/**
 * A generated constrained search space: template + CSP_initial plus
 * everything needed to turn solver assignments into measurable
 * programs.
 */
struct GeneratedSpace {
    ops::Workload workload;
    ir::ComputeDag dag;
    hw::DlaSpec spec;
    Options options;
    schedule::ScheduleTemplate tmpl;
    csp::Csp csp;
    SpaceStats stats;

    /**
     * Bind a complete valid assignment to a concrete program.
     * Aborts on malformed input; only for assignments produced by
     * the solver against this space.
     */
    schedule::ConcreteProgram bind(const csp::Assignment &a) const;

    /**
     * Validating bind for untrusted assignments (tuning logs,
     * journals, user input): returns nullopt and fills @p error
     * instead of aborting when the assignment does not fit this
     * space.
     */
    std::optional<schedule::ConcreteProgram>
    try_bind(const csp::Assignment &a,
             std::string *error = nullptr) const;
};

/** Generates constrained search spaces for one DLA. */
class SpaceGenerator
{
  public:
    explicit SpaceGenerator(hw::DlaSpec spec, Options options = {});

    /** Run Algorithm 1 for @p workload. */
    GeneratedSpace generate(const ops::Workload &workload) const;

  private:
    hw::DlaSpec spec_;
    Options options_;
};

/**
 * Striped memo of generated spaces keyed by workload/options hash.
 *
 * Constraint-space generation for a repeated workload shape is pure
 * — same workload, spec, and options always yield the same space —
 * so serving and tuning paths memoize it here. Entries are
 * shared_ptr<const GeneratedSpace>: immutable once published,
 * usable without any lock after retrieval. The table is striped
 * over independent mutexes so concurrent hits on different shapes
 * never contend; generation itself runs *outside* the stripe lock
 * (first insert wins when two threads race on the same key).
 */
class SpaceCache
{
  public:
    /** Memoize @p make() under @p key (first insert wins). */
    std::shared_ptr<const GeneratedSpace> get_or_generate(
        uint64_t key,
        const std::function<GeneratedSpace()> &make);

    /** Cached entry or nullptr (never generates). */
    std::shared_ptr<const GeneratedSpace> lookup(uint64_t key) const;

    /** Cached spaces across all stripes. */
    size_t size() const;

    /** Drop every cached space. */
    void clear();

    uint64_t hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }
    uint64_t misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }

  private:
    static constexpr size_t kStripes = 8;

    struct Stripe {
        mutable std::mutex mu;
        std::unordered_map<uint64_t,
                           std::shared_ptr<const GeneratedSpace>>
            map;
    };

    Stripe &stripe(uint64_t key)
    {
        return stripes_[key % kStripes];
    }
    const Stripe &stripe(uint64_t key) const
    {
        return stripes_[key % kStripes];
    }

    std::array<Stripe, kStripes> stripes_;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
};

/**
 * True when @p target can be written as a product of per-axis
 * factors f_i with f_i dividing extents[i] (tensorize
 * applicability: can the intrinsic dimension be carved out of
 * these axes?).
 */
bool can_partition(int64_t target,
                   const std::vector<int64_t> &extents);

/**
 * Rule-S1 applicability for a whole workload on a DLA: the main
 * stage is a contraction whose m/n/k role extents can realize one
 * of the DLA's intrinsic shapes.
 */
bool workload_tensorizable(const hw::DlaSpec &spec,
                           const ops::Workload &workload);

} // namespace heron::rules

#endif // HERON_RULES_SPACE_GENERATOR_H
