#include "rules/attach.h"

#include "support/logging.h"

namespace heron::rules {

using schedule::LoopRef;
using schedule::LoopRole;
using schedule::MemScope;
using schedule::StagePlan;
using schedule::StageRole;

bool
is_cooperative_scope(MemScope scope)
{
    switch (scope) {
      case MemScope::kShared:
      case MemScope::kInputBuffer:
      case MemScope::kWeightBuffer:
      case MemScope::kAccBuffer:
        return true;
      default:
        return false;
    }
}

AttachInfo
analyze_attach(const StagePlan &consumer, MemScope scope,
               StageRole role, int depth)
{
    auto order = schedule::flatten_loop_order(consumer);
    HERON_CHECK_GE(depth, -1);
    HERON_CHECK_LT(depth, static_cast<int>(order.size()));

    bool cooperative = is_cooperative_scope(scope);
    auto is_partition = [](LoopRole r) {
        return r == LoopRole::kThread || r == LoopRole::kVThread;
    };

    AttachInfo info;
    info.depth = depth;
    info.region_levels.assign(consumer.axes.size(), {});
    for (int pos = 0; pos < static_cast<int>(order.size()); ++pos) {
        const LoopRef &ref = order[static_cast<size_t>(pos)];
        const auto &axis =
            consumer.axes[static_cast<size_t>(ref.axis)];
        LoopRole loop_role =
            axis.roles[static_cast<size_t>(ref.level)];
        bool inside = pos > depth;
        bool partition = is_partition(loop_role);

        if (inside || (cooperative && partition)) {
            // Contributes to the staged region.
            info.region_levels[static_cast<size_t>(ref.axis)]
                .push_back(ref.level);
            continue;
        }
        // Outside the attach point: multiplies trips, except
        // cooperative partition levels (handled above) and, for
        // write stages, reduce loops (results are stored once).
        if (role == StageRole::kCacheWrite && axis.reduce)
            continue;
        info.trip_loops.push_back(ref);
    }
    return info;
}

} // namespace heron::rules
