#include "rules/space_generator.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>

#include "rules/attach.h"
#include "support/logging.h"
#include "support/math_util.h"

namespace heron::rules {

using csp::Csp;
using csp::Domain;
using csp::VarId;
using ir::ComputeDag;
using ir::ComputeStage;
using ir::ContractionRoles;
using ir::LinearExpr;
using schedule::LoopRef;
using schedule::LoopRole;
using schedule::MemScope;
using schedule::Primitive;
using schedule::PrimitiveKind;
using schedule::ScheduleTemplate;
using schedule::StagePlan;
using schedule::StageRole;

const char *
template_flavor_name(TemplateFlavor flavor)
{
    switch (flavor) {
      case TemplateFlavor::kHeron: return "Heron";
      case TemplateFlavor::kAutoTvm: return "AutoTVM";
      case TemplateFlavor::kAmos: return "AMOS";
      case TemplateFlavor::kAnsor: return "Ansor";
    }
    return "?";
}

Options
Options::heron()
{
    return Options{};
}

Options
Options::autotvm()
{
    Options o;
    o.flavor = TemplateFlavor::kAutoTvm;
    // Manual templates: fixed attach points, no vthread striding, no
    // storage_align, and crucially no memory-capacity constraints in
    // the space description (invalid candidates surface as
    // measurement failures).
    o.tunable_attach = false;
    o.enable_vthread = false;
    o.enable_storage_align = false;
    o.enable_mem_constraints = false;
    o.enable_packed_layout = false;
    return o;
}

Options
Options::amos()
{
    Options o;
    o.flavor = TemplateFlavor::kAmos;
    // Mapping exploration with intrinsic + memory constraints, but
    // fixed compute locations and no storage_align (paper §7.1).
    o.tunable_attach = false;
    o.enable_vthread = false;
    o.enable_storage_align = false;
    o.enable_packed_layout = false;
    return o;
}

Options
Options::ansor()
{
    Options o;
    o.flavor = TemplateFlavor::kAnsor;
    // Rule-generated templates for general-purpose cores: no
    // tensorize, no DLA-specific constraints.
    o.enable_tensorize = false;
    o.enable_dla_specific = false;
    o.enable_storage_align = false;
    o.enable_packed_layout = false;
    return o;
}

bool
can_partition(int64_t target, const std::vector<int64_t> &extents)
{
    if (target == 1)
        return true;
    if (extents.empty())
        return false;
    for (int64_t f : divisors(extents[0])) {
        if (target % f != 0)
            continue;
        std::vector<int64_t> rest(extents.begin() + 1, extents.end());
        if (can_partition(target / f, rest))
            return true;
    }
    return false;
}

namespace {

bool
roles_fit_intrinsic(const hw::DlaSpec &spec,
                    const ir::ComputeStage &stage,
                    const ir::ContractionRoles &roles)
{
    auto extents = [&](const std::vector<int> &axes) {
        std::vector<int64_t> e;
        for (int a : axes)
            e.push_back(stage.axes[static_cast<size_t>(a)].extent);
        return e;
    };
    auto fits = [&](int64_t m, int64_t n, int64_t k) {
        return can_partition(m, extents(roles.m_axes)) &&
               can_partition(n, extents(roles.n_axes)) &&
               can_partition(k, extents(roles.k_axes));
    };
    if (spec.fixed_m > 0)
        return fits(spec.fixed_m, spec.fixed_n, spec.fixed_k);
    for (int64_t m : spec.intrinsic_mnk_candidates)
        for (int64_t n : spec.intrinsic_mnk_candidates)
            for (int64_t k : spec.intrinsic_mnk_candidates)
                if (m * n * k == spec.intrinsic_volume &&
                    fits(m, n, k))
                    return true;
    return false;
}

} // namespace

bool
workload_tensorizable(const hw::DlaSpec &spec,
                      const ops::Workload &workload)
{
    ir::ComputeDag dag = workload.build();
    for (const auto &stage : dag.stages()) {
        auto roles = ir::analyze_contraction(stage);
        if (roles && roles_fit_intrinsic(spec, stage, *roles))
            return true;
    }
    return false;
}

namespace {

/** Per-(DLA, flavor, tensorized) loop structure description. */
struct Structure {
    std::vector<LoopRole> spatial_roles;
    std::vector<LoopRole> reduce_roles;
    /** Loop nest slot order: (is_reduce, level) outermost first. */
    std::vector<std::pair<bool, int>> slots;
    /** Spatial level after which the accumulator stage attaches. */
    int acc_attach_slot = 0;
    /**
     * Spatial level after which the output store attaches (deeper
     * than the accumulator on GPUs: the epilogue stores the block
     * tile in per-iteration slices through shared memory).
     */
    int store_attach_slot = 0;
    /** Reduce levels usable as cache attach candidates. */
    std::vector<int> cache_attach_reduce_levels;
};

Structure
make_structure(const hw::DlaSpec &spec, const Options &options,
               bool tensorized)
{
    Structure s;
    bool vthread = options.enable_vthread;
    // AutoTVM's manual templates and AMOS's mapping templates both
    // use a shallower tiling structure than Heron's rule-generated
    // multi-level tiling (paper SS7.1).
    bool shallow = options.flavor == TemplateFlavor::kAutoTvm ||
                   options.flavor == TemplateFlavor::kAmos;
    switch (spec.kind) {
      case hw::DlaKind::kTensorCore:
        if (tensorized) {
            if (shallow) {
                s.spatial_roles = {LoopRole::kGrid, LoopRole::kThread,
                                   LoopRole::kSerial,
                                   LoopRole::kIntrinsic};
                s.reduce_roles = {LoopRole::kSerial,
                                  LoopRole::kIntrinsic};
                s.slots = {{false, 0}, {false, 1}, {true, 0},
                           {false, 2}, {true, 1}, {false, 3}};
                s.acc_attach_slot = 1;
                s.store_attach_slot = 2;
                s.cache_attach_reduce_levels = {0};
            } else {
                if (vthread) {
                    s.spatial_roles = {LoopRole::kGrid,
                                       LoopRole::kVThread,
                                       LoopRole::kThread,
                                       LoopRole::kSerial,
                                       LoopRole::kIntrinsic};
                } else {
                    s.spatial_roles = {LoopRole::kGrid,
                                       LoopRole::kThread,
                                       LoopRole::kSerial,
                                       LoopRole::kSerial,
                                       LoopRole::kIntrinsic};
                }
                s.reduce_roles = {LoopRole::kSerial, LoopRole::kSerial,
                                  LoopRole::kIntrinsic};
                s.slots = {{false, 0}, {false, 1}, {false, 2},
                           {true, 0},  {true, 1},  {false, 3},
                           {true, 2},  {false, 4}};
                s.acc_attach_slot = 2;
                s.store_attach_slot = 3;
                s.cache_attach_reduce_levels = {0, 1};
            }
        } else {
            s.spatial_roles = {LoopRole::kGrid,
                               vthread ? LoopRole::kVThread
                                       : LoopRole::kSerial,
                               LoopRole::kThread, LoopRole::kSerial};
            s.reduce_roles = {LoopRole::kSerial, LoopRole::kSerial};
            s.slots = {{false, 0}, {false, 1}, {false, 2}, {true, 0},
                       {true, 1},  {false, 3}};
            s.acc_attach_slot = 2;
            s.store_attach_slot = 3;
            s.cache_attach_reduce_levels = {0, 1};
        }
        break;
      case hw::DlaKind::kDlBoost:
        if (tensorized) {
            if (shallow) {
                s.spatial_roles = {LoopRole::kCore, LoopRole::kSerial,
                                   LoopRole::kIntrinsic};
                s.reduce_roles = {LoopRole::kSerial,
                                  LoopRole::kIntrinsic};
                s.slots = {{false, 0}, {true, 0}, {false, 1},
                           {true, 1}, {false, 2}};
                s.acc_attach_slot = 0;
                s.store_attach_slot = 0;
                s.cache_attach_reduce_levels = {0};
            } else {
                s.spatial_roles = {LoopRole::kCore, LoopRole::kSerial,
                                   LoopRole::kSerial,
                                   LoopRole::kIntrinsic};
                s.reduce_roles = {LoopRole::kSerial, LoopRole::kSerial,
                                  LoopRole::kIntrinsic};
                s.slots = {{false, 0}, {true, 0}, {false, 1},
                           {true, 1},  {false, 2}, {true, 2},
                           {false, 3}};
                s.acc_attach_slot = 2;
                s.store_attach_slot = 2;
                s.cache_attach_reduce_levels = {0, 1};
            }
        } else {
            s.spatial_roles = {LoopRole::kCore, LoopRole::kSerial,
                               LoopRole::kSerial};
            s.reduce_roles = {LoopRole::kSerial, LoopRole::kSerial};
            s.slots = {{false, 0}, {true, 0}, {false, 1}, {true, 1},
                       {false, 2}};
            s.acc_attach_slot = 2;
            s.store_attach_slot = 2;
            s.cache_attach_reduce_levels = {0, 1};
        }
        break;
      case hw::DlaKind::kVta:
      case hw::DlaKind::kTpu:
        s.spatial_roles = {LoopRole::kSerial, LoopRole::kBuffer,
                           LoopRole::kIntrinsic};
        s.reduce_roles = {LoopRole::kSerial, LoopRole::kBuffer,
                          LoopRole::kIntrinsic};
        s.slots = {{false, 0}, {true, 0}, {false, 1}, {true, 1},
                   {false, 2}, {true, 2}};
        s.acc_attach_slot = 1; // after {S,1} (buffer spatial tile)
        s.store_attach_slot = 1;
        s.cache_attach_reduce_levels =
            options.flavor == TemplateFlavor::kAutoTvm
                ? std::vector<int>{0}
                : std::vector<int>{0, 1};
        break;
    }
    return s;
}

/** The whole generation state for one workload. */
class Generation
{
  public:
    Generation(const hw::DlaSpec &spec, const Options &options,
               const ops::Workload &workload)
        : spec_(spec), options_(options), workload_(workload),
          dag_(workload.build())
    {
    }

    GeneratedSpace
    run()
    {
        // Step 1 (Algorithm 1): schedule template generation over
        // DAG nodes in reverse topological order.
        for (int node : dag_.reverse_topological())
            schedule_node(node);
        // Step 2: constraint generation by scanning primitives.
        generate_constraints();

        GeneratedSpace space;
        space.workload = workload_;
        space.dag = std::move(dag_);
        space.spec = spec_;
        space.options = options_;
        space.tmpl = std::move(tmpl_);
        space.csp = std::move(csp_);
        space.stats = stats_;
        return space;
    }

  private:
    const hw::DlaSpec &spec_;
    const Options &options_;
    const ops::Workload &workload_;
    ComputeDag dag_;
    ScheduleTemplate tmpl_;
    Csp csp_;
    SpaceStats stats_;

    // ---- Step 1: schedule rules -------------------------------

    /** Rule-S1 condition: Tensorizable(S, i). */
    bool
    tensorizable(const ComputeStage &stage,
                 const ContractionRoles &roles) const
    {
        if (!options_.enable_tensorize)
            return false;
        return roles_fit_intrinsic(spec_, stage, roles);
    }

    void
    schedule_node(int node)
    {
        const ComputeStage &stage = dag_.stage(node);
        auto roles = ir::analyze_contraction(stage);
        bool tensorize = roles && tensorizable(stage, *roles);
        if (spec_.kind == hw::DlaKind::kVta ||
            spec_.kind == hw::DlaKind::kTpu) {
            HERON_CHECK(tensorize)
                << dla_kind_name(spec_.kind)
                << " cannot execute non-tensorizable stage "
                << stage.name;
        }

        Structure structure =
            make_structure(spec_, options_, tensorize);
        StagePlan main = build_main_plan(stage, node, structure,
                                         tensorize, roles);
        add_annotations(main);
        int attach_pos_acc =
            slot_end_position(main, structure, false,
                              structure.acc_attach_slot);
        int attach_pos_store =
            slot_end_position(main, structure, false,
                              structure.store_attach_slot);
        if (attach_pos_store < 0)
            attach_pos_store = attach_pos_acc;
        std::vector<int> cache_candidates;
        for (int level : structure.cache_attach_reduce_levels) {
            int pos = slot_end_position(main, structure, true, level);
            if (pos >= 0)
                cache_candidates.push_back(pos);
        }
        if (!options_.tunable_attach && cache_candidates.size() > 1)
            cache_candidates.resize(1);
        std::sort(cache_candidates.begin(), cache_candidates.end());
        cache_candidates.erase(std::unique(cache_candidates.begin(),
                                           cache_candidates.end()),
                               cache_candidates.end());

        int stream_attach =
            std::max(0,
                     static_cast<int>(main.loop_order.size()) - 2);
        std::string main_name = main.name;
        bool reuse = stage.has_data_reuse();
        // Pushing the main plan may reallocate; use copies below.
        tmpl_.stages.push_back(std::move(main));

        if (reuse &&
            (options_.enable_multi_scope_cache || tensorize)) {
            add_write_stages(stage, main_name, attach_pos_acc,
                             attach_pos_store, tensorize);
        }
        if (reuse && options_.enable_multi_level_cache) {
            add_read_stages(stage, main_name, cache_candidates,
                            tensorize);
        }
        if (!reuse) {
            add_streaming_stages(stage, main_name, stream_attach);
        }
    }

    StagePlan
    build_main_plan(const ComputeStage &stage, int node,
                    const Structure &structure, bool tensorize,
                    const std::optional<ContractionRoles> &roles)
    {
        StagePlan plan;
        plan.name = stage.name;
        plan.role = StageRole::kMain;
        plan.ir_stage = node;
        plan.scope = MemScope::kGlobal;
        plan.tensorized = tensorize;

        bool scan = stage.combiner == ir::CombinerKind::kScan;
        for (size_t a = 0; a < stage.axes.size(); ++a) {
            const auto &axis = stage.axes[a];
            schedule::TiledAxis tiled;
            tiled.name = axis.name;
            tiled.extent = axis.extent;
            tiled.reduce = axis.reduce;
            bool sequential =
                scan && static_cast<int>(a) ==
                            stage.num_spatial - 1;
            if (sequential) {
                tiled.roles = {LoopRole::kSerial};
            } else if (axis.reduce) {
                tiled.roles = structure.reduce_roles;
            } else {
                tiled.roles = structure.spatial_roles;
            }
            plan.axes.push_back(std::move(tiled));
        }

        if (tensorize && roles) {
            plan.m_axes = roles->m_axes;
            plan.n_axes = roles->n_axes;
            plan.k_axes = roles->k_axes;
            // Batch axes tile like m but never enter the intrinsic:
            // pin their intrinsic level to length 1 by dropping it.
            // Manual/mapping templates (AutoTVM, AMOS) bind the
            // whole batch axis to the grid.
            bool shallow =
                options_.flavor == TemplateFlavor::kAutoTvm ||
                options_.flavor == TemplateFlavor::kAmos;
            for (int a : roles->batch_axes) {
                auto &r = plan.axes[static_cast<size_t>(a)].roles;
                if (shallow &&
                    spec_.kind == hw::DlaKind::kTensorCore) {
                    r = {LoopRole::kGrid};
                    continue;
                }
                if (!r.empty() &&
                    r.back() == LoopRole::kIntrinsic)
                    r.pop_back();
            }
            if (spec_.fixed_m > 0) {
                plan.intrinsic_m_candidates = {spec_.fixed_m};
                plan.intrinsic_n_candidates = {spec_.fixed_n};
                plan.intrinsic_k_candidates = {spec_.fixed_k};
            } else if (options_.flavor == TemplateFlavor::kAutoTvm) {
                // Manual templates hard-code one intrinsic shape:
                // 16x16x16 when the shape admits it, else the first
                // feasible alternative the template author shipped.
                auto extents = [&](const std::vector<int> &axes) {
                    std::vector<int64_t> e;
                    for (int a : axes)
                        e.push_back(
                            stage.axes[static_cast<size_t>(a)]
                                .extent);
                    return e;
                };
                auto fits = [&](int64_t m, int64_t n, int64_t k) {
                    return m * n * k == spec_.intrinsic_volume &&
                           can_partition(m,
                                         extents(roles->m_axes)) &&
                           can_partition(n,
                                         extents(roles->n_axes)) &&
                           can_partition(k, extents(roles->k_axes));
                };
                int64_t bm = 16, bn = 16, bk = 16;
                if (!fits(bm, bn, bk)) {
                    for (int64_t m : spec_.intrinsic_mnk_candidates)
                        for (int64_t n :
                             spec_.intrinsic_mnk_candidates)
                            for (int64_t k :
                                 spec_.intrinsic_mnk_candidates)
                                if (fits(m, n, k)) {
                                    bm = m;
                                    bn = n;
                                    bk = k;
                                    goto found;
                                }
                  found:;
                }
                plan.intrinsic_m_candidates = {bm};
                plan.intrinsic_n_candidates = {bn};
                plan.intrinsic_k_candidates = {bk};
            } else {
                plan.intrinsic_m_candidates =
                    spec_.intrinsic_mnk_candidates;
                plan.intrinsic_n_candidates =
                    spec_.intrinsic_mnk_candidates;
                plan.intrinsic_k_candidates =
                    spec_.intrinsic_mnk_candidates;
                plan.intrinsic_volume = spec_.intrinsic_volume;
            }
        }

        // Flattened loop order from the structure's slot sequence.
        for (auto [is_reduce, level] : structure.slots) {
            for (int a = 0; a < static_cast<int>(plan.axes.size());
                 ++a) {
                const auto &axis = plan.axes[static_cast<size_t>(a)];
                if (axis.reduce != is_reduce)
                    continue;
                if (axis.num_levels() ==
                    static_cast<int>((is_reduce
                                          ? structure.reduce_roles
                                          : structure.spatial_roles)
                                         .size())) {
                    if (level < axis.num_levels())
                        plan.loop_order.push_back(LoopRef{a, level});
                } else if (!is_reduce && axis.num_levels() == 1) {
                    if (axis.roles[0] == LoopRole::kGrid) {
                        // Grid-bound batch axis: outermost slot.
                        if (level == 0)
                            plan.loop_order.push_back(LoopRef{a, 0});
                    } else if (level ==
                               static_cast<int>(
                                   structure.spatial_roles.size()) -
                                   1) {
                        // Sequential (scan) axis: innermost serial
                        // slot.
                        plan.loop_order.push_back(LoopRef{a, 0});
                    }
                } else {
                    // Axis with a trimmed intrinsic level (batch).
                    if (level < axis.num_levels())
                        plan.loop_order.push_back(LoopRef{a, level});
                }
            }
        }

        emit_main_primitives(plan);
        return plan;
    }

    /** Position of the last loop of slot (is_reduce, level); -1 if
     * the slot is empty. */
    int
    slot_end_position(const StagePlan &plan, const Structure &,
                      bool is_reduce, int level) const
    {
        int pos = -1;
        for (int i = 0; i < static_cast<int>(plan.loop_order.size());
             ++i) {
            const LoopRef &ref =
                plan.loop_order[static_cast<size_t>(i)];
            const auto &axis =
                plan.axes[static_cast<size_t>(ref.axis)];
            if (axis.reduce == is_reduce && ref.level == level)
                pos = i;
        }
        return pos;
    }

    void
    emit_main_primitives(const StagePlan &plan)
    {
        for (const auto &axis : plan.axes) {
            for (int l = 1; l < axis.num_levels(); ++l) {
                Primitive p;
                p.kind = PrimitiveKind::kSplit;
                p.stage = plan.name;
                p.loops = {axis.name};
                p.results = {axis.level_name(plan.name, l - 1),
                             axis.level_name(plan.name, l)};
                p.param = "tile." + axis.level_name(plan.name, l);
                tmpl_.primitives.push_back(std::move(p));
            }
        }
        Primitive reorder;
        reorder.kind = PrimitiveKind::kReorder;
        reorder.stage = plan.name;
        for (const auto &ref : plan.loop_order)
            reorder.loops.push_back(
                plan.axes[static_cast<size_t>(ref.axis)].level_name(
                    plan.name, ref.level));
        tmpl_.primitives.push_back(std::move(reorder));

        // Bind parallel levels.
        for (const auto &axis : plan.axes) {
            for (int l = 0; l < axis.num_levels(); ++l) {
                LoopRole role = axis.roles[static_cast<size_t>(l)];
                const char *target = nullptr;
                if (role == LoopRole::kGrid)
                    target = "blockIdx";
                else if (role == LoopRole::kThread)
                    target = "threadIdx";
                else if (role == LoopRole::kVThread)
                    target = "vthread";
                else if (role == LoopRole::kCore)
                    target = "cpu_core";
                if (!target)
                    continue;
                Primitive p;
                p.kind = role == LoopRole::kCore
                             ? PrimitiveKind::kParallel
                             : PrimitiveKind::kBind;
                p.stage = plan.name;
                p.loops = {axis.level_name(plan.name, l)};
                p.target = target;
                tmpl_.primitives.push_back(std::move(p));
            }
        }

        if (plan.tensorized) {
            // Fuse the intrinsic levels of multi-axis roles, then
            // tensorize (the im2col view of convolutions).
            auto fuse_role = [&](const std::vector<int> &axes,
                                 const char *role_name) {
                Primitive p;
                p.kind = PrimitiveKind::kFuse;
                p.stage = plan.name;
                for (int a : axes) {
                    const auto &axis =
                        plan.axes[static_cast<size_t>(a)];
                    int l = axis.num_levels() - 1;
                    p.loops.push_back(
                        axis.level_name(plan.name, l));
                }
                p.results = {plan.name + ".wmmafuse." + role_name};
                tmpl_.primitives.push_back(std::move(p));
            };
            fuse_role(plan.m_axes, "m");
            fuse_role(plan.n_axes, "n");
            fuse_role(plan.k_axes, "k");

            Primitive t;
            t.kind = PrimitiveKind::kTensorize;
            t.stage = plan.name;
            t.loops = {plan.name + ".wmmafuse.m",
                       plan.name + ".wmmafuse.n",
                       plan.name + ".wmmafuse.k"};
            t.target = spec_.kind == hw::DlaKind::kTensorCore
                           ? "mma_sync"
                           : (spec_.kind == hw::DlaKind::kDlBoost
                                  ? "vpdpbusd"
                                  : "vta_gemm");
            t.candidates = plan.intrinsic_m_candidates;
            tmpl_.primitives.push_back(std::move(t));
        }
    }

    /** Rule-S3: accumulator cache write + output store staging. */
    void
    add_write_stages(const ComputeStage &stage,
                     const std::string &main_name, int attach_pos,
                     int store_attach_pos, bool tensorized)
    {
        MemScope acc_scope;
        switch (spec_.kind) {
          case hw::DlaKind::kTensorCore:
            acc_scope = tensorized ? MemScope::kFragment
                                   : MemScope::kRegister;
            break;
          case hw::DlaKind::kDlBoost:
            acc_scope = MemScope::kRegister;
            break;
          case hw::DlaKind::kVta:
          case hw::DlaKind::kTpu:
            acc_scope = MemScope::kAccBuffer;
            break;
          default:
            acc_scope = MemScope::kRegister;
        }

        StagePlan acc;
        acc.name = main_name + ".acc";
        acc.role = StageRole::kCacheWrite;
        acc.tensor = stage.output.name;
        acc.scope = acc_scope;
        acc.compute_at = main_name;
        acc.attach_candidates = {attach_pos};
        emit_cache_primitives(acc, true);
        tmpl_.stages.push_back(std::move(acc));

        // Output store staging: through shared memory on GPUs,
        // direct vectorized store elsewhere.
        StagePlan store;
        store.name = main_name + ".store";
        store.role = StageRole::kCacheWrite;
        store.tensor = stage.output.name;
        store.scope = spec_.kind == hw::DlaKind::kTensorCore &&
                              tensorized
                          ? MemScope::kShared
                          : MemScope::kGlobal;
        store.compute_at = main_name;
        store.attach_candidates = {store_attach_pos};
        store.has_vectorize = true;
        store.vector_candidates = spec_.vector_lengths;
        emit_cache_primitives(store, true);
        tmpl_.stages.push_back(std::move(store));
    }

    /** Rule-S2: multi-level cache reads for each input operand. */
    void
    add_read_stages(const ComputeStage &stage,
                    const std::string &main_name,
                    const std::vector<int> &candidates,
                    bool tensorized)
    {
        int frag_attach =
            candidates.empty() ? 0 : candidates.back();
        for (size_t r = 0; r < stage.reads.size(); ++r) {
            const std::string &tensor = stage.reads[r].tensor;
            MemScope outer_scope, inner_scope;
            bool has_inner = true;
            switch (spec_.kind) {
              case hw::DlaKind::kTensorCore:
                outer_scope = MemScope::kShared;
                inner_scope = tensorized ? MemScope::kFragment
                                         : MemScope::kRegister;
                break;
              case hw::DlaKind::kDlBoost:
                outer_scope = MemScope::kL2;
                inner_scope = MemScope::kL1;
                break;
              case hw::DlaKind::kVta:
              case hw::DlaKind::kTpu:
                outer_scope = r == 0 ? MemScope::kInputBuffer
                                     : MemScope::kWeightBuffer;
                has_inner = false;
                inner_scope = MemScope::kRegister;
                break;
              default:
                outer_scope = MemScope::kShared;
                inner_scope = MemScope::kRegister;
            }

            StagePlan outer;
            outer.name = tensor + "." + mem_scope_name(outer_scope);
            outer.role = StageRole::kCacheRead;
            outer.tensor = tensor;
            outer.scope = outer_scope;
            outer.compute_at = main_name;
            outer.attach_candidates = candidates;
            outer.has_vectorize = true;
            outer.vector_candidates = spec_.vector_lengths;
            if (options_.enable_storage_align &&
                outer_scope == MemScope::kShared) {
                outer.has_storage_align = true;
                outer.storage_align_candidates = {0, 4, 8, 16, 24};
            }
            // Weight operands are re-laid-out into a packed
            // cache-friendly blocking when the generator supports
            // it (Heron and vendor libraries; cf. oneDNN layouts).
            if (options_.enable_packed_layout && r == 1)
                outer.packed_layout = true;
            emit_cache_primitives(outer, false);
            tmpl_.stages.push_back(std::move(outer));

            if (has_inner && options_.enable_multi_scope_cache) {
                StagePlan inner;
                inner.name =
                    tensor + "." + mem_scope_name(inner_scope);
                inner.role = StageRole::kCacheRead;
                inner.tensor = tensor;
                inner.scope = inner_scope;
                inner.compute_at = main_name;
                inner.attach_candidates = {frag_attach};
                emit_cache_primitives(inner, false);
                tmpl_.stages.push_back(std::move(inner));
            }
        }
    }

    /** Streaming loads/stores for stages without data reuse. */
    void
    add_streaming_stages(const ComputeStage &stage,
                         const std::string &main_name, int attach)
    {
        for (const auto &read : stage.reads) {
            StagePlan s;
            s.name = read.tensor + ".stream";
            s.role = StageRole::kCacheRead;
            s.tensor = read.tensor;
            s.scope = MemScope::kGlobal;
            s.compute_at = main_name;
            s.attach_candidates = {attach};
            s.has_vectorize = true;
            s.vector_candidates = spec_.vector_lengths;
            emit_cache_primitives(s, false);
            tmpl_.stages.push_back(std::move(s));
        }
        StagePlan out;
        out.name = main_name + ".store";
        out.role = StageRole::kCacheWrite;
        out.tensor = stage.output.name;
        out.scope = MemScope::kGlobal;
        out.compute_at = main_name;
        out.attach_candidates = {attach};
        out.has_vectorize = true;
        out.vector_candidates = spec_.vector_lengths;
        emit_cache_primitives(out, true);
        tmpl_.stages.push_back(std::move(out));
    }

    void
    emit_cache_primitives(const StagePlan &plan, bool is_write)
    {
        Primitive c;
        c.kind = is_write ? PrimitiveKind::kCacheWrite
                          : PrimitiveKind::kCacheRead;
        c.stage = plan.name;
        c.target = plan.tensor;
        c.scope = mem_scope_name(plan.scope);
        tmpl_.primitives.push_back(std::move(c));

        Primitive at;
        at.kind = PrimitiveKind::kComputeAt;
        at.stage = plan.name;
        at.target = plan.compute_at;
        at.param = "loc." + plan.name;
        at.candidates.assign(plan.attach_candidates.begin(),
                             plan.attach_candidates.end());
        tmpl_.primitives.push_back(std::move(at));

        if (plan.has_vectorize) {
            Primitive v;
            v.kind = PrimitiveKind::kVectorize;
            v.stage = plan.name;
            v.param = "vec." + plan.name;
            v.candidates = plan.vector_candidates;
            tmpl_.primitives.push_back(std::move(v));
        }
        if (plan.has_storage_align) {
            Primitive p;
            p.kind = PrimitiveKind::kStorageAlign;
            p.stage = plan.name;
            p.param = "pad." + plan.name;
            p.candidates = plan.storage_align_candidates;
            tmpl_.primitives.push_back(std::move(p));
        }
    }

    void
    add_annotations(StagePlan &main)
    {
        if (!options_.enable_unroll)
            return;
        main.has_unroll = true;
        main.unroll_candidates = {1, 2, 4, 8, 16};
        Primitive u;
        u.kind = PrimitiveKind::kUnroll;
        u.stage = main.name;
        u.param = "unroll." + main.name;
        u.candidates = main.unroll_candidates;
        tmpl_.primitives.push_back(std::move(u));
    }

    // ---- Step 2: constraint rules -----------------------------

    VarId
    loop_var(const std::string &stage_name, const std::string &axis,
             int level)
    {
        std::ostringstream name;
        name << stage_name << "." << axis << "." << level;
        return csp_.var_id(name.str());
    }

    void
    generate_constraints()
    {
        // Loop-length variables first: every tile level of every
        // main stage gets a loop var with a divisor domain.
        for (const auto &plan : tmpl_.stages) {
            if (plan.role != StageRole::kMain)
                continue;
            for (const auto &axis : plan.axes) {
                std::vector<VarId> levels;
                auto divs = divisors(axis.extent);
                for (int l = 0; l < axis.num_levels(); ++l) {
                    VarId v = csp_.add_var(
                        axis.level_name(plan.name, l),
                        Domain::of(divs), false);
                    levels.push_back(v);
                    ++stats_.loop_vars;
                }
                VarId extent = csp_.add_const(axis.extent);
                csp_.add_prod(extent, levels, "C1:extent");
            }
        }

        // Scan primitives in emission order (Algorithm 1 step 2).
        for (const auto &p : tmpl_.primitives) {
            switch (p.kind) {
              case PrimitiveKind::kSplit:
                rule_c1_split(p);
                break;
              case PrimitiveKind::kFuse:
                rule_c2_fuse(p);
                break;
              case PrimitiveKind::kComputeAt:
                rule_c4_stage_fuse(p);
                break;
              case PrimitiveKind::kVectorize:
              case PrimitiveKind::kUnroll:
              case PrimitiveKind::kStorageAlign:
                rule_c3_candidates(p);
                break;
              case PrimitiveKind::kTensorize:
                rule_c6_tensorize(p);
                break;
              default:
                break;
            }
        }

        if (options_.enable_mem_constraints)
            rule_c5_mem_limits();
        // Generic platform constraints (thread caps, aligned
        // vectorization) apply to every generator; only the truly
        // DLA-specific extras are gated.
        rule_generic_platform();
        if (options_.enable_dla_specific)
            rule_c6_dla_extras();

        stats_.constraints =
            static_cast<int>(csp_.num_constraints());
        // Constants and anything not otherwise categorized count as
        // "other" variables (paper Table 4).
        stats_.other_vars =
            static_cast<int>(csp_.num_vars()) - stats_.arch_vars -
            stats_.loop_vars - stats_.tunable_vars;
    }

    /** C1 AddLoopSplit: tunable tile parameter == loop length. */
    void
    rule_c1_split(const Primitive &p)
    {
        const StagePlan &plan = tmpl_.stage(p.stage);
        // p.results[1] is "<stage>.<axis>.<level>".
        VarId lv = csp_.var_id(p.results[1]);
        int axis = plan.find_axis(p.loops[0]);
        HERON_CHECK_GE(axis, 0);
        const auto &tiled = plan.axes[static_cast<size_t>(axis)];
        auto divs = divisors(tiled.extent);
        // The level index is the suffix of the produced loop name.
        int level = std::atoi(p.results[1]
                                  .substr(p.results[1].rfind('.') + 1)
                                  .c_str());
        // Intrinsic levels of large-intrinsic DLAs (e.g. the TPU's
        // 256-wide matrix unit) are hard-coded by template authors
        // and keep their full candidates; small intrinsics fit the
        // manual candidate list anyway.
        bool exempt_intrinsic =
            level < tiled.num_levels() &&
            tiled.roles[static_cast<size_t>(level)] ==
                LoopRole::kIntrinsic &&
            std::max({spec_.fixed_m, spec_.fixed_n,
                      spec_.fixed_k}) > 32;
        if (options_.flavor == TemplateFlavor::kAutoTvm &&
            !exempt_intrinsic) {
            // Manual templates enumerate small hand-picked factor
            // candidates (powers of two plus small odd factors for
            // convolution windows) instead of all divisors.
            // Hand-picked factor candidates; intrinsic levels keep
            // their full candidates (the template hard-codes them).
            std::vector<int64_t> manual;
            for (int64_t d : divs)
                if ((is_pow2(d) && d <= 32) || (d > 1 && d <= 7))
                    manual.push_back(d);
            if (!manual.empty()) {
                if (manual.front() != 1)
                    manual.insert(manual.begin(), 1);
                divs = std::move(manual);
            }
        }
        VarId tile = csp_.add_var(p.param, Domain::of(divs), true);
        ++stats_.tunable_vars;
        csp_.add_eq(tile, lv, "C1:split");
    }

    /** C2 AddLoopFuse: fused length == product of parts. */
    void
    rule_c2_fuse(const Primitive &p)
    {
        std::vector<VarId> parts;
        int64_t max_prod = 1;
        for (const auto &loop : p.loops) {
            VarId v = csp_.var_id(loop);
            parts.push_back(v);
            max_prod = checked_mul(max_prod,
                                   csp_.var(v).initial.max());
        }
        VarId fused = csp_.add_var(
            p.results[0], Domain::interval(1, max_prod), false);
        ++stats_.loop_vars;
        if (parts.empty())
            return;
        csp_.add_prod(fused, parts, "C2:fuse");
    }

    /** C3 AddCandidates: IN constraints for candidate parameters. */
    void
    rule_c3_candidates(const Primitive &p)
    {
        VarId v =
            csp_.add_var(p.param, Domain::of(p.candidates), true);
        ++stats_.tunable_vars;
        csp_.add_in(v, p.candidates, "C3:candidates");
    }

    /**
     * C4 AddStageFuse: per-candidate footprint variables plus a
     * SELECT on the tunable compute location, then the staged
     * region size (used later by C5).
     */
    void
    rule_c4_stage_fuse(const Primitive &p)
    {
        const StagePlan &plan = tmpl_.stage(p.stage);
        const StagePlan &consumer = tmpl_.stage(p.target);
        const ComputeStage &ir_stage =
            dag_.stage(consumer.ir_stage);

        // The access this stage stages: a read of plan.tensor, or
        // the output store.
        const std::vector<LinearExpr> *access = nullptr;
        if (plan.role == StageRole::kCacheRead) {
            for (const auto &read : ir_stage.reads)
                if (read.tensor == plan.tensor)
                    access = &read.indices;
        } else {
            access = &ir_stage.output_indices;
        }
        HERON_CHECK(access != nullptr);

        int num_cands =
            static_cast<int>(plan.attach_candidates.size());
        HERON_CHECK_GE(num_cands, 1);
        VarId loc = -1;
        if (num_cands > 1) {
            std::vector<int64_t> locs;
            for (int i = 0; i < num_cands; ++i)
                locs.push_back(i);
            loc = csp_.add_var(p.param, Domain::of(locs), true);
            ++stats_.tunable_vars;
        }

        // Per candidate, per consumer axis: region length variable.
        std::vector<std::vector<VarId>> axis_len(
            static_cast<size_t>(num_cands));
        for (int c = 0; c < num_cands; ++c) {
            AttachInfo info = analyze_attach(
                consumer, plan.scope, plan.role,
                plan.attach_candidates[static_cast<size_t>(c)]);
            for (size_t a = 0; a < consumer.axes.size(); ++a) {
                const auto &levels = info.region_levels[a];
                std::ostringstream name;
                name << plan.name << ".c" << c << "."
                     << consumer.axes[a].name;
                if (levels.empty()) {
                    axis_len[static_cast<size_t>(c)].push_back(
                        csp_.add_const(1));
                    continue;
                }
                std::vector<VarId> parts;
                for (int l : levels)
                    parts.push_back(loop_var(consumer.name,
                                             consumer.axes[a].name,
                                             l));
                VarId v = csp_.add_var(
                    name.str(),
                    Domain::interval(1, consumer.axes[a].extent),
                    false);
                ++stats_.loop_vars;
                csp_.add_prod(v, parts, "C4:region");
                axis_len[static_cast<size_t>(c)].push_back(v);
            }
        }

        // Per tensor dimension: footprint per candidate + SELECT.
        std::vector<VarId> dims;
        for (size_t j = 0; j < access->size(); ++j) {
            std::vector<VarId> per_cand;
            for (int c = 0; c < num_cands; ++c) {
                std::ostringstream name;
                name << plan.name << ".c" << c << ".d" << j;
                per_cand.push_back(footprint_var(
                    name.str(), (*access)[j],
                    axis_len[static_cast<size_t>(c)]));
            }
            std::ostringstream name;
            name << plan.name << ".d" << j;
            VarId dim = csp_.add_var(
                name.str(),
                Domain::interval(1, int64_t{1} << 40), false);
            ++stats_.loop_vars;
            if (num_cands == 1) {
                csp_.add_eq(dim, per_cand[0], "C4:fixed-loc");
            } else {
                csp_.add_select(dim, loc, per_cand, "C4:select");
            }
            dims.push_back(dim);
        }

    }

    /**
     * Footprint of one affine tensor index over region lengths:
     * sum(|coef| * (len - 1)) + 1 expressed with SUM/PROD.
     */
    VarId
    footprint_var(const std::string &name, const LinearExpr &expr,
                  const std::vector<VarId> &axis_len)
    {
        // Fast path: single unit-coefficient term.
        if (expr.terms.size() == 1 && expr.terms[0].coef == 1)
            return axis_len[static_cast<size_t>(expr.terms[0].axis)];
        if (expr.terms.empty())
            return csp_.add_const(1);

        VarId one = csp_.add_const(1);
        std::vector<VarId> terms;
        for (size_t t = 0; t < expr.terms.size(); ++t) {
            VarId len =
                axis_len[static_cast<size_t>(expr.terms[t].axis)];
            int64_t len_max = csp_.var(len).initial.max();
            std::ostringstream m1name;
            m1name << name << ".t" << t << "m1";
            VarId lm1 = csp_.add_var(
                m1name.str(), Domain::interval(0, len_max - 1),
                false);
            ++stats_.other_vars;
            // len = lm1 + 1
            csp_.add_sum(len, {lm1, one}, "C4:footprint");
            int64_t coef = std::abs(expr.terms[t].coef);
            if (coef == 1) {
                terms.push_back(lm1);
            } else {
                std::ostringstream tname;
                tname << name << ".t" << t;
                VarId term = csp_.add_var(
                    tname.str(),
                    Domain::interval(0, coef * (len_max - 1)),
                    false);
                ++stats_.other_vars;
                csp_.add_prod(term, {lm1, csp_.add_const(coef)},
                              "C4:footprint");
                terms.push_back(term);
            }
        }
        terms.push_back(one);
        VarId fp = csp_.add_var(
            name, Domain::interval(1, int64_t{1} << 40), false);
        ++stats_.loop_vars;
        csp_.add_sum(fp, terms, "C4:footprint");
        return fp;
    }

    /**
     * C5 AddMemLimit: per-cache-stage memory variables (rows *
     * (row + pad) * element size, matching the allocation the
     * storage_align primitive produces) plus per-scope capacity
     * constraints.
     */
    void
    rule_c5_mem_limits()
    {
        std::map<MemScope, std::vector<VarId>> by_scope;
        for (const auto &plan : tmpl_.stages) {
            if (plan.role == StageRole::kMain)
                continue;
            VarId mem = make_mem_var(plan);
            if (mem < 0)
                continue;
            by_scope[plan.scope].push_back(mem);
        }
        for (auto &[scope, mems] : by_scope) {
            int64_t cap = scope_capacity(scope);
            if (cap <= 0)
                continue;
            VarId total = csp_.add_var(
                std::string("mem.") + mem_scope_name(scope),
                Domain::interval(0, int64_t{1} << 50), false);
            ++stats_.other_vars;
            csp_.add_sum(total, mems, "C5:total");
            csp_.add_le(total, csp_.add_const(cap), "C5:capacity");
        }
    }

    /** Memory consumption variable of one cache stage; -1 when the
     * stage has no footprint variables (e.g. streaming). */
    VarId
    make_mem_var(const StagePlan &plan)
    {
        const ir::Tensor &tensor = dag_.tensor(plan.tensor);
        int ndim = tensor.ndim();
        std::vector<VarId> dims;
        for (int j = 0; j < ndim; ++j) {
            std::ostringstream name;
            name << plan.name << ".d" << j;
            VarId d = csp_.find_var(name.str());
            if (d < 0)
                return -1;
            dims.push_back(d);
        }
        // rows = product of all but the innermost dim.
        VarId rows;
        if (dims.size() == 1) {
            rows = csp_.add_const(1);
        } else {
            rows = csp_.add_var(
                plan.name + ".rows",
                Domain::interval(1, int64_t{1} << 40), false);
            std::vector<VarId> outer(dims.begin(), dims.end() - 1);
            csp_.add_prod(rows, outer, "C5:rows");
        }
        // padded row = row + storage_align pad.
        VarId row = dims.back();
        VarId padded_row = row;
        VarId pad = csp_.find_var("pad." + plan.name);
        if (pad >= 0) {
            padded_row = csp_.add_var(
                plan.name + ".rowpad",
                Domain::interval(1, int64_t{1} << 40), false);
            csp_.add_sum(padded_row, {row, pad}, "C5:rowpad");
        }
        VarId mem = csp_.add_var(
            "mem." + plan.name,
            Domain::interval(0, int64_t{1} << 50), false);
        csp_.add_prod(
            mem,
            {rows, padded_row,
             csp_.add_const(ir::dtype_bytes(tensor.dtype))},
            "C5:mem");
        return mem;
    }

    int64_t
    scope_capacity(MemScope scope) const
    {
        switch (scope) {
          case MemScope::kShared: return spec_.shared_capacity;
          case MemScope::kFragment: return spec_.fragment_capacity;
          case MemScope::kRegister: return spec_.fragment_capacity;
          case MemScope::kL2: return spec_.shared_capacity;
          case MemScope::kL1: return spec_.l1_capacity;
          case MemScope::kInputBuffer:
            return spec_.input_buffer_capacity;
          case MemScope::kWeightBuffer:
            return spec_.weight_buffer_capacity;
          case MemScope::kAccBuffer:
            return spec_.acc_buffer_capacity;
          default: return 0;
        }
    }

    /** C6 (tensorize part): intrinsic shape variables. */
    void
    rule_c6_tensorize(const Primitive &p)
    {
        const StagePlan &plan = tmpl_.stage(p.stage);
        auto make_wmma = [&](const char *role,
                             const std::vector<int64_t> &cands) {
            VarId v = csp_.add_var(plan.name + ".wmma." + role,
                                   Domain::of(cands), false);
            ++stats_.arch_vars;
            csp_.add_in(v, cands, "C6:intrinsic");
            // The fused intrinsic loop equals the intrinsic dim.
            VarId fused = csp_.var_id(plan.name + ".wmmafuse." +
                                      std::string(role));
            csp_.add_eq(fused, v, "C6:intrinsic");
            return v;
        };
        VarId m = make_wmma("m", plan.intrinsic_m_candidates);
        VarId n = make_wmma("n", plan.intrinsic_n_candidates);
        VarId k = make_wmma("k", plan.intrinsic_k_candidates);
        if (plan.intrinsic_volume > 0) {
            VarId vol = csp_.add_const(plan.intrinsic_volume);
            csp_.add_prod(vol, {m, n, k}, "C6:volume");
        }
    }

    /** Generic platform constraints: GPU thread caps and aligned
     * vectorized access (known to every generator, not only
     * Heron). */
    void
    rule_generic_platform()
    {
        for (const auto &plan : tmpl_.stages) {
            if (plan.role == StageRole::kMain) {
                if (spec_.kind == hw::DlaKind::kTensorCore)
                    add_gpu_thread_caps(plan);
                continue;
            }
            // Vectorized accesses must divide the innermost staged
            // dimension: row == vec * q.
            VarId vec = csp_.find_var("vec." + plan.name);
            if (vec < 0)
                continue;
            const ir::Tensor &tensor = dag_.tensor(plan.tensor);
            // Transaction width limit: vec * element size must fit
            // the widest load/store.
            std::vector<int64_t> allowed;
            for (int64_t len : spec_.vector_lengths)
                if (len * ir::dtype_bytes(tensor.dtype) <=
                    spec_.max_vector_bytes)
                    allowed.push_back(len);
            if (!allowed.empty())
                csp_.add_in(vec, allowed, "C6:vector-width");
            // Innermost tensor dimension footprint of this stage.
            std::ostringstream row_name;
            row_name << plan.name << ".d" << (tensor.ndim() - 1);
            VarId row = csp_.find_var(row_name.str());
            if (row < 0)
                continue;
            int64_t row_max = csp_.var(row).initial.max();
            VarId q = csp_.add_var(
                "vecq." + plan.name,
                Domain::interval(1, row_max), false);
            ++stats_.other_vars;
            csp_.add_prod(row, {vec, q}, "C6:vector-divides");
        }
    }

    /** C6 (DLA extras): VTA accumulator write gap. */
    void
    rule_c6_dla_extras()
    {
        if (spec_.kind != hw::DlaKind::kVta)
            return;
        for (const auto &plan : tmpl_.stages)
            if (plan.role == StageRole::kMain)
                add_vta_write_gap(plan);
    }

    void
    add_gpu_thread_caps(const StagePlan &plan)
    {
        std::vector<VarId> warp_levels, vthread_levels;
        for (const auto &axis : plan.axes) {
            for (int l = 0; l < axis.num_levels(); ++l) {
                if (axis.roles[static_cast<size_t>(l)] ==
                    LoopRole::kThread)
                    warp_levels.push_back(
                        loop_var(plan.name, axis.name, l));
                if (axis.roles[static_cast<size_t>(l)] ==
                    LoopRole::kVThread)
                    vthread_levels.push_back(
                        loop_var(plan.name, axis.name, l));
            }
        }
        int64_t max_units = plan.tensorized
                                ? spec_.max_threads_per_block /
                                      spec_.warp_size
                                : spec_.max_threads_per_block;
        if (!warp_levels.empty()) {
            VarId warps = csp_.add_var(
                plan.name + ".warps",
                Domain::interval(1, int64_t{1} << 30), false);
            ++stats_.arch_vars;
            csp_.add_prod(warps, warp_levels, "C6:threads");
            csp_.add_le(warps, csp_.add_const(max_units),
                        "C6:threads");
        }
        if (!vthread_levels.empty()) {
            VarId vt = csp_.add_var(
                plan.name + ".vthreads",
                Domain::interval(1, int64_t{1} << 30), false);
            ++stats_.arch_vars;
            csp_.add_prod(vt, vthread_levels, "C6:vthreads");
            csp_.add_le(vt, csp_.add_const(32), "C6:vthreads");
        }
    }

    void
    add_vta_write_gap(const StagePlan &plan)
    {
        // Innermost (last) reduce axis: its innermost non-intrinsic
        // level must run for >= 2 cycles between accumulator writes.
        for (int a = static_cast<int>(plan.axes.size()) - 1; a >= 0;
             --a) {
            const auto &axis = plan.axes[static_cast<size_t>(a)];
            if (!axis.reduce)
                continue;
            for (int l = axis.num_levels() - 1; l >= 0; --l) {
                if (axis.roles[static_cast<size_t>(l)] ==
                    LoopRole::kIntrinsic)
                    continue;
                VarId v = loop_var(plan.name, axis.name, l);
                csp_.add_le(csp_.add_const(2), v, "C6:access-cycle");
                return;
            }
            return;
        }
    }
};

} // namespace

SpaceGenerator::SpaceGenerator(hw::DlaSpec spec, Options options)
    : spec_(std::move(spec)), options_(options)
{
}

GeneratedSpace
SpaceGenerator::generate(const ops::Workload &workload) const
{
    Generation generation(spec_, options_, workload);
    return generation.run();
}

std::shared_ptr<const GeneratedSpace>
SpaceCache::get_or_generate(
    uint64_t key, const std::function<GeneratedSpace()> &make)
{
    Stripe &s = stripe(key);
    {
        std::lock_guard<std::mutex> lock(s.mu);
        auto it = s.map.find(key);
        if (it != s.map.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    // Generate outside the stripe lock: a slow generation for one
    // shape must not block hits on every shape sharing its stripe.
    misses_.fetch_add(1, std::memory_order_relaxed);
    auto made =
        std::make_shared<const GeneratedSpace>(make());
    std::lock_guard<std::mutex> lock(s.mu);
    auto [it, inserted] = s.map.emplace(key, made);
    // First insert wins so every caller sees one canonical space.
    return it->second;
}

std::shared_ptr<const GeneratedSpace>
SpaceCache::lookup(uint64_t key) const
{
    const Stripe &s = stripe(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(key);
    return it == s.map.end() ? nullptr : it->second;
}

size_t
SpaceCache::size() const
{
    size_t total = 0;
    for (const Stripe &s : stripes_) {
        std::lock_guard<std::mutex> lock(s.mu);
        total += s.map.size();
    }
    return total;
}

void
SpaceCache::clear()
{
    for (Stripe &s : stripes_) {
        std::lock_guard<std::mutex> lock(s.mu);
        s.map.clear();
    }
}

} // namespace heron::rules
