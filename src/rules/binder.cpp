/**
 * @file
 * Program binding: turn a CSP assignment into a ConcreteProgram.
 *
 * Tile sizes, intrinsic shapes, and annotation values are read from
 * the assignment by the generator's naming conventions; cache stage
 * footprints and fill counts are recomputed numerically with the
 * same attach analysis used by constraint generation, so the bound
 * program agrees exactly with the constraints.
 *
 * try_bind() is the validating entry point for untrusted
 * assignments (tuning logs, journals): it reports malformed input
 * as a recoverable error instead of aborting the process. bind()
 * wraps it for internal, solver-produced assignments where a
 * failure is an invariant violation.
 */
#include "rules/space_generator.h"

#include <sstream>

#include "rules/attach.h"
#include "support/logging.h"
#include "support/math_util.h"

namespace heron::rules {

using csp::Assignment;
using csp::VarId;
using ir::LinearExpr;
using schedule::ConcreteProgram;
using schedule::ConcreteStage;
using schedule::StagePlan;
using schedule::StageRole;

namespace {

/**
 * Assignment accessor that records the first lookup failure instead
 * of aborting, so binding untrusted input degrades to an error.
 */
class BindReader
{
  public:
    BindReader(const csp::Csp &csp, const Assignment &a)
        : csp_(csp), a_(a)
    {
    }

    int64_t
    value_or(const std::string &name, int64_t fallback)
    {
        VarId v = csp_.find_var(name);
        if (v < 0)
            return fallback;
        return a_[static_cast<size_t>(v)];
    }

    int64_t
    value(const std::string &name)
    {
        VarId v = csp_.find_var(name);
        if (v < 0) {
            fail("missing variable " + name);
            return 1;
        }
        return a_[static_cast<size_t>(v)];
    }

    void
    fail(const std::string &message)
    {
        if (error_.empty())
            error_ = message;
    }

    bool failed() const { return !error_.empty(); }
    const std::string &error() const { return error_; }

  private:
    const csp::Csp &csp_;
    const Assignment &a_;
    std::string error_;
};

} // namespace

std::optional<ConcreteProgram>
GeneratedSpace::try_bind(const Assignment &a,
                         std::string *error) const
{
    auto bail = [&](const std::string &message)
        -> std::optional<ConcreteProgram> {
        if (error)
            *error = message;
        return std::nullopt;
    };

    if (a.size() != csp.num_vars()) {
        std::ostringstream msg;
        msg << "assignment has " << a.size() << " values, space has "
            << csp.num_vars() << " variables";
        return bail(msg.str());
    }
    // Every value must lie in its variable's initial domain. This
    // rejects corrupted logs up front and bounds every quantity the
    // arithmetic below touches (checked_mul aborts on negatives).
    for (size_t i = 0; i < csp.num_vars(); ++i) {
        if (csp.var(static_cast<VarId>(i))
                .initial.contains(a[i]))
            continue;
        std::ostringstream msg;
        msg << "value " << a[i] << " outside the domain of "
            << csp.var(static_cast<VarId>(i)).name;
        return bail(msg.str());
    }

    BindReader read(csp, a);
    ConcreteProgram prog;
    prog.workload = workload.name;
    prog.dtype = workload.dtype;
    prog.total_ops = dag.total_ops();
    prog.stages.reserve(tmpl.stages.size());

    for (const auto &plan : tmpl.stages) {
        ConcreteStage cs;
        cs.name = plan.name;
        cs.role = plan.role;
        cs.scope = plan.scope;
        cs.tensor = plan.tensor;
        cs.ir_stage = plan.ir_stage;
        cs.compute_at = plan.compute_at;

        if (plan.role == StageRole::kMain) {
            for (const auto &axis : plan.axes) {
                cs.axis_names.push_back(axis.name);
                cs.axis_reduce.push_back(axis.reduce);
                std::vector<int64_t> lens;
                for (int l = 0; l < axis.num_levels(); ++l)
                    lens.push_back(read.value(
                        axis.level_name(plan.name, l)));
                cs.tile.push_back(std::move(lens));
                cs.roles.push_back(axis.roles);
            }
            if (plan.tensorized) {
                cs.intrinsic_m =
                    read.value_or(plan.name + ".wmma.m",
                                  plan.intrinsic_m_candidates[0]);
                cs.intrinsic_n =
                    read.value_or(plan.name + ".wmma.n",
                                  plan.intrinsic_n_candidates[0]);
                cs.intrinsic_k =
                    read.value_or(plan.name + ".wmma.k",
                                  plan.intrinsic_k_candidates[0]);
            }
            cs.unroll = read.value_or("unroll." + plan.name, 1);
            if (read.failed())
                return bail(read.error());
            prog.stages.push_back(std::move(cs));
            continue;
        }

        // Cache stage: resolve the attach candidate, then compute
        // region footprint and fill count from the consumer tiles.
        const StagePlan &consumer = tmpl.stage(plan.compute_at);
        if (consumer.role != StageRole::kMain)
            return bail("cache stage " + plan.name +
                        " attaches to non-main stage " +
                        consumer.name);
        int64_t loc = read.value_or("loc." + plan.name, 0);
        if (loc < 0 ||
            static_cast<size_t>(loc) >=
                plan.attach_candidates.size()) {
            std::ostringstream msg;
            msg << "attach candidate " << loc << " of " << plan.name
                << " out of range (have "
                << plan.attach_candidates.size() << ")";
            return bail(msg.str());
        }
        int depth =
            plan.attach_candidates[static_cast<size_t>(loc)];
        AttachInfo info =
            analyze_attach(consumer, plan.scope, plan.role, depth);

        // Consumer tile lengths (per axis, per level).
        auto consumer_len = [&](int axis, int level) {
            return read.value(
                consumer.axes[static_cast<size_t>(axis)].level_name(
                    consumer.name, level));
        };

        std::vector<int64_t> inside(consumer.axes.size(), 1);
        for (size_t ax = 0; ax < consumer.axes.size(); ++ax)
            for (int l : info.region_levels[ax])
                inside[ax] = checked_mul(
                    inside[ax], consumer_len(static_cast<int>(ax), l));

        const ir::ComputeStage &ir_stage =
            dag.stage(consumer.ir_stage);
        const std::vector<LinearExpr> *access = nullptr;
        if (plan.role == StageRole::kCacheRead) {
            for (const auto &read_access : ir_stage.reads)
                if (read_access.tensor == plan.tensor)
                    access = &read_access.indices;
        } else {
            access = &ir_stage.output_indices;
        }
        if (access == nullptr)
            return bail(plan.name + " stages unknown tensor " +
                        plan.tensor);

        int64_t elements = 1;
        int64_t row = 1;
        for (const auto &index : *access) {
            row = index.footprint(inside);
            elements = checked_mul(elements, row);
        }

        int64_t trips = 1;
        for (const auto &ref : info.trip_loops)
            trips = checked_mul(trips,
                                consumer_len(ref.axis, ref.level));

        if (read.failed())
            return bail(read.error());

        const ir::Tensor &tensor = dag.tensor(plan.tensor);
        cs.attach_depth = depth;
        cs.tile_elements = elements;
        cs.row_elements = row;
        cs.fill_trips = trips;
        cs.bytes_per_element = ir::dtype_bytes(tensor.dtype);
        cs.vector_len = read.value_or("vec." + plan.name, 1);
        cs.storage_align_pad =
            read.value_or("pad." + plan.name, 0);
        cs.packed_layout = plan.packed_layout;
        prog.stages.push_back(std::move(cs));
    }

    // Inputs with no staging stream from DRAM on every iteration
    // that reads them.
    for (const auto &input : dag.inputs()) {
        bool covered = false;
        for (const auto &stage : prog.stages)
            if (stage.role == StageRole::kCacheRead &&
                stage.tensor == input.name)
                covered = true;
        if (covered)
            continue;
        for (const auto &stage : dag.stages()) {
            bool reads = false;
            for (const auto &read_access : stage.reads)
                reads |= read_access.tensor == input.name;
            if (reads)
                prog.streamed_input_bytes += checked_mul(
                    stage.iteration_count(),
                    ir::dtype_bytes(input.dtype));
        }
    }
    return prog;
}

schedule::ConcreteProgram
GeneratedSpace::bind(const Assignment &a) const
{
    std::string error;
    auto program = try_bind(a, &error);
    HERON_CHECK(program.has_value())
        << "bind failed for " << workload.name << ": " << error;
    return std::move(*program);
}

} // namespace heron::rules
