/**
 * @file
 * Program binding: turn a CSP assignment into a ConcreteProgram.
 *
 * Tile sizes, intrinsic shapes, and annotation values are read from
 * the assignment by the generator's naming conventions; cache stage
 * footprints and fill counts are recomputed numerically with the
 * same attach analysis used by constraint generation, so the bound
 * program agrees exactly with the constraints.
 */
#include "rules/space_generator.h"

#include "rules/attach.h"
#include "support/logging.h"
#include "support/math_util.h"

namespace heron::rules {

using csp::Assignment;
using csp::VarId;
using ir::LinearExpr;
using schedule::ConcreteProgram;
using schedule::ConcreteStage;
using schedule::StagePlan;
using schedule::StageRole;

namespace {

int64_t
value_or(const csp::Csp &csp, const Assignment &a,
         const std::string &name, int64_t fallback)
{
    VarId v = csp.find_var(name);
    if (v < 0)
        return fallback;
    return a[static_cast<size_t>(v)];
}

int64_t
value(const csp::Csp &csp, const Assignment &a,
      const std::string &name)
{
    VarId v = csp.find_var(name);
    HERON_CHECK_GE(v, 0) << "missing variable " << name;
    return a[static_cast<size_t>(v)];
}

} // namespace

schedule::ConcreteProgram
GeneratedSpace::bind(const Assignment &a) const
{
    HERON_CHECK_EQ(a.size(), csp.num_vars());

    ConcreteProgram prog;
    prog.workload = workload.name;
    prog.dtype = workload.dtype;
    prog.total_ops = dag.total_ops();
    prog.stages.reserve(tmpl.stages.size());

    for (const auto &plan : tmpl.stages) {
        ConcreteStage cs;
        cs.name = plan.name;
        cs.role = plan.role;
        cs.scope = plan.scope;
        cs.tensor = plan.tensor;
        cs.ir_stage = plan.ir_stage;
        cs.compute_at = plan.compute_at;

        if (plan.role == StageRole::kMain) {
            for (const auto &axis : plan.axes) {
                cs.axis_names.push_back(axis.name);
                cs.axis_reduce.push_back(axis.reduce);
                std::vector<int64_t> lens;
                for (int l = 0; l < axis.num_levels(); ++l)
                    lens.push_back(value(
                        csp, a, axis.level_name(plan.name, l)));
                cs.tile.push_back(std::move(lens));
                cs.roles.push_back(axis.roles);
            }
            if (plan.tensorized) {
                cs.intrinsic_m =
                    value_or(csp, a, plan.name + ".wmma.m",
                             plan.intrinsic_m_candidates[0]);
                cs.intrinsic_n =
                    value_or(csp, a, plan.name + ".wmma.n",
                             plan.intrinsic_n_candidates[0]);
                cs.intrinsic_k =
                    value_or(csp, a, plan.name + ".wmma.k",
                             plan.intrinsic_k_candidates[0]);
            }
            cs.unroll =
                value_or(csp, a, "unroll." + plan.name, 1);
            prog.stages.push_back(std::move(cs));
            continue;
        }

        // Cache stage: resolve the attach candidate, then compute
        // region footprint and fill count from the consumer tiles.
        const StagePlan &consumer = tmpl.stage(plan.compute_at);
        HERON_CHECK_EQ(static_cast<int>(consumer.role),
                       static_cast<int>(StageRole::kMain));
        int64_t loc = value_or(csp, a, "loc." + plan.name, 0);
        HERON_CHECK_GE(loc, 0);
        HERON_CHECK_LT(static_cast<size_t>(loc),
                       plan.attach_candidates.size());
        int depth =
            plan.attach_candidates[static_cast<size_t>(loc)];
        AttachInfo info =
            analyze_attach(consumer, plan.scope, plan.role, depth);

        // Consumer tile lengths (per axis, per level).
        auto consumer_len = [&](int axis, int level) {
            return value(
                csp, a,
                consumer.axes[static_cast<size_t>(axis)].level_name(
                    consumer.name, level));
        };

        std::vector<int64_t> inside(consumer.axes.size(), 1);
        for (size_t ax = 0; ax < consumer.axes.size(); ++ax)
            for (int l : info.region_levels[ax])
                inside[ax] = checked_mul(
                    inside[ax], consumer_len(static_cast<int>(ax), l));

        const ir::ComputeStage &ir_stage =
            dag.stage(consumer.ir_stage);
        const std::vector<LinearExpr> *access = nullptr;
        if (plan.role == StageRole::kCacheRead) {
            for (const auto &read : ir_stage.reads)
                if (read.tensor == plan.tensor)
                    access = &read.indices;
        } else {
            access = &ir_stage.output_indices;
        }
        HERON_CHECK(access != nullptr)
            << plan.name << " stages unknown tensor " << plan.tensor;

        int64_t elements = 1;
        int64_t row = 1;
        for (const auto &index : *access) {
            row = index.footprint(inside);
            elements = checked_mul(elements, row);
        }

        int64_t trips = 1;
        for (const auto &ref : info.trip_loops)
            trips = checked_mul(trips,
                                consumer_len(ref.axis, ref.level));

        const ir::Tensor &tensor = dag.tensor(plan.tensor);
        cs.attach_depth = depth;
        cs.tile_elements = elements;
        cs.row_elements = row;
        cs.fill_trips = trips;
        cs.bytes_per_element = ir::dtype_bytes(tensor.dtype);
        cs.vector_len = value_or(csp, a, "vec." + plan.name, 1);
        cs.storage_align_pad =
            value_or(csp, a, "pad." + plan.name, 0);
        cs.packed_layout = plan.packed_layout;
        prog.stages.push_back(std::move(cs));
    }

    // Inputs with no staging stream from DRAM on every iteration
    // that reads them.
    for (const auto &input : dag.inputs()) {
        bool covered = false;
        for (const auto &stage : prog.stages)
            if (stage.role == StageRole::kCacheRead &&
                stage.tensor == input.name)
                covered = true;
        if (covered)
            continue;
        for (const auto &stage : dag.stages()) {
            bool reads = false;
            for (const auto &read : stage.reads)
                reads |= read.tensor == input.name;
            if (reads)
                prog.streamed_input_bytes += checked_mul(
                    stage.iteration_count(),
                    ir::dtype_bytes(input.dtype));
        }
    }
    return prog;
}

} // namespace heron::rules
