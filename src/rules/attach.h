/**
 * @file
 * Attach-point analysis shared by constraint generation and program
 * binding.
 *
 * A cache stage attached at depth p of its consumer stages a data
 * region determined by the consumer loops *inside* p, and is
 * (re)filled once per iteration of the loops *outside* p. Two scope
 * properties modulate this:
 *  - cooperative scopes (GPU shared memory) are filled jointly by
 *    all threads of a block, so thread/vthread partition levels
 *    count toward the region, not the trip count;
 *  - private scopes (fragments, CPU core tiles) are per-executor,
 *    so partition levels multiply trips instead.
 * Cache-write stages additionally do not re-store per reduce
 * iteration.
 */
#ifndef HERON_RULES_ATTACH_H
#define HERON_RULES_ATTACH_H

#include <vector>

#include "schedule/template.h"

namespace heron::rules {

/** Resolved attach info for one (cache stage, attach depth) pair. */
struct AttachInfo {
    /** Attach depth (index into the consumer's flattened order). */
    int depth = -1;
    /**
     * Per consumer axis: the tile levels whose lengths multiply
     * into the staged region along that axis.
     */
    std::vector<std::vector<int>> region_levels;
    /** Consumer loops whose lengths multiply the fill trip count. */
    std::vector<schedule::LoopRef> trip_loops;
};

/**
 * Analyze an attach of a stage with @p scope and @p role at
 * flattened depth @p depth of @p consumer.
 */
AttachInfo analyze_attach(const schedule::StagePlan &consumer,
                          schedule::MemScope scope,
                          schedule::StageRole role, int depth);

/** True when @p scope is filled cooperatively by all threads. */
bool is_cooperative_scope(schedule::MemScope scope);

} // namespace heron::rules

#endif // HERON_RULES_ATTACH_H
