#include "search/cga.h"

#include <algorithm>

#include "csp/sample_batch.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace heron::search {

using csp::Assignment;
using csp::Constraint;
using csp::ConstraintKind;
using csp::Csp;
using csp::RandSatSolver;
using csp::VarId;

std::vector<Assignment>
roulette_select(const std::vector<Assignment> &population,
                const std::vector<double> &fitness, int count,
                Rng &rng)
{
    HERON_CHECK_EQ(population.size(), fitness.size());
    std::vector<Assignment> selected;
    if (population.empty())
        return selected;
    selected.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i)
        selected.push_back(population[rng.weighted_index(fitness)]);
    return selected;
}

std::vector<Assignment>
constraint_crossover_mutation(const Csp &csp, RandSatSolver &solver,
                              const model::CostModel &model,
                              const std::vector<Assignment> &population,
                              int count, int key_vars,
                              bool random_keys, Rng &rng)
{
    HERON_TRACE_SCOPE("cga/crossover");
    std::vector<Assignment> offspring;
    if (population.empty())
        return offspring;

    for (int i = 0; i < count; ++i) {
        HERON_COUNTER_INC("cga.crossover_subproblems");
        // Step 1: key variable extraction.
        std::vector<VarId> keys;
        if (random_keys) {
            for (int j = 0; j < key_vars; ++j)
                keys.push_back(static_cast<VarId>(
                    rng.index(csp.num_vars())));
        } else {
            keys = model.key_variables(key_vars);
        }

        // Step 2: constraint-based crossover.
        const Assignment &c1 = population[rng.index(population.size())];
        const Assignment &c2 = population[rng.index(population.size())];
        std::vector<Constraint> constraints;
        for (VarId v : keys) {
            Constraint c;
            c.kind = ConstraintKind::kIn;
            c.result = v;
            c.constants = {c1[static_cast<size_t>(v)],
                           c2[static_cast<size_t>(v)]};
            c.note = "CGA:crossover";
            constraints.push_back(std::move(c));
        }

        // Step 3: constraint-based mutation — drop one constraint.
        if (!constraints.empty())
            constraints.erase(constraints.begin() +
                              static_cast<long>(
                                  rng.index(constraints.size())));

        // Solve the new CSP. If the key-variable combination is
        // over-constrained — the subproblem is UNSAT, or it
        // exhausts the solver's budget or deadline — degrade
        // gracefully instead of discarding the offspring: walk a
        // relaxation ladder that drops the added IN constraints one
        // at a time (validity w.r.t. CSP_initial is preserved
        // throughout; with every constraint dropped the subproblem
        // is CSP_initial itself).
        std::optional<Assignment> child;
        int relax_depth = 0;
        while (true) {
            child = solver.solve_one(rng, constraints);
            if (child || constraints.empty())
                break;
            HERON_DEBUG << "CGA crossover subproblem failed ("
                        << csp::solve_failure_name(
                               solver.last_failure())
                        << "); relaxing " << constraints.size()
                        << " remaining constraint(s)";
            HERON_COUNTER_INC("cga.relaxations");
            ++relax_depth;
            constraints.erase(constraints.begin() +
                              static_cast<long>(
                                  rng.index(constraints.size())));
        }
        if (relax_depth > 0)
            HERON_HISTOGRAM_OBSERVE("cga.relaxation_depth",
                                    relax_depth);
        if (child) {
            HERON_COUNTER_INC("cga.offspring");
            offspring.push_back(std::move(*child));
        } else {
            HERON_COUNTER_INC("cga.offspring_failed");
        }
    }
    return offspring;
}

SearchResult
cga_search(const rules::GeneratedSpace &space, hw::Measurer &measurer,
           const SearchConfig &config, bool random_keys)
{
    Rng rng(config.seed);
    RandSatSolver solver(space.csp);
    // Whole-population draws go through the deterministic parallel
    // sampler: each batch consumes one seed from the search RNG, and
    // the returned population is bit-identical for any worker count.
    csp::SampleBatch batch(space.csp, {}, config.sample_workers);
    Evaluator evaluator(space, measurer);
    model::CostModel model(space.csp);

    // Initial population: random valid assignments.
    std::vector<Assignment> pop;
    std::vector<double> fitness;
    auto initial = batch.sample(rng.next_u64(), config.population);
    for (auto &a : initial) {
        if (evaluator.count() >= config.trials)
            break;
        double score = evaluator.measure(a);
        model.add_scored_sample(a, score);
        pop.push_back(std::move(a));
        fitness.push_back(score);
    }
    model.fit();

    while (evaluator.count() < config.trials && !pop.empty()) {
        HERON_COUNTER_INC("cga.generations");
        auto parents = roulette_select(pop, fitness,
                                       config.population, rng);
        auto offspring = constraint_crossover_mutation(
            space.csp, solver, model, parents, config.population,
            config.key_vars, random_keys, rng);
        if (offspring.empty()) {
            // Population collapsed; refresh with random samples.
            offspring = batch.sample(rng.next_u64(),
                                     config.population);
            if (offspring.empty())
                break;
        }
        for (auto &child : offspring) {
            if (evaluator.count() >= config.trials)
                break;
            double score = evaluator.measure(child);
            model.add_scored_sample(child, score);
            pop.push_back(std::move(child));
            fitness.push_back(score);
        }
        model.fit();

        // Keep the population bounded: best 2x population by
        // fitness (parents + offspring both survive selection).
        if (pop.size() >
            static_cast<size_t>(2 * config.population)) {
            std::vector<size_t> order(pop.size());
            for (size_t i = 0; i < order.size(); ++i)
                order[i] = i;
            std::stable_sort(order.begin(), order.end(),
                             [&](size_t a, size_t b) {
                                 return fitness[a] > fitness[b];
                             });
            order.resize(static_cast<size_t>(2 * config.population));
            std::vector<Assignment> new_pop;
            std::vector<double> new_fit;
            for (size_t idx : order) {
                new_pop.push_back(std::move(pop[idx]));
                new_fit.push_back(fitness[idx]);
            }
            pop = std::move(new_pop);
            fitness = std::move(new_fit);
        }
    }
    return evaluator.result();
}

} // namespace heron::search
