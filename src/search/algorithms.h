/**
 * @file
 * Search algorithms over constrained spaces.
 *
 * All algorithms spend a budget of hardware-measurement *trials*
 * and return the best program found plus the best-so-far
 * trajectory, enabling the paper's exploration-efficiency
 * comparisons:
 *  - RAND:  random valid sampling via the CSP solver (Fig. 2)
 *  - SA:    simulated annealing on tunable parameters (Fig. 2/12)
 *  - GA:    classic genetic algorithm on tunable parameters
 *  - CGA:   Heron's constraint-based GA (Fig. 12/13); CGA-1 picks
 *           key variables randomly instead of by model importance
 *  - GA-1:  stochastic-ranking constraint handling (Runarsson&Yao)
 *  - GA-2:  SAT-decoder constraint handling (Lukasiewycz et al.)
 *  - GA-3:  infeasibility-driven multi-objective handling (Ray et
 *           al.)
 */
#ifndef HERON_SEARCH_ALGORITHMS_H
#define HERON_SEARCH_ALGORITHMS_H

#include "search/common.h"

namespace heron::search {

/** Shared knobs for the search algorithms. */
struct SearchConfig {
    /** Hardware measurement budget. */
    int trials = 500;
    uint64_t seed = 1;
    int population = 20;
    /** Key variables per CGA crossover. */
    int key_vars = 8;
    /** Gene mutation probability (classic GA family). */
    double mutation_prob = 0.3;
    /** SA initial temperature (in score units). */
    double sa_temperature = 1.0;
    /** SA geometric cooling factor per step. */
    double sa_cooling = 0.995;
    /** Stochastic ranking comparison probability (GA-1). */
    double sr_pf = 0.45;
    /** Infeasible fraction kept by GA-3. */
    double idea_infeasible_fraction = 0.2;
    /**
     * Worker threads for whole-population CSP sampling (CGA initial
     * population and collapse refreshes). Results are bit-identical
     * for any value >= 1 — see csp::SampleBatch.
     */
    int sample_workers = 1;
};

/** RAND: uniform valid sampling through the solver. */
SearchResult random_search(const rules::GeneratedSpace &space,
                           hw::Measurer &measurer,
                           const SearchConfig &config);

/** SA on tunable parameters (constraints not consulted). */
SearchResult simulated_annealing(const rules::GeneratedSpace &space,
                                 hw::Measurer &measurer,
                                 const SearchConfig &config);

/**
 * SA whose neighbor step stays structurally consistent (each gene
 * change is repaired through propagation before being adopted), the
 * way AutoTVM's manual templates sample knobs by construction.
 * Architectural validity (memory capacity etc.) is still only
 * discovered at measurement when the space omits those constraints.
 */
SearchResult
template_consistent_sa(const rules::GeneratedSpace &space,
                       hw::Measurer &measurer,
                       const SearchConfig &config);

/** Classic GA on tunable parameters (constraints not consulted). */
SearchResult genetic_algorithm(const rules::GeneratedSpace &space,
                               hw::Measurer &measurer,
                               const SearchConfig &config);

/** GA-1: stochastic ranking of (fitness, violation count). */
SearchResult
stochastic_ranking_ga(const rules::GeneratedSpace &space,
                      hw::Measurer &measurer,
                      const SearchConfig &config);

/** GA-2: genotypes decoded to valid phenotypes by a SAT decoder. */
SearchResult sat_decoder_ga(const rules::GeneratedSpace &space,
                            hw::Measurer &measurer,
                            const SearchConfig &config);

/** GA-3: infeasibility-driven multi-objective selection. */
SearchResult multi_objective_ga(const rules::GeneratedSpace &space,
                                hw::Measurer &measurer,
                                const SearchConfig &config);

} // namespace heron::search

#endif // HERON_SEARCH_ALGORITHMS_H
