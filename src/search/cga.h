/**
 * @file
 * The Constraint-based Genetic Algorithm (paper §5, Algorithms 2-3).
 *
 * CGA's defining property: crossover and mutation operate on
 * *constraint satisfaction problems*, not on concrete chromosomes.
 * Crossover adds IN(v, {parent1_v, parent2_v}) constraints on
 * cost-model-selected key variables to CSP_initial; mutation
 * removes one of the added constraints; offspring are drawn by the
 * RandSAT solver from the resulting CSP, so every offspring
 * satisfies CSP_initial by construction.
 */
#ifndef HERON_SEARCH_CGA_H
#define HERON_SEARCH_CGA_H

#include "model/cost_model.h"
#include "search/algorithms.h"
#include "search/common.h"

namespace heron::search {

/**
 * Algorithm 3: produce @p count offspring from @p population via
 * constraint-based crossover and mutation.
 *
 * @param random_keys CGA-1 ablation: choose key variables uniformly
 *        at random instead of by model feature importance.
 */
std::vector<csp::Assignment> constraint_crossover_mutation(
    const csp::Csp &csp, csp::RandSatSolver &solver,
    const model::CostModel &model,
    const std::vector<csp::Assignment> &population, int count,
    int key_vars, bool random_keys, Rng &rng);

/**
 * Roulette-wheel selection: draw @p count members with probability
 * proportional to fitness (uniform when all fitness is zero).
 */
std::vector<csp::Assignment>
roulette_select(const std::vector<csp::Assignment> &population,
                const std::vector<double> &fitness, int count,
                Rng &rng);

/**
 * Direct-measurement CGA exploration (the setting of Fig. 12/13):
 * every candidate is measured, the cost model is trained online on
 * the measurements and used only for key-variable extraction.
 */
SearchResult cga_search(const rules::GeneratedSpace &space,
                        hw::Measurer &measurer,
                        const SearchConfig &config,
                        bool random_keys = false);

} // namespace heron::search

#endif // HERON_SEARCH_CGA_H
