#include "search/algorithms.h"

#include <algorithm>
#include <cmath>

#include "search/cga.h"
#include "support/logging.h"

namespace heron::search {

using csp::Assignment;
using csp::Csp;
using csp::RandSatSolver;

SearchResult
random_search(const rules::GeneratedSpace &space,
              hw::Measurer &measurer, const SearchConfig &config)
{
    Rng rng(config.seed);
    RandSatSolver solver(space.csp);
    Evaluator evaluator(space, measurer);
    while (evaluator.count() < config.trials) {
        auto a = solver.solve_one(rng);
        if (!a) {
            evaluator.measure_failure();
            continue;
        }
        evaluator.measure(*a);
    }
    return evaluator.result();
}

SearchResult
simulated_annealing(const rules::GeneratedSpace &space,
                    hw::Measurer &measurer,
                    const SearchConfig &config)
{
    Rng rng(config.seed);
    RandSatSolver solver(space.csp);
    Evaluator evaluator(space, measurer);
    TunableView view(space.csp);

    // Start from a valid program (Fig. 2 setup).
    auto seed_assignment = solver.solve_one(rng);
    if (!seed_assignment)
        return evaluator.result();
    Chromosome current = view.from_assignment(*seed_assignment);
    double current_score = evaluator.measure(*seed_assignment);

    double temperature = config.sa_temperature;
    while (evaluator.count() < config.trials) {
        Chromosome neighbor = current;
        size_t gene = rng.index(view.size());
        neighbor[gene] = rng.pick(view.domain(gene));

        double score;
        auto completed =
            complete_assignment(space.csp, view, neighbor);
        if (completed)
            score = evaluator.measure(*completed);
        else
            score = evaluator.measure_failure();

        double delta = score - current_score;
        if (delta >= 0 ||
            rng.uniform() <
                std::exp(delta / std::max(1e-6, temperature))) {
            current = std::move(neighbor);
            current_score = score;
        }
        temperature *= config.sa_cooling;
    }
    return evaluator.result();
}

SearchResult
template_consistent_sa(const rules::GeneratedSpace &space,
                       hw::Measurer &measurer,
                       const SearchConfig &config)
{
    Rng rng(config.seed);
    RandSatSolver solver(space.csp);
    Evaluator evaluator(space, measurer);
    TunableView view(space.csp);

    auto seed_assignment = solver.solve_one(rng);
    if (!seed_assignment)
        return evaluator.result(); // space unsatisfiable
    Chromosome current = view.from_assignment(*seed_assignment);
    double current_score = evaluator.measure(*seed_assignment);

    // One structurally consistent neighbor: change one gene and
    // keep only changes that complete under propagation.
    auto neighbor = [&]() -> std::optional<
                              std::pair<Chromosome,
                                        csp::Assignment>> {
        std::vector<size_t> genes(view.size());
        for (size_t i = 0; i < genes.size(); ++i)
            genes[i] = i;
        rng.shuffle(genes);
        for (size_t gi = 0; gi < std::min<size_t>(genes.size(), 8);
             ++gi) {
            size_t g = genes[gi];
            auto values = view.domain(g);
            rng.shuffle(values);
            for (int64_t v : values) {
                if (v == current[g])
                    continue;
                Chromosome nb = current;
                nb[g] = v;
                auto completed =
                    complete_assignment(space.csp, view, nb);
                if (completed)
                    return std::make_pair(std::move(nb),
                                          std::move(*completed));
            }
        }
        return std::nullopt;
    };

    double temperature = config.sa_temperature;
    while (evaluator.count() < config.trials) {
        auto nb = neighbor();
        if (!nb) {
            // Stuck: restart from a fresh random valid sample.
            auto fresh = solver.solve_one(rng);
            if (!fresh)
                break;
            current = view.from_assignment(*fresh);
            current_score = evaluator.measure(*fresh);
            continue;
        }
        double score = evaluator.measure(nb->second);
        double delta = score - current_score;
        if (delta >= 0 ||
            rng.uniform() <
                std::exp(delta / std::max(1e-6, temperature))) {
            current = std::move(nb->first);
            current_score = score;
        }
        temperature *= config.sa_cooling;
    }
    return evaluator.result();
}

namespace {

/** Single-point crossover on gene vectors. */
Chromosome
single_point_crossover(const Chromosome &a, const Chromosome &b,
                       Rng &rng)
{
    HERON_CHECK_EQ(a.size(), b.size());
    if (a.empty())
        return a;
    size_t point = rng.index(a.size());
    Chromosome child = a;
    for (size_t i = point; i < b.size(); ++i)
        child[i] = b[i];
    return child;
}

void
mutate(Chromosome &genes, const TunableView &view, double prob,
       Rng &rng)
{
    for (size_t i = 0; i < genes.size(); ++i)
        if (rng.bernoulli(prob))
            genes[i] = rng.pick(view.domain(i));
}

/** A scored chromosome for the GA baselines. */
struct Scored {
    Chromosome genes;
    double fitness = 0.0;
    int penalty = 0; ///< violated constraint count (0 == feasible)
};

/** Evaluate one chromosome: complete, measure, grade violations. */
Scored
evaluate(const rules::GeneratedSpace &space, const TunableView &view,
         Chromosome genes, Evaluator &evaluator)
{
    Scored s;
    auto completed = complete_assignment(space.csp, view, genes);
    if (completed) {
        s.fitness = evaluator.measure(*completed);
        s.penalty = 0;
    } else {
        s.fitness = evaluator.measure_failure();
        auto approx = heuristic_complete(space.csp, view, genes);
        s.penalty = std::max(1, space.csp.count_violations(approx));
    }
    s.genes = std::move(genes);
    return s;
}

/** Initial population: valid seeds from the solver. */
std::vector<Scored>
seeded_population(const rules::GeneratedSpace &space,
                  const TunableView &view, RandSatSolver &solver,
                  Evaluator &evaluator, int population, Rng &rng,
                  int trials)
{
    std::vector<Scored> pop;
    auto seeds = solver.solve_n(rng, population);
    for (auto &a : seeds) {
        if (evaluator.count() >= trials)
            break;
        Scored s;
        s.genes = view.from_assignment(a);
        s.fitness = evaluator.measure(a);
        s.penalty = 0;
        pop.push_back(std::move(s));
    }
    while (static_cast<int>(pop.size()) < population &&
           evaluator.count() < trials) {
        pop.push_back(
            evaluate(space, view, view.random(rng), evaluator));
    }
    return pop;
}

std::vector<double>
fitness_of(const std::vector<Scored> &pop)
{
    std::vector<double> f;
    f.reserve(pop.size());
    for (const auto &s : pop)
        f.push_back(s.fitness);
    return f;
}

} // namespace

SearchResult
genetic_algorithm(const rules::GeneratedSpace &space,
                  hw::Measurer &measurer, const SearchConfig &config)
{
    Rng rng(config.seed);
    RandSatSolver solver(space.csp);
    Evaluator evaluator(space, measurer);
    TunableView view(space.csp);

    auto pop = seeded_population(space, view, solver, evaluator,
                                 config.population, rng,
                                 config.trials);

    while (evaluator.count() < config.trials && !pop.empty()) {
        auto fitness = fitness_of(pop);
        bool all_dead =
            *std::max_element(fitness.begin(), fitness.end()) <= 0;
        std::vector<Scored> offspring;
        for (int i = 0;
             i < config.population &&
             evaluator.count() < config.trials;
             ++i) {
            Chromosome child;
            if (all_dead) {
                // Frequent random restarts: the behavior the paper
                // observes when GA cannot produce valid offspring.
                child = view.random(rng);
            } else {
                const Chromosome &p1 =
                    pop[rng.weighted_index(fitness)].genes;
                const Chromosome &p2 =
                    pop[rng.weighted_index(fitness)].genes;
                child = single_point_crossover(p1, p2, rng);
                mutate(child, view, config.mutation_prob, rng);
            }
            offspring.push_back(
                evaluate(space, view, std::move(child), evaluator));
        }
        // Parents + offspring, truncated by fitness.
        for (auto &s : offspring)
            pop.push_back(std::move(s));
        std::stable_sort(pop.begin(), pop.end(),
                         [](const Scored &a, const Scored &b) {
                             return a.fitness > b.fitness;
                         });
        if (static_cast<int>(pop.size()) > config.population)
            pop.resize(static_cast<size_t>(config.population));
    }
    return evaluator.result();
}

SearchResult
stochastic_ranking_ga(const rules::GeneratedSpace &space,
                      hw::Measurer &measurer,
                      const SearchConfig &config)
{
    Rng rng(config.seed);
    RandSatSolver solver(space.csp);
    Evaluator evaluator(space, measurer);
    TunableView view(space.csp);

    auto pop = seeded_population(space, view, solver, evaluator,
                                 config.population, rng,
                                 config.trials);

    while (evaluator.count() < config.trials && !pop.empty()) {
        // Stochastic ranking: bubble sweeps comparing by fitness
        // with probability pf (or when both feasible), else by
        // violation count.
        for (size_t sweep = 0; sweep < pop.size(); ++sweep) {
            bool swapped = false;
            for (size_t i = 0; i + 1 < pop.size(); ++i) {
                const Scored &a = pop[i];
                const Scored &b = pop[i + 1];
                bool both_feasible =
                    a.penalty == 0 && b.penalty == 0;
                bool by_fitness = both_feasible ||
                                  rng.uniform() < config.sr_pf;
                bool out_of_order =
                    by_fitness ? a.fitness < b.fitness
                               : a.penalty > b.penalty;
                if (out_of_order) {
                    std::swap(pop[i], pop[i + 1]);
                    swapped = true;
                }
            }
            if (!swapped)
                break;
        }
        size_t keep = std::max<size_t>(2, pop.size() / 2);
        pop.resize(keep);

        std::vector<Scored> offspring;
        while (static_cast<int>(pop.size() + offspring.size()) <
                   2 * config.population &&
               evaluator.count() < config.trials) {
            const Chromosome &p1 = pop[rng.index(pop.size())].genes;
            const Chromosome &p2 = pop[rng.index(pop.size())].genes;
            Chromosome child = single_point_crossover(p1, p2, rng);
            mutate(child, view, config.mutation_prob, rng);
            offspring.push_back(
                evaluate(space, view, std::move(child), evaluator));
        }
        for (auto &s : offspring)
            pop.push_back(std::move(s));
    }
    return evaluator.result();
}

SearchResult
sat_decoder_ga(const rules::GeneratedSpace &space,
               hw::Measurer &measurer, const SearchConfig &config)
{
    Rng rng(config.seed);
    Evaluator evaluator(space, measurer);
    TunableView view(space.csp);

    // Genotypes are per-gene preferences, decoded into feasible
    // phenotypes by a preference-guided solver. Decoding always
    // yields a valid program, but genes lose their direct meaning
    // (a preference may map to a distant feasible value).
    auto decode = [&](const Chromosome &genes)
        -> std::optional<Assignment> {
        std::unordered_map<csp::VarId, int64_t> prefs;
        for (size_t i = 0; i < view.size(); ++i)
            prefs[view.var(i)] = genes[i];
        return solve_with_preferences(space.csp, prefs, rng);
    };

    struct Member {
        Chromosome genes;
        double fitness = 0.0;
    };
    std::vector<Member> pop;
    for (int i = 0; i < config.population &&
                    evaluator.count() < config.trials;
         ++i) {
        Member m;
        m.genes = view.random(rng);
        auto phenotype = decode(m.genes);
        m.fitness = phenotype ? evaluator.measure(*phenotype)
                              : evaluator.measure_failure();
        pop.push_back(std::move(m));
    }

    while (evaluator.count() < config.trials && !pop.empty()) {
        std::vector<double> fitness;
        for (const auto &m : pop)
            fitness.push_back(m.fitness);
        std::vector<Member> offspring;
        for (int i = 0;
             i < config.population &&
             evaluator.count() < config.trials;
             ++i) {
            const Chromosome &p1 =
                pop[rng.weighted_index(fitness)].genes;
            const Chromosome &p2 =
                pop[rng.weighted_index(fitness)].genes;
            Member child;
            child.genes = single_point_crossover(p1, p2, rng);
            mutate(child.genes, view, config.mutation_prob, rng);
            auto phenotype = decode(child.genes);
            child.fitness = phenotype
                                ? evaluator.measure(*phenotype)
                                : evaluator.measure_failure();
            offspring.push_back(std::move(child));
        }
        for (auto &m : offspring)
            pop.push_back(std::move(m));
        std::stable_sort(pop.begin(), pop.end(),
                         [](const Member &a, const Member &b) {
                             return a.fitness > b.fitness;
                         });
        if (static_cast<int>(pop.size()) > config.population)
            pop.resize(static_cast<size_t>(config.population));
    }
    return evaluator.result();
}

SearchResult
multi_objective_ga(const rules::GeneratedSpace &space,
                   hw::Measurer &measurer, const SearchConfig &config)
{
    Rng rng(config.seed);
    RandSatSolver solver(space.csp);
    Evaluator evaluator(space, measurer);
    TunableView view(space.csp);

    auto pop = seeded_population(space, view, solver, evaluator,
                                 config.population, rng,
                                 config.trials);

    while (evaluator.count() < config.trials && !pop.empty()) {
        // Infeasibility-driven selection: keep the best feasible
        // members by fitness plus a fixed fraction of the
        // least-violating infeasible members.
        std::vector<Scored> feasible, infeasible;
        for (auto &s : pop) {
            if (s.penalty == 0)
                feasible.push_back(std::move(s));
            else
                infeasible.push_back(std::move(s));
        }
        std::stable_sort(feasible.begin(), feasible.end(),
                         [](const Scored &a, const Scored &b) {
                             return a.fitness > b.fitness;
                         });
        std::stable_sort(infeasible.begin(), infeasible.end(),
                         [](const Scored &a, const Scored &b) {
                             return a.penalty < b.penalty;
                         });
        size_t infeasible_keep = static_cast<size_t>(
            config.idea_infeasible_fraction * config.population);
        size_t feasible_keep =
            static_cast<size_t>(config.population) -
            std::min(infeasible_keep, infeasible.size());

        pop.clear();
        for (size_t i = 0; i < feasible.size() && i < feasible_keep;
             ++i)
            pop.push_back(std::move(feasible[i]));
        for (size_t i = 0;
             i < infeasible.size() && i < infeasible_keep; ++i)
            pop.push_back(std::move(infeasible[i]));
        if (pop.empty())
            break;

        std::vector<Scored> offspring;
        for (int i = 0;
             i < config.population &&
             evaluator.count() < config.trials;
             ++i) {
            const Chromosome &p1 = pop[rng.index(pop.size())].genes;
            const Chromosome &p2 = pop[rng.index(pop.size())].genes;
            Chromosome child = single_point_crossover(p1, p2, rng);
            mutate(child, view, config.mutation_prob, rng);
            offspring.push_back(
                evaluate(space, view, std::move(child), evaluator));
        }
        for (auto &s : offspring)
            pop.push_back(std::move(s));
    }
    return evaluator.result();
}

} // namespace heron::search
