#include "search/common.h"

#include <algorithm>
#include <cmath>

#include "csp/propagate.h"
#include "model/cost_model.h"
#include "support/logging.h"

namespace heron::search {

using csp::Assignment;
using csp::Constraint;
using csp::ConstraintKind;
using csp::Csp;
using csp::Domain;
using csp::PropagationEngine;
using csp::VarId;

Evaluator::Evaluator(const rules::GeneratedSpace &space,
                     hw::Measurer &measurer)
    : space_(space), measurer_(&measurer)
{
}

Evaluator::Evaluator(const rules::GeneratedSpace &space)
    : space_(space)
{
}

double
Evaluator::apply(const Assignment &a, const hw::MeasureResult &r)
{
    last_ = r;
    ++result_.total_measured;
    double score = model::throughput_score(
        r.valid, r.latency_ms, space_.dag.total_ops());
    if (r.valid) {
        ++result_.valid_count;
        if (r.gflops > result_.best_gflops) {
            result_.best_gflops = r.gflops;
            result_.best_latency_ms = r.latency_ms;
            result_.best = a;
        }
    }
    result_.history.push_back(result_.best_gflops);
    return score;
}

double
Evaluator::measure(const Assignment &a)
{
    HERON_CHECK(measurer_ != nullptr);
    auto program = space_.bind(a);
    return apply(a, measurer_->measure(program));
}

double
Evaluator::record(const Assignment &a, const hw::MeasureResult &r)
{
    return apply(a, r);
}

double
Evaluator::replay(const Assignment &a, bool valid,
                  double latency_ms, double gflops)
{
    if (measurer_ != nullptr)
        measurer_->note_replayed();
    hw::MeasureResult r;
    r.valid = valid;
    r.latency_ms = latency_ms;
    r.gflops = gflops;
    if (!valid) {
        r.failure = hw::MeasureFailure::kInvalid;
        r.error = "journal: measurement failed in the original run";
    }
    return apply(a, r);
}

double
Evaluator::measure_failure()
{
    ++result_.total_measured;
    result_.history.push_back(result_.best_gflops);
    return 0.0;
}

TunableView::TunableView(const Csp &csp)
{
    for (VarId v : csp.tunable_vars()) {
        vars_.push_back(v);
        domains_.push_back(csp.var(v).initial.values());
    }
}

Chromosome
TunableView::random(Rng &rng) const
{
    Chromosome genes(vars_.size());
    for (size_t i = 0; i < vars_.size(); ++i)
        genes[i] = rng.pick(domains_[i]);
    return genes;
}

Chromosome
TunableView::from_assignment(const Assignment &a) const
{
    Chromosome genes(vars_.size());
    for (size_t i = 0; i < vars_.size(); ++i)
        genes[i] = a[static_cast<size_t>(vars_[i])];
    return genes;
}

std::optional<Assignment>
complete_assignment(const Csp &csp, const TunableView &view,
                    const Chromosome &genes)
{
    PropagationEngine engine(csp);
    for (size_t i = 0; i < view.size(); ++i) {
        if (!engine.assign_and_propagate(view.var(i), genes[i]))
            return std::nullopt;
    }
    if (!engine.propagate())
        return std::nullopt;
    // Any variable still open is not functionally determined by the
    // tunables; pin it to its smallest remaining value.
    for (size_t i = 0; i < csp.num_vars(); ++i) {
        VarId v = static_cast<VarId>(i);
        if (engine.domain(v).is_singleton())
            continue;
        if (!engine.assign_and_propagate(v, engine.domain(v).min()))
            return std::nullopt;
    }
    Assignment a = engine.extract();
    if (!csp.valid(a))
        return std::nullopt;
    return a;
}

csp::Assignment
heuristic_complete(const Csp &csp, const TunableView &view,
                   const Chromosome &genes)
{
    Assignment a(csp.num_vars());
    std::vector<bool> set(csp.num_vars(), false);
    for (size_t i = 0; i < csp.num_vars(); ++i) {
        const Domain &d = csp.var(static_cast<VarId>(i)).initial;
        a[i] = d.empty() ? 0 : d.min();
    }
    for (size_t i = 0; i < view.size(); ++i) {
        a[static_cast<size_t>(view.var(i))] = genes[i];
        set[static_cast<size_t>(view.var(i))] = true;
    }
    // Functional evaluation sweeps: derive result variables from
    // assigned operands where possible.
    for (int pass = 0; pass < 4; ++pass) {
        bool changed = false;
        for (const auto &c : csp.constraints()) {
            auto all_set = [&](const std::vector<VarId> &ids) {
                for (VarId v : ids)
                    if (!set[static_cast<size_t>(v)])
                        return false;
                return true;
            };
            size_t res = static_cast<size_t>(c.result);
            switch (c.kind) {
              case ConstraintKind::kProd: {
                if (set[res] || !all_set(c.operands))
                    break;
                int64_t prod = 1;
                for (VarId v : c.operands)
                    prod *= a[static_cast<size_t>(v)];
                a[res] = prod;
                set[res] = true;
                changed = true;
                break;
              }
              case ConstraintKind::kSum: {
                if (set[res] || !all_set(c.operands))
                    break;
                int64_t sum = 0;
                for (VarId v : c.operands)
                    sum += a[static_cast<size_t>(v)];
                a[res] = sum;
                set[res] = true;
                changed = true;
                break;
              }
              case ConstraintKind::kEq: {
                size_t other = static_cast<size_t>(c.operands[0]);
                if (!set[res] && set[other]) {
                    a[res] = a[other];
                    set[res] = true;
                    changed = true;
                } else if (set[res] && !set[other]) {
                    a[other] = a[res];
                    set[other] = true;
                    changed = true;
                }
                break;
              }
              case ConstraintKind::kSelect: {
                if (set[res])
                    break;
                size_t sel = static_cast<size_t>(c.selector);
                if (!set[sel])
                    break;
                int64_t u = a[sel];
                if (u < 0 ||
                    u >= static_cast<int64_t>(c.operands.size()))
                    break;
                size_t chosen = static_cast<size_t>(
                    c.operands[static_cast<size_t>(u)]);
                if (!set[chosen])
                    break;
                a[res] = a[chosen];
                set[res] = true;
                changed = true;
                break;
              }
              default:
                break;
            }
        }
        if (!changed)
            break;
    }
    return a;
}

namespace {

/** Randomized backtracking with preference-ordered values. */
class PreferenceDfs
{
  public:
    PreferenceDfs(
        const Csp &csp, PropagationEngine &engine,
        const std::unordered_map<VarId, int64_t> &preferences,
        Rng &rng, int max_backtracks)
        : csp_(csp), engine_(engine), preferences_(preferences),
          rng_(rng), backtracks_left_(max_backtracks)
    {
    }

    bool
    run()
    {
        if (!engine_.propagate())
            return false;
        return recurse();
    }

  private:
    const Csp &csp_;
    PropagationEngine &engine_;
    const std::unordered_map<VarId, int64_t> &preferences_;
    Rng &rng_;
    int backtracks_left_;

    bool
    recurse()
    {
        // Branch preferred variables first (in registration order),
        // then remaining tunables, then any open variable.
        VarId var = -1;
        for (VarId v : csp_.tunable_vars()) {
            if (!engine_.domain(v).is_singleton()) {
                var = v;
                break;
            }
        }
        if (var < 0) {
            for (size_t i = 0; i < csp_.num_vars(); ++i) {
                if (!engine_.domain(static_cast<VarId>(i))
                         .is_singleton()) {
                    var = static_cast<VarId>(i);
                    break;
                }
            }
        }
        if (var < 0)
            return engine_.all_assigned();

        auto values = engine_.domain(var).values();
        auto it = preferences_.find(var);
        if (it != preferences_.end()) {
            int64_t target = it->second;
            std::stable_sort(values.begin(), values.end(),
                             [&](int64_t x, int64_t y) {
                                 return std::llabs(x - target) <
                                        std::llabs(y - target);
                             });
        } else {
            rng_.shuffle(values);
        }
        for (int64_t value : values) {
            // Trail-based undo: a level per decision beats copying
            // every domain per candidate value. Levels stay open on
            // success so the caller can extract().
            engine_.push_level();
            if (engine_.assign_and_propagate(var, value)) {
                if (recurse())
                    return true;
            }
            engine_.pop_level();
            if (--backtracks_left_ <= 0)
                return false;
        }
        return false;
    }
};

} // namespace

std::optional<Assignment>
solve_with_preferences(
    const Csp &csp,
    const std::unordered_map<VarId, int64_t> &preferences, Rng &rng,
    int max_backtracks)
{
    PropagationEngine engine(csp);
    PreferenceDfs dfs(csp, engine, preferences, rng, max_backtracks);
    if (!dfs.run())
        return std::nullopt;
    Assignment a = engine.extract();
    if (!csp.valid(a))
        return std::nullopt;
    return a;
}

} // namespace heron::search
