/**
 * @file
 * Shared search infrastructure: the evaluator (measurement loop
 * with best-so-far history), completion of tunable-only chromosomes
 * into full assignments, and preference-guided solving (used by the
 * SAT-decoder baseline, the AKG-like heuristic, and the vendor
 * library).
 */
#ifndef HERON_SEARCH_COMMON_H
#define HERON_SEARCH_COMMON_H

#include <optional>
#include <unordered_map>
#include <vector>

#include "csp/solver.h"
#include "hw/measurer.h"
#include "rules/space_generator.h"

namespace heron::search {

/** Outcome of one search run. */
struct SearchResult {
    /** Best valid assignment found (empty when none). */
    csp::Assignment best;
    double best_latency_ms = 0.0;
    double best_gflops = 0.0;
    /** Best-so-far GFLOP/s after each measurement. */
    std::vector<double> history;
    int64_t valid_count = 0;
    int64_t total_measured = 0;

    bool found() const { return !best.empty(); }
};

/**
 * Wraps a space + measurer: binds assignments, measures them, and
 * tracks the best-so-far trajectory. A nullopt assignment (e.g. a
 * chromosome that cannot be completed into a consistent program)
 * still consumes one measurement attempt, like a failed compile.
 */
class Evaluator
{
  public:
    Evaluator(const rules::GeneratedSpace &space,
              hw::Measurer &measurer);

    /**
     * Score-keeping-only evaluator: record() and replay() work, but
     * measure() is unavailable. Used when measurement goes through a
     * MeasurePool instead of a single measurer.
     */
    explicit Evaluator(const rules::GeneratedSpace &space);

    /** Measure a full assignment. Returns its throughput score. */
    double measure(const csp::Assignment &a);

    /**
     * Fold an externally-obtained measurement (e.g. from a
     * MeasurePool batch) into the best-so-far trajectory exactly as
     * measure() would. Returns the throughput score.
     */
    double record(const csp::Assignment &a,
                  const hw::MeasureResult &r);

    /** Record a failed-to-build candidate (counts as a trial). */
    double measure_failure();

    /**
     * Apply a measurement restored from a journal without running
     * the hardware: updates the best-so-far trajectory and counters
     * exactly as measure() would and advances the measurer's
     * replay counter, so a resumed run stays bit-identical to an
     * uninterrupted one. Returns the throughput score.
     */
    double replay(const csp::Assignment &a, bool valid,
                  double latency_ms, double gflops);

    /** Full result of the most recent measure()/replay() call. */
    const hw::MeasureResult &last_result() const { return last_; }

    /** Number of measurements so far. */
    int64_t count() const { return result_.total_measured; }

    /** Snapshot of the running result. */
    const SearchResult &result() const { return result_; }

    const rules::GeneratedSpace &space() const { return space_; }

  private:
    const rules::GeneratedSpace &space_;
    /** Null in score-keeping-only mode (pool-driven measurement). */
    hw::Measurer *measurer_ = nullptr;
    SearchResult result_;
    hw::MeasureResult last_;

    /** Shared bookkeeping for measure() and replay(). */
    double apply(const csp::Assignment &a,
                 const hw::MeasureResult &r);
};

/**
 * A chromosome over tunable variables only (the representation the
 * unconstrained baselines evolve).
 */
using Chromosome = std::vector<int64_t>;

/** Tunable-variable view of a CSP. */
class TunableView
{
  public:
    explicit TunableView(const csp::Csp &csp);

    /** Number of genes. */
    size_t size() const { return vars_.size(); }

    /** Variable id of gene @p i. */
    csp::VarId var(size_t i) const { return vars_[i]; }

    /** Candidate values of gene @p i. */
    const std::vector<int64_t> &domain(size_t i) const
    {
        return domains_[i];
    }

    /** Random chromosome (uniform per gene, constraints ignored). */
    Chromosome random(Rng &rng) const;

    /** Extract the tunable genes from a full assignment. */
    Chromosome from_assignment(const csp::Assignment &a) const;

  private:
    std::vector<csp::VarId> vars_;
    std::vector<std::vector<int64_t>> domains_;
};

/**
 * Complete a tunable chromosome into a full assignment via
 * propagation. Returns nullopt when the genes are inconsistent with
 * the constraints (the analogue of a compile failure).
 */
std::optional<csp::Assignment>
complete_assignment(const csp::Csp &csp, const TunableView &view,
                    const Chromosome &genes);

/**
 * Best-effort completion that never fails: genes are kept verbatim,
 * derived variables are functionally evaluated where possible and
 * defaulted otherwise. Used to grade infeasibility (violation
 * counts) for penalty/multi-objective baselines.
 */
csp::Assignment
heuristic_complete(const csp::Csp &csp, const TunableView &view,
                   const Chromosome &genes);

/**
 * Solve the CSP with value ordering biased toward @p preferences
 * (per-variable target values). Always returns a *valid* assignment
 * when one exists within budget: the decoder of GA-2 and the
 * "expert schedule" of the vendor library.
 */
std::optional<csp::Assignment> solve_with_preferences(
    const csp::Csp &csp,
    const std::unordered_map<csp::VarId, int64_t> &preferences,
    Rng &rng, int max_backtracks = 4096);

} // namespace heron::search

#endif // HERON_SEARCH_COMMON_H
