#include "support/metrics.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "support/fs_util.h"
#include "support/json_util.h"

namespace heron::metrics {

double
bucket_percentile(const std::vector<double> &bounds,
                  const std::vector<int64_t> &counts, double p)
{
    int64_t total = 0;
    for (int64_t c : counts)
        total += c;
    if (total <= 0 || bounds.empty())
        return 0.0;
    p = std::min(100.0, std::max(0.0, p));
    // Rank of the requested percentile, 1-based so p=100 lands on
    // the last observation.
    double rank = p / 100.0 * static_cast<double>(total);
    if (rank < 1.0)
        rank = 1.0;
    int64_t cum = 0;
    for (size_t b = 0; b < counts.size(); ++b) {
        int64_t prev = cum;
        cum += counts[b];
        if (static_cast<double>(cum) < rank)
            continue;
        if (b >= bounds.size())
            // Overflow bucket: no upper bound to interpolate
            // toward, so clamp to the last finite bound.
            return bounds.back();
        double lo = b == 0 ? 0.0 : bounds[b - 1];
        double hi = bounds[b];
        double frac = counts[b] > 0
                          ? (rank - static_cast<double>(prev)) /
                                static_cast<double>(counts[b])
                          : 1.0;
        return lo + (hi - lo) * frac;
    }
    return bounds.back();
}

void
Gauge::add(double delta)
{
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed))
        ;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds))
{
    if (bounds_.empty())
        for (double b = 1.0; b <= 4096.0; b *= 2.0)
            bounds_.push_back(b);
    std::sort(bounds_.begin(), bounds_.end());
    buckets_ = std::vector<std::atomic<int64_t>>(bounds_.size() + 1);
}

void
Histogram::observe(double value)
{
    size_t b = static_cast<size_t>(
        std::upper_bound(bounds_.begin(), bounds_.end(), value) -
        bounds_.begin());
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.add(value);
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot snap;
    snap.bounds = bounds_;
    snap.counts.reserve(buckets_.size());
    for (const auto &b : buckets_)
        snap.counts.push_back(b.load(std::memory_order_relaxed));
    snap.count = count_.load(std::memory_order_relaxed);
    snap.sum = sum_.value();
    return snap;
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.reset();
}

WindowedHistogram::WindowedHistogram(std::vector<double> bounds,
                                     int slots,
                                     double slot_seconds)
    : bounds_(std::move(bounds)),
      slot_ns_(static_cast<int64_t>(
          std::max(slot_seconds, 1e-3) * 1e9)),
      epoch_(Clock::now())
{
    if (bounds_.empty())
        for (double b = 1.0; b <= 4096.0; b *= 2.0)
            bounds_.push_back(b);
    std::sort(bounds_.begin(), bounds_.end());
    pow2_bounds_ = !bounds_.empty() && bounds_[0] == 1.0 &&
                   bounds_.size() <= 53;
    for (size_t b = 1; pow2_bounds_ && b < bounds_.size(); ++b)
        pow2_bounds_ = bounds_[b] == 2.0 * bounds_[b - 1];
    if (slots < 1)
        slots = 1;
    // The ring index shares an atomic with the abs slot tag.
    slots = std::min(slots, 1 << kRingBits);
    ring_.reserve(static_cast<size_t>(slots));
    for (int i = 0; i < slots; ++i) {
        auto slot = std::make_unique<Slot>();
        slot->buckets =
            std::vector<std::atomic<int64_t>>(bounds_.size() + 1);
        ring_.push_back(std::move(slot));
    }
}

int64_t
WindowedHistogram::abs_slot(Clock::time_point now) const
{
    int64_t ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now - epoch_)
            .count();
    if (ns < 0)
        ns = 0;
    return ns / slot_ns_;
}

void
WindowedHistogram::rotate(Slot &slot, int64_t abs)
{
    std::lock_guard<std::mutex> lock(rotate_mu_);
    if (slot.abs.load(std::memory_order_acquire) == abs)
        return; // Another thread already rotated this slot.
    for (auto &b : slot.buckets)
        b.store(0, std::memory_order_relaxed);
    slot.scaled_sum.store(0, std::memory_order_relaxed);
    slot.abs.store(abs, std::memory_order_release);
}

size_t
WindowedHistogram::bucket_index(double value) const
{
    if (pow2_bounds_) {
        // Power-of-two bounds: the bucket is the value's binary
        // exponent, read straight from the double's bit pattern
        // (NaN and values under 1 both land in the first bucket;
        // real latencies are neither).
        if (!(value >= 1.0))
            return 0;
        uint64_t bits;
        std::memcpy(&bits, &value, sizeof(bits));
        auto exponent = static_cast<size_t>(
            ((bits >> 52) & 0x7ff) - 1023);
        return std::min(exponent + 1, bounds_.size());
    }
    return static_cast<size_t>(
        std::upper_bound(bounds_.begin(), bounds_.end(), value) -
        bounds_.begin());
}

void
WindowedHistogram::observe_in_bucket(size_t bucket, double value,
                                     Clock::time_point now)
{
    int64_t ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now - epoch_)
            .count();
    if (ns < 0)
        ns = 0;
    // Steady state: the cached (abs, ring index) pair still covers
    // `now`, so the slot resolves with one multiply and two
    // compares — no division, no modulo.
    int64_t cached = cached_slot_.load(std::memory_order_relaxed);
    int64_t abs;
    size_t index;
    if (cached != kNoCache &&
        ns >= (abs = cached >> kRingBits) * slot_ns_ &&
        ns < (abs + 1) * slot_ns_) {
        index = static_cast<size_t>(cached & ((1 << kRingBits) - 1));
    } else {
        abs = ns / slot_ns_;
        index = static_cast<size_t>(
            abs % static_cast<int64_t>(ring_.size()));
        cached_slot_.store((abs << kRingBits) |
                               static_cast<int64_t>(index),
                           std::memory_order_relaxed);
    }
    Slot &slot = *ring_[index];
    if (slot.abs.load(std::memory_order_acquire) != abs)
        rotate(slot, abs);
    slot.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    slot.scaled_sum.fetch_add(
        static_cast<int64_t>(value * kSumScale),
        std::memory_order_relaxed);
}

WindowSnapshot
WindowedHistogram::snapshot(Clock::time_point now) const
{
    WindowSnapshot snap;
    snap.bounds = bounds_;
    snap.counts.assign(bounds_.size() + 1, 0);
    snap.window_seconds = window_seconds();
    int64_t now_abs = abs_slot(now);
    int64_t n = static_cast<int64_t>(ring_.size());
    for (const auto &slot : ring_) {
        int64_t abs = slot->abs.load(std::memory_order_acquire);
        // Live slots are the last `n` absolute indices up to and
        // including the current one; anything older is expired data
        // awaiting rotation, anything newer is impossible.
        if (abs < 0 || abs > now_abs || abs <= now_abs - n)
            continue;
        ++snap.live_slots;
        for (size_t b = 0; b < slot->buckets.size(); ++b) {
            int64_t c = slot->buckets[b].load(
                std::memory_order_relaxed);
            snap.counts[b] += c;
            snap.count += c;
        }
        snap.sum += static_cast<double>(slot->scaled_sum.load(
                        std::memory_order_relaxed)) /
                    kSumScale;
    }
    return snap;
}

void
WindowedHistogram::reset()
{
    std::lock_guard<std::mutex> lock(rotate_mu_);
    cached_slot_.store(kNoCache, std::memory_order_relaxed);
    for (auto &slot : ring_) {
        for (auto &b : slot->buckets)
            b.store(0, std::memory_order_relaxed);
        slot->scaled_sum.store(0, std::memory_order_relaxed);
        slot->abs.store(-1, std::memory_order_release);
    }
}

std::string
MetricsSnapshot::to_json() const
{
    std::ostringstream out;
    out << std::setprecision(
        std::numeric_limits<double>::max_digits10);
    out << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : counters) {
        out << (first ? "" : ",") << "\"" << json_escape(name)
            << "\":" << value;
        first = false;
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto &[name, value] : gauges) {
        out << (first ? "" : ",") << "\"" << json_escape(name)
            << "\":" << value;
        first = false;
    }
    out << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms) {
        out << (first ? "" : ",") << "\"" << json_escape(name)
            << "\":{\"bounds\":[";
        for (size_t i = 0; i < h.bounds.size(); ++i)
            out << (i ? "," : "") << h.bounds[i];
        out << "],\"counts\":[";
        for (size_t i = 0; i < h.counts.size(); ++i)
            out << (i ? "," : "") << h.counts[i];
        out << "],\"count\":" << h.count << ",\"sum\":" << h.sum
            << "}";
        first = false;
    }
    out << "}}";
    return out.str();
}

Registry &
Registry::global()
{
    static Registry registry;
    return registry;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name,
                    std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(std::move(bounds));
    return *slot;
}

MetricsSnapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    MetricsSnapshot snap;
    for (const auto &[name, c] : counters_)
        snap.counters[name] = c->value();
    for (const auto &[name, g] : gauges_)
        snap.gauges[name] = g->value();
    for (const auto &[name, h] : histograms_)
        snap.histograms[name] = h->snapshot();
    return snap;
}

bool
Registry::write_json(const std::string &path) const
{
    // Snapshot files are read by external tooling; replace them
    // atomically so a crash mid-write never leaves torn JSON.
    return atomic_write_file(path, snapshot().to_json() + "\n");
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

} // namespace heron::metrics
