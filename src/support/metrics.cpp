#include "support/metrics.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "support/fs_util.h"

namespace heron::metrics {

void
Gauge::add(double delta)
{
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed))
        ;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds))
{
    if (bounds_.empty())
        for (double b = 1.0; b <= 4096.0; b *= 2.0)
            bounds_.push_back(b);
    std::sort(bounds_.begin(), bounds_.end());
    buckets_ = std::vector<std::atomic<int64_t>>(bounds_.size() + 1);
}

void
Histogram::observe(double value)
{
    size_t b = static_cast<size_t>(
        std::upper_bound(bounds_.begin(), bounds_.end(), value) -
        bounds_.begin());
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.add(value);
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot snap;
    snap.bounds = bounds_;
    snap.counts.reserve(buckets_.size());
    for (const auto &b : buckets_)
        snap.counts.push_back(b.load(std::memory_order_relaxed));
    snap.count = count_.load(std::memory_order_relaxed);
    snap.sum = sum_.value();
    return snap;
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.reset();
}

namespace {

std::string
json_escape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

std::string
MetricsSnapshot::to_json() const
{
    std::ostringstream out;
    out << std::setprecision(
        std::numeric_limits<double>::max_digits10);
    out << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : counters) {
        out << (first ? "" : ",") << "\"" << json_escape(name)
            << "\":" << value;
        first = false;
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto &[name, value] : gauges) {
        out << (first ? "" : ",") << "\"" << json_escape(name)
            << "\":" << value;
        first = false;
    }
    out << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms) {
        out << (first ? "" : ",") << "\"" << json_escape(name)
            << "\":{\"bounds\":[";
        for (size_t i = 0; i < h.bounds.size(); ++i)
            out << (i ? "," : "") << h.bounds[i];
        out << "],\"counts\":[";
        for (size_t i = 0; i < h.counts.size(); ++i)
            out << (i ? "," : "") << h.counts[i];
        out << "],\"count\":" << h.count << ",\"sum\":" << h.sum
            << "}";
        first = false;
    }
    out << "}}";
    return out.str();
}

Registry &
Registry::global()
{
    static Registry registry;
    return registry;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name,
                    std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(std::move(bounds));
    return *slot;
}

MetricsSnapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    MetricsSnapshot snap;
    for (const auto &[name, c] : counters_)
        snap.counters[name] = c->value();
    for (const auto &[name, g] : gauges_)
        snap.gauges[name] = g->value();
    for (const auto &[name, h] : histograms_)
        snap.histograms[name] = h->snapshot();
    return snap;
}

bool
Registry::write_json(const std::string &path) const
{
    // Snapshot files are read by external tooling; replace them
    // atomically so a crash mid-write never leaves torn JSON.
    return atomic_write_file(path, snapshot().to_json() + "\n");
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

} // namespace heron::metrics
