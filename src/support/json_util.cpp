#include "support/json_util.h"

namespace heron {

std::string
json_escape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

std::optional<std::string>
json_extract(const std::string &line, const std::string &key)
{
    std::string needle = "\"" + key + "\":";
    size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return std::nullopt;
    pos += needle.size();
    while (pos < line.size() && line[pos] == ' ')
        ++pos;
    if (pos >= line.size())
        return std::nullopt;
    if (line[pos] == '"') {
        std::string value;
        for (size_t i = pos + 1; i < line.size(); ++i) {
            if (line[i] == '\\' && i + 1 < line.size()) {
                value += line[++i];
                continue;
            }
            if (line[i] == '"')
                return value;
            value += line[i];
        }
        return std::nullopt;
    }
    if (line[pos] == '[') {
        size_t end = line.find(']', pos);
        if (end == std::string::npos)
            return std::nullopt;
        return line.substr(pos + 1, end - pos - 1);
    }
    size_t end = pos;
    while (end < line.size() && line[end] != ',' &&
           line[end] != '}')
        ++end;
    return line.substr(pos, end - pos);
}

} // namespace heron
