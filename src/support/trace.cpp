#include "support/trace.h"

#include <fstream>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "support/fs_util.h"

namespace heron::trace {

namespace {

/** Nesting depth of open spans on this thread. */
thread_local int t_depth = 0;

/** Cached small tid for this thread (-1 until assigned). */
thread_local int t_tid = -1;

double
us_between(Tracer::Clock::time_point a, Tracer::Clock::time_point b)
{
    return std::chrono::duration<double, std::micro>(b - a).count();
}

/** Escape a span label for JSON output. */
std::string
json_escape_label(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

int
Tracer::tid_for_this_thread()
{
    // Callers hold mu_.
    if (t_tid < 0)
        t_tid = next_tid_++;
    return t_tid;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    totals_.clear();
    dropped_ = 0;
    epoch_ = Clock::now();
}

void
Tracer::record_span(const char *label, Clock::time_point start,
                    Clock::time_point end)
{
    if (!enabled())
        return;
    double dur_us = us_between(start, end);
    std::lock_guard<std::mutex> lock(mu_);
    SpanStats &agg = totals_[label];
    ++agg.count;
    agg.total_seconds += dur_us / 1e6;
    if (events_.size() >= max_events_) {
        ++dropped_;
        return;
    }
    TraceEvent ev;
    ev.name = label;
    ev.ts_us = us_between(epoch_, start);
    ev.dur_us = dur_us;
    ev.tid = tid_for_this_thread();
    ev.depth = t_depth;
    events_.push_back(std::move(ev));
}

std::map<std::string, SpanStats>
Tracer::totals() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return totals_;
}

double
Tracer::total_seconds(const std::string &label) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = totals_.find(label);
    return it == totals_.end() ? 0.0 : it->second.total_seconds;
}

int64_t
Tracer::event_count() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int64_t>(events_.size());
}

int64_t
Tracer::dropped_events() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

void
Tracer::set_max_events(size_t cap)
{
    std::lock_guard<std::mutex> lock(mu_);
    max_events_ = cap;
}

std::string
Tracer::chrome_trace_json() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream out;
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent &ev : events_) {
        if (!first)
            out << ",";
        first = false;
        out << "{\"name\":\"" << json_escape_label(ev.name)
            << "\",\"ph\":\"X\",\"cat\":\"heron\",\"pid\":0,"
            << "\"tid\":" << ev.tid << ",\"ts\":" << ev.ts_us
            << ",\"dur\":" << ev.dur_us << ",\"args\":{\"depth\":"
            << ev.depth << "}}";
    }
    if (dropped_ > 0) {
        // A metadata event makes truncation visible in the viewer
        // instead of silently shortening the timeline.
        if (!first)
            out << ",";
        out << "{\"name\":\"heron: dropped " << dropped_
            << " span(s) past the event cap\",\"ph\":\"i\","
            << "\"cat\":\"heron\",\"pid\":0,\"tid\":0,\"ts\":0,"
            << "\"s\":\"g\"}";
    }
    out << "]}";
    return out.str();
}

bool
Tracer::write_chrome_trace(const std::string &path) const
{
    // Replace atomically: a crash mid-export must not leave a torn
    // trace file that chrome://tracing refuses to load.
    return atomic_write_file(path, chrome_trace_json() + "\n");
}

TraceScope::TraceScope(const char *label)
    : label_(label), active_(Tracer::global().enabled())
{
    if (!active_)
        return;
    ++t_depth;
    start_ = Tracer::Clock::now();
}

TraceScope::~TraceScope()
{
    if (!active_)
        return;
    auto end = Tracer::Clock::now();
    --t_depth;
    Tracer::global().record_span(label_, start_, end);
}

} // namespace heron::trace
