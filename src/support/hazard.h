/**
 * @file
 * Hazard-pointer protection for RCU-style read paths.
 *
 * The serving registry publishes immutable snapshots behind an
 * atomic pointer: writers build a new snapshot and swap it in,
 * readers dereference the current one without taking any lock. The
 * remaining problem is reclamation — when may a writer free the
 * snapshot it just replaced? Hazard pointers answer it with a
 * process-wide table of per-thread slots:
 *
 *   reader   p = src.load(); slot = p; if (src.load() == p) use p;
 *            (retry with the fresh pointer when the re-read
 *            differs); clear slot when done
 *   writer   old = src.exchange(next); defer freeing old until no
 *            slot holds it (HazardDomain::is_protected)
 *
 * The re-validation closes the publish/swap race: either the writer
 * swapped first and the reader retries with the new pointer, or the
 * reader's slot store is ordered before the writer's scan (all slot
 * and source operations are seq_cst) and the writer must observe
 * the hazard. Writers never block readers; a writer only defers
 * reclamation, bounded by the number of concurrently protected
 * pointers.
 *
 * Slots are claimed per thread on first use (cached thread-locally,
 * released at thread exit) so the steady-state read cost is one
 * relaxed load, one seq_cst store, and one seq_cst load — all on
 * cache lines the reading thread owns. Guards nest up to
 * kMaxNested deep per thread; a thread that cannot claim a slot
 * (more than kSlots live threads) falls back to a shared mutex that
 * excludes writers' reclamation scans, preserving correctness at
 * degraded speed.
 */
#ifndef HERON_SUPPORT_HAZARD_H
#define HERON_SUPPORT_HAZARD_H

#include <atomic>
#include <cstddef>

namespace heron::support {

/** Process-wide hazard slot table; see file header. */
class HazardDomain
{
  public:
    /** Hazard slots (bounds live protected pointers). */
    static constexpr int kSlots = 128;
    /** Nested Guards per thread. */
    static constexpr int kMaxNested = 4;

    /**
     * RAII protection for one pointer read from one atomic source.
     * Not thread-safe (stack-confined by design); guards on one
     * thread may nest up to kMaxNested deep.
     */
    class Guard
    {
      public:
        Guard();
        ~Guard();
        Guard(const Guard &) = delete;
        Guard &operator=(const Guard &) = delete;

        /**
         * Load @p src and protect the result until clear() or
         * destruction. May be called repeatedly; each call replaces
         * the previous protection.
         */
        template <typename T>
        const T *protect(const std::atomic<const T *> &src)
        {
            const void *p = protect_erased(
                reinterpret_cast<const std::atomic<const void *> &>(
                    src));
            return static_cast<const T *>(p);
        }

        /** Drop the protection early. */
        void clear();

      private:
        const void *protect_erased(
            const std::atomic<const void *> &src);

        /** Claimed slot, or nullptr when on the mutex fallback. */
        void *slot_ = nullptr;
    };

    /**
     * True when some thread currently protects @p p. Writers call
     * this before freeing a retired pointer; a false result is a
     * proof that no reader holds @p p (given the pointer was
     * unreachable from every source before the scan).
     */
    static bool is_protected(const void *p);

    /** Slots currently claimed by live threads (observability). */
    static int active_slots();
};

} // namespace heron::support

#endif // HERON_SUPPORT_HAZARD_H
