/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and
 * histograms with cheap thread-safe updates and a snapshot API.
 *
 * Hot paths use the HERON_COUNTER_* / HERON_HISTOGRAM_OBSERVE
 * macros, which cache the metric reference in a function-local
 * static so the steady-state cost is one relaxed atomic add. The
 * HERON_DISABLE_TRACING compile-time macro removes the
 * instrumentation entirely.
 */
#ifndef HERON_SUPPORT_METRICS_H
#define HERON_SUPPORT_METRICS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace heron::metrics {

/** Monotonic event count. */
class Counter
{
  public:
    void add(int64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> value_{0};
};

/** A settable/accumulable double (e.g. simulated seconds). */
class Gauge
{
  public:
    void set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    /** Atomic accumulate (CAS loop; gauges are not hot). */
    void add(double delta);

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Estimate the @p p-th percentile (p in [0, 100]) of a bucketed
 * distribution by linear interpolation inside the bucket holding
 * that rank (the first bucket interpolates from 0; ranks landing in
 * the overflow bucket clamp to the last finite bound, the best
 * honest answer bucket counts can give). Returns 0 when empty.
 */
double bucket_percentile(const std::vector<double> &bounds,
                         const std::vector<int64_t> &counts,
                         double p);

/** Snapshot of one histogram. */
struct HistogramSnapshot {
    /** Upper bounds of each finite bucket (last bucket = overflow). */
    std::vector<double> bounds;
    /** Per-bucket observation counts (bounds.size() + 1 entries). */
    std::vector<int64_t> counts;
    int64_t count = 0;
    double sum = 0.0;

    /** bucket_percentile over this snapshot (p in [0, 100]). */
    double percentile(double p) const
    {
        return bucket_percentile(bounds, counts, p);
    }
};

/**
 * Fixed-bucket histogram. Observations are bucketed by upper bound;
 * values past the last bound land in the overflow bucket.
 */
class Histogram
{
  public:
    /** Default bounds: exponential 1,2,4,...,4096. */
    explicit Histogram(std::vector<double> bounds = {});

    void observe(double value);

    HistogramSnapshot snapshot() const;

    void reset();

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<int64_t>> buckets_;
    std::atomic<int64_t> count_{0};
    Gauge sum_;
};

/**
 * Merged view of the live slots of a WindowedHistogram: the same
 * shape as HistogramSnapshot plus how much wall time the window
 * actually spans, so quantiles computed from it are honestly scoped
 * ("p95 over the last ~60 s", never a process-lifetime average).
 */
struct WindowSnapshot {
    std::vector<double> bounds;
    /** Merged per-bucket counts (bounds.size() + 1 entries). */
    std::vector<int64_t> counts;
    int64_t count = 0;
    double sum = 0.0;
    /** Configured window span (slots * slot_seconds). */
    double window_seconds = 0.0;
    /** Live (non-expired) slots merged into this snapshot. */
    int live_slots = 0;

    /** bucket_percentile over the window (p in [0, 100]). */
    double percentile(double p) const
    {
        return bucket_percentile(bounds, counts, p);
    }
};

/**
 * Sliding-window histogram: a ring of fixed-bucket histograms, one
 * per time slot, rotated as the clock crosses slot boundaries. A
 * snapshot merges only the slots younger than the window, so
 * quantiles reflect recent traffic instead of process lifetime.
 *
 * The hot path is lock-free: each slot carries the absolute slot
 * index it belongs to; an observation into a fresh slot takes a
 * mutex once per rotation to zero the expired slot, every other
 * observation is a tag load plus relaxed atomic adds. A packed
 * (slot index, ring position) cache keeps the steady state free of
 * integer divisions: locating the current slot is one relaxed load,
 * one multiply, and two compares. Observations racing a rotation
 * may land in (or be zeroed out of) a boundary slot — an accepted,
 * bounded error for monitoring data.
 *
 * Callers pass the timestamp in (they already have one from the
 * latency measurement being recorded), so the window costs no extra
 * clock reads and tests can drive rotation deterministically.
 */
class WindowedHistogram
{
  public:
    using Clock = std::chrono::steady_clock;

    /**
     * @p bounds defaults to the exponential 1,2,4,...,4096 set;
     * @p slots ring slots (>= 1); @p slot_seconds per-slot span.
     */
    explicit WindowedHistogram(std::vector<double> bounds = {},
                               int slots = 6,
                               double slot_seconds = 10.0);

    void observe(double value) { observe(value, Clock::now()); }
    void observe(double value, Clock::time_point now)
    {
        observe_in_bucket(bucket_index(value), value, now);
    }

    /**
     * Bucket index @p value falls into. Callers recording the same
     * value into several windows with identical bounds can search
     * once and reuse the index via observe_in_bucket.
     */
    size_t bucket_index(double value) const;

    /** observe() with the bucket search already done. */
    void observe_in_bucket(size_t bucket, double value,
                           Clock::time_point now);

    WindowSnapshot snapshot() const
    {
        return snapshot(Clock::now());
    }
    WindowSnapshot snapshot(Clock::time_point now) const;

    /** Zero every slot (the configuration survives). */
    void reset();

    double slot_seconds() const { return slot_ns_ / 1e9; }
    int slots() const { return static_cast<int>(ring_.size()); }
    double window_seconds() const
    {
        return slots() * slot_seconds();
    }

  private:
    struct Slot {
        /** Absolute slot index this slot's data belongs to. */
        std::atomic<int64_t> abs{-1};
        /** Per-bucket counts (the slot total is their sum). */
        std::vector<std::atomic<int64_t>> buckets;
        /** Sum scaled by kSumScale (integer adds beat CAS loops). */
        std::atomic<int64_t> scaled_sum{0};
    };

    static constexpr double kSumScale = 1024.0;
    /** Ring positions packed into the cache's low bits. */
    static constexpr int kRingBits = 6;
    static constexpr int64_t kNoCache = -1;

    std::vector<double> bounds_;
    /** Bounds are exactly 1,2,4,...: bucket search by exponent. */
    bool pow2_bounds_ = false;
    int64_t slot_ns_;
    Clock::time_point epoch_;
    std::vector<std::unique_ptr<Slot>> ring_;
    /**
     * (abs_slot << kRingBits) | ring_index of the slot most
     * recently observed into, or kNoCache. Lets the hot path skip
     * both the abs division and the ring modulo.
     */
    mutable std::atomic<int64_t> cached_slot_{kNoCache};
    /** Serializes slot zeroing on rotation (not observations). */
    mutable std::mutex rotate_mu_;

    int64_t abs_slot(Clock::time_point now) const;
    /** Claim @p slot for @p abs, zeroing stale contents. */
    void rotate(Slot &slot, int64_t abs);
};

/** Full registry snapshot, convertible to JSON. */
struct MetricsSnapshot {
    std::map<std::string, int64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    /** One JSON object: {"counters":{...},"gauges":{...},...}. */
    std::string to_json() const;
};

/**
 * Name -> metric registry. Lookup takes a lock; returned references
 * stay valid for the life of the process (reset() zeroes values but
 * never removes a metric), so call sites may cache them.
 */
class Registry
{
  public:
    /** The process-wide registry used by the HERON_* macros. */
    static Registry &global();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /** @p bounds is honored only by the call that creates @p name. */
    Histogram &histogram(const std::string &name,
                         std::vector<double> bounds = {});

    MetricsSnapshot snapshot() const;

    /** Write snapshot().to_json() to @p path. False on I/O error. */
    bool write_json(const std::string &path) const;

    /** Zero every metric (registrations survive). */
    void reset();

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace heron::metrics

#if !defined(HERON_DISABLE_TRACING)

/** Add @p delta to the named process-wide counter. */
#define HERON_COUNTER_ADD(name, delta)                              \
    do {                                                            \
        static ::heron::metrics::Counter &heron_metric_counter =    \
            ::heron::metrics::Registry::global().counter(name);     \
        heron_metric_counter.add(delta);                            \
    } while (0)

/** Increment the named process-wide counter by one. */
#define HERON_COUNTER_INC(name) HERON_COUNTER_ADD(name, 1)

/** Accumulate @p delta into the named process-wide gauge. */
#define HERON_GAUGE_ADD(name, delta)                                \
    do {                                                            \
        static ::heron::metrics::Gauge &heron_metric_gauge =        \
            ::heron::metrics::Registry::global().gauge(name);       \
        heron_metric_gauge.add(delta);                              \
    } while (0)

/** Set the named process-wide gauge to @p value (last write wins). */
#define HERON_GAUGE_SET(name, value)                                \
    do {                                                            \
        static ::heron::metrics::Gauge &heron_metric_gauge_set =    \
            ::heron::metrics::Registry::global().gauge(name);       \
        heron_metric_gauge_set.set(value);                          \
    } while (0)

/** Record @p value into the named process-wide histogram. */
#define HERON_HISTOGRAM_OBSERVE(name, value)                        \
    do {                                                            \
        static ::heron::metrics::Histogram &heron_metric_histo =    \
            ::heron::metrics::Registry::global().histogram(name);   \
        heron_metric_histo.observe(value);                          \
    } while (0)

#else

#define HERON_COUNTER_ADD(name, delta)                              \
    do {                                                            \
    } while (0)
#define HERON_COUNTER_INC(name)                                     \
    do {                                                            \
    } while (0)
#define HERON_GAUGE_ADD(name, delta)                                \
    do {                                                            \
    } while (0)
#define HERON_GAUGE_SET(name, value)                                \
    do {                                                            \
    } while (0)
#define HERON_HISTOGRAM_OBSERVE(name, value)                        \
    do {                                                            \
    } while (0)

#endif // HERON_DISABLE_TRACING

#endif // HERON_SUPPORT_METRICS_H
