/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and
 * histograms with cheap thread-safe updates and a snapshot API.
 *
 * Hot paths use the HERON_COUNTER_* / HERON_HISTOGRAM_OBSERVE
 * macros, which cache the metric reference in a function-local
 * static so the steady-state cost is one relaxed atomic add. The
 * HERON_DISABLE_TRACING compile-time macro removes the
 * instrumentation entirely.
 */
#ifndef HERON_SUPPORT_METRICS_H
#define HERON_SUPPORT_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace heron::metrics {

/** Monotonic event count. */
class Counter
{
  public:
    void add(int64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> value_{0};
};

/** A settable/accumulable double (e.g. simulated seconds). */
class Gauge
{
  public:
    void set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    /** Atomic accumulate (CAS loop; gauges are not hot). */
    void add(double delta);

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** Snapshot of one histogram. */
struct HistogramSnapshot {
    /** Upper bounds of each finite bucket (last bucket = overflow). */
    std::vector<double> bounds;
    /** Per-bucket observation counts (bounds.size() + 1 entries). */
    std::vector<int64_t> counts;
    int64_t count = 0;
    double sum = 0.0;
};

/**
 * Fixed-bucket histogram. Observations are bucketed by upper bound;
 * values past the last bound land in the overflow bucket.
 */
class Histogram
{
  public:
    /** Default bounds: exponential 1,2,4,...,4096. */
    explicit Histogram(std::vector<double> bounds = {});

    void observe(double value);

    HistogramSnapshot snapshot() const;

    void reset();

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<int64_t>> buckets_;
    std::atomic<int64_t> count_{0};
    Gauge sum_;
};

/** Full registry snapshot, convertible to JSON. */
struct MetricsSnapshot {
    std::map<std::string, int64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    /** One JSON object: {"counters":{...},"gauges":{...},...}. */
    std::string to_json() const;
};

/**
 * Name -> metric registry. Lookup takes a lock; returned references
 * stay valid for the life of the process (reset() zeroes values but
 * never removes a metric), so call sites may cache them.
 */
class Registry
{
  public:
    /** The process-wide registry used by the HERON_* macros. */
    static Registry &global();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /** @p bounds is honored only by the call that creates @p name. */
    Histogram &histogram(const std::string &name,
                         std::vector<double> bounds = {});

    MetricsSnapshot snapshot() const;

    /** Write snapshot().to_json() to @p path. False on I/O error. */
    bool write_json(const std::string &path) const;

    /** Zero every metric (registrations survive). */
    void reset();

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace heron::metrics

#if !defined(HERON_DISABLE_TRACING)

/** Add @p delta to the named process-wide counter. */
#define HERON_COUNTER_ADD(name, delta)                              \
    do {                                                            \
        static ::heron::metrics::Counter &heron_metric_counter =    \
            ::heron::metrics::Registry::global().counter(name);     \
        heron_metric_counter.add(delta);                            \
    } while (0)

/** Increment the named process-wide counter by one. */
#define HERON_COUNTER_INC(name) HERON_COUNTER_ADD(name, 1)

/** Accumulate @p delta into the named process-wide gauge. */
#define HERON_GAUGE_ADD(name, delta)                                \
    do {                                                            \
        static ::heron::metrics::Gauge &heron_metric_gauge =        \
            ::heron::metrics::Registry::global().gauge(name);       \
        heron_metric_gauge.add(delta);                              \
    } while (0)

/** Set the named process-wide gauge to @p value (last write wins). */
#define HERON_GAUGE_SET(name, value)                                \
    do {                                                            \
        static ::heron::metrics::Gauge &heron_metric_gauge_set =    \
            ::heron::metrics::Registry::global().gauge(name);       \
        heron_metric_gauge_set.set(value);                          \
    } while (0)

/** Record @p value into the named process-wide histogram. */
#define HERON_HISTOGRAM_OBSERVE(name, value)                        \
    do {                                                            \
        static ::heron::metrics::Histogram &heron_metric_histo =    \
            ::heron::metrics::Registry::global().histogram(name);   \
        heron_metric_histo.observe(value);                          \
    } while (0)

#else

#define HERON_COUNTER_ADD(name, delta)                              \
    do {                                                            \
    } while (0)
#define HERON_COUNTER_INC(name)                                     \
    do {                                                            \
    } while (0)
#define HERON_GAUGE_ADD(name, delta)                                \
    do {                                                            \
    } while (0)
#define HERON_GAUGE_SET(name, value)                                \
    do {                                                            \
    } while (0)
#define HERON_HISTOGRAM_OBSERVE(name, value)                        \
    do {                                                            \
    } while (0)

#endif // HERON_DISABLE_TRACING

#endif // HERON_SUPPORT_METRICS_H
