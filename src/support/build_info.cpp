#include "support/build_info.h"

#include "support/json_util.h"

#ifndef HERON_BUILD_SANITIZER
#define HERON_BUILD_SANITIZER "none"
#endif
#ifndef HERON_GIT_DESCRIBE
#define HERON_GIT_DESCRIBE "unknown"
#endif

namespace heron {

std::string
BuildInfo::to_json() const
{
    return "{\"compiler\":\"" + json_escape(compiler) +
           "\",\"sanitizer\":\"" + json_escape(sanitizer) +
           "\",\"git\":\"" + json_escape(git_describe) + "\"}";
}

const BuildInfo &
build_info()
{
    static const BuildInfo info = [] {
        BuildInfo b;
#if defined(__clang_version__)
        b.compiler = std::string("clang ") + __clang_version__;
#elif defined(__VERSION__)
        b.compiler = std::string("gcc ") + __VERSION__;
#else
        b.compiler = "unknown";
#endif
        b.sanitizer = HERON_BUILD_SANITIZER;
        b.git_describe = HERON_GIT_DESCRIBE;
        return b;
    }();
    return info;
}

} // namespace heron
