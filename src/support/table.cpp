#include "support/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/logging.h"

namespace heron {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    HERON_CHECK(!headers_.empty());
}

void
TextTable::add_row(std::vector<std::string> cells)
{
    HERON_CHECK_EQ(cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::to_string() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    if (!title_.empty())
        out << "== " << title_ << " ==\n";
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            out << std::left << std::setw(static_cast<int>(widths[c]))
                << row[c];
            out << (c + 1 == row.size() ? "\n" : "  ");
        }
    };
    emit_row(headers_);
    std::string rule;
    for (size_t c = 0; c < widths.size(); ++c) {
        rule.append(widths[c], '-');
        if (c + 1 != widths.size())
            rule.append(2, '-');
    }
    out << rule << "\n";
    for (const auto &row : rows_)
        emit_row(row);
    return out.str();
}

std::string
TextTable::to_csv() const
{
    auto quote = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string quoted = "\"";
        for (char ch : cell) {
            if (ch == '"')
                quoted += '"';
            quoted += ch;
        }
        quoted += '"';
        return quoted;
    };
    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c)
            out << quote(row[c]) << (c + 1 == row.size() ? "\n" : ",");
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
    return out.str();
}

std::string
TextTable::fmt(double value, int digits)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(digits) << value;
    return out.str();
}

std::string
TextTable::fmt(int64_t value)
{
    return std::to_string(value);
}

} // namespace heron
