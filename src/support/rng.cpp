#include "support/rng.h"

#include <cmath>

namespace heron {

namespace {

uint64_t
splitmix64(uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

uint64_t
Rng::next_u64()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

int64_t
Rng::uniform_int(int64_t lo, int64_t hi)
{
    HERON_CHECK_LE(lo, hi);
    uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    if (range == 0) // full 64-bit range
        return static_cast<int64_t>(next_u64());
    // Rejection sampling to avoid modulo bias.
    uint64_t limit = UINT64_MAX - UINT64_MAX % range;
    uint64_t x;
    do {
        x = next_u64();
    } while (x >= limit);
    return lo + static_cast<int64_t>(x % range);
}

double
Rng::uniform()
{
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::normal()
{
    // Box-Muller; discard the second variate for simplicity.
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300)
        u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

size_t
Rng::index(size_t n)
{
    HERON_CHECK_GT(n, 0u);
    return static_cast<size_t>(uniform_int(0, static_cast<int64_t>(n) - 1));
}

size_t
Rng::weighted_index(const std::vector<double> &weights)
{
    HERON_CHECK(!weights.empty());
    double total = 0;
    for (double w : weights) {
        HERON_CHECK_GE(w, 0.0);
        total += w;
    }
    if (total <= 0)
        return index(weights.size());
    double r = uniform() * total;
    double acc = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    return Rng(next_u64());
}

Rng
Rng::for_stream(uint64_t seed, uint64_t stream)
{
    // Mix the stream index through SplitMix64 so neighbouring
    // streams land far apart in seed space.
    uint64_t sm = seed;
    uint64_t base = splitmix64(sm);
    sm = base ^ (stream * 0x9e3779b97f4a7c15ULL);
    return Rng(splitmix64(sm));
}

} // namespace heron
