#include "support/profiler.h"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <limits>
#include <sstream>
#include <vector>

#include "support/json_util.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace heron::prof {

std::string
GenerationStats::to_json() const
{
    std::ostringstream out;
    // max_digits10 keeps doubles bit-exact across a round trip,
    // matching the journal's convention.
    out << std::setprecision(
        std::numeric_limits<double>::max_digits10);
    out << "{\"round\":" << round << ","
        << "\"workload\":\"" << json_escape(workload) << "\","
        << "\"tuner\":\"" << json_escape(tuner) << "\","
        << "\"measured\":" << measured << ","
        << "\"best_latency_ms\":" << best_latency_ms << ","
        << "\"best_gflops\":" << best_gflops << ","
        << "\"round_mean_gflops\":" << round_mean_gflops << ","
        << "\"best_predicted\":" << best_predicted << ","
        << "\"mean_predicted\":" << mean_predicted << ","
        << "\"round_measured\":" << round_measured << ","
        << "\"round_valid\":" << round_valid << ","
        << "\"solver_unsat\":" << solver_unsat << ","
        << "\"solver_budget\":" << solver_budget << ","
        << "\"solver_deadline\":" << solver_deadline << ","
        << "\"relaxations\":" << relaxations << ","
        << "\"elapsed_seconds\":" << elapsed_seconds << "}";
    return out.str();
}

std::optional<GenerationStats>
GenerationStats::from_json(const std::string &line)
{
    auto round = json_extract(line, "round");
    auto workload = json_extract(line, "workload");
    auto tuner = json_extract(line, "tuner");
    if (!round || !workload || !tuner)
        return std::nullopt;
    GenerationStats stats;
    stats.round = std::atoll(round->c_str());
    stats.workload = *workload;
    stats.tuner = *tuner;
    auto num = [&](const char *key, double &field) {
        if (auto v = json_extract(line, key))
            field = std::atof(v->c_str());
    };
    auto integer = [&](const char *key, int64_t &field) {
        if (auto v = json_extract(line, key))
            field = std::atoll(v->c_str());
    };
    integer("measured", stats.measured);
    num("best_latency_ms", stats.best_latency_ms);
    num("best_gflops", stats.best_gflops);
    num("round_mean_gflops", stats.round_mean_gflops);
    num("best_predicted", stats.best_predicted);
    num("mean_predicted", stats.mean_predicted);
    if (auto v = json_extract(line, "round_measured"))
        stats.round_measured = std::atoi(v->c_str());
    if (auto v = json_extract(line, "round_valid"))
        stats.round_valid = std::atoi(v->c_str());
    integer("solver_unsat", stats.solver_unsat);
    integer("solver_budget", stats.solver_budget);
    integer("solver_deadline", stats.solver_deadline);
    integer("relaxations", stats.relaxations);
    num("elapsed_seconds", stats.elapsed_seconds);
    return stats;
}

bool
TelemetryStream::open(const std::string &path)
{
    out_.open(path, std::ios::app);
    if (!out_.is_open()) {
        HERON_WARN << "cannot open telemetry stream " << path
                   << " for appending; continuing without "
                      "telemetry";
        return false;
    }
    path_ = path;
    return true;
}

void
TelemetryStream::append(const GenerationStats &stats)
{
    if (!out_.is_open())
        return;
    out_ << stats.to_json() << "\n";
    // Flushed per record so a killed run keeps its telemetry tail.
    out_.flush();
}

Profiler &
Profiler::global()
{
    static Profiler profiler;
    return profiler;
}

void
Profiler::enable()
{
    trace::Tracer::global().set_enabled(true);
}

void
Profiler::disable()
{
    trace::Tracer::global().set_enabled(false);
}

bool
Profiler::enabled() const
{
    return trace::Tracer::global().enabled();
}

bool
Profiler::write_chrome_trace(const std::string &path) const
{
    return trace::Tracer::global().write_chrome_trace(path);
}

bool
Profiler::write_metrics(const std::string &path) const
{
    return metrics::Registry::global().write_json(path);
}

TextTable
Profiler::summary_table(size_t top_spans) const
{
    TextTable table({"kind", "name", "count", "value"});
    table.set_title("Observability summary");

    auto totals = trace::Tracer::global().totals();
    std::vector<std::pair<std::string, trace::SpanStats>> spans(
        totals.begin(), totals.end());
    std::stable_sort(spans.begin(), spans.end(),
                     [](const auto &a, const auto &b) {
                         return a.second.total_seconds >
                                b.second.total_seconds;
                     });
    if (spans.size() > top_spans)
        spans.resize(top_spans);
    for (const auto &[label, agg] : spans)
        table.add_row({"span", label, TextTable::fmt(agg.count),
                       TextTable::fmt(agg.total_seconds, 4) + " s"});

    auto snap = metrics::Registry::global().snapshot();
    for (const auto &[name, value] : snap.counters) {
        if (value == 0)
            continue;
        table.add_row(
            {"counter", name, "", TextTable::fmt(value)});
    }
    for (const auto &[name, value] : snap.gauges) {
        if (value == 0.0)
            continue;
        table.add_row({"gauge", name, "", TextTable::fmt(value, 4)});
    }
    for (const auto &[name, h] : snap.histograms) {
        if (h.count == 0)
            continue;
        // Mean from the exact sum; p50/p95 estimated from the
        // bucket counts so the end-of-run summary is actionable
        // without a separate metrics dump.
        table.add_row(
            {"histogram", name, TextTable::fmt(h.count),
             "mean " +
                 TextTable::fmt(
                     h.sum / static_cast<double>(h.count), 3) +
                 "  p50 " + TextTable::fmt(h.percentile(50), 3) +
                 "  p95 " + TextTable::fmt(h.percentile(95), 3)});
    }
    return table;
}

} // namespace heron::prof
