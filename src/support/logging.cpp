#include "support/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>

namespace heron {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char *
level_name(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
}

} // namespace

void
set_log_level(LogLevel level)
{
    g_log_level.store(static_cast<int>(level));
}

LogLevel
log_level()
{
    return static_cast<LogLevel>(g_log_level.load());
}

namespace detail {

bool
log_enabled(LogLevel level)
{
    return static_cast<int>(level) >= g_log_level.load();
}

LogMessage::LogMessage(LogLevel level, const char *file, int line)
    : level_(level)
{
    stream_ << "[" << level_name(level) << " " << file << ":" << line
            << "] ";
}

LogMessage::~LogMessage()
{
    stream_ << "\n";
    std::cerr << stream_.str();
}

FatalMessage::FatalMessage(const char *file, int line)
{
    stream_ << "[FATAL " << file << ":" << line << "] ";
}

FatalMessage::~FatalMessage()
{
    stream_ << "\n";
    std::cerr << stream_.str();
    std::cerr.flush();
    std::abort();
}

} // namespace detail

} // namespace heron
