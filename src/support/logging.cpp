#include "support/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace heron {

namespace {

/** Sentinel meaning "not set yet; consult the environment". */
constexpr int kLevelUnset = 1000;

std::atomic<int> g_log_level{kLevelUnset};
std::atomic<std::ostream *> g_log_sink{nullptr};
std::mutex g_sink_mutex;

const char *
level_name(LogLevel level)
{
    switch (level) {
      case LogLevel::kTrace: return "TRACE";
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
}

/** Resolve the level, applying HERON_LOG_LEVEL on first use. */
int
current_level()
{
    int level = g_log_level.load();
    if (level != kLevelUnset)
        return level;
    int resolved = static_cast<int>(LogLevel::kInfo);
    if (const char *env = std::getenv("HERON_LOG_LEVEL")) {
        if (auto parsed = parse_log_level(env))
            resolved = static_cast<int>(*parsed);
        else
            std::fprintf(stderr,
                         "[WARN] unrecognized HERON_LOG_LEVEL "
                         "'%s'; using info\n",
                         env);
    }
    // First caller wins; set_log_level() can still override later.
    int expected = kLevelUnset;
    g_log_level.compare_exchange_strong(expected, resolved);
    return g_log_level.load();
}

} // namespace

void
set_log_level(LogLevel level)
{
    g_log_level.store(static_cast<int>(level));
}

LogLevel
log_level()
{
    return static_cast<LogLevel>(current_level());
}

std::optional<LogLevel>
parse_log_level(const std::string &text)
{
    std::string lower;
    for (char c : text)
        lower += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (lower == "trace")
        return LogLevel::kTrace;
    if (lower == "debug")
        return LogLevel::kDebug;
    if (lower == "info")
        return LogLevel::kInfo;
    if (lower == "warn" || lower == "warning")
        return LogLevel::kWarn;
    if (lower == "error")
        return LogLevel::kError;
    if (!lower.empty() &&
        (std::isdigit(static_cast<unsigned char>(lower[0])) ||
         lower[0] == '-')) {
        char *end = nullptr;
        long value = std::strtol(lower.c_str(), &end, 10);
        if (end && *end == '\0' &&
            value >= static_cast<long>(LogLevel::kTrace) &&
            value <= static_cast<long>(LogLevel::kError))
            return static_cast<LogLevel>(value);
    }
    return std::nullopt;
}

void
set_log_sink(std::ostream *sink)
{
    g_log_sink.store(sink);
}

namespace detail {

namespace {

/** Every log line funnels through this single sink. */
void
emit(const std::string &text)
{
    std::ostream *sink = g_log_sink.load();
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    if (sink) {
        *sink << text;
        sink->flush();
    } else {
        std::cerr << text;
    }
}

} // namespace

bool
log_enabled(LogLevel level)
{
    return static_cast<int>(level) >= current_level();
}

LogMessage::LogMessage(LogLevel level, const char *file, int line)
    : level_(level)
{
    stream_ << "[" << level_name(level) << " " << file << ":" << line
            << "] ";
}

LogMessage::~LogMessage()
{
    stream_ << "\n";
    emit(stream_.str());
}

FatalMessage::FatalMessage(const char *file, int line)
{
    stream_ << "[FATAL " << file << ":" << line << "] ";
}

FatalMessage::~FatalMessage()
{
    stream_ << "\n";
    emit(stream_.str());
    std::cerr.flush();
    std::abort();
}

} // namespace detail

} // namespace heron
