#include "support/arena.h"

#include <algorithm>

#include "support/logging.h"

namespace heron::support {

Arena::Arena(size_t chunk_bytes)
    : chunk_bytes_(std::max<size_t>(chunk_bytes, 64))
{
}

void *
Arena::carve(Chunk &chunk, size_t bytes, size_t align)
{
    uintptr_t base = reinterpret_cast<uintptr_t>(chunk.data.get());
    uintptr_t cursor = base + chunk.used;
    uintptr_t aligned = (cursor + (align - 1)) & ~(align - 1);
    size_t needed = (aligned - cursor) + bytes;
    if (chunk.used + needed > chunk.size)
        return nullptr;
    chunk.used += needed;
    return reinterpret_cast<void *>(aligned);
}

void *
Arena::allocate(size_t bytes, size_t align)
{
    HERON_CHECK(align != 0 && (align & (align - 1)) == 0);
    // Try the active chunk, then any retained chunk after it (reset
    // rewinds used to 0 but keeps the storage).
    for (; active_ < chunks_.size(); ++active_) {
        if (void *p = carve(chunks_[active_], bytes, align)) {
            live_ += bytes;
            high_water_ = std::max(high_water_, live_);
            return p;
        }
        // A request that doesn't fit the remainder moves on; the
        // skipped tail is dead until the next reset (bounded waste:
        // at most one request per chunk).
    }
    // Oversized requests get a dedicated exactly-sized chunk so one
    // big allocation can't blow up the steady-state footprint.
    size_t size = std::max(chunk_bytes_, bytes + align);
    Chunk chunk;
    chunk.data = std::make_unique<std::byte[]>(size);
    chunk.size = size;
    chunks_.push_back(std::move(chunk));
    active_ = chunks_.size() - 1;
    void *p = carve(chunks_.back(), bytes, align);
    HERON_CHECK(p != nullptr);
    live_ += bytes;
    high_water_ = std::max(high_water_, live_);
    return p;
}

void
Arena::reset()
{
    for (Chunk &chunk : chunks_)
        chunk.used = 0;
    active_ = 0;
    live_ = 0;
    ++resets_;
}

Arena::Stats
Arena::stats() const
{
    Stats stats;
    stats.chunks = chunks_.size();
    for (const Chunk &chunk : chunks_)
        stats.bytes_reserved += chunk.size;
    stats.bytes_live = live_;
    stats.high_water = high_water_;
    stats.resets = resets_;
    return stats;
}

} // namespace heron::support
