/**
 * @file
 * Build identity for fleet debugging: compiler, sanitizer preset,
 * and git describe, baked in at compile time so a serving binary can
 * report exactly what it was built from.
 */
#ifndef HERON_SUPPORT_BUILD_INFO_H
#define HERON_SUPPORT_BUILD_INFO_H

#include <string>

namespace heron {

struct BuildInfo {
    /** Compiler version string (from __VERSION__). */
    std::string compiler;
    /** Sanitizer preset: "none", "asan+ubsan", or "tsan". */
    std::string sanitizer;
    /** `git describe --always --dirty` at configure time. */
    std::string git_describe;

    /** JSON object (all fields escaped). */
    std::string to_json() const;
};

/** The build identity of this binary. */
const BuildInfo &build_info();

} // namespace heron

#endif // HERON_SUPPORT_BUILD_INFO_H
