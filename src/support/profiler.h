/**
 * @file
 * Tuning-pipeline profiling: per-generation telemetry records
 * (GenerationStats, streamed as JSONL next to the measurement
 * journal) and the Profiler facade that ties the tracer and the
 * metrics registry together for drivers like heron_tune
 * (enable/disable, trace + metrics file export, end-of-run summary
 * table).
 */
#ifndef HERON_SUPPORT_PROFILER_H
#define HERON_SUPPORT_PROFILER_H

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>

#include "support/table.h"

namespace heron::prof {

/**
 * One tuning round's telemetry, emitted by the CGA tuner after each
 * measurement round (the per-iteration data behind the paper's
 * Fig. 12 convergence curves and Table 10 cost breakdown).
 */
struct GenerationStats {
    /** Round index within this tuning run (0-based, monotonic). */
    int64_t round = 0;
    std::string workload;
    std::string tuner;
    /** Cumulative measurements after this round. */
    int64_t measured = 0;
    /** Best-so-far measured performance. */
    double best_latency_ms = 0.0;
    double best_gflops = 0.0;
    /** Mean measured GFLOP/s of this round's valid candidates. */
    double round_mean_gflops = 0.0;
    /** Best/mean predicted score of this round's candidates. */
    double best_predicted = 0.0;
    double mean_predicted = 0.0;
    /** Population validity this round. */
    int round_measured = 0;
    int round_valid = 0;
    /** Solver failure breakdown during this round. */
    int64_t solver_unsat = 0;
    int64_t solver_budget = 0;
    int64_t solver_deadline = 0;
    /** CGA crossover relaxation-ladder steps taken this round. */
    int64_t relaxations = 0;
    /** Wall-clock seconds since the tuning run started. */
    double elapsed_seconds = 0.0;

    /** One-line JSON encoding (JSONL-friendly). */
    std::string to_json() const;

    /** Parse a to_json() line; nullopt on malformed input. */
    static std::optional<GenerationStats>
    from_json(const std::string &line);
};

/** Append-only JSONL stream of GenerationStats records. */
class TelemetryStream
{
  public:
    TelemetryStream() = default;

    /** Open @p path for appending. False when it cannot be opened. */
    bool open(const std::string &path);

    bool is_open() const { return out_.is_open(); }

    const std::string &path() const { return path_; }

    /** Append one record and flush it to disk immediately. */
    void append(const GenerationStats &stats);

  private:
    std::ofstream out_;
    std::string path_;
};

/**
 * Facade over the tracer + metrics registry for tuning drivers:
 * one switch to arm both, file export, and a human-readable
 * end-of-run summary.
 */
class Profiler
{
  public:
    static Profiler &global();

    /** Arm span recording (metrics counters are always armed). */
    void enable();
    void disable();
    bool enabled() const;

    /** Export the Chrome trace. False on I/O error. */
    bool write_chrome_trace(const std::string &path) const;

    /** Export the metrics snapshot as JSON. False on I/O error. */
    bool write_metrics(const std::string &path) const;

    /**
     * Summary table: the top @p top_spans span labels by inclusive
     * time plus every non-zero counter, for end-of-run printing.
     */
    TextTable summary_table(size_t top_spans = 12) const;
};

} // namespace heron::prof

#endif // HERON_SUPPORT_PROFILER_H
