#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/logging.h"

namespace heron {

void
RunningStat::push(double x)
{
    if (count_ == 0) {
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        HERON_CHECK_GT(x, 0.0);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
stddev(const std::vector<double> &xs)
{
    RunningStat s;
    for (double x : xs)
        s.push(x);
    return s.stddev();
}

double
percentile(std::vector<double> xs, double p)
{
    HERON_CHECK(!xs.empty());
    HERON_CHECK_GE(p, 0.0);
    HERON_CHECK_LE(p, 100.0);
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs[0];
    double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

} // namespace heron
