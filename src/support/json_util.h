/**
 * @file
 * Minimal helpers for the one-line JSON-object subset Heron uses in
 * its JSONL streams (tuning records, journal, telemetry). Shared by
 * autotune/record and support/profiler so both sides of a round trip
 * agree on escaping and extraction.
 */
#ifndef HERON_SUPPORT_JSON_UTIL_H
#define HERON_SUPPORT_JSON_UTIL_H

#include <optional>
#include <string>

namespace heron {

/** Escape '"' and '\\' for embedding in a JSON string. */
std::string json_escape(const std::string &s);

/**
 * Extract the value of "key": from a one-line JSON object. Returns
 * the raw token (string contents without quotes, or the number /
 * array body text without brackets). nullopt when absent.
 */
std::optional<std::string> json_extract(const std::string &line,
                                        const std::string &key);

} // namespace heron

#endif // HERON_SUPPORT_JSON_UTIL_H
