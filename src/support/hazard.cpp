#include "support/hazard.h"

#include <functional>
#include <mutex>
#include <thread>

namespace heron::support {

namespace {

struct alignas(64) Slot {
    std::atomic<const void *> ptr{nullptr};
    std::atomic<uint32_t> owned{0};
};

Slot *
slot_table()
{
    // Function-local static: alive for the whole process (trivially
    // destructible members), so thread-exit releases can always
    // touch it regardless of static destruction order.
    static Slot table[HazardDomain::kSlots];
    return table;
}

/**
 * Fallback for threads that cannot claim a slot: readers hold this
 * mutex across their protected section and writers' reclamation
 * scans acquire it once, waiting out any such reader. Recursive so
 * nested fallback Guards on one thread don't self-deadlock.
 */
std::recursive_mutex &
fallback_mutex()
{
    static std::recursive_mutex mu;
    return mu;
}

/** Per-thread claimed slots, stack-ordered to match Guard nesting. */
struct Lease {
    Slot *slots[HazardDomain::kMaxNested] = {};
    int claimed = 0;
    int depth = 0;

    ~Lease()
    {
        for (int i = 0; i < claimed; ++i) {
            slots[i]->ptr.store(nullptr,
                                std::memory_order_seq_cst);
            slots[i]->owned.store(0, std::memory_order_release);
        }
    }

    Slot *claim_next()
    {
        if (depth < claimed)
            return slots[depth];
        if (claimed >= HazardDomain::kMaxNested)
            return nullptr;
        Slot *table = slot_table();
        size_t start =
            std::hash<std::thread::id>()(
                std::this_thread::get_id()) %
            static_cast<size_t>(HazardDomain::kSlots);
        for (int i = 0; i < HazardDomain::kSlots; ++i) {
            Slot &slot =
                table[(start + static_cast<size_t>(i)) %
                      static_cast<size_t>(HazardDomain::kSlots)];
            uint32_t expected = 0;
            if (slot.owned.compare_exchange_strong(
                    expected, 1, std::memory_order_acq_rel))
                return slots[claimed++] = &slot;
        }
        return nullptr; // table full: caller takes the fallback
    }
};

thread_local Lease tls_lease;

} // namespace

HazardDomain::Guard::Guard()
{
    Slot *slot = tls_lease.claim_next();
    if (slot != nullptr) {
        ++tls_lease.depth;
        slot_ = slot;
    } else {
        fallback_mutex().lock();
    }
}

HazardDomain::Guard::~Guard()
{
    if (slot_ != nullptr) {
        static_cast<Slot *>(slot_)->ptr.store(
            nullptr, std::memory_order_seq_cst);
        --tls_lease.depth;
    } else {
        fallback_mutex().unlock();
    }
}

void
HazardDomain::Guard::clear()
{
    if (slot_ != nullptr)
        static_cast<Slot *>(slot_)->ptr.store(
            nullptr, std::memory_order_seq_cst);
    // Fallback guards keep the mutex until destruction: clear()
    // only drops pointer protection, and the mutex is what protects
    // a slotless reader.
}

const void *
HazardDomain::Guard::protect_erased(
    const std::atomic<const void *> &src)
{
    if (slot_ == nullptr) {
        // Mutex fallback: reclamation scans serialize against this
        // guard's mutex hold, so a plain load is already safe.
        return src.load(std::memory_order_seq_cst);
    }
    Slot *slot = static_cast<Slot *>(slot_);
    const void *p = src.load(std::memory_order_acquire);
    for (;;) {
        slot->ptr.store(p, std::memory_order_seq_cst);
        // Re-validate: if the source moved on after we published
        // the hazard, the writer may have already scanned (and
        // missed) our slot — retry with the fresh pointer. If it
        // still matches, our seq_cst publish is ordered before any
        // later writer's scan, which must therefore observe it.
        const void *q = src.load(std::memory_order_seq_cst);
        if (q == p)
            return p;
        p = q;
    }
}

bool
HazardDomain::is_protected(const void *p)
{
    Slot *table = slot_table();
    for (int i = 0; i < kSlots; ++i) {
        if (table[i].ptr.load(std::memory_order_seq_cst) == p)
            return true;
    }
    // Wait out any slotless reader that loaded the pointer before
    // it was retired; new fallback readers can only observe the
    // already-swapped source.
    fallback_mutex().lock();
    fallback_mutex().unlock();
    return false;
}

int
HazardDomain::active_slots()
{
    Slot *table = slot_table();
    int active = 0;
    for (int i = 0; i < kSlots; ++i)
        active += table[i].owned.load(std::memory_order_acquire) != 0;
    return active;
}

} // namespace heron::support
