/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component in Heron (solver value choice, genetic
 * operators, simulated annealing, measurement noise) draws from an Rng
 * instance seeded explicitly, so whole tuning runs are reproducible.
 */
#ifndef HERON_SUPPORT_RNG_H
#define HERON_SUPPORT_RNG_H

#include <cstdint>
#include <vector>

#include "support/logging.h"

namespace heron {

/**
 * A small, fast, deterministic PRNG (xoshiro256**) with convenience
 * sampling helpers. Not cryptographic; deterministic across platforms.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next_u64();

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    int64_t uniform_int(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Bernoulli draw with probability @p p of true. */
    bool bernoulli(double p);

    /** Standard normal draw (Box-Muller). */
    double normal();

    /** Normal draw with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Uniformly pick an index in [0, n). Requires n > 0. */
    size_t index(size_t n);

    /** Uniformly pick an element of @p items. Requires non-empty. */
    template <typename T>
    const T &
    pick(const std::vector<T> &items)
    {
        HERON_CHECK(!items.empty());
        return items[index(items.size())];
    }

    /** In-place Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (size_t i = items.size(); i > 1; --i) {
            size_t j = index(i);
            std::swap(items[i - 1], items[j]);
        }
    }

    /**
     * Sample an index according to non-negative weights
     * (roulette-wheel). All-zero weights fall back to uniform.
     */
    size_t weighted_index(const std::vector<double> &weights);

    /** Derive an independent child generator (for parallel phases). */
    Rng fork();

    /**
     * Deterministic generator for stream @p stream of base seed
     * @p seed. Unlike fork(), this does not advance any generator:
     * stream k of a given seed is the same no matter how many other
     * streams are derived or in what order, which is what parallel
     * fan-out needs for worker-count-independent results.
     */
    static Rng for_stream(uint64_t seed, uint64_t stream);

  private:
    uint64_t s_[4];
};

} // namespace heron

#endif // HERON_SUPPORT_RNG_H
