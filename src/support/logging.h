/**
 * @file
 * Logging and runtime-check utilities used across Heron.
 *
 * Follows the gem5 distinction between user-facing errors (fatal) and
 * internal invariant violations (panic / HERON_CHECK).
 */
#ifndef HERON_SUPPORT_LOGGING_H
#define HERON_SUPPORT_LOGGING_H

#include <cstdint>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>

namespace heron {

/** Severity of a log message. */
enum class LogLevel : int {
    /** Very chatty per-iteration detail (off even in debug runs). */
    kTrace = -1,
    kDebug = 0,
    kInfo = 1,
    kWarn = 2,
    kError = 3,
};

/**
 * Set the minimum severity that is printed. The default is kInfo,
 * overridable without recompiling via the HERON_LOG_LEVEL
 * environment variable ("trace", "debug", "info", "warn", "error",
 * or a numeric level), which is read once at first use; an explicit
 * set_log_level() call wins over the environment.
 */
void set_log_level(LogLevel level);

/** Current minimum printed severity. */
LogLevel log_level();

/**
 * Parse a HERON_LOG_LEVEL value ("trace".."error", case-insensitive,
 * or a number). nullopt on unrecognized input.
 */
std::optional<LogLevel> parse_log_level(const std::string &text);

/**
 * Redirect all log output (every level, one sink) to @p sink;
 * nullptr restores stderr. The sink must outlive logging activity.
 * Used by tests to capture output.
 */
void set_log_sink(std::ostream *sink);

namespace detail {

/**
 * One in-flight log statement; streams into an internal buffer and
 * flushes to stderr on destruction.
 */
class LogMessage
{
  public:
    LogMessage(LogLevel level, const char *file, int line);
    ~LogMessage();

    LogMessage(const LogMessage &) = delete;
    LogMessage &operator=(const LogMessage &) = delete;

    std::ostringstream &stream() { return stream_; }

  private:
    LogLevel level_;
    std::ostringstream stream_;
};

/**
 * Like LogMessage but aborts the process on destruction. Used by
 * HERON_CHECK and HERON_FATAL.
 */
class FatalMessage
{
  public:
    FatalMessage(const char *file, int line);
    [[noreturn]] ~FatalMessage();

    FatalMessage(const FatalMessage &) = delete;
    FatalMessage &operator=(const FatalMessage &) = delete;

    std::ostringstream &stream() { return stream_; }

  private:
    std::ostringstream stream_;
};

/** True if messages at @p level are currently printed. */
bool log_enabled(LogLevel level);

} // namespace detail

} // namespace heron

#define HERON_LOG(level)                                                    \
    if (!::heron::detail::log_enabled(::heron::LogLevel::level)) {          \
    } else                                                                  \
        ::heron::detail::LogMessage(::heron::LogLevel::level, __FILE__,     \
                                    __LINE__)                               \
            .stream()

#define HERON_TRACE_MSG HERON_LOG(kTrace)
#define HERON_DEBUG HERON_LOG(kDebug)
#define HERON_INFO HERON_LOG(kInfo)
#define HERON_WARN HERON_LOG(kWarn)
#define HERON_ERROR HERON_LOG(kError)

/** Abort with a message; use for unrecoverable internal errors. */
#define HERON_FATAL                                                         \
    ::heron::detail::FatalMessage(__FILE__, __LINE__).stream()

/** Internal invariant check; aborts with the condition text on failure. */
#define HERON_CHECK(cond)                                                   \
    if (cond) {                                                             \
    } else                                                                  \
        ::heron::detail::FatalMessage(__FILE__, __LINE__).stream()          \
            << "Check failed: " #cond " "

#define HERON_CHECK_EQ(a, b) HERON_CHECK((a) == (b))
#define HERON_CHECK_NE(a, b) HERON_CHECK((a) != (b))
#define HERON_CHECK_LE(a, b) HERON_CHECK((a) <= (b))
#define HERON_CHECK_LT(a, b) HERON_CHECK((a) < (b))
#define HERON_CHECK_GE(a, b) HERON_CHECK((a) >= (b))
#define HERON_CHECK_GT(a, b) HERON_CHECK((a) > (b))

#endif // HERON_SUPPORT_LOGGING_H
