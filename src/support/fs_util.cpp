#include "support/fs_util.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/logging.h"

#if defined(_WIN32)
#include <fstream>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace heron {

namespace fsfault {

namespace {

std::mutex g_mu;
std::vector<std::pair<std::string, Plan>> g_plans;
std::atomic<bool> g_armed{false};
std::atomic<int64_t> g_injected{0};

} // namespace

void
arm(const std::string &site_prefix, Plan plan)
{
    std::lock_guard<std::mutex> lock(g_mu);
    g_plans.emplace_back(site_prefix, plan);
    g_armed.store(true, std::memory_order_release);
}

void
disarm()
{
    std::lock_guard<std::mutex> lock(g_mu);
    g_plans.clear();
    g_armed.store(false, std::memory_order_release);
    g_injected.store(0, std::memory_order_relaxed);
}

bool
armed()
{
    return g_armed.load(std::memory_order_acquire);
}

bool
injected(const char *site)
{
    if (!armed())
        return false;
    std::lock_guard<std::mutex> lock(g_mu);
    for (auto &[prefix, plan] : g_plans) {
        if (std::strncmp(site, prefix.c_str(), prefix.size()) != 0)
            continue;
        if (plan.skip > 0) {
            --plan.skip;
            return false;
        }
        if (plan.fail == 0)
            return false;
        if (plan.fail > 0)
            --plan.fail;
        g_injected.fetch_add(1, std::memory_order_relaxed);
        errno = ENOSPC;
        return true;
    }
    return false;
}

int64_t
injection_count()
{
    return g_injected.load(std::memory_order_relaxed);
}

int
arm_from_env()
{
    const char *spec = std::getenv("HERON_FS_FAULT");
    if (spec == nullptr || *spec == '\0')
        return 0;
    int count = 0;
    std::string text(spec);
    size_t pos = 0;
    while (pos < text.size()) {
        size_t end = text.find(';', pos);
        if (end == std::string::npos)
            end = text.size();
        std::string entry = text.substr(pos, end - pos);
        pos = end + 1;
        size_t colon = entry.find(':');
        if (colon == std::string::npos || colon == 0)
            continue;
        std::string site = entry.substr(0, colon);
        Plan plan;
        size_t at = colon + 1;
        while (at < entry.size()) {
            size_t comma = entry.find(',', at);
            if (comma == std::string::npos)
                comma = entry.size();
            std::string kv = entry.substr(at, comma - at);
            at = comma + 1;
            size_t eq = kv.find('=');
            if (eq == std::string::npos)
                continue;
            std::string key = kv.substr(0, eq);
            int value = std::atoi(kv.c_str() + eq + 1);
            if (key == "skip")
                plan.skip = value;
            else if (key == "fail")
                plan.fail = value;
        }
        arm(site, plan);
        HERON_WARN << "fsfault: armed " << site << " skip="
                   << plan.skip << " fail=" << plan.fail
                   << " (HERON_FS_FAULT)";
        ++count;
    }
    return count;
}

} // namespace fsfault

namespace {

const FsCapabilities &
compute_capabilities()
{
#if defined(_WIN32)
    static const FsCapabilities caps{"portable", false, false};
#else
    static const FsCapabilities caps{"posix", true, true};
#endif
    return caps;
}

} // namespace

const FsCapabilities &
fs_capabilities()
{
    static std::once_flag reported;
    const FsCapabilities &caps = compute_capabilities();
    std::call_once(reported, [&caps] {
        if (caps.directory_fsync) {
            HERON_INFO << "fs: durable-write backend "
                       << caps.backend
                       << " (atomic rename + directory fsync)";
        } else {
            HERON_WARN
                << "fs: durable-write backend " << caps.backend
                << " cannot fsync directories; a rename may not "
                   "survive power loss";
        }
    });
    return caps;
}

#if defined(_WIN32)

// Portability fallback: plain write + rename (no directory fsync).
bool
atomic_write_file(const std::string &path,
                  const std::string &content)
{
    fs_capabilities();
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
        if (!out.is_open())
            return false;
        out << content;
        if (!out.good())
            return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

#else

namespace {

/** Directory component of @p path ("." when none). */
std::string
parent_dir(const std::string &path)
{
    size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

} // namespace

bool
atomic_write_file(const std::string &path,
                  const std::string &content)
{
    fs_capabilities();
    // The temp file must live in the destination directory: rename
    // is atomic only within one filesystem.
    std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                    0644);
    if (fd < 0) {
        HERON_WARN << "atomic_write_file: cannot create " << tmp;
        return false;
    }
    const char *data = content.data();
    size_t left = content.size();
    bool ok = !fsfault::injected("atomic.write");
    while (ok && left > 0) {
        ssize_t n = ::write(fd, data, left);
        if (n < 0) {
            ok = false;
            break;
        }
        data += n;
        left -= static_cast<size_t>(n);
    }
    // Data must be durable before the rename makes it visible;
    // otherwise a crash could expose a complete-looking empty file.
    if (ok &&
        (fsfault::injected("atomic.fsync") || ::fsync(fd) != 0))
        ok = false;
    ::close(fd);
    if (ok && (fsfault::injected("atomic.rename") ||
               std::rename(tmp.c_str(), path.c_str()) != 0))
        ok = false;
    if (!ok) {
        ::unlink(tmp.c_str());
        HERON_WARN << "atomic_write_file: failed writing " << path
                   << ": " << std::strerror(errno);
        return false;
    }
    // Persist the rename itself (directory entry).
    int dirfd = ::open(parent_dir(path).c_str(),
                       O_RDONLY | O_DIRECTORY);
    if (dirfd >= 0) {
        ::fsync(dirfd);
        ::close(dirfd);
    }
    return true;
}

#endif // _WIN32

} // namespace heron
