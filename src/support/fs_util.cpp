#include "support/fs_util.h"

#include <cstdio>
#include <string>

#include "support/logging.h"

#if defined(_WIN32)
#include <fstream>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace heron {

#if defined(_WIN32)

// Portability fallback: plain write + rename (no directory fsync).
bool
atomic_write_file(const std::string &path,
                  const std::string &content)
{
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
        if (!out.is_open())
            return false;
        out << content;
        if (!out.good())
            return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

#else

namespace {

/** Directory component of @p path ("." when none). */
std::string
parent_dir(const std::string &path)
{
    size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

} // namespace

bool
atomic_write_file(const std::string &path,
                  const std::string &content)
{
    // The temp file must live in the destination directory: rename
    // is atomic only within one filesystem.
    std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                    0644);
    if (fd < 0) {
        HERON_WARN << "atomic_write_file: cannot create " << tmp;
        return false;
    }
    const char *data = content.data();
    size_t left = content.size();
    bool ok = true;
    while (left > 0) {
        ssize_t n = ::write(fd, data, left);
        if (n < 0) {
            ok = false;
            break;
        }
        data += n;
        left -= static_cast<size_t>(n);
    }
    // Data must be durable before the rename makes it visible;
    // otherwise a crash could expose a complete-looking empty file.
    if (ok && ::fsync(fd) != 0)
        ok = false;
    ::close(fd);
    if (ok && std::rename(tmp.c_str(), path.c_str()) != 0)
        ok = false;
    if (!ok) {
        ::unlink(tmp.c_str());
        HERON_WARN << "atomic_write_file: failed writing " << path;
        return false;
    }
    // Persist the rename itself (directory entry).
    int dirfd = ::open(parent_dir(path).c_str(),
                       O_RDONLY | O_DIRECTORY);
    if (dirfd >= 0) {
        ::fsync(dirfd);
        ::close(dirfd);
    }
    return true;
}

#endif // _WIN32

} // namespace heron
