/**
 * @file
 * Hierarchical timing spans for the tuning pipeline.
 *
 * HERON_TRACE_SCOPE("csp/propagate") opens an RAII span: spans nest
 * per thread, aggregate per-label wall time and call counts, and are
 * exported as Chrome trace-event JSON (loadable in chrome://tracing
 * or Perfetto). Tracing is near-zero-cost when off: with the
 * HERON_DISABLE_TRACING compile-time macro the scope macro expands
 * to nothing, and at runtime a disabled tracer costs one relaxed
 * atomic load per scope.
 */
#ifndef HERON_SUPPORT_TRACE_H
#define HERON_SUPPORT_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace heron::trace {

/** Aggregated wall time of one span label. */
struct SpanStats {
    /** Completed spans with this label. */
    int64_t count = 0;
    /** Inclusive wall time (children included), seconds. */
    double total_seconds = 0.0;
};

/** One completed span, for Chrome trace-event export. */
struct TraceEvent {
    std::string name;
    /** Microseconds since the tracer epoch. */
    double ts_us = 0.0;
    double dur_us = 0.0;
    /** Small per-thread id (0 for the first thread seen). */
    int tid = 0;
    /** Nesting depth at the time the span opened. */
    int depth = 0;
};

/**
 * Process-wide span collector. Thread-safe; spans on different
 * threads get distinct Chrome-trace tids so they render on separate
 * tracks.
 */
class Tracer
{
  public:
    using Clock = std::chrono::steady_clock;

    /** The process-wide tracer used by HERON_TRACE_SCOPE. */
    static Tracer &global();

    /** Turn span recording on or off (off by default). */
    void set_enabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Drop all recorded spans and aggregates. */
    void clear();

    /**
     * Record one completed span. Used by TraceScope; also callable
     * directly when an RAII scope does not fit the control flow.
     * No-op while the tracer is disabled.
     */
    void record_span(const char *label, Clock::time_point start,
                     Clock::time_point end);

    /**
     * Overload for dynamically built labels (e.g. per-request phase
     * names). Copies the string; prefer the const char * form on
     * hot paths.
     */
    void record_span(const std::string &label,
                     Clock::time_point start, Clock::time_point end)
    {
        record_span(label.c_str(), start, end);
    }

    /** Per-label aggregates (copy; safe to use while tracing). */
    std::map<std::string, SpanStats> totals() const;

    /** Inclusive seconds aggregated under @p label (0 if unseen). */
    double total_seconds(const std::string &label) const;

    /** Completed spans recorded (dropped ones excluded). */
    int64_t event_count() const;

    /**
     * Spans dropped after the event buffer filled up. Aggregation
     * keeps counting dropped spans; only the per-event timeline is
     * capped.
     */
    int64_t dropped_events() const;

    /** Cap on buffered timeline events (default 262144). */
    void set_max_events(size_t cap);

    /**
     * Chrome trace-event JSON: {"traceEvents":[...]} with complete
     * ("ph":"X") events, timestamps in microseconds.
     */
    std::string chrome_trace_json() const;

    /** Write chrome_trace_json() to @p path. False on I/O error. */
    bool write_chrome_trace(const std::string &path) const;

  private:
    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    Clock::time_point epoch_ = Clock::now();
    std::vector<TraceEvent> events_;
    std::map<std::string, SpanStats> totals_;
    size_t max_events_ = 262144;
    int64_t dropped_ = 0;
    int next_tid_ = 0;

    int tid_for_this_thread();
};

/**
 * RAII span: records [construction, destruction) under @p label.
 * Use via HERON_TRACE_SCOPE so the instrumentation can be compiled
 * out.
 */
class TraceScope
{
  public:
    explicit TraceScope(const char *label);
    ~TraceScope();

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    const char *label_;
    bool active_;
    Tracer::Clock::time_point start_;
};

} // namespace heron::trace

#define HERON_TRACE_CONCAT_IMPL(a, b) a##b
#define HERON_TRACE_CONCAT(a, b) HERON_TRACE_CONCAT_IMPL(a, b)

#if !defined(HERON_DISABLE_TRACING)
/** Open a named RAII timing span for the rest of this block. */
#define HERON_TRACE_SCOPE(label)                                    \
    ::heron::trace::TraceScope HERON_TRACE_CONCAT(                  \
        heron_trace_scope_, __LINE__)(label)
#else
#define HERON_TRACE_SCOPE(label)                                    \
    do {                                                            \
    } while (0)
#endif

#endif // HERON_SUPPORT_TRACE_H
