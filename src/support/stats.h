/**
 * @file
 * Summary statistics used by the benchmark harness and the cost
 * model: running mean/variance, geometric mean, percentiles.
 */
#ifndef HERON_SUPPORT_STATS_H
#define HERON_SUPPORT_STATS_H

#include <cstddef>
#include <vector>

namespace heron {

/** Welford running mean/variance accumulator. */
class RunningStat
{
  public:
    /** Add one observation. */
    void push(double x);

    /** Number of observations so far. */
    size_t count() const { return count_; }

    /** Mean of observations (0 when empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Sample variance (0 when fewer than two observations). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest observation (+inf when empty). */
    double min() const { return min_; }

    /** Largest observation (-inf when empty). */
    double max() const { return max_; }

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_;
    double max_;
};

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &xs);

/** Geometric mean of positive values; 0 for an empty vector. */
double geomean(const std::vector<double> &xs);

/** Sample standard deviation; 0 for fewer than two values. */
double stddev(const std::vector<double> &xs);

/**
 * Percentile via linear interpolation on the sorted copy;
 * @p p in [0, 100].
 */
double percentile(std::vector<double> xs, double p);

} // namespace heron

#endif // HERON_SUPPORT_STATS_H
