#include "support/math_util.h"

#include <algorithm>
#include <array>
#include <limits>

#include "support/logging.h"

namespace heron {

int
ilog2(int64_t x)
{
    HERON_CHECK_GE(x, 1);
    int r = 0;
    while (x > 1) {
        x >>= 1;
        ++r;
    }
    return r;
}

int64_t
gcd64(int64_t a, int64_t b)
{
    while (b != 0) {
        int64_t t = a % b;
        a = b;
        b = t;
    }
    return a < 0 ? -a : a;
}

std::vector<int64_t>
divisors(int64_t n)
{
    HERON_CHECK_GE(n, 1);
    std::vector<int64_t> small, large;
    for (int64_t d = 1; d * d <= n; ++d) {
        if (n % d == 0) {
            small.push_back(d);
            if (d != n / d)
                large.push_back(n / d);
        }
    }
    small.insert(small.end(), large.rbegin(), large.rend());
    return small;
}


int64_t
checked_product(const std::vector<int64_t> &values)
{
    int64_t acc = 1;
    for (int64_t v : values)
        acc = checked_mul(acc, v);
    return acc;
}

namespace {

/** Lazily built reflected CRC-32 lookup table. */
const uint32_t *
crc32_table()
{
    static const auto table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table.data();
}

} // namespace

uint32_t
crc32(const void *data, size_t size)
{
    const uint32_t *table = crc32_table();
    const auto *bytes = static_cast<const unsigned char *>(data);
    uint32_t crc = 0xFFFFFFFFu;
    for (size_t i = 0; i < size; ++i)
        crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

uint32_t
crc32_str(const std::string &text)
{
    return crc32(text.data(), text.size());
}

} // namespace heron
