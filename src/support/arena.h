/**
 * @file
 * Chunked bump-pointer arena allocation.
 *
 * The parallel hot paths allocate many short-lived objects with one
 * shared lifetime: a sampling batch's dedup set lives for one
 * sample() call, a cost model's memoized feature vectors live until
 * the cache is reset wholesale. Routing those through malloc makes
 * every worker thread contend on the global allocator; an Arena
 * instead hands out memory by bumping a pointer through
 * thread-private chunks and reclaims *everything at once* with
 * reset(), which rewinds the bump pointers but keeps the chunks —
 * so a warmed-up arena allocates with zero malloc traffic.
 *
 * Ownership model: the arena owns every byte it hands out.
 * Individual deallocation is a no-op; destructors of arena-backed
 * containers run normally (they just don't return memory), and the
 * caller must destroy (or abandon) every object carved from the
 * arena *before* calling reset() — after reset the memory will be
 * reused. An Arena is not thread-safe: one arena per owning thread
 * or per externally synchronized structure.
 */
#ifndef HERON_SUPPORT_ARENA_H
#define HERON_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace heron::support {

/** Bump allocator over retained chunks; see file header. */
class Arena
{
  public:
    /** @param chunk_bytes granularity of backing allocations. */
    explicit Arena(size_t chunk_bytes = kDefaultChunkBytes);

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Hand out @p bytes aligned to @p align (a power of two).
     * Requests larger than the chunk size get a dedicated chunk.
     * Never returns nullptr (zero-byte requests return a valid
     * one-past pointer).
     */
    void *allocate(size_t bytes, size_t align);

    /** Typed array allocation (uninitialized storage). */
    template <typename T> T *alloc_array(size_t n)
    {
        return static_cast<T *>(
            allocate(n * sizeof(T), alignof(T)));
    }

    /**
     * Rewind every chunk to empty, retaining the chunks themselves.
     * All memory previously handed out is considered dead and will
     * be reused by subsequent allocations.
     */
    void reset();

    /** Observability counters. */
    struct Stats {
        /** Backing chunks currently held. */
        size_t chunks = 0;
        /** Total bytes reserved across chunks. */
        size_t bytes_reserved = 0;
        /** Bytes handed out since the last reset. */
        size_t bytes_live = 0;
        /** Largest bytes_live ever observed. */
        size_t high_water = 0;
        /** reset() calls. */
        size_t resets = 0;
    };
    Stats stats() const;

  private:
    static constexpr size_t kDefaultChunkBytes = 64u << 10;

    struct Chunk {
        std::unique_ptr<std::byte[]> data;
        size_t size = 0;
        size_t used = 0;
    };

    size_t chunk_bytes_;
    std::vector<Chunk> chunks_;
    /** Index of the chunk currently being bumped. */
    size_t active_ = 0;
    size_t live_ = 0;
    size_t high_water_ = 0;
    size_t resets_ = 0;

    /** Carve from @p chunk or return nullptr if it doesn't fit. */
    static void *carve(Chunk &chunk, size_t bytes, size_t align);
};

/**
 * std::allocator adapter over an Arena, for standard containers
 * whose contents share the arena's lifetime. deallocate() is a
 * no-op — memory comes back only via Arena::reset() — so a
 * container that churns (repeated insert/erase) will grow the
 * arena; use it for build-once / reset-wholesale containers.
 */
template <typename T> class ArenaAllocator
{
  public:
    using value_type = T;

    explicit ArenaAllocator(Arena *arena) noexcept : arena_(arena) {}

    template <typename U>
    ArenaAllocator(const ArenaAllocator<U> &other) noexcept
        : arena_(other.arena())
    {
    }

    T *allocate(size_t n)
    {
        return arena_->alloc_array<T>(n);
    }

    void deallocate(T *, size_t) noexcept {}

    Arena *arena() const noexcept { return arena_; }

    template <typename U>
    bool operator==(const ArenaAllocator<U> &other) const noexcept
    {
        return arena_ == other.arena();
    }

    template <typename U>
    bool operator!=(const ArenaAllocator<U> &other) const noexcept
    {
        return arena_ != other.arena();
    }

  private:
    Arena *arena_;
};

} // namespace heron::support

#endif // HERON_SUPPORT_ARENA_H
