/**
 * @file
 * Durable filesystem helpers.
 *
 * Snapshot-style outputs (checkpoint snapshots, metrics dumps,
 * Chrome traces) must stay loadable across a crash at any instant,
 * so they are never written in place: the content goes to a
 * temporary file in the same directory, is fsync'd, and is renamed
 * over the destination atomically. A reader therefore sees either
 * the complete old file or the complete new file, never a torn mix.
 */
#ifndef HERON_SUPPORT_FS_UTIL_H
#define HERON_SUPPORT_FS_UTIL_H

#include <string>

namespace heron {

/**
 * Atomically replace @p path with @p content: write a sibling temp
 * file, fsync it, rename it over @p path, and fsync the directory.
 * @return false on any I/O failure (the destination is untouched;
 * the temp file is cleaned up best-effort).
 */
bool atomic_write_file(const std::string &path,
                       const std::string &content);

} // namespace heron

#endif // HERON_SUPPORT_FS_UTIL_H
