/**
 * @file
 * Durable filesystem helpers.
 *
 * Snapshot-style outputs (checkpoint snapshots, metrics dumps,
 * Chrome traces) must stay loadable across a crash at any instant,
 * so they are never written in place: the content goes to a
 * temporary file in the same directory, is fsync'd, and is renamed
 * over the destination atomically. A reader therefore sees either
 * the complete old file or the complete new file, never a torn mix.
 *
 * The fsfault namespace provides a site-labeled IO fault-injection
 * shim so crash/degraded-mode paths can be exercised in tests and
 * smokes: each durability-critical syscall site asks
 * fsfault::injected("site.name") before doing real IO, and an armed
 * plan can make the Nth call at a site fail with ENOSPC.
 */
#ifndef HERON_SUPPORT_FS_UTIL_H
#define HERON_SUPPORT_FS_UTIL_H

#include <cstdint>
#include <string>

namespace heron {

/**
 * What the atomic-write backend on this platform can actually
 * guarantee. The portability fallback cannot fsync directories, so
 * a rename may not survive power loss even though the file content
 * itself is durable.
 */
struct FsCapabilities {
    const char *backend;  ///< "posix" or "portable"
    bool atomic_rename;   ///< rename() replaces atomically
    bool directory_fsync; ///< rename durability via dir fsync
};

/**
 * Platform capabilities of the durable-write path. The first call
 * logs the capability report once (a WARN when directory fsync is
 * unavailable) so operators see weakened guarantees at startup
 * instead of discovering them after a power loss.
 */
const FsCapabilities &fs_capabilities();

/**
 * Atomically replace @p path with @p content: write a sibling temp
 * file, fsync it, rename it over @p path, and fsync the directory.
 * @return false on any I/O failure (the destination is untouched;
 * the temp file is cleaned up best-effort).
 */
bool atomic_write_file(const std::string &path,
                       const std::string &content);

namespace fsfault {

/**
 * Failure plan for one site prefix: let @c skip calls through, then
 * fail the next @c fail calls with ENOSPC (@c fail < 0 fails
 * forever). After the plan is exhausted the site succeeds again,
 * which is what lets degraded-mode auto-recovery be tested
 * end-to-end.
 */
struct Plan {
    int skip = 0;
    int fail = 0;
};

/** Arm @p plan for every site whose label starts with @p site_prefix. */
void arm(const std::string &site_prefix, Plan plan);

/** Remove all plans and reset injection counters. */
void disarm();

/** True when any plan is armed (fast path for instrumented sites). */
bool armed();

/**
 * Ask whether the call at @p site should fail. Returns true (and
 * sets errno to ENOSPC) when an armed plan elects this call;
 * otherwise the caller proceeds with the real syscall.
 */
bool injected(const char *site);

/** Total failures injected since the last disarm(). */
int64_t injection_count();

/**
 * Arm plans from the HERON_FS_FAULT environment variable:
 * "site:skip=N,fail=M[;site2:...]" (e.g.
 * "store.append:skip=1,fail=2"). Returns the number of plans armed
 * (0 when the variable is unset or empty).
 */
int arm_from_env();

} // namespace fsfault

} // namespace heron

#endif // HERON_SUPPORT_FS_UTIL_H
