/**
 * @file
 * Plain-text table rendering for the benchmark harness. Each bench
 * binary prints the rows/series of the paper table or figure it
 * regenerates; this keeps the output aligned and diff-friendly, and
 * can also emit CSV for plotting.
 */
#ifndef HERON_SUPPORT_TABLE_H
#define HERON_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace heron {

/** A column-aligned text table with an optional title. */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must match the header count. */
    void add_row(std::vector<std::string> cells);

    /** Set a title printed above the table. */
    void set_title(std::string title) { title_ = std::move(title); }

    /** Render with aligned columns. */
    std::string to_string() const;

    /** Render as CSV (no alignment, comma-separated, quoted as needed). */
    std::string to_csv() const;

    /** Number of data rows. */
    size_t num_rows() const { return rows_.size(); }

    /** Format a double with @p digits significant decimals. */
    static std::string fmt(double value, int digits = 3);

    /** Format an integer. */
    static std::string fmt(int64_t value);

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace heron

#endif // HERON_SUPPORT_TABLE_H
