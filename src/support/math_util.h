/**
 * @file
 * Small integer-math helpers shared across modules: divisor
 * enumeration (tile-size candidates), safe products, ceil-division,
 * power-of-two tests, and hash mixing.
 */
#ifndef HERON_SUPPORT_MATH_UTIL_H
#define HERON_SUPPORT_MATH_UTIL_H

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "support/logging.h"

namespace heron {

/** Ceiling division for positive integers. */
constexpr int64_t
ceil_div(int64_t a, int64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p a up to the next multiple of @p b (b > 0). */
constexpr int64_t
round_up(int64_t a, int64_t b)
{
    return ceil_div(a, b) * b;
}

/** True if @p x is a power of two (x > 0). */
constexpr bool
is_pow2(int64_t x)
{
    return x > 0 && (x & (x - 1)) == 0;
}

/** Floor of log2 for x >= 1. */
int ilog2(int64_t x);

/** Greatest common divisor. */
int64_t gcd64(int64_t a, int64_t b);

/** All positive divisors of @p n in ascending order. */
std::vector<int64_t> divisors(int64_t n);

/**
 * Product of @p values saturating at INT64_MAX instead of
 * overflowing.
 */
int64_t checked_product(const std::vector<int64_t> &values);

/**
 * Saturating binary product of non-negative operands. Defined in
 * the header because it sits on the CSP propagation hot path.
 * Zero absorbs before the saturation check, which makes the
 * operation associative — prefix/suffix product decompositions give
 * the same result as a sequential fold.
 */
inline int64_t
checked_mul(int64_t a, int64_t b)
{
    HERON_CHECK_GE(a, 0);
    HERON_CHECK_GE(b, 0);
    if (a == 0 || b == 0)
        return 0;
    if (a > std::numeric_limits<int64_t>::max() / b)
        return std::numeric_limits<int64_t>::max();
    return a * b;
}

/** Boost-style hash combiner. */
inline uint64_t
hash_combine(uint64_t seed, uint64_t value)
{
    value *= 0xff51afd7ed558ccdULL;
    value ^= value >> 33;
    seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
    return seed;
}

/** 64-bit finalizer (splittable mix) used for deterministic "noise". */
inline uint64_t
hash_u64(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

/**
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of @p size
 * bytes at @p data. Used as the integrity trailer on durable JSONL
 * records so a torn or bit-rotted journal line is detectable.
 */
uint32_t crc32(const void *data, size_t size);

/** crc32 over a string's bytes. */
uint32_t crc32_str(const std::string &text);

} // namespace heron

#endif // HERON_SUPPORT_MATH_UTIL_H
