/**
 * @file
 * Kernel source emitters.
 *
 * Heron's end product is a *library*: for each (operator, shape,
 * DLA) the tuner picks a schedule, and the backend lowers it to
 * source code (CUDA for TensorCore, intrinsics C for DL Boost, a
 * command stream for VTA). Offline we cannot run nvcc/ICC/FPGA
 * tools, so the emitters produce faithful human-readable source in
 * each target's idiom from the bound ConcreteProgram: grid/block
 * geometry, __shared__ allocations with storage_align padding,
 * wmma fragments and mma_sync calls, VNNI vpdpbusd loops, VTA
 * load/gemm/store instruction sequences.
 */
#ifndef HERON_CODEGEN_EMITTER_H
#define HERON_CODEGEN_EMITTER_H

#include <string>

#include "rules/space_generator.h"
#include "schedule/concrete.h"

namespace heron::codegen {

/**
 * Emit target-idiomatic kernel source for @p program (a bound
 * schedule from @p space). Dispatches on the space's DLA kind.
 */
std::string emit_source(const rules::GeneratedSpace &space,
                        const schedule::ConcreteProgram &program);

/** CUDA-like kernel for TensorCore (or CUDA-core) programs. */
std::string emit_cuda(const rules::GeneratedSpace &space,
                      const schedule::ConcreteProgram &program);

/** AVX512/VNNI-flavored C for DL Boost programs. */
std::string emit_cpu(const rules::GeneratedSpace &space,
                     const schedule::ConcreteProgram &program);

/** VTA runtime command sequence. */
std::string emit_vta(const rules::GeneratedSpace &space,
                     const schedule::ConcreteProgram &program);

/** C identifier-safe version of a workload/kernel name. */
std::string sanitize_identifier(const std::string &name);

} // namespace heron::codegen

#endif // HERON_CODEGEN_EMITTER_H
