#include "ops/networks.h"

#include "support/math_util.h"

namespace heron::ops {

int64_t
Network::total_flops() const
{
    int64_t total = 0;
    for (const auto &layer : layers)
        total += checked_mul(layer.workload.flops(), layer.count);
    return total;
}

Network
resnet50(int batch)
{
    int64_t n = batch;
    Network net;
    net.name = "ResNet-50";
    auto add = [&](Workload w, int count) {
        net.layers.push_back(NetworkLayer{std::move(w), count});
    };
    // Stem.
    add(c2d(n, 3, 224, 224, 64, 7, 7, 2, 3), 1);
    // Stage 1 (56x56) bottlenecks.
    add(c2d(n, 64, 56, 56, 64, 1, 1, 1, 0), 3);
    add(c2d(n, 64, 56, 56, 64, 3, 3, 1, 1), 3);
    add(c2d(n, 64, 56, 56, 256, 1, 1, 1, 0), 4);
    add(c2d(n, 256, 56, 56, 64, 1, 1, 1, 0), 2);
    // Stage 2 (28x28).
    add(c2d(n, 256, 56, 56, 128, 1, 1, 2, 0), 1);
    add(c2d(n, 128, 28, 28, 128, 3, 3, 1, 1), 4);
    add(c2d(n, 128, 28, 28, 512, 1, 1, 1, 0), 4);
    add(c2d(n, 512, 28, 28, 128, 1, 1, 1, 0), 3);
    add(c2d(n, 256, 56, 56, 512, 1, 1, 2, 0), 1);
    // Stage 3 (14x14).
    add(c2d(n, 512, 28, 28, 256, 1, 1, 2, 0), 1);
    add(c2d(n, 256, 14, 14, 256, 3, 3, 1, 1), 6);
    add(c2d(n, 256, 14, 14, 1024, 1, 1, 1, 0), 6);
    add(c2d(n, 1024, 14, 14, 256, 1, 1, 1, 0), 5);
    add(c2d(n, 512, 28, 28, 1024, 1, 1, 2, 0), 1);
    // Stage 4 (7x7).
    add(c2d(n, 1024, 14, 14, 512, 1, 1, 2, 0), 1);
    add(c2d(n, 512, 7, 7, 512, 3, 3, 1, 1), 3);
    add(c2d(n, 512, 7, 7, 2048, 1, 1, 1, 0), 3);
    add(c2d(n, 2048, 7, 7, 512, 1, 1, 1, 0), 2);
    add(c2d(n, 1024, 14, 14, 2048, 1, 1, 2, 0), 1);
    // Classifier.
    add(gemm(n, 1000, 2048), 1);
    return net;
}

Network
inception_v3(int batch)
{
    int64_t n = batch;
    Network net;
    net.name = "Inception-V3";
    auto add = [&](Workload w, int count) {
        net.layers.push_back(NetworkLayer{std::move(w), count});
    };
    add(c2d(n, 3, 299, 299, 32, 3, 3, 2, 0), 1);
    add(c2d(n, 32, 149, 149, 32, 3, 3, 1, 0), 1);
    add(c2d(n, 32, 147, 147, 64, 3, 3, 1, 1), 1);
    add(c2d(n, 64, 73, 73, 80, 1, 1, 1, 0), 1);
    add(c2d(n, 80, 73, 73, 192, 3, 3, 1, 0), 1);
    // Mixed 35x35 blocks (many 1x1 and 3x3/5x5 branches).
    add(c2d(n, 192, 35, 35, 64, 1, 1, 1, 0), 4);
    add(c2d(n, 64, 35, 35, 96, 3, 3, 1, 1), 6);
    add(c2d(n, 48, 35, 35, 64, 5, 5, 1, 2), 3);
    // Mixed 17x17 blocks (1x7 and 7x1 factorized convs, modeled as
    // their 1D equivalents over the flattened free spatial dim).
    add(c2d(n, 768, 17, 17, 192, 1, 1, 1, 0), 10);
    add(c1d(n, 128, 17 * 17, 128, 7, 1, 3), 8);
    add(c1d(n, 192, 17 * 17, 192, 7, 1, 3), 10);
    // Mixed 8x8 blocks.
    add(c2d(n, 1280, 8, 8, 320, 1, 1, 1, 0), 2);
    add(c2d(n, 448, 8, 8, 384, 3, 3, 1, 1), 2);
    add(c2d(n, 2048, 8, 8, 192, 1, 1, 1, 0), 1);
    add(gemm(n, 1000, 2048), 1);
    return net;
}

Network
vgg16(int batch)
{
    int64_t n = batch;
    Network net;
    net.name = "VGG-16";
    auto add = [&](Workload w, int count) {
        net.layers.push_back(NetworkLayer{std::move(w), count});
    };
    add(c2d(n, 3, 224, 224, 64, 3, 3, 1, 1), 1);
    add(c2d(n, 64, 224, 224, 64, 3, 3, 1, 1), 1);
    add(c2d(n, 64, 112, 112, 128, 3, 3, 1, 1), 1);
    add(c2d(n, 128, 112, 112, 128, 3, 3, 1, 1), 1);
    add(c2d(n, 128, 56, 56, 256, 3, 3, 1, 1), 1);
    add(c2d(n, 256, 56, 56, 256, 3, 3, 1, 1), 2);
    add(c2d(n, 256, 28, 28, 512, 3, 3, 1, 1), 1);
    add(c2d(n, 512, 28, 28, 512, 3, 3, 1, 1), 2);
    add(c2d(n, 512, 14, 14, 512, 3, 3, 1, 1), 3);
    add(gemm(n, 4096, 25088), 1);
    add(gemm(n, 4096, 4096), 1);
    add(gemm(n, 1000, 4096), 1);
    return net;
}

Network
bert(int batch, int seq_len)
{
    int64_t tokens = static_cast<int64_t>(batch) * seq_len;
    int64_t heads = 12;
    int64_t hidden = 768;
    int64_t head_dim = hidden / heads;
    Network net;
    net.name = "BERT";
    auto add = [&](Workload w, int count) {
        net.layers.push_back(NetworkLayer{std::move(w), count});
    };
    // Per layer: QKV projections (3), attention output (1),
    // FFN up + down; 12 layers.
    add(gemm(tokens, hidden, hidden), 12 * 4);
    add(gemm(tokens, 4 * hidden, hidden), 12);
    add(gemm(tokens, hidden, 4 * hidden), 12);
    // Attention score and context batched matmuls.
    add(bmm(batch * heads, seq_len, seq_len, head_dim), 12);
    add(bmm(batch * heads, seq_len, head_dim, seq_len), 12);
    return net;
}

std::vector<Network>
all_networks(int batch)
{
    return {resnet50(batch), inception_v3(batch), vgg16(batch),
            bert(batch)};
}

} // namespace heron::ops
