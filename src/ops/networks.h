/**
 * @file
 * Network benchmark definitions (paper §6.2): ResNet-50,
 * Inception-V3, VGG-16, and BERT at batch size 16, expressed as the
 * distinct tunable layers plus per-layer occurrence counts. Network
 * latency = sum(occurrences * tuned layer latency), matching how
 * operator tuners evaluate whole networks.
 */
#ifndef HERON_OPS_NETWORKS_H
#define HERON_OPS_NETWORKS_H

#include <string>
#include <vector>

#include "ops/op_library.h"

namespace heron::ops {

/** One distinct layer with its occurrence count in the network. */
struct NetworkLayer {
    Workload workload;
    int count = 1;
};

/** A network benchmark: a weighted list of distinct layers. */
struct Network {
    std::string name;
    std::vector<NetworkLayer> layers;

    /** Total operation count across all layer instances. */
    int64_t total_flops() const;
};

/** ResNet-50, batch 16 (distinct conv layers + classifier). */
Network resnet50(int batch = 16);

/** Inception-V3, batch 16 (representative distinct convolutions). */
Network inception_v3(int batch = 16);

/** VGG-16, batch 16 (all 3x3 convolutions + FC layers). */
Network vgg16(int batch = 16);

/** BERT-base, batch 16, sequence length 128. */
Network bert(int batch = 16, int seq_len = 128);

/** All four evaluated networks. */
std::vector<Network> all_networks(int batch = 16);

} // namespace heron::ops

#endif // HERON_OPS_NETWORKS_H
