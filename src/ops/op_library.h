/**
 * @file
 * Operator library: builders that turn (operator kind, shape) into a
 * ComputeDag, plus the evaluation shape suites used by the paper
 * (the 9 operators of §6.2 and the Table 9 GEMM/C2D configurations).
 */
#ifndef HERON_OPS_OP_LIBRARY_H
#define HERON_OPS_OP_LIBRARY_H

#include <string>
#include <vector>

#include "ir/dag.h"

namespace heron::ops {

/** The 9 operators evaluated in the paper (§6.2). */
enum class OpKind : uint8_t {
    kGemm,
    kGemv,
    kBmm,
    kC1d,
    kC2d,
    kC3d,
    kT2d,
    kDil,
    kScan,
};

/** Short operator name ("GEMM", "C2D", ...). */
const char *op_kind_name(OpKind kind);

/**
 * One benchmark case: an operator kind plus concrete shape
 * parameters. Parameter order per kind:
 *   kGemm: {M, N, K}
 *   kGemv: {M, K}
 *   kBmm:  {B, M, N, K}
 *   kC1d:  {N, CI, L, CO, KW, stride, pad}
 *   kC2d:  {N, CI, H, W, CO, R, S, stride, pad, dilation}
 *   kC3d:  {N, CI, D, H, W, CO, KD, R, S, stride, pad}
 *   kT2d:  {N, CI, H, W, CO, R, S, stride, pad}
 *   kDil:  same as kC2d with dilation > 1
 *   kScan: {N, L}
 */
struct Workload {
    OpKind kind;
    std::string name;
    std::vector<int64_t> params;
    ir::DataType dtype = ir::DataType::kFloat16;

    /** Build the compute DAG for this workload. */
    ir::ComputeDag build() const;

    /** Total operations (2*MACs for contractions). */
    int64_t flops() const;

    /** "GEMM(1024x1024x1024)" style label. */
    std::string label() const;
};

/** GEMM C[M,N] += A[M,K] * B[K,N]. */
ir::ComputeDag make_gemm(int64_t m, int64_t n, int64_t k,
                         ir::DataType dtype);

/** GEMV y[M] += A[M,K] * x[K]. */
ir::ComputeDag make_gemv(int64_t m, int64_t k, ir::DataType dtype);

/** Batch matmul C[B,M,N] += A[B,M,K] * B[B,K,N]. */
ir::ComputeDag make_bmm(int64_t b, int64_t m, int64_t n, int64_t k,
                        ir::DataType dtype);

/**
 * 1D convolution, NCW layout, over a pre-padded input
 * (L_pad = L + 2*pad).
 */
ir::ComputeDag make_conv1d(int64_t n, int64_t ci, int64_t l, int64_t co,
                           int64_t kw, int64_t stride, int64_t pad,
                           ir::DataType dtype);

/** 2D convolution, NCHW layout, pre-padded input, with dilation. */
ir::ComputeDag make_conv2d(int64_t n, int64_t ci, int64_t h, int64_t w,
                           int64_t co, int64_t r, int64_t s,
                           int64_t stride, int64_t pad,
                           int64_t dilation, ir::DataType dtype);

/** 3D convolution, NCDHW layout, pre-padded input. */
ir::ComputeDag make_conv3d(int64_t n, int64_t ci, int64_t d, int64_t h,
                           int64_t w, int64_t co, int64_t kd, int64_t r,
                           int64_t s, int64_t stride, int64_t pad,
                           ir::DataType dtype);

/**
 * Transposed 2D convolution, modeled as a unit-stride convolution
 * over the stride-dilated input (the standard equivalence), which
 * preserves loop structure, footprints, and operation count.
 */
ir::ComputeDag make_t2d(int64_t n, int64_t ci, int64_t h, int64_t w,
                        int64_t co, int64_t r, int64_t s, int64_t stride,
                        int64_t pad, ir::DataType dtype);

/** Prefix-sum scan out[n, l] = sum_{l' <= l} X[n, l']. */
ir::ComputeDag make_scan(int64_t n, int64_t l, ir::DataType dtype);

/** Factory helpers that also produce a canonical name. */
Workload gemm(int64_t m, int64_t n, int64_t k,
              ir::DataType dtype = ir::DataType::kFloat16);
Workload gemv(int64_t m, int64_t k,
              ir::DataType dtype = ir::DataType::kFloat16);
Workload bmm(int64_t b, int64_t m, int64_t n, int64_t k,
             ir::DataType dtype = ir::DataType::kFloat16);
Workload c1d(int64_t n, int64_t ci, int64_t l, int64_t co, int64_t kw,
             int64_t stride, int64_t pad,
             ir::DataType dtype = ir::DataType::kFloat16);
Workload c2d(int64_t n, int64_t ci, int64_t h, int64_t w, int64_t co,
             int64_t r, int64_t s, int64_t stride, int64_t pad,
             ir::DataType dtype = ir::DataType::kFloat16);
Workload c3d(int64_t n, int64_t ci, int64_t d, int64_t h, int64_t w,
             int64_t co, int64_t kd, int64_t r, int64_t s,
             int64_t stride, int64_t pad,
             ir::DataType dtype = ir::DataType::kFloat16);
Workload t2d(int64_t n, int64_t ci, int64_t h, int64_t w, int64_t co,
             int64_t r, int64_t s, int64_t stride, int64_t pad,
             ir::DataType dtype = ir::DataType::kFloat16);
Workload dil(int64_t n, int64_t ci, int64_t h, int64_t w, int64_t co,
             int64_t r, int64_t s, int64_t stride, int64_t pad,
             int64_t dilation,
             ir::DataType dtype = ir::DataType::kFloat16);
Workload scan(int64_t n, int64_t l,
              ir::DataType dtype = ir::DataType::kFloat32);

/**
 * The operator suite used for the TensorCore evaluation (Fig. 6):
 * all 9 operators, several shapes each (Ansor/AMOS shape style).
 */
std::vector<Workload> tensorcore_op_suite();

/** The DL Boost (int8) operator suite (Fig. 8). */
std::vector<Workload> dlboost_op_suite();

/** The VTA (int8) operator suite (Fig. 9): GEMM, C2D, BMM. */
std::vector<Workload> vta_op_suite();

/** Table 9 GEMM configs G1..G5. */
std::vector<Workload> table9_gemm();

/** Table 9 C2D configs C1..C5. */
std::vector<Workload> table9_conv();

} // namespace heron::ops

#endif // HERON_OPS_OP_LIBRARY_H
