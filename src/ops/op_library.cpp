#include "ops/op_library.h"

#include <sstream>

#include "support/logging.h"

namespace heron::ops {

using ir::Axis;
using ir::CombinerKind;
using ir::ComputeDag;
using ir::ComputeStage;
using ir::DataType;
using ir::LinearExpr;
using ir::Tensor;
using ir::TensorAccess;

const char *
op_kind_name(OpKind kind)
{
    switch (kind) {
      case OpKind::kGemm: return "GEMM";
      case OpKind::kGemv: return "GEMV";
      case OpKind::kBmm: return "BMM";
      case OpKind::kC1d: return "C1D";
      case OpKind::kC2d: return "C2D";
      case OpKind::kC3d: return "C3D";
      case OpKind::kT2d: return "T2D";
      case OpKind::kDil: return "DIL";
      case OpKind::kScan: return "SCAN";
    }
    return "?";
}

namespace {

/** Accumulator dtype: int8 inputs accumulate into int32. */
DataType
acc_dtype(DataType in)
{
    switch (in) {
      case DataType::kInt8: return DataType::kInt32;
      case DataType::kFloat16: return DataType::kFloat32;
      default: return in;
    }
}

} // namespace

ir::ComputeDag
make_gemm(int64_t m, int64_t n, int64_t k, DataType dtype)
{
    ComputeDag dag;
    dag.add_input(Tensor{"A", {m, k}, dtype});
    dag.add_input(Tensor{"B", {k, n}, dtype});

    ComputeStage stage;
    stage.name = "C";
    stage.axes = {Axis{"i", m, false}, Axis{"j", n, false},
                  Axis{"r", k, true}};
    stage.num_spatial = 2;
    stage.output = Tensor{"C", {m, n}, acc_dtype(dtype)};
    stage.output_indices = {LinearExpr::axis(0), LinearExpr::axis(1)};
    stage.reads = {
        TensorAccess{"A", {LinearExpr::axis(0), LinearExpr::axis(2)}},
        TensorAccess{"B", {LinearExpr::axis(2), LinearExpr::axis(1)}},
    };
    stage.combiner = CombinerKind::kSum;
    dag.add_stage(std::move(stage));
    return dag;
}

ir::ComputeDag
make_gemv(int64_t m, int64_t k, DataType dtype)
{
    ComputeDag dag;
    dag.add_input(Tensor{"A", {m, k}, dtype});
    dag.add_input(Tensor{"x", {k}, dtype});

    ComputeStage stage;
    stage.name = "y";
    stage.axes = {Axis{"i", m, false}, Axis{"r", k, true}};
    stage.num_spatial = 1;
    stage.output = Tensor{"y", {m}, acc_dtype(dtype)};
    stage.output_indices = {LinearExpr::axis(0)};
    stage.reads = {
        TensorAccess{"A", {LinearExpr::axis(0), LinearExpr::axis(1)}},
        TensorAccess{"x", {LinearExpr::axis(1)}},
    };
    stage.combiner = CombinerKind::kSum;
    dag.add_stage(std::move(stage));
    return dag;
}

ir::ComputeDag
make_bmm(int64_t b, int64_t m, int64_t n, int64_t k, DataType dtype)
{
    ComputeDag dag;
    dag.add_input(Tensor{"A", {b, m, k}, dtype});
    dag.add_input(Tensor{"B", {b, k, n}, dtype});

    ComputeStage stage;
    stage.name = "C";
    stage.axes = {Axis{"b", b, false}, Axis{"i", m, false},
                  Axis{"j", n, false}, Axis{"r", k, true}};
    stage.num_spatial = 3;
    stage.output = Tensor{"C", {b, m, n}, acc_dtype(dtype)};
    stage.output_indices = {LinearExpr::axis(0), LinearExpr::axis(1),
                            LinearExpr::axis(2)};
    stage.reads = {
        TensorAccess{"A",
                     {LinearExpr::axis(0), LinearExpr::axis(1),
                      LinearExpr::axis(3)}},
        TensorAccess{"B",
                     {LinearExpr::axis(0), LinearExpr::axis(3),
                      LinearExpr::axis(2)}},
    };
    stage.combiner = CombinerKind::kSum;
    dag.add_stage(std::move(stage));
    return dag;
}

ir::ComputeDag
make_conv1d(int64_t n, int64_t ci, int64_t l, int64_t co, int64_t kw,
            int64_t stride, int64_t pad, DataType dtype)
{
    int64_t l_pad = l + 2 * pad;
    int64_t l_out = (l_pad - kw) / stride + 1;

    ComputeDag dag;
    dag.add_input(Tensor{"X", {n, ci, l_pad}, dtype});
    dag.add_input(Tensor{"W", {co, ci, kw}, dtype});

    ComputeStage stage;
    stage.name = "Y";
    stage.axes = {Axis{"n", n, false}, Axis{"co", co, false},
                  Axis{"lo", l_out, false}, Axis{"rc", ci, true},
                  Axis{"rw", kw, true}};
    stage.num_spatial = 3;
    stage.output = Tensor{"Y", {n, co, l_out}, acc_dtype(dtype)};
    stage.output_indices = {LinearExpr::axis(0), LinearExpr::axis(1),
                            LinearExpr::axis(2)};
    LinearExpr lx = LinearExpr::scaled(2, stride);
    lx.add_term(4, 1);
    stage.reads = {
        TensorAccess{"X", {LinearExpr::axis(0), LinearExpr::axis(3), lx}},
        TensorAccess{"W",
                     {LinearExpr::axis(1), LinearExpr::axis(3),
                      LinearExpr::axis(4)}},
    };
    stage.combiner = CombinerKind::kSum;
    dag.add_stage(std::move(stage));
    return dag;
}

ir::ComputeDag
make_conv2d(int64_t n, int64_t ci, int64_t h, int64_t w, int64_t co,
            int64_t r, int64_t s, int64_t stride, int64_t pad,
            int64_t dilation, DataType dtype)
{
    int64_t h_pad = h + 2 * pad;
    int64_t w_pad = w + 2 * pad;
    int64_t r_eff = dilation * (r - 1) + 1;
    int64_t s_eff = dilation * (s - 1) + 1;
    int64_t h_out = (h_pad - r_eff) / stride + 1;
    int64_t w_out = (w_pad - s_eff) / stride + 1;
    HERON_CHECK_GE(h_out, 1);
    HERON_CHECK_GE(w_out, 1);

    ComputeDag dag;
    dag.add_input(Tensor{"X", {n, ci, h_pad, w_pad}, dtype});
    dag.add_input(Tensor{"W", {co, ci, r, s}, dtype});

    ComputeStage stage;
    stage.name = "Y";
    stage.axes = {Axis{"n", n, false},     Axis{"co", co, false},
                  Axis{"ho", h_out, false}, Axis{"wo", w_out, false},
                  Axis{"rc", ci, true},     Axis{"rh", r, true},
                  Axis{"rw", s, true}};
    stage.num_spatial = 4;
    stage.output = Tensor{"Y", {n, co, h_out, w_out}, acc_dtype(dtype)};
    stage.output_indices = {LinearExpr::axis(0), LinearExpr::axis(1),
                            LinearExpr::axis(2), LinearExpr::axis(3)};
    LinearExpr hx = LinearExpr::scaled(2, stride);
    hx.add_term(5, dilation);
    LinearExpr wx = LinearExpr::scaled(3, stride);
    wx.add_term(6, dilation);
    stage.reads = {
        TensorAccess{"X",
                     {LinearExpr::axis(0), LinearExpr::axis(4), hx, wx}},
        TensorAccess{"W",
                     {LinearExpr::axis(1), LinearExpr::axis(4),
                      LinearExpr::axis(5), LinearExpr::axis(6)}},
    };
    stage.combiner = CombinerKind::kSum;
    dag.add_stage(std::move(stage));
    return dag;
}

ir::ComputeDag
make_conv3d(int64_t n, int64_t ci, int64_t d, int64_t h, int64_t w,
            int64_t co, int64_t kd, int64_t r, int64_t s, int64_t stride,
            int64_t pad, DataType dtype)
{
    int64_t d_pad = d + 2 * pad;
    int64_t h_pad = h + 2 * pad;
    int64_t w_pad = w + 2 * pad;
    int64_t d_out = (d_pad - kd) / stride + 1;
    int64_t h_out = (h_pad - r) / stride + 1;
    int64_t w_out = (w_pad - s) / stride + 1;

    ComputeDag dag;
    dag.add_input(Tensor{"X", {n, ci, d_pad, h_pad, w_pad}, dtype});
    dag.add_input(Tensor{"W", {co, ci, kd, r, s}, dtype});

    ComputeStage stage;
    stage.name = "Y";
    stage.axes = {Axis{"n", n, false},      Axis{"co", co, false},
                  Axis{"do", d_out, false}, Axis{"ho", h_out, false},
                  Axis{"wo", w_out, false}, Axis{"rc", ci, true},
                  Axis{"rd", kd, true},     Axis{"rh", r, true},
                  Axis{"rw", s, true}};
    stage.num_spatial = 5;
    stage.output =
        Tensor{"Y", {n, co, d_out, h_out, w_out}, acc_dtype(dtype)};
    stage.output_indices = {LinearExpr::axis(0), LinearExpr::axis(1),
                            LinearExpr::axis(2), LinearExpr::axis(3),
                            LinearExpr::axis(4)};
    LinearExpr dx = LinearExpr::scaled(2, stride);
    dx.add_term(6, 1);
    LinearExpr hx = LinearExpr::scaled(3, stride);
    hx.add_term(7, 1);
    LinearExpr wx = LinearExpr::scaled(4, stride);
    wx.add_term(8, 1);
    stage.reads = {
        TensorAccess{
            "X", {LinearExpr::axis(0), LinearExpr::axis(5), dx, hx, wx}},
        TensorAccess{"W",
                     {LinearExpr::axis(1), LinearExpr::axis(5),
                      LinearExpr::axis(6), LinearExpr::axis(7),
                      LinearExpr::axis(8)}},
    };
    stage.combiner = CombinerKind::kSum;
    dag.add_stage(std::move(stage));
    return dag;
}

ir::ComputeDag
make_t2d(int64_t n, int64_t ci, int64_t h, int64_t w, int64_t co,
         int64_t r, int64_t s, int64_t stride, int64_t pad,
         DataType dtype)
{
    // Transposed conv == unit-stride conv over the stride-dilated
    // input with padding (r - 1 - pad).
    int64_t h_dil = (h - 1) * stride + 1;
    int64_t w_dil = (w - 1) * stride + 1;
    int64_t pad_eff = r - 1 - pad;
    HERON_CHECK_GE(pad_eff, 0);
    int64_t h_pad = h_dil + 2 * pad_eff;
    int64_t w_pad = w_dil + 2 * pad_eff;
    int64_t h_out = h_pad - r + 1;
    int64_t w_out = w_pad - s + 1;

    ComputeDag dag;
    dag.add_input(Tensor{"Xd", {n, ci, h_pad, w_pad}, dtype});
    dag.add_input(Tensor{"W", {ci, co, r, s}, dtype});

    ComputeStage stage;
    stage.name = "Y";
    stage.axes = {Axis{"n", n, false},      Axis{"co", co, false},
                  Axis{"ho", h_out, false}, Axis{"wo", w_out, false},
                  Axis{"rc", ci, true},     Axis{"rh", r, true},
                  Axis{"rw", s, true}};
    stage.num_spatial = 4;
    stage.output = Tensor{"Y", {n, co, h_out, w_out}, acc_dtype(dtype)};
    stage.output_indices = {LinearExpr::axis(0), LinearExpr::axis(1),
                            LinearExpr::axis(2), LinearExpr::axis(3)};
    LinearExpr hx = LinearExpr::axis(2);
    hx.add_term(5, 1);
    LinearExpr wx = LinearExpr::axis(3);
    wx.add_term(6, 1);
    stage.reads = {
        TensorAccess{"Xd",
                     {LinearExpr::axis(0), LinearExpr::axis(4), hx, wx}},
        TensorAccess{"W",
                     {LinearExpr::axis(4), LinearExpr::axis(1),
                      LinearExpr::axis(5), LinearExpr::axis(6)}},
    };
    stage.combiner = CombinerKind::kSum;
    dag.add_stage(std::move(stage));
    return dag;
}

ir::ComputeDag
make_scan(int64_t n, int64_t l, DataType dtype)
{
    ComputeDag dag;
    dag.add_input(Tensor{"X", {n, l}, dtype});

    ComputeStage stage;
    stage.name = "S";
    stage.axes = {Axis{"n", n, false}, Axis{"l", l, false}};
    stage.num_spatial = 2;
    stage.output = Tensor{"S", {n, l}, dtype};
    stage.output_indices = {LinearExpr::axis(0), LinearExpr::axis(1)};
    stage.reads = {
        TensorAccess{"X", {LinearExpr::axis(0), LinearExpr::axis(1)}}};
    stage.combiner = CombinerKind::kScan;
    dag.add_stage(std::move(stage));
    return dag;
}

ir::ComputeDag
Workload::build() const
{
    const auto &p = params;
    switch (kind) {
      case OpKind::kGemm:
        return make_gemm(p[0], p[1], p[2], dtype);
      case OpKind::kGemv:
        return make_gemv(p[0], p[1], dtype);
      case OpKind::kBmm:
        return make_bmm(p[0], p[1], p[2], p[3], dtype);
      case OpKind::kC1d:
        return make_conv1d(p[0], p[1], p[2], p[3], p[4], p[5], p[6],
                           dtype);
      case OpKind::kC2d:
      case OpKind::kDil:
        return make_conv2d(p[0], p[1], p[2], p[3], p[4], p[5], p[6],
                           p[7], p[8], p[9], dtype);
      case OpKind::kC3d:
        return make_conv3d(p[0], p[1], p[2], p[3], p[4], p[5], p[6],
                           p[7], p[8], p[9], p[10], dtype);
      case OpKind::kT2d:
        return make_t2d(p[0], p[1], p[2], p[3], p[4], p[5], p[6], p[7],
                        p[8], dtype);
      case OpKind::kScan:
        return make_scan(p[0], p[1], dtype);
    }
    HERON_FATAL << "unknown op kind";
    return {};
}

int64_t
Workload::flops() const
{
    return build().total_ops();
}

std::string
Workload::label() const
{
    std::ostringstream out;
    out << op_kind_name(kind) << "(";
    for (size_t i = 0; i < params.size(); ++i)
        out << (i ? "x" : "") << params[i];
    out << ")";
    return out.str();
}

namespace {

Workload
make_workload(OpKind kind, std::string name,
              std::vector<int64_t> params, ir::DataType dtype)
{
    Workload w;
    w.kind = kind;
    w.name = std::move(name);
    w.params = std::move(params);
    w.dtype = dtype;
    return w;
}

} // namespace

Workload
gemm(int64_t m, int64_t n, int64_t k, ir::DataType dtype)
{
    std::ostringstream name;
    name << "GEMM-" << m << "x" << n << "x" << k;
    return make_workload(OpKind::kGemm, name.str(), {m, n, k}, dtype);
}

Workload
gemv(int64_t m, int64_t k, ir::DataType dtype)
{
    std::ostringstream name;
    name << "GEMV-" << m << "x" << k;
    return make_workload(OpKind::kGemv, name.str(), {m, k}, dtype);
}

Workload
bmm(int64_t b, int64_t m, int64_t n, int64_t k, ir::DataType dtype)
{
    std::ostringstream name;
    name << "BMM-" << b << "x" << m << "x" << n << "x" << k;
    return make_workload(OpKind::kBmm, name.str(), {b, m, n, k}, dtype);
}

Workload
c1d(int64_t n, int64_t ci, int64_t l, int64_t co, int64_t kw,
    int64_t stride, int64_t pad, ir::DataType dtype)
{
    std::ostringstream name;
    name << "C1D-n" << n << "c" << ci << "l" << l << "o" << co << "k"
         << kw << "s" << stride;
    return make_workload(OpKind::kC1d, name.str(),
                         {n, ci, l, co, kw, stride, pad}, dtype);
}

Workload
c2d(int64_t n, int64_t ci, int64_t h, int64_t w, int64_t co, int64_t r,
    int64_t s, int64_t stride, int64_t pad, ir::DataType dtype)
{
    std::ostringstream name;
    name << "C2D-n" << n << "c" << ci << "hw" << h << "o" << co << "k"
         << r << "s" << stride;
    return make_workload(OpKind::kC2d, name.str(),
                         {n, ci, h, w, co, r, s, stride, pad, 1}, dtype);
}

Workload
c3d(int64_t n, int64_t ci, int64_t d, int64_t h, int64_t w, int64_t co,
    int64_t kd, int64_t r, int64_t s, int64_t stride, int64_t pad,
    ir::DataType dtype)
{
    std::ostringstream name;
    name << "C3D-n" << n << "c" << ci << "d" << d << "hw" << h << "o"
         << co << "k" << r;
    return make_workload(OpKind::kC3d, name.str(),
                         {n, ci, d, h, w, co, kd, r, s, stride, pad},
                         dtype);
}

Workload
t2d(int64_t n, int64_t ci, int64_t h, int64_t w, int64_t co, int64_t r,
    int64_t s, int64_t stride, int64_t pad, ir::DataType dtype)
{
    std::ostringstream name;
    name << "T2D-n" << n << "c" << ci << "hw" << h << "o" << co << "k"
         << r << "s" << stride;
    return make_workload(OpKind::kT2d, name.str(),
                         {n, ci, h, w, co, r, s, stride, pad}, dtype);
}

Workload
dil(int64_t n, int64_t ci, int64_t h, int64_t w, int64_t co, int64_t r,
    int64_t s, int64_t stride, int64_t pad, int64_t dilation,
    ir::DataType dtype)
{
    std::ostringstream name;
    name << "DIL-n" << n << "c" << ci << "hw" << h << "o" << co << "k"
         << r << "d" << dilation;
    return make_workload(OpKind::kDil, name.str(),
                         {n, ci, h, w, co, r, s, stride, pad, dilation},
                         dtype);
}

Workload
scan(int64_t n, int64_t l, ir::DataType dtype)
{
    std::ostringstream name;
    name << "SCAN-" << n << "x" << l;
    return make_workload(OpKind::kScan, name.str(), {n, l}, dtype);
}

std::vector<Workload>
tensorcore_op_suite()
{
    // Shapes follow the Ansor/AMOS evaluation style: batched DL
    // workloads drawn from ResNet/VGG/BERT layers.
    std::vector<Workload> suite;
    // GEMM (BERT-style projections and classifier heads)
    suite.push_back(gemm(512, 1024, 1024));
    suite.push_back(gemm(1024, 1024, 1024));
    suite.push_back(gemm(256, 4096, 1024));
    suite.push_back(gemm(32, 1000, 4096));
    // BMM (attention)
    suite.push_back(bmm(192, 128, 128, 64));
    suite.push_back(bmm(192, 128, 64, 128));
    // C1D
    suite.push_back(c1d(16, 64, 256, 128, 3, 1, 1));
    suite.push_back(c1d(16, 128, 128, 256, 3, 2, 1));
    // C2D (ResNet layers)
    suite.push_back(c2d(16, 64, 56, 56, 64, 3, 3, 1, 1));
    suite.push_back(c2d(16, 128, 28, 28, 128, 3, 3, 1, 1));
    suite.push_back(c2d(16, 256, 14, 14, 256, 3, 3, 1, 1));
    // C3D
    suite.push_back(c3d(4, 16, 16, 28, 28, 32, 3, 3, 3, 1, 1));
    // T2D (DCGAN-style)
    suite.push_back(t2d(16, 128, 14, 14, 64, 4, 4, 2, 1));
    // DIL
    suite.push_back(dil(16, 64, 28, 28, 64, 3, 3, 1, 2, 2));
    // GEMV
    suite.push_back(gemv(4096, 4096));
    // SCAN
    suite.push_back(scan(512, 4096, ir::DataType::kFloat32));
    return suite;
}

std::vector<Workload>
dlboost_op_suite()
{
    std::vector<Workload> suite;
    auto dt = ir::DataType::kInt8;
    suite.push_back(gemm(512, 1024, 1024, dt));
    suite.push_back(gemm(32, 1000, 2048, dt));
    suite.push_back(bmm(96, 128, 128, 64, dt));
    suite.push_back(c1d(16, 64, 256, 128, 3, 1, 1, dt));
    suite.push_back(c2d(16, 64, 56, 56, 64, 3, 3, 1, 1, dt));
    suite.push_back(c2d(16, 128, 28, 28, 128, 3, 3, 1, 1, dt));
    suite.push_back(c3d(4, 16, 16, 28, 28, 32, 3, 3, 3, 1, 1, dt));
    suite.push_back(t2d(16, 128, 14, 14, 64, 4, 4, 2, 1, dt));
    suite.push_back(dil(16, 64, 28, 28, 64, 3, 3, 1, 2, 2, dt));
    suite.push_back(gemv(4096, 4096, dt));
    suite.push_back(scan(512, 4096, ir::DataType::kInt32));
    return suite;
}

std::vector<Workload>
vta_op_suite()
{
    std::vector<Workload> suite;
    auto dt = ir::DataType::kInt8;
    suite.push_back(gemm(256, 256, 256, dt));
    suite.push_back(gemm(1024, 1024, 256, dt));
    suite.push_back(c2d(1, 64, 56, 56, 64, 3, 3, 1, 1, dt));
    suite.push_back(c2d(1, 128, 28, 28, 128, 3, 3, 1, 1, dt));
    suite.push_back(bmm(16, 128, 128, 64, dt));
    return suite;
}

std::vector<Workload>
table9_gemm()
{
    std::vector<Workload> suite;
    suite.push_back(gemm(1024, 1024, 1024));
    suite.back().name = "G1";
    suite.push_back(gemm(4096, 4096, 4096));
    suite.back().name = "G2";
    suite.push_back(gemm(32, 1000, 2048));
    suite.back().name = "G3";
    suite.push_back(gemm(32, 4096, 4096));
    suite.back().name = "G4";
    suite.push_back(gemm(32, 1000, 4096));
    suite.back().name = "G5";
    return suite;
}

std::vector<Workload>
table9_conv()
{
    // Batch, H, W, CI, CO, R, S, padding, stride from Table 9.
    std::vector<Workload> suite;
    suite.push_back(c2d(1, 64, 56, 56, 64, 1, 1, 1, 0));
    suite.back().name = "C1";
    suite.push_back(c2d(8, 512, 28, 28, 128, 1, 1, 1, 1));
    suite.back().name = "C2";
    suite.push_back(c2d(16, 1024, 14, 14, 512, 1, 1, 2, 0));
    suite.back().name = "C3";
    suite.push_back(c2d(32, 512, 7, 7, 512, 3, 3, 1, 0));
    suite.back().name = "C4";
    suite.push_back(c2d(32, 256, 14, 14, 256, 3, 3, 1, 1));
    suite.back().name = "C5";
    return suite;
}

} // namespace heron::ops
