#include "ir/expr.h"

#include <cstdlib>
#include <sstream>

#include "support/logging.h"

namespace heron::ir {

LinearExpr
LinearExpr::axis(int axis_index)
{
    return scaled(axis_index, 1, 0);
}

LinearExpr
LinearExpr::scaled(int axis_index, int64_t coef, int64_t offset)
{
    LinearExpr e;
    e.constant = offset;
    e.terms.push_back(AxisTerm{axis_index, coef});
    return e;
}

LinearExpr
LinearExpr::immediate(int64_t value)
{
    LinearExpr e;
    e.constant = value;
    return e;
}

LinearExpr &
LinearExpr::add_term(int axis_index, int64_t coef)
{
    terms.push_back(AxisTerm{axis_index, coef});
    return *this;
}

int64_t
LinearExpr::eval(const std::vector<int64_t> &axis_values) const
{
    int64_t value = constant;
    for (const auto &t : terms) {
        HERON_CHECK_GE(t.axis, 0);
        HERON_CHECK_LT(static_cast<size_t>(t.axis), axis_values.size());
        value += t.coef * axis_values[static_cast<size_t>(t.axis)];
    }
    return value;
}

int64_t
LinearExpr::footprint(const std::vector<int64_t> &tile_lengths) const
{
    int64_t span = 0;
    for (const auto &t : terms) {
        int64_t len = 1;
        if (t.axis >= 0 &&
            static_cast<size_t>(t.axis) < tile_lengths.size())
            len = tile_lengths[static_cast<size_t>(t.axis)];
        span += std::llabs(t.coef) * (len - 1);
    }
    return span + 1;
}

bool
LinearExpr::uses_axis(int axis_index) const
{
    for (const auto &t : terms)
        if (t.axis == axis_index && t.coef != 0)
            return true;
    return false;
}

std::string
LinearExpr::to_string(const std::vector<std::string> &axis_names) const
{
    std::ostringstream out;
    bool first = true;
    for (const auto &t : terms) {
        if (t.coef == 0)
            continue;
        if (!first)
            out << " + ";
        if (t.coef != 1)
            out << t.coef << "*";
        HERON_CHECK_LT(static_cast<size_t>(t.axis), axis_names.size());
        out << axis_names[static_cast<size_t>(t.axis)];
        first = false;
    }
    if (constant != 0 || first) {
        if (!first)
            out << (constant >= 0 ? " + " : " - ");
        out << (first ? constant : std::llabs(constant));
    }
    return out.str();
}

} // namespace heron::ir
