/**
 * @file
 * Affine index expressions.
 *
 * Every tensor access in the supported operators indexes each tensor
 * dimension with an affine combination of loop axes
 * (e.g. `stride*h + dilation*rh - pad`). Affine form is all the
 * constraint generator needs: the data footprint of a loop tile is
 * computable per dimension as sum(|coef| * (tile_len - 1)) + 1.
 */
#ifndef HERON_IR_EXPR_H
#define HERON_IR_EXPR_H

#include <cstdint>
#include <string>
#include <vector>

namespace heron::ir {

/** One `coef * axis` term; @c axis indexes the owning stage's axes. */
struct AxisTerm {
    int axis = -1;
    int64_t coef = 1;
};

/** An affine expression `constant + sum(coef_i * axis_i)`. */
struct LinearExpr {
    int64_t constant = 0;
    std::vector<AxisTerm> terms;

    /** Expression referencing a single axis with coefficient 1. */
    static LinearExpr axis(int axis_index);

    /** Expression `coef * axis + offset`. */
    static LinearExpr scaled(int axis_index, int64_t coef,
                             int64_t offset = 0);

    /** Constant-only expression. */
    static LinearExpr immediate(int64_t value);

    /** Add a term in place. */
    LinearExpr &add_term(int axis_index, int64_t coef);

    /** Evaluate with concrete axis values (indexed by axis id). */
    int64_t eval(const std::vector<int64_t> &axis_values) const;

    /**
     * Number of distinct values this expression spans when each
     * referenced axis ranges over a tile of the given length:
     * sum(|coef| * (tile_len - 1)) + 1. Axes absent from
     * @p tile_lengths (id out of range) count as length 1.
     */
    int64_t footprint(const std::vector<int64_t> &tile_lengths) const;

    /** True if the expression references @p axis_index. */
    bool uses_axis(int axis_index) const;

    /** Rendering with axis names supplied by the caller. */
    std::string to_string(const std::vector<std::string> &axis_names)
        const;
};

} // namespace heron::ir

#endif // HERON_IR_EXPR_H
