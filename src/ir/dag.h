/**
 * @file
 * The compute DAG: all stages of a (possibly fused) computation plus
 * its input tensors, with producer/consumer queries and traversal
 * orders. The space generator walks stages in reverse topological
 * order (paper Algorithm 1).
 */
#ifndef HERON_IR_DAG_H
#define HERON_IR_DAG_H

#include <string>
#include <vector>

#include "ir/stage.h"
#include "ir/tensor.h"

namespace heron::ir {

/** A whole computation: input tensors plus stages in producer order. */
class ComputeDag
{
  public:
    /** Register an input (placeholder) tensor. */
    void add_input(Tensor tensor);

    /** Append a stage; producers must be appended first. */
    void add_stage(ComputeStage stage);

    /** All input tensors. */
    const std::vector<Tensor> &inputs() const { return inputs_; }

    /** All stages in topological (producer-first) order. */
    const std::vector<ComputeStage> &stages() const { return stages_; }

    /** Stage count. */
    size_t num_stages() const { return stages_.size(); }

    /** Stage by index. */
    const ComputeStage &stage(int i) const
    {
        return stages_[static_cast<size_t>(i)];
    }

    /** Index of the stage producing @p tensor_name; -1 if an input. */
    int producer_of(const std::string &tensor_name) const;

    /** Indices of stages reading the output of stage @p i. */
    std::vector<int> consumers_of(int i) const;

    /** True if @p tensor_name is a DAG input. */
    bool is_input(const std::string &tensor_name) const;

    /** Tensor metadata by name (searches inputs then outputs). */
    const Tensor &tensor(const std::string &name) const;

    /**
     * Stage indices in reverse topological order (consumers before
     * producers), the traversal order of schedule generation.
     */
    std::vector<int> reverse_topological() const;

    /** Total operation count across stages. */
    int64_t total_ops() const;

    /** Multi-line rendering of the whole DAG. */
    std::string to_string() const;

  private:
    std::vector<Tensor> inputs_;
    std::vector<ComputeStage> stages_;
};

} // namespace heron::ir

#endif // HERON_IR_DAG_H
