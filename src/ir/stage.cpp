#include "ir/stage.h"

#include <sstream>

#include "support/logging.h"
#include "support/math_util.h"

namespace heron::ir {

int64_t
ComputeStage::iteration_count() const
{
    int64_t count = 1;
    for (const auto &axis : axes)
        count = checked_mul(count, axis.extent);
    return count;
}

int64_t
ComputeStage::op_count() const
{
    int64_t iters = iteration_count();
    return combiner == CombinerKind::kSum ? checked_mul(2, iters)
                                          : iters;
}

std::vector<std::string>
ComputeStage::axis_names() const
{
    std::vector<std::string> names;
    names.reserve(axes.size());
    for (const auto &axis : axes)
        names.push_back(axis.name);
    return names;
}

bool
ComputeStage::has_data_reuse() const
{
    return combiner == CombinerKind::kSum && num_reduce() > 0;
}

std::string
ComputeStage::to_string() const
{
    std::ostringstream out;
    auto names = axis_names();
    out << name << ": " << output.name << "[";
    for (size_t i = 0; i < output_indices.size(); ++i)
        out << (i ? ", " : "") << output_indices[i].to_string(names);
    out << "]";
    switch (combiner) {
      case CombinerKind::kSum: out << " += "; break;
      case CombinerKind::kScan: out << " (scan) = "; break;
      case CombinerKind::kNone: out << " = "; break;
    }
    for (size_t r = 0; r < reads.size(); ++r) {
        if (r)
            out << " * ";
        out << reads[r].tensor << "[";
        for (size_t i = 0; i < reads[r].indices.size(); ++i)
            out << (i ? ", " : "")
                << reads[r].indices[i].to_string(names);
        out << "]";
    }
    out << "   axes:";
    for (const auto &axis : axes)
        out << " " << axis.name << (axis.reduce ? "(r)" : "") << "="
            << axis.extent;
    return out.str();
}

int64_t
ContractionRoles::extent_product(const ComputeStage &stage,
                                 const std::vector<int> &axes)
{
    int64_t product = 1;
    for (int a : axes) {
        HERON_CHECK_GE(a, 0);
        HERON_CHECK_LT(static_cast<size_t>(a), stage.axes.size());
        product =
            checked_mul(product, stage.axes[static_cast<size_t>(a)].extent);
    }
    return product;
}

std::optional<ContractionRoles>
analyze_contraction(const ComputeStage &stage)
{
    if (stage.combiner != CombinerKind::kSum)
        return std::nullopt;
    if (stage.reads.size() != 2)
        return std::nullopt;
    if (stage.num_reduce() == 0)
        return std::nullopt;

    auto uses = [&](const TensorAccess &access, int axis) {
        for (const auto &idx : access.indices)
            if (idx.uses_axis(axis))
                return true;
        return false;
    };

    ContractionRoles roles;
    for (int a = 0; a < static_cast<int>(stage.axes.size()); ++a) {
        if (stage.axes[static_cast<size_t>(a)].reduce) {
            roles.k_axes.push_back(a);
            continue;
        }
        bool in_first = uses(stage.reads[0], a);
        bool in_second = uses(stage.reads[1], a);
        if (in_first && !in_second) {
            roles.m_axes.push_back(a);
        } else if (!in_first && in_second) {
            roles.n_axes.push_back(a);
        } else if (!in_first && !in_second) {
            // Broadcast axis; treat as m (batch-like).
            roles.m_axes.push_back(a);
        } else {
            // A spatial axis feeding both operands (and the output)
            // selects independent matmul instances: a batch axis.
            roles.batch_axes.push_back(a);
        }
    }
    if (roles.k_axes.empty())
        return std::nullopt;
    return roles;
}

} // namespace heron::ir
