#include "ir/dag.h"

#include <sstream>

#include "support/logging.h"

namespace heron::ir {

void
ComputeDag::add_input(Tensor tensor)
{
    inputs_.push_back(std::move(tensor));
}

void
ComputeDag::add_stage(ComputeStage stage)
{
    for (const auto &read : stage.reads) {
        HERON_CHECK(is_input(read.tensor) ||
                    producer_of(read.tensor) >= 0)
            << "stage " << stage.name << " reads unknown tensor "
            << read.tensor;
    }
    stages_.push_back(std::move(stage));
}

int
ComputeDag::producer_of(const std::string &tensor_name) const
{
    for (size_t i = 0; i < stages_.size(); ++i)
        if (stages_[i].output.name == tensor_name)
            return static_cast<int>(i);
    return -1;
}

std::vector<int>
ComputeDag::consumers_of(int i) const
{
    const std::string &out = stages_[static_cast<size_t>(i)].output.name;
    std::vector<int> consumers;
    for (size_t j = 0; j < stages_.size(); ++j) {
        for (const auto &read : stages_[j].reads) {
            if (read.tensor == out) {
                consumers.push_back(static_cast<int>(j));
                break;
            }
        }
    }
    return consumers;
}

bool
ComputeDag::is_input(const std::string &tensor_name) const
{
    for (const auto &t : inputs_)
        if (t.name == tensor_name)
            return true;
    return false;
}

const Tensor &
ComputeDag::tensor(const std::string &name) const
{
    for (const auto &t : inputs_)
        if (t.name == name)
            return t;
    for (const auto &s : stages_)
        if (s.output.name == name)
            return s.output;
    HERON_FATAL << "unknown tensor: " << name;
    // Unreachable; silences the compiler.
    return inputs_.front();
}

std::vector<int>
ComputeDag::reverse_topological() const
{
    // stages_ is stored producer-first, so the reverse order is a
    // valid consumers-first traversal.
    std::vector<int> order;
    order.reserve(stages_.size());
    for (int i = static_cast<int>(stages_.size()) - 1; i >= 0; --i)
        order.push_back(i);
    return order;
}

int64_t
ComputeDag::total_ops() const
{
    int64_t total = 0;
    for (const auto &s : stages_)
        total += s.op_count();
    return total;
}

std::string
ComputeDag::to_string() const
{
    std::ostringstream out;
    out << "inputs:\n";
    for (const auto &t : inputs_)
        out << "  " << t.to_string() << "\n";
    out << "stages:\n";
    for (const auto &s : stages_)
        out << "  " << s.to_string() << "\n";
    return out.str();
}

} // namespace heron::ir
