/**
 * @file
 * Compute stages: one tensor-producing loop nest in the tensor
 * expression (e.g. `C[i,j] += A[i,r] * B[r,j]`), plus the analysis
 * that classifies a stage as a tensorizable contraction.
 */
#ifndef HERON_IR_STAGE_H
#define HERON_IR_STAGE_H

#include <optional>
#include <string>
#include <vector>

#include "ir/expr.h"
#include "ir/tensor.h"

namespace heron::ir {

/** One loop axis of a stage. */
struct Axis {
    std::string name;
    int64_t extent = 1;
    bool reduce = false;
};

/** A read of one tensor with an affine index per dimension. */
struct TensorAccess {
    std::string tensor;
    std::vector<LinearExpr> indices;
};

/** How a stage combines values across reduce axes. */
enum class CombinerKind : uint8_t {
    kNone,  ///< pure elementwise / data movement
    kSum,   ///< multiply-accumulate contraction
    kScan,  ///< prefix dependency along an axis (SCAN operator)
};

/**
 * One stage of the computation: the loop nest producing one output
 * tensor from affine reads of input tensors.
 */
struct ComputeStage {
    std::string name;
    /** Spatial axes first, then reduce axes. */
    std::vector<Axis> axes;
    int num_spatial = 0;
    Tensor output;
    /** Affine output index per output dimension (spatial axes). */
    std::vector<LinearExpr> output_indices;
    std::vector<TensorAccess> reads;
    CombinerKind combiner = CombinerKind::kNone;

    /** Number of reduce axes. */
    int num_reduce() const
    {
        return static_cast<int>(axes.size()) - num_spatial;
    }

    /** Product of all axis extents (loop iterations). */
    int64_t iteration_count() const;

    /**
     * Floating-point (or int) operations: 2 * iterations for
     * multiply-accumulate stages, 1 * iterations otherwise.
     */
    int64_t op_count() const;

    /** Axis names in order (for printing). */
    std::vector<std::string> axis_names() const;

    /** True if the stage has a reduction with data reuse. */
    bool has_data_reuse() const;

    /** Multi-line textual rendering of the stage. */
    std::string to_string() const;
};

/**
 * The (m, n, k) role assignment of a contraction's axes, used by the
 * Tensorize rule (paper Rule-S1). Spatial axes appearing only in the
 * first operand map to m, only in the second operand to n; reduce
 * axes map to k. For convolutions this is exactly the im2col view.
 */
struct ContractionRoles {
    std::vector<int> m_axes;
    std::vector<int> n_axes;
    std::vector<int> k_axes;
    /**
     * Spatial axes indexing both operands (BMM batch): independent
     * matmul instances; they tile like m axes but never map into
     * the intrinsic shape.
     */
    std::vector<int> batch_axes;

    /** Product of extents of the given axis set within @p stage. */
    static int64_t extent_product(const ComputeStage &stage,
                                  const std::vector<int> &axes);
};

/**
 * Try to view @p stage as a matrix-multiply-shaped contraction
 * (`C[..] += A[..] * B[..]`). Returns nullopt for non-contraction
 * stages (elementwise, scan) or stages whose axes cannot be assigned
 * m/n/k roles unambiguously.
 */
std::optional<ContractionRoles>
analyze_contraction(const ComputeStage &stage);

} // namespace heron::ir

#endif // HERON_IR_STAGE_H
