/**
 * @file
 * Tensors and data types for the tensor-expression IR.
 */
#ifndef HERON_IR_TENSOR_H
#define HERON_IR_TENSOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace heron::ir {

/** Element types supported by the DLA backends. */
enum class DataType : uint8_t {
    kFloat16,
    kFloat32,
    kInt8,
    kInt32,
};

/** Bytes per element. */
int dtype_bytes(DataType dtype);

/** Short name ("fp16", "int8", ...). */
const char *dtype_name(DataType dtype);

/** A dense multi-dimensional tensor (shape + element type). */
struct Tensor {
    std::string name;
    std::vector<int64_t> shape;
    DataType dtype = DataType::kFloat32;

    /** Number of dimensions. */
    int ndim() const { return static_cast<int>(shape.size()); }

    /** Total element count. */
    int64_t num_elements() const;

    /** Total byte size. */
    int64_t bytes() const;

    /** "A[128, 64] fp16" style rendering. */
    std::string to_string() const;
};

} // namespace heron::ir

#endif // HERON_IR_TENSOR_H
