#include "ir/tensor.h"

#include <sstream>

#include "support/logging.h"
#include "support/math_util.h"

namespace heron::ir {

int
dtype_bytes(DataType dtype)
{
    switch (dtype) {
      case DataType::kFloat16: return 2;
      case DataType::kFloat32: return 4;
      case DataType::kInt8: return 1;
      case DataType::kInt32: return 4;
    }
    HERON_FATAL << "unknown dtype";
    return 0;
}

const char *
dtype_name(DataType dtype)
{
    switch (dtype) {
      case DataType::kFloat16: return "fp16";
      case DataType::kFloat32: return "fp32";
      case DataType::kInt8: return "int8";
      case DataType::kInt32: return "int32";
    }
    return "?";
}

int64_t
Tensor::num_elements() const
{
    return checked_product(shape);
}

int64_t
Tensor::bytes() const
{
    return checked_mul(num_elements(), dtype_bytes(dtype));
}

std::string
Tensor::to_string() const
{
    std::ostringstream out;
    out << name << "[";
    for (size_t i = 0; i < shape.size(); ++i)
        out << (i ? ", " : "") << shape[i];
    out << "] " << dtype_name(dtype);
    return out.str();
}

} // namespace heron::ir
