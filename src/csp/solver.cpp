#include "csp/solver.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <unordered_set>

#include "support/logging.h"
#include "support/math_util.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace heron::csp {

namespace {

using Clock = std::chrono::steady_clock;

/** Hash for assignment dedup in solve_n. */
uint64_t
hash_assignment(const Assignment &a)
{
    uint64_t h = 0x12345678;
    for (int64_t v : a)
        h = hash_combine(h, static_cast<uint64_t>(v));
    return h;
}

/**
 * One restart's depth-first search. Kept as a small class so the
 * recursion can share state without long parameter lists.
 */
class Dfs
{
  public:
    Dfs(const Csp &csp, PropagationEngine &engine, Rng &rng,
        const SolverConfig &config, SolverStats &stats,
        Clock::time_point deadline)
        : csp_(csp), engine_(engine), rng_(rng), config_(config),
          stats_(stats), deadline_(deadline)
    {
    }

    std::optional<Assignment>
    run()
    {
        backtracks_left_ = config_.max_backtracks_per_restart;
        if (!engine_.propagate()) {
            root_conflict_ = true;
            return std::nullopt;
        }
        if (recurse())
            return engine_.extract();
        return std::nullopt;
    }

    /** Root propagation wiped out a domain: proven unsatisfiable. */
    bool root_conflict() const { return root_conflict_; }

    /** The wall-clock deadline expired during the search. */
    bool deadline_hit() const { return deadline_hit_; }

  private:
    const Csp &csp_;
    PropagationEngine &engine_;
    Rng &rng_;
    const SolverConfig &config_;
    SolverStats &stats_;
    Clock::time_point deadline_;
    int backtracks_left_ = 0;
    bool root_conflict_ = false;
    bool deadline_hit_ = false;

    VarId
    pick_branch_var()
    {
        // Most-constrained unassigned tunable first (smallest
        // domain, ties broken randomly). Value choice stays fully
        // random, which provides the sample diversity RandSAT
        // needs; ordering by domain size surfaces conflicts early.
        std::vector<VarId> open;
        if (config_.branch_tunables_first) {
            int64_t best = std::numeric_limits<int64_t>::max();
            for (VarId v : csp_.tunable_vars()) {
                const Domain &d = engine_.domain(v);
                if (d.is_singleton())
                    continue;
                if (d.size() < best) {
                    best = d.size();
                    open.clear();
                }
                if (d.size() == best)
                    open.push_back(v);
            }
            if (!open.empty())
                return open[rng_.index(open.size())];
        }
        VarId best = -1;
        int64_t best_size = 0;
        for (size_t i = 0; i < csp_.num_vars(); ++i) {
            const Domain &d = engine_.domain(static_cast<VarId>(i));
            if (d.is_singleton())
                continue;
            if (best < 0 || d.size() < best_size) {
                best = static_cast<VarId>(i);
                best_size = d.size();
            }
        }
        return best;
    }

    std::vector<int64_t>
    candidate_values(const Domain &d)
    {
        std::vector<int64_t> vals;
        if (d.is_explicit() || d.size() <= 256) {
            vals = d.values();
            rng_.shuffle(vals);
        } else {
            // Huge interval: sample a handful of representative
            // values. Such variables are normally fixed by
            // propagation; this is a safety net.
            vals.push_back(d.min());
            vals.push_back(d.max());
            for (int i = 0; i < 6; ++i)
                vals.push_back(rng_.uniform_int(d.min(), d.max()));
            std::sort(vals.begin(), vals.end());
            vals.erase(std::unique(vals.begin(), vals.end()),
                       vals.end());
            rng_.shuffle(vals);
        }
        return vals;
    }

    bool
    recurse()
    {
        VarId var = pick_branch_var();
        if (var < 0)
            return engine_.all_assigned();

        for (int64_t value : candidate_values(engine_.domain(var))) {
            // Deadline check before every propagation step, so the
            // solve overshoots the deadline by at most one step.
            if (deadline_ != Clock::time_point::max() &&
                Clock::now() >= deadline_) {
                deadline_hit_ = true;
                return false;
            }
            std::vector<Domain> snapshot = engine_.domains();
            if (engine_.assign_and_propagate(var, value)) {
                if (recurse())
                    return true;
            }
            if (deadline_hit_)
                return false;
            engine_.restore(std::move(snapshot));
            ++stats_.backtracks;
            if (--backtracks_left_ <= 0)
                return false;
        }
        return false;
    }
};

} // namespace

const char *
solve_failure_name(SolveFailure failure)
{
    switch (failure) {
      case SolveFailure::kNone: return "none";
      case SolveFailure::kUnsat: return "unsat";
      case SolveFailure::kBudget: return "budget";
      case SolveFailure::kDeadline: return "deadline";
    }
    return "?";
}

RandSatSolver::RandSatSolver(const Csp &csp, SolverConfig config)
    : csp_(csp), config_(config)
{
}

std::optional<Assignment>
RandSatSolver::search(Rng &rng, const std::vector<Constraint> &extra)
{
    HERON_TRACE_SCOPE("csp/solve");
    ++stats_.solve_calls;
    int64_t backtracks_before = stats_.backtracks;
    int64_t restarts_before = stats_.restarts;
    // Publish the outcome to the process-wide metrics registry as
    // one batch per solve call so the DFS inner loop stays free of
    // atomic traffic.
    auto publish = [&]() {
        HERON_COUNTER_INC("csp.solve_calls");
        HERON_COUNTER_ADD("csp.backtracks",
                          stats_.backtracks - backtracks_before);
        HERON_COUNTER_ADD("csp.restarts",
                          stats_.restarts - restarts_before);
        switch (last_failure_) {
          case SolveFailure::kNone:
            HERON_COUNTER_INC("csp.solutions");
            break;
          case SolveFailure::kUnsat:
            HERON_COUNTER_INC("csp.unsat");
            break;
          case SolveFailure::kBudget:
            HERON_COUNTER_INC("csp.budget_exhausted");
            break;
          case SolveFailure::kDeadline:
            HERON_COUNTER_INC("csp.deadline_aborts");
            break;
        }
    };
    Clock::time_point deadline = Clock::time_point::max();
    if (config_.deadline_ms > 0.0)
        deadline = Clock::now() +
                   std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double, std::milli>(
                           config_.deadline_ms));
    for (int restart = 0; restart < config_.max_restarts; ++restart) {
        if (restart > 0)
            ++stats_.restarts;
        PropagationEngine engine(csp_, extra);
        Dfs dfs(csp_, engine, rng, config_, stats_, deadline);
        auto result = dfs.run();
        if (result) {
            ++stats_.solutions;
            last_failure_ = SolveFailure::kNone;
            publish();
            return result;
        }
        if (dfs.root_conflict()) {
            // Propagation is sound, so a root wipeout proves the
            // problem unsatisfiable; restarting cannot help.
            ++stats_.failures;
            ++stats_.unsat;
            last_failure_ = SolveFailure::kUnsat;
            publish();
            return std::nullopt;
        }
        if (dfs.deadline_hit()) {
            ++stats_.failures;
            ++stats_.deadline_aborts;
            last_failure_ = SolveFailure::kDeadline;
            publish();
            return std::nullopt;
        }
    }
    ++stats_.failures;
    ++stats_.budget_exhausted;
    last_failure_ = SolveFailure::kBudget;
    publish();
    return std::nullopt;
}

std::optional<Assignment>
RandSatSolver::solve_one(Rng &rng, const std::vector<Constraint> &extra)
{
    auto result = search(rng, extra);
    if (result) {
        HERON_CHECK(csp_.valid(*result))
            << "solver produced an invalid assignment";
        for (const auto &c : extra)
            HERON_CHECK(csp_.satisfies(c, *result))
                << "solver violated an extra constraint";
    }
    return result;
}

std::vector<Assignment>
RandSatSolver::solve_n(Rng &rng, int n,
                       const std::vector<Constraint> &extra)
{
    std::vector<Assignment> results;
    std::unordered_set<uint64_t> seen;
    // A few extra attempts absorb duplicate draws in tight spaces.
    int attempts = n + std::max(4, n / 2);
    for (int i = 0; i < attempts && static_cast<int>(results.size()) < n;
         ++i) {
        auto a = solve_one(rng, extra);
        if (!a)
            break; // budget exhausted; subproblem likely too tight
        uint64_t h = hash_assignment(*a);
        if (seen.insert(h).second)
            results.push_back(std::move(*a));
    }
    return results;
}

bool
RandSatSolver::feasible(Rng &rng, const std::vector<Constraint> &extra)
{
    return search(rng, extra).has_value();
}

} // namespace heron::csp
